// Package tree implements the node-labeled ordered trees of Section 3 of
// "Towards Theory for Real-World Data": the common abstraction of XML and
// JSON documents as T = (V, E, lab) with a root, an ordered child relation,
// and a labeling function into Lab.
package tree

import (
	"fmt"
	"strings"
)

// Node is a node of a labeled ordered tree. Children are ordered, matching
// the XML abstraction (Section 3: "the trees are always ordered").
type Node struct {
	Label    string
	Children []*Node
}

// New constructs a node with the given label and children.
func New(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// Add appends children and returns the node (for fluent construction).
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Size returns the number of nodes of the tree rooted at n.
func (n *Node) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Depth returns the depth of the tree: 1 for a leaf. The data sets of
// Section 3.1 have depth 7 (DBLP), 37 (Treebank), and 6 (Swissprot).
func (n *Node) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// ChildWord returns the sequence of labels of n's children — the word that
// DTD validation matches against ρ(lab(n)) (Definition 4.1).
func (n *Node) ChildWord() []string {
	w := make([]string, len(n.Children))
	for i, c := range n.Children {
		w[i] = c.Label
	}
	return w
}

// Walk visits the subtree rooted at n in preorder.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// WalkPath visits every node together with the labels of its ancestors
// (root first, excluding the node itself) — the "ancestor string" used by
// the pattern-based schemas of Section 4.4.
func (n *Node) WalkPath(f func(node *Node, ancestors []string)) {
	var rec func(m *Node, anc []string)
	rec = func(m *Node, anc []string) {
		f(m, anc)
		anc = append(anc, m.Label)
		for _, c := range m.Children {
			rec(c, anc)
		}
	}
	rec(n, nil)
}

// Labels returns the set of labels occurring in the tree.
func (n *Node) Labels() map[string]bool {
	set := map[string]bool{}
	n.Walk(func(m *Node) { set[m.Label] = true })
	return set
}

// Clone deep-copies the tree.
func (n *Node) Clone() *Node {
	c := &Node{Label: n.Label}
	for _, ch := range n.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return c
}

// Equal reports structural equality.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Label != m.Label || len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the tree as label(child1, child2, …).
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	b.WriteString(n.Label)
	if len(n.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteString(", ")
		}
		c.render(b)
	}
	b.WriteByte(')')
}

// Parse parses the String() format: label(child, …). Labels are
// non-empty runs of characters other than '(', ')', ',' and whitespace.
func Parse(s string) (*Node, error) {
	p := &parser{src: s}
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tree: trailing input %q", p.src[p.pos:])
	}
	return n, nil
}

// MustParse is Parse that panics on error.
func MustParse(s string) *Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) parseNode() (*Node, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune("(), \t\n", rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("tree: expected label at offset %d in %q", p.pos, p.src)
	}
	n := &Node{Label: p.src[start:p.pos]}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			c, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("tree: missing ')' in %q", p.src)
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("tree: unexpected %q at offset %d", p.src[p.pos], p.pos)
		}
	}
	return n, nil
}
