package recorder

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// mkTrace builds a minimal trace with controllable identity, size, and
// summary fields. Bytes is set explicitly so ring-budget tests don't
// depend on JSON encoding details.
func mkTrace(id string, durMS float64, bytes int64) *Trace {
	return &Trace{
		TraceID:    id,
		Op:         "containment",
		Status:     "200",
		Start:      time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
		DurationMS: durMS,
		Bytes:      bytes,
		Root: &obs.Node{
			Name:       "http.containment",
			DurationMS: durMS,
			Counters:   map[string]int64{"states_expanded": int64(durMS)},
		},
	}
}

func checkInvariant(t *testing.T, r *Ring) {
	t.Helper()
	st := r.Stats()
	if st.Recorded != st.Retained+st.Evicted {
		t.Fatalf("accounting broken: recorded=%d != retained=%d + evicted=%d",
			st.Recorded, st.Retained, st.Evicted)
	}
}

func TestRingInvariants(t *testing.T) {
	r := New(Config{Capacity: 4, MaxBytes: 1 << 20})
	for i := 0; i < 10; i++ {
		r.Record(mkTrace(fmt.Sprintf("t%02d", i), float64(i), 100))
		checkInvariant(t, r)
	}
	st := r.Stats()
	if st.Recorded != 10 || st.Retained != 4 || st.Evicted != 6 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want recorded=10 retained=4 evicted=6 dropped=0", st)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	// Oldest evicted first: the survivors are the last four recorded.
	for i, want := range []string{"t06", "t07", "t08", "t09"} {
		if snap[i].TraceID != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, snap[i].TraceID, want)
		}
	}
}

func TestRingByteBudgetEvicts(t *testing.T) {
	r := New(Config{Capacity: 100, MaxBytes: 1000})
	for i := 0; i < 10; i++ {
		r.Record(mkTrace(fmt.Sprintf("t%02d", i), 1, 300))
		checkInvariant(t, r)
		if st := r.Stats(); st.Bytes > 1000 {
			t.Fatalf("bytes = %d exceeds budget 1000", st.Bytes)
		}
	}
	st := r.Stats()
	if st.Retained != 3 { // 3*300 = 900 <= 1000, 4*300 would burst
		t.Fatalf("retained = %d, want 3 (byte budget)", st.Retained)
	}
}

func TestRingOversizedTraceDropped(t *testing.T) {
	r := New(Config{Capacity: 10, MaxBytes: 500})
	r.Record(mkTrace("big", 1, 501))
	st := r.Stats()
	if st.Dropped != 1 || st.Recorded != 0 || st.Retained != 0 {
		t.Fatalf("stats = %+v, want dropped=1 and nothing recorded", st)
	}
	checkInvariant(t, r)
}

func TestRingConcurrentRecord(t *testing.T) {
	r := New(Config{Capacity: 32, MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(mkTrace(fmt.Sprintf("g%d-%d", g, i), 1, 64))
			}
		}(g)
	}
	wg.Wait()
	checkInvariant(t, r)
	st := r.Stats()
	if st.Recorded != 1600 {
		t.Fatalf("recorded = %d, want 1600", st.Recorded)
	}
	if st.Retained != 32 {
		t.Fatalf("retained = %d, want 32", st.Retained)
	}
}

func TestRingGetAndNilSafety(t *testing.T) {
	var nilRing *Ring
	nilRing.Record(mkTrace("x", 1, 10)) // must not panic
	if nilRing.Get("x") != nil || nilRing.Snapshot() != nil {
		t.Fatal("nil ring should return nothing")
	}
	if (nilRing.Stats() != Stats{}) {
		t.Fatal("nil ring stats should be zero")
	}

	r := New(Config{Capacity: 4})
	r.Record(mkTrace("a", 1, 10))
	r.Record(mkTrace("b", 2, 10))
	if got := r.Get("a"); got == nil || got.TraceID != "a" {
		t.Fatalf("Get(a) = %v", got)
	}
	if r.Get("missing") != nil {
		t.Fatal("Get(missing) should be nil")
	}
}

func TestFromSpanExportsTreeAndStatus(t *testing.T) {
	var captured *Trace
	tr := &obs.Tracer{OnFinish: func(s *obs.Span) {
		if s.Parent() == nil {
			captured = FromSpan(s)
		}
	}}
	ctx, root := tr.StartRoot(context.Background(), "http.containment")
	_, child := obs.StartSpan(ctx, "containment.decide")
	child.Count("states_expanded", 42)
	child.Finish()
	root.SetAttr(StatusAttr, "200")
	root.Finish()

	if captured == nil {
		t.Fatal("no trace captured")
	}
	if captured.Op != "containment" {
		t.Fatalf("op = %q, want containment (http. trimmed)", captured.Op)
	}
	if captured.Status != "200" {
		t.Fatalf("status = %q, want 200", captured.Status)
	}
	if captured.TraceID != root.TraceID() {
		t.Fatalf("trace id %q != span id %q", captured.TraceID, root.TraceID())
	}
	if captured.Bytes <= 0 {
		t.Fatalf("bytes = %d, want > 0", captured.Bytes)
	}
	if got := CounterSum(captured.Root, "states_expanded"); got != 42 {
		t.Fatalf("CounterSum = %d, want 42", got)
	}
	if captured.Root.StartUS == 0 {
		t.Fatal("root node missing start_us")
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery(url.Values{
		"op": {"containment"}, "status": {"504"}, "min_ms": {"2.5"},
		"since": {"10m"}, "limit": {"7"}, "sort": {"slowest"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Query{Op: "containment", Status: "504", MinMS: 2.5,
		Since: 10 * time.Minute, Limit: 7, Sort: SortSlowest}
	if q != want {
		t.Fatalf("q = %+v, want %+v", q, want)
	}
	for _, bad := range []url.Values{
		{"min_ms": {"fast"}},
		{"since": {"yesterday"}},
		{"limit": {"many"}},
		{"sort": {"biggest"}},
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Fatalf("ParseQuery(%v) should fail", bad)
		}
	}
}

// TestParseQueryStrict pins the rejection (not silent coercion) of
// parameters that cannot mean anything, with a message naming the
// offending parameter so the 400 body is actionable.
func TestParseQueryStrict(t *testing.T) {
	cases := []struct {
		name    string
		v       url.Values
		wantSub string
	}{
		{"negative min_ms", url.Values{"min_ms": {"-3"}}, "min_ms"},
		{"NaN min_ms", url.Values{"min_ms": {"NaN"}}, "min_ms"},
		{"Inf min_ms", url.Values{"min_ms": {"+Inf"}}, "min_ms"},
		{"garbage min_ms", url.Values{"min_ms": {"2.5ms"}}, "min_ms"},
		{"malformed since", url.Values{"since": {"2026-08-07T12:00:00Z"}}, "since"},
		{"negative since", url.Values{"since": {"-10m"}}, "since"},
		{"limit zero", url.Values{"limit": {"0"}}, "limit"},
		{"conflicting sorts", url.Values{"sort": {"recent", "slowest"}}, "sort"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseQuery(tc.v)
			if err == nil {
				t.Fatalf("ParseQuery(%v) should fail", tc.v)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name %q", err, tc.wantSub)
			}
		})
	}
	// Still-valid shapes that look close to the rejected ones.
	for _, good := range []url.Values{
		{"min_ms": {"0"}},
		{"limit": {"-1"}},                // explicit unlimited
		{"sort": {"slowest", "slowest"}}, // repeated but agreeing
	} {
		if _, err := ParseQuery(good); err != nil {
			t.Fatalf("ParseQuery(%v) = %v, want ok", good, err)
		}
	}
}

func TestQueryApply(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	ts := []*Trace{ // oldest first
		{TraceID: "a", Op: "containment", Status: "200", DurationMS: 5, Start: now.Add(-time.Hour)},
		{TraceID: "b", Op: "analyze", Status: "200", DurationMS: 50, Start: now.Add(-time.Minute)},
		{TraceID: "c", Op: "containment", Status: "504", DurationMS: 30, Start: now.Add(-30 * time.Second)},
		{TraceID: "d", Op: "containment", Status: "200", DurationMS: 1, Start: now.Add(-time.Second)},
	}
	ids := func(got []*Trace) string {
		var b []string
		for _, t := range got {
			b = append(b, t.TraceID)
		}
		return strings.Join(b, ",")
	}

	if got := ids(Query{Sort: SortRecent}.Apply(ts, now)); got != "d,c,b,a" {
		t.Fatalf("recent = %s, want d,c,b,a", got)
	}
	if got := ids(Query{Sort: SortSlowest}.Apply(ts, now)); got != "b,c,a,d" {
		t.Fatalf("slowest = %s, want b,c,a,d", got)
	}
	if got := ids(Query{Op: "containment", Sort: SortSlowest}.Apply(ts, now)); got != "c,a,d" {
		t.Fatalf("op filter = %s, want c,a,d", got)
	}
	if got := ids(Query{Status: "504"}.Apply(ts, now)); got != "c" {
		t.Fatalf("status filter = %s, want c", got)
	}
	if got := ids(Query{MinMS: 20}.Apply(ts, now)); got != "c,b" {
		t.Fatalf("min_ms filter = %s, want c,b", got)
	}
	if got := ids(Query{Since: 2 * time.Minute}.Apply(ts, now)); got != "d,c,b" {
		t.Fatalf("since filter = %s, want d,c,b", got)
	}
	if got := ids(Query{Limit: 2, Sort: SortSlowest}.Apply(ts, now)); got != "b,c" {
		t.Fatalf("limit = %s, want b,c", got)
	}
}

func TestLogRotationAndPruning(t *testing.T) {
	dir := t.TempDir()
	// Tiny files: every trace is bigger than MaxFileBytes, so each
	// Append after the first rotates; only 3 files survive pruning.
	l, err := OpenLog(dir, LogConfig{MaxFileBytes: 1, MaxFiles: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(mkTrace(fmt.Sprintf("t%02d", i), 1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := logFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("log files = %v, want 3 after pruning", names)
	}
	traces, discarded, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if discarded != 0 {
		t.Fatalf("discarded = %d, want 0", discarded)
	}
	// The survivors are a contiguous newest suffix, oldest first.
	if len(traces) == 0 || traces[len(traces)-1].TraceID != "t09" {
		t.Fatalf("last trace = %v, want t09", traces)
	}
}

func TestLogResumesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkTrace("first", 1, 0)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Reopen (a restarted server) and append more; both must be read.
	l2, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(mkTrace("second", 2, 0)); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	traces, _, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 || traces[0].TraceID != "first" || traces[1].TraceID != "second" {
		t.Fatalf("traces = %v, want [first second]", traces)
	}
}

func TestReadDirToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(mkTrace(fmt.Sprintf("t%d", i), 1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a crash mid-write: append half a JSON object.
	names, err := logFiles(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("logFiles: %v %v", names, err)
	}
	path := filepath.Join(dir, names[len(names)-1])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"trace_id":"torn","op":"contai`)
	f.Close()

	traces, discarded, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if discarded != 1 {
		t.Fatalf("discarded = %d, want 1 (the torn line)", discarded)
	}
	if len(traces) != 3 {
		t.Fatalf("traces = %d, want 3 intact", len(traces))
	}
}

func TestReadDirEmptyDirErrors(t *testing.T) {
	if _, _, err := ReadDir(t.TempDir()); err == nil {
		t.Fatal("ReadDir on a dir with no log files should error")
	}
}

func TestRingAppendsToLog(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{Capacity: 2, Log: l})
	for i := 0; i < 5; i++ {
		r.Record(mkTrace(fmt.Sprintf("t%d", i), 1, 10))
	}
	l.Close()
	traces, _, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The log keeps everything recorded, even traces the ring evicted.
	if len(traces) != 5 {
		t.Fatalf("log has %d traces, want all 5 (ring retained only 2)", len(traces))
	}
}

func TestWritePerfettoValidJSON(t *testing.T) {
	traces := []*Trace{
		{
			TraceID: "abc", Op: "containment", Status: "200", DurationMS: 3,
			Root: &obs.Node{
				Name: "http.containment", DurationMS: 3, StartUS: 1_754_500_000_000_000,
				Counters: map[string]int64{"states_expanded": 7},
				Children: []*obs.Node{{
					Name: "containment.decide", DurationMS: 2, StartUS: 1_754_500_000_000_100,
					Attrs: map[string]string{"kind": "regex"},
				}},
			},
		},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, traces); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var metas, spans int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
		case "X":
			spans++
			if e.Ts == 0 || e.Dur <= 0 {
				t.Fatalf("span event %q has ts=%d dur=%d", e.Name, e.Ts, e.Dur)
			}
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if metas != 1 || spans != 2 {
		t.Fatalf("events: %d meta, %d spans; want 1 and 2", metas, spans)
	}
}

// BenchmarkRecord measures the per-trace cost of admitting an exported
// tree into the ring — the hot-path overhead the recorder adds to every
// request's Finish.
func BenchmarkRecord(b *testing.B) {
	r := New(Config{Capacity: 1024})
	tr := mkTrace("bench", 1, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(tr)
	}
}
