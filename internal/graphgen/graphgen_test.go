package graphgen

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestTable1Regimes(t *testing.T) {
	// The ordering that makes Table 1 interesting: hierarchical ≪ road ≪
	// communication ≪ web-like treewidth, relative to graph size.
	r := rand.New(rand.NewSource(1))
	road := RoadNetwork(r, 20, 12)
	web := WebLike(r, 400, 10)
	comm := Communication(r, 400)
	gen := Genealogy(r, 400)

	lbRoad, ubRoad := graph.Bounds(road)
	lbWeb, ubWeb := graph.Bounds(web)
	lbComm, ubComm := graph.Bounds(comm)
	lbGen, ubGen := graph.Bounds(gen)

	if !(lbRoad <= ubRoad && lbWeb <= ubWeb && lbComm <= ubComm && lbGen <= ubGen) {
		t.Fatal("bounds inverted")
	}
	// genealogy is nearly a tree: tiny bounds
	if ubGen > 40 {
		t.Errorf("genealogy upper bound = %d, want small", ubGen)
	}
	// the web-like graph has a much denser core than the road network of
	// comparable edge count per node
	if lbWeb <= lbRoad {
		t.Errorf("web lower bound %d should exceed road %d", lbWeb, lbRoad)
	}
	if ubWeb <= ubGen {
		t.Errorf("web upper bound %d should exceed genealogy %d", ubWeb, ubGen)
	}
}

func TestWebLikePowerLaw(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := WebLike(r, 2000, 3)
	degs := graph.SortedDegrees(g)
	// heavy tail: max degree far above median
	if degs[0] < 5*degs[len(degs)/2] {
		t.Errorf("max degree %d vs median %d: not heavy-tailed", degs[0], degs[len(degs)/2])
	}
	if g.M() < 3*2000-10 {
		t.Errorf("edge count = %d", g.M())
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a := Table1Datasets(7, 0.2)
	b := Table1Datasets(7, 0.2)
	for i := range a {
		if a[i].Graph.N() != b[i].Graph.N() || a[i].Graph.M() != b[i].Graph.M() {
			t.Errorf("%s: nondeterministic generation", a[i].Name)
		}
	}
}

func TestRoadNetworkIsSparse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := RoadNetwork(r, 30, 30)
	if g.M() > 3*g.N() {
		t.Errorf("road network too dense: n=%d m=%d", g.N(), g.M())
	}
}
