package regex

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() output
	}{
		{"a", "a"},
		{"a b", "a b"},
		{"a + b", "a + b"},
		{"a|b", "a + b"},
		{"a+", "a+"},
		{"a+ b", "a+ b"},
		{"a + b + c", "a + b + c"},
		{"(a + b)* a", "(a + b)* a"},
		{"b* a (b* a)*", "b* a (b* a)*"},
		{"a?", "a?"},
		{"a* a b b*", "a* a b b*"}, // the paper's a*abb* (labels here are multi-character, so spaces separate)
		{"<eps>", "<eps>"},
		{"<empty>", "<empty>"},
		{"(a)", "a"},
		{"((a + b))", "a + b"},
		{"name birthplace", "name birthplace"},
		{"city state country?", "city state country?"},
		{"a**", "(a*)*"},
		{"(a + b)?", "(a + b)?"},
		{"a+b", "a+ b"}, // postfix plus binds without space
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "(", ")", "a + ", "*", "<bogus>", "a & b", "(a", "<eps"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	g := DefaultGen([]string{"a", "b", "c", "person", "name"})
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		e := g.Random(r)
		s := e.String()
		f, err := Parse(s)
		if err != nil {
			t.Fatalf("round trip parse of %q: %v", s, err)
		}
		if !e.Equal(f) {
			t.Fatalf("round trip of %q changed expression: got %q", s, f.String())
		}
	}
}

func TestParseDTDContent(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"(a, b)", "a b"},
		{"(a | b)", "a + b"},
		{"(a, b*, (c | d)+)", "a b* (c + d)+"},
		{"EMPTY", "<eps>"},
		{"(#PCDATA)", "<eps>"},
		{"(#PCDATA | em | strong)*", "(<eps> + em + strong)*"},
		{"(name, birthplace)", "name birthplace"},
		{"(city, state, country?)", "city state country?"},
		{"person*", "person*"},
	}
	for _, c := range cases {
		e, err := ParseDTDContent(c.in, nil)
		if err != nil {
			t.Fatalf("ParseDTDContent(%q): %v", c.in, err)
		}
		if got := e.String(); got != c.want {
			t.Errorf("ParseDTDContent(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	any, err := ParseDTDContent("ANY", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if got := any.String(); got != "(a + b)*" {
		t.Errorf("ANY = %q", got)
	}
	for _, in := range []string{"(a,)", "(a | )", "(a", "a))", "(a % b)"} {
		if _, err := ParseDTDContent(in, nil); err == nil {
			t.Errorf("ParseDTDContent(%q): expected error", in)
		}
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"<eps>", true},
		{"<empty>", false},
		{"a", false},
		{"a*", true},
		{"a+", false},
		{"a?", true},
		{"a b", false},
		{"a* b*", true},
		{"a + b*", true},
		{"(a b)+", false},
		{"(a?)+", true},
	}
	for _, c := range cases {
		if got := MustParse(c.in).Nullable(); got != c.want {
			t.Errorf("Nullable(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsEmptyLanguage(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"<empty>", true},
		{"<eps>", false},
		{"a <empty>", true},
		{"a + <empty>", false},
		{"<empty>*", false},
		{"<empty>+", true},
		{"(<empty> + <empty>)", true},
	}
	for _, c := range cases {
		if got := MustParse(c.in).IsEmptyLanguage(); got != c.want {
			t.Errorf("IsEmptyLanguage(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSizeDepthOccurrences(t *testing.T) {
	e := MustParse("(a + b)* a (a + b)")
	if got := e.MaxOccurrences(); got != 3 {
		t.Errorf("MaxOccurrences = %d, want 3", got)
	}
	if got := e.ParseDepth(); got != 4 {
		// concat > star > union > symbol
		t.Errorf("ParseDepth = %d, want 4", got)
	}
	occ := e.Occurrences()
	if occ["a"] != 3 || occ["b"] != 2 {
		t.Errorf("Occurrences = %v", occ)
	}
	if got := strings.Join(e.Alphabet(), ","); got != "a,b" {
		t.Errorf("Alphabet = %q", got)
	}
	if e.Size() != 9 {
		// union(2) star union(2) concat + 3 symbols in star-union + a + 2 in union = count nodes:
		// concat, star, union(a,b), a, b, a, union(a,b), a, b = 9
		t.Errorf("Size = %d, want 9", e.Size())
	}
}

func TestLinearize(t *testing.T) {
	// e = (a + b)* a : positions 1=a, 2=b, 3=a.
	l := Linearize(MustParse("(a + b)* a"))
	if l.NumPositions() != 3 {
		t.Fatalf("NumPositions = %d", l.NumPositions())
	}
	if l.Nullable {
		t.Error("should not be nullable")
	}
	wantFirst := map[int]bool{1: true, 2: true, 3: true}
	for _, p := range l.First {
		if !wantFirst[p] {
			t.Errorf("unexpected first position %d", p)
		}
		delete(wantFirst, p)
	}
	if len(wantFirst) != 0 {
		t.Errorf("missing first positions %v", wantFirst)
	}
	if len(l.Last) != 1 || l.Last[0] != 3 {
		t.Errorf("Last = %v, want [3]", l.Last)
	}
	// follow(1) = {1,2,3}, follow(2) = {1,2,3}, follow(3) = {}.
	for _, p := range []int{1, 2} {
		if len(l.Follow[p]) != 3 {
			t.Errorf("Follow[%d] = %v, want 3 positions", p, l.Follow[p])
		}
	}
	if len(l.Follow[3]) != 0 {
		t.Errorf("Follow[3] = %v, want empty", l.Follow[3])
	}
}

func TestDerivativeMatches(t *testing.T) {
	cases := []struct {
		re   string
		word string // space-separated labels, "" = ε
		want bool
	}{
		{"a", "a", true},
		{"a", "b", false},
		{"a", "", false},
		{"a*", "", true},
		{"a*", "a a a", true},
		{"(a + b)* a", "b b a", true},
		{"(a + b)* a", "a b", false},
		{"b* a (b* a)*", "b b a b a", true},
		{"b* a (b* a)*", "b b", false},
		{"name birthplace", "name birthplace", true},
		{"city state country?", "city state", true},
		{"city state country?", "city state country", true},
		{"city state country?", "city country", false},
		{"(a b)+", "a b a b", true},
		{"(a b)+", "", false},
		{"a? a? a?", "a a", true},
		{"a? a? a?", "a a a a", false},
	}
	for _, c := range cases {
		var w []string
		if c.word != "" {
			w = strings.Fields(c.word)
		}
		if got := Matches(MustParse(c.re), w); got != c.want {
			t.Errorf("Matches(%q, %q) = %v, want %v", c.re, c.word, got, c.want)
		}
	}
}

func TestSimplifyPreservesMembership(t *testing.T) {
	g := DefaultGen([]string{"a", "b", "c"})
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		e := g.Random(r)
		s := e.Simplify()
		// Sample words from both and cross-check membership.
		for j := 0; j < 5; j++ {
			if w, ok := RandomWord(e, r); ok {
				if !Matches(s, w) {
					t.Fatalf("Simplify(%q) = %q rejects %v from original", e, s, w)
				}
			}
			if w, ok := RandomWord(s, r); ok {
				if !Matches(e, w) {
					t.Fatalf("original %q rejects %v from Simplify = %q", e, w, s)
				}
			}
		}
	}
}

func TestSimplifyIdentities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a <eps> b", "a b"},
		{"a <empty> b", "<empty>"},
		{"a + <empty>", "a"},
		{"(a?)?", "a?"},
		{"(a*)*", "a*"},
		{"(a*)+", "a*"},
		{"(a+)+", "a+"},
		{"(a?)*", "a*"},
		{"<eps> + a", "a?"},
		{"<eps> + a*", "a*"},
	}
	for _, c := range cases {
		if got := MustParse(c.in).Simplify().String(); got != c.want {
			t.Errorf("Simplify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRandomWordInLanguage(t *testing.T) {
	g := DefaultGen([]string{"a", "b"})
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		e := g.Random(r)
		w, ok := RandomWord(e, r)
		if !ok {
			continue
		}
		if !Matches(e, w) {
			t.Fatalf("RandomWord(%q) produced %v not in language", e, w)
		}
	}
}

func TestCloneEqualQuick(t *testing.T) {
	g := DefaultGen([]string{"a", "b", "c"})
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		_ = seed
		e := g.Random(r)
		return e.Equal(e.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcatUnionFlattening(t *testing.T) {
	e := NewConcat(NewSymbol("a"), NewConcat(NewSymbol("b"), NewSymbol("c")))
	if len(e.Subs) != 3 {
		t.Errorf("NewConcat did not flatten: %d children", len(e.Subs))
	}
	u := NewUnion(NewSymbol("a"), NewUnion(NewSymbol("b"), NewSymbol("c")))
	if len(u.Subs) != 3 {
		t.Errorf("NewUnion did not flatten: %d children", len(u.Subs))
	}
	if NewConcat().Kind != Epsilon {
		t.Error("empty concat should be ε")
	}
	if NewUnion().Kind != Empty {
		t.Error("empty union should be ∅")
	}
}
