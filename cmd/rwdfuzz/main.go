// Command rwdfuzz drives the differential-testing oracles of
// internal/oracle: seeded, budgeted randomized cross-checks of the
// decision-procedure stack (regex membership and containment, DTD/EDTD
// and JSON Schema containment, property-path and SPARQL evaluation, and
// the shard/merge pipeline). Failing inputs are shrunk to minimal
// reproducers and printed with a replay command.
//
// Usage:
//
//	rwdfuzz -seed 1 -budget 60s                 # all oracles, 60s each
//	rwdfuzz -oracle regex-membership -budget 5m # one oracle
//	rwdfuzz -oracle antichain-containment -trials 10000
//	                                            # exact trial count (CI)
//	rwdfuzz -oracle regex-membership -replay 17 # rerun one trial
//	rwdfuzz -list                               # list oracles
//	rwdfuzz -inject regex-membership ...        # deliberate bug, for
//	                                            # testing the detector
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/oracle"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "base trial seed; trial i uses seed+i")
		budget  = flag.Duration("budget", 10*time.Second, "time budget per oracle")
		trials  = flag.Int("trials", 0, "run exactly this many trials per oracle instead of a time budget")
		names   = flag.String("oracle", "all", "comma-separated oracle names, or 'all'")
		replay  = flag.Int64("replay", -1, "replay a single trial seed (requires exactly one -oracle)")
		inject  = flag.String("inject", "", "deliberately mutate one implementation of the named oracle")
		list    = flag.Bool("list", false, "list oracles and exit")
		maxDivs = flag.Int("max-divergences", 1, "stop an oracle after this many divergences")
	)
	flag.Parse()

	if *list {
		for _, o := range oracle.All() {
			fmt.Printf("%-24s %s\n", o.Name(), o.Description())
		}
		return
	}

	oracles, err := oracle.Select(strings.Split(*names, ","))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwdfuzz:", err)
		os.Exit(2)
	}
	if *inject != "" {
		if _, err := oracle.Select([]string{*inject}); err != nil {
			fmt.Fprintln(os.Stderr, "rwdfuzz: -inject:", err)
			os.Exit(2)
		}
		oracle.SetInjectedBug(*inject)
		fmt.Fprintf(os.Stderr, "rwdfuzz: deliberate bug injected into %s\n", *inject)
	}

	if *replay >= 0 {
		if len(oracles) != 1 {
			fmt.Fprintln(os.Stderr, "rwdfuzz: -replay requires exactly one -oracle")
			os.Exit(2)
		}
		d := oracle.RunTrial(oracles[0], *replay)
		if d == nil {
			fmt.Printf("%s trial %d: no divergence\n", oracles[0].Name(), *replay)
			return
		}
		fmt.Println(d)
		os.Exit(1)
	}

	found := 0
	for _, o := range oracles {
		var st *oracle.Stats
		if *trials > 0 {
			st = oracle.RunTrials(o, *seed, *trials, *maxDivs)
		} else {
			st = oracle.Run(o, *seed, *budget, *maxDivs)
		}
		fmt.Fprintf(os.Stderr, "rwdfuzz: %-24s %6d trials in %v, %d divergences\n",
			o.Name(), st.Trials, st.Elapsed.Round(time.Millisecond), len(st.Divergences))
		for _, d := range st.Divergences {
			found++
			fmt.Println(d)
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "rwdfuzz: %d divergences found\n", found)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rwdfuzz: all oracles agree")
}
