package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/automata"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends body to path and decodes the JSON response into out (if
// non-nil), returning the status code.
func post(t *testing.T, base, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

// adversarialContainment is a containment request the lazy antichain
// engine cannot finish within any test deadline: self-containment of
// the window-equality family (automata.AntichainHardExpr), whose
// subset-states are pairwise ⊆-incomparable, so pruning never fires and
// the search is exponential — k=16 needs tens of seconds.
func adversarialContainment(deadlineMS int) string {
	hard := automata.AntichainHardExpr(16)
	b, _ := json.Marshal(map[string]any{
		"engine": "regex", "left": hard, "right": hard, "deadline_ms": deadlineMS,
	})
	return string(b)
}

func TestContainmentRegex(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp containmentResponse
	code := post(t, ts.URL, "/v1/containment",
		`{"engine":"regex","left":"a b","right":"a (b|c)"}`, &resp)
	if code != 200 || !resp.Contained || resp.Verdict != "contained" {
		t.Fatalf("code=%d resp=%+v", code, resp)
	}
	code = post(t, ts.URL, "/v1/containment",
		`{"engine":"regex","left":"a (b|c)","right":"a b"}`, &resp)
	if code != 200 || resp.Contained || resp.Verdict != "not_contained" {
		t.Fatalf("code=%d resp=%+v", code, resp)
	}
}

func TestContainmentKore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp containmentResponse
	code := post(t, ts.URL, "/v1/containment",
		`{"engine":"kore","left":"a a","right":"a* a*"}`, &resp)
	if code != 200 || !resp.Contained {
		t.Fatalf("code=%d resp=%+v", code, resp)
	}
}

func TestContainmentDTD(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	left := `<!ELEMENT r (a)> <!ELEMENT a EMPTY>`
	right := `<!ELEMENT r (a|b)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>`
	body, _ := json.Marshal(map[string]string{"engine": "dtd", "left": left, "right": right})
	var resp containmentResponse
	code := post(t, ts.URL, "/v1/containment", string(body), &resp)
	if code != 200 || !resp.Contained {
		t.Fatalf("code=%d resp=%+v", code, resp)
	}
	// and the converse fails
	body, _ = json.Marshal(map[string]string{"engine": "dtd", "left": right, "right": left})
	code = post(t, ts.URL, "/v1/containment", string(body), &resp)
	if code != 200 || resp.Contained {
		t.Fatalf("code=%d resp=%+v", code, resp)
	}
}

func TestContainmentJSONSchema(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	left := `{"type":"integer","minimum":5}`
	right := `{"type":"integer"}`
	body, _ := json.Marshal(map[string]string{"engine": "jsonschema", "left": left, "right": right})
	var resp containmentResponse
	code := post(t, ts.URL, "/v1/containment", string(body), &resp)
	if code != 200 {
		t.Fatalf("code=%d resp=%+v", code, resp)
	}
	if resp.Verdict == "not_contained" {
		t.Fatalf("integer/minimum:5 ⊆ integer must not be refuted: %+v", resp)
	}
}

func TestContainmentBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var e map[string]string
	if code := post(t, ts.URL, "/v1/containment", `{"engine":"nope","left":"a","right":"a"}`, &e); code != 400 {
		t.Fatalf("unknown engine: code=%d", code)
	}
	if code := post(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"((","right":"a"}`, &e); code != 400 {
		t.Fatalf("parse error: code=%d", code)
	}
	if code := post(t, ts.URL, "/v1/containment", `not json`, &e); code != 400 {
		t.Fatalf("invalid JSON: code=%d", code)
	}
}

func TestContainmentCacheCanonicalization(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var first, second containmentResponse
	post(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a|b","right":"(a|b)*"}`, &first)
	// syntactically different, identical after canonicalization
	post(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"( a | b )","right":"( ( a | b ) )*"}`, &second)
	if first.Cached {
		t.Fatalf("first request must be a miss: %+v", first)
	}
	if !second.Cached {
		t.Fatalf("canonically identical request must hit the cache: %+v", second)
	}
	st := s.CacheStats()
	if st.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.Hits)
	}
}

func TestMembership(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp membershipResponse
	code := post(t, ts.URL, "/v1/membership",
		`{"expr":"b* a (b* a)*","word":["b","a","b","a"]}`, &resp)
	if code != 200 || !resp.Member || !resp.Deterministic {
		t.Fatalf("code=%d resp=%+v", code, resp)
	}
	code = post(t, ts.URL, "/v1/membership", `{"expr":"a b","word":["b"]}`, &resp)
	if code != 200 || resp.Member {
		t.Fatalf("code=%d resp=%+v", code, resp)
	}
}

func TestValidateDTD(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(map[string]any{
		"kind":   "dtd",
		"schema": `<!ELEMENT r (a, b*)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>`,
		"docs":   []string{"r(a, b, b)", "r(b)", "x(a)"},
	})
	var resp validateResponse
	if code := post(t, ts.URL, "/v1/validate", string(body), &resp); code != 200 {
		t.Fatalf("code=%d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if !resp.Results[0].Valid || resp.Results[1].Valid || resp.Results[2].Valid {
		t.Fatalf("validity = %+v", resp.Results)
	}
	if resp.Results[2].Error == "" {
		t.Fatal("invalid doc must carry an error message")
	}
}

func TestValidateEDTDAndSingleType(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// two types for label a distinguished by context: classic EDTD
	types := []map[string]string{
		{"name": "r", "label": "r", "content": "t1 t2"},
		{"name": "t1", "label": "a", "content": "b"},
		{"name": "t2", "label": "a", "content": ""},
		{"name": "b", "label": "b", "content": ""},
	}
	body, _ := json.Marshal(map[string]any{
		"kind": "edtd", "types": types, "start": []string{"r"},
		"docs": []string{"r(a(b), a)", "r(a, a(b))"},
	})
	var resp validateResponse
	if code := post(t, ts.URL, "/v1/validate", string(body), &resp); code != 200 {
		t.Fatalf("code=%d", code)
	}
	if !resp.Results[0].Valid || resp.Results[1].Valid {
		t.Fatalf("results = %+v", resp.Results)
	}
	// the same EDTD is not single-type (t1, t2 share label a in one rule)
	body, _ = json.Marshal(map[string]any{
		"kind": "single-type", "types": types, "start": []string{"r"},
		"docs": []string{"r(a(b), a)"},
	})
	var e map[string]string
	if code := post(t, ts.URL, "/v1/validate", string(body), &e); code != 400 {
		t.Fatalf("non-single-type EDTD must be rejected, code=%d", code)
	}
	if !strings.Contains(e["error"], "single-type") {
		t.Fatalf("error = %q", e["error"])
	}
}

func TestInfer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, alg := range []string{"sore", "chare", "kore", "best-kore"} {
		body, _ := json.Marshal(map[string]any{
			"algorithm": alg,
			"words":     [][]string{{"a", "b"}, {"a", "b", "b"}, {"a"}},
		})
		var resp inferResponse
		if code := post(t, ts.URL, "/v1/infer", string(body), &resp); code != 200 {
			t.Fatalf("%s: code=%d", alg, code)
		}
		if resp.Expr == "" {
			t.Fatalf("%s: empty expression", alg)
		}
		// learning from positive data: the sample must be in the language
		var member membershipResponse
		mb, _ := json.Marshal(map[string]any{"expr": resp.Expr, "word": []string{"a", "b"}})
		post(t, ts.URL, "/v1/membership", string(mb), &member)
		if !member.Member {
			t.Fatalf("%s: inferred %q rejects sample word a b", alg, resp.Expr)
		}
	}
	var e map[string]string
	if code := post(t, ts.URL, "/v1/infer", `{"algorithm":"magic","words":[["a"]]}`, &e); code != 400 {
		t.Fatalf("unknown algorithm: code=%d", code)
	}
}

func TestAnalyze(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(map[string]any{
		"name": "test",
		"queries": []string{
			"SELECT ?x WHERE { ?x ?p ?y }",
			"SELECT ?x WHERE { ?x ?p ?y }",
			"ASK { ?a ?b ?c . ?c ?d ?e }",
			"this is not sparql",
		},
	})
	var resp analyzeResponse
	if code := post(t, ts.URL, "/v1/analyze", string(body), &resp); code != 200 {
		t.Fatalf("code=%d", code)
	}
	if resp.Report == nil || resp.Report.Total != 4 {
		t.Fatalf("report = %+v", resp.Report)
	}
	if resp.Report.Valid != 3 || resp.Report.Unique != 2 {
		t.Fatalf("valid/unique = %d/%d, want 3/2", resp.Report.Valid, resp.Report.Unique)
	}
}

func TestDeadlineReturns504(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	start := time.Now()
	var e map[string]string
	code := post(t, ts.URL, "/v1/containment", adversarialContainment(100), &e)
	elapsed := time.Since(start)
	if code != 504 {
		t.Fatalf("code=%d, want 504 (%v)", code, e)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("took %v, want < 500ms for a 100ms deadline", elapsed)
	}
}

func TestDeadlineClampedToMax(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDeadline: 100 * time.Millisecond})
	start := time.Now()
	var e map[string]string
	// request asks for 60s but the server clamps to 100ms
	code := post(t, ts.URL, "/v1/containment", adversarialContainment(60000), &e)
	if code != 504 {
		t.Fatalf("code=%d, want 504", code)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("clamp did not apply, took %v", time.Since(start))
	}
}

func TestAdmissionControl429(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1})
	slow := make(chan int, 1)
	go func() {
		slow <- post(t, ts.URL, "/v1/containment", adversarialContainment(2000), nil)
	}()
	// wait until the slow request holds the only slot
	time.Sleep(100 * time.Millisecond)
	var e map[string]string
	code := post(t, ts.URL, "/v1/membership", `{"expr":"a","word":["a"]}`, &e)
	if code != 429 {
		t.Fatalf("code=%d, want 429", code)
	}
	// healthz and metrics bypass admission control
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz during overload: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if got := <-slow; got != 504 {
		t.Fatalf("slow request code=%d, want 504", got)
	}
}

func TestBodyCap413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := `{"engine":"regex","left":"` + strings.Repeat("a ", 2000) + `","right":"a*"}`
	var e map[string]string
	if code := post(t, ts.URL, "/v1/containment", big, &e); code != 413 {
		t.Fatalf("code=%d, want 413", code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/containment")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST endpoint: code=%d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !bytes.Contains(raw, []byte(`"ok"`)) {
		t.Fatalf("code=%d body=%s", resp.StatusCode, raw)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL, "/v1/membership", `{"expr":"a","word":["a"]}`, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		`rwdserve_requests_total{endpoint="membership",code="200"} 1`,
		"# TYPE rwdserve_request_seconds histogram",
		"rwdserve_inflight",
		"rwdserve_cache_entries",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
