// Package reduction implements the coNP-hardness reductions of Appendix A
// of "Towards Theory for Real-World Data": from validity of propositional
// DNF formulas to containment of expressions in RE(a,a?) and RE(a,a*).
//
// A DNF formula φ with n variables and m clauses is valid iff every truth
// assignment satisfies some clause. Following the appendix, the expression
// e1 consists of 2m−1 '#'-separated blocks: m−1 concrete buffer blocks, one
// middle block that generates all truth assignments, and m−1 more buffer
// blocks. The expression e2 consists of m−1 fully optional blocks, m clause
// blocks (one per clause, with a concrete '#'), and m−1 more optional
// blocks. Because every clause '#' must consume a distinct '#' of the word
// and clause blocks are adjacent in e2, the m clause blocks always cover a
// window of m consecutive blocks of the word — and the middle (generator)
// block of e1's word falls in every such window. Hence every generated
// assignment must match some clause block, i.e. satisfy some clause.
//
// Slot encodings are chosen so that buffer slots match every clause slot
// (buffers may align with any clause block):
//
//	RE(a,a?): true = aa, false = ε, buffer = a;
//	          positive slot "a a?" = {a,aa}, negative "a?" = {ε,a},
//	          unconstrained "a?a?" = {ε,a,aa}.
//	RE(a,a*): true = ab, false = ba, buffer = a;
//	          positive slot "a a* b* a*" = a⁺b*a*, negative "b* a*",
//	          unconstrained "a* b* a*".
//
// The generator slots (a?a? resp. a*b*a*) also produce half-true junk such
// as "a"; every junk value lies in positive ∪ negative (and in the
// unconstrained slot), so junk never falsifies a valid formula.
package reduction

import (
	"fmt"

	"repro/internal/regex"
)

// Literal is a possibly negated variable, 1-based; negative values denote
// negation. For example, -3 is ¬x3.
type Literal int

// Clause is a conjunction of literals.
type Clause []Literal

// DNF is a disjunction of clauses over variables 1..Vars.
type DNF struct {
	Vars    int
	Clauses []Clause
}

// Valid decides validity of φ by enumerating all 2^Vars assignments
// (used as the brute-force cross-check for the reductions; instances are
// small by construction).
func (f *DNF) Valid() bool {
	if f.Vars > 20 {
		panic("reduction: brute-force validity limited to 20 variables")
	}
	for mask := 0; mask < 1<<uint(f.Vars); mask++ {
		if !f.satisfiedBy(mask) {
			return false
		}
	}
	return true
}

func (f *DNF) satisfiedBy(mask int) bool {
	for _, cl := range f.Clauses {
		ok := true
		for _, lit := range cl {
			v := int(lit)
			if v > 0 {
				if mask&(1<<uint(v-1)) == 0 {
					ok = false
					break
				}
			} else {
				if mask&(1<<uint(-v-1)) != 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func (f *DNF) String() string {
	s := ""
	for i, cl := range f.Clauses {
		if i > 0 {
			s += " ∨ "
		}
		s += "("
		for j, lit := range cl {
			if j > 0 {
				s += " ∧ "
			}
			if lit < 0 {
				s += fmt.Sprintf("¬x%d", -lit)
			} else {
				s += fmt.Sprintf("x%d", lit)
			}
		}
		s += ")"
	}
	return s
}

// consistentClauses drops clauses containing complementary literals.
// Such clauses are unsatisfiable and contribute nothing to the
// disjunction, but the slot encodings below cannot express them: polarity
// keeps one entry per variable, so x∧¬x would silently encode as the
// satisfiable ¬x (surfaced by the round-trip table in
// TestReductionRoundTripTable).
func (f *DNF) consistentClauses() []Clause {
	out := make([]Clause, 0, len(f.Clauses))
	for _, cl := range f.Clauses {
		pos, neg := map[int]bool{}, map[int]bool{}
		for _, lit := range cl {
			if lit > 0 {
				pos[int(lit)] = true
			} else {
				neg[-int(lit)] = true
			}
		}
		ok := true
		for v := range pos {
			if neg[v] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, cl)
		}
	}
	return out
}

// neverContained is the degenerate instance for formulas whose clauses
// are all unsatisfiable: such formulas are never valid, so return a pair
// with L(e1) ⊄ L(e2) using only plain symbols (inside every fragment).
func neverContained() (*regex.Expr, *regex.Expr) {
	return regex.NewSymbol(hash), regex.NewSymbol(dollar)
}

func (f *DNF) polarity(cl Clause) map[int]int {
	pol := map[int]int{}
	for _, lit := range cl {
		if lit > 0 {
			pol[int(lit)] = 1
		} else {
			pol[-int(lit)] = -1
		}
	}
	return pol
}

// Symbols used by the encodings, matching the paper's alphabet.
const (
	hash   = "#"
	dollar = "$"
	symA   = "a"
	symB   = "b"
)

// ToOptContainment builds the RE(a,a?) instance: expressions e1, e2 such
// that φ is valid iff L(e1) ⊆ L(e2).
func (f *DNF) ToOptContainment() (e1, e2 *regex.Expr) {
	clauses := f.consistentClauses()
	if len(clauses) == 0 {
		return neverContained()
	}
	n, m := f.Vars, len(clauses)
	sym := regex.NewSymbol
	opt := func(a string) *regex.Expr { return regex.NewOpt(sym(a)) }

	// e1 buffer block: # a $ a $ … $ a  — slot value "a" matches every
	// clause-slot encoding.
	buffer := func(parts []*regex.Expr) []*regex.Expr {
		parts = append(parts, sym(hash))
		for i := 0; i < n; i++ {
			if i > 0 {
				parts = append(parts, sym(dollar))
			}
			parts = append(parts, sym(symA))
		}
		return parts
	}
	// e1 generator block: # a?a? $ a?a? $ … — aa = true, ε = false.
	generator := func(parts []*regex.Expr) []*regex.Expr {
		parts = append(parts, sym(hash))
		for i := 0; i < n; i++ {
			if i > 0 {
				parts = append(parts, sym(dollar))
			}
			parts = append(parts, opt(symA), opt(symA))
		}
		return parts
	}
	// e2 optional block: #? a?a? $? a?a? $? … — matches any single block
	// of e1's words, or ε.
	optional := func(parts []*regex.Expr) []*regex.Expr {
		parts = append(parts, opt(hash))
		for i := 0; i < n; i++ {
			if i > 0 {
				parts = append(parts, opt(dollar))
			}
			parts = append(parts, opt(symA), opt(symA))
		}
		return parts
	}
	// e2 clause block: slot encodings {a,aa} / {ε,a} / {ε,a,aa}.
	clause := func(parts []*regex.Expr, cl Clause) []*regex.Expr {
		pol := f.polarity(cl)
		parts = append(parts, sym(hash))
		for i := 1; i <= n; i++ {
			if i > 1 {
				parts = append(parts, sym(dollar))
			}
			switch pol[i] {
			case 1:
				parts = append(parts, sym(symA), opt(symA))
			case -1:
				parts = append(parts, opt(symA))
			default:
				parts = append(parts, opt(symA), opt(symA))
			}
		}
		return parts
	}

	var p1 []*regex.Expr
	for i := 0; i < m-1; i++ {
		p1 = buffer(p1)
	}
	p1 = generator(p1)
	for i := 0; i < m-1; i++ {
		p1 = buffer(p1)
	}
	e1 = regex.NewConcat(p1...)

	var p2 []*regex.Expr
	for i := 0; i < m-1; i++ {
		p2 = optional(p2)
	}
	for _, cl := range clauses {
		p2 = clause(p2, cl)
	}
	for i := 0; i < m-1; i++ {
		p2 = optional(p2)
	}
	e2 = regex.NewConcat(p2...)
	return e1, e2
}

// ToStarContainment builds the RE(a,a*) instance of Appendix A, in which
// the word "ab" encodes true and "ba" encodes false.
func (f *DNF) ToStarContainment() (e1, e2 *regex.Expr) {
	clauses := f.consistentClauses()
	if len(clauses) == 0 {
		return neverContained()
	}
	n, m := f.Vars, len(clauses)
	sym := regex.NewSymbol
	star := func(a string) *regex.Expr { return regex.NewStar(sym(a)) }

	buffer := func(parts []*regex.Expr) []*regex.Expr {
		parts = append(parts, sym(hash))
		for i := 0; i < n; i++ {
			if i > 0 {
				parts = append(parts, sym(dollar))
			}
			parts = append(parts, sym(symA))
		}
		return parts
	}
	// generator slot a* b* a*: produces ab (true), ba (false) and junk
	// a^i b^j a^k, all of which lies in positive ∪ negative below.
	generator := func(parts []*regex.Expr) []*regex.Expr {
		parts = append(parts, sym(hash))
		for i := 0; i < n; i++ {
			if i > 0 {
				parts = append(parts, sym(dollar))
			}
			parts = append(parts, star(symA), star(symB), star(symA))
		}
		return parts
	}
	optional := func(parts []*regex.Expr) []*regex.Expr {
		parts = append(parts, star(hash))
		for i := 0; i < n; i++ {
			if i > 0 {
				parts = append(parts, star(dollar))
			}
			parts = append(parts, star(symA), star(symB), star(symA))
		}
		return parts
	}
	clause := func(parts []*regex.Expr, cl Clause) []*regex.Expr {
		pol := f.polarity(cl)
		parts = append(parts, sym(hash))
		for i := 1; i <= n; i++ {
			if i > 1 {
				parts = append(parts, sym(dollar))
			}
			switch pol[i] {
			case 1:
				// a⁺b*a*: accepts ab and buffer a, rejects ba and every
				// b-initial junk word.
				parts = append(parts, sym(symA), star(symA), star(symB), star(symA))
			case -1:
				// b*a*: accepts ba, buffer a, and all b-initial junk;
				// rejects ab (a before b).
				parts = append(parts, star(symB), star(symA))
			default:
				parts = append(parts, star(symA), star(symB), star(symA))
			}
		}
		return parts
	}

	var p1 []*regex.Expr
	for i := 0; i < m-1; i++ {
		p1 = buffer(p1)
	}
	p1 = generator(p1)
	for i := 0; i < m-1; i++ {
		p1 = buffer(p1)
	}
	e1 = regex.NewConcat(p1...)

	var p2 []*regex.Expr
	for i := 0; i < m-1; i++ {
		p2 = optional(p2)
	}
	for _, cl := range clauses {
		p2 = clause(p2, cl)
	}
	for i := 0; i < m-1; i++ {
		p2 = optional(p2)
	}
	e2 = regex.NewConcat(p2...)
	return e1, e2
}
