package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/propertypath"
)

// Parse parses a SPARQL query string in the Section 9 fragment. Queries
// outside the fragment (or syntactically invalid ones — the logs of
// Table 2 contain millions of those) return an error; the analysis
// pipeline counts them as non-Valid.
func Parse(src string) (*Query, error) {
	toks, err := lexSPARQL(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return q, nil
}

// MustParse panics on error; for tests.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	pos  int
}

// peek clamps at the trailing EOF token so that error paths after an
// over-eager next() cannot index out of range.
func (p *parser) peek() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sparql: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().off)
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if t := p.peek(); t.kind == tokPunct && t.text == s {
		p.pos++
		return nil
	}
	return p.errf("expected %q, found %q", s, p.peek().text)
}

func (p *parser) isPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Prefixes: map[string]string{}, Limit: -1, Offset: -1}
	// prologue
	for {
		if p.acceptKeyword("PREFIX") {
			name := p.next()
			if name.kind != tokIRI || !strings.HasSuffix(name.text, ":") && !strings.Contains(name.text, ":") {
				return nil, p.errf("malformed PREFIX declaration")
			}
			iri := p.next()
			if iri.kind != tokIRI {
				return nil, p.errf("PREFIX needs an IRI")
			}
			pref := name.text
			if i := strings.IndexByte(pref, ':'); i >= 0 {
				pref = pref[:i]
			}
			q.Prefixes[pref] = iri.text
			continue
		}
		if p.acceptKeyword("BASE") {
			if p.next().kind != tokIRI {
				return nil, p.errf("BASE needs an IRI")
			}
			continue
		}
		break
	}
	switch {
	case p.acceptKeyword("SELECT"):
		q.Type = Select
		if err := p.parseSelectClause(q); err != nil {
			return nil, err
		}
	case p.acceptKeyword("ASK"):
		q.Type = Ask
	case p.acceptKeyword("CONSTRUCT"):
		q.Type = Construct
		if p.isPunct("{") {
			tmpl, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			q.Template = tmpl.Subs
		}
	case p.acceptKeyword("DESCRIBE"):
		q.Type = Describe
		for {
			t := p.peek()
			if t.kind == tokVar {
				p.next()
				q.DescribeTerms = append(q.DescribeTerms, Term{TermVar, t.text})
				continue
			}
			if t.kind == tokIRI {
				p.next()
				q.DescribeTerms = append(q.DescribeTerms, Term{TermIRI, t.text})
				continue
			}
			if t.kind == tokPunct && t.text == "*" {
				p.next()
				q.Star = true
				continue
			}
			break
		}
		if len(q.DescribeTerms) == 0 && !q.Star {
			return nil, p.errf("DESCRIBE needs targets")
		}
	default:
		return nil, p.errf("expected query form, found %q", p.peek().text)
	}
	// datasets
	for p.acceptKeyword("FROM") {
		p.acceptKeyword("NAMED")
		if p.next().kind != tokIRI {
			return nil, p.errf("FROM needs an IRI")
		}
	}
	// WHERE
	hasWhere := p.acceptKeyword("WHERE")
	if p.isPunct("{") {
		w, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		q.Where = w
	} else if hasWhere {
		return nil, p.errf("WHERE needs a group")
	} else if q.Type != Describe {
		return nil, p.errf("query needs a WHERE clause")
	}
	if err := p.parseSolutionModifiers(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseSelectClause(q *Query) error {
	if p.acceptKeyword("DISTINCT") {
		q.Distinct = true
	} else if p.acceptKeyword("REDUCED") {
		q.Reduced = true
	}
	if p.isPunct("*") {
		p.pos++
		q.Star = true
		return nil
	}
	for {
		t := p.peek()
		if t.kind == tokVar {
			p.pos++
			q.Items = append(q.Items, SelectItem{Var: t.text})
			continue
		}
		if p.isPunct("(") {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			if !p.acceptKeyword("AS") {
				return p.errf("expected AS in select expression")
			}
			v := p.next()
			if v.kind != tokVar {
				return p.errf("AS needs a variable")
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			q.Items = append(q.Items, SelectItem{Var: v.text, Expr: e})
			continue
		}
		break
	}
	if len(q.Items) == 0 {
		return p.errf("SELECT needs projections or *")
	}
	return nil
}

func (p *parser) parseSolutionModifiers(q *Query) error {
	for {
		switch {
		case p.acceptKeyword("GROUP"):
			if !p.acceptKeyword("BY") {
				return p.errf("GROUP must be followed by BY")
			}
			n := 0
			for {
				t := p.peek()
				if t.kind == tokVar {
					p.pos++
					q.GroupBy = append(q.GroupBy, t.text)
					n++
					continue
				}
				if p.isPunct("(") {
					p.pos++
					if _, err := p.parseExpr(); err != nil {
						return err
					}
					if p.acceptKeyword("AS") {
						if p.next().kind != tokVar {
							return p.errf("AS needs a variable")
						}
					}
					if err := p.expectPunct(")"); err != nil {
						return err
					}
					q.GroupBy = append(q.GroupBy, "(expr)")
					n++
					continue
				}
				break
			}
			if n == 0 {
				return p.errf("GROUP BY needs conditions")
			}
		case p.acceptKeyword("HAVING"):
			e, err := p.parseBracketedOrPlainExpr()
			if err != nil {
				return err
			}
			q.Having = append(q.Having, e)
		case p.acceptKeyword("ORDER"):
			if !p.acceptKeyword("BY") {
				return p.errf("ORDER must be followed by BY")
			}
			n := 0
			for {
				if p.acceptKeyword("ASC") || p.acceptKeyword("DESC") {
					if err := p.expectPunct("("); err != nil {
						return err
					}
					if _, err := p.parseExpr(); err != nil {
						return err
					}
					if err := p.expectPunct(")"); err != nil {
						return err
					}
					n++
					continue
				}
				t := p.peek()
				if t.kind == tokVar {
					p.pos++
					n++
					continue
				}
				if t.kind == tokKeyword && isBuiltinFunc(t.text) {
					if _, err := p.parseExpr(); err != nil {
						return err
					}
					n++
					continue
				}
				break
			}
			if n == 0 {
				return p.errf("ORDER BY needs conditions")
			}
			q.OrderBy += n
		case p.acceptKeyword("LIMIT"):
			t := p.next()
			if t.kind != tokNumber {
				return p.errf("LIMIT needs a number")
			}
			v, _ := strconv.Atoi(t.text)
			q.Limit = v
		case p.acceptKeyword("OFFSET"):
			t := p.next()
			if t.kind != tokNumber {
				return p.errf("OFFSET needs a number")
			}
			v, _ := strconv.Atoi(t.text)
			q.Offset = v
		case p.acceptKeyword("VALUES"):
			// trailing VALUES block
			vals, err := p.parseValues()
			if err != nil {
				return err
			}
			if q.Where == nil {
				q.Where = vals
			} else {
				q.Where = &Pattern{Kind: PGroup, Subs: []*Pattern{q.Where, vals}}
			}
		default:
			return nil
		}
	}
}

func (p *parser) parseBracketedOrPlainExpr() (*Expr, error) {
	if p.isPunct("(") {
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseExpr()
}

// parseGroup parses { … } into a PGroup pattern.
func (p *parser) parseGroup() (*Pattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	group := &Pattern{Kind: PGroup}
	for {
		t := p.peek()
		switch {
		case t.kind == tokPunct && t.text == "}":
			p.pos++
			return group, nil
		case t.kind == tokEOF:
			return nil, p.errf("unterminated group")
		case t.kind == tokKeyword && t.text == "OPTIONAL":
			p.pos++
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			group.Subs = append(group.Subs, &Pattern{Kind: POptional, Subs: []*Pattern{sub}})
		case t.kind == tokKeyword && t.text == "MINUS":
			p.pos++
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			group.Subs = append(group.Subs, &Pattern{Kind: PMinus, Subs: []*Pattern{sub}})
		case t.kind == tokKeyword && t.text == "FILTER":
			p.pos++
			e, err := p.parseFilterConstraint()
			if err != nil {
				return nil, err
			}
			group.Subs = append(group.Subs, &Pattern{Kind: PFilter, Expr: e})
		case t.kind == tokKeyword && t.text == "BIND":
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.acceptKeyword("AS") {
				return nil, p.errf("BIND needs AS")
			}
			v := p.next()
			if v.kind != tokVar {
				return nil, p.errf("BIND needs a variable")
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			group.Subs = append(group.Subs, &Pattern{Kind: PBind, Expr: e, BindVar: v.text})
		case t.kind == tokKeyword && t.text == "GRAPH":
			p.pos++
			name, err := p.parseVarOrIRI()
			if err != nil {
				return nil, err
			}
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			group.Subs = append(group.Subs, &Pattern{Kind: PGraph, Name: name, Subs: []*Pattern{sub}})
		case t.kind == tokKeyword && t.text == "SERVICE":
			p.pos++
			silent := p.acceptKeyword("SILENT")
			name, err := p.parseVarOrIRI()
			if err != nil {
				return nil, err
			}
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			group.Subs = append(group.Subs, &Pattern{Kind: PService, Name: name, Subs: []*Pattern{sub}, Silent: silent})
		case t.kind == tokKeyword && t.text == "VALUES":
			p.pos++
			vals, err := p.parseValues()
			if err != nil {
				return nil, err
			}
			group.Subs = append(group.Subs, vals)
		case t.kind == tokKeyword && (t.text == "SELECT"):
			// subquery
			sub, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			group.Subs = append(group.Subs, &Pattern{Kind: PSubquery, Query: sub})
		case t.kind == tokPunct && t.text == "{":
			// nested group, possibly a UNION chain
			first, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			node := first
			for p.acceptKeyword("UNION") {
				right, err := p.parseGroup()
				if err != nil {
					return nil, err
				}
				node = &Pattern{Kind: PUnion, Subs: []*Pattern{node, right}}
			}
			group.Subs = append(group.Subs, node)
		case t.kind == tokPunct && t.text == ".":
			p.pos++ // stray dot separators are fine
		default:
			// triples block
			triples, err := p.parseTriplesBlock()
			if err != nil {
				return nil, err
			}
			group.Subs = append(group.Subs, triples...)
		}
	}
}

func (p *parser) parseValues() (*Pattern, error) {
	out := &Pattern{Kind: PValues}
	single := false
	switch t := p.peek(); {
	case t.kind == tokVar:
		p.pos++
		out.ValuesVars = []string{t.text}
		single = true
	case p.isPunct("("):
		p.pos++
		for p.peek().kind == tokVar {
			out.ValuesVars = append(out.ValuesVars, p.next().text)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("VALUES needs variables")
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		if p.peek().kind == tokEOF {
			return nil, p.errf("unterminated VALUES block")
		}
		if single {
			t := p.next()
			if t.kind != tokIRI && t.kind != tokLiteral && t.kind != tokNumber && !(t.kind == tokKeyword && t.text == "UNDEF") {
				return nil, p.errf("bad VALUES row entry %q", t.text)
			}
			out.ValuesRows++
			out.ValuesData = append(out.ValuesData, []string{valuesEntry(t)})
			continue
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []string
		for !p.isPunct(")") {
			t := p.next()
			if t.kind != tokIRI && t.kind != tokLiteral && t.kind != tokNumber && !(t.kind == tokKeyword && t.text == "UNDEF") {
				return nil, p.errf("bad VALUES row entry %q", t.text)
			}
			row = append(row, valuesEntry(t))
		}
		p.pos++
		out.ValuesRows++
		out.ValuesData = append(out.ValuesData, row)
	}
	p.pos++
	return out, nil
}

// valuesEntry renders a VALUES row token; UNDEF becomes the empty string.
func valuesEntry(t token) string {
	if t.kind == tokKeyword && t.text == "UNDEF" {
		return ""
	}
	return t.text
}

func (p *parser) parseVarOrIRI() (Term, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return Term{TermVar, t.text}, nil
	case tokIRI:
		return Term{TermIRI, t.text}, nil
	}
	return Term{}, p.errf("expected variable or IRI, found %q", t.text)
}

// parseTriplesBlock parses a run of triples with ';' and ',' abbreviations
// until a non-triple token.
func (p *parser) parseTriplesBlock() ([]*Pattern, error) {
	var out []*Pattern
	for {
		s, err := p.parseTerm(true)
		if err != nil {
			return nil, err
		}
		for {
			// predicate: variable or property path
			var pred Term
			var path *propertypath.Path
			if t := p.peek(); t.kind == tokVar {
				p.pos++
				pred = Term{TermVar, t.text}
			} else {
				pp, err := p.parsePropertyPath()
				if err != nil {
					return nil, err
				}
				if pp.Kind == propertypath.IRI {
					pred = Term{TermIRI, pp.IRI}
				} else {
					path = pp
				}
			}
			for {
				o, err := p.parseTerm(false)
				if err != nil {
					return nil, err
				}
				tp := &Pattern{Kind: PTriple, S: s, P: pred, O: o}
				if path != nil {
					tp.Kind = PPath
					tp.Path = path
				}
				out = append(out, tp)
				if p.isPunct(",") {
					p.pos++
					continue
				}
				break
			}
			if p.isPunct(";") {
				p.pos++
				// allow trailing ';' before '.' or '}'
				if t := p.peek(); t.kind == tokPunct && (t.text == "." || t.text == "}") {
					break
				}
				continue
			}
			break
		}
		if p.isPunct(".") {
			p.pos++
			// another triples run may follow; stop on non-term tokens
			t := p.peek()
			if t.kind == tokVar || t.kind == tokIRI || t.kind == tokBlank ||
				t.kind == tokLiteral || t.kind == tokNumber {
				continue
			}
		}
		return out, nil
	}
}

func (p *parser) parseTerm(subjectPos bool) (Term, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return Term{TermVar, t.text}, nil
	case tokIRI:
		return Term{TermIRI, t.text}, nil
	case tokBlank:
		return Term{TermBlank, t.text}, nil
	case tokLiteral:
		// consume optional ^^type
		if p.isPunct("^^") {
			p.pos++
			if p.next().kind != tokIRI {
				return Term{}, p.errf("datatype needs an IRI")
			}
		}
		if subjectPos {
			return Term{}, p.errf("literal in subject position")
		}
		return Term{TermLiteral, t.text}, nil
	case tokNumber:
		if subjectPos {
			return Term{}, p.errf("number in subject position")
		}
		return Term{TermLiteral, t.text}, nil
	case tokKeyword:
		if t.text == "TRUE" || t.text == "FALSE" {
			return Term{TermLiteral, strings.ToLower(t.text)}, nil
		}
	case tokPunct:
		if t.text == "[" {
			// anonymous blank node [] (property lists unsupported)
			if p.isPunct("]") {
				p.pos++
				return Term{TermBlank, fmt.Sprintf("anon%d", p.pos)}, nil
			}
		}
	}
	return Term{}, p.errf("expected RDF term, found %q", t.text)
}

// parsePropertyPath parses a property path at predicate position by
// reassembling path tokens into a string for the propertypath parser.
func (p *parser) parsePropertyPath() (*propertypath.Path, error) {
	// Reassemble path tokens with an expectation state machine so that the
	// object term following the path is not swallowed: an IRI is consumed
	// only where an atom is expected (start, after / | ^ ! or '(').
	var b strings.Builder
	depth := 0
	start := p.pos
	expectAtom := true
	for {
		t := p.peek()
		switch {
		case t.kind == tokIRI && expectAtom:
			b.WriteString(t.text)
			p.pos++
			expectAtom = false
		case t.kind == tokPunct && (t.text == "/" || t.text == "|") && !expectAtom:
			// '|' continues the path only inside parentheses or between
			// atoms of the same predicate position
			b.WriteString(t.text)
			p.pos++
			expectAtom = true
		case t.kind == tokPunct && (t.text == "^" || t.text == "!") && expectAtom:
			b.WriteString(t.text)
			p.pos++
		case t.kind == tokPunct && (t.text == "*" || t.text == "+" || t.text == "?") && !expectAtom:
			b.WriteString(t.text)
			p.pos++
		case t.kind == tokPunct && t.text == "(" && expectAtom:
			depth++
			b.WriteString("(")
			p.pos++
		case t.kind == tokPunct && t.text == ")" && depth > 0 && !expectAtom:
			depth--
			b.WriteString(")")
			p.pos++
		default:
			if p.pos == start {
				return nil, p.errf("expected predicate, found %q", t.text)
			}
			if depth != 0 || expectAtom {
				return nil, p.errf("malformed property path")
			}
			return propertypath.Parse(b.String())
		}
	}
}

func (p *parser) parseFilterConstraint() (*Expr, error) {
	// FILTER EXISTS {…} / FILTER NOT EXISTS {…} / FILTER (expr) /
	// FILTER builtin(…)
	if p.acceptKeyword("NOT") {
		if !p.acceptKeyword("EXISTS") {
			return nil, p.errf("NOT must be followed by EXISTS")
		}
		g, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EExists, Pattern: g, Negated: true}, nil
	}
	if p.acceptKeyword("EXISTS") {
		g, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EExists, Pattern: g}, nil
	}
	return p.parseBracketedOrPlainExpr()
}

// ------------------------------- expressions -------------------------------

func (p *parser) parseExpr() (*Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Expr{Kind: EBool, Op: "||", Subs: []*Expr{left, right}}
	}
	return left, nil
}

func (p *parser) parseAnd() (*Expr, error) {
	left, err := p.parseCompare()
	if err != nil {
		return nil, err
	}
	for p.isPunct("&&") {
		p.pos++
		right, err := p.parseCompare()
		if err != nil {
			return nil, err
		}
		left = &Expr{Kind: EBool, Op: "&&", Subs: []*Expr{left, right}}
	}
	return left, nil
}

var compareOps = map[string]bool{"=": true, "!=": true, "<": true, ">": true, "<=": true, ">=": true}

func (p *parser) parseCompare() (*Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokPunct && compareOps[t.text] {
		p.pos++
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ECompare, Op: t.text, Subs: []*Expr{left, right}}, nil
	}
	if p.acceptKeyword("IN") {
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EIn, Subs: append([]*Expr{left}, args...)}, nil
	}
	if p.acceptKeyword("NOT") {
		if !p.acceptKeyword("IN") {
			return nil, p.errf("NOT must be followed by IN")
		}
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EIn, Negated: true, Subs: append([]*Expr{left}, args...)}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (*Expr, error) {
	left, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct || (t.text != "+" && t.text != "-" && t.text != "*" && t.text != "/") {
			return left, nil
		}
		p.pos++
		right, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		left = &Expr{Kind: EArith, Op: t.text, Subs: []*Expr{left, right}}
	}
}

func (p *parser) parseUnaryExpr() (*Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "!":
		p.pos++
		sub, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ENot, Subs: []*Expr{sub}}, nil
	case t.kind == tokPunct && t.text == "-":
		p.pos++
		sub, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EArith, Op: "neg", Subs: []*Expr{sub}}, nil
	case t.kind == tokPunct && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokVar:
		p.pos++
		return &Expr{Kind: EVar, Var: t.text}, nil
	case t.kind == tokLiteral || t.kind == tokNumber:
		p.pos++
		if p.isPunct("^^") {
			p.pos++
			if p.next().kind != tokIRI {
				return nil, p.errf("datatype needs an IRI")
			}
		}
		return &Expr{Kind: EConst, Const: t.text}, nil
	case t.kind == tokIRI:
		p.pos++
		// IRI constant or IRI-function call iri(…)
		if p.isPunct("(") {
			args, err := p.parseArgList()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: EFunc, Func: strings.ToUpper(t.text), Subs: args}, nil
		}
		return &Expr{Kind: EConst, Const: t.text}, nil
	case t.kind == tokKeyword && t.text == "NOT":
		p.pos++
		if !p.acceptKeyword("EXISTS") {
			return nil, p.errf("NOT must be followed by EXISTS")
		}
		g, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EExists, Pattern: g, Negated: true}, nil
	case t.kind == tokKeyword && t.text == "EXISTS":
		p.pos++
		g, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EExists, Pattern: g}, nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.pos++
		return &Expr{Kind: EConst, Const: strings.ToLower(t.text)}, nil
	case t.kind == tokKeyword:
		// builtin or aggregate: NAME(…)
		name := t.text
		p.pos++
		if !p.isPunct("(") {
			return nil, p.errf("unexpected keyword %q in expression", name)
		}
		args, err := p.parseAggArgList(name)
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EFunc, Func: name, Subs: args}, nil
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}

func (p *parser) parseArgList() ([]*Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []*Expr
	if p.isPunct(")") {
		p.pos++
		return args, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.isPunct(",") {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return args, nil
}

// parseAggArgList handles COUNT(*), DISTINCT inside aggregates, and
// GROUP_CONCAT separators.
func (p *parser) parseAggArgList(name string) ([]*Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	p.acceptKeyword("DISTINCT")
	var args []*Expr
	if p.isPunct("*") {
		p.pos++
	} else if !p.isPunct(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if p.isPunct(",") {
				p.pos++
				continue
			}
			if p.isPunct(";") { // GROUP_CONCAT(… ; SEPARATOR="…")
				p.pos++
				p.acceptKeyword("SEPARATOR")
				p.expectPunct("=")
				p.next()
			}
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	_ = name
	return args, nil
}

func isBuiltinFunc(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT":
		return true
	}
	return false
}
