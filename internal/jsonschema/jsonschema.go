// Package jsonschema implements the logic-based JSON Schema fragment
// discussed in Section 4.5 of "Towards Theory for Real-World Data": schemas
// are logical combinations of assertions on objects, arrays and base values
// (after Bourhis et al.). The package provides a validator and the corpus
// analyses of the two studies the paper reports:
//
//   - Maiwald, Riedle & Scherzinger: 159 schemas — 26 recursive; the
//     non-recursive ones allow maximal nesting depths from 3 to 43 with an
//     average of 11; schema-full mode (additionalProperties: false) was
//     explicit in 8 schemas.
//   - Baazizi et al.: 11.5k schemas — negation ("not") used in 2.6% of
//     files, often as a workaround for missing features such as a
//     "forbidden" keyword (¬required) or implication (¬x ∨ y).
package jsonschema

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Schema is a JSON Schema node in the supported fragment: type, properties,
// required, items, enum, const, not, allOf/anyOf/oneOf, $ref, and
// additionalProperties.
type Schema struct {
	// Type restricts the value kind: "object", "array", "string",
	// "number", "integer", "boolean", "null". Empty means unconstrained.
	Type string
	// Properties maps object keys to their sub-schema.
	Properties map[string]*Schema
	propOrder  []string
	// Required lists keys that must be present.
	Required []string
	// AdditionalProperties false forbids keys beyond Properties
	// (schema-full mode in the Maiwald et al. study; JSON Schema is
	// schema-mixed by default).
	AdditionalProperties *bool
	// Items constrains every array element.
	Items *Schema
	// Enum restricts to one of the given values (compared as JSON).
	Enum []interface{}
	// Not, AllOf, AnyOf, OneOf are the logical combinators.
	Not   *Schema
	AllOf []*Schema
	AnyOf []*Schema
	OneOf []*Schema
	// Ref refers to a definition: "#/definitions/name" or "#/$defs/name".
	Ref string
	// Definitions holds named sub-schemas (definitions / $defs).
	Definitions map[string]*Schema
	// True/False schemas: JSON Schema allows booleans as schemas.
	BoolSchema *bool
}

// Parse parses a JSON Schema document in the supported fragment.
func Parse(doc string) (*Schema, error) {
	var raw interface{}
	dec := json.NewDecoder(strings.NewReader(doc))
	dec.UseNumber()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("jsonschema: %v", err)
	}
	return fromRaw(raw)
}

// MustParse panics on error.
func MustParse(doc string) *Schema {
	s, err := Parse(doc)
	if err != nil {
		panic(err)
	}
	return s
}

func fromRaw(raw interface{}) (*Schema, error) {
	switch v := raw.(type) {
	case bool:
		b := v
		return &Schema{BoolSchema: &b}, nil
	case map[string]interface{}:
		s := &Schema{}
		for key, val := range v {
			var err error
			switch key {
			case "type":
				if ts, ok := val.(string); ok {
					s.Type = ts
				} else {
					return nil, fmt.Errorf("jsonschema: unsupported union type %v", val)
				}
			case "properties":
				props, ok := val.(map[string]interface{})
				if !ok {
					return nil, fmt.Errorf("jsonschema: properties must be an object")
				}
				s.Properties = map[string]*Schema{}
				for name, sub := range props {
					s.Properties[name], err = fromRaw(sub)
					if err != nil {
						return nil, err
					}
					s.propOrder = append(s.propOrder, name)
				}
			case "required":
				arr, ok := val.([]interface{})
				if !ok {
					return nil, fmt.Errorf("jsonschema: required must be an array")
				}
				for _, x := range arr {
					str, ok := x.(string)
					if !ok {
						return nil, fmt.Errorf("jsonschema: required entries must be strings")
					}
					s.Required = append(s.Required, str)
				}
			case "additionalProperties":
				if b, ok := val.(bool); ok {
					s.AdditionalProperties = &b
				}
				// sub-schema form is treated as permissive (true)
			case "items":
				s.Items, err = fromRaw(val)
				if err != nil {
					return nil, err
				}
			case "enum":
				arr, ok := val.([]interface{})
				if !ok {
					return nil, fmt.Errorf("jsonschema: enum must be an array")
				}
				s.Enum = arr
			case "const":
				s.Enum = []interface{}{val}
			case "not":
				s.Not, err = fromRaw(val)
				if err != nil {
					return nil, err
				}
			case "allOf", "anyOf", "oneOf":
				arr, ok := val.([]interface{})
				if !ok {
					return nil, fmt.Errorf("jsonschema: %s must be an array", key)
				}
				var subs []*Schema
				for _, x := range arr {
					sub, err := fromRaw(x)
					if err != nil {
						return nil, err
					}
					subs = append(subs, sub)
				}
				switch key {
				case "allOf":
					s.AllOf = subs
				case "anyOf":
					s.AnyOf = subs
				case "oneOf":
					s.OneOf = subs
				}
			case "$ref":
				str, ok := val.(string)
				if !ok {
					return nil, fmt.Errorf("jsonschema: $ref must be a string")
				}
				s.Ref = str
			case "definitions", "$defs":
				defs, ok := val.(map[string]interface{})
				if !ok {
					return nil, fmt.Errorf("jsonschema: %s must be an object", key)
				}
				if s.Definitions == nil {
					s.Definitions = map[string]*Schema{}
				}
				for name, sub := range defs {
					s.Definitions[name], err = fromRaw(sub)
					if err != nil {
						return nil, err
					}
				}
			default:
				// annotations ($schema, title, description, …) are ignored
			}
		}
		return s, nil
	default:
		return nil, fmt.Errorf("jsonschema: schema must be an object or boolean")
	}
}

// resolve resolves a $ref against the root schema's definitions.
func (root *Schema) resolve(ref string) (*Schema, error) {
	for _, prefix := range []string{"#/definitions/", "#/$defs/"} {
		if strings.HasPrefix(ref, prefix) {
			name := ref[len(prefix):]
			if s, ok := root.Definitions[name]; ok {
				return s, nil
			}
			return nil, fmt.Errorf("jsonschema: unresolved $ref %q", ref)
		}
	}
	if ref == "#" {
		return root, nil
	}
	return nil, fmt.Errorf("jsonschema: unsupported $ref %q", ref)
}

// Validate checks a JSON document against the schema.
func (s *Schema) Validate(doc string) error {
	var val interface{}
	dec := json.NewDecoder(strings.NewReader(doc))
	dec.UseNumber()
	if err := dec.Decode(&val); err != nil {
		return fmt.Errorf("jsonschema: invalid JSON: %v", err)
	}
	if !s.valid(s, val) {
		return fmt.Errorf("jsonschema: document does not satisfy schema")
	}
	return nil
}

// valid implements the assertion semantics; root carries definitions.
func (root *Schema) valid(s *Schema, v interface{}) bool {
	if s.BoolSchema != nil {
		return *s.BoolSchema
	}
	if s.Ref != "" {
		target, err := root.resolve(s.Ref)
		if err != nil {
			return false
		}
		if !root.valid(target, v) {
			return false
		}
	}
	if s.Type != "" && !typeMatches(s.Type, v) {
		return false
	}
	if s.Enum != nil {
		ok := false
		for _, e := range s.Enum {
			if jsonEqual(e, v) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if obj, isObj := v.(map[string]interface{}); isObj {
		for _, req := range s.Required {
			if _, ok := obj[req]; !ok {
				return false
			}
		}
		for name, sub := range s.Properties {
			if val, ok := obj[name]; ok {
				if !root.valid(sub, val) {
					return false
				}
			}
		}
		if s.AdditionalProperties != nil && !*s.AdditionalProperties {
			for name := range obj {
				if _, declared := s.Properties[name]; !declared {
					return false
				}
			}
		}
	}
	if arr, isArr := v.([]interface{}); isArr && s.Items != nil {
		for _, el := range arr {
			if !root.valid(s.Items, el) {
				return false
			}
		}
	}
	if s.Not != nil && root.valid(s.Not, v) {
		return false
	}
	for _, sub := range s.AllOf {
		if !root.valid(sub, v) {
			return false
		}
	}
	if s.AnyOf != nil {
		ok := false
		for _, sub := range s.AnyOf {
			if root.valid(sub, v) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if s.OneOf != nil {
		n := 0
		for _, sub := range s.OneOf {
			if root.valid(sub, v) {
				n++
			}
		}
		if n != 1 {
			return false
		}
	}
	return true
}

func typeMatches(t string, v interface{}) bool {
	switch t {
	case "object":
		_, ok := v.(map[string]interface{})
		return ok
	case "array":
		_, ok := v.([]interface{})
		return ok
	case "string":
		_, ok := v.(string)
		return ok
	case "boolean":
		_, ok := v.(bool)
		return ok
	case "null":
		return v == nil
	case "number":
		_, ok := v.(json.Number)
		return ok
	case "integer":
		n, ok := v.(json.Number)
		if !ok {
			return false
		}
		_, err := n.Int64()
		return err == nil && !strings.ContainsAny(n.String(), ".eE")
	}
	return false
}

func jsonEqual(a, b interface{}) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}
