// Package service is the production HTTP layer over the repository's
// decision procedures and analysis pipeline. Every capability that was
// previously CLI-only — regex/k-ORE/DTD/JSON-Schema containment
// (Theorems 4.4–4.6), membership, DTD/EDTD validation, schema inference
// (Section 4.2.3), and the SHARQL-style SPARQL log analysis — is exposed
// as a JSON endpoint behind a shared middleware stack.
//
// The decision problems served here are PSPACE-hard (containment) or
// worse, so the server treats every request as potentially adversarial:
//
//   - deadlines: each request runs under a context deadline (default /
//     maximum configurable); the containment engines carry cooperative
//     cancellation checkpoints (automata.ContainsCtx et al.) so a
//     timed-out instance stops burning CPU instead of merely abandoning
//     the response;
//   - admission control: a bounded semaphore sheds load with 429 before
//     work starts;
//   - request-size caps: bodies beyond MaxBodyBytes are rejected with 413;
//   - verdict cache: containment verdicts are cached under canonical
//     renderings of the parsed inputs, so syntactically different but
//     identical requests hit;
//   - observability: per-endpoint latency histograms, request/timeout/
//     rejection counters, in-flight and cache gauges on GET /metrics in
//     Prometheus text format, plus structured access logs.
package service

import (
	"log"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/obs/recorder"
	"repro/internal/store"
)

// Config parameterizes the server. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// MaxInFlight is the admission-control bound on concurrently served
	// requests (the "worker limit"); <= 0 means 2 × GOMAXPROCS.
	MaxInFlight int
	// MaxBodyBytes caps request bodies; <= 0 means 8 MiB.
	MaxBodyBytes int64
	// DefaultDeadline applies when a request carries no deadline_ms;
	// <= 0 means 2s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines; <= 0 means 30s.
	MaxDeadline time.Duration
	// CacheSize is the verdict-cache capacity in entries; < 0 disables
	// the cache, 0 means 1024.
	CacheSize int
	// AnalyzeWorkers bounds the worker pool of /v1/analyze;
	// <= 0 means GOMAXPROCS.
	AnalyzeWorkers int
	// SlowOpThreshold is the span duration above which the slow-op log
	// emits a structured line; <= 0 means 500ms. Set very high to
	// effectively disable.
	SlowOpThreshold time.Duration
	// SlowOpSample emits 1 of every SlowOpSample slow spans (the rest
	// are counted, not logged); <= 1 emits all.
	SlowOpSample int64
	// TraceCapacity bounds the flight-recorder ring (retained root
	// span trees, queryable via GET /v1/traces); 0 means 1024, < 0
	// disables the recorder entirely.
	TraceCapacity int
	// TraceMaxBytes byte-budgets the flight-recorder ring; <= 0 means
	// 32 MiB.
	TraceMaxBytes int64
	// TraceLog, when non-nil, persists every recorded trace to the
	// on-disk NDJSON trace log (rwdserve -trace-dir).
	TraceLog *recorder.Log
	// ProfileWindow is the sliding-window span of the workload-profile
	// engine behind GET /v1/stats (always on, like the recorder's ring);
	// <= 0 means 60s. The window is split into 10 ring buckets.
	ProfileWindow time.Duration
	// Logger receives structured access and error logs; nil means stderr.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = 1024
	case c.CacheSize < 0:
		c.CacheSize = 0
	}
	if c.AnalyzeWorkers <= 0 {
		c.AnalyzeWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SlowOpThreshold <= 0 {
		c.SlowOpThreshold = 500 * time.Millisecond
	}
	if c.ProfileWindow <= 0 {
		c.ProfileWindow = time.Minute
	}
	if c.Logger == nil {
		c.Logger = log.New(os.Stderr, "rwdserve ", log.LstdFlags|log.Lmicroseconds)
	}
	return c
}

// Server is the HTTP service. Construct with New; Handler returns the
// routed middleware stack.
type Server struct {
	cfg    Config
	log    *log.Logger
	mux    *http.ServeMux
	reg    *metrics.Registry
	cache  *cache.Cache
	sem    chan struct{}
	tracer *obs.Tracer
	// flight is the always-on trace flight recorder behind GET
	// /v1/traces; nil when Config.TraceCapacity < 0.
	flight *recorder.Ring
	// profile is the always-on workload-profile engine behind GET
	// /v1/stats: windowed per-(op, engine, status) statistics, quantile
	// sketches, fitted cost models, and anomaly scoring over the same
	// finished-trace feed the recorder consumes.
	profile *profile.Engine
	// started anchors the uptime reported by /healthz.
	started time.Time
	// store is the optional persistent corpus store (AttachStore); nil
	// means the corpus endpoints answer 503.
	store *store.Store

	reqTotal     *metrics.CounterVec   // endpoint, code
	latency      *metrics.HistogramVec // endpoint
	rejected     *metrics.CounterVec   // reason
	timeouts     *metrics.CounterVec   // endpoint
	clientClosed *metrics.CounterVec   // endpoint
	spanSecs     *metrics.HistogramVec // span
	spanCost     *metrics.CounterVec   // span, counter
	opDur        *metrics.HistogramVec // op, status: rwd_op_duration_seconds

	storeFlushSecs   *metrics.Histogram // store.flush span durations
	storeCompactions *metrics.Counter   // store.compact spans finished

	// detached counts engine goroutines that outlived their request and
	// still hold their admission slot (see slotGuard).
	detached atomic.Int64
}

// New constructs a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		mux:     http.NewServeMux(),
		reg:     metrics.NewRegistry(),
		cache:   cache.New(cfg.CacheSize),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		started: time.Now(),
	}
	s.reqTotal = s.reg.CounterVec("rwdserve_requests_total",
		"Requests served, by endpoint and HTTP status code.", "endpoint", "code")
	s.latency = s.reg.HistogramVec("rwdserve_request_seconds",
		"Request latency in seconds, by endpoint.", metrics.DefBuckets, "endpoint")
	s.rejected = s.reg.CounterVec("rwdserve_rejected_total",
		"Requests rejected before reaching an engine, by reason.", "reason")
	s.timeouts = s.reg.CounterVec("rwdserve_timeouts_total",
		"Requests that exceeded their deadline, by endpoint.", "endpoint")
	s.clientClosed = s.reg.CounterVec("rwdserve_client_closed_total",
		"Requests whose client disconnected before the verdict, by endpoint.", "endpoint")
	s.reg.GaugeFunc("rwdserve_inflight",
		"Requests currently admitted past the admission gate.",
		func() float64 { return float64(len(s.sem)) })
	s.reg.GaugeFunc("rwdserve_detached_engines",
		"Engine goroutines still computing after their request ended; each holds its admission slot until it exits.",
		func() float64 { return float64(s.detached.Load()) })
	s.reg.GaugeFunc("rwdserve_cache_hits_total",
		"Verdict-cache hits.", func() float64 { return float64(s.cache.Stats().Hits) })
	s.reg.GaugeFunc("rwdserve_cache_misses_total",
		"Verdict-cache misses.", func() float64 { return float64(s.cache.Stats().Misses) })
	s.reg.GaugeFunc("rwdserve_cache_evictions_total",
		"Verdict-cache evictions.", func() float64 { return float64(s.cache.Stats().Evictions) })
	s.reg.GaugeFunc("rwdserve_cache_entries",
		"Verdict-cache occupancy.", func() float64 { return float64(s.cache.Stats().Len) })

	// Span telemetry: every finished span of every request feeds a
	// duration histogram and its cost counters, keyed by span name, so
	// the cost of determinization vs. product search vs. shard merge is
	// visible on /metrics even when no client asks for explain mode.
	s.spanSecs = s.reg.HistogramVec("rwd_span_seconds",
		"Span durations in seconds, by span name.", metrics.DefBuckets, "span")
	s.spanCost = s.reg.CounterVec("rwd_span_cost_total",
		"Accumulated span cost counters (states expanded, queries ingested, ...), by span name and counter.",
		"span", "counter")

	// Store maintenance telemetry: the store.flush / store.compact spans
	// recorded by internal/store feed dedicated metric families, so
	// flush latency and compaction counts are visible without parsing
	// span metrics.
	s.storeFlushSecs = s.reg.Histogram("rwd_store_flush_seconds",
		"store.flush span durations in seconds (memtable commit to a segment).", metrics.DefBuckets)
	s.storeCompactions = s.reg.Counter("rwd_store_compactions_total",
		"store.compact spans finished (segment merges).")

	// The flight recorder retains every finished root span tree in a
	// bounded ring, queryable via GET /v1/traces; the queries' own
	// root spans are excluded so reading the recorder never pollutes it.
	if cfg.TraceCapacity >= 0 {
		s.flight = recorder.New(recorder.Config{
			Capacity: cfg.TraceCapacity,
			MaxBytes: cfg.TraceMaxBytes,
			Log:      cfg.TraceLog,
		})
	}
	// The workload-profile engine aggregates the same finished-trace
	// feed into windowed per-op statistics, quantile sketches, and
	// fitted cost models (GET /v1/stats). Always on, like the recorder.
	s.profile = profile.New(profile.Config{
		BucketWidth:   cfg.ProfileWindow / 10,
		WindowBuckets: 10,
	})
	// rwd_op_duration_seconds mirrors the profile engine's per-op view
	// onto /metrics as conventional histogram series.
	s.opDur = s.reg.HistogramVec("rwd_op_duration_seconds",
		"Finished-request durations in seconds, by trace op and HTTP status.",
		metrics.DefBuckets, "op", "status")
	s.tracer = &obs.Tracer{
		OnFinish: func(sp *obs.Span) {
			s.spanSecs.With(sp.Name()).Observe(sp.Duration().Seconds())
			for name, v := range sp.Counters() {
				if v != 0 {
					s.spanCost.With(sp.Name(), name).Add(v)
				}
			}
			switch sp.Name() {
			case "store.flush":
				s.storeFlushSecs.Observe(sp.Duration().Seconds())
			case "store.compact":
				s.storeCompactions.Inc()
			}
			// Diagnostic reads (/v1/traces*, /v1/stats) are excluded so
			// observing the observability surfaces never pollutes them.
			if sp.Parent() == nil && !strings.HasPrefix(sp.Name(), "http.trace") &&
				sp.Name() != "http.stats" {
				if tr := recorder.FromSpan(sp); tr != nil {
					s.flight.Record(tr)
					s.profile.Observe(tr)
					status := tr.Status
					if status == "" {
						status = "unknown"
					}
					s.opDur.With(tr.Op, status).Observe(sp.Duration().Seconds())
				}
			}
		},
		Slow: &obs.SlowLog{
			Threshold: cfg.SlowOpThreshold,
			Sample:    cfg.SlowOpSample,
			Logger:    cfg.Logger,
		},
	}
	if s.flight != nil {
		s.reg.GaugeFunc("rwd_traces_recorded_total",
			"Root span trees admitted to the flight recorder.",
			func() float64 { return float64(s.flight.Stats().Recorded) })
		s.reg.GaugeFunc("rwd_traces_retained",
			"Root span trees currently held in the flight-recorder ring.",
			func() float64 { return float64(s.flight.Stats().Retained) })
		s.reg.GaugeFunc("rwd_traces_evicted_total",
			"Flight-recorder traces evicted to respect the capacity or byte budget.",
			func() float64 { return float64(s.flight.Stats().Evicted) })
		s.reg.GaugeFunc("rwd_traces_dropped_total",
			"Traces never admitted because a single tree exceeded the whole byte budget.",
			func() float64 { return float64(s.flight.Stats().Dropped) })
		s.reg.GaugeFunc("rwd_trace_bytes",
			"Exported-tree JSON bytes currently retained by the flight recorder.",
			func() float64 { return float64(s.flight.Stats().Bytes) })
	}
	s.reg.GaugeFunc("rwd_profile_observed_total",
		"Finished traces folded into the workload-profile engine.",
		func() float64 { return float64(s.profile.Observed()) })
	s.reg.GaugeFunc("rwd_profile_anomalies_total",
		"Traces flagged by the profile engine's cost-model residual scoring.",
		func() float64 { return float64(s.profile.AnomalyCount()) })
	s.reg.GaugeFunc("rwd_slow_ops_seen_total",
		"Spans that exceeded the slow-op threshold.",
		func() float64 { return float64(s.tracer.Slow.Seen()) })
	s.reg.GaugeFunc("rwd_slow_ops_logged_total",
		"Slow spans actually emitted to the log (the rest were sampled out).",
		func() float64 { return float64(s.tracer.Slow.Logged()) })

	// Process-wide cost counters for context-free code paths (the regex
	// derivative engine is pure recursion with no ctx parameter).
	s.reg.GaugeFunc("rwd_regex_derivative_steps_total",
		"Brzozowski derivative steps taken process-wide.",
		func() float64 { return float64(obs.Global("regex_derivative_steps").Value()) })
	s.reg.GaugeFunc("rwd_regex_similarity_dedup_hits_total",
		"Union branches removed by similarity dedup process-wide.",
		func() float64 { return float64(obs.Global("regex_similarity_dedup_hits").Value()) })

	// Process self-metrics: enough to spot a leak or a runaway request
	// fleet from the scrape alone.
	s.reg.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	s.reg.GaugeFunc("go_memstats_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	s.reg.GaugeVec("rwd_build_info",
		"Constant 1; build information is carried in the labels.",
		"go_version").With(runtime.Version()).Set(1)

	s.mux.Handle("POST /v1/containment", s.endpoint("containment", s.handleContainment))
	s.mux.Handle("POST /v1/membership", s.endpoint("membership", s.handleMembership))
	s.mux.Handle("POST /v1/validate", s.endpoint("validate", s.handleValidate))
	s.mux.Handle("POST /v1/infer", s.endpoint("infer", s.handleInfer))
	s.mux.Handle("POST /v1/analyze", s.endpoint("analyze", s.handleAnalyze))
	s.mux.Handle("POST /v1/batch", s.endpoint("batch", s.handleBatch))
	s.mux.Handle("GET /v1/corpora", s.endpoint("corpora", s.handleCorporaList))
	s.mux.Handle("POST /v1/corpora", s.endpoint("corpora_ingest", s.handleCorporaIngest))
	// The trace query endpoints bypass admission control like healthz
	// and metrics: the flight recorder exists to diagnose a saturated
	// server, so it must answer while the server is saturated.
	s.mux.Handle("GET /v1/traces", s.traceEndpoint("traces", s.handleTracesQuery))
	s.mux.Handle("GET /v1/traces/{id}", s.traceEndpoint("trace_get", s.handleTraceGet))
	s.mux.Handle("GET /v1/stats", s.traceEndpoint("stats", s.handleStats))
	// healthz and metrics bypass admission control: they must answer even
	// (especially) when the server is saturated.
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the fully routed handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metrics registry (for tests and embedders).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Tracer exposes the server's tracer so embedders (cmd/rwdserve) can
// run startup work — store open/recovery — under a root span that
// lands in the flight recorder and the span metrics like any request.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// FlightStats exposes the flight recorder's accounting (zero when the
// recorder is disabled).
func (s *Server) FlightStats() recorder.Stats { return s.flight.Stats() }

// Profile exposes the workload-profile engine (for tests and embedders).
func (s *Server) Profile() *profile.Engine { return s.profile }

// CacheStats exposes the verdict-cache counters (for tests and embedders).
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// healthzResponse is the JSON body of GET /healthz: liveness plus just
// enough build and subsystem state to orient an operator (or a smoke
// test) without scraping /metrics. GET /healthz?format=text keeps the
// plain "ok" contract for load balancers that match on the body.
type healthzResponse struct {
	Status        string  `json:"status"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Recorder      struct {
		Enabled  bool  `json:"enabled"`
		Retained int64 `json:"retained"`
	} `json:"recorder"`
	Profile struct {
		Observed  int64 `json:"observed"`
		Anomalies int64 `json:"anomalies"`
	} `json:"profile"`
	StoreAttached bool `json:"store_attached"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
		return
	}
	resp := healthzResponse{
		Status:        "ok",
		GoVersion:     runtime.Version(),
		Revision:      buildRevision(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		StoreAttached: s.store != nil,
	}
	resp.Recorder.Enabled = s.flight != nil
	resp.Recorder.Retained = s.flight.Stats().Retained
	resp.Profile.Observed = s.profile.Observed()
	resp.Profile.Anomalies = s.profile.AnomalyCount()
	writeJSON(w, http.StatusOK, resp)
}

// buildRevision returns the VCS revision baked into the binary by the
// Go toolchain, "" when built outside a checkout (e.g. go test).
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		s.log.Printf("level=error endpoint=metrics err=%q", err)
	}
}
