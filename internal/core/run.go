package core

import (
	"context"
	"io"
	"runtime"

	"repro/internal/loggen"
	"repro/internal/obs"
)

// defaultSeedStride is the historical per-source seed stride of
// RunLogStudy; Config keeps it as the default so existing seeds reproduce
// the same corpora.
const defaultSeedStride = 7919

// Config parameterizes a log study run. The zero value is usable: it
// analyzes the default 1:10000 corpus with seed 0, the historical seed
// stride, and one worker per CPU.
type Config struct {
	// Workers is the size of the analysis worker pool for
	// RunLogStudyParallel and the shard count per source; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// ScaleDiv is the corpus scale divisor (1000 generates 1:1000 of the
	// paper's 558M queries); <= 0 means 10000.
	ScaleDiv int
	// Seed is the base generator seed.
	Seed int64
	// SeedStride derives the per-source seeds (SourceSeed); <= 0 means
	// the historical stride 7919.
	SeedStride int64
}

// normalized fills in the documented defaults.
func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 10000
	}
	if c.SeedStride <= 0 {
		c.SeedStride = defaultSeedStride
	}
	return c
}

// SourceSeed returns the deterministic generator seed for the i-th source
// of loggen.Sources(). It depends only on Seed, SeedStride and i — never
// on the worker count — so any source's stream can be regenerated in
// isolation at any parallelism.
func (c Config) SourceSeed(i int) int64 {
	return c.Seed + int64(i)*c.normalized().SeedStride
}

// SourceStream regenerates the exact raw-query stream of the i-th source
// of loggen.Sources(): the same strings, in the same order, that the
// sequential and parallel studies ingest. Together with ShardSplit this
// reproduces any single shard of any run.
func (c Config) SourceStream(i int) []string {
	cfg := c.normalized()
	s := loggen.Sources()[i]
	g := loggen.NewGen(s, cfg.SourceSeed(i))
	out := make([]string, g.Count(cfg.ScaleDiv))
	for j := range out {
		out[j] = g.Next()
	}
	return out
}

// RunLogStudy generates the synthetic corpus for every Table 2 source at
// the given scale divisor and pushes it through the analyzer on a single
// goroutine. It is equivalent to RunLogStudySequential with the historical
// seed stride; RunLogStudyParallel produces byte-identical reports on a
// worker pool.
func RunLogStudy(seed int64, scaleDiv int) []*SourceReport {
	return RunLogStudySequential(Config{Seed: seed, ScaleDiv: scaleDiv})
}

// RunLogStudySequential is the single-goroutine reference pipeline: every
// query of every source is generated and ingested in stream order.
func RunLogStudySequential(cfg Config) []*SourceReport {
	return RunLogStudySequentialCtx(context.Background(), cfg)
}

// RunLogStudySequentialCtx is RunLogStudySequential under a (possibly
// traced) context: each source gets a "core.source" span whose ingest
// work is accounted in a queries_ingested counter. Reports are
// byte-identical to the untraced run.
func RunLogStudySequentialCtx(ctx context.Context, cfg Config) []*SourceReport {
	cfg = cfg.normalized()
	var reports []*SourceReport
	for i, s := range loggen.Sources() {
		_, span := obs.StartSpan(ctx, "core.source")
		span.SetAttr("source", s.Name)
		ingested := span.Counter("queries_ingested")
		g := loggen.NewGen(s, cfg.SourceSeed(i))
		a := NewAnalyzer(s.Name)
		a.Report.Wikidata = s.Wikidata
		a.Report.Robotic = s.Robotic
		n := g.Count(cfg.ScaleDiv)
		for j := 0; j < n; j++ {
			a.Ingest(g.Next())
			ingested.Inc()
		}
		span.Count("valid", int64(a.Report.Valid))
		span.Count("unique", int64(a.Report.Unique))
		span.Finish()
		reports = append(reports, a.Report)
	}
	return reports
}

// RenderAll writes every log-derived table and figure of the paper to w,
// returning the first write error.
func RenderAll(w io.Writer, reports []*SourceReport) error {
	dbp, wiki := GroupReports(reports)
	var firstErr error
	check := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	section := func(title string) {
		_, err := io.WriteString(w, "\n== "+title+" ==\n")
		check(err)
	}
	section("Table 2: queries in the logs")
	check(RenderTable2(w, reports))
	section("Figure 3: triple patterns per query")
	check(RenderFigure3(w, reports))
	section("Table 3: feature usage (DBpedia-BritM)")
	check(RenderTable3(w, dbp))
	section("Table 3: feature usage (Wikidata)")
	check(RenderTable3(w, wiki))
	section("Table 4: And/Filter operator sets (DBpedia-BritM)")
	check(RenderOperatorSets(w, dbp, Table4Rows))
	section("Table 5: And/Filter/2RPQ operator sets (Wikidata)")
	check(RenderOperatorSets(w, wiki, Table5Rows))
	section("Table 6: hypertree width and free-connex acyclicity (DBpedia-BritM)")
	check(RenderTable6(w, dbp))
	section("Table 7: shape analysis of graph-CQ+F queries (DBpedia-BritM)")
	check(RenderTable7(w, dbp))
	section("Table 8: property path types (Wikidata)")
	check(RenderTable8(w, wiki))
	section("Section 9.4: well-designed patterns")
	check(RenderSection94(w, dbp))
	check(RenderSection94(w, wiki))
	section("Section 9.6: property path tractability")
	check(RenderSection96(w, wiki))
	return firstErr
}
