package determinism

import (
	"math/rand"
	"testing"

	"repro/internal/automata"
	"repro/internal/regex"
)

func TestIsDeterministic(t *testing.T) {
	cases := []struct {
		re   string
		want bool
	}{
		// Paper, Section 4.2.1.
		{"(a + b)* a", false},
		{"b* a (b* a)*", true},
		{"(a + b)* a (a + b)", false},
		{"a b c", true},
		{"a? a", false},
		{"a a?", true},
		{"person*", true},
		{"name birthplace", true},
		{"city state country?", true},
		{"(a + b) (c + d)", true},
		{"(a c + b c)", false}, // same first symbol twice? no — a,b differ; cs are in different branches: deterministic? positions: a1 c2 b3 c4; from a1 read c -> {2}; from b3 read c -> {4}; start: a->1,b->3. Deterministic!
	}
	// fix expectation for the last case
	cases[len(cases)-1].want = true
	for _, c := range cases {
		if got := IsDeterministic(regex.MustParse(c.re)); got != c.want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", c.re, got, c.want)
		}
	}
}

func TestViolations(t *testing.T) {
	v := Violations(regex.MustParse("(a + b)* a"))
	if len(v) == 0 {
		t.Fatal("expected violations")
	}
	if v2 := Violations(regex.MustParse("b* a (b* a)*")); v2 != nil {
		t.Errorf("deterministic expression has violations: %v", v2)
	}
}

func TestDeterminizePaperExample(t *testing.T) {
	// (a+b)*a has an equivalent deterministic expression (b*a(b*a)*).
	res := Determinize(regex.MustParse("(a + b)* a"))
	if !res.OK {
		t.Fatal("failed to determinize (a + b)* a")
	}
	if !automata.Glushkov(res.Expr).IsDeterministic() {
		t.Fatalf("result %q is not deterministic", res.Expr)
	}
	if !automata.Equivalent(res.Expr, regex.MustParse("b* a (b* a)*")) {
		t.Fatalf("result %q is not equivalent", res.Expr)
	}
}

func TestDeterminizeImpossible(t *testing.T) {
	// (a+b)*a(a+b) has NO equivalent deterministic expression
	// (Brüggemann-Klein & Wood, cited in Section 4.2.1). Our sound-but-
	// incomplete procedure must not produce one.
	res := Determinize(regex.MustParse("(a + b)* a (a + b)"))
	if res.OK {
		if automata.Glushkov(res.Expr).IsDeterministic() &&
			automata.Equivalent(res.Expr, regex.MustParse("(a + b)* a (a + b)")) {
			t.Fatalf("found deterministic equivalent %q for a language proven not deterministic-definable", res.Expr)
		}
		t.Fatalf("Determinize claimed OK with bad result %q", res.Expr)
	}
}

func TestDeterminizeSoundness(t *testing.T) {
	g := regex.DefaultGen([]string{"a", "b"})
	r := rand.New(rand.NewSource(31))
	okCount := 0
	for i := 0; i < 30; i++ {
		e := g.Random(r)
		res := Determinize(e)
		if res.OK {
			okCount++
			if !automata.Glushkov(res.Expr).IsDeterministic() {
				t.Fatalf("Determinize(%q) returned non-deterministic %q", e, res.Expr)
			}
			if !automata.Equivalent(e, res.Expr) {
				t.Fatalf("Determinize(%q) returned non-equivalent %q", e, res.Expr)
			}
		}
	}
	if okCount == 0 {
		t.Error("Determinize never succeeded on random schema-like expressions")
	}
}

func TestSynthesizeFromDFA(t *testing.T) {
	for _, s := range []string{"a", "a*", "(a + b)* a", "a b c", "a? b+"} {
		e := regex.MustParse(s)
		got := SynthesizeFromDFA(automata.ToDFA(e))
		if !automata.Equivalent(e, got) {
			t.Errorf("SynthesizeFromDFA round trip of %q gave non-equivalent %q", s, got)
		}
	}
}

func TestMeasureBlowUp(t *testing.T) {
	b := MeasureBlowUp(regex.MustParse("(a + b)* a"))
	if b.ExprSize == 0 || b.MinimalDFA == 0 {
		t.Errorf("zero sizes: %+v", b)
	}
	if b.Deterministic < 0 {
		t.Errorf("expected determinization to succeed: %+v", b)
	}
	b2 := MeasureBlowUp(regex.MustParse("(a + b)* a (a + b)"))
	if b2.Deterministic != -1 {
		t.Errorf("expected no deterministic equivalent: %+v", b2)
	}
}

func TestExponentialFamily(t *testing.T) {
	// eₙ = (a+b)* a (a+b)ⁿ: linear expression, exponential minimal DFA
	// (Section 4.2.1's unavoidable blow-up).
	prev := 0
	for n := 1; n <= 8; n++ {
		size, states := MeasureFamily(n)
		if states < 1<<uint(n+1) {
			t.Errorf("n=%d: minimal DFA has %d states, want ≥ %d", n, states, 1<<uint(n+1))
		}
		if size > 10*(n+2) {
			t.Errorf("n=%d: expression size %d should stay linear", n, size)
		}
		if states <= prev {
			t.Errorf("n=%d: DFA sizes should grow strictly", n)
		}
		prev = states
	}
	// ... and the family is never deterministic, nor deterministic-definable.
	if IsDeterministic(ExponentialFamily(1)) {
		t.Error("(a+b)*a(a+b) is not deterministic")
	}
	if res := Determinize(ExponentialFamily(1)); res.OK {
		t.Error("(a+b)*a(a+b) is not deterministic-definable (Brüggemann-Klein & Wood)")
	}
}
