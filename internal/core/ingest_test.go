package core

import (
	"strings"
	"testing"

	"repro/internal/sparql"
)

// TestIngestAdversarialInputs feeds the ingest path the pathological
// strings real logs contain — deeply nested groups, truncated property
// paths, NUL bytes, unbalanced quoting — and requires that the analyzer
// survives every one with coherent counters.
func TestIngestAdversarialInputs(t *testing.T) {
	deepGroups := "SELECT * WHERE " + strings.Repeat("{ ", 2000) + "?s ?p ?o" + strings.Repeat(" }", 2000)
	deepFilter := "SELECT * WHERE { ?s ?p ?o FILTER(" + strings.Repeat("!(", 1500) + "?s" + strings.Repeat(")", 1500) + ") }"
	inputs := []string{
		deepGroups,
		deepFilter,
		"SELECT ?s WHERE { ?s wdt:P31/ }",              // truncated property path
		"SELECT ?s WHERE { ?s wdt:P31/wdt:P279*",       // truncated group
		"SELECT ?s WHERE { ?s (wdt:P31|(wdt:P279 ?o }", // unbalanced path parens
		"SELECT ?s WHERE { ?s \x00 ?o }",               // NUL byte as predicate
		"\x00\x00\x00SELECT",                           // NUL prefix
		"SELECT ?s WHERE { ?s ?p \"unterminated }",     // unbalanced literal
		strings.Repeat("(", 5000),                      // paren bomb
		"SELECT " + strings.Repeat("?v ", 3000) + "WHERE { ?v0 ?p ?o }",
		"",
	}
	a := NewAnalyzer("adversarial")
	for _, in := range inputs {
		a.Ingest(in) // must not panic the run
	}
	r := a.Report
	if r.Total != len(inputs) {
		t.Errorf("Total = %d, want %d", r.Total, len(inputs))
	}
	if r.Valid > r.Total || r.Unique > r.Valid {
		t.Errorf("inconsistent counts: T=%d V=%d U=%d", r.Total, r.Valid, r.Unique)
	}
}

// TestIngestRecoversAnalysisPanic injects a panic into the analysis
// battery and checks the per-query recovery contract: the query counts as
// invalid and the dedup state rolls back, so a later occurrence behaves as
// if the panicking one never happened.
func TestIngestRecoversAnalysisPanic(t *testing.T) {
	defer func() { analyzeHook = nil }()
	const q = "SELECT ?s WHERE { ?s ?p ?o }"

	analyzeHook = func(*sparql.Query) { panic("injected battery failure") }
	a := NewAnalyzer("panicky")
	a.Ingest(q)
	r := a.Report
	if r.Total != 1 || r.Valid != 0 || r.Unique != 0 {
		t.Fatalf("after panic: T=%d V=%d U=%d, want 1/0/0", r.Total, r.Valid, r.Unique)
	}
	if len(a.seen) != 0 {
		t.Fatalf("dedup state not rolled back: %v", a.seen)
	}

	// with the battery healthy again, the same canonical counts normally
	analyzeHook = nil
	a.Ingest(q)
	if r.Total != 2 || r.Valid != 1 || r.Unique != 1 {
		t.Errorf("after recovery: T=%d V=%d U=%d, want 2/1/1", r.Total, r.Valid, r.Unique)
	}
}

// TestIngestRecoversSelectivePanic panics only for one query shape,
// checking that surrounding queries in the same stream are unaffected —
// the "one pathological query must not kill a worker" property.
func TestIngestRecoversSelectivePanic(t *testing.T) {
	defer func() { analyzeHook = nil }()
	analyzeHook = func(q *sparql.Query) {
		if q.TripleCount() == 3 {
			panic("three triples trips the battery")
		}
	}
	a := NewAnalyzer("selective")
	a.Ingest("SELECT * WHERE { ?x :p ?y }")
	a.Ingest("SELECT * WHERE { ?x :p ?y . ?y :q ?z . ?z :r ?w }") // panics
	a.Ingest("SELECT * WHERE { ?x :p ?y . ?y :q ?z }")
	r := a.Report
	if r.Total != 3 || r.Valid != 2 || r.Unique != 2 {
		t.Errorf("T=%d V=%d U=%d, want 3/2/2", r.Total, r.Valid, r.Unique)
	}
	if r.TripleBuckets[1].V != 1 || r.TripleBuckets[2].V != 1 {
		t.Errorf("buckets polluted: %+v %+v", r.TripleBuckets[1], r.TripleBuckets[2])
	}
}
