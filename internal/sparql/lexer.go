package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokKeyword
	tokVar     // ?x or $x
	tokIRI     // <…> or prefixed name or 'a'
	tokLiteral // "…" with optional @lang or ^^type
	tokNumber
	tokPunct // { } ( ) . ; , = != < > <= >= && || ! + - * / ^ | ?
	tokBlank // _:b
)

type token struct {
	kind tokKind
	text string // keywords upper-cased
	off  int
}

var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "CONSTRUCT": true, "DESCRIBE": true,
	"WHERE": true, "PREFIX": true, "BASE": true, "DISTINCT": true,
	"REDUCED": true, "FROM": true, "NAMED": true, "ORDER": true, "BY": true,
	"GROUP": true, "HAVING": true, "LIMIT": true, "OFFSET": true,
	"OPTIONAL": true, "UNION": true, "FILTER": true, "GRAPH": true,
	"BIND": true, "AS": true, "VALUES": true, "SERVICE": true,
	"SILENT": true, "MINUS": true, "EXISTS": true, "NOT": true, "IN": true,
	"ASC": true, "DESC": true, "UNDEF": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"SAMPLE": true, "GROUP_CONCAT": true, "SEPARATOR": true,
	"AND": true, "OR": true, "TRUE": true, "FALSE": true,
}

// lexer tokenizes SPARQL text. Punctuation relevant to property paths is
// produced as single-character tokens; the parser reassembles paths.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lexSPARQL(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '?' || c == '$':
			// variable — or a bare '?' path operator when not followed by
			// a name character
			if l.pos+1 < len(l.src) && isVarChar(rune(l.src[l.pos+1])) {
				start := l.pos + 1
				l.pos++
				for l.pos < len(l.src) && isVarChar(rune(l.src[l.pos])) {
					l.pos++
				}
				l.emit(tokVar, l.src[start:l.pos])
			} else {
				l.pos++
				l.emit(tokPunct, "?")
			}
		case c == '<':
			// IRI or comparison operator
			if end := strings.IndexByte(l.src[l.pos:], '>'); end >= 0 && !strings.ContainsAny(l.src[l.pos:l.pos+end], " \t\n{}") {
				iri := l.src[l.pos : l.pos+end+1]
				l.pos += end + 1
				l.emit(tokIRI, iri)
			} else if strings.HasPrefix(l.src[l.pos:], "<=") {
				l.pos += 2
				l.emit(tokPunct, "<=")
			} else {
				l.pos++
				l.emit(tokPunct, "<")
			}
		case c == '"' || c == '\'':
			lit, err := l.lexLiteral(c)
			if err != nil {
				return nil, err
			}
			l.emit(tokLiteral, lit)
		case c == '_' && strings.HasPrefix(l.src[l.pos:], "_:"):
			start := l.pos + 2
			l.pos += 2
			for l.pos < len(l.src) && isPNChar(rune(l.src[l.pos])) {
				l.pos++
			}
			for l.pos > start && l.src[l.pos-1] == '.' {
				l.pos--
			}
			l.emit(tokBlank, l.src[start:l.pos])
		case c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			start := l.pos
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
				l.pos++
			}
			// a trailing dot is the triple terminator, not part of the number
			if l.src[l.pos-1] == '.' {
				l.pos--
			}
			l.emit(tokNumber, l.src[start:l.pos])
		case strings.HasPrefix(l.src[l.pos:], "&&"), strings.HasPrefix(l.src[l.pos:], "||"),
			strings.HasPrefix(l.src[l.pos:], "!="), strings.HasPrefix(l.src[l.pos:], ">="),
			strings.HasPrefix(l.src[l.pos:], "^^"):
			l.emit(tokPunct, l.src[l.pos:l.pos+2])
			l.pos += 2
		case strings.ContainsRune("{}().;,=>!+-*/^|[]", rune(c)):
			l.emit(tokPunct, string(c))
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && isPNChar(rune(l.src[l.pos])) {
				l.pos++
			}
			// a trailing dot belongs to the surrounding syntax
			for l.pos > start && l.src[l.pos-1] == '.' {
				l.pos--
			}
			word := l.src[start:l.pos]
			// prefixed name? (word containing or followed by ':')
			if l.pos < len(l.src) && l.src[l.pos] == ':' {
				l.pos++
				for l.pos < len(l.src) && isPNChar(rune(l.src[l.pos])) {
					l.pos++
				}
				for l.src[l.pos-1] == '.' {
					l.pos--
				}
				l.emit(tokIRI, l.src[start:l.pos])
				continue
			}
			if strings.Contains(word, ":") {
				l.emit(tokIRI, word)
				continue
			}
			up := strings.ToUpper(word)
			if keywords[up] {
				l.emit(tokKeyword, up)
			} else if word == "a" {
				l.emit(tokIRI, "a") // rdf:type shorthand
			} else {
				// bare local name used as function (e.g. lang, str, regex)
				l.emit(tokKeyword, up)
			}
		case c == ':':
			// prefixed name with empty prefix (:name)
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && isPNChar(rune(l.src[l.pos])) {
				l.pos++
			}
			for l.src[l.pos-1] == '.' {
				l.pos--
			}
			l.emit(tokIRI, l.src[start:l.pos])
		case c == '@':
			// language tag: attach to nothing; skip
			l.pos++
			for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return nil, fmt.Errorf("sparql: unexpected character %q at offset %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{k, text, l.pos})
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexLiteral(quote byte) (string, error) {
	// triple-quoted?
	q3 := strings.Repeat(string(quote), 3)
	if strings.HasPrefix(l.src[l.pos:], q3) {
		end := strings.Index(l.src[l.pos+3:], q3)
		if end < 0 {
			return "", fmt.Errorf("sparql: unterminated long literal at offset %d", l.pos)
		}
		lit := l.src[l.pos+3 : l.pos+3+end]
		l.pos += 6 + end
		return lit, nil
	}
	i := l.pos + 1
	var b strings.Builder
	for i < len(l.src) {
		c := l.src[i]
		if c == '\\' && i+1 < len(l.src) {
			b.WriteByte(l.src[i+1])
			i += 2
			continue
		}
		if c == quote {
			l.pos = i + 1
			// optional datatype ^^iri is handled by the ^^ token later;
			// language tags by the '@' case
			return b.String(), nil
		}
		if c == '\n' {
			break
		}
		b.WriteByte(c)
		i++
	}
	return "", fmt.Errorf("sparql: unterminated literal at offset %d", l.pos)
}

func isPNChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

// isVarChar matches SPARQL VARNAME characters (no '-' or '.').
func isVarChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
