package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ParseText reads a Prometheus text-format exposition (the output of
// Registry.WriteText or any /metrics endpoint) and returns a flat map of
// series — name plus label block, verbatim — to value. Comment lines
// (# HELP / # TYPE) and malformed lines are skipped. It is the read side
// of the package: the load generator and the tests scrape /metrics
// through it to compute before/after deltas.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// the value starts after the last space; labels may contain
		// spaces inside quoted values, so split from the right
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// SeriesLabel extracts one label value from a series key as returned by
// ParseText: SeriesLabel(`m{a="x",b="y"}`, "b") == "y", with ok=false
// when the label is absent.
func SeriesLabel(series, label string) (string, bool) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return "", false
	}
	rest := series[i+1 : len(series)-1]
	for _, kv := range splitLabels(rest) {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			continue
		}
		if kv[:eq] == label {
			v := kv[eq+1:]
			if unq, err := strconv.Unquote(v); err == nil {
				return unq, true
			}
			return v, true
		}
	}
	return "", false
}

// splitLabels splits a label block body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside a quoted value
	startAt := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[startAt:i])
				startAt = i + 1
			}
		}
	}
	if startAt < len(s) {
		out = append(out, s[startAt:])
	}
	return out
}
