// Package recorder is the always-on trace flight recorder: every
// finished root span tree is captured into a bounded in-memory ring
// (and, optionally, an on-disk NDJSON log), turning the tracing layer
// from a per-request debugging aid into a continuously collected
// dataset about the deployed system.
//
// The paper's thesis is that theoretical cost measures — states
// expanded, derivative steps, fixpoint rounds — explain real-world
// performance. The spans of internal/obs record exactly those counters
// on every request, but before the recorder the evidence evaporated
// with the response: a span tree was visible only to a client that
// passed "explain": true, or as a sampled slow-op log line. The
// recorder retains the trees, so "the 20 slowest containment calls of
// the last hour and the counters that blew up" is a query
// (GET /v1/traces?sort=slowest), not a reconstruction.
//
// Design constraints:
//
//   - Bounded. The ring holds at most Capacity traces and at most
//     MaxBytes of exported trace JSON; the oldest traces are evicted
//     first. A single trace larger than the whole byte budget is
//     dropped, not recorded. The accounting never lies:
//     recorded == retained + evicted, and dropped is counted
//     separately (TestRingInvariants pins this).
//   - Lock-cheap. Record appends under one short mutex hold; the span
//     tree export and JSON sizing happen before the lock is taken.
//   - Restart-tolerant. With a Log attached every recorded trace is
//     also appended to an NDJSON file (size-rotated); the reader
//     tolerates a torn final line, so a crashed or killed server
//     still leaves a readable trace history for rwdtrace.
package recorder

import (
	"encoding/json"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Trace is one retained root span tree with the summary fields the
// query API filters and sorts on. It is the NDJSON line format of the
// on-disk log and the element type of the /v1/traces response.
type Trace struct {
	TraceID    string    `json:"trace_id"`
	Op         string    `json:"op"`               // root span name, "http." prefix trimmed
	Status     string    `json:"status,omitempty"` // HTTP status code of the response, when known
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Bytes      int64     `json:"bytes"` // size of the exported tree JSON
	Root       *obs.Node `json:"root"`
}

// StatusAttr is the root-span attribute the service sets to the HTTP
// status code of the response; FromSpan lifts it into Trace.Status.
const StatusAttr = "status"

// FromSpan exports a finished root span as a Trace. The tree is
// snapshotted at call time; counters bumped later by detached engine
// goroutines are not reflected.
func FromSpan(s *obs.Span) *Trace {
	root := s.Tree()
	if root == nil {
		return nil
	}
	t := &Trace{
		TraceID:    s.TraceID(),
		Op:         strings.TrimPrefix(s.Name(), "http."),
		Status:     root.Attrs[StatusAttr],
		Start:      s.Start(),
		DurationMS: root.DurationMS,
		Root:       root,
	}
	if raw, err := json.Marshal(root); err == nil {
		t.Bytes = int64(len(raw))
	}
	return t
}

// CounterSum sums the named cost counter over a whole span tree
// (rwdtrace `top -by <counter>` and the query API's counter views).
func CounterSum(n *obs.Node, name string) int64 {
	if n == nil {
		return 0
	}
	total := n.Counters[name]
	for _, c := range n.Children {
		total += CounterSum(c, name)
	}
	return total
}

// TraceCounters sums every cost counter over the whole span tree,
// returning name -> total. The workload-profile engine feeds these into
// its per-counter distributions and cost-model fits; rwdtrace uses the
// key set to validate `top -by` names.
func TraceCounters(n *obs.Node) map[string]int64 {
	if n == nil {
		return nil
	}
	out := map[string]int64{}
	n.Walk(func(n *obs.Node) {
		for name, v := range n.Counters {
			out[name] += v
		}
	})
	return out
}

// EngineAttr is the span attribute naming the decision engine that did
// the work (e.g. "antichain" on automata.contains spans).
const EngineAttr = "engine"

// TraceEngine returns the trace's engine: the first EngineAttr value
// found in pre-order, or "" (e.g. a cache hit that never ran an engine).
func TraceEngine(t *Trace) string {
	if t == nil {
		return ""
	}
	engine := ""
	t.Root.Walk(func(n *obs.Node) {
		if engine == "" && n.Attrs[EngineAttr] != "" {
			engine = n.Attrs[EngineAttr]
		}
	})
	return engine
}

// End returns the trace's completion instant, Start + DurationMS — the
// timestamp the workload-profile engine buckets on, so an offline replay
// of the NDJSON log lands every trace in the same window as the live
// engine did.
func (t *Trace) End() time.Time {
	return t.Start.Add(time.Duration(t.DurationMS * float64(time.Millisecond)))
}

// Config parameterizes a Ring. The zero value is usable: every field
// has a documented default.
type Config struct {
	// Capacity is the maximum retained trace count; <= 0 means 1024.
	Capacity int
	// MaxBytes is the budget on retained exported-tree JSON bytes;
	// <= 0 means 32 MiB.
	MaxBytes int64
	// Log, when non-nil, additionally appends every recorded trace to
	// the on-disk NDJSON trace log.
	Log *Log
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 32 << 20
	}
	return c
}

// Stats is the ring's accounting. Recorded == Retained + Evicted holds
// at every instant; Dropped counts traces never admitted (larger than
// the whole byte budget).
type Stats struct {
	Recorded int64 `json:"recorded"`
	Retained int64 `json:"retained"`
	Evicted  int64 `json:"evicted"`
	Dropped  int64 `json:"dropped"`
	Bytes    int64 `json:"bytes"`
	// LogErrors counts failed NDJSON appends (disk full, rotation
	// failure); the in-memory ring keeps recording regardless.
	LogErrors int64 `json:"log_errors,omitempty"`
}

// Ring is the bounded in-memory flight-recorder buffer. All methods
// are safe for concurrent use; a nil *Ring is a disabled recorder on
// which every method is a no-op.
type Ring struct {
	cfg Config

	mu       sync.Mutex
	traces   []*Trace // oldest first
	bytes    int64
	recorded int64
	evicted  int64
	dropped  int64
	logErrs  int64
}

// New builds a Ring from cfg.
func New(cfg Config) *Ring {
	return &Ring{cfg: cfg.withDefaults()}
}

// Record admits a trace, evicting the oldest entries until both the
// capacity and the byte budget hold. A nil ring, nil trace, or a trace
// larger than the whole byte budget records nothing (the last counts
// as dropped).
func (r *Ring) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	if t.Bytes > r.cfg.MaxBytes {
		r.mu.Lock()
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	r.recorded++
	r.traces = append(r.traces, t)
	r.bytes += t.Bytes
	for len(r.traces) > r.cfg.Capacity || r.bytes > r.cfg.MaxBytes {
		r.bytes -= r.traces[0].Bytes
		r.traces[0] = nil
		r.traces = r.traces[1:]
		r.evicted++
	}
	// Reclaim the evicted prefix once it dominates the backing array.
	if cap(r.traces) > 2*r.cfg.Capacity && len(r.traces) <= r.cfg.Capacity {
		r.traces = append(make([]*Trace, 0, r.cfg.Capacity), r.traces...)
	}
	r.mu.Unlock()

	if r.cfg.Log != nil {
		if err := r.cfg.Log.Append(t); err != nil {
			r.mu.Lock()
			r.logErrs++
			r.mu.Unlock()
		}
	}
}

// Snapshot returns the retained traces, oldest first. The slice is a
// copy; the traces themselves are shared and immutable after Record.
func (r *Ring) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Trace(nil), r.traces...)
}

// Get returns the retained trace with the given id, or nil.
func (r *Ring) Get(traceID string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.traces) - 1; i >= 0; i-- {
		if r.traces[i].TraceID == traceID {
			return r.traces[i]
		}
	}
	return nil
}

// Stats returns the ring's accounting.
func (r *Ring) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Recorded:  r.recorded,
		Retained:  int64(len(r.traces)),
		Evicted:   r.evicted,
		Dropped:   r.dropped,
		Bytes:     r.bytes,
		LogErrors: r.logErrs,
	}
}
