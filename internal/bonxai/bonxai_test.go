package bonxai

import (
	"math/rand"
	"testing"

	"repro/internal/edtd"
	"repro/internal/regex"
	"repro/internal/tree"
)

func TestParsePattern(t *testing.T) {
	cases := []struct {
		in    string
		steps int
	}{
		{"a", 1},
		{"//b//h", 2},
		{"/a/b", 2},
		{"/a//b/c", 3},
		{"//x", 1},
		{"a/*/b", 3},
	}
	for _, c := range cases {
		p, err := ParsePattern(c.in)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", c.in, err)
		}
		if len(p.Steps) != c.steps {
			t.Errorf("ParsePattern(%q): %d steps, want %d", c.in, len(p.Steps), c.steps)
		}
	}
	for _, bad := range []string{"", "/", "//", "a//", "a/", "a///b"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q): expected error", bad)
		}
	}
}

func TestPatternMatches(t *testing.T) {
	cases := []struct {
		pat  string
		path []string
		want bool
	}{
		{"a", []string{"a"}, true},
		{"a", []string{"x", "a"}, true},
		{"a", []string{"a", "x"}, false}, // pattern must end at the node
		{"//b//h", []string{"a", "b", "d", "h"}, true},
		{"//b//h", []string{"a", "c", "d", "h"}, false},
		{"//b//h", []string{"b", "h"}, true},
		{"/a/b", []string{"a", "b"}, true},
		{"/a/b", []string{"x", "a", "b"}, false},
		{"/a//c", []string{"a", "b", "c"}, true},
		{"a/*/c", []string{"a", "x", "c"}, true},
		{"a/*/c", []string{"a", "c"}, false},
		{"//h", []string{"a", "b", "d", "h"}, true},
	}
	for _, c := range cases {
		if got := MustParsePattern(c.pat).Matches(c.path); got != c.want {
			t.Errorf("Pattern(%q).Matches(%v) = %v, want %v", c.pat, c.path, got, c.want)
		}
	}
}

func TestFigure2bValidation(t *testing.T) {
	s := Figure2b()
	good := []string{
		"a(b(e, d(g, h(j), i), f))",
		"a(c(e, d(g, h(k), i), f))",
	}
	bad := []string{
		"a(b(e, d(g, h(k), i), f))", // k under b
		"a(c(e, d(g, h(j), i), f))", // j under c
		"a(b(e, f))",
		"b(e, d(g, h(j), i), f)", // root must be a
		"a(b(e, d(g, h(j), i), f), b(e, d(g, h(j), i), f))",
	}
	for _, str := range good {
		if err := s.Validate(tree.MustParse(str)); err != nil {
			t.Errorf("%q should be valid: %v", str, err)
		}
	}
	for _, str := range bad {
		if s.Valid(tree.MustParse(str)) {
			t.Errorf("%q should be invalid", str)
		}
	}
}

func TestUnselectedNodeRejected(t *testing.T) {
	s := (&Schema{}).Add("a", "x?")
	// node labeled x is selected by no rule → condition (1) fails
	if s.Valid(tree.MustParse("a(x)")) {
		t.Error("tree with unselected node accepted")
	}
	if !s.Valid(tree.MustParse("a")) {
		t.Error("bare a should be valid")
	}
}

// figure2aEDTD is the hand-written EDTD of Figure 2a, the compilation
// target the paper pairs with Figure 2b.
func figure2aEDTD() *edtd.EDTD {
	return edtd.New().
		AddType("a", "a", regex.MustParse("b + c")).
		AddType("b", "b", regex.MustParse("e d1 f")).
		AddType("c", "c", regex.MustParse("e d2 f")).
		AddType("d1", "d", regex.MustParse("g h1 i")).
		AddType("d2", "d", regex.MustParse("g h2 i")).
		AddType("h1", "h", regex.MustParse("j")).
		AddType("h2", "h", regex.MustParse("k")).
		AddType("e", "e", regex.NewEpsilon()).
		AddType("f", "f", regex.NewEpsilon()).
		AddType("g", "g", regex.NewEpsilon()).
		AddType("i", "i", regex.NewEpsilon()).
		AddType("j", "j", regex.NewEpsilon()).
		AddType("k", "k", regex.NewEpsilon()).
		AddStart("a")
}

func TestFigure2Equivalence(t *testing.T) {
	// The paper presents Figure 2a and Figure 2b as equivalent schemas. We
	// verify on (i) the canonical documents and (ii) random trees over the
	// alphabet that the BonXai schema, the hand-written EDTD, and the
	// compiled EDTD agree.
	schema := Figure2b()
	hand := figure2aEDTD()
	alphabet := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"}
	compiled := schema.ToEDTD(alphabet)
	if !compiled.IsSingleType() {
		t.Error("compiled EDTD must be single-type")
	}
	r := rand.New(rand.NewSource(6))
	var gen func(depth int) *tree.Node
	gen = func(depth int) *tree.Node {
		n := tree.New(alphabet[r.Intn(len(alphabet))])
		if depth > 0 {
			for i := 0; i < r.Intn(4); i++ {
				n.Add(gen(depth - 1))
			}
		}
		return n
	}
	fixed := []*tree.Node{
		tree.MustParse("a(b(e, d(g, h(j), i), f))"),
		tree.MustParse("a(c(e, d(g, h(k), i), f))"),
		tree.MustParse("a(b(e, d(g, h(k), i), f))"),
		tree.MustParse("a(c(e, d(g, h(j), i), f))"),
		tree.MustParse("a"),
	}
	trees := fixed
	for i := 0; i < 150; i++ {
		trees = append(trees, gen(4))
	}
	for _, tr := range trees {
		want := schema.Valid(tr)
		if got := hand.Valid(tr); got != want {
			t.Fatalf("hand EDTD %v, BonXai %v on %v", got, want, tr)
		}
		if got := compiled.Valid(tr); got != want {
			t.Fatalf("compiled EDTD %v, BonXai %v on %v", got, want, tr)
		}
	}
}

func TestFromEDTDFigure2Reverse(t *testing.T) {
	// The reverse Figure 2 direction: Figure 2a compiled into a
	// pattern-based schema must agree with Figure 2b on arbitrary trees.
	schema, ok := FromEDTD(figure2aEDTD(), 3)
	if !ok {
		t.Fatal("Figure 2a should convert (context depth 2)")
	}
	ref := Figure2b()
	hand := figure2aEDTD()
	alphabet := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"}
	r := rand.New(rand.NewSource(17))
	var gen func(depth int) *tree.Node
	gen = func(depth int) *tree.Node {
		n := tree.New(alphabet[r.Intn(len(alphabet))])
		if depth > 0 {
			for i := 0; i < r.Intn(4); i++ {
				n.Add(gen(depth - 1))
			}
		}
		return n
	}
	trees := []*tree.Node{
		tree.MustParse("a(b(e, d(g, h(j), i), f))"),
		tree.MustParse("a(c(e, d(g, h(k), i), f))"),
		tree.MustParse("a(b(e, d(g, h(k), i), f))"),
		tree.MustParse("a"),
	}
	for i := 0; i < 150; i++ {
		trees = append(trees, gen(4))
	}
	for _, tr := range trees {
		want := hand.Valid(tr)
		if got := schema.Valid(tr); got != want {
			t.Fatalf("FromEDTD schema disagrees with the EDTD on %v: got %v want %v\nschema:\n%s", tr, got, want, schema)
		}
		if got := ref.Valid(tr); got != want {
			t.Fatalf("reference Figure 2b disagrees on %v", tr)
		}
	}
}

func TestFromEDTDDTDLike(t *testing.T) {
	// A context-independent EDTD converts to bare-label rules.
	d := edtd.New().
		AddType("r", "r", regex.MustParse("x*")).
		AddType("x", "x", regex.MustParse("y?")).
		AddType("y", "y", regex.NewEpsilon()).
		AddStart("r")
	schema, ok := FromEDTD(d, 3)
	if !ok {
		t.Fatal("DTD-like EDTD should convert")
	}
	for _, rule := range schema.Rules {
		if len(rule.Pattern.Steps) != 1 {
			t.Errorf("expected bare-label rules, got %s", rule.Pattern)
		}
	}
	for _, s := range []string{"r", "r(x, x(y))", "r(x(y), x)"} {
		if !schema.Valid(tree.MustParse(s)) {
			t.Errorf("%s should be valid", s)
		}
	}
	if schema.Valid(tree.MustParse("r(y)")) {
		t.Error("r(y) should be invalid")
	}
}

func TestFromEDTDRejectsUnboundedContext(t *testing.T) {
	// Example 4.11-style EDTDs (same-label types under identical contexts)
	// cannot be separated by any ancestor context.
	d := edtd.New().
		AddType("persons", "persons", regex.MustParse("person*")).
		AddType("person", "person", regex.MustParse("name (bUS + bIntl)")).
		AddType("name", "name", regex.NewEpsilon()).
		AddType("bUS", "birthplace", regex.MustParse("city?")).
		AddType("bIntl", "birthplace", regex.MustParse("city")).
		AddType("city", "city", regex.NewEpsilon()).
		AddStart("persons")
	if d.IsSingleType() {
		t.Skip("construction accidentally single-type")
	}
	if _, ok := FromEDTD(d, 3); ok {
		t.Error("non-single-type EDTD must not convert")
	}
}
