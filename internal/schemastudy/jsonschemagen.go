package schemastudy

import (
	"fmt"
	"math/rand"
)

// JSONSchemaGen generates synthetic JSON Schema documents with the rates
// of the two Section 4.5 studies: Maiwald et al. (26/159 recursive;
// non-recursive depths 3–43, average 11; schema-full explicit in 8/159)
// and Baazizi et al. (negation in 2.6% of schemas).
type JSONSchemaGen struct {
	RecursionRate  float64
	NegationRate   float64
	SchemaFullRate float64
	// MeanDepth controls the nesting-depth distribution of non-recursive
	// schemas.
	MeanDepth int
}

// DefaultJSONSchemaGen matches the studies.
func DefaultJSONSchemaGen() *JSONSchemaGen {
	return &JSONSchemaGen{
		RecursionRate:  26.0 / 159.0,
		NegationRate:   0.026,
		SchemaFullRate: 8.0 / 159.0,
		MeanDepth:      11,
	}
}

var jsonProps = []string{
	"name", "id", "items", "config", "value", "children", "meta",
	"address", "tags", "payload", "status", "version",
}

// Schema emits one JSON Schema document.
func (g *JSONSchemaGen) Schema(r *rand.Rand) string {
	if r.Float64() < g.RecursionRate {
		return `{
  "$ref": "#/definitions/node",
  "definitions": {
    "node": {
      "type": "object",
      "properties": {
        "` + jsonProps[r.Intn(len(jsonProps))] + `": {"type": "string"},
        "children": {"type": "array", "items": {"$ref": "#/definitions/node"}}
      }
    }
  }
}`
	}
	// target depth 3..43 with mean ≈ 11 (geometric tail above the base)
	depth := 3 + r.Intn(5)
	for depth < 43 && r.Float64() < 1-1.0/float64(g.MeanDepth-6) {
		depth++
	}
	// negation and schema-full are PER-SCHEMA decisions, injected at one
	// random object level (the studies count schemas, not keywords)
	negAt, fullAt := -1, -1
	if r.Float64() < g.NegationRate {
		negAt = 1 + r.Intn(depth)
	}
	if r.Float64() < g.SchemaFullRate {
		fullAt = 1 + r.Intn(depth)
	}
	var build func(d int) string
	build = func(d int) string {
		if d <= 1 {
			return `{"type": "` + []string{"string", "integer", "number", "boolean"}[r.Intn(4)] + `"}`
		}
		prop := jsonProps[r.Intn(len(jsonProps))]
		extra := ""
		if d == fullAt {
			extra = `, "additionalProperties": false`
		}
		if d == negAt {
			extra += `, "not": {"required": ["forbidden_key"]}`
		}
		if extra == "" && r.Float64() < 0.3 {
			return `{"type": "array", "items": ` + build(d-1) + `}`
		}
		return fmt.Sprintf(`{"type": "object", "properties": {%q: %s}%s}`, prop, build(d-1), extra)
	}
	return build(depth)
}

// Corpus emits n schema documents.
func (g *JSONSchemaGen) Corpus(r *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.Schema(r)
	}
	return out
}

// DTDCorpus emits n DTD texts.
func (g *DTDGen) Corpus(r *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.DTD(r)
	}
	return out
}

// describeDepths summarizes a depth slice as "min–max (avg)".
func DescribeDepths(depths []int) string {
	if len(depths) == 0 {
		return "n/a"
	}
	min, max, sum := depths[0], depths[0], 0
	for _, d := range depths {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		sum += d
	}
	return fmt.Sprintf("%d-%d (avg %.1f)", min, max, float64(sum)/float64(len(depths)))
}
