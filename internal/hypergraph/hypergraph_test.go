package hypergraph

import (
	"fmt"
	"math/rand"
	"testing"
)

func chainH(n int) *Hypergraph {
	h := New()
	for i := 0; i < n; i++ {
		h.AddEdge(fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", i+1))
	}
	return h
}

func cycleH(n int) *Hypergraph {
	h := chainH(n - 1)
	h.AddEdge(fmt.Sprintf("x%d", n-1), "x0")
	return h
}

func triangleH() *Hypergraph {
	return New().AddEdge("x", "y").AddEdge("y", "z").AddEdge("z", "x")
}

func TestIsAcyclic(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want bool
	}{
		{"empty", New(), true},
		{"single edge", New().AddEdge("x", "y", "z"), true},
		{"chain", chainH(5), true},
		{"star", New().AddEdge("c", "a").AddEdge("c", "b").AddEdge("c", "d"), true},
		{"triangle", triangleH(), false},
		{"triangle with cover", triangleH().AddEdge("x", "y", "z"), true},
		{"cycle4", cycleH(4), false},
		{"two triangles sharing edge", New().AddEdge("a", "b").AddEdge("b", "c").AddEdge("c", "a").AddEdge("c", "d").AddEdge("d", "a"), false},
		{"tree of hyperedges", New().AddEdge("a", "b", "c").AddEdge("c", "d", "e").AddEdge("e", "f"), true},
		{"disconnected acyclic", New().AddEdge("a", "b").AddEdge("x", "y"), true},
	}
	for _, c := range cases {
		if got := c.h.IsAcyclic(); got != c.want {
			t.Errorf("%s: IsAcyclic = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFreeConnex(t *testing.T) {
	// The classical example: the path query R(x,y), S(y,z) is acyclic; with
	// free variables {x,z} it is NOT free-connex (the extension edge {x,z}
	// creates a cycle).
	h := New().AddEdge("x", "y").AddEdge("y", "z")
	if !h.IsFreeConnexAcyclic([]string{"x", "y"}) {
		t.Error("free {x,y} should be free-connex")
	}
	if !h.IsFreeConnexAcyclic([]string{"y"}) {
		t.Error("free {y} should be free-connex")
	}
	if h.IsFreeConnexAcyclic([]string{"x", "z"}) {
		t.Error("free {x,z} should NOT be free-connex")
	}
	if !h.IsFreeConnexAcyclic([]string{"x", "y", "z"}) {
		t.Error("all variables free should be free-connex")
	}
	if !h.IsFreeConnexAcyclic(nil) {
		t.Error("boolean query should be free-connex")
	}
	if triangleH().IsFreeConnexAcyclic([]string{"x"}) {
		t.Error("cyclic query cannot be free-connex")
	}
}

func TestHypertreeWidth(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want int
	}{
		{"empty", New(), 0},
		{"single", New().AddEdge("x", "y"), 1},
		{"chain", chainH(6), 1},
		{"triangle", triangleH(), 2},
		{"cycle4", cycleH(4), 2},
		{"cycle6", cycleH(6), 2},
		{"covered triangle", triangleH().AddEdge("x", "y", "z"), 1},
	}
	for _, c := range cases {
		if got := c.h.HypertreeWidth(); got != c.want {
			t.Errorf("%s: HypertreeWidth = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestAcyclicIffWidthOne(t *testing.T) {
	// Property: htw ≤ 1 ⇔ α-acyclic, fuzzed on random hypergraphs.
	r := rand.New(rand.NewSource(5))
	vars := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < 300; i++ {
		h := New()
		ne := 1 + r.Intn(5)
		for e := 0; e < ne; e++ {
			k := 1 + r.Intn(3)
			var vs []string
			for j := 0; j < k; j++ {
				vs = append(vs, vars[r.Intn(len(vars))])
			}
			h.AddEdge(vs...)
		}
		acyclic := h.IsAcyclic()
		w1 := h.HypertreeWidthAtMost(1)
		if acyclic != w1 {
			t.Fatalf("disagree on %v: acyclic=%v, htw≤1=%v", h, acyclic, w1)
		}
	}
}

func TestGridHypergraphWidth(t *testing.T) {
	// 3×3 grid as binary edges: treewidth 3, ghw 2 (bags of 2 edges cover
	// 4 vertices)… we just check monotonicity: ≤3 holds, ≤1 fails.
	h := New()
	id := func(x, y int) string { return fmt.Sprintf("v%d_%d", x, y) }
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if x+1 < 3 {
				h.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < 3 {
				h.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	if h.HypertreeWidthAtMost(1) {
		t.Error("grid should not have width 1")
	}
	if !h.HypertreeWidthAtMost(3) {
		t.Error("grid should have width ≤ 3")
	}
}

func TestWikidataExampleQueryHypergraph(t *testing.T) {
	// The "Locations of archaeological sites" query of Section 9: three
	// triple patterns sharing ?subj — a star, acyclic, free-connex for the
	// projection {?label, ?coord, ?subj}.
	h := New().
		AddEdge("?subj").           // ?subj wdt:P31/wdt:P279* wd:Q839954
		AddEdge("?subj", "?coord"). // ?subj wdt:P625 ?coord
		AddEdge("?subj", "?label")  // ?subj rdfs:label ?label
	if !h.IsAcyclic() {
		t.Error("star query should be acyclic")
	}
	if !h.IsFreeConnexAcyclic([]string{"?label", "?coord", "?subj"}) {
		t.Error("should be free-connex")
	}
	if h.HypertreeWidth() != 1 {
		t.Errorf("width = %d", h.HypertreeWidth())
	}
}
