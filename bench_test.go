// Package repro's root benchmark harness: one benchmark per table and
// figure of "Towards Theory for Real-World Data" (see DESIGN.md §4 for the
// experiment index, and EXPERIMENTS.md for paper-vs-measured numbers).
// Each benchmark regenerates its table through the real pipeline and
// reports domain-specific metrics alongside ns/op.
package repro

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/automata"
	"repro/internal/chare"
	"repro/internal/core"
	"repro/internal/determinism"
	"repro/internal/dtd"
	"repro/internal/edtd"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/jsonschema"
	"repro/internal/kore"
	"repro/internal/loggen"
	"repro/internal/propertypath"
	"repro/internal/rdf"
	"repro/internal/reduction"
	"repro/internal/regex"
	"repro/internal/schemastudy"
	"repro/internal/sparql"
	"repro/internal/tree"
	"repro/internal/xmllite"
	"repro/internal/xpath"
)

// benchScale is the corpus scale divisor for log-derived benchmarks
// (1:200000 of the paper's 558M queries ≈ 3.2k queries per run, so the
// full suite stays laptop-fast; rwdbench regenerates larger corpora).
const benchScale = 200000

// BenchmarkTable1Treewidth regenerates Table 1: treewidth bounds on the
// five synthetic dataset analogues.
func BenchmarkTable1Treewidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ds := range graphgen.Table1Datasets(42, 0.12) {
			lb, ub := graph.Bounds(ds.Graph)
			if lb > ub {
				b.Fatalf("%s: inverted bounds", ds.Name)
			}
		}
	}
	core.RenderTable1(io.Discard, 42, 0.12)
}

func runLogStudy(b *testing.B) []*core.SourceReport {
	b.Helper()
	var reports []*core.SourceReport
	for i := 0; i < b.N; i++ {
		reports = core.RunLogStudy(1, benchScale)
	}
	return reports
}

// BenchmarkLogStudyIngest measures end-to-end corpus ingest throughput
// (generation + parsing + dedup + full battery) for the sequential
// reference pipeline and the sharded worker pool. The queries/s metric is
// the acceptance number: the 4-worker pool must sustain ≥ 2× the
// sequential throughput, while producing byte-identical reports (see
// TestRunLogStudyParallelMatchesSequential).
func BenchmarkLogStudyIngest(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 1 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				var reports []*core.SourceReport
				if workers == 1 {
					reports = core.RunLogStudy(1, benchScale)
				} else {
					reports = core.RunLogStudyParallel(core.Config{
						Workers: workers, ScaleDiv: benchScale, Seed: 1,
					})
				}
				total = 0
				for _, r := range reports {
					total += r.Total
				}
			}
			b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkTable2LogCounts regenerates Table 2: Total/Valid/Unique per log
// source, end to end (generation + parsing + dedup).
func BenchmarkTable2LogCounts(b *testing.B) {
	reports := runLogStudy(b)
	var t, v, u int
	for _, r := range reports {
		t += r.Total
		v += r.Valid
		u += r.Unique
	}
	b.ReportMetric(float64(v)/float64(t)*100, "%valid")
	b.ReportMetric(float64(u)/float64(v)*100, "%unique")
	core.RenderTable2(io.Discard, reports)
}

// BenchmarkFigure3TripleDistribution regenerates Figure 3.
func BenchmarkFigure3TripleDistribution(b *testing.B) {
	reports := runLogStudy(b)
	merged := core.Merge("all", reports)
	le1 := merged.TripleBuckets[0].V + merged.TripleBuckets[1].V
	le2 := le1 + merged.TripleBuckets[2].V
	b.ReportMetric(float64(le1)/float64(merged.CountedV)*100, "%≤1triple")
	b.ReportMetric(float64(le2)/float64(merged.CountedV)*100, "%≤2triples")
	core.RenderFigure3(io.Discard, reports)
}

// BenchmarkTable3Features regenerates Table 3 for both groups.
func BenchmarkTable3Features(b *testing.B) {
	reports := runLogStudy(b)
	dbp, wiki := core.GroupReports(reports)
	if c := dbp.Features[sparql.FFilter]; c != nil {
		b.ReportMetric(float64(c.V)/float64(dbp.Valid)*100, "%dbp-filter")
	}
	if c := wiki.Features[sparql.FPropertyPath]; c != nil {
		b.ReportMetric(float64(c.V)/float64(wiki.Valid)*100, "%wiki-pp")
	}
	core.RenderTable3(io.Discard, dbp)
	core.RenderTable3(io.Discard, wiki)
}

// BenchmarkTable4OperatorSets regenerates Table 4 (DBpedia–BritM CQ+F).
func BenchmarkTable4OperatorSets(b *testing.B) {
	reports := runLogStudy(b)
	dbp, _ := core.GroupReports(reports)
	sub := 0
	for _, name := range core.Table4Rows {
		if c := dbp.OperatorSets[name]; c != nil {
			sub += c.V
		}
	}
	b.ReportMetric(float64(sub)/float64(dbp.Valid)*100, "%CQ+F")
	core.RenderOperatorSets(io.Discard, dbp, core.Table4Rows)
}

// BenchmarkTable5OperatorSets regenerates Table 5 (Wikidata C2RPQ+F).
func BenchmarkTable5OperatorSets(b *testing.B) {
	reports := runLogStudy(b)
	_, wiki := core.GroupReports(reports)
	sub := 0
	for _, name := range core.Table5Rows {
		if c := wiki.OperatorSets[name]; c != nil {
			sub += c.V
		}
	}
	b.ReportMetric(float64(sub)/float64(wiki.Valid)*100, "%C2RPQ+F")
	core.RenderOperatorSets(io.Discard, wiki, core.Table5Rows)
}

// BenchmarkTable6Hypertree regenerates Table 6 (FCA + htw rows).
func BenchmarkTable6Hypertree(b *testing.B) {
	reports := runLogStudy(b)
	dbp, _ := core.GroupReports(reports)
	if dbp.CQF.Total.V > 0 {
		b.ReportMetric(float64(dbp.CQF.FCA.V)/float64(dbp.CQF.Total.V)*100, "%FCA")
		b.ReportMetric(float64(dbp.CQF.Htw2.V)/float64(dbp.CQF.Total.V)*100, "%htw≤2")
	}
	core.RenderTable6(io.Discard, dbp)
}

// BenchmarkTable7Shapes regenerates Table 7 (cumulative shape analysis).
func BenchmarkTable7Shapes(b *testing.B) {
	reports := runLogStudy(b)
	dbp, _ := core.GroupReports(reports)
	if dbp.GraphCQF.V > 0 {
		cum := 0
		for lvl := core.ShapeNoEdge; lvl <= core.ShapeStar; lvl++ {
			cum += dbp.ShapeWith[lvl].V
		}
		b.ReportMetric(float64(cum)/float64(dbp.GraphCQF.V)*100, "%≤star")
	}
	core.RenderTable7(io.Discard, dbp)
}

// BenchmarkTable8PropertyPaths regenerates Table 8 (PP types, Wikidata).
func BenchmarkTable8PropertyPaths(b *testing.B) {
	reports := runLogStudy(b)
	_, wiki := core.GroupReports(reports)
	if wiki.PPTotal.V > 0 {
		if c := wiki.PPRows["a*"]; c != nil {
			b.ReportMetric(float64(c.V)/float64(wiki.PPTotal.V)*100, "%a*")
		}
		b.ReportMetric(float64(wiki.NonSTE.V)/float64(wiki.PPTotal.V)*100, "%non-STE")
	}
	core.RenderTable8(io.Discard, wiki)
}

// --- Theorems 4.4/4.5: the complexity landscape as ablation benches -----

func benchContainment(b *testing.B, frag []chare.FactorType, wantMethod chare.Method) {
	r := rand.New(rand.NewSource(7))
	alpha := []string{"a", "b", "c", "d"}
	type pair struct{ c1, c2 *chare.CHARE }
	pairs := make([]pair, 64)
	for i := range pairs {
		pairs[i] = pair{
			chare.RandomCHARE(r, alpha, 4+r.Intn(6), frag...),
			chare.RandomCHARE(r, alpha, 4+r.Intn(6), frag...),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		_, m := chare.Contains(p.c1, p.c2)
		if m != wantMethod {
			b.Fatalf("method %v, want %v", m, wantMethod)
		}
	}
}

// BenchmarkCHAREContainmentBlocks: RE(a,a+), PTIME (Thm 4.4(a)).
func BenchmarkCHAREContainmentBlocks(b *testing.B) {
	benchContainment(b, []chare.FactorType{chare.TypeA, chare.TypeAPlus}, chare.MethodBlocks)
}

// BenchmarkCHAREContainmentFixedLen: RE(a,(+a)), PTIME (Thm 4.4(b)).
func BenchmarkCHAREContainmentFixedLen(b *testing.B) {
	benchContainment(b, []chare.FactorType{chare.TypeA, chare.TypeDisj}, chare.MethodFixedLen)
}

// BenchmarkCHAREContainmentGreedy: subsequence-closed fragments (Abdulla
// et al.), PTIME.
func BenchmarkCHAREContainmentGreedy(b *testing.B) {
	benchContainment(b, []chare.FactorType{chare.TypeAQuestion, chare.TypeAStar, chare.TypeDisjStar}, chare.MethodGreedy)
}

// BenchmarkCHAREContainmentAutomata: the general coNP/PSPACE regime
// (Thm 4.4(c–g)) via the automata construction — the ablation baseline.
func BenchmarkCHAREContainmentAutomata(b *testing.B) {
	benchContainment(b, []chare.FactorType{chare.TypeA, chare.TypeAQuestion, chare.TypeDisjPlus}, chare.MethodAutomata)
}

// BenchmarkCHAREIntersection: PTIME fragments vs the product construction.
func BenchmarkCHAREIntersectionBlocks(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	cs := make([]*chare.CHARE, 3)
	base := chare.RandomCHARE(r, []string{"a", "b"}, 6, chare.TypeA, chare.TypeAPlus)
	for i := range cs {
		cs[i] = base
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, m := chare.IntersectionNonEmpty(cs...); !ok || m != chare.MethodBlocks {
			b.Fatal("self-intersection must be non-empty via blocks")
		}
	}
}

// BenchmarkKOREDeterminize exercises the |Σ|·2^k DFA bound of Thm 4.6(a).
func BenchmarkKOREDeterminize(b *testing.B) {
	g := regex.DefaultGen([]string{"a", "b", "c"})
	r := rand.New(rand.NewSource(3))
	exprs := make([]*regex.Expr, 32)
	for i := range exprs {
		exprs[i] = g.Random(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := exprs[i%len(exprs)]
		states, bound, ok := kore.DeterminizeWithinBound(e)
		if !ok {
			b.Fatalf("bound violated: %d > %d for %s", states, bound, e)
		}
	}
}

// BenchmarkAppendixAReduction builds and decides the coNP-hardness
// instances of Appendix A.
func BenchmarkAppendixAReduction(b *testing.B) {
	phi := &reduction.DNF{Vars: 4, Clauses: []reduction.Clause{{1, -2, 3}, {-1, 3, -4}, {2, -3, 4}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e1, e2 := phi.ToOptContainment()
		if automata.Contains(e1, e2) != phi.Valid() {
			b.Fatal("reduction incorrect")
		}
	}
}

// --- the tree-side studies ----------------------------------------------

// BenchmarkXMLQualityStudy replays the Grijzenhout & Marx study (§3.1).
func BenchmarkXMLQualityStudy(b *testing.B) {
	g := xmllite.DefaultCorpusGen()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(42))
		docs := make([]string, 2000)
		for j := range docs {
			docs[j] = g.Document(r)
		}
		res := xmllite.RunStudy(docs)
		b.ReportMetric(res.WellFormedRate()*100, "%wf")
		b.ReportMetric(res.TopThreeRate*100, "%top3")
	}
}

// BenchmarkDTDCorpusStudy replays Choi's and Bex et al.'s DTD studies
// (§4.1–4.2).
func BenchmarkDTDCorpusStudy(b *testing.B) {
	g := schemastudy.DefaultDTDGen()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(4))
		rep := schemastudy.AnalyzeDTDs(g.Corpus(r, 300))
		b.ReportMetric(rep.CHARERate()*100, "%CHARE")
		b.ReportMetric(rep.SORERate()*100, "%SORE")
	}
}

// BenchmarkXSDTypeStudy replays the 25/30 complex-type study (§4.4).
func BenchmarkXSDTypeStudy(b *testing.B) {
	g := schemastudy.DefaultXSDGen()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(11))
		xs := make([]*edtd.EDTD, 30)
		for j := range xs {
			xs[j] = g.Schema(r)
		}
		rep := schemastudy.AnalyzeXSDs(xs)
		b.ReportMetric(float64(rep.DTDExpressible), "dtd-expressible")
	}
}

// BenchmarkJSONSchemaStudy replays Maiwald et al. and Baazizi et al.
// (§4.5).
func BenchmarkJSONSchemaStudy(b *testing.B) {
	g := schemastudy.DefaultJSONSchemaGen()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(2))
		rep := jsonschema.RunStudy(g.Corpus(r, 300))
		b.ReportMetric(float64(rep.Recursive)/float64(rep.Total)*100, "%recursive")
		b.ReportMetric(rep.AverageDepth(), "avg-depth")
	}
}

// BenchmarkXPathStudy replays Baelde et al. and Pasqua (§5).
func BenchmarkXPathStudy(b *testing.B) {
	g := xpath.DefaultGen()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(1))
		res := xpath.RunStudy(g.Corpus(r, 3000))
		b.ReportMetric(float64(res.SizeQuantile(0.5)), "median-size")
		b.ReportMetric(float64(res.TreePatterns)/float64(res.Total)*100, "%twig")
	}
}

// BenchmarkRDFStructureStudy replays the §7.1 dataset analyses.
func BenchmarkRDFStructureStudy(b *testing.B) {
	g := rdf.DefaultGen()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(7))
		st := rdf.ComputeStats(g.Graph(r, 5000))
		b.ReportMetric(st.SharedListSubjectRate*100, "%shared-lists")
		b.ReportMetric(st.InDegree.Alpha, "alpha")
	}
}

// BenchmarkPropertyPathTractability measures the §9.6 classifier stack.
func BenchmarkPropertyPathTractability(b *testing.B) {
	reports := runLogStudy(b)
	_, wiki := core.GroupReports(reports)
	if wiki.PPTotal.V > 0 {
		b.ReportMetric(float64(wiki.NonCtract.V), "non-Ctract")
		b.ReportMetric(float64(wiki.NonTtract.V), "non-Ttract")
	}
}

// BenchmarkSPARQLParser isolates the parser (the pipeline's hot path).
func BenchmarkSPARQLParser(b *testing.B) {
	src := Sources()[0]
	g := loggen.NewGen(src, 5)
	queries := make([]string, 512)
	for i := range queries {
		queries[i] = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sparql.Parse(queries[i%len(queries)])
	}
}

// Sources re-exports loggen.Sources for the parser bench.
func Sources() []loggen.Source { return loggen.Sources() }

// BenchmarkDeterminizationBlowUp measures the RE → DFA blow-up family of
// Section 4.2.1 ((a+b)* a (a+b)ⁿ needs ≥ 2ⁿ⁺¹ DFA states).
func BenchmarkDeterminizationBlowUp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, states := determinism.MeasureFamily(10)
		if states < 1<<11 {
			b.Fatal("blow-up family collapsed")
		}
	}
}

// BenchmarkDTDContainment exercises the Section 4.2.2 reduction from DTD
// containment to regular-expression containment.
func BenchmarkDTDContainment(b *testing.B) {
	g := schemastudy.DefaultDTDGen()
	r := rand.New(rand.NewSource(21))
	var pairs [][2]*dtd.DTD
	for len(pairs) < 16 {
		d1, err1 := dtd.ParseText(g.DTD(r), "")
		d2, err2 := dtd.ParseText(g.DTD(r), "")
		if err1 != nil || err2 != nil {
			continue
		}
		pairs = append(pairs, [2]*dtd.DTD{d1, d2})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		_ = dtd.Contains(p[0], p[1])
	}
}

// BenchmarkJSONSchemaContainment measures the Section 4.5 containment
// checker (structural subsumption + randomized refutation).
func BenchmarkJSONSchemaContainment(b *testing.B) {
	g := schemastudy.DefaultJSONSchemaGen()
	r := rand.New(rand.NewSource(23))
	var schemas []*jsonschema.Schema
	for len(schemas) < 16 {
		s, err := jsonschema.Parse(g.Schema(r))
		if err == nil {
			schemas = append(schemas, s)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1 := schemas[i%len(schemas)]
		s2 := schemas[(i+1)%len(schemas)]
		_, _ = jsonschema.Contains(s1, s2, 20, int64(i))
	}
}

// BenchmarkStreamingDTDValidation measures the constant-memory streaming
// validation of Section 4.1 (Segoufin & Vianu regime).
func BenchmarkStreamingDTDValidation(b *testing.B) {
	d := dtd.New().
		AddRule("persons", regex.MustParse("person*")).
		AddRule("person", regex.MustParse("name birthplace")).
		AddRule("birthplace", regex.MustParse("city state country?")).
		AddStart("persons")
	// a long flat document: memory must stay at depth ≤ 4
	root := tree.New("persons")
	for i := 0; i < 1000; i++ {
		p := tree.New("person")
		p.Add(tree.New("name"))
		bp := tree.New("birthplace")
		bp.Add(tree.New("city"), tree.New("state"))
		p.Add(bp)
		root.Add(p)
	}
	events := dtd.Events(root)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := dtd.NewStreamValidator(d)
		for _, ev := range events {
			if err := v.Feed(ev); err != nil {
				b.Fatal(err)
			}
		}
		if v.HighWater > 4 {
			b.Fatalf("streaming memory grew: %d", v.HighWater)
		}
	}
}

// BenchmarkRPQSemantics compares the three evaluation semantics of
// Section 9.6 on a small power-law graph.
func BenchmarkRPQSemantics(b *testing.B) {
	g := rdf.DefaultGen().Graph(rand.New(rand.NewSource(31)), 300)
	p := propertypath.MustParse("rdf:type/foaf:knows*")
	subjects := g.Subjects()
	b.Run("regular", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			propertypath.Eval(g, p, subjects[i%len(subjects)])
		}
	})
	b.Run("simple-paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			propertypath.EvalSimplePaths(g, p, subjects[i%len(subjects)])
		}
	})
	b.Run("trails", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			propertypath.EvalTrails(g, p, subjects[i%len(subjects)])
		}
	})
}

// BenchmarkSTEDTDContainment measures single-type EDTD containment
// (Section 4.3's reduction to regular-expression containment).
func BenchmarkSTEDTDContainment(b *testing.B) {
	mk := func() *edtd.EDTD {
		return edtd.New().
			AddType("a", "a", regex.MustParse("b + c")).
			AddType("b", "b", regex.MustParse("e d1 f")).
			AddType("c", "c", regex.MustParse("e d2 f")).
			AddType("d1", "d", regex.MustParse("g h1 i")).
			AddType("d2", "d", regex.MustParse("g h2 i")).
			AddType("h1", "h", regex.MustParse("j")).
			AddType("h2", "h", regex.MustParse("k")).
			AddStart("a")
	}
	base, wide := mk(), mk()
	wide.Rules["h1"] = regex.MustParse("j?")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !edtd.Contains(base, wide) || edtd.Contains(wide, base) {
			b.Fatal("containment answers changed")
		}
	}
}
