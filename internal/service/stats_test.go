package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/profile"
	"repro/internal/obs/recorder"
)

func getStats(t *testing.T, base, query string) *profile.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/stats%s = %d: %s", query, resp.StatusCode, raw)
	}
	var snap profile.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("stats response is not valid JSON: %v\n%s", err, raw)
	}
	return &snap
}

func findRow(rows []profile.OpProfile, op, engine string) *profile.OpProfile {
	for i := range rows {
		if rows[i].Op == op && rows[i].Engine == engine {
			return &rows[i]
		}
	}
	return nil
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	for i := 0; i < 20; i++ {
		// Growing pads vary automaton size, so the cost counters (the
		// fit's x axis) take several distinct values.
		pad := strings.Repeat("(a|b) ", i%5+1)
		if code := post(t, ts.URL, "/v1/containment",
			fmt.Sprintf(`{"engine":"regex","left":"(a|b)* %sx","right":"(a|b)* (a|b) %sx"}`, pad, pad), nil); code != 200 {
			t.Fatalf("containment request %d = %d", i, code)
		}
	}
	post(t, ts.URL, "/v1/membership", `{"expr":"a","word":["a"]}`, nil)
	post(t, ts.URL, "/v1/containment", `{not json`, nil) // a 400 to profile

	snap := getStats(t, ts.URL, "")
	if snap.SchemaVersion != profile.SnapshotSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", snap.SchemaVersion, profile.SnapshotSchemaVersion)
	}
	if snap.SketchRelError <= 0 || snap.SketchRelError > 0.05 {
		t.Fatalf("sketch_rel_error = %g, want the documented ~0.022 bound", snap.SketchRelError)
	}
	if snap.Observed < 22 {
		t.Fatalf("observed = %d, want >= 22", snap.Observed)
	}

	row := findRow(snap.Lifetime, "containment", "antichain")
	if row == nil {
		t.Fatalf("no containment/antichain row in lifetime: %+v", snap.Lifetime)
	}
	if row.Requests != 20 {
		t.Fatalf("containment requests = %d, want 20", row.Requests)
	}
	d := row.DurationMS
	if !(d.P50 <= d.P90 && d.P90 <= d.P99) {
		t.Fatalf("quantiles out of order: p50=%g p90=%g p99=%g", d.P50, d.P90, d.P99)
	}
	if d.P50 <= 0 || d.Max < d.P99 || d.Min > d.P50 {
		t.Fatalf("implausible duration stats: %+v", d)
	}
	if len(row.Counters) == 0 {
		t.Fatal("containment row has no cost-counter distributions")
	}
	var sawStates bool
	for _, c := range row.Counters {
		if c.Name == "states_expanded" && c.Sum > 0 {
			sawStates = true
		}
	}
	if !sawStates {
		t.Fatalf("no states_expanded counter distribution: %+v", row.Counters)
	}

	// The 400 landed in its own (op, engine="") series with error rate 1.
	errRow := findRow(snap.Lifetime, "containment", "")
	if errRow == nil || errRow.Errors == 0 || errRow.ErrorRate != 1 {
		t.Fatalf("malformed request not profiled as an error row: %+v", errRow)
	}

	// Exemplars resolve against the flight recorder.
	if len(row.Exemplars) == 0 {
		t.Fatal("containment row has no exemplars")
	}
	for _, ex := range row.Exemplars {
		resp, err := http.Get(ts.URL + "/v1/traces/" + ex.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("exemplar %s (%s) does not resolve: %d", ex.TraceID, ex.Band, resp.StatusCode)
		}
	}

	// The live window: all the traffic just happened, so it matches
	// lifetime counts.
	wrow := findRow(snap.Window, "containment", "antichain")
	if wrow == nil || wrow.Requests != 20 {
		t.Fatalf("window containment row = %+v, want 20 requests", wrow)
	}

	// Filters.
	onlyMembership := getStats(t, ts.URL, "?window=lifetime&op=membership")
	if len(onlyMembership.Lifetime) != 1 || onlyMembership.Lifetime[0].Op != "membership" {
		t.Fatalf("op filter: %+v", onlyMembership.Lifetime)
	}
	if len(onlyMembership.Window) != 0 {
		t.Fatal("window=lifetime must omit the live window block")
	}
	noEngine := getStats(t, ts.URL, "?window=lifetime&engine=-")
	for _, r := range noEngine.Lifetime {
		if r.Engine != "" {
			t.Fatalf("engine=- returned a row with engine %q", r.Engine)
		}
	}

	// The models block carries the containment cost fit.
	var model *profile.Model
	for i := range snap.Models {
		if snap.Models[i].Op == "containment" {
			model = &snap.Models[i]
		}
	}
	if model == nil {
		t.Fatalf("no containment model: %+v", snap.Models)
	}
	if model.Samples < 10 || model.Counter == "" {
		t.Fatalf("model = %+v, want >= 10 samples on a named counter", model)
	}

	// Reading /v1/stats must not profile itself.
	before := snap.Observed
	for i := 0; i < 5; i++ {
		getStats(t, ts.URL, "")
	}
	if after := getStats(t, ts.URL, "").Observed; after != before {
		t.Fatalf("observed grew %d -> %d from reading /v1/stats — the profile is polluting itself", before, after)
	}

	// Bad parameters are 400s.
	resp, err := http.Get(ts.URL + "/v1/stats?window=hourly")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("window=hourly = %d, want 400", resp.StatusCode)
	}
}

// TestStatsQuantilesMatchOffline is the acceptance check of the sketch
// in situ: the /v1/stats lifetime quantiles must agree with exact
// nearest-rank quantiles computed offline from the same -trace-dir
// NDJSON within the documented rank-error bound, and an offline replay
// through profile.Replay must reproduce the live engine's snapshot
// byte for byte.
func TestStatsQuantilesMatchOffline(t *testing.T) {
	dir := t.TempDir()
	lg, err := recorder.OpenLog(dir, recorder.LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{TraceLog: lg, CacheSize: -1})
	for i := 0; i < 120; i++ {
		if code := post(t, ts.URL, "/v1/containment",
			fmt.Sprintf(`{"engine":"regex","left":"(a|b)* x%d","right":"(a|b)* (a|b) x%d"}`, i%12, i%12), nil); code != 200 {
			t.Fatalf("containment request %d = %d", i, code)
		}
	}
	snap := getStats(t, ts.URL, "?window=lifetime")
	ts.Close()
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	traces, discarded, err := recorder.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if discarded != 0 || len(traces) != 120 {
		t.Fatalf("on-disk history: %d traces, %d discarded; want 120, 0", len(traces), discarded)
	}

	// Exact quantiles per (op, engine) from the raw NDJSON durations.
	var durs []float64
	for _, tr := range traces {
		if tr.Op == "containment" && recorder.TraceEngine(tr) == "antichain" {
			durs = append(durs, tr.DurationMS)
		}
	}
	if len(durs) != 120 {
		t.Fatalf("history has %d containment/antichain traces, want 120", len(durs))
	}
	sort.Float64s(durs)
	exact := func(q float64) float64 {
		rank := int(math.Ceil(q * float64(len(durs))))
		if rank < 1 {
			rank = 1
		}
		return durs[rank-1]
	}
	row := findRow(snap.Lifetime, "containment", "antichain")
	if row == nil {
		t.Fatal("no containment/antichain row")
	}
	for _, c := range []struct {
		name        string
		got, wantEx float64
	}{
		{"p50", row.DurationMS.P50, exact(0.50)},
		{"p90", row.DurationMS.P90, exact(0.90)},
		{"p99", row.DurationMS.P99, exact(0.99)},
	} {
		relErr := math.Abs(c.got-c.wantEx) / c.wantEx
		if relErr > snap.SketchRelError {
			t.Errorf("%s: live %g vs offline exact %g, rel err %.4f > documented bound %.4f",
				c.name, c.got, c.wantEx, relErr, snap.SketchRelError)
		}
	}

	// Replay the NDJSON through a fresh engine (what `rwdtrace stats
	// -trace-dir` does) and compare snapshots at the same instant.
	replayed := profile.Replay(traces, profile.Config{
		BucketWidth:   6 * time.Second,
		WindowBuckets: 10,
	})
	at := s.Profile().LastSeen()
	if !at.Equal(replayed.LastSeen()) {
		t.Fatalf("LastSeen: live %v != replayed %v", at, replayed.LastSeen())
	}
	liveJSON, _ := json.Marshal(s.Profile().Snapshot(at, profile.WindowAll, profile.Filter{}))
	replayJSON, _ := json.Marshal(replayed.Snapshot(at, profile.WindowAll, profile.Filter{}))
	if string(liveJSON) != string(replayJSON) {
		t.Fatalf("offline replay disagrees with live engine:\nlive:   %s\nreplay: %s", liveJSON, replayJSON)
	}
}

func TestStatsMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a","right":"a*"}`, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		`rwd_op_duration_seconds_bucket{op="containment",status="200",le="0.005"}`,
		"rwd_op_duration_seconds_sum",
		"rwd_op_duration_seconds_count",
		"rwd_profile_observed_total",
		"rwd_profile_anomalies_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}

func TestHealthzJSONAndText(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a","right":"a*"}`, nil)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h struct {
		Status        string  `json:"status"`
		GoVersion     string  `json:"go_version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Recorder      struct {
			Enabled  bool  `json:"enabled"`
			Retained int64 `json:"retained"`
		} `json:"recorder"`
		Profile struct {
			Observed int64 `json:"observed"`
		} `json:"profile"`
		StoreAttached bool `json:"store_attached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	if h.Status != "ok" || h.GoVersion == "" || h.UptimeSeconds < 0 {
		t.Fatalf("healthz body = %+v", h)
	}
	if !h.Recorder.Enabled || h.Recorder.Retained == 0 {
		t.Fatalf("recorder block = %+v, want enabled with 1 retained", h.Recorder)
	}
	if h.Profile.Observed == 0 {
		t.Fatalf("profile block = %+v, want observed > 0", h.Profile)
	}
	if h.StoreAttached {
		t.Fatal("store_attached = true with no store")
	}

	// format=text keeps the plain body for load balancers.
	textResp, err := http.Get(ts.URL + "/healthz?format=text")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(textResp.Body)
	textResp.Body.Close()
	if textResp.StatusCode != 200 || string(raw) != "ok\n" {
		t.Fatalf("healthz?format=text = %d %q, want 200 \"ok\\n\"", textResp.StatusCode, raw)
	}
}

// TestProfileOverheadUnderFivePercent pins the profile engine's hot-path
// cost the same way the recorder's own gate does: folding a finished
// trace into the engine must cost less than 5% of serving the request
// end to end over the HTTP stack.
func TestProfileOverheadUnderFivePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s, ts := newTestServer(t, Config{})
	const reqN = 200
	body := `{"engine":"regex","left":"(a|b)*abb","right":"(a|b)*"}`
	for i := 0; i < 10; i++ {
		post(t, ts.URL, "/v1/containment", fmt.Sprintf(`{"engine":"regex","left":"a{%d}","right":"a*"}`, i+1), nil)
	}
	reqStart := time.Now()
	for i := 0; i < reqN; i++ {
		if code := post(t, ts.URL, "/v1/containment", body, nil); code != 200 {
			t.Fatalf("code = %d", code)
		}
	}
	perRequest := time.Since(reqStart) / reqN

	snap := s.flight.Snapshot()
	if len(snap) == 0 {
		t.Fatal("nothing recorded")
	}
	sample := snap[len(snap)-1]
	eng := profile.New(profile.Config{})
	const obsN = 20000
	obsStart := time.Now()
	for i := 0; i < obsN; i++ {
		eng.Observe(sample)
	}
	perObserve := time.Since(obsStart) / obsN

	if perObserve*20 > perRequest {
		t.Fatalf("profile overhead %v per trace is not <5%% of %v per request", perObserve, perRequest)
	}
	t.Logf("per-request %v, per-observe %v (%.3f%%)", perRequest, perObserve,
		100*float64(perObserve)/float64(perRequest))
}
