package service

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Serve runs the server on l until the shutdown channel is closed (or
// receives), then drains: in-flight requests get up to drainTimeout to
// finish before the process gives up on them. It returns nil on a clean
// drain. cmd/rwdserve wires shutdown to SIGTERM/SIGINT; tests drive it
// directly.
func (s *Server) Serve(l net.Listener, shutdown <-chan struct{}, drainTimeout time.Duration) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-shutdown:
		s.log.Printf("level=info msg=\"shutdown requested, draining in-flight requests\" timeout=%s", drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := hs.Shutdown(ctx)
		if err == nil {
			s.log.Printf("level=info msg=\"drain complete\"")
		}
		return err
	}
}
