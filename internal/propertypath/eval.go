package propertypath

import (
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/rdf"
)

// Evaluation of property paths over RDF graphs under the three semantics
// discussed in Section 9.6: the W3C regular (existential) semantics, and
// the simple-path and trail semantics whose data complexity the classes
// C_tract and T_tract characterize.

// atomMatcher resolves the extended-alphabet symbols produced by ToRegex
// against a graph: forward labels, inverse labels, and negated sets.
type atomMatcher struct {
	g rdf.GraphReader
}

// step returns the nodes reachable from node via the atom symbol, together
// with the traversed graph edges (for trail semantics).
type edgeUse struct {
	t       rdf.Triple
	forward bool
}

func (m atomMatcher) step(node, sym string) []struct {
	to   string
	edge edgeUse
} {
	var out []struct {
		to   string
		edge edgeUse
	}
	add := func(to string, e edgeUse) {
		out = append(out, struct {
			to   string
			edge edgeUse
		}{to, e})
	}
	switch {
	case strings.HasPrefix(sym, "^"):
		p := sym[1:]
		for _, t := range m.g.InEdges(node) {
			if t.P == p {
				add(t.S, edgeUse{t, false})
			}
		}
	case strings.HasPrefix(sym, "!("):
		forbidden, forbiddenInv := parseNegSymbol(sym)
		// W3C semantics: the forward part of a negated property set is
		// active only when it lists at least one forward IRI, and likewise
		// for the inverse part (e.g. !(^b) matches reverse edges only).
		if forbidden != nil {
			for _, t := range m.g.OutEdges(node) {
				if !forbidden[t.P] {
					add(t.O, edgeUse{t, true})
				}
			}
		}
		if forbiddenInv != nil {
			for _, t := range m.g.InEdges(node) {
				if !forbiddenInv[t.P] {
					add(t.S, edgeUse{t, false})
				}
			}
		}
	default:
		for _, t := range m.g.OutEdges(node) {
			if t.P == sym {
				add(t.O, edgeUse{t, true})
			}
		}
	}
	return out
}

// parseNegSymbol decodes the "!(p|^q|…)" symbols emitted by ToRegex.
// A nil map means that direction is not traversable at all (it had no
// members in the set).
func parseNegSymbol(sym string) (forbidden map[string]bool, forbiddenInv map[string]bool) {
	body := strings.TrimSuffix(strings.TrimPrefix(sym, "!("), ")")
	if body == "" {
		return nil, nil
	}
	for _, part := range strings.Split(body, "|") {
		if strings.HasPrefix(part, "^") {
			if forbiddenInv == nil {
				forbiddenInv = map[string]bool{}
			}
			forbiddenInv[part[1:]] = true
		} else {
			if forbidden == nil {
				forbidden = map[string]bool{}
			}
			forbidden[part] = true
		}
	}
	return forbidden, forbiddenInv
}

// Eval returns the nodes y such that (start, y) is in the answer of the
// property path under the W3C regular semantics (existence of any path),
// computed by BFS over the product of the graph with the path's NFA —
// polynomial time, as for all RPQs under this semantics.
func Eval(g rdf.GraphReader, p *Path, start string) []string {
	n := automata.Glushkov(ToRegex(p))
	m := atomMatcher{g}
	type pstate struct {
		node  string
		state int
	}
	seen := map[pstate]bool{}
	var queue []pstate
	results := map[string]bool{}
	push := func(ps pstate) {
		if !seen[ps] {
			seen[ps] = true
			queue = append(queue, ps)
			if n.Final[ps.state] {
				results[ps.node] = true
			}
		}
	}
	for _, q := range n.Initial {
		push(pstate{start, q})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for sym, succs := range n.Trans[cur.state] {
			for _, st := range m.step(cur.node, sym) {
				for _, q2 := range succs {
					push(pstate{st.to, q2})
				}
			}
		}
	}
	out := make([]string, 0, len(results))
	for x := range results {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// EvalSimplePaths returns the nodes reachable via a SIMPLE path (no
// repeated node) matching the path — the semantics whose data complexity
// the class C_tract characterizes. Worst-case exponential (the problem is
// NP-hard outside C_tract); intended for small graphs and experiments.
func EvalSimplePaths(g rdf.GraphReader, p *Path, start string) []string {
	n := automata.Glushkov(ToRegex(p))
	m := atomMatcher{g}
	results := map[string]bool{}
	visited := map[string]bool{start: true}
	var dfs func(node string, states map[int]bool)
	dfs = func(node string, states map[int]bool) {
		for q := range states {
			if n.Final[q] {
				results[node] = true
			}
		}
		// group successor states by symbol
		for sym := range symbolsOf(n, states) {
			next := map[int]bool{}
			for q := range states {
				for _, p2 := range n.Trans[q][sym] {
					next[p2] = true
				}
			}
			if len(next) == 0 {
				continue
			}
			for _, st := range m.step(node, sym) {
				if visited[st.to] {
					continue
				}
				visited[st.to] = true
				dfs(st.to, next)
				delete(visited, st.to)
			}
		}
	}
	init := map[int]bool{}
	for _, q := range n.Initial {
		init[q] = true
	}
	dfs(start, init)
	out := make([]string, 0, len(results))
	for x := range results {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// EvalTrails returns the nodes reachable via a TRAIL (no repeated edge)
// matching the path — the semantics of the class T_tract.
func EvalTrails(g rdf.GraphReader, p *Path, start string) []string {
	n := automata.Glushkov(ToRegex(p))
	m := atomMatcher{g}
	results := map[string]bool{}
	used := map[rdf.Triple]bool{}
	var dfs func(node string, states map[int]bool)
	dfs = func(node string, states map[int]bool) {
		for q := range states {
			if n.Final[q] {
				results[node] = true
			}
		}
		for sym := range symbolsOf(n, states) {
			next := map[int]bool{}
			for q := range states {
				for _, p2 := range n.Trans[q][sym] {
					next[p2] = true
				}
			}
			if len(next) == 0 {
				continue
			}
			for _, st := range m.step(node, sym) {
				if used[st.edge.t] {
					continue
				}
				used[st.edge.t] = true
				dfs(st.to, next)
				delete(used, st.edge.t)
			}
		}
	}
	init := map[int]bool{}
	for _, q := range n.Initial {
		init[q] = true
	}
	dfs(start, init)
	out := make([]string, 0, len(results))
	for x := range results {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

func symbolsOf(n *automata.NFA, states map[int]bool) map[string]bool {
	out := map[string]bool{}
	for q := range states {
		for sym := range n.Trans[q] {
			out[sym] = true
		}
	}
	return out
}
