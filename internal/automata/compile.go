package automata

// Compiled automaton form for the engine hot loops: labels are interned
// to dense ints once per decision, transitions live in flat arrays
// indexed [state][labelID], and each (state, label) successor set is
// additionally precomputed as a word-packed bitset mask, so a subset
// construction step is a handful of word ORs instead of map lookups and
// sorted-slice merges.

import "repro/internal/automata/bitset"

// labelTable interns transition labels across the automata of one
// decision, so both sides of a containment check agree on label ids.
type labelTable struct {
	ids   map[string]int
	names []string
}

func newLabelTable() *labelTable {
	return &labelTable{ids: map[string]int{}}
}

// id returns the dense id of a, allocating one on first sight.
func (t *labelTable) id(a string) int {
	if id, ok := t.ids[a]; ok {
		return id
	}
	id := len(t.names)
	t.ids[a] = id
	t.names = append(t.names, a)
	return id
}

// add interns every label of n.
func (t *labelTable) add(n *NFA) {
	for _, a := range n.Alphabet {
		t.id(a)
	}
}

func (t *labelTable) len() int { return len(t.names) }

// compiledNFA is an NFA lowered onto the label table: trans[q][l] is
// the successor list of state q on label l (nil when absent), mask[q][l]
// is the same set word-packed, and final is the final-state bitset.
type compiledNFA struct {
	numStates int
	labels    *labelTable
	trans     [][][]int
	mask      [][]bitset.StateSet
	initial   []int
	final     bitset.StateSet
}

// compileNFA lowers n onto the shared label table. Labels in the table
// but absent from n simply have nil successor rows, which the engines
// treat as a transition into the empty set.
func compileNFA(n *NFA, labels *labelTable) *compiledNFA {
	labels.add(n)
	c := &compiledNFA{
		numStates: n.NumStates,
		labels:    labels,
		trans:     make([][][]int, n.NumStates),
		mask:      make([][]bitset.StateSet, n.NumStates),
		initial:   append([]int(nil), n.Initial...),
		final:     bitset.New(n.NumStates),
	}
	for q := range n.Final {
		if n.Final[q] {
			c.final.Add(q)
		}
	}
	nl := labels.len()
	for q := 0; q < n.NumStates; q++ {
		c.trans[q] = make([][]int, nl)
		c.mask[q] = make([]bitset.StateSet, nl)
		for a, succs := range n.Trans[q] {
			l := labels.id(a)
			c.trans[q][l] = succs
			m := bitset.New(n.NumStates)
			for _, p := range succs {
				m.Add(p)
			}
			c.mask[q][l] = m
		}
	}
	return c
}

// initialSet returns the initial subset-state as a bitset.
func (c *compiledNFA) initialSet() bitset.StateSet {
	s := bitset.New(c.numStates)
	for _, q := range c.initial {
		s.Add(q)
	}
	return s
}

// step writes δ(set, l) into out (which it clears first) using the
// precomputed masks. The result may be empty — the implicit sink of the
// determinized automaton.
func (c *compiledNFA) step(set bitset.StateSet, l int, out bitset.StateSet) {
	out.Clear()
	set.ForEach(func(q int) {
		if m := c.mask[q][l]; m != nil {
			out.UnionWith(m)
		}
	})
}
