// Package chare implements the sequential (chain) regular expressions of
// Section 4.2.2 of "Towards Theory for Real-World Data": expressions of the
// form f1 · f2 · … · fn where every fi is a *simple factor*
// (a1 + … + ak), (a1 + … + ak)?, (a1 + … + ak)* or (a1 + … + ak)+.
//
// Bex et al. discovered that over 92% of the regular expressions in real
// DTDs are of this shape, which motivated the fragment-specific complexity
// analysis of Theorems 4.4 and 4.5 (Martens, Neven, Schwentick). This
// package provides the fragment classification RE(f1,…,fk) and the
// fragment-specific polynomial-time decision procedures, with the general
// automata-theoretic procedures as fallback.
package chare

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/regex"
)

// Modifier is the iteration operator applied to a simple factor.
type Modifier int

// Factor modifiers: (S) exactly once, (S)? at most once, (S)* any number of
// times, (S)+ at least once.
const (
	One Modifier = iota
	Question
	Star
	Plus
)

func (m Modifier) String() string {
	switch m {
	case One:
		return ""
	case Question:
		return "?"
	case Star:
		return "*"
	case Plus:
		return "+"
	}
	return "!"
}

// Unbounded reports whether the modifier allows arbitrarily many symbols.
func (m Modifier) Unbounded() bool { return m == Star || m == Plus }

// Nullable reports whether the factor may match the empty word.
func (m Modifier) Nullable() bool { return m == Question || m == Star }

// Factor is a simple factor: a non-empty disjunction of labels with a
// modifier.
type Factor struct {
	Symbols []string // sorted, unique, non-empty
	Mod     Modifier
}

// Singleton reports whether the disjunction has exactly one label.
func (f Factor) Singleton() bool { return len(f.Symbols) == 1 }

// Contains reports whether f's symbol set contains a.
func (f Factor) Contains(a string) bool {
	i := sort.SearchStrings(f.Symbols, a)
	return i < len(f.Symbols) && f.Symbols[i] == a
}

// ContainsAll reports whether f's symbol set contains all of syms.
func (f Factor) ContainsAll(syms []string) bool {
	for _, a := range syms {
		if !f.Contains(a) {
			return false
		}
	}
	return true
}

func (f Factor) String() string {
	if f.Singleton() && f.Mod == One {
		return f.Symbols[0]
	}
	if f.Singleton() {
		return f.Symbols[0] + f.Mod.String()
	}
	return "(" + strings.Join(f.Symbols, " + ") + ")" + f.Mod.String()
}

// FactorType identifies the eight factor types of the fragment notation
// RE(f1,…,fk) in Section 4.2.2: a, a?, a*, a+ for singleton factors and
// (+a), (+a)?, (+a)*, (+a)+ for factors with disjunction.
type FactorType int

// The eight factor types. TypeA..TypePlus are singletons; the TypeDisj*
// variants have ≥ 2 symbols.
const (
	TypeA FactorType = iota
	TypeAQuestion
	TypeAStar
	TypeAPlus
	TypeDisj
	TypeDisjQuestion
	TypeDisjStar
	TypeDisjPlus
)

var typeNames = map[FactorType]string{
	TypeA:            "a",
	TypeAQuestion:    "a?",
	TypeAStar:        "a*",
	TypeAPlus:        "a+",
	TypeDisj:         "(+a)",
	TypeDisjQuestion: "(+a)?",
	TypeDisjStar:     "(+a)*",
	TypeDisjPlus:     "(+a)+",
}

func (t FactorType) String() string { return typeNames[t] }

// Type returns the factor's type in the RE(…) notation.
func (f Factor) Type() FactorType {
	base := TypeA
	if !f.Singleton() {
		base = TypeDisj
	}
	switch f.Mod {
	case One:
		return base
	case Question:
		return base + 1
	case Star:
		return base + 2
	case Plus:
		return base + 3
	}
	panic("chare: bad modifier")
}

// CHARE is a sequential regular expression: a sequence of simple factors.
// The zero value denotes the expression ε (empty sequence of factors).
type CHARE struct {
	Factors []Factor
}

func (c *CHARE) String() string {
	if len(c.Factors) == 0 {
		return "<eps>"
	}
	parts := make([]string, len(c.Factors))
	for i, f := range c.Factors {
		parts[i] = f.String()
	}
	return strings.Join(parts, " ")
}

// Expr converts the CHARE back to a general regular expression.
func (c *CHARE) Expr() *regex.Expr {
	if len(c.Factors) == 0 {
		return regex.NewEpsilon()
	}
	parts := make([]*regex.Expr, len(c.Factors))
	for i, f := range c.Factors {
		syms := make([]*regex.Expr, len(f.Symbols))
		for j, a := range f.Symbols {
			syms[j] = regex.NewSymbol(a)
		}
		e := regex.NewUnion(syms...)
		switch f.Mod {
		case Question:
			e = regex.NewOpt(e)
		case Star:
			e = regex.NewStar(e)
		case Plus:
			e = regex.NewPlus(e)
		}
		parts[i] = e
	}
	return regex.NewConcat(parts...)
}

// Types returns the sorted set of factor types used by c.
func (c *CHARE) Types() []FactorType {
	seen := map[FactorType]bool{}
	for _, f := range c.Factors {
		seen[f.Type()] = true
	}
	out := make([]FactorType, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FragmentName renders the fragment of c in the paper's notation, e.g.
// "RE(a,a*)".
func (c *CHARE) FragmentName() string {
	ts := c.Types()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "RE(" + strings.Join(parts, ",") + ")"
}

// InFragment reports whether every factor type of c is among allowed.
func (c *CHARE) InFragment(allowed ...FactorType) bool {
	ok := map[FactorType]bool{}
	for _, t := range allowed {
		ok[t] = true
	}
	for _, f := range c.Factors {
		if !ok[f.Type()] {
			return false
		}
	}
	return true
}

// Parse attempts to interpret a general regular expression as a CHARE.
// It returns (nil, false) if e is not sequential. Recognized shapes:
// a concatenation (possibly of length 1) of simple factors, where a simple
// factor is a label, a disjunction of labels, or either of those under one
// of ?, *, +. ε is the empty CHARE. Nested iteration such as (a*)? or
// (a* + b) disqualifies the expression, as do ∅ and ε occurring as proper
// subexpressions.
func Parse(e *regex.Expr) (*CHARE, bool) {
	switch e.Kind {
	case regex.Epsilon:
		return &CHARE{}, true
	case regex.Empty:
		return nil, false
	}
	var factors []Factor
	subs := []*regex.Expr{e}
	if e.Kind == regex.Concat {
		subs = e.Subs
	}
	for _, s := range subs {
		f, ok := parseFactor(s)
		if !ok {
			return nil, false
		}
		factors = append(factors, f)
	}
	return &CHARE{Factors: factors}, true
}

func parseFactor(e *regex.Expr) (Factor, bool) {
	mod := One
	inner := e
	switch e.Kind {
	case regex.Star:
		mod, inner = Star, e.Sub()
	case regex.Plus:
		mod, inner = Plus, e.Sub()
	case regex.Opt:
		mod, inner = Question, e.Sub()
	}
	var syms []string
	switch inner.Kind {
	case regex.Symbol:
		syms = []string{inner.Sym}
	case regex.Union:
		seen := map[string]bool{}
		for _, s := range inner.Subs {
			if s.Kind != regex.Symbol {
				return Factor{}, false
			}
			if !seen[s.Sym] {
				seen[s.Sym] = true
				syms = append(syms, s.Sym)
			}
		}
		sort.Strings(syms)
	default:
		return Factor{}, false
	}
	return Factor{Symbols: syms, Mod: mod}, true
}

// MustParse parses a CHARE from its textual form and panics when the input
// is not sequential; for tests and examples.
func MustParse(s string) *CHARE {
	c, ok := Parse(regex.MustParse(s))
	if !ok {
		panic(fmt.Sprintf("chare: %q is not a sequential regular expression", s))
	}
	return c
}

// IsCHARE reports whether the general expression e is sequential. Bex et
// al.'s corpus statistic (Section 4.2.2): over 92% of regular expressions in
// real DTDs satisfy this test.
func IsCHARE(e *regex.Expr) bool {
	_, ok := Parse(e)
	return ok
}
