package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/automata"
	"repro/internal/obs"
)

// rawBatchResponse mirrors batchResponse with raw per-item payloads so
// tests can byte-compare them against single-endpoint responses.
type rawBatchResponse struct {
	Count  int `json:"count"`
	Failed int `json:"failed"`
	Items  []struct {
		Op       string          `json:"op"`
		Status   int             `json:"status"`
		Response json.RawMessage `json:"response"`
		Error    string          `json:"error"`
	} `json:"items"`
}

// postRaw sends body and returns status code and raw response bytes.
func postRaw(t *testing.T, base, path, contentType, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// normalizeJSON re-renders a JSON object with sorted keys and the
// documented volatile fields (elapsed_ms: wall clock) removed, so two
// responses can be compared byte-for-byte on everything deterministic —
// including the cached flag, which must agree between a batch and the
// equivalent request sequence.
func normalizeJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("normalizing %q: %v", raw, err)
	}
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// batchTestItems is a heterogeneous batch covering every op, a
// duplicate containment (a cache hit in both worlds), and a per-item
// error.
var batchTestItems = []struct{ op, body string }{
	{"containment", `{"engine":"regex","left":"a b","right":"a (b|c)"}`},
	{"membership", `{"expr":"(a|b)* a","word":["b","a"]}`},
	{"validate", `{"kind":"dtd","schema":"<!ELEMENT r (a*)> <!ELEMENT a EMPTY>","docs":["r(a, a)","r(r)"]}`},
	{"infer", `{"algorithm":"sore","words":[["a","b"],["b"]]}`},
	{"containment", `{"engine":"regex","left":"a b","right":"a (b|c)"}`}, // duplicate: cache hit
	{"containment", `{"engine":"nope","left":"a","right":"a"}`},          // per-item 400
}

func batchBody(t *testing.T) string {
	t.Helper()
	items := make([]map[string]any, len(batchTestItems))
	for i, it := range batchTestItems {
		items[i] = map[string]any{"op": it.op, "request": json.RawMessage(it.body)}
	}
	raw, err := json.Marshal(map[string]any{"items": items})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestBatchMatchesSingleRequests is the acceptance check: a batch's
// per-item responses are byte-identical (modulo the volatile elapsed_ms
// field) to the same decisions issued one-per-request against a fresh
// server — including cached flags, error messages, and statuses.
func TestBatchMatchesSingleRequests(t *testing.T) {
	// world A: one request per decision
	_, tsA := newTestServer(t, Config{})
	type single struct {
		status int
		norm   string
		errMsg string
	}
	singles := make([]single, len(batchTestItems))
	for i, it := range batchTestItems {
		code, raw := postRaw(t, tsA.URL, "/v1/"+it.op, "application/json", it.body)
		s := single{status: code}
		if code == http.StatusOK {
			s.norm = normalizeJSON(t, raw)
		} else {
			var e map[string]string
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("item %d: decoding error body %q: %v", i, raw, err)
			}
			s.errMsg = e["error"]
		}
		singles[i] = s
	}

	// world B: the same decisions as one batch against a fresh server
	_, tsB := newTestServer(t, Config{})
	code, raw := postRaw(t, tsB.URL, "/v1/batch", "application/json", batchBody(t))
	if code != http.StatusOK {
		t.Fatalf("batch code=%d body=%s", code, raw)
	}
	var br rawBatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != len(batchTestItems) || len(br.Items) != len(batchTestItems) {
		t.Fatalf("count=%d items=%d, want %d", br.Count, len(br.Items), len(batchTestItems))
	}
	if br.Failed != 1 {
		t.Fatalf("failed=%d, want 1 (the bad-engine item)", br.Failed)
	}
	for i, item := range br.Items {
		if item.Status != singles[i].status {
			t.Errorf("item %d (%s): status %d, single request got %d",
				i, item.Op, item.Status, singles[i].status)
			continue
		}
		if item.Status != http.StatusOK {
			if item.Error != singles[i].errMsg {
				t.Errorf("item %d error %q, single request said %q", i, item.Error, singles[i].errMsg)
			}
			continue
		}
		if got := normalizeJSON(t, item.Response); got != singles[i].norm {
			t.Errorf("item %d (%s) diverges from the single request:\n batch:  %s\n single: %s",
				i, item.Op, got, singles[i].norm)
		}
	}
}

// TestBatchPerItemCache checks that batch items consult the verdict
// cache individually: a duplicated containment item inside one batch is
// a hit for the second occurrence.
func TestBatchPerItemCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, raw := postRaw(t, ts.URL, "/v1/batch", "application/json", batchBody(t))
	if code != 200 {
		t.Fatalf("code=%d", code)
	}
	var br rawBatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	var first, dup containmentResponse
	if err := json.Unmarshal(br.Items[0].Response, &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(br.Items[4].Response, &dup); err != nil {
		t.Fatal(err)
	}
	if first.Cached || !dup.Cached {
		t.Fatalf("cached flags first=%v dup=%v, want false/true", first.Cached, dup.Cached)
	}
	if st := s.CacheStats(); st.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.Hits)
	}
}

// TestBatchExplainPerItemSpans checks the tracing contract: one root
// trace with a batch.item child per item, each carrying the engine spans
// of its decision.
func TestBatchExplainPerItemSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"explain":true,"items":[
		{"op":"containment","request":{"engine":"regex","left":"a","right":"a|b"}},
		{"op":"membership","request":{"expr":"a","word":["a"]}}]}`
	var resp struct {
		rawBatchResponse
		Trace *obs.Node `json:"trace"`
	}
	code, raw := postRaw(t, ts.URL, "/v1/batch", "application/json", body)
	if code != 200 {
		t.Fatalf("code=%d body=%s", code, raw)
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || resp.Trace.Name != "http.batch" {
		t.Fatalf("root trace = %+v", resp.Trace)
	}
	var items []*obs.Node
	for _, c := range resp.Trace.Children {
		if c.Name == "batch.item" {
			items = append(items, c)
		}
	}
	if len(items) != 2 {
		t.Fatalf("batch.item spans = %d, want 2", len(items))
	}
	if items[0].Attrs["op"] != "containment" || items[0].Attrs["index"] != "0" {
		t.Fatalf("item span attrs = %+v", items[0].Attrs)
	}
	if findSpan(items[0], "automata.contains") == nil {
		t.Fatalf("no engine span under batch.item: %+v", items[0])
	}
}

// TestBatchDeadlineMarksRemainingItems: a batch whose deadline expires
// mid-run returns per-item verdicts for the items already decided and
// 504 markers for the rest, instead of losing the whole batch.
func TestBatchDeadlineMarksRemainingItems(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hard := automata.AntichainHardExpr(16)
	adversarial := `{"engine":"regex","left":"` + hard + `","right":"` + hard + `"}`
	body := `{"deadline_ms":150,"items":[
		{"op":"membership","request":{"expr":"a","word":["a"]}},
		{"op":"containment","request":` + adversarial + `},
		{"op":"membership","request":{"expr":"a","word":["a"]}}]}`
	code, raw := postRaw(t, ts.URL, "/v1/batch", "application/json", body)
	if code != 200 {
		t.Fatalf("code=%d body=%s", code, raw)
	}
	var br rawBatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.Items[0].Status != 200 {
		t.Fatalf("item 0 status=%d, want 200 (decided before the deadline)", br.Items[0].Status)
	}
	if br.Items[1].Status != 504 || br.Items[2].Status != 504 {
		t.Fatalf("items 1,2 status=%d,%d, want 504,504", br.Items[1].Status, br.Items[2].Status)
	}
	if br.Failed != 2 {
		t.Fatalf("failed=%d, want 2", br.Failed)
	}
}

// TestBatchConcurrent drives concurrent batches under -race and checks
// per-item integrity of every response.
func TestBatchConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 32})
	body := batchBody(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			var br rawBatchResponse
			if err := json.Unmarshal(raw, &br); err != nil {
				errs <- fmt.Errorf("decoding %q: %w", raw, err)
				return
			}
			if resp.StatusCode != 200 || br.Count != len(batchTestItems) || br.Failed != 1 {
				errs <- fmt.Errorf("code=%d count=%d failed=%d", resp.StatusCode, br.Count, br.Failed)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestBatchBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _ := postRaw(t, ts.URL, "/v1/batch", "application/json", `{"items":[]}`); code != 400 {
		t.Fatalf("empty items: code=%d, want 400", code)
	}
	if code, _ := postRaw(t, ts.URL, "/v1/batch", "application/json", `not json`); code != 400 {
		t.Fatalf("invalid JSON: code=%d, want 400", code)
	}
	// unknown op fails per-item, not per-request
	code, raw := postRaw(t, ts.URL, "/v1/batch", "application/json",
		`{"items":[{"op":"magic","request":{}}]}`)
	if code != 200 {
		t.Fatalf("unknown op: code=%d, want 200 with a per-item error", code)
	}
	var br rawBatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.Items[0].Status != 400 || !strings.Contains(br.Items[0].Error, "unknown op") {
		t.Fatalf("item = %+v", br.Items[0])
	}
}

// TestAnalyzeNDJSONStream is the streaming acceptance check: a raw
// NDJSON query log posted to /v1/analyze produces a report identical to
// the JSON-mode request carrying the same queries.
func TestAnalyzeNDJSONStream(t *testing.T) {
	_, ts := newTestServer(t, Config{AnalyzeWorkers: 4})
	queries := []string{
		"SELECT ?x WHERE { ?x ?p ?y }",
		"SELECT ?x WHERE { ?x ?p ?y }",
		"ASK { ?a ?b ?c . ?c ?d ?e }",
		"this is not sparql",
	}

	jsonBody, _ := json.Marshal(map[string]any{"name": "log", "queries": queries, "workers": 2})
	codeJSON, rawJSON := postRaw(t, ts.URL, "/v1/analyze", "application/json", string(jsonBody))
	if codeJSON != 200 {
		t.Fatalf("json mode: code=%d body=%s", codeJSON, rawJSON)
	}

	ndjson := strings.Join(queries, "\n") + "\n"
	codeND, rawND := postRaw(t, ts.URL, "/v1/analyze?name=log&workers=2",
		"application/x-ndjson", ndjson)
	if codeND != 200 {
		t.Fatalf("ndjson mode: code=%d body=%s", codeND, rawND)
	}

	if normJSON, normND := normalizeJSON(t, rawJSON), normalizeJSON(t, rawND); normJSON != normND {
		t.Fatalf("stream and JSON mode reports diverge:\n json:   %s\n ndjson: %s", normJSON, normND)
	}

	var resp analyzeResponse
	if err := json.Unmarshal(rawND, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Queries != 4 || resp.Report == nil || resp.Report.Valid != 3 || resp.Report.Unique != 2 {
		t.Fatalf("ndjson report = %+v", resp)
	}
	if resp.Workers != 2 {
		t.Fatalf("workers = %d, want 2 from the query string", resp.Workers)
	}
}

// TestAnalyzeNDJSONSkipsBlankLinesAndTrailingNewline pins textio
// semantics on the wire: blank lines don't count as queries.
func TestAnalyzeNDJSONSkipsBlankLines(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := "\nASK { ?a ?b ?c }\n\n\nSELECT ?x WHERE { ?x ?p ?y }\n\n"
	code, raw := postRaw(t, ts.URL, "/v1/analyze", "text/plain", body)
	if code != 200 {
		t.Fatalf("code=%d body=%s", code, raw)
	}
	var resp analyzeResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Queries != 2 || resp.Report.Total != 2 {
		t.Fatalf("queries=%d total=%d, want 2/2", resp.Queries, resp.Report.Total)
	}
}

// TestAnalyzeNDJSONEnvelopeInQuery checks the stream-mode envelope: the
// deadline moves to the query string and is honored.
func TestAnalyzeNDJSONEnvelopeInQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// a big generated corpus that cannot be analyzed in 1ms but stays
	// under the request-size cap
	var sb strings.Builder
	for i := 0; i < 60000; i++ {
		fmt.Fprintf(&sb, "SELECT ?v%d WHERE { ?v%d ?p ?o . ?o ?q ?r OPTIONAL { ?r ?s ?v%d } }\n", i, i, i)
	}
	code, raw := postRaw(t, ts.URL, "/v1/analyze?deadline_ms=1", "application/x-ndjson", sb.String())
	if code != 504 {
		t.Fatalf("code=%d body=%.120s, want 504 from the query-string deadline", code, raw)
	}
	if code, _ := postRaw(t, ts.URL, "/v1/analyze?deadline_ms=30000",
		"application/x-ndjson", "ASK { ?a ?b ?c }\n"); code != 200 {
		t.Fatalf("generous stream deadline: code=%d, want 200", code)
	}
}
