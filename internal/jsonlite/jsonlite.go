// Package jsonlite converts JSON documents into the node-labeled tree
// abstraction of Section 3 (Figure 1b/1c): object keys become labeled
// child nodes and array elements become children of their array's node.
// As Example 3.1 notes, there is no single "correct" way to model JSON as
// node-labeled trees; this package takes the same choices as the paper's
// figure — data values are projected away, and anonymous array elements
// get a configurable item label.
package jsonlite

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/tree"
)

// Options configures the JSON→tree mapping.
type Options struct {
	// RootLabel labels the document root (Figure 1 uses the top-level key
	// "persons" under an implicit root; default "$").
	RootLabel string
	// ItemLabel labels anonymous array elements (default "item").
	ItemLabel string
	// KeepValues adds leaf nodes for scalar values when true; Figure 1c
	// omits them ("one could also add nodes that are labeled with the data
	// values"), so the default is false.
	KeepValues bool
}

func (o Options) withDefaults() Options {
	if o.RootLabel == "" {
		o.RootLabel = "$"
	}
	if o.ItemLabel == "" {
		o.ItemLabel = "item"
	}
	return o
}

// Parse converts a JSON document to a labeled tree. Object key order is
// preserved (JSON objects are unordered in principle — Section 3 notes the
// mix of ordered arrays and unordered objects "is not crucial for this
// paper" — but preserving input order keeps the mapping deterministic).
func Parse(doc string, opts Options) (*tree.Node, error) {
	opts = opts.withDefaults()
	dec := json.NewDecoder(strings.NewReader(doc))
	dec.UseNumber()
	root := tree.New(opts.RootLabel)
	if err := decodeValue(dec, root, opts); err != nil {
		return nil, err
	}
	// trailing garbage?
	if dec.More() {
		return nil, fmt.Errorf("jsonlite: trailing content after document")
	}
	return root, nil
}

// MustParse panics on error; for tests and examples.
func MustParse(doc string, opts Options) *tree.Node {
	t, err := Parse(doc, opts)
	if err != nil {
		panic(err)
	}
	return t
}

// decodeValue decodes the next JSON value, attaching its structure to
// parent.
func decodeValue(dec *json.Decoder, parent *tree.Node, opts Options) error {
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("jsonlite: %v", err)
	}
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return fmt.Errorf("jsonlite: %v", err)
				}
				key, ok := keyTok.(string)
				if !ok {
					return fmt.Errorf("jsonlite: non-string object key %v", keyTok)
				}
				child := tree.New(key)
				parent.Add(child)
				if err := decodeValue(dec, child, opts); err != nil {
					return err
				}
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return fmt.Errorf("jsonlite: %v", err)
			}
		case '[':
			for dec.More() {
				child := tree.New(opts.ItemLabel)
				parent.Add(child)
				if err := decodeValue(dec, child, opts); err != nil {
					return err
				}
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return fmt.Errorf("jsonlite: %v", err)
			}
		default:
			return fmt.Errorf("jsonlite: unexpected delimiter %v", t)
		}
	default:
		// scalar: string, json.Number, bool, nil
		if opts.KeepValues {
			parent.Add(tree.New(fmt.Sprintf("%v", tok)))
		}
	}
	return nil
}

// Figure1JSON is the JSON document of Figure 1b.
const Figure1JSON = `{
  "persons": [
    { "name": "Aretha",
      "birthplace": { "city": "Memphis", "state": "Tennessee", "country": "United States" } },
    { "name": "Johann Sebastian",
      "birthplace": { "city": "Eisenach", "state": "Thuringia" } }
  ]
}`
