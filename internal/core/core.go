// Package core is the system of Section 11 of "Towards Theory for
// Real-World Data": a SHARQL-style corpus analyzer that subjects every
// query of a log to a battery of analytical tests and aggregates the
// results into the paper's tables — Table 2 (Total/Valid/Unique), Figure 3
// (triple-count distribution), Table 3 (feature usage), Tables 4/5
// (operator-set fragments), Table 6 (free-connex acyclicity and hypertree
// width), Table 7 (canonical-graph shapes) and Table 8 (property-path
// types), plus the well-designedness and tractability statistics of
// Sections 9.4 and 9.6.
package core

import (
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/propertypath"
	"repro/internal/sparql"
	"repro/internal/sparqlalg"
)

// Counter2 is a (Valid, Unique) pair of counts: every per-query statistic
// is reported for the multiset of valid queries and for the deduplicated
// set, matching the X (Y) convention of Section 9.
type Counter2 struct {
	V, U int
}

func (c *Counter2) add(unique bool) {
	c.V++
	if unique {
		c.U++
	}
}

// ShapeLevel is a row of the cumulative shape analysis of Table 7.
type ShapeLevel int

// Table 7 rows, in cumulative order.
const (
	ShapeNoEdge ShapeLevel = iota
	ShapeOneEdge
	ShapeChain
	ShapeStar
	ShapeTree
	ShapeForest
	ShapeTW2
	ShapeTW3
	ShapeBeyond
	numShapeLevels
)

var shapeNames = [numShapeLevels]string{
	"no edge", "<=1 edge", "chain", "star", "tree", "forest", "tw<=2", "tw<=3", "beyond",
}

// String returns the paper's row label.
func (s ShapeLevel) String() string { return shapeNames[s] }

// HypertreeStats is one half of Table 6 (for CQ or CQ+F).
type HypertreeStats struct {
	FCA   Counter2
	Htw1  Counter2
	Htw2  Counter2
	Htw3  Counter2
	Total Counter2
}

// SourceReport aggregates every analysis for one log source.
type SourceReport struct {
	Name     string
	Wikidata bool
	Robotic  bool

	// Table 2
	Total, Valid, Unique int

	// Figure 3: buckets 0..10 and 11+ (index 11), over Select/Ask/
	// Construct queries only (Describe is excluded, Section 9.3).
	TripleBuckets [12]Counter2
	CountedV      int // queries contributing to the buckets
	CountedU      int
	MaxTriples    int

	// Table 3
	Features map[sparql.Feature]*Counter2

	// Tables 4/5: operator-set name → count ("none", "And", "Filter",
	// "And, Filter", "2RPQ", …, "beyond").
	OperatorSets map[string]*Counter2

	// Section 9.4: well-designedness among And/Filter/Optional queries.
	AFO, WellDesigned Counter2
	// Section 9.1: unions of well-designed patterns / well-behaved queries
	// (Picalausa & Vansummeren: 83.8% (75.7%) of all patterns).
	WellBehaved Counter2

	// Table 6
	CQ, CQF HypertreeStats

	// Section 9.5: filter classes among CQ+F queries.
	SafeFilterOnly, SimpleFilterOnly Counter2

	// Table 7: cumulative shape levels for graph-CQ+F queries, with and
	// without constants. The counters are *exact* levels; the renderer
	// accumulates.
	GraphCQF                Counter2
	ShapeWith, ShapeWithout [numShapeLevels]Counter2

	// Table 8 and Section 9.6 (per property path, not per query).
	PPRows    map[propertypath.Table8Row]*Counter2
	PPTotal   Counter2
	PPQueries Counter2 // queries using ≥ 1 property path
	NonSTE    Counter2 // paths outside simple transitive expressions
	NonCtract Counter2
	NonTtract Counter2
}

// NewSourceReport returns an empty report.
func NewSourceReport(name string) *SourceReport {
	return &SourceReport{
		Name:         name,
		Features:     map[sparql.Feature]*Counter2{},
		OperatorSets: map[string]*Counter2{},
		PPRows:       map[propertypath.Table8Row]*Counter2{},
	}
}

// Analyzer ingests raw query strings for one source. An Analyzer may hold
// the full stream of a source or just one shard of it: the seen map keeps,
// per canonical form first observed here, the raw string of its first
// occurrence, which is exactly what MergeShards needs to resolve
// cross-shard duplicates.
type Analyzer struct {
	Report *SourceReport
	seen   map[string]string
	// ppCache memoizes the property-path classifier stack keyed on the
	// path's canonical form: duplicate-heavy robotic logs hit the same
	// paths millions of times.
	ppCache map[string]ppClass
}

// ppClass is the memoized result of the Table 8 / Section 9.6 classifiers
// for one property path.
type ppClass struct {
	row              propertypath.Table8Row
	simpleTransitive bool
	ctract           bool
	ttract           bool
}

// NewAnalyzer returns an analyzer for one source (or one shard of one).
func NewAnalyzer(name string) *Analyzer {
	return &Analyzer{
		Report:  NewSourceReport(name),
		seen:    map[string]string{},
		ppCache: map[string]ppClass{},
	}
}

// analyzeHook, when non-nil, runs before the analysis battery of every
// valid query; tests use it to inject panics into the battery.
var analyzeHook func(*sparql.Query)

// parseHook, when non-nil, runs before parsing inside parseSafe; tests
// use it to inject parser panics and assert they are absorbed.
var parseHook func(string)

// Ingest processes one raw query string through the full battery. It is
// panic-safe at the per-query boundary: a pathological input that panics
// the parser or the analysis battery is counted as invalid instead of
// killing the run (or, in the parallel pipeline, a whole worker).
func (a *Analyzer) Ingest(raw string) {
	r := a.Report
	r.Total++
	q, canon, ok := parseSafe(raw)
	if !ok {
		return
	}
	r.Valid++
	_, dup := a.seen[canon]
	unique := !dup
	if unique {
		a.seen[canon] = raw
		r.Unique++
	}
	if !a.analyzeSafe(q, unique) {
		// The battery panicked mid-query: count the query as invalid and
		// roll back the dedup state, so a later occurrence of the same
		// canonical form is handled identically in sequential and sharded
		// runs.
		r.Valid--
		if unique {
			delete(a.seen, canon)
			r.Unique--
		}
	}
}

// parseSafe parses and canonicalizes one raw query, converting parser
// panics into parse failures.
func parseSafe(raw string) (q *sparql.Query, canon string, ok bool) {
	defer func() {
		if recover() != nil {
			q, canon, ok = nil, "", false
		}
	}()
	if parseHook != nil {
		parseHook(raw)
	}
	parsed, err := sparql.Parse(raw)
	if err != nil {
		return nil, "", false
	}
	return parsed, parsed.Canonical(), true
}

// analyzeSafe runs the battery, reporting whether it completed without
// panicking.
func (a *Analyzer) analyzeSafe(q *sparql.Query, unique bool) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	if analyzeHook != nil {
		analyzeHook(q)
	}
	a.analyze(q, unique)
	return true
}

// classifyPP runs the property-path classifier stack through the
// per-analyzer memoization cache.
func (a *Analyzer) classifyPP(pp *propertypath.Path) ppClass {
	key := pp.String()
	if c, hit := a.ppCache[key]; hit {
		return c
	}
	c := ppClass{
		row:              propertypath.Classify(pp),
		simpleTransitive: propertypath.IsSimpleTransitive(pp),
		ctract:           propertypath.InCtract(pp),
		ttract:           propertypath.InTtractApprox(pp),
	}
	a.ppCache[key] = c
	return c
}

// analyze runs the per-query tests, bumping the V counter always and the
// U counter for the first occurrence.
func (a *Analyzer) analyze(q *sparql.Query, unique bool) {
	r := a.Report

	// Figure 3
	if q.Type != sparql.Describe {
		n := q.TripleCount()
		if n > r.MaxTriples {
			r.MaxTriples = n
		}
		b := n
		if b > 11 {
			b = 11
		}
		r.TripleBuckets[b].add(unique)
		r.CountedV++
		if unique {
			r.CountedU++
		}
	}

	// Table 3
	for f := range q.Features() {
		c := r.Features[f]
		if c == nil {
			c = &Counter2{}
			r.Features[f] = c
		}
		c.add(unique)
	}

	// Tables 4/5
	ops := q.Operators()
	oc := r.OperatorSets[ops.Name()]
	if oc == nil {
		oc = &Counter2{}
		r.OperatorSets[ops.Name()] = oc
	}
	oc.add(unique)

	// Section 9.4
	if sparqlalg.UsesOnlyAFO(q) {
		r.AFO.add(unique)
		if sparqlalg.IsWellDesigned(q) {
			r.WellDesigned.add(unique)
		}
	}
	// Section 9.1
	if sparqlalg.IsWellBehaved(q) {
		r.WellBehaved.add(unique)
	}

	// Table 6 + Section 9.5 + Table 7 for the conjunctive fragments
	if q.IsCQF() {
		a.analyzeConjunctive(q, unique)
	}

	// Table 8 / Section 9.6: property paths
	pps := q.PropertyPaths()
	if len(pps) > 0 {
		r.PPQueries.add(unique)
	}
	for _, pp := range pps {
		r.PPTotal.add(unique)
		cls := a.classifyPP(pp)
		c := r.PPRows[cls.row]
		if c == nil {
			c = &Counter2{}
			r.PPRows[cls.row] = c
		}
		c.add(unique)
		if !cls.simpleTransitive {
			r.NonSTE.add(unique)
		}
		if !cls.ctract {
			r.NonCtract.add(unique)
		}
		if !cls.ttract {
			r.NonTtract.add(unique)
		}
	}
}

// analyzeConjunctive handles the CQ/CQ+F analyses.
func (a *Analyzer) analyzeConjunctive(q *sparql.Query, unique bool) {
	r := a.Report
	isCQ := q.IsCQ()

	// gather triple patterns and filters
	var triples []*sparql.Pattern
	var filters []*sparql.Expr
	q.Walk(func(p *sparql.Pattern) {
		switch p.Kind {
		case sparql.PTriple:
			triples = append(triples, p)
		case sparql.PFilter:
			if p.Expr != nil {
				filters = append(filters, p.Expr)
			}
		}
	})

	// canonical hypergraph (Section 9.5): triple hyperedges over var-like
	// terms, plus one hyperedge per filter over its variables
	h := hypergraph.New()
	varSet := map[string]bool{}
	for _, t := range triples {
		var vs []string
		for _, term := range []sparql.Term{t.S, t.P, t.O} {
			if term.IsVarLike() {
				vs = append(vs, "?"+term.Value)
				varSet["?"+term.Value] = true
			}
		}
		h.AddEdge(vs...)
	}
	allSafe, allSimple := true, true
	for _, f := range filters {
		vs := f.Vars()
		pref := make([]string, len(vs))
		for i, v := range vs {
			pref[i] = "?" + v
			varSet["?"+v] = true
		}
		h.AddEdge(pref...)
		if !f.IsSafeFilter() {
			allSafe = false
		}
		if !f.IsSimpleFilter() {
			allSimple = false
		}
	}
	// "only And and safe/simple filters" (Section 9.5); queries without
	// filters qualify vacuously.
	if allSafe {
		r.SafeFilterOnly.add(unique)
	}
	if allSimple {
		r.SimpleFilterOnly.add(unique)
	}

	// free variables: projection for SELECT, all variables for * and
	// non-SELECT forms
	var free []string
	if q.Type == sparql.Select && !q.Star {
		for _, it := range q.Items {
			if varSet["?"+it.Var] {
				free = append(free, "?"+it.Var)
			}
		}
	} else {
		for v := range varSet {
			free = append(free, v)
		}
	}

	fca := h.IsFreeConnexAcyclic(free)
	acyclic := h.IsAcyclic()
	htw1 := acyclic
	htw2 := htw1 || h.HypertreeWidthAtMost(2)
	htw3 := htw2 || h.HypertreeWidthAtMost(3)

	apply := func(st *HypertreeStats) {
		st.Total.add(unique)
		if fca {
			st.FCA.add(unique)
		}
		if htw1 {
			st.Htw1.add(unique)
		}
		if htw2 {
			st.Htw2.add(unique)
		}
		if htw3 {
			st.Htw3.add(unique)
		}
	}
	apply(&r.CQF)
	if isCQ {
		apply(&r.CQ)
	}

	// Table 7: graph-CQ+F suitability
	if !isGraphPattern(triples) || !allSimple {
		return
	}
	r.GraphCQF.add(unique)
	lvlWith := shapeLevel(canonicalGraph(triples, filters, true))
	lvlWithout := shapeLevel(canonicalGraph(triples, filters, false))
	r.ShapeWith[lvlWith].add(unique)
	r.ShapeWithout[lvlWithout].add(unique)
}

// isGraphPattern implements the Section 9.5 condition: every triple's
// predicate is an IRI, or a variable not occurring in any other triple
// pattern.
func isGraphPattern(triples []*sparql.Pattern) bool {
	occurrences := map[string]int{}
	for _, t := range triples {
		for _, term := range []sparql.Term{t.S, t.P, t.O} {
			if term.IsVarLike() {
				occurrences[term.Value]++
			}
		}
	}
	for _, t := range triples {
		if t.P.Kind == sparql.TermIRI {
			continue
		}
		if t.P.IsVarLike() && occurrences[t.P.Value] == 1 {
			continue
		}
		return false
	}
	return true
}

// canonicalGraph builds the Table 7 graph: nodes are subjects/objects
// (variables, blanks, and — when withConstants — IRIs and literals);
// edges come from triples and from binary filters.
func canonicalGraph(triples []*sparql.Pattern, filters []*sparql.Expr, withConstants bool) *graph.Graph {
	id := map[string]int{}
	nodeOf := func(t sparql.Term) (int, bool) {
		if t.IsVarLike() {
			k := "?" + t.Value
			if n, ok := id[k]; ok {
				return n, true
			}
			id[k] = len(id)
			return id[k], true
		}
		if !withConstants {
			return 0, false
		}
		k := "c:" + t.Value
		if n, ok := id[k]; ok {
			return n, true
		}
		id[k] = len(id)
		return id[k], true
	}
	type edge struct{ a, b int }
	var edges []edge
	for _, t := range triples {
		a, okA := nodeOf(t.S)
		b, okB := nodeOf(t.O)
		if okA && okB && a != b {
			edges = append(edges, edge{a, b})
		}
	}
	for _, f := range filters {
		vs := f.Vars()
		if len(vs) == 2 {
			a, _ := nodeOf(sparql.Term{Kind: sparql.TermVar, Value: vs[0]})
			b, _ := nodeOf(sparql.Term{Kind: sparql.TermVar, Value: vs[1]})
			if a != b {
				edges = append(edges, edge{a, b})
			}
		}
	}
	g := graph.New(len(id))
	for _, e := range edges {
		g.AddEdge(e.a, e.b)
	}
	return g
}

// shapeLevel classifies the canonical graph into its exact Table 7 level.
// Isolated vertices (e.g. variables whose only edges went to deleted
// constant nodes) are ignored for the connected shapes, matching the
// cumulative reading of the table.
func shapeLevel(g *graph.Graph) ShapeLevel {
	if g.HasNoEdge() {
		return ShapeNoEdge
	}
	if g.HasAtMostOneEdge() {
		return ShapeOneEdge
	}
	// drop isolated vertices
	var keep []int
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 0 {
			keep = append(keep, v)
		}
	}
	core := g.InducedSubgraph(keep)
	switch {
	case core.IsChain():
		return ShapeChain
	case core.IsStar():
		return ShapeStar
	case core.IsTree():
		return ShapeTree
	case core.IsForest():
		return ShapeForest
	}
	if ok, decided := graph.TreewidthAtMost(core, 2); decided && ok {
		return ShapeTW2
	} else if !decided {
		if _, ub := graph.Bounds(core); ub <= 2 {
			return ShapeTW2
		}
	}
	if ok, decided := graph.TreewidthAtMost(core, 3); decided && ok {
		return ShapeTW3
	} else if !decided {
		if _, ub := graph.Bounds(core); ub <= 3 {
			return ShapeTW3
		}
	}
	return ShapeBeyond
}
