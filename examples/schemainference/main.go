// Schema inference (Section 4.2.3): learn concise regular expressions and
// whole DTDs from positive examples — 2T-INF + RWR for single-occurrence
// expressions, CRX for chain expressions, occurrence marking for k-OREs —
// and validate the round trip.
package main

import (
	"fmt"
	"strings"

	"repro/internal/determinism"
	"repro/internal/dtd"
	"repro/internal/inference"
	"repro/internal/kore"
	"repro/internal/regex"
	"repro/internal/tree"
	"repro/internal/xmllite"
)

func words(ws ...string) inference.Sample {
	var s inference.Sample
	for _, w := range ws {
		s = append(s, strings.Fields(w))
	}
	return s
}

func main() {
	// --- word-level inference -------------------------------------------
	sample := words("a b c", "a c", "a b b c")
	sore := inference.InferSORE(sample)
	chareE := inference.InferCHARE(sample)
	fmt.Printf("sample {abc, ac, abbc}:\n  SORE  (RWR):  %s  (SORE: %v, deterministic: %v)\n",
		sore, kore.IsSORE(sore), determinism.IsDeterministic(sore))
	fmt.Printf("  CHARE (CRX):  %s\n", chareE)

	// a language needing k = 2 occurrences
	s2 := words("a b a")
	fmt.Printf("sample {aba}: SORE %s vs 2-ORE %s\n",
		inference.InferSORE(s2), inference.InferKORE(s2, 2))

	// characteristic samples (Theorem 4.9 for k = 1)
	target := "city state country?"
	cs := inference.CharacteristicSample(regex.MustParse(target))
	fmt.Printf("characteristic sample of %q: %d words; recovered: %s\n",
		target, len(cs), inference.InferSORE(cs))
	fmt.Println()

	// --- DTD inference from documents ------------------------------------
	docs := []string{
		xmllite.Figure1XML,
		`<persons><person pers_id="3"><name>Miriam</name>
		   <birthplace><city>Port of Spain</city><state>San Juan</state><country>TT</country></birthplace>
		 </person></persons>`,
		`<persons/>`,
	}
	var trees []*tree.Node
	for _, doc := range docs {
		el, err := xmllite.Parse(doc)
		if err != nil {
			fmt.Println("skipping malformed document:", err)
			continue
		}
		trees = append(trees, el.AsTree())
	}
	learned := dtd.Infer(trees, inference.InferSORE)
	fmt.Print("DTD inferred from the documents:\n", learned)
	for i, t := range trees {
		fmt.Printf("document %d re-validates: %v\n", i+1, learned.Validate(t) == nil)
	}
	fmt.Println("recursive:", learned.IsRecursive())
	if depth, ok := learned.MaxDepth(); ok {
		fmt.Println("max allowed document depth:", depth)
	}
}
