package dtd

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/tree"
)

// Event is a SAX-style streaming event: an element opening or closing.
type Event struct {
	Open  bool
	Label string // empty for close events
}

// Events serializes a tree into its streaming event sequence (the document
// order of its tags).
func Events(t *tree.Node) []Event {
	var out []Event
	var rec func(n *tree.Node)
	rec = func(n *tree.Node) {
		out = append(out, Event{Open: true, Label: n.Label})
		for _, c := range n.Children {
			rec(c)
		}
		out = append(out, Event{Open: false})
	}
	rec(t)
	return out
}

// StreamValidator validates a stream of open/close events against a DTD.
// Its memory consumption is proportional to the current element depth; for
// non-recursive DTDs the depth — and hence the memory — is bounded by a
// constant depending only on the DTD, which is the constant-memory
// streaming validation regime of Segoufin & Vianu discussed in Section 4.1.
// (For recursive DTDs the stack can grow with the document.)
type StreamValidator struct {
	d     *DTD
	dfas  map[string]*automata.DFA
	stack []frame
	// HighWater is the maximum stack depth observed — the memory measure
	// reported by the streaming experiments.
	HighWater int
	started   bool
	done      bool
}

type frame struct {
	label string
	state int
}

// NewStreamValidator returns a validator for d.
func NewStreamValidator(d *DTD) *StreamValidator {
	return &StreamValidator{d: d, dfas: map[string]*automata.DFA{}}
}

func (v *StreamValidator) dfa(label string) *automata.DFA {
	if dd, ok := v.dfas[label]; ok {
		return dd
	}
	dd := automata.Determinize(automata.Glushkov(v.d.Rule(label)))
	v.dfas[label] = dd
	return dd
}

// Feed consumes one event; a non-nil error means the stream is already
// known to be invalid (validation may stop).
func (v *StreamValidator) Feed(ev Event) error {
	if v.done {
		return fmt.Errorf("dtd: event after document end")
	}
	if ev.Open {
		if !v.started {
			v.started = true
			if !v.d.Start[ev.Label] {
				return fmt.Errorf("dtd: root label %q not in start labels", ev.Label)
			}
		} else {
			if len(v.stack) == 0 {
				return fmt.Errorf("dtd: second root element %q", ev.Label)
			}
			top := &v.stack[len(v.stack)-1]
			next, ok := v.dfa(top.label).Trans[top.state][ev.Label]
			if !ok {
				return fmt.Errorf("dtd: child %q not allowed under %q here", ev.Label, top.label)
			}
			top.state = next
		}
		v.stack = append(v.stack, frame{label: ev.Label})
		if len(v.stack) > v.HighWater {
			v.HighWater = len(v.stack)
		}
		return nil
	}
	if len(v.stack) == 0 {
		return fmt.Errorf("dtd: close event without open element")
	}
	top := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	if !v.dfa(top.label).Final[top.state] {
		return fmt.Errorf("dtd: element %q closed with incomplete content", top.label)
	}
	if len(v.stack) == 0 {
		v.done = true
	}
	return nil
}

// Close finishes validation; it errs when the document never completed.
func (v *StreamValidator) Close() error {
	if !v.done {
		return fmt.Errorf("dtd: incomplete document")
	}
	return nil
}

// ValidateStream validates a full event sequence.
func (d *DTD) ValidateStream(events []Event) error {
	v := NewStreamValidator(d)
	for _, ev := range events {
		if err := v.Feed(ev); err != nil {
			return err
		}
	}
	return v.Close()
}
