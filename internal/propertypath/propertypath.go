// Package propertypath implements SPARQL 1.1 property paths — SPARQL's
// regular path queries (Section 9.2 of "Towards Theory for Real-World
// Data") — together with the analyses of Section 9.6: the *type*
// canonicalization behind Table 8, the simple-transitive-expression test of
// Martens & Trautner (covering over 99% of real property paths), the
// tractability classes C_tract (Bagan, Bonifati & Groz; simple-path
// semantics) and T_tract (trail semantics), and evaluation under regular,
// simple-path and trail semantics.
package propertypath

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates property-path AST nodes.
type Kind int

// Property-path node kinds. SPARQL syntax: iri, ^p (inverse), p1/p2
// (sequence), p1|p2 (alternative), p*, p+, p?, and !(...) negated property
// sets.
const (
	IRI Kind = iota
	Inverse
	Seq
	Alt
	Star
	Plus
	Opt
	NegSet // !(a|^b|…): any edge whose label is not listed
)

// Path is a property-path AST node.
type Path struct {
	Kind Kind
	IRI  string
	Subs []*Path
	// Neg holds the forbidden labels of a NegSet; NegInv the forbidden
	// inverse labels.
	Neg    []string
	NegInv []string
}

// Sub returns the single child of a unary node.
func (p *Path) Sub() *Path { return p.Subs[0] }

func (p *Path) String() string {
	return p.render(0)
}

// precedence: Alt < Seq < unary.
func (p *Path) render(prec int) string {
	switch p.Kind {
	case IRI:
		return p.IRI
	case Inverse:
		return "^" + p.Sub().render(3)
	case Seq:
		parts := make([]string, len(p.Subs))
		for i, s := range p.Subs {
			parts[i] = s.render(2)
		}
		out := strings.Join(parts, "/")
		if prec > 1 {
			return "(" + out + ")"
		}
		return out
	case Alt:
		parts := make([]string, len(p.Subs))
		for i, s := range p.Subs {
			parts[i] = s.render(1)
		}
		out := strings.Join(parts, "|")
		if prec > 0 {
			return "(" + out + ")"
		}
		return out
	case Star:
		return p.Sub().render(3) + "*"
	case Plus:
		return p.Sub().render(3) + "+"
	case Opt:
		return p.Sub().render(3) + "?"
	case NegSet:
		var parts []string
		parts = append(parts, p.Neg...)
		for _, x := range p.NegInv {
			parts = append(parts, "^"+x)
		}
		return "!(" + strings.Join(parts, "|") + ")"
	}
	return "?"
}

// Parse parses a SPARQL property path. IRIs are prefixed names
// (wdt:P31), full IRIs in angle brackets, or the keyword a (rdf:type).
func Parse(s string) (*Path, error) {
	p := &ppParser{src: s}
	path, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("propertypath: trailing input %q in %q", p.src[p.pos:], p.src)
	}
	return path, nil
}

// MustParse panics on error.
func MustParse(s string) *Path {
	path, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return path
}

type ppParser struct {
	src string
	pos int
}

func (p *ppParser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *ppParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *ppParser) parseAlt() (*Path, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	subs := []*Path{first}
	for {
		p.skip()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &Path{Kind: Alt, Subs: subs}, nil
}

func (p *ppParser) parseSeq() (*Path, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	subs := []*Path{first}
	for {
		p.skip()
		if p.peek() != '/' {
			break
		}
		p.pos++
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &Path{Kind: Seq, Subs: subs}, nil
}

func (p *ppParser) parseUnary() (*Path, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			atom = &Path{Kind: Star, Subs: []*Path{atom}}
		case '+':
			p.pos++
			atom = &Path{Kind: Plus, Subs: []*Path{atom}}
		case '?':
			p.pos++
			atom = &Path{Kind: Opt, Subs: []*Path{atom}}
		default:
			return atom, nil
		}
	}
}

func (p *ppParser) parseAtom() (*Path, error) {
	p.skip()
	switch {
	case p.peek() == '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ')' {
			return nil, fmt.Errorf("propertypath: missing ')' in %q", p.src)
		}
		p.pos++
		return inner, nil
	case p.peek() == '^':
		p.pos++
		inner, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &Path{Kind: Inverse, Subs: []*Path{inner}}, nil
	case p.peek() == '!':
		p.pos++
		return p.parseNegSet()
	default:
		iri, err := p.parseIRI()
		if err != nil {
			return nil, err
		}
		return &Path{Kind: IRI, IRI: iri}, nil
	}
}

func (p *ppParser) parseNegSet() (*Path, error) {
	p.skip()
	out := &Path{Kind: NegSet}
	addOne := func() error {
		p.skip()
		inv := false
		if p.peek() == '^' {
			inv = true
			p.pos++
		}
		iri, err := p.parseIRI()
		if err != nil {
			return err
		}
		if inv {
			out.NegInv = append(out.NegInv, iri)
		} else {
			out.Neg = append(out.Neg, iri)
		}
		return nil
	}
	if p.peek() == '(' {
		p.pos++
		for {
			if err := addOne(); err != nil {
				return nil, err
			}
			p.skip()
			if p.peek() == '|' {
				p.pos++
				continue
			}
			if p.peek() == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("propertypath: malformed negated property set in %q", p.src)
		}
		sort.Strings(out.Neg)
		sort.Strings(out.NegInv)
		return out, nil
	}
	if err := addOne(); err != nil {
		return nil, err
	}
	return out, nil
}

func isIRIByte(b byte) bool {
	return b == ':' || b == '_' || b == '-' || b == '.' ||
		(b >= '0' && b <= '9') || (b >= 'A' && b <= 'Z') || (b >= 'a' && b <= 'z')
}

func (p *ppParser) parseIRI() (string, error) {
	p.skip()
	if p.peek() == '<' {
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return "", fmt.Errorf("propertypath: unterminated IRI in %q", p.src)
		}
		iri := p.src[p.pos : p.pos+end+1]
		p.pos += end + 1
		return iri, nil
	}
	start := p.pos
	for p.pos < len(p.src) && isIRIByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("propertypath: expected IRI at offset %d in %q", p.pos, p.src)
	}
	return p.src[start:p.pos], nil
}

// Walk visits the path tree in preorder.
func (p *Path) Walk(f func(*Path)) {
	f(p)
	for _, s := range p.Subs {
		s.Walk(f)
	}
}

// IsTransitive reports whether the path can match arbitrarily long paths
// (it uses * or +) — the top/bottom split of Table 8.
func (p *Path) IsTransitive() bool {
	found := false
	p.Walk(func(x *Path) {
		if x.Kind == Star || x.Kind == Plus {
			found = true
		}
	})
	return found
}
