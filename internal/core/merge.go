package core

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// forEachCounter pairs every Counter2 of dst with the corresponding
// counter of src and applies f, materializing dst map entries for keys
// that only src has. It is the single field walk behind the group-level
// Merge and the shard-level dedup correction, so a report field added in
// one place is added everywhere.
func forEachCounter(dst *SourceReport, src *SourceReport, f func(dst *Counter2, src Counter2)) {
	for i := range src.TripleBuckets {
		f(&dst.TripleBuckets[i], src.TripleBuckets[i])
	}
	pairMap(dst.Features, src.Features, f)
	pairMap(dst.OperatorSets, src.OperatorSets, f)
	f(&dst.AFO, src.AFO)
	f(&dst.WellDesigned, src.WellDesigned)
	f(&dst.WellBehaved, src.WellBehaved)
	ht := func(d, s *HypertreeStats) {
		f(&d.FCA, s.FCA)
		f(&d.Htw1, s.Htw1)
		f(&d.Htw2, s.Htw2)
		f(&d.Htw3, s.Htw3)
		f(&d.Total, s.Total)
	}
	ht(&dst.CQ, &src.CQ)
	ht(&dst.CQF, &src.CQF)
	f(&dst.SafeFilterOnly, src.SafeFilterOnly)
	f(&dst.SimpleFilterOnly, src.SimpleFilterOnly)
	f(&dst.GraphCQF, src.GraphCQF)
	for i := range src.ShapeWith {
		f(&dst.ShapeWith[i], src.ShapeWith[i])
		f(&dst.ShapeWithout[i], src.ShapeWithout[i])
	}
	pairMap(dst.PPRows, src.PPRows, f)
	f(&dst.PPTotal, src.PPTotal)
	f(&dst.PPQueries, src.PPQueries)
	f(&dst.NonSTE, src.NonSTE)
	f(&dst.NonCtract, src.NonCtract)
	f(&dst.NonTtract, src.NonTtract)
}

// pairMap applies f to the dst/src counters of every key present in src,
// materializing missing dst entries.
func pairMap[K comparable](dm, sm map[K]*Counter2, f func(dst *Counter2, src Counter2)) {
	for k, c := range sm {
		d := dm[k]
		if d == nil {
			d = &Counter2{}
			dm[k] = d
		}
		f(d, *c)
	}
}

// Merge combines several source reports into a group report (the paper
// aggregates DBpedia–BritM vs Wikidata in Tables 3–8). Both the V and U
// sides are additive: group members are distinct sources, so their unique
// sets are counted per source, exactly as the paper sums Table 2 rows.
// For shards of a single source use MergeShards, which deduplicates the
// U side across shards.
func Merge(name string, reports []*SourceReport) *SourceReport {
	out := NewSourceReport(name)
	for _, r := range reports {
		out.Total += r.Total
		out.Valid += r.Valid
		out.Unique += r.Unique
		out.CountedV += r.CountedV
		out.CountedU += r.CountedU
		if r.MaxTriples > out.MaxTriples {
			out.MaxTriples = r.MaxTriples
		}
		forEachCounter(out, r, func(d *Counter2, s Counter2) {
			d.V += s.V
			d.U += s.U
		})
	}
	return out
}

// MergeShards combines analyzers that each ingested one shard of the SAME
// source stream into the report a single sequential analyzer would have
// produced over the whole stream.
//
// V-side counts (and Total/Valid) are additive, since every occurrence of
// every query lives in exactly one shard. The U side needs cross-shard
// dedup: a canonical form first seen in k > 1 shards contributed a unique
// bump k times but must count once. Because the battery is a deterministic
// function of the canonical form, that contribution can be recomputed from
// any of the first-occurrence raw strings the shards kept, and subtracted
// k−1 times — making the merged report byte-identical to the sequential
// one at any shard count.
func MergeShards(name string, shards []*Analyzer) *SourceReport {
	reports := make([]*SourceReport, len(shards))
	for i, a := range shards {
		reports[i] = a.Report
	}
	out := Merge(name, reports)
	if len(shards) > 0 {
		out.Wikidata = shards[0].Report.Wikidata
		out.Robotic = shards[0].Report.Robotic
	}
	count := map[string]int{}
	raw := map[string]string{}
	for _, a := range shards {
		for canon, first := range a.seen {
			count[canon]++
			raw[canon] = first
		}
	}
	for canon, k := range count {
		if k <= 1 {
			continue
		}
		contrib := uniqueContribution(name, raw[canon])
		if contrib == nil {
			continue
		}
		n := k - 1
		out.Unique -= n * contrib.Unique
		out.CountedU -= n * contrib.CountedU
		forEachCounter(out, contrib, func(d *Counter2, s Counter2) {
			d.U -= n * s.U
		})
	}
	return out
}

// uniqueContribution analyzes one raw query in isolation: the resulting
// report's U side is exactly what the query's first occurrence adds to a
// shard.
func uniqueContribution(name, raw string) *SourceReport {
	a := NewAnalyzer(name)
	a.Ingest(raw)
	if a.Report.Unique != 1 {
		// the raw string parsed in its shard, so this cannot happen; be
		// defensive rather than corrupt the merge
		return nil
	}
	return a.Report
}

// ShardSplit deals a query stream round-robin into n shards (some may be
// empty when n exceeds the stream length). Round-robin keeps every shard's
// subsequence in stream order, so per-shard dedup sees first occurrences
// first.
func ShardSplit(queries []string, n int) [][]string {
	if n < 1 {
		n = 1
	}
	out := make([][]string, n)
	for i, q := range queries {
		out[i%n] = append(out[i%n], q)
	}
	return out
}

// AnalyzeQueries pushes a corpus of raw query strings through the full
// battery, sharded over the given number of workers (<= 0 means one per
// CPU; 1 runs sequentially). The result is identical at any worker count.
func AnalyzeQueries(name string, queries []string, workers int) *SourceReport {
	return AnalyzeQueriesCtx(context.Background(), name, queries, workers)
}

// AnalyzeQueriesCtx is AnalyzeQueries under a (possibly traced)
// context: per-shard "core.shard" spans account the ingest volume and
// a "core.merge" span covers the recombination — the breakdown the
// service's /v1/analyze explain mode returns. The report is identical
// to the untraced run at any worker count.
func AnalyzeQueriesCtx(ctx context.Context, name string, queries []string, workers int) *SourceReport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		a := NewAnalyzer(name)
		ingestShard(ctx, a, 0, queries)
		return a.Report
	}
	parts := ShardSplit(queries, workers)
	shards := make([]*Analyzer, len(parts))
	var wg sync.WaitGroup
	for k, part := range parts {
		wg.Add(1)
		go func(k int, part []string) {
			defer wg.Done()
			a := NewAnalyzer(name)
			ingestShard(ctx, a, k, part)
			shards[k] = a
		}(k, part)
	}
	wg.Wait()
	_, mergeSpan := obs.StartSpan(ctx, "core.merge")
	mergeSpan.Count("shards", int64(len(shards)))
	rep := MergeShards(name, shards)
	mergeSpan.Finish()
	return rep
}
