package inference

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/regex"
)

// InferCHARE implements the CRX algorithm (Bex, Neven, Schwentick,
// Vansummeren): it learns an expression that is simultaneously a
// single-occurrence and a sequential (chain) regular expression — the
// fragment that covers over 90% of the expressions in real-world DTDs
// (Section 4.2.2/4.2.3). The paper notes the algorithm "performs well in
// practice, even in scenarios with little data available".
//
// Method: build the precedence graph of the sample's symbols (a → b iff a
// occurs before b in some word); its strongly connected components, in
// topological order, become the disjunction factors; occurrence counts per
// word determine each factor's modifier (1, ?, *, +).
func InferCHARE(s Sample) *regex.Expr {
	return InferCHARECtx(context.Background(), s)
}

// InferCHARECtx is InferCHARE under a (possibly traced) context,
// recording an "inference.crx" span with the precedence-graph size.
func InferCHARECtx(ctx context.Context, s Sample) *regex.Expr {
	_, span := obs.StartSpan(ctx, "inference.crx")
	defer span.Finish()
	if len(s) == 0 {
		return regex.NewEmpty()
	}
	alpha := s.Alphabet()
	span.Count("alphabet_size", int64(len(alpha)))
	if len(alpha) == 0 {
		return regex.NewEpsilon()
	}
	idx := map[string]int{}
	for i, a := range alpha {
		idx[a] = i
	}
	n := len(alpha)
	// precedence: edge[i][j] if symbol i occurs strictly before j in a word.
	edge := make([][]bool, n)
	for i := range edge {
		edge[i] = make([]bool, n)
	}
	for _, w := range s {
		seen := map[int]bool{}
		for _, a := range w {
			j := idx[a]
			for i := range seen {
				if i != j {
					edge[i][j] = true
				}
			}
			seen[j] = true
		}
	}
	comps := tarjanSCC(n, edge)
	span.Count("chain_factors", int64(len(comps)))
	// topological order of components: comps from Tarjan come in reverse
	// topological order; reverse them.
	for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
		comps[i], comps[j] = comps[j], comps[i]
	}
	// Per-component occurrence counts per word.
	compOf := make([]int, n)
	for ci, comp := range comps {
		for _, v := range comp {
			compOf[v] = ci
		}
	}
	minCount := make([]int, len(comps))
	maxCount := make([]int, len(comps))
	for i := range minCount {
		minCount[i] = 1 << 30
	}
	for _, w := range s {
		counts := make([]int, len(comps))
		for _, a := range w {
			counts[compOf[idx[a]]]++
		}
		for i, c := range counts {
			if c < minCount[i] {
				minCount[i] = c
			}
			if c > maxCount[i] {
				maxCount[i] = c
			}
		}
	}
	var factors []*regex.Expr
	for ci, comp := range comps {
		syms := make([]string, len(comp))
		for k, v := range comp {
			syms[k] = alpha[v]
		}
		sort.Strings(syms)
		subs := make([]*regex.Expr, len(syms))
		for k, a := range syms {
			subs[k] = regex.NewSymbol(a)
		}
		f := regex.NewUnion(subs...)
		switch {
		case minCount[ci] == 0 && maxCount[ci] <= 1:
			f = regex.NewOpt(f)
		case minCount[ci] == 0:
			f = regex.NewStar(f)
		case maxCount[ci] <= 1:
			// every word has exactly one occurrence; no modifier
		default:
			f = regex.NewPlus(f)
		}
		factors = append(factors, f)
	}
	e := regex.NewConcat(factors...)
	return e
}

func tarjanSCC(n int, edge [][]bool) [][]int {
	index := make([]int, n)
	low := make([]int, n)
	for i := range index {
		index[i] = -1
	}
	onStack := make([]bool, n)
	var stack []int
	var comps [][]int
	counter := 0
	var visit func(v int)
	visit = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for w := 0; w < n; w++ {
			if !edge[v][w] || w == v {
				continue
			}
			if index[w] == -1 {
				visit(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			visit(v)
		}
	}
	return comps
}

// InferKORE learns a k-occurrence regular expression for the given k using
// the occurrence-marking heuristic: the i-th occurrence of a symbol within
// a word (capped at k) is treated as a distinct marked symbol, a SORE is
// learned over the marked alphabet, and the marks are erased. The erasure
// is a homomorphism, so the sample stays inside the language
// (Definition 4.7(1)). For k = 1 this is exactly InferSORE.
func InferKORE(s Sample, k int) *regex.Expr {
	return InferKORECtx(context.Background(), s, k)
}

// InferKORECtx is InferKORE under a (possibly traced) context; the
// occurrence marking and unmarking happen inside an "inference.kore"
// span, with the SORE learning over the marked alphabet as its child.
func InferKORECtx(ctx context.Context, s Sample, k int) *regex.Expr {
	if k <= 1 {
		return InferSORECtx(ctx, s)
	}
	ctx, span := obs.StartSpan(ctx, "inference.kore")
	defer span.Finish()
	span.SetAttr("k", strconv.Itoa(k))
	marked := make(Sample, len(s))
	for i, w := range s {
		counts := map[string]int{}
		mw := make([]string, len(w))
		for j, a := range w {
			counts[a]++
			c := counts[a]
			if c > k {
				c = k
			}
			mw[j] = mark(a, c)
		}
		marked[i] = mw
	}
	e := InferSORECtx(ctx, marked)
	return unmark(e)
}

const markSep = "\x00#"

func mark(a string, i int) string { return fmt.Sprintf("%s%s%d", a, markSep, i) }

func unmark(e *regex.Expr) *regex.Expr {
	out := e.Clone()
	out.Walk(func(x *regex.Expr) {
		if x.Kind == regex.Symbol {
			if i := strings.Index(x.Sym, markSep); i >= 0 {
				x.Sym = x.Sym[:i]
			}
		}
	})
	return out
}

// InferBestKORE runs InferKORE for k = 1..maxK and returns the first
// deterministic candidate, preferring small k (iDREGEx learns "deterministic
// k-OREs for increasing values of k", Section 4.2.3). If no candidate is
// deterministic it returns the k = 1 result. The determinism check is the
// Glushkov criterion; see internal/determinism.
func InferBestKORE(s Sample, maxK int, isDeterministic func(*regex.Expr) bool) (*regex.Expr, int) {
	return InferBestKORECtx(context.Background(), s, maxK, isDeterministic)
}

// InferBestKORECtx is InferBestKORE under a (possibly traced) context:
// each candidate k gets its own child span via InferKORECtx, and the
// "inference.best_kore" span records how many candidates were tried
// and which k won.
func InferBestKORECtx(ctx context.Context, s Sample, maxK int, isDeterministic func(*regex.Expr) bool) (*regex.Expr, int) {
	ctx, span := obs.StartSpan(ctx, "inference.best_kore")
	defer span.Finish()
	tried := span.Counter("candidates_tried")
	var first *regex.Expr
	for k := 1; k <= maxK; k++ {
		tried.Inc()
		e := InferKORECtx(ctx, s, k)
		if first == nil {
			first = e
		}
		if isDeterministic(e) {
			span.SetAttr("chosen_k", strconv.Itoa(k))
			return e, k
		}
	}
	span.SetAttr("chosen_k", "1")
	return first, 1
}
