package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/jsonschema"
	"repro/internal/schemastudy"
)

// jsonSchemaContainment cross-checks the three-valued JSON Schema
// containment verdict: a NotContained verdict must come with a witness
// document that actually separates the schemas, a Contained verdict must
// survive independent randomized refutation attempts with fresh seeds,
// and reflexive containment must never be refuted.
type jsonSchemaContainment struct{}

func (jsonSchemaContainment) Name() string { return "jsonschema-containment" }

func (jsonSchemaContainment) Description() string {
	return "jsonschema.Contains verdict soundness: witness validity, cross-seed stability, reflexivity"
}

func (o jsonSchemaContainment) Trial(r *rand.Rand) *Divergence {
	gen := schemastudy.DefaultJSONSchemaGen()
	src1, src2 := gen.Schema(r), gen.Schema(r)
	s1, err := jsonschema.Parse(src1)
	if err != nil {
		return &Divergence{
			Input:  src1,
			Detail: fmt.Sprintf("generator emitted a schema its own parser rejects: %v", err),
		}
	}
	s2, err := jsonschema.Parse(src2)
	if err != nil {
		return &Divergence{
			Input:  src2,
			Detail: fmt.Sprintf("generator emitted a schema its own parser rejects: %v", err),
		}
	}

	if v, w := jsonschema.Contains(s1, s1, 40, r.Int63()); v == jsonschema.NotContained {
		return &Divergence{
			Input:  fmt.Sprintf("s=%s witness=%s", src1, w),
			Detail: "Contains(s,s)=NotContained (reflexivity refuted)",
		}
	}

	v, witness := jsonschema.Contains(s1, s2, 40, r.Int63())
	switch v {
	case jsonschema.NotContained:
		if err := s1.Validate(witness); err != nil {
			return &Divergence{
				Input:  fmt.Sprintf("s1=%s s2=%s witness=%s", src1, src2, witness),
				Detail: fmt.Sprintf("NotContained witness does not validate under s1: %v", err),
			}
		}
		if err := s2.Validate(witness); err == nil {
			return &Divergence{
				Input:  fmt.Sprintf("s1=%s s2=%s witness=%s", src1, src2, witness),
				Detail: "NotContained witness validates under s2 (it separates nothing)",
			}
		}
	case jsonschema.Contained:
		// the structural subsumption claims a proof; independent sampling
		// rounds with fresh seeds must never find a counterexample
		for i := 0; i < 3; i++ {
			if v2, w2 := jsonschema.Contains(s1, s2, 60, r.Int63()); v2 == jsonschema.NotContained {
				return &Divergence{
					Input:  fmt.Sprintf("s1=%s s2=%s witness=%s", src1, src2, w2),
					Detail: "verdict flip: Contained under one seed, NotContained under another (subsumption proof refuted by sampling)",
				}
			}
		}
	}
	return nil
}
