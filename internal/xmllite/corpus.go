package xmllite

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/tree"
)

// Render serializes a node-labeled tree as an XML document (elements only),
// the inverse of Parse+AsTree.
func Render(n *tree.Node) string {
	var b strings.Builder
	renderNode(&b, n)
	return b.String()
}

func renderNode(b *strings.Builder, n *tree.Node) {
	if len(n.Children) == 0 {
		fmt.Fprintf(b, "<%s/>", n.Label)
		return
	}
	fmt.Fprintf(b, "<%s>", n.Label)
	for _, c := range n.Children {
		renderNode(b, c)
	}
	fmt.Fprintf(b, "</%s>", n.Label)
}

// Figure1XML is the XML document of Figure 1a (persons with name and
// birthplace), used by the quickstart example and tests.
const Figure1XML = `<?xml version="1.0"?>
<persons>
  <person pers_id="1">
    <name>Aretha</name>
    <birthplace>
      <city>Memphis</city>
      <state>Tennessee</state>
      <country>United States</country>
    </birthplace>
  </person>
  <person pers_id="2">
    <name>Johann Sebastian</name>
    <birthplace>
      <city>Eisenach</city>
      <state>Thuringia</state>
    </birthplace>
  </person>
</persons>`

// CorpusGen generates a synthetic XML corpus replaying the Grijzenhout &
// Marx study (Section 3.1): a configurable fraction of documents is
// well-formed; the rest carry an injected fault drawn from the study's
// category distribution.
type CorpusGen struct {
	// WellFormedRate is the fraction of well-formed documents (the study
	// measured 85%).
	WellFormedRate float64
	// Faults is the distribution over fault categories for the non-well-
	// formed documents. Defaults to the study's reported shape: the top
	// three categories carry 79.9% of all errors.
	Faults []FaultWeight
	// MaxDepth and MaxFanout bound the generated element trees.
	MaxDepth, MaxFanout int
}

// FaultWeight pairs an error category with its relative weight.
type FaultWeight struct {
	Category ErrorCategory
	Weight   float64
}

// DefaultCorpusGen returns a generator calibrated to the study's numbers:
// 85% well-formed; among errors, tag mismatch / premature end / bad UTF-8
// jointly at 79.9%, and six further categories filling up to 99%.
func DefaultCorpusGen() *CorpusGen {
	return &CorpusGen{
		WellFormedRate: 0.85,
		Faults: []FaultWeight{
			{ErrTagMismatch, 38.0},
			{ErrPrematureEnd, 24.0},
			{ErrBadUTF8, 17.9},
			{ErrBadEntity, 6.0},
			{ErrBadAttribute, 4.5},
			{ErrStrayLT, 3.6},
			{ErrDuplicateAttr, 2.0},
			{ErrMultipleRoots, 2.0},
			{ErrBadName, 1.0},
			{ErrEmptyDocument, 1.0},
		},
		MaxDepth:  5,
		MaxFanout: 4,
	}
}

var elementNames = []string{
	"persons", "person", "name", "birthplace", "city", "state", "country",
	"item", "record", "entry", "data", "list", "title", "author", "year",
}

// Document generates one document (well-formed or faulty per the rates).
func (g *CorpusGen) Document(r *rand.Rand) string {
	doc := g.wellFormed(r)
	if r.Float64() < g.WellFormedRate {
		return doc
	}
	return g.injectFault(r, doc)
}

func (g *CorpusGen) wellFormed(r *rand.Rand) string {
	t := g.randomTree(r, g.MaxDepth)
	var b strings.Builder
	b.WriteString("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")
	g.renderRich(&b, r, t)
	return b.String()
}

func (g *CorpusGen) randomTree(r *rand.Rand, depth int) *tree.Node {
	n := tree.New(elementNames[r.Intn(len(elementNames))])
	if depth <= 1 {
		return n
	}
	for i := 0; i < r.Intn(g.MaxFanout+1); i++ {
		n.Add(g.randomTree(r, depth-1))
	}
	return n
}

func (g *CorpusGen) renderRich(b *strings.Builder, r *rand.Rand, n *tree.Node) {
	fmt.Fprintf(b, "<%s", n.Label)
	if r.Float64() < 0.4 {
		fmt.Fprintf(b, " id=\"%d\"", r.Intn(1000))
	}
	if len(n.Children) == 0 && r.Float64() < 0.5 {
		b.WriteString("/>")
		return
	}
	b.WriteString(">")
	if len(n.Children) == 0 {
		b.WriteString("text &amp; more")
	}
	for _, c := range n.Children {
		g.renderRich(b, r, c)
	}
	fmt.Fprintf(b, "</%s>", n.Label)
}

// injectFault corrupts a well-formed document so that its first
// well-formedness violation falls in the drawn category.
func (g *CorpusGen) injectFault(r *rand.Rand, doc string) string {
	total := 0.0
	for _, f := range g.Faults {
		total += f.Weight
	}
	x := r.Float64() * total
	var cat ErrorCategory
	for _, f := range g.Faults {
		x -= f.Weight
		if x <= 0 {
			cat = f.Category
			break
		}
	}
	switch cat {
	case ErrTagMismatch:
		// rename the last end tag
		i := strings.LastIndex(doc, "</")
		if i < 0 {
			return "<a></b>"
		}
		j := strings.Index(doc[i:], ">")
		return doc[:i] + "</zz_mismatch" + doc[i+j:]
	case ErrPrematureEnd:
		// truncate inside a tag
		i := strings.LastIndex(doc, "<")
		if i < 1 {
			return "<a"
		}
		return doc[:i+2]
	case ErrBadUTF8:
		return doc + "\xff\xfe\x80"
	case ErrBadEntity:
		i := strings.LastIndex(doc, "</")
		if i < 0 {
			return "<a>&nosuch;</a>"
		}
		return doc[:i] + "& raw ampersand" + doc[i:]
	case ErrBadAttribute:
		i := strings.Index(doc, "<"+firstElementName(doc))
		if i < 0 {
			return "<a attr=unquoted></a>"
		}
		j := i + 1 + len(firstElementName(doc))
		return doc[:j] + " attr=unquoted" + doc[j:]
	case ErrStrayLT:
		i := strings.LastIndex(doc, "</")
		if i < 0 {
			return "<a> 1 < 2 </a>"
		}
		return doc[:i] + "< stray" + doc[i:]
	case ErrDuplicateAttr:
		i := strings.Index(doc, "<"+firstElementName(doc))
		if i < 0 {
			return `<a x="1" x="2"></a>`
		}
		j := i + 1 + len(firstElementName(doc))
		return doc[:j] + ` dup="1" dup="2"` + doc[j:]
	case ErrMultipleRoots:
		return doc + "<extra/>"
	case ErrBadName:
		i := strings.Index(doc, "?>")
		if i < 0 {
			return "<1bad/>"
		}
		return doc[:i+2] + "<1bad/>" + doc[i+2:]
	case ErrEmptyDocument:
		return "<?xml version=\"1.0\"?>   "
	}
	return doc
}

func firstElementName(doc string) string {
	i := strings.Index(doc, "?>")
	if i < 0 {
		i = 0
	} else {
		i += 2
	}
	for i < len(doc) {
		j := strings.IndexByte(doc[i:], '<')
		if j < 0 {
			return ""
		}
		i += j + 1
		if i < len(doc) && isNameStart(doc[i]) {
			k := i
			for k < len(doc) && isNameByte(doc[k]) {
				k++
			}
			return doc[i:k]
		}
	}
	return ""
}

// StudyResult aggregates a corpus well-formedness study in the shape of
// the Grijzenhout & Marx numbers quoted in Section 3.1.
type StudyResult struct {
	Total        int
	WellFormed   int
	ByCategory   map[ErrorCategory]int
	TopThreeRate float64 // fraction of all errors in the 3 largest categories
}

// WellFormedRate returns the fraction of well-formed documents.
func (s *StudyResult) WellFormedRate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.WellFormed) / float64(s.Total)
}

// RunStudy classifies every document of the corpus.
func RunStudy(docs []string) *StudyResult {
	res := &StudyResult{ByCategory: map[ErrorCategory]int{}}
	for _, d := range docs {
		res.Total++
		cat := Check(d)
		if cat == ErrNone {
			res.WellFormed++
		} else {
			res.ByCategory[cat]++
		}
	}
	errTotal := res.Total - res.WellFormed
	if errTotal > 0 {
		counts := make([]int, 0, len(res.ByCategory))
		for _, c := range res.ByCategory {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for i := 0; i < 3 && i < len(counts); i++ {
			top += counts[i]
		}
		res.TopThreeRate = float64(top) / float64(errTotal)
	}
	return res
}
