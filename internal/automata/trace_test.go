package automata

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/regex"
)

// TestContainsCtxRecordsSpans drives a containment check under a traced
// context and checks that the span tree carries the cost counters the
// explain mode and the slow-op log rely on. The instance is blowup-
// family self-containment: the verdict is true (no early counterexample
// exit), every subset-state is lazily interned, and the subsumption
// order actually fires, so all three engine counters are nonzero.
func TestContainsCtxRecordsSpans(t *testing.T) {
	tr := &obs.Tracer{}
	ctx, root := tr.StartRoot(context.Background(), "test")
	e := adversarialRight(8)
	ok, err := ContainsCtx(ctx, e, e)
	if err != nil || !ok {
		t.Fatalf("self-containment = %v, %v", ok, err)
	}
	root.Finish()
	tree := root.Tree()
	if len(tree.Children) != 1 || tree.Children[0].Name != "automata.contains" {
		t.Fatalf("children = %+v, want one automata.contains span", tree.Children)
	}
	contains := tree.Children[0]
	if contains.Attrs["engine"] != "antichain" {
		t.Fatalf("engine attr = %q, want antichain", contains.Attrs["engine"])
	}
	for _, c := range []string{"states_expanded", "product_states", "antichain_pruned"} {
		if contains.Counters[c] == 0 {
			t.Fatalf("%s = 0, want > 0: %+v", c, contains.Counters)
		}
	}
	// The whole point of the lazy engine: it must intern far fewer than
	// the 2^9 subset states the eager construction materializes here.
	if got := contains.Counters["states_expanded"]; got >= 1<<9 {
		t.Fatalf("states_expanded = %d, want < 2^9 (lazy engine)", got)
	}
	if len(contains.Children) != 0 {
		t.Fatalf("contains children = %+v, want none (no eager determinize)", contains.Children)
	}
}

// TestContainsClassicCtxRecordsSpans pins the retained reference
// engine's span shape: an automata.contains_classic span with an eager
// automata.determinize child accounting all 2^n subset states.
func TestContainsClassicCtxRecordsSpans(t *testing.T) {
	tr := &obs.Tracer{}
	ctx, root := tr.StartRoot(context.Background(), "test")
	e1, e2 := regex.MustParse("b* a (b* a)*"), adversarialRight(6)
	if _, err := ContainsClassicCtx(ctx, e1, e2); err != nil {
		t.Fatal(err)
	}
	root.Finish()
	tree := root.Tree()
	if len(tree.Children) != 1 || tree.Children[0].Name != "automata.contains_classic" {
		t.Fatalf("children = %+v, want one automata.contains_classic span", tree.Children)
	}
	classic := tree.Children[0]
	if classic.Counters["product_states"] == 0 {
		t.Fatalf("product_states = 0, want > 0: %+v", classic)
	}
	if len(classic.Children) != 1 || classic.Children[0].Name != "automata.determinize" {
		t.Fatalf("classic children = %+v, want one determinize span", classic.Children)
	}
	det := classic.Children[0]
	// The subset construction for (a|b)* a (a|b)^6 materializes 2^6 = 64
	// reachable subset states (plus the initial one); every one of them
	// must have been accounted.
	if det.Counters["states_expanded"] < 64 {
		t.Fatalf("states_expanded = %d, want >= 64", det.Counters["states_expanded"])
	}
}

// TestContainsUntracedStillWorks pins the disabled path: no tracer in
// the context means no spans, and the verdict is unchanged.
func TestContainsUntracedStillWorks(t *testing.T) {
	e1, e2 := regex.MustParse("a b"), regex.MustParse("a (b|c)")
	ok, err := ContainsCtx(context.Background(), e1, e2)
	if err != nil || !ok {
		t.Fatalf("ContainsCtx = %v, %v", ok, err)
	}
	if obs.FromContext(context.Background()) != nil {
		t.Fatal("background context must carry no span")
	}
}

// TestIntersectionWitnessCtxRecordsSpan checks the intersection BFS
// accounts its tuple expansions.
func TestIntersectionWitnessCtxRecordsSpan(t *testing.T) {
	tr := &obs.Tracer{}
	ctx, root := tr.StartRoot(context.Background(), "test")
	es := []*regex.Expr{regex.MustParse("(a|b)* a"), regex.MustParse("a (a|b)*")}
	if _, ok, err := IntersectionWitnessCtx(ctx, es...); err != nil || !ok {
		t.Fatalf("intersection = %v, %v", ok, err)
	}
	root.Finish()
	tree := root.Tree()
	if len(tree.Children) != 1 || tree.Children[0].Name != "automata.intersection" {
		t.Fatalf("children = %+v", tree.Children)
	}
	if tree.Children[0].Counters["tuples_expanded"] == 0 {
		t.Fatal("tuples_expanded = 0, want > 0")
	}
}
