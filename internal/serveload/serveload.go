// Package serveload is the rwdserve load generator behind `rwdbench
// -serve-load`: it drives sustained, seeded, concurrent mixed traffic
// (containment, membership, validation, inference, log analysis, NDJSON
// streams, batches, and deliberately adversarial deadline-bounded
// instances) against a running server, scrapes /metrics before and
// after, and distills the run into a benchmark baseline — the
// BENCH_serve.json perf trajectory that later PRs are measured against.
//
// Request streams are deterministic: worker w of a run with seed s
// always issues the same requests in the same order, so two runs differ
// only in server behavior, never in workload (TestStreamDeterminism pins
// this). The generated instances reuse the adversarial families of the
// service tests, so timeout and cache-hit rates are exercised on
// purpose, not by accident.
package serveload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/automata"
	"repro/internal/metrics"
	"repro/internal/obs/profile"
)

// Config parameterizes a load run. The zero value is not usable: BaseURL
// is required; every other field has a documented default.
type Config struct {
	// BaseURL is the root of a running rwdserve (e.g. http://127.0.0.1:8080).
	BaseURL string
	// Seed derives every worker's request stream.
	Seed int64
	// Duration is the sustained-load window; <= 0 means 10s.
	Duration time.Duration
	// Concurrency is the number of workers issuing requests back-to-back;
	// <= 0 means 8.
	Concurrency int
	// MaxRequestsPerWorker additionally bounds each worker's stream
	// (tests use it for fast deterministic runs); 0 means duration-bound
	// only.
	MaxRequestsPerWorker int
	// Client overrides the HTTP client; nil means a 30s-timeout default.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Request is one generated HTTP request of the mixed workload.
type Request struct {
	// Kind is the reporting label (the endpoint name, with "-stream" and
	// "-adversarial" variants kept distinct so their latencies do not
	// pollute the main series).
	Kind string
	// Path is the URL path including any query-string envelope.
	Path string
	// ContentType is application/json except for NDJSON streams.
	ContentType string
	Body        string
}

// Stream deterministically generates one worker's request sequence.
// Identical (seed, worker) pairs yield identical streams — the property
// that makes baselines comparable across runs and PRs.
type Stream struct {
	r *rand.Rand
}

// NewStream returns worker w's stream for a seed.
func NewStream(seed int64, worker int) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed*1_000_003 + int64(worker)*7919 + 17))}
}

// sparqlTemplates is the query pool of the analyze workloads; %s slots
// take generated variable names so unique-query counting has work to do.
var sparqlTemplates = []string{
	"SELECT ?%s WHERE { ?%s ?p ?y }",
	"SELECT ?%s WHERE { ?%s <p> ?y . ?y <q> ?z }",
	"SELECT * WHERE { ?%s ?p ?o OPTIONAL { ?o ?q ?%s } }",
	"ASK { ?%s ?p ?o }",
	"SELECT ?%s WHERE { ?%s (<p>/<q>)* ?y }",
	"SELECT DISTINCT ?%s WHERE { ?%s ?p ?y FILTER(?y != ?%s) }",
}

// Next generates the next request of the stream. The mix is weighted
// toward the bulk endpoints the paper's workloads stress, with a small
// deliberate share of deadline-bounded adversarial instances so timeout
// accounting is exercised.
func (s *Stream) Next() Request {
	r := s.r
	switch p := r.Intn(100); {
	case p < 30: // regex containment from a shared pool: repeats hit the cache
		k := r.Intn(40)
		return jsonReq("containment", "/v1/containment", map[string]any{
			"engine": "regex",
			"left":   fmt.Sprintf("(a|b)* x%d", k),
			"right":  fmt.Sprintf("(a|b)* (a|b) x%d", k),
		})
	case p < 40: // k-ORE containment
		k := r.Intn(12)
		return jsonReq("containment", "/v1/containment", map[string]any{
			"engine": "kore",
			"left":   fmt.Sprintf("a a y%d", k),
			"right":  fmt.Sprintf("a* a* y%d", k),
		})
	case p < 55: // membership over a fixed deterministic expression
		word := make([]string, 1+r.Intn(12))
		for i := range word {
			word[i] = string(rune('a' + r.Intn(2)))
		}
		return jsonReq("membership", "/v1/membership", map[string]any{
			"expr": "b* a (b* a)*",
			"word": word,
		})
	case p < 65: // DTD validation with a mix of valid and invalid docs
		docs := make([]string, 1+r.Intn(4))
		for i := range docs {
			docs[i] = "r(" + strings.TrimSuffix(strings.Repeat("a, ", r.Intn(4)), ", ") + ")"
			if docs[i] == "r()" {
				docs[i] = "r"
			}
			if r.Intn(5) == 0 {
				docs[i] = "r(b)" // not in the schema: exercises the error path
			}
		}
		return jsonReq("validate", "/v1/validate", map[string]any{
			"kind":   "dtd",
			"schema": "<!ELEMENT r (a*)> <!ELEMENT a EMPTY>",
			"docs":   docs,
		})
	case p < 75: // schema inference from random positive samples
		alg := []string{"sore", "chare"}[r.Intn(2)]
		words := make([][]string, 2+r.Intn(4))
		for i := range words {
			w := make([]string, 1+r.Intn(4))
			for j := range w {
				w[j] = string(rune('a' + r.Intn(3)))
			}
			words[i] = w
		}
		return jsonReq("infer", "/v1/infer", map[string]any{"algorithm": alg, "words": words})
	case p < 85: // JSON-mode log analysis
		return jsonReq("analyze", "/v1/analyze", map[string]any{
			"name":    "load",
			"queries": s.queries(4 + r.Intn(9)),
			"workers": 2,
		})
	case p < 92: // heterogeneous batch
		items := make([]map[string]any, 3+r.Intn(4))
		for i := range items {
			switch r.Intn(3) {
			case 0:
				k := r.Intn(40)
				items[i] = map[string]any{"op": "containment", "request": map[string]any{
					"engine": "regex",
					"left":   fmt.Sprintf("(a|b)* x%d", k),
					"right":  fmt.Sprintf("(a|b)* (a|b) x%d", k),
				}}
			case 1:
				items[i] = map[string]any{"op": "membership", "request": map[string]any{
					"expr": "(a|b)* a", "word": []string{"b", "a"},
				}}
			default:
				items[i] = map[string]any{"op": "infer", "request": map[string]any{
					"algorithm": "sore", "words": [][]string{{"a", "b"}, {"a"}},
				}}
			}
		}
		return jsonReq("batch", "/v1/batch", map[string]any{"items": items})
	case p < 96: // NDJSON streaming analysis: a raw query log over the wire
		return Request{
			Kind:        "analyze-stream",
			Path:        "/v1/analyze?name=load-stream&workers=2",
			ContentType: "application/x-ndjson",
			Body:        strings.Join(s.queries(8+r.Intn(17)), "\n") + "\n",
		}
	default: // adversarial exponential instance under a tight deadline: a deliberate 504
		// self-containment of the antichain-hard family defeats the lazy
		// engine's pruning; k=16 needs tens of seconds, so it always 504s
		hard := automata.AntichainHardExpr(16)
		return jsonReq("containment-adversarial", "/v1/containment", map[string]any{
			"engine": "regex", "left": hard, "right": hard,
			"deadline_ms": 10 + r.Intn(40),
		})
	}
}

// queries draws n SPARQL queries from the template pool, with some
// repeats (same variable name) so unique-query deduplication is real.
func (s *Stream) queries(n int) []string {
	out := make([]string, n)
	for i := range out {
		t := sparqlTemplates[s.r.Intn(len(sparqlTemplates))]
		v := fmt.Sprintf("v%d", s.r.Intn(20))
		out[i] = strings.ReplaceAll(t, "%s", v)
	}
	return out
}

func jsonReq(kind, path string, body map[string]any) Request {
	raw, err := json.Marshal(body)
	if err != nil {
		panic("serveload: unmarshalable generated body: " + err.Error())
	}
	return Request{Kind: kind, Path: path, ContentType: "application/json", Body: string(raw)}
}

// Percentiles are client-observed latency quantiles in milliseconds.
type Percentiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// EndpointStats is the per-kind slice of the report.
type EndpointStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Timeouts int     `json:"timeouts"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// CacheStats are the verdict-cache /metrics deltas over the run.
type CacheStats struct {
	Hits      float64 `json:"hits"`
	Misses    float64 `json:"misses"`
	Evictions float64 `json:"evictions"`
	// HitRate is hits/(hits+misses) over the run's lookups.
	HitRate float64 `json:"hit_rate"`
}

// RecorderStats is the flight recorder's /metrics view of the run:
// Recorded/Evicted/Dropped are deltas (cumulative counters), Retained
// and Bytes the ring's state at the end of the run.
type RecorderStats struct {
	Recorded float64 `json:"recorded"`
	Evicted  float64 `json:"evicted"`
	Dropped  float64 `json:"dropped"`
	Retained float64 `json:"retained"`
	Bytes    float64 `json:"bytes"`
}

// Report is the persisted baseline: what BENCH_serve.json holds. All
// counters are deltas over the run (scraped from /metrics before and
// after), so a shared or long-running server still yields honest
// numbers.
type Report struct {
	SchemaVersion   int     `json:"schema_version"`
	Tool            string  `json:"tool"`
	Seed            int64   `json:"seed"`
	Concurrency     int     `json:"concurrency"`
	DurationSeconds float64 `json:"duration_seconds"`

	Requests int     `json:"requests"`
	Errors   int     `json:"errors"` // transport-level failures
	RPS      float64 `json:"rps"`

	LatencyMS Percentiles               `json:"latency_ms"`
	Status    map[string]int            `json:"status"`
	Endpoints map[string]*EndpointStats `json:"endpoints"`

	// Timeouts counts 504s the client saw; ServerTimeouts and
	// ClientClosed are the server's own counters over the run — after the
	// middleware classification fix the two timeout views agree.
	Timeouts       int     `json:"timeouts"`
	ServerTimeouts float64 `json:"server_timeouts"`
	ClientClosed   float64 `json:"client_closed"`

	Cache CacheStats `json:"cache"`
	// Recorder is the trace flight recorder's accounting over the run —
	// the overhead evidence for the always-on recorder (see
	// TestRecorderOverheadUnderFivePercent for the latency bound).
	Recorder RecorderStats `json:"recorder"`
	// SpanCost holds the rwd_span_cost_total deltas, keyed
	// "span/counter" — the algorithmic work (states expanded, queries
	// ingested, …) the run induced server-side.
	SpanCost map[string]float64 `json:"span_cost"`

	// Profile is the server's workload-profile view of the run, scraped
	// from GET /v1/stats?window=lifetime after the load stops: one row
	// per (op, engine), keyed "op|engine" with "-" for profiles where no
	// engine ran (cache hits, rejected requests). Unlike the delta
	// counters above this is the server's lifetime view — identical to
	// the run's own profile for the in-process server rwdbench starts,
	// approximate on a shared long-running one. Absent (nil) when the
	// server predates /v1/stats.
	Profile map[string]*OpProfileSummary `json:"profile,omitempty"`
}

// OpProfileSummary is one (op, engine) row of the report's profile
// block — the server-side durations (the client-side Endpoints rows
// include network and queueing) plus the fitted cost model when the op
// accumulated one.
type OpProfileSummary struct {
	Requests    uint64        `json:"requests"`
	Errors      uint64        `json:"errors"`
	Timeouts    uint64        `json:"timeouts"`
	ErrorRate   float64       `json:"error_rate"`
	TimeoutRate float64       `json:"timeout_rate"`
	P50MS       float64       `json:"p50_ms"`
	P99MS       float64       `json:"p99_ms"`
	Model       *ProfileModel `json:"model,omitempty"`
}

// ProfileModel mirrors the op's fitted duration-vs-cost-counter model.
type ProfileModel struct {
	Counter       string  `json:"counter"`
	Samples       int64   `json:"samples"`
	SlopeMS       float64 `json:"slope_ms_per_unit"`
	InterceptMS   float64 `json:"intercept_ms"`
	R2            float64 `json:"r2"`
	ResidualStdMS float64 `json:"residual_std_ms"`
}

// ProfileKey renders the "op|engine" key of Report.Profile.
func ProfileKey(op, engine string) string {
	if engine == "" {
		engine = "-"
	}
	return op + "|" + engine
}

type sample struct {
	kind   string
	status int
	ms     float64
	failed bool
}

// Run drives the configured load against cfg.BaseURL and returns the
// report. The server must already be up: the initial /metrics scrape
// doubles as the liveness check.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	before, err := scrape(cfg.Client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("scraping %s/metrics before the run: %w", cfg.BaseURL, err)
	}

	start := time.Now()
	stop := start.Add(cfg.Duration)
	perWorker := make([][]sample, cfg.Concurrency)
	done := make(chan int, cfg.Concurrency)
	for w := 0; w < cfg.Concurrency; w++ {
		go func(w int) {
			defer func() { done <- w }()
			st := NewStream(cfg.Seed, w)
			var out []sample
			for n := 0; time.Now().Before(stop); n++ {
				if cfg.MaxRequestsPerWorker > 0 && n >= cfg.MaxRequestsPerWorker {
					break
				}
				out = append(out, issue(cfg.Client, cfg.BaseURL, st.Next()))
			}
			perWorker[w] = out
		}(w)
	}
	for w := 0; w < cfg.Concurrency; w++ {
		<-done
	}
	elapsed := time.Since(start)

	after, err := scrape(cfg.Client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("scraping %s/metrics after the run: %w", cfg.BaseURL, err)
	}

	var all []sample
	for _, s := range perWorker {
		all = append(all, s...)
	}
	rep := buildReport(cfg, elapsed, all, before, after)
	rep.Profile = scrapeProfile(cfg.Client, cfg.BaseURL)
	return rep, nil
}

// scrapeProfile reads the server's workload-profile snapshot into the
// report's profile block. Best-effort: a server without /v1/stats (or a
// failed read) yields nil rather than failing the whole run.
func scrapeProfile(client *http.Client, base string) map[string]*OpProfileSummary {
	resp, err := client.Get(base + "/v1/stats?window=" + profile.WindowLifetime)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var snap profile.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	out := map[string]*OpProfileSummary{}
	models := map[string]*ProfileModel{}
	for _, m := range snap.Models {
		models[m.Op] = &ProfileModel{
			Counter:       m.Counter,
			Samples:       m.Samples,
			SlopeMS:       m.SlopeMS,
			InterceptMS:   m.InterceptMS,
			R2:            m.R2,
			ResidualStdMS: m.ResidualStdMS,
		}
	}
	for _, row := range snap.Lifetime {
		out[ProfileKey(row.Op, row.Engine)] = &OpProfileSummary{
			Requests:    row.Requests,
			Errors:      row.Errors,
			Timeouts:    row.Timeouts,
			ErrorRate:   row.ErrorRate,
			TimeoutRate: row.TimeoutRate,
			P50MS:       row.DurationMS.P50,
			P99MS:       row.DurationMS.P99,
			// The model is fitted per op (over its dominant cost
			// counter), so every row of the op carries the same one.
			Model: models[row.Op],
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// issue sends one request and records the client-observed outcome.
func issue(client *http.Client, base string, req Request) sample {
	t0 := time.Now()
	resp, err := client.Post(base+req.Path, req.ContentType, strings.NewReader(req.Body))
	ms := float64(time.Since(t0).Microseconds()) / 1000
	if err != nil {
		return sample{kind: req.Kind, ms: ms, failed: true}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{kind: req.Kind, status: resp.StatusCode, ms: ms}
}

func buildReport(cfg Config, elapsed time.Duration, all []sample, before, after map[string]float64) *Report {
	rep := &Report{
		SchemaVersion:   1,
		Tool:            "rwdbench -serve-load",
		Seed:            cfg.Seed,
		Concurrency:     cfg.Concurrency,
		DurationSeconds: elapsed.Seconds(),
		Requests:        len(all),
		Status:          map[string]int{},
		Endpoints:       map[string]*EndpointStats{},
		SpanCost:        map[string]float64{},
	}
	var lat []float64
	byKind := map[string][]float64{}
	for _, s := range all {
		if s.failed {
			rep.Errors++
		} else {
			rep.Status[fmt.Sprintf("%d", s.status)]++
		}
		ep := rep.Endpoints[s.kind]
		if ep == nil {
			ep = &EndpointStats{}
			rep.Endpoints[s.kind] = ep
		}
		ep.Requests++
		switch {
		case s.failed:
			ep.Errors++
		case s.status == http.StatusGatewayTimeout:
			ep.Timeouts++
			rep.Timeouts++
		}
		lat = append(lat, s.ms)
		byKind[s.kind] = append(byKind[s.kind], s.ms)
	}
	if elapsed > 0 {
		rep.RPS = float64(len(all)) / elapsed.Seconds()
	}
	rep.LatencyMS = Percentiles{
		P50: percentile(lat, 0.50),
		P90: percentile(lat, 0.90),
		P99: percentile(lat, 0.99),
		Max: percentile(lat, 1),
	}
	for kind, ms := range byKind {
		rep.Endpoints[kind].P50MS = percentile(ms, 0.50)
		rep.Endpoints[kind].P99MS = percentile(ms, 0.99)
	}

	delta := func(name string) float64 { return after[name] - before[name] }
	rep.Cache = CacheStats{
		Hits:      delta("rwdserve_cache_hits_total"),
		Misses:    delta("rwdserve_cache_misses_total"),
		Evictions: delta("rwdserve_cache_evictions_total"),
	}
	if lookups := rep.Cache.Hits + rep.Cache.Misses; lookups > 0 {
		rep.Cache.HitRate = rep.Cache.Hits / lookups
	}
	rep.Recorder = RecorderStats{
		Recorded: delta("rwd_traces_recorded_total"),
		Evicted:  delta("rwd_traces_evicted_total"),
		Dropped:  delta("rwd_traces_dropped_total"),
		Retained: after["rwd_traces_retained"],
		Bytes:    after["rwd_trace_bytes"],
	}
	rep.ServerTimeouts = sumPrefixDelta(before, after, "rwdserve_timeouts_total")
	rep.ClientClosed = sumPrefixDelta(before, after, "rwdserve_client_closed_total")
	for series := range after {
		if !strings.HasPrefix(series, "rwd_span_cost_total{") {
			continue
		}
		d := after[series] - before[series]
		if d <= 0 {
			continue
		}
		span, _ := metrics.SeriesLabel(series, "span")
		counter, _ := metrics.SeriesLabel(series, "counter")
		rep.SpanCost[span+"/"+counter] = d
	}
	return rep
}

// sumPrefixDelta sums the after-minus-before deltas of every series of a
// family (all label combinations).
func sumPrefixDelta(before, after map[string]float64, family string) float64 {
	var total float64
	for series, v := range after {
		if series == family || strings.HasPrefix(series, family+"{") {
			total += v - before[series]
		}
	}
	return total
}

// percentile returns the q-quantile (0 < q <= 1) by nearest-rank over a
// copy of xs; 0 when empty.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func scrape(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

// WriteJSON renders the report as indented JSON (the BENCH_serve.json
// format).
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
