package recorder

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Trace log file naming: traces-000042.ndjson, one JSON trace per line,
// rotated by size. Appends are not fsynced — the trace log is telemetry,
// not a write-ahead log — so a crash can tear the final line; the reader
// tolerates exactly that.
const (
	logPrefix = "traces-"
	logSuffix = ".ndjson"
)

// Log is the on-disk NDJSON trace log: an append-only sequence of
// size-rotated files in one directory. Safe for concurrent Append.
type Log struct {
	dir          string
	maxFileBytes int64
	maxFiles     int

	mu   sync.Mutex
	f    *os.File
	size int64
	seq  uint64
}

// LogConfig parameterizes OpenLog; the zero value is usable.
type LogConfig struct {
	// MaxFileBytes rotates the active file once it exceeds this size;
	// <= 0 means 8 MiB.
	MaxFileBytes int64
	// MaxFiles prunes the oldest rotated files beyond this count;
	// <= 0 means 8.
	MaxFiles int
}

// OpenLog opens (creating if needed) the trace log in dir and resumes
// after the highest existing file sequence number.
func OpenLog(dir string, cfg LogConfig) (*Log, error) {
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = 8 << 20
	}
	if cfg.MaxFiles <= 0 {
		cfg.MaxFiles = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, maxFileBytes: cfg.MaxFileBytes, maxFiles: cfg.MaxFiles}
	names, err := logFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) > 0 {
		last := names[len(names)-1]
		seq, err := logSeq(last)
		if err != nil {
			return nil, err
		}
		l.seq = seq
		f, err := os.OpenFile(filepath.Join(dir, last), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.size = f, st.Size()
	}
	return l, nil
}

// Append writes one trace as an NDJSON line, rotating first if the
// active file is full.
func (l *Log) Append(t *Trace) error {
	raw, err := json.Marshal(t)
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || l.size >= l.maxFileBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(raw)
	l.size += int64(n)
	return err
}

func (l *Log) rotateLocked() error {
	if l.f != nil {
		l.f.Close()
		l.f = nil
		l.seq++
	}
	f, err := os.OpenFile(
		filepath.Join(l.dir, fmt.Sprintf("%s%06d%s", logPrefix, l.seq, logSuffix)),
		os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	l.f, l.size = f, 0
	if st, err := f.Stat(); err == nil {
		l.size = st.Size()
	}
	// Prune the oldest files beyond the retention bound; pruning
	// failures are not append failures.
	if names, err := logFiles(l.dir); err == nil {
		for len(names) > l.maxFiles {
			os.Remove(filepath.Join(l.dir, names[0]))
			names = names[1:]
		}
	}
	return nil
}

// Close closes the active file. Further Appends reopen it.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// logFiles lists the directory's trace log files, sorted by sequence
// (name order, fixed-width sequence numbers).
func logFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, logPrefix) && strings.HasSuffix(name, logSuffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

func logSeq(name string) (uint64, error) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, logPrefix), logSuffix)
	seq, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("recorder: %s: bad trace log name: %v", name, err)
	}
	return seq, nil
}

// ReadDir reads every trace from the log files in dir, oldest first.
// Unparseable lines — the torn tail of a crashed writer, or a line
// damaged after the fact — are skipped and counted in discarded, never
// fatal: a flight recorder that refuses to replay after a crash would
// defeat its purpose.
func ReadDir(dir string) (traces []*Trace, discarded int, err error) {
	names, err := logFiles(dir)
	if err != nil {
		return nil, 0, err
	}
	if len(names) == 0 {
		return nil, 0, fmt.Errorf("recorder: no %s*%s files in %s", logPrefix, logSuffix, dir)
	}
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, discarded, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var t Trace
			if err := json.Unmarshal(line, &t); err != nil || t.TraceID == "" {
				discarded++
				continue
			}
			traces = append(traces, &t)
		}
		serr := sc.Err()
		f.Close()
		if serr != nil {
			return nil, discarded, fmt.Errorf("recorder: %s: %v", name, serr)
		}
	}
	return traces, discarded, nil
}
