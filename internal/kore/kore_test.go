package kore

import (
	"math/rand"
	"testing"

	"repro/internal/regex"
)

func TestKAndSORE(t *testing.T) {
	cases := []struct {
		re   string
		k    int
		sore bool
	}{
		{"a b c", 1, true},
		{"a b a", 2, false},
		{"(a + b)* a (a + b)", 3, false},
		{"person*", 1, true},
		{"city state country?", 1, true},
		{"<eps>", 0, true},
		{"a a a a", 4, false},
	}
	for _, c := range cases {
		e := regex.MustParse(c.re)
		if got := K(e); got != c.k {
			t.Errorf("K(%q) = %d, want %d", c.re, got, c.k)
		}
		if got := IsSORE(e); got != c.sore {
			t.Errorf("IsSORE(%q) = %v, want %v", c.re, got, c.sore)
		}
		if !IsKORE(e, c.k) || (c.k > 0 && IsKORE(e, c.k-1)) {
			t.Errorf("IsKORE(%q) inconsistent with K", c.re)
		}
	}
}

func TestDFABoundHolds(t *testing.T) {
	// Theorem 4.6(a): a k-ORE over Σ has a DFA with ≤ |Σ|·2^k states.
	g := regex.DefaultGen([]string{"a", "b", "c"})
	r := rand.New(rand.NewSource(33))
	checked := 0
	for i := 0; i < 300; i++ {
		e := g.Random(r)
		if K(e) > 7 {
			continue
		}
		if _, _, ok := DeterminizeWithinBound(e); !ok {
			states, bound, _ := DeterminizeWithinBound(e)
			t.Fatalf("bound violated for %q: %d > %d", e, states, bound)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d expressions checked", checked)
	}
}

func TestKOREContainmentIntersection(t *testing.T) {
	if !Containment(regex.MustParse("a b a"), regex.MustParse("a b? a")) {
		t.Error("aba ⊆ ab?a")
	}
	if Containment(regex.MustParse("a b? a"), regex.MustParse("a b a")) {
		t.Error("ab?a ⊄ aba")
	}
	if !Intersection(regex.MustParse("a* b a*"), regex.MustParse("a b a")) {
		t.Error("aba in both")
	}
	if Intersection(regex.MustParse("a a"), regex.MustParse("a a a")) {
		t.Error("lengths disagree")
	}
}
