package regex

import (
	"sort"

	"repro/internal/obs"
)

// Brzozowski derivatives. These provide a membership test that is independent
// of the Glushkov/automata pipeline and serves as an oracle in property-based
// tests: for every expression e and word w,
// automata.Glushkov(e).Accepts(w) must agree with regex.Matches(e, w).

// Process-wide cost counters (the derivative engine is recursive and
// pure, so it accounts globally rather than per span): derivativeSteps
// counts Derivative node visits, dedupHits counts alternatives removed
// by the similarity rule — the quantity that keeps derivative growth
// polynomial (see unionSimilar). Exported to /metrics by rwdserve.
var (
	derivativeSteps = obs.Global("regex_derivative_steps")
	dedupHits       = obs.Global("regex_similarity_dedup_hits")
)

// Derivative returns an expression for a⁻¹L(e) = { w | a·w ∈ L(e) }.
// The result is built with the simplifying constructors to keep growth in
// check; it is used for membership testing, not for syntactic analysis.
func Derivative(e *Expr, a string) *Expr {
	derivativeSteps.Inc()
	switch e.Kind {
	case Empty, Epsilon:
		return NewEmpty()
	case Symbol:
		if e.Sym == a {
			return NewEpsilon()
		}
		return NewEmpty()
	case Union:
		subs := make([]*Expr, 0, len(e.Subs))
		for _, s := range e.Subs {
			d := Derivative(s, a)
			if d.Kind != Empty {
				subs = append(subs, d)
			}
		}
		return unionSimilar(subs)
	case Concat:
		// d(e1 e2 … en) = d(e1) e2…en  +  [e1 nullable] d(e2 e3…en) …
		var parts []*Expr
		for i, s := range e.Subs {
			d := Derivative(s, a)
			if d.Kind != Empty {
				rest := append([]*Expr{d}, e.Subs[i+1:]...)
				parts = append(parts, NewConcat(cloneAll(rest)...))
			}
			if !s.Nullable() {
				break
			}
		}
		return unionSimilar(parts)
	case Star:
		d := Derivative(e.Sub(), a)
		if d.Kind == Empty {
			return NewEmpty()
		}
		return NewConcat(d, NewStar(e.Sub().Clone()))
	case Plus:
		d := Derivative(e.Sub(), a)
		if d.Kind == Empty {
			return NewEmpty()
		}
		return NewConcat(d, NewStar(e.Sub().Clone()))
	case Opt:
		return Derivative(e.Sub(), a)
	}
	panic("regex: unknown kind")
}

// unionSimilar builds a union with syntactically duplicate alternatives
// removed — Brzozowski's similarity (ACI for union). Without it the
// derivative chains of nested iteration operators duplicate alternatives
// at every step and successive word derivatives grow exponentially;
// with it they stay polynomial (the differential oracle surfaced a
// 20-second membership test on a 16-symbol word, see
// TestMatchesDerivativeNoBlowup).
func unionSimilar(subs []*Expr) *Expr {
	u := NewUnion(subs...)
	if u.Kind != Union {
		return u
	}
	seen := make(map[string]bool, len(u.Subs))
	kept := make([]*Expr, 0, len(u.Subs))
	for _, s := range u.Subs {
		k := s.String()
		if !seen[k] {
			seen[k] = true
			kept = append(kept, s)
		}
	}
	if len(kept) == len(u.Subs) {
		return u
	}
	dedupHits.Add(int64(len(u.Subs) - len(kept)))
	return NewUnion(kept...)
}

func cloneAll(es []*Expr) []*Expr {
	out := make([]*Expr, len(es))
	for i, e := range es {
		out[i] = e.Clone()
	}
	return out
}

// MatchesDerivative reports whether the word is in L(e), computed purely
// with Brzozowski derivatives. Derivatives can grow exponentially on
// adversarial inputs; use Matches for long words.
func MatchesDerivative(e *Expr, word []string) bool {
	cur := e
	for _, a := range word {
		cur = Derivative(cur, a)
		if cur.Kind == Empty {
			return false
		}
	}
	return cur.Nullable()
}

// Matches reports whether the word (a sequence of labels) is in L(e). It
// uses a memoized dynamic program over word positions — an implementation
// that is deliberately independent of the Glushkov/automata pipeline so that
// property-based tests can use it as an oracle. Complexity is
// O(|e| · |word|²).
func Matches(e *Expr, word []string) bool {
	m := &matcher{word: word, memo: map[matchKey][]int{}}
	for _, j := range m.endsFrom(e, 0) {
		if j == len(word) {
			return true
		}
	}
	return false
}

type matchKey struct {
	node *Expr
	i    int
}

type matcher struct {
	word []string
	memo map[matchKey][]int
}

// endsFrom returns the sorted set of positions j such that e matches
// word[i:j].
func (m *matcher) endsFrom(e *Expr, i int) []int {
	k := matchKey{e, i}
	if r, ok := m.memo[k]; ok {
		return r
	}
	// Seed the memo to break (harmless) cycles from degenerate recursions.
	m.memo[k] = nil
	var out []int
	switch e.Kind {
	case Empty:
	case Epsilon:
		out = []int{i}
	case Symbol:
		if i < len(m.word) && m.word[i] == e.Sym {
			out = []int{i + 1}
		}
	case Union:
		set := map[int]bool{}
		for _, s := range e.Subs {
			for _, j := range m.endsFrom(s, i) {
				set[j] = true
			}
		}
		out = sortedKeys(set)
	case Concat:
		cur := map[int]bool{i: true}
		for _, s := range e.Subs {
			next := map[int]bool{}
			for p := range cur {
				for _, j := range m.endsFrom(s, p) {
					next[j] = true
				}
			}
			cur = next
			if len(cur) == 0 {
				break
			}
		}
		out = sortedKeys(cur)
	case Star, Plus:
		sub := e.Sub()
		reached := map[int]bool{}
		frontier := []int{i}
		visited := map[int]bool{i: true}
		first := true
		for len(frontier) > 0 {
			var next []int
			for _, p := range frontier {
				for _, j := range m.endsFrom(sub, p) {
					reached[j] = true
					if !visited[j] {
						visited[j] = true
						next = append(next, j)
					}
				}
			}
			frontier = next
			first = false
		}
		_ = first
		if e.Kind == Star {
			reached[i] = true
		} else if e.Sub().Nullable() {
			reached[i] = true
		}
		out = sortedKeys(reached)
	case Opt:
		set := map[int]bool{i: true}
		for _, j := range m.endsFrom(e.Sub(), i) {
			set[j] = true
		}
		out = sortedKeys(set)
	default:
		panic("regex: unknown kind")
	}
	m.memo[k] = out
	return out
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for j := range set {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}
