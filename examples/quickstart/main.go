// Quickstart: Figures 1 and 2 of the paper, end to end.
//
// It parses the Figure 1 XML and JSON documents into the node-labeled tree
// abstraction, validates the tree against the Example 4.2 DTD and the
// Example 4.11 EDTD, and demonstrates the Figure 2 equivalence between a
// single-type EDTD and a BonXai-style pattern-based schema.
package main

import (
	"fmt"
	"log"

	"repro/internal/bonxai"
	"repro/internal/dtd"
	"repro/internal/edtd"
	"repro/internal/jsonlite"
	"repro/internal/regex"
	"repro/internal/tree"
	"repro/internal/xmllite"
)

func main() {
	// --- Figure 1: XML and JSON → labeled trees -------------------------
	el, perr := xmllite.Parse(xmllite.Figure1XML)
	if perr != nil {
		log.Fatal(perr)
	}
	xmlTree := el.AsTree()
	fmt.Println("Figure 1a XML as tree:   ", xmlTree)

	jsonTree := jsonlite.MustParse(jsonlite.Figure1JSON, jsonlite.Options{ItemLabel: "person"})
	fmt.Println("Figure 1b JSON as tree:  ", jsonTree)
	fmt.Printf("tree depth %d, size %d\n\n", xmlTree.Depth(), xmlTree.Size())

	// --- Example 4.2: DTD validation ------------------------------------
	d := dtd.New().
		AddRule("persons", regex.MustParse("person*")).
		AddRule("person", regex.MustParse("name birthplace")).
		AddRule("birthplace", regex.MustParse("city state country?")).
		AddStart("persons")
	fmt.Print("Example 4.2 DTD:\n", d)
	fmt.Println("Figure 1c valid w.r.t. DTD:", d.Validate(xmlTree) == nil)
	bad := tree.MustParse("persons(person(name))")
	fmt.Println("persons(person(name)) valid:", d.Validate(bad) == nil)
	fmt.Println()

	// --- Example 4.11: EDTD with two birthplace types -------------------
	e := edtd.New().
		AddType("persons", "persons", regex.MustParse("person*")).
		AddType("person", "person", regex.MustParse("name (birthplace-US + birthplace-Intl)")).
		AddType("name", "name", regex.NewEpsilon()).
		AddType("birthplace-US", "birthplace", regex.MustParse("city state country?")).
		AddType("birthplace-Intl", "birthplace", regex.MustParse("city state country")).
		AddType("city", "city", regex.NewEpsilon()).
		AddType("state", "state", regex.NewEpsilon()).
		AddType("country", "country", regex.NewEpsilon()).
		AddStart("persons")
	fmt.Println("Figure 1c valid w.r.t. Example 4.11 EDTD:", e.Valid(xmlTree))
	fmt.Println("EDTD is single-type (EDC):", e.IsSingleType())
	for _, v := range e.EDCViolations() {
		fmt.Println("  EDC violation:", v)
	}
	fmt.Println()

	// --- Figure 2: stEDTD ≡ pattern-based schema ------------------------
	schema := bonxai.Figure2b()
	fmt.Print("Figure 2b pattern-based schema:\n", schema)
	alphabet := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"}
	compiled := schema.ToEDTD(alphabet)
	good := tree.MustParse("a(b(e, d(g, h(j), i), f))")
	crossed := tree.MustParse("a(b(e, d(g, h(k), i), f))")
	fmt.Println("b-branch with j:   BonXai", schema.Valid(good), " compiled EDTD", compiled.Valid(good))
	fmt.Println("b-branch with k:   BonXai", schema.Valid(crossed), "compiled EDTD", compiled.Valid(crossed))
	fmt.Println("compiled EDTD is single-type:", compiled.IsSingleType())
}
