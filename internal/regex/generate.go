package regex

import "math/rand"

// Gen generates random expressions; it is used by property-based tests and
// by the corpus generators that replay the schema studies of Section 4.
type Gen struct {
	// Alphabet to draw symbols from; must be non-empty.
	Alphabet []string
	// StarProb, PlusProb, OptProb are the probabilities that a generated
	// subexpression is wrapped in the respective operator.
	StarProb, PlusProb, OptProb float64
	// UnionProb is the probability that an internal node is a union rather
	// than a concatenation.
	UnionProb float64
	// MaxDepth bounds the parse depth.
	MaxDepth int
	// MaxFanout bounds the number of children of concatenations and unions.
	MaxFanout int
}

// DefaultGen returns a generator resembling the structurally simple
// expressions observed in real DTDs (parse depth 1–9, Section 4.2.1).
func DefaultGen(alphabet []string) *Gen {
	return &Gen{
		Alphabet:  alphabet,
		StarProb:  0.2,
		PlusProb:  0.1,
		OptProb:   0.15,
		UnionProb: 0.3,
		MaxDepth:  5,
		MaxFanout: 4,
	}
}

// Random returns a random expression drawn from g using r.
func (g *Gen) Random(r *rand.Rand) *Expr {
	e := g.random(r, g.MaxDepth)
	return e
}

func (g *Gen) random(r *rand.Rand, depth int) *Expr {
	var e *Expr
	if depth <= 1 || r.Float64() < 0.35 {
		e = NewSymbol(g.Alphabet[r.Intn(len(g.Alphabet))])
	} else {
		n := 2 + r.Intn(g.MaxFanout-1)
		subs := make([]*Expr, n)
		for i := range subs {
			subs[i] = g.random(r, depth-1)
		}
		if r.Float64() < g.UnionProb {
			e = &Expr{Kind: Union, Subs: subs}
		} else {
			e = &Expr{Kind: Concat, Subs: subs}
		}
	}
	switch f := r.Float64(); {
	case f < g.StarProb:
		e = NewStar(e)
	case f < g.StarProb+g.PlusProb:
		e = NewPlus(e)
	case f < g.StarProb+g.PlusProb+g.OptProb:
		e = NewOpt(e)
	}
	return e
}

// RandomWord samples a word from L(e) using r, or returns (nil, false) if
// L(e) is empty. The maxIter bound guards against unbounded iteration
// operators; stars and pluses iterate a geometrically distributed number of
// times.
func RandomWord(e *Expr, r *rand.Rand) ([]string, bool) {
	if e.IsEmptyLanguage() {
		return nil, false
	}
	w := sample(e, r)
	if w == nil {
		w = []string{}
	}
	return w, true
}

func sample(e *Expr, r *rand.Rand) []string {
	switch e.Kind {
	case Empty:
		panic("regex: sampling from empty language")
	case Epsilon:
		return nil
	case Symbol:
		return []string{e.Sym}
	case Union:
		var nonEmpty []*Expr
		for _, s := range e.Subs {
			if !s.IsEmptyLanguage() {
				nonEmpty = append(nonEmpty, s)
			}
		}
		return sample(nonEmpty[r.Intn(len(nonEmpty))], r)
	case Concat:
		var w []string
		for _, s := range e.Subs {
			w = append(w, sample(s, r)...)
		}
		return w
	case Star:
		if e.Sub().IsEmptyLanguage() {
			return nil
		}
		var w []string
		for k := 0; k < 3 && r.Float64() < 0.5; k++ {
			w = append(w, sample(e.Sub(), r)...)
		}
		return w
	case Plus:
		w := sample(e.Sub(), r)
		for k := 0; k < 3 && r.Float64() < 0.5; k++ {
			w = append(w, sample(e.Sub(), r)...)
		}
		return w
	case Opt:
		if e.Sub().IsEmptyLanguage() || r.Float64() < 0.5 {
			return nil
		}
		return sample(e.Sub(), r)
	}
	panic("regex: unknown kind")
}
