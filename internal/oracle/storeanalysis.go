package oracle

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/loggen"
	"repro/internal/rdf"
	"repro/internal/store"
)

// storeAnalysis is the end-to-end differential check of the persistent
// corpus store: a seeded log corpus and a seeded triple graph are
// ingested, flushed (sometimes across several segments), the store is
// closed and REOPENED from disk, and the store-backed analysis — log
// lines through core.AnalyzeQueries, the stored graph through
// rdf.ComputeStats — must be byte-identical (JSON) to the in-memory
// analysis of the same data. This is the invariant the service's
// corpus-backed /v1/analyze relies on.
type storeAnalysis struct{}

func (storeAnalysis) Name() string { return "store-analysis" }

func (storeAnalysis) Description() string {
	return "store-backed analysis after reopen vs in-memory on seeded log and triple corpora"
}

func (o storeAnalysis) Trial(r *rand.Rand) *Divergence {
	srcs := loggen.Sources()
	src := srcs[r.Intn(len(srcs))]
	g := loggen.NewGen(src, r.Int63())
	n := 15 + r.Intn(25)
	qs := make([]string, 0, n+n/3)
	for i := 0; i < n; i++ {
		qs = append(qs, g.Next())
	}
	// Duplicates are the interesting case: the store must preserve them
	// (and their order) for Total/Valid/Unique to come out identical.
	for i := 0; i < n/3; i++ {
		qs = append(qs, qs[r.Intn(n)])
	}
	graph := rdf.DefaultGen().Graph(r, 30+r.Intn(120))
	// 0, 1, or 2 mid-ingest flush points split the corpora across
	// segments, exercising the multi-segment merge on the read side.
	flushes := r.Intn(3)

	if diff := storeDiff(src.Name, qs, graph, flushes); diff != "" {
		qs = shrinkList(qs, func(cand []string) bool {
			return storeDiff(src.Name, cand, graph, flushes) != ""
		})
		return &Divergence{
			Input:  fmt.Sprintf("source=%s flushes=%d queries=%q graph=%d triples", src.Name, flushes, qs, graph.Len()),
			Detail: storeDiff(src.Name, qs, graph, flushes),
		}
	}
	return nil
}

// storeDiff runs the full write → close → reopen → read → analyze cycle
// and compares against the in-memory reference, returning a description
// of the first difference ("" when byte-identical).
func storeDiff(name string, qs []string, graph *rdf.Graph, flushes int) string {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "oracle-store-*")
	if err != nil {
		return fmt.Sprintf("mkdir temp: %v", err)
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(dir)
	if err != nil {
		return fmt.Sprintf("open: %v", err)
	}
	// Ingest in interleaved slices with flushes in between, so each
	// corpus can span the memtable and several committed segments. The
	// slice bounds are computed per corpus (never from the other one),
	// so shrinking the query list does not change triple ingestion.
	triples := graph.Triples()
	rounds := flushes + 1
	for i := 0; i < rounds; i++ {
		qlo, qhi := i*len(qs)/rounds, (i+1)*len(qs)/rounds
		if _, err := st.IngestLog(ctx, "logs", qs[qlo:qhi]); err != nil {
			st.Close()
			return fmt.Sprintf("ingest log: %v", err)
		}
		tlo, thi := i*len(triples)/rounds, (i+1)*len(triples)/rounds
		if _, err := st.IngestTriples(ctx, "graph", triples[tlo:thi]); err != nil {
			st.Close()
			return fmt.Sprintf("ingest triples: %v", err)
		}
		if i+1 < rounds {
			if err := st.Flush(ctx); err != nil {
				st.Close()
				return fmt.Sprintf("flush: %v", err)
			}
		}
	}
	if err := st.Close(); err != nil {
		return fmt.Sprintf("close: %v", err)
	}

	st2, err := store.OpenExisting(dir)
	if err != nil {
		return fmt.Sprintf("reopen: %v", err)
	}
	defer st2.Close()

	lines, err := st2.LogLines(ctx, "logs")
	if err != nil {
		return fmt.Sprintf("log lines: %v", err)
	}
	if injectedBug == "store-analysis" && len(lines) > 0 {
		lines = lines[:len(lines)-1]
	}
	memRep := core.AnalyzeQueries(name, qs, 1)
	storeRep := core.AnalyzeQueries(name, lines, 1)
	if diff := jsonDiff("report", memRep, storeRep); diff != "" {
		return diff
	}

	sg, err := st2.Graph(ctx, "graph")
	if err != nil {
		return fmt.Sprintf("graph: %v", err)
	}
	memStats := rdf.ComputeStats(graph)
	storeStats := rdf.ComputeStats(sg)
	if err := sg.Err(); err != nil {
		return fmt.Sprintf("graph scan: %v", err)
	}
	return jsonDiff("rdf stats", memStats, storeStats)
}

// jsonDiff compares the canonical JSON of both values: the service
// promises byte-identical responses, so the comparison is on bytes,
// not on approximate equality.
func jsonDiff(what string, mem, stored any) string {
	a, err := json.Marshal(mem)
	if err != nil {
		return fmt.Sprintf("marshal in-memory %s: %v", what, err)
	}
	b, err := json.Marshal(stored)
	if err != nil {
		return fmt.Sprintf("marshal store-backed %s: %v", what, err)
	}
	if !bytes.Equal(a, b) {
		return fmt.Sprintf("store-backed %s differs from in-memory:\n  mem:   %s\n  store: %s", what, a, b)
	}
	return ""
}
