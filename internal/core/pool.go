package core

import (
	"sync"

	"repro/internal/loggen"
)

// RunLogStudyParallel runs the log study on a bounded worker pool: sources
// fan out concurrently, and within each source the query stream is dealt
// round-robin into cfg.Workers shards that are analyzed by independent
// workers and recombined with MergeShards. Generation itself stays
// sequential per source (the replay bag makes the stream stateful), so the
// corpus — and, after merging, every report — is byte-identical to
// RunLogStudySequential at the same Config, for any worker count.
func RunLogStudyParallel(cfg Config) []*SourceReport {
	cfg = cfg.normalized()
	sources := loggen.Sources()
	reports := make([]*SourceReport, len(sources))
	// slots caps the total number of busy goroutines — generators and
	// shard analyzers together — at cfg.Workers.
	slots := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	for i, s := range sources {
		wg.Add(1)
		go func(i int, s loggen.Source) {
			defer wg.Done()
			slots <- struct{}{}
			stream := cfg.SourceStream(i)
			<-slots
			reports[i] = analyzeSourceShards(s, stream, cfg.Workers, slots)
		}(i, s)
	}
	wg.Wait()
	return reports
}

// analyzeSourceShards analyzes one source's stream across shard workers,
// each throttled by the shared slot pool, and merges the shards.
func analyzeSourceShards(s loggen.Source, stream []string, shards int, slots chan struct{}) *SourceReport {
	parts := ShardSplit(stream, shards)
	analyzers := make([]*Analyzer, len(parts))
	var wg sync.WaitGroup
	for k, part := range parts {
		wg.Add(1)
		go func(k int, part []string) {
			defer wg.Done()
			slots <- struct{}{}
			defer func() { <-slots }()
			a := NewAnalyzer(s.Name)
			a.Report.Wikidata = s.Wikidata
			a.Report.Robotic = s.Robotic
			for _, q := range part {
				a.Ingest(q)
			}
			analyzers[k] = a
		}(k, part)
	}
	wg.Wait()
	return MergeShards(s.Name, analyzers)
}
