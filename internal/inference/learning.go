package inference

import (
	"repro/internal/automata"
	"repro/internal/regex"
)

// This file implements the learning-in-the-limit machinery of
// Definition 4.7: an algorithm A learns a class R from positive data if
// (1) S ⊆ L(A(S)) for every sample S, and (2) every e ∈ R has a
// characteristic sample Sₑ ⊆ L(e) such that A(S) ≡ e whenever
// Sₑ ⊆ S ⊆ L(e).
//
// Theorem 4.8 (Bex et al.): deterministic regular expressions — and hence
// DTDs — are NOT learnable from positive data. Theorem 4.9: deterministic
// k-OREs ARE learnable for each fixed k. The package tests exercise both
// directions empirically: CharacteristicSample below is a characteristic
// sample generator for SOREs (where InferSORE recovers the expression
// exactly), and TestGoldStyleNonLearnability shows a pair of deterministic
// expressions that no sample can separate.

// CharacteristicSample generates a sample for a SORE e such that
// InferSORE(sample) is language-equivalent to e whenever the expression is
// single-occurrence. The construction covers every state and every edge of
// the Glushkov automaton of e: one shortest word through each transition,
// plus a shortest accepted word, plus — for each loop — a word taking the
// loop twice (so that RWR discovers the iteration).
func CharacteristicSample(e *regex.Expr) Sample {
	n := automata.Glushkov(e)
	l := regex.Linearize(e)
	var sample Sample
	if w, ok := n.ShortestWitness(); ok {
		sample = append(sample, w)
	}
	// For every transition p --a--> q, produce a word: shortest path from
	// the initial state to p, then a, then shortest completion from q.
	toState := shortestPrefixes(n)
	fromState := shortestSuffixes(n)
	for p := 0; p < n.NumStates; p++ {
		if toState[p] == nil {
			continue
		}
		for _, qs := range n.Trans[p] {
			for _, q := range qs {
				if fromState[q] == nil {
					continue
				}
				w := append(append([]string{}, toState[p]...), l.Sym(q))
				w = append(w, fromState[q]...)
				sample = append(sample, w)
				// If q is reachable from itself (a loop), also pump once
				// more so counts exceed 1.
				if w2, ok := pumpOnce(n, l, q); ok {
					full := append(append([]string{}, toState[p]...), l.Sym(q))
					full = append(full, w2...)
					full = append(full, fromState[q]...)
					sample = append(sample, full)
				}
			}
		}
	}
	return dedup(sample)
}

func dedup(s Sample) Sample {
	seen := map[string]bool{}
	var out Sample
	for _, w := range s {
		k := ""
		for _, a := range w {
			k += a + "\x00"
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, w)
		}
	}
	return out
}

// shortestPrefixes returns, per state, a shortest word leading from the
// initial state to it (nil if unreachable).
func shortestPrefixes(n *automata.NFA) [][]string {
	l := make([][]string, n.NumStates)
	var queue []int
	for _, q := range n.Initial {
		l[q] = []string{}
		queue = append(queue, q)
	}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for a, ps := range n.Trans[q] {
			for _, p := range ps {
				if l[p] == nil {
					l[p] = append(append([]string{}, l[q]...), a)
					queue = append(queue, p)
				}
			}
		}
	}
	return l
}

// shortestSuffixes returns, per state, a shortest word from it to
// acceptance (nil if none).
func shortestSuffixes(n *automata.NFA) [][]string {
	// reverse BFS
	type redge struct {
		to    int
		label string
	}
	rev := make([][]redge, n.NumStates)
	for q := 0; q < n.NumStates; q++ {
		for a, ps := range n.Trans[q] {
			for _, p := range ps {
				rev[p] = append(rev[p], redge{q, a})
			}
		}
	}
	l := make([][]string, n.NumStates)
	var queue []int
	for q := range n.Final {
		l[q] = []string{}
		queue = append(queue, q)
	}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, re := range rev[q] {
			if l[re.to] == nil {
				l[re.to] = append([]string{re.label}, l[q]...)
				queue = append(queue, re.to)
			}
		}
	}
	return l
}

// pumpOnce returns a shortest non-empty word leading from q back to q, if
// one exists.
func pumpOnce(n *automata.NFA, l *regex.Linear, q int) ([]string, bool) {
	type item struct {
		state int
		word  []string
	}
	seen := map[int]bool{}
	var queue []item
	for a, ps := range n.Trans[q] {
		for _, p := range ps {
			if p == q {
				return []string{a}, true
			}
			if !seen[p] {
				seen[p] = true
				queue = append(queue, item{p, []string{a}})
			}
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for a, ps := range n.Trans[it.state] {
			for _, p := range ps {
				if p == q {
					return append(append([]string{}, it.word...), a), true
				}
				if !seen[p] {
					seen[p] = true
					queue = append(queue, item{p, append(append([]string{}, it.word...), a)})
				}
			}
		}
	}
	return nil, false
}
