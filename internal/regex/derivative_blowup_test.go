package regex

import (
	"testing"
	"time"
)

// Regression test for the exponential derivative blowup surfaced by the
// differential oracle (rwdfuzz -oracle regex-membership -replay 34):
// without union similarity (ACI dedup), successive word derivatives of
// nested iteration operators duplicated alternatives at every step and a
// single 16-symbol membership test took tens of seconds.
func TestMatchesDerivativeNoBlowup(t *testing.T) {
	e := MustParse("((a (a* c* c? a)*)+ + (b* (c* a? c c?)* b+)+)*")
	words := [][]string{
		{"a", "a", "c", "a", "a", "c", "a", "a", "c", "a", "a", "c", "a", "a", "c", "a"},
		{"b", "c", "c", "b", "b", "c", "c", "b", "b", "c", "c", "b", "b", "c", "c", "b"},
	}
	for _, w := range words {
		start := time.Now()
		got := MatchesDerivative(e, w)
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("MatchesDerivative took %v on a 16-symbol word (derivative blowup)", d)
		}
		if want := Matches(e, w); got != want {
			t.Fatalf("MatchesDerivative=%v but Matches=%v on %v", got, want, w)
		}
	}
}

// TestUnionSimilarPreservesLanguage pins the ACI dedup itself: duplicate
// and nested-union alternatives collapse without changing the language.
func TestUnionSimilarPreservesLanguage(t *testing.T) {
	a, b := NewSymbol("a"), NewSymbol("b")
	u := unionSimilar([]*Expr{a.Clone(), NewUnion(a.Clone(), b.Clone()), a.Clone()})
	if u.Kind != Union || len(u.Subs) != 2 {
		t.Fatalf("unionSimilar kept duplicates: %s", u)
	}
	for _, w := range [][]string{{"a"}, {"b"}, {"a", "b"}, {}} {
		if MatchesDerivative(u, w) != Matches(NewUnion(a, b), w) {
			t.Fatalf("unionSimilar changed the language on %v", w)
		}
	}
}
