package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // a becomes most recent
		t.Fatal("a should be present")
	}
	c.Put("c", 3) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Len != 2 || st.Capacity != 2 {
		t.Fatalf("len/cap = %d/%d", st.Len, st.Capacity)
	}
}

func TestCounters(t *testing.T) {
	c := New(4)
	c.Get("missing")
	c.Put("k", "v")
	c.Get("k")
	c.Get("k")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

func TestPutRefreshesExistingKey(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, no eviction
	c.Put("c", 3)  // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Fatalf("a = %v, want 10", v)
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache must always miss")
	}
	if st := c.Stats(); st.Misses != 1 || st.Len != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Len > 64 {
		t.Fatalf("len %d exceeds capacity", st.Len)
	}
}
