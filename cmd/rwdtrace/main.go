// Command rwdtrace queries the trace flight recorder: the retained
// span trees (with their algorithmic cost counters — states expanded,
// derivative steps, fixpoint rounds) that rwdserve records for every
// finished request.
//
// It works against either a live server's /v1/traces API or, after a
// restart or crash, the on-disk NDJSON trace log a server wrote with
// -trace-dir:
//
//	rwdtrace tail      [-url http://127.0.0.1:8080 | -trace-dir DIR] [-n 20] [-op containment] [-status 504] [-min-ms 10]
//	rwdtrace top       [-url ... | -trace-dir ...] [-by duration|states_expanded|<counter>] [-n 10]
//	rwdtrace show      [-url ... | -trace-dir ...] <trace-id>
//	rwdtrace export    -perfetto [-url ... | -trace-dir ...] [-o traces.perfetto.json]
//	rwdtrace stats     [-url ... | -trace-dir ...] [-window live|lifetime|all] [-op OP] [-engine E] [-json]
//	rwdtrace anomalies [-url ... | -trace-dir ...] [-n 20] [-json]
//
// tail prints the most recent traces one line each; top ranks them by
// duration or by a cost counter summed over the whole tree; show dumps
// one tree (the id is what a /v1/* response returned in X-Trace-Id);
// export -perfetto writes Chrome trace-event JSON loadable directly in
// Perfetto or chrome://tracing.
//
// stats and anomalies read the workload-profile engine: against a live
// server they call GET /v1/stats; against a -trace-dir they replay the
// NDJSON history through the same engine the server runs, so on-disk
// history and live windows agree by construction.
//
// Exit codes: 0 ok, 1 operational error, 2 usage error, 3 trace not
// found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/obs/recorder"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: rwdtrace <command> [flags]

commands:
  tail       print recent traces, one line each
  top        rank traces by duration or a cost counter
  show       dump one trace tree by id
  export     write the selected traces in an export format
  stats      per-op workload profiles: counts, error rates, quantiles, cost models
  anomalies  traces flagged against the fitted per-op cost models

common flags (every command):
  -url URL          query a live rwdserve (default http://127.0.0.1:8080
                    when -trace-dir is not given)
  -trace-dir DIR    read the on-disk NDJSON trace log instead of a server

run 'rwdtrace <command> -h' for the command's flags
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "tail":
		err = cmdTail(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "anomalies":
		err = cmdAnomalies(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rwdtrace: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwdtrace:", err)
		switch err.(type) {
		case notFoundError:
			os.Exit(3)
		case usageError:
			os.Exit(2)
		}
		os.Exit(1)
	}
}

type notFoundError string

func (e notFoundError) Error() string { return string(e) }

// usageError exits 2: the invocation cannot mean anything (e.g. top -by
// with a counter name no trace has ever carried).
type usageError string

func (e usageError) Error() string { return string(e) }

// source abstracts the two trace origins: a live server's query API or
// an on-disk -trace-dir written by a previous (possibly crashed) server.
type source struct {
	url string // mutually exclusive with dir
	dir string
}

// sourceFlags registers the shared -url/-trace-dir flags on fs.
func sourceFlags(fs *flag.FlagSet) *source {
	s := &source{}
	fs.StringVar(&s.url, "url", "", "base URL of a running rwdserve (default http://127.0.0.1:8080)")
	fs.StringVar(&s.dir, "trace-dir", "", "read the on-disk NDJSON trace log in this directory instead of a server")
	return s
}

func (s *source) resolve() error {
	if s.url != "" && s.dir != "" {
		return fmt.Errorf("-url and -trace-dir are mutually exclusive")
	}
	if s.url == "" && s.dir == "" {
		s.url = "http://127.0.0.1:8080"
	}
	return nil
}

// load fetches traces matching q, oldest first from a directory, query
// order from a server (the server applies q; dir mode applies it here).
func (s *source) load(q recorder.Query) ([]*recorder.Trace, error) {
	if s.dir != "" {
		traces, discarded, err := recorder.ReadDir(s.dir)
		if err != nil {
			return nil, err
		}
		if discarded > 0 {
			fmt.Fprintf(os.Stderr, "rwdtrace: %d torn/damaged log line(s) skipped\n", discarded)
		}
		return q.Apply(traces, time.Now()), nil
	}
	v := url.Values{}
	if q.Op != "" {
		v.Set("op", q.Op)
	}
	if q.Status != "" {
		v.Set("status", q.Status)
	}
	if q.MinMS > 0 {
		v.Set("min_ms", fmt.Sprintf("%g", q.MinMS))
	}
	if q.Since > 0 {
		v.Set("since", q.Since.String())
	}
	v.Set("limit", fmt.Sprintf("%d", q.Limit))
	if q.Sort != "" {
		v.Set("sort", q.Sort)
	}
	resp, err := http.Get(s.url + "/v1/traces?" + v.Encode())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET /v1/traces: status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var out struct {
		Traces []*recorder.Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

func cmdTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	src := sourceFlags(fs)
	n := fs.Int("n", 20, "number of traces to print")
	op := fs.String("op", "", "filter: trace op (containment, analyze, ...)")
	status := fs.String("status", "", "filter: HTTP status code (200, 504, ...)")
	minMS := fs.Float64("min-ms", 0, "filter: minimum duration in milliseconds")
	since := fs.Duration("since", 0, "filter: only traces started within this window (e.g. 10m)")
	fs.Parse(args)
	if err := src.resolve(); err != nil {
		return err
	}
	traces, err := src.load(recorder.Query{
		Op: *op, Status: *status, MinMS: *minMS, Since: *since,
		Limit: *n, Sort: recorder.SortRecent,
	})
	if err != nil {
		return err
	}
	printTraceLines(traces)
	return nil
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	src := sourceFlags(fs)
	n := fs.Int("n", 10, "number of traces to print")
	by := fs.String("by", "duration", "ranking key: duration, or a cost counter name summed over the tree (states_expanded, derivative_steps, ...)")
	op := fs.String("op", "", "filter: trace op")
	status := fs.String("status", "", "filter: HTTP status code")
	fs.Parse(args)
	if err := src.resolve(); err != nil {
		return err
	}
	// Fetch a generous window and rank client-side so -by works for any
	// counter, not only the server's sort keys.
	q := recorder.Query{Op: *op, Status: *status, Limit: -1, Sort: recorder.SortSlowest}
	if src.url != "" {
		q.Limit = 10000
	}
	traces, err := src.load(q)
	if err != nil {
		return err
	}
	if *by != "duration" {
		if err := checkCounterKnown(traces, *by); err != nil {
			return err
		}
		sort.SliceStable(traces, func(i, j int) bool {
			return recorder.CounterSum(traces[i].Root, *by) > recorder.CounterSum(traces[j].Root, *by)
		})
	}
	if len(traces) > *n {
		traces = traces[:*n]
	}
	if *by != "duration" {
		for _, t := range traces {
			fmt.Printf("%-16s %-18s %6s %10.2fms  %s=%d\n",
				t.TraceID, t.Op, t.Status, t.DurationMS, *by, recorder.CounterSum(t.Root, *by))
		}
		return nil
	}
	printTraceLines(traces)
	return nil
}

// checkCounterKnown returns a usageError when no loaded trace carries a
// counter named by — ranking by it would silently produce an arbitrary
// order. The error lists every counter the traces do carry so the user
// can correct the flag without guessing.
func checkCounterKnown(traces []*recorder.Trace, by string) error {
	if len(traces) == 0 {
		return nil // nothing to rank either way
	}
	seen := map[string]bool{}
	for _, t := range traces {
		for name := range recorder.TraceCounters(t.Root) {
			seen[name] = true
		}
	}
	if seen[by] {
		return nil
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	observed := "none"
	if len(names) > 0 {
		observed = strings.Join(names, ", ")
	}
	return usageError(fmt.Sprintf("top: unknown counter %q; observed counters: %s", by, observed))
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	src := sourceFlags(fs)
	fs.Parse(args)
	if err := src.resolve(); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rwdtrace show [flags] <trace-id>")
	}
	id := fs.Arg(0)

	var t *recorder.Trace
	if src.dir != "" {
		traces, _, err := recorder.ReadDir(src.dir)
		if err != nil {
			return err
		}
		for i := len(traces) - 1; i >= 0; i-- {
			if traces[i].TraceID == id {
				t = traces[i]
				break
			}
		}
	} else {
		resp, err := http.Get(src.url + "/v1/traces/" + url.PathEscape(id))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			t = &recorder.Trace{}
			if err := json.NewDecoder(resp.Body).Decode(t); err != nil {
				return err
			}
		case http.StatusNotFound:
			// fall through to the shared not-found error below
		default:
			raw, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("GET /v1/traces/%s: status %d: %s", id, resp.StatusCode, strings.TrimSpace(string(raw)))
		}
	}
	if t == nil {
		return notFoundError(fmt.Sprintf("trace %q not found (evicted, or never recorded)", id))
	}
	fmt.Printf("trace %s  op=%s status=%s start=%s dur=%.2fms\n",
		t.TraceID, t.Op, t.Status, t.Start.Format(time.RFC3339Nano), t.DurationMS)
	return obs.WriteTree(os.Stdout, t.Root)
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	src := sourceFlags(fs)
	perfetto := fs.Bool("perfetto", false, "write Chrome trace-event JSON (Perfetto / chrome://tracing)")
	out := fs.String("o", "", "output file; empty writes stdout")
	n := fs.Int("n", 200, "number of most recent traces to export")
	op := fs.String("op", "", "filter: trace op")
	fs.Parse(args)
	if err := src.resolve(); err != nil {
		return err
	}
	if !*perfetto {
		return fmt.Errorf("export: pick a format (-perfetto)")
	}
	traces, err := src.load(recorder.Query{Op: *op, Limit: *n, Sort: recorder.SortRecent})
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := recorder.WritePerfetto(w, traces); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "rwdtrace: %d trace(s) -> %s\n", len(traces), *out)
	}
	return nil
}

// fetchSnapshot obtains a workload-profile snapshot. Against a live
// server it calls GET /v1/stats; against a -trace-dir it replays the
// NDJSON history through the same engine (default server configuration:
// 60s window in 10 buckets), snapshotted at the newest trace's end so
// the live window reflects the tail of the log rather than wall clock.
func fetchSnapshot(src *source, window, op, engine string) (*profile.Snapshot, error) {
	if src.dir != "" {
		traces, discarded, err := recorder.ReadDir(src.dir)
		if err != nil {
			return nil, err
		}
		if discarded > 0 {
			fmt.Fprintf(os.Stderr, "rwdtrace: %d torn/damaged log line(s) skipped\n", discarded)
		}
		eng := profile.Replay(traces, profile.Config{})
		return eng.Snapshot(eng.LastSeen(), window, profile.Filter{Op: op, Engine: engine}), nil
	}
	v := url.Values{}
	if window != "" {
		v.Set("window", window)
	}
	if op != "" {
		v.Set("op", op)
	}
	if engine != "" {
		v.Set("engine", engine)
	}
	resp, err := http.Get(src.url + "/v1/stats?" + v.Encode())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET /v1/stats: status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	snap := &profile.Snapshot{}
	if err := json.NewDecoder(resp.Body).Decode(snap); err != nil {
		return nil, err
	}
	return snap, nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	src := sourceFlags(fs)
	window := fs.String("window", profile.WindowAll, "live, lifetime, or all")
	op := fs.String("op", "", "filter: trace op")
	engine := fs.String("engine", "", `filter: engine label ("-" selects profiles where no engine ran)`)
	asJSON := fs.Bool("json", false, "emit the raw snapshot JSON instead of tables")
	fs.Parse(args)
	if err := src.resolve(); err != nil {
		return err
	}
	switch *window {
	case profile.WindowLive, profile.WindowLifetime, profile.WindowAll:
	default:
		return usageError(fmt.Sprintf("stats: -window %q (want %s, %s, or %s)",
			*window, profile.WindowLive, profile.WindowLifetime, profile.WindowAll))
	}
	snap, err := fetchSnapshot(src, *window, *op, *engine)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	fmt.Printf("observed %d trace(s), %d anomaly(ies) flagged; window %.0fs; sketch rel. error %.2f%%\n",
		snap.Observed, snap.AnomaliesTotal, snap.WindowSeconds, 100*snap.SketchRelError)
	if len(snap.Window) > 0 {
		fmt.Printf("\nlive window (last %.0fs):\n", snap.WindowSeconds)
		printProfileTable(snap.Window)
	}
	if len(snap.Lifetime) > 0 {
		fmt.Printf("\nlifetime:\n")
		printProfileTable(snap.Lifetime)
		for _, row := range snap.Lifetime {
			for _, ex := range row.Exemplars {
				fmt.Printf("  exemplar %-14s %-10s %-7s %-16s %9.2fms\n",
					row.Op, engineLabel(row.Engine), ex.Band, ex.TraceID, ex.DurationMS)
			}
		}
	}
	if len(snap.Models) > 0 {
		fmt.Printf("\ncost models (duration_ms ~ intercept + slope*counter):\n")
		for _, m := range snap.Models {
			fmt.Printf("  %-14s %.3f + %.6f*%s  (r2=%.3f, residual sd=%.2fms, n=%d)\n",
				m.Op, m.InterceptMS, m.SlopeMS, m.Counter, m.R2, m.ResidualStdMS, m.Samples)
		}
	}
	if snap.AnomaliesTotal > 0 {
		fmt.Printf("\n%d anomaly(ies) flagged; run 'rwdtrace anomalies' for details\n", snap.AnomaliesTotal)
	}
	return nil
}

func cmdAnomalies(args []string) error {
	fs := flag.NewFlagSet("anomalies", flag.ExitOnError)
	src := sourceFlags(fs)
	n := fs.Int("n", 20, "number of anomalies to print, newest first")
	op := fs.String("op", "", "filter: trace op")
	asJSON := fs.Bool("json", false, "emit the anomalies as JSON instead of lines")
	fs.Parse(args)
	if err := src.resolve(); err != nil {
		return err
	}
	snap, err := fetchSnapshot(src, profile.WindowLifetime, *op, "")
	if err != nil {
		return err
	}
	anomalies := snap.Anomalies
	if len(anomalies) > *n {
		anomalies = anomalies[:*n]
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(anomalies)
	}
	if len(anomalies) == 0 {
		fmt.Printf("no anomalies flagged (%d trace(s) observed)\n", snap.Observed)
		return nil
	}
	for _, a := range anomalies {
		fmt.Printf("%-16s %-14s %-10s %9.2fms (predicted %8.2fms, z=%.1f)  %s=%d  %s\n",
			a.TraceID, a.Op, engineLabel(a.Engine), a.DurationMS, a.PredictedMS,
			a.Score, a.Counter, a.CounterValue, a.Start.Format("15:04:05.000"))
	}
	if int64(len(snap.Anomalies)) < snap.AnomaliesTotal {
		fmt.Printf("(%d older anomaly(ies) rotated out of the ring)\n",
			snap.AnomaliesTotal-int64(len(snap.Anomalies)))
	}
	return nil
}

// printProfileTable renders per-(op, engine) profile rows.
func printProfileTable(rows []profile.OpProfile) {
	fmt.Printf("  %-14s %-10s %8s %6s %6s %9s %9s %9s %9s\n",
		"OP", "ENGINE", "REQS", "ERR%", "TO%", "P50MS", "P90MS", "P99MS", "MAXMS")
	for _, r := range rows {
		fmt.Printf("  %-14s %-10s %8d %5.1f%% %5.1f%% %9.2f %9.2f %9.2f %9.2f\n",
			r.Op, engineLabel(r.Engine), r.Requests,
			100*r.ErrorRate, 100*r.TimeoutRate,
			r.DurationMS.P50, r.DurationMS.P90, r.DurationMS.P99, r.DurationMS.Max)
	}
}

// engineLabel renders the empty engine (no engine span ran: cache hits,
// rejected requests) the same way the engine=- filter selects it.
func engineLabel(engine string) string {
	if engine == "" {
		return "-"
	}
	return engine
}

// printTraceLines renders traces one per line: id, op, status,
// duration, start, and the headline cost counters of the tree.
func printTraceLines(traces []*recorder.Trace) {
	for _, t := range traces {
		var counters []string
		for _, name := range headlineCounters(t.Root) {
			counters = append(counters, fmt.Sprintf("%s=%d", name, recorder.CounterSum(t.Root, name)))
		}
		fmt.Printf("%-16s %-18s %6s %10.2fms  %s  %s\n",
			t.TraceID, t.Op, t.Status, t.DurationMS,
			t.Start.Format("15:04:05.000"), strings.Join(counters, " "))
	}
}

// headlineCounters collects up to three counter names from the tree,
// preferring the algorithmic cost measures the paper is about.
func headlineCounters(n *obs.Node) []string {
	seen := map[string]bool{}
	var walk func(*obs.Node)
	walk = func(n *obs.Node) {
		if n == nil {
			return
		}
		for name := range n.Counters {
			seen[name] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(n)
	preferred := []string{"states_expanded", "product_states", "antichain_pruned",
		"derivative_steps", "fixpoint_rounds", "queries_ingested"}
	var out []string
	for _, p := range preferred {
		if seen[p] {
			out = append(out, p)
			delete(seen, p)
		}
	}
	rest := make([]string, 0, len(seen))
	for name := range seen {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	out = append(out, rest...)
	if len(out) > 3 {
		out = out[:3]
	}
	return out
}
