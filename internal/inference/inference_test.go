package inference

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/chare"
	"repro/internal/determinism"
	"repro/internal/kore"
	"repro/internal/regex"
)

func sample(ws ...string) Sample {
	var s Sample
	for _, w := range ws {
		if w == "" {
			s = append(s, []string{})
		} else {
			s = append(s, strings.Fields(w))
		}
	}
	return s
}

func TestBuildSOA(t *testing.T) {
	soa := BuildSOA(sample("a b", "a b b", ""))
	for _, w := range sample("a b", "a b b", "", "a b b b") {
		if !soa.Accepts(w) {
			t.Errorf("SOA rejects %v", w)
		}
	}
	for _, w := range sample("b", "a", "b a") {
		if soa.Accepts(w) {
			t.Errorf("SOA accepts %v", w)
		}
	}
}

func TestInferSOREContainsSample(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := regex.DefaultGen([]string{"a", "b", "c", "d"})
	for i := 0; i < 150; i++ {
		e := g.Random(r)
		var s Sample
		for j := 0; j < 8; j++ {
			if w, ok := regex.RandomWord(e, r); ok {
				s = append(s, w)
			}
		}
		if len(s) == 0 {
			continue
		}
		got := InferSORE(s)
		if !kore.IsSORE(got) {
			t.Fatalf("InferSORE produced non-SORE %q", got)
		}
		for _, w := range s {
			if !regex.Matches(got, w) {
				t.Fatalf("InferSORE(%v) = %q does not contain sample word %v", s, got, w)
			}
		}
	}
}

func TestInferSOREExact(t *testing.T) {
	// Simple SORE-definable samples should be recovered exactly
	// (language-equivalent).
	cases := []struct {
		s    Sample
		want string
	}{
		{sample("a b", "a", "a b b"), "a b*"},
		{sample("a", "b"), "a + b"},
		{sample("a a", "a", "a a a"), "a+"},
		{sample("a b c"), "a b c"},
		{sample("a c", "a b c"), "a b? c"},
	}
	for _, c := range cases {
		got := InferSORE(c.s)
		if !automata.Equivalent(got, regex.MustParse(c.want)) {
			t.Errorf("InferSORE(%v) = %q, want ≡ %q", c.s, got, c.want)
		}
	}
}

func TestCharacteristicSampleRecoversSORE(t *testing.T) {
	// Theorem 4.9 in action for k = 1: from the characteristic sample,
	// InferSORE recovers the expression up to language equivalence.
	targets := []string{
		"a b* c",
		"(a + b)+ c?",
		"a? b? c?",
		"a (b + c)* d",
		"person*",
		"name birthplace",
		"city state country?",
		"(a + b) (c + d)+",
	}
	for _, s := range targets {
		e := regex.MustParse(s)
		if !kore.IsSORE(e) {
			t.Fatalf("target %q is not a SORE", s)
		}
		cs := CharacteristicSample(e)
		for _, w := range cs {
			if !regex.Matches(e, w) {
				t.Fatalf("characteristic sample word %v outside L(%q)", w, s)
			}
		}
		got := InferSORE(cs)
		if !automata.Equivalent(got, e) {
			t.Errorf("InferSORE(CharacteristicSample(%q)) = %q, not equivalent", s, got)
		}
	}
}

func TestCharacteristicSampleMonotone(t *testing.T) {
	// Definition 4.7(2): any sample between the characteristic sample and
	// the language still recovers the target.
	e := regex.MustParse("a b* c")
	cs := CharacteristicSample(e)
	extra := sample("a b b b b c", "a b b b c")
	s := append(append(Sample{}, cs...), extra...)
	got := InferSORE(s)
	if !automata.Equivalent(got, e) {
		t.Errorf("extended sample changed result to %q", got)
	}
}

func TestGoldStyleNonLearnability(t *testing.T) {
	// Theorem 4.8 (deterministic REs are not learnable from positive data)
	// manifests concretely: b* a and its sub-language {a} cannot be
	// distinguished by any finite positive sample of {a} — the inferred
	// expression for S = {a} must already decide, and adding more b*a words
	// switches the answer. We check that our learner is at least
	// *consistent* (sample-containing) on both, which is all positive data
	// allows.
	s1 := sample("a")
	s2 := sample("a", "b a", "b b a")
	e1, e2 := InferSORE(s1), InferSORE(s2)
	for _, w := range s1 {
		if !regex.Matches(e1, w) {
			t.Errorf("e1 misses %v", w)
		}
	}
	for _, w := range s2 {
		if !regex.Matches(e2, w) {
			t.Errorf("e2 misses %v", w)
		}
	}
	if automata.Equivalent(e1, e2) {
		t.Errorf("learner cannot converge on both: %q vs %q", e1, e2)
	}
}

func TestInferCHAREShape(t *testing.T) {
	cases := []struct {
		s Sample
	}{
		{sample("a b c", "a c", "a b b c")},
		{sample("x y", "y x", "x y x")},
		{sample("a", "")},
		{sample("m n o p")},
	}
	for _, c := range cases {
		e := InferCHARE(c.s)
		if !chare.IsCHARE(e) {
			t.Fatalf("InferCHARE(%v) = %q is not a CHARE", c.s, e)
		}
		if !kore.IsSORE(e) {
			t.Fatalf("InferCHARE(%v) = %q is not a SORE", c.s, e)
		}
		for _, w := range c.s {
			if !regex.Matches(e, w) {
				t.Fatalf("InferCHARE(%v) = %q misses %v", c.s, e, w)
			}
		}
	}
}

func TestInferCHAREExamples(t *testing.T) {
	e := InferCHARE(sample("a b c", "a c", "a b b c"))
	want := regex.MustParse("a b* c")
	if !automata.Equivalent(e, want) {
		t.Errorf("InferCHARE = %q, want ≡ %q", e, want)
	}
	e2 := InferCHARE(sample("x y", "y x", "x y x"))
	want2 := regex.MustParse("(x + y)+")
	if !automata.Equivalent(e2, want2) {
		t.Errorf("InferCHARE = %q, want ≡ %q", e2, want2)
	}
}

func TestInferKORE(t *testing.T) {
	// Language a b a (symbol a twice) is not SORE-definable exactly; the
	// 2-ORE learner recovers it.
	s := sample("a b a")
	e1 := InferSORE(s)
	e2 := InferKORE(s, 2)
	if got := e2.MaxOccurrences(); got > 2 {
		t.Fatalf("InferKORE(2) produced %d-ORE %q", got, e2)
	}
	for _, w := range s {
		if !regex.Matches(e1, w) || !regex.Matches(e2, w) {
			t.Fatal("k-ORE learners miss the sample")
		}
	}
	if !automata.Equivalent(e2, regex.MustParse("a b a")) {
		t.Errorf("InferKORE(2) = %q, want ≡ a b a", e2)
	}
	// The SORE learner must over-generalize here.
	if automata.Equivalent(e1, regex.MustParse("a b a")) {
		t.Errorf("SORE learner cannot be exact on a b a, got %q", e1)
	}
}

func TestInferBestKORE(t *testing.T) {
	s := sample("a b a", "a a")
	e, k := InferBestKORE(s, 3, determinism.IsDeterministic)
	if !determinism.IsDeterministic(e) {
		t.Errorf("InferBestKORE returned non-deterministic %q (k=%d)", e, k)
	}
	for _, w := range s {
		if !regex.Matches(e, w) {
			t.Errorf("result %q misses %v", e, w)
		}
	}
}

func TestInferEmptyAndEpsilon(t *testing.T) {
	if e := InferSORE(nil); e.Kind != regex.Empty {
		t.Errorf("InferSORE(∅ sample) = %q", e)
	}
	e := InferSORE(sample(""))
	if !regex.Matches(e, nil) {
		t.Errorf("InferSORE({ε}) = %q does not accept ε", e)
	}
}
