package core

import (
	"reflect"
	"testing"
)

// TestMergeShardsEqualsSequential is the shard/merge property test: for
// k ∈ {1, 2, 7, 16}, analyzing a round-robin k-split of a source's stream
// in independent analyzers and merging with MergeShards must reproduce the
// sequential SourceReport exactly — including the U side, which crosses
// shard boundaries through duplicated canonical forms.
func TestMergeShardsEqualsSequential(t *testing.T) {
	cfg := Config{Seed: 11, ScaleDiv: 200000}
	// index 0 is DBpedia9-12 (operator-set heavy), 13 is WikiRobot/OK
	// (duplicate-heavy, property-path heavy), 16 is WikiOrganic/TO (tiny,
	// forces empty shards at k = 16).
	for _, idx := range []int{0, 13, 16} {
		stream := cfg.SourceStream(idx)
		seq := AnalyzeQueries("shardtest", stream, 1)
		for _, k := range []int{1, 2, 7, 16} {
			parts := ShardSplit(stream, k)
			shards := make([]*Analyzer, len(parts))
			for i, part := range parts {
				a := NewAnalyzer("shardtest")
				for _, q := range part {
					a.Ingest(q)
				}
				shards[i] = a
			}
			got := MergeShards("shardtest", shards)
			if !reflect.DeepEqual(got, seq) {
				t.Errorf("source %d, k=%d: merged report differs from sequential\nmerged: T=%d V=%d U=%d\nseq:    T=%d V=%d U=%d",
					idx, k, got.Total, got.Valid, got.Unique, seq.Total, seq.Valid, seq.Unique)
			}
		}
	}
}

// TestMergeShardsDeduplicatesAcrossShards pins the dedup-at-merge rule on
// a hand-built corpus where the same canonical form is first-seen in every
// shard.
func TestMergeShardsDeduplicatesAcrossShards(t *testing.T) {
	const dup = "SELECT ?s WHERE { ?s ?p ?o }"
	corpus := []string{
		dup,
		"SELECT ?x WHERE { ?x :a ?y . ?y :b ?z }",
		dup,
		"SELECT  ?s  WHERE  {  ?s ?p ?o . }", // whitespace variant of dup
		"broken { query",
		dup,
	}
	seq := AnalyzeQueries("dedup", corpus, 1)
	for _, k := range []int{2, 3} {
		got := AnalyzeQueries("dedup", corpus, k)
		if !reflect.DeepEqual(got, seq) {
			t.Errorf("k=%d: %+v != sequential %+v", k, got, seq)
		}
	}
	if seq.Total != 6 || seq.Valid != 5 || seq.Unique != 2 {
		t.Fatalf("sequential baseline off: T=%d V=%d U=%d", seq.Total, seq.Valid, seq.Unique)
	}
}

// TestGroupMergeStaysAdditive guards the group-level Merge semantics: for
// distinct sources the U side is additive, not deduplicated.
func TestGroupMergeStaysAdditive(t *testing.T) {
	a := NewAnalyzer("s1")
	b := NewAnalyzer("s2")
	q := "SELECT ?s WHERE { ?s ?p ?o }"
	a.Ingest(q)
	b.Ingest(q)
	m := Merge("group", []*SourceReport{a.Report, b.Report})
	if m.Total != 2 || m.Valid != 2 || m.Unique != 2 {
		t.Errorf("group merge: T=%d V=%d U=%d, want 2/2/2", m.Total, m.Valid, m.Unique)
	}
}

// TestShardSplitRoundRobin pins the dealing order shards rely on.
func TestShardSplitRoundRobin(t *testing.T) {
	parts := ShardSplit([]string{"a", "b", "c", "d", "e"}, 2)
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	if !reflect.DeepEqual(parts[0], []string{"a", "c", "e"}) || !reflect.DeepEqual(parts[1], []string{"b", "d"}) {
		t.Errorf("round-robin split wrong: %v", parts)
	}
	// more shards than queries: the tail shards stay empty
	parts = ShardSplit([]string{"a"}, 4)
	if len(parts) != 4 || len(parts[0]) != 1 || len(parts[3]) != 0 {
		t.Errorf("oversplit wrong: %v", parts)
	}
}
