package automata

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/regex"
)

// TestAntichainAgreesWithClassicRandom differentially tests the
// antichain engine against the retained classic engine on seeded random
// expression pairs, in both directions, plus the derived equivalence.
// The dedicated oracle (internal/oracle/antichain.go) runs the same
// comparison at fuzzing scale; this is the always-on regression net.
func TestAntichainAgreesWithClassicRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := regex.DefaultGen([]string{"a", "b"})
	g.MaxDepth = 3
	g.MaxFanout = 3
	for trial := 0; trial < 400; trial++ {
		e1, e2 := g.Random(r), g.Random(r)
		if Glushkov(e1).NumStates > 10 || Glushkov(e2).NumStates > 10 {
			continue // the classic side determinizes eagerly; keep it cheap
		}
		for _, dir := range [][2]*regex.Expr{{e1, e2}, {e2, e1}} {
			want := ContainsClassic(dir[0], dir[1])
			got, err := ContainsCtx(context.Background(), dir[0], dir[1])
			if err != nil {
				t.Fatalf("ContainsCtx(%s, %s): %v", dir[0], dir[1], err)
			}
			if got != want {
				t.Fatalf("antichain Contains(%s, %s) = %v, classic = %v",
					dir[0], dir[1], got, want)
			}
		}
	}
}

// TestAntichainKnownFamilies pins the engine on the two calibrated
// adversarial families at small k, where the expected verdicts are
// known analytically.
func TestAntichainKnownFamilies(t *testing.T) {
	all := regex.MustParse("(a|b)*")
	for k := 1; k <= 8; k++ {
		blow := adversarialRight(k)
		if ok, _ := ContainsCtx(context.Background(), all, blow); ok {
			t.Fatalf("(a|b)* ⊆ blowup(%d) = true, want false", k)
		}
		if ok, _ := ContainsCtx(context.Background(), blow, all); !ok {
			t.Fatalf("blowup(%d) ⊆ (a|b)* = false, want true", k)
		}
		if ok, _ := ContainsCtx(context.Background(), blow, blow); !ok {
			t.Fatalf("blowup(%d) self-containment = false, want true", k)
		}
	}
	for k := 1; k <= 6; k++ {
		hard := regex.MustParse(AntichainHardExpr(k))
		if ok, _ := ContainsCtx(context.Background(), hard, hard); !ok {
			t.Fatalf("hard(%d) self-containment = false, want true", k)
		}
		// Different window lengths disagree on short words: a word of
		// length k+2 is in hard(k) but too short for hard(k+1).
		next := regex.MustParse(AntichainHardExpr(k + 1))
		if ok, _ := ContainsCtx(context.Background(), hard, next); ok {
			t.Fatalf("hard(%d) ⊆ hard(%d) = true, want false", k, k+1)
		}
	}
}

// TestAntichainPruningBeatsClassic runs blowup-family self-containment
// under tracing on both engines and checks the acceptance ratio: the
// lazy engine must expand at least 10× fewer subset-states than the
// eager determinization. (rwdbench -automata measures the same ratio at
// larger k for the committed BENCH_automata.json.)
func TestAntichainPruningBeatsClassic(t *testing.T) {
	e := adversarialRight(10)

	run := func(f func(context.Context) error) *obs.Node {
		tr := &obs.Tracer{}
		ctx, root := tr.StartRoot(context.Background(), "test")
		if err := f(ctx); err != nil {
			t.Fatal(err)
		}
		root.Finish()
		return root.Tree()
	}
	sum := func(n *obs.Node, counter string) (total int64) {
		var walk func(*obs.Node)
		walk = func(n *obs.Node) {
			total += n.Counters[counter]
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(n)
		return total
	}

	lazyTree := run(func(ctx context.Context) error {
		ok, err := ContainsCtx(ctx, e, e)
		if err == nil && !ok {
			t.Fatal("self-containment = false")
		}
		return err
	})
	classicTree := run(func(ctx context.Context) error {
		ok, err := ContainsClassicCtx(ctx, e, e)
		if err == nil && !ok {
			t.Fatal("classic self-containment = false")
		}
		return err
	})

	lazy := sum(lazyTree, "states_expanded")
	classic := sum(classicTree, "states_expanded")
	if lazy == 0 || classic == 0 {
		t.Fatalf("states_expanded: lazy=%d classic=%d, want both > 0", lazy, classic)
	}
	if classic < 10*lazy {
		t.Fatalf("states_expanded: lazy=%d classic=%d, want >= 10x reduction", lazy, classic)
	}
	if pruned := sum(lazyTree, "antichain_pruned"); pruned == 0 {
		t.Fatal("antichain_pruned = 0, want > 0 on the blowup family")
	}
}

// TestAntichainEdgeCases covers the determinized sink, ε, empty
// languages, and label sets that differ across the two sides — the
// places where a packed-transition-table engine can go wrong.
func TestAntichainEdgeCases(t *testing.T) {
	cases := []struct {
		e1, e2 *regex.Expr
		want   bool
		name   string
	}{
		{regex.MustParse("a?"), regex.MustParse("a"), false, "ε counterexample at the initial pair"},
		{regex.MustParse("a"), regex.MustParse("a?"), true, "nullable superset"},
		{regex.NewEpsilon(), regex.MustParse("a*"), true, "ε ⊆ a*"},
		{regex.NewEmpty(), regex.MustParse("a"), true, "∅ ⊆ anything"},
		{regex.MustParse("a"), regex.NewEmpty(), false, "nonempty ⊄ ∅"},
		{regex.MustParse("a"), regex.MustParse("b"), false, "left label unknown to the right side"},
		{regex.MustParse("a"), regex.MustParse("a|b"), true, "right label unknown to the left side"},
		{regex.MustParse("a b c"), regex.MustParse("a b"), false, "run into the sink set"},
		{regex.MustParse("(a b)*"), regex.MustParse("(a|b)*"), true, "star nesting"},
	}
	for _, c := range cases {
		got, err := ContainsCtx(context.Background(), c.e1, c.e2)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Fatalf("%s: Contains(%s, %s) = %v, want %v", c.name, c.e1, c.e2, got, c.want)
		}
		if want := ContainsClassic(c.e1, c.e2); want != c.want {
			t.Fatalf("%s: classic engine disagrees with the table (%v)", c.name, want)
		}
	}
}

// TestIntersectionWitnessAllocBound is the regression test for the BFS
// queue rewrite in IntersectionWitnessCtx: the old implementation
// copied the whole witness word into every queue item (quadratic bytes
// in the witness length) and popped with queue = queue[1:], pinning the
// backing array. On a chain instance with a witness of length n the fix
// keeps total allocation linear; the old code allocated > n²/2 * 16
// bytes in word copies alone (~18 MB at n=1500), so an 8 MB bound
// separates them cleanly.
func TestIntersectionWitnessAllocBound(t *testing.T) {
	const n = 1500
	e := regex.MustParse(strings.TrimSpace(strings.Repeat("a ", n)))
	es := []*regex.Expr{e, regex.MustParse("a*")}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	w, ok, err := IntersectionWitnessCtx(context.Background(), es...)
	runtime.ReadMemStats(&after)
	if err != nil || !ok {
		t.Fatalf("witness = %v, %v", ok, err)
	}
	if len(w) != n {
		t.Fatalf("witness length = %d, want %d", len(w), n)
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 8<<20 {
		t.Fatalf("allocated %d bytes for a length-%d witness, want <= 8 MB", alloc, n)
	}
}

// BenchmarkAntichainHard measures the engine on the family its pruning
// cannot help with — the honest worst case.
func BenchmarkAntichainHard(b *testing.B) {
	hard := regex.MustParse(AntichainHardExpr(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := ContainsCtx(context.Background(), hard, hard)
		if err != nil || !ok {
			b.Fatalf("self-containment = %v, %v", ok, err)
		}
	}
}

// BenchmarkAntichainVsClassicBlowup reports both engines on the same
// pruning-friendly instance for paired comparison via -bench.
func BenchmarkAntichainVsClassicBlowup(b *testing.B) {
	e := adversarialRight(12)
	b.Run(fmt.Sprintf("antichain/k=%d", 12), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, err := ContainsCtx(context.Background(), e, e); err != nil || !ok {
				b.Fatalf("= %v, %v", ok, err)
			}
		}
	})
	b.Run(fmt.Sprintf("classic/k=%d", 12), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, err := ContainsClassicCtx(context.Background(), e, e); err != nil || !ok {
				b.Fatalf("= %v, %v", ok, err)
			}
		}
	})
}
