package propertypath

import (
	"testing"

	"repro/internal/rdf"
)

func TestParseAndPrint(t *testing.T) {
	cases := []struct{ in, out string }{
		{"wdt:P31/wdt:P279*", "wdt:P31/wdt:P279*"},
		{"wdt:P31*", "wdt:P31*"},
		{"a|b", "a|b"},
		{"^wdt:P31", "^wdt:P31"},
		{"(a/b)*", "(a/b)*"},
		{"!(rdf:type|^rdfs:label)", "!(rdf:type|^rdfs:label)"},
		{"!a", "!(a)"},
		{"a/b?/c+", "a/b?/c+"},
		{"<http://x.org/p>", "<http://x.org/p>"},
		{"a/(b|c)", "a/(b|c)"},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := p.String(); got != c.out {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.out)
		}
	}
	for _, bad := range []string{"", "a/", "|a", "a|", "(a", "a)", "!", "^", "a**?/"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"wdt:P31*", "a*"},
		{"wdt:P31/wdt:P279*", "ab*"},
		{"wdt:P31/wdt:P31*", "aa*"},
		{"wdt:P31/wdt:P279/wdt:P31", "aba"},
		{"a/b/c", "abc"},
		{"(a|b)*", "A*"},
		{"!a", "A"},
		{"^wdt:P31", "a"},
		{"a/^b*", "ab*"},
		{"(a|b)/c*", "Aa*"}, // A does not consume a letter; c is the first letter
		{"a*/b*", "a*b*"},
	}
	for _, c := range cases {
		if got := TypeString(MustParse(c.in)); got != c.want {
			t.Errorf("TypeString(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in   string
		want Table8Row
	}{
		{"wdt:P31*", RowAStar},
		{"wdt:P31/wdt:P279*", RowABStar},
		{"wdt:P31+", RowABStar},
		{"a*/b", RowABStar}, // reverse of ab*
		{"a/b*/c*", RowABStarCStar},
		{"(a|b)*", RowCapAStar},
		{"a/b*/c", RowABStarC},
		{"a*/b*", RowAStarBStar},
		{"a/b/c*", RowABCStar},
		{"a?/b*", RowAOptBStar},
		{"(a|b)+", RowCapAPlus},
		{"(a|b)/c*", RowCapABStar},
		{"(a/b)*", RowOtherTrans},
		{"a/b/c", RowSeq},
		{"a/b/c/d/e", RowSeq},
		{"a|b", RowCapA},
		{"!a", RowCapA},
		{"(a|b)?", RowCapAOpt},
		{"a/b?/c?", RowSeqOpt},
		{"^a", RowInverse},
		{"a/b/c?", RowABCOpt},
		{"(a|b)/(c|d)", RowOtherNonTrans},
		{"c*/b/a", RowOtherTrans}, // reverse of ab c* = abc*? "c*/b/a" reversed = a/b/c* → RowABCStar
	}
	// correct the last expectation: reverse aggregation maps it to abc*.
	cases[len(cases)-1].want = RowABCStar
	for _, c := range cases {
		if got := Classify(MustParse(c.in)); got != c.want {
			t.Errorf("Classify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsTransitive(t *testing.T) {
	if !MustParse("a/b*").IsTransitive() {
		t.Error("a/b* is transitive")
	}
	if MustParse("a/b?").IsTransitive() {
		t.Error("a/b? is not transitive")
	}
}

func TestIsSimpleTransitive(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"wdt:P31/wdt:P279*", true},
		{"a*", true},
		{"a/b/c", true},
		{"(a|b)*", true},
		{"a?/b*", true},
		{"a*/b*", false},  // the paper's canonical non-member
		{"(a/b)*", false}, // starred non-atom
		{"a/b*/c*", false},
		{"(a|b)/(c|d)+", true},
	}
	for _, c := range cases {
		if got := IsSimpleTransitive(MustParse(c.in)); got != c.want {
			t.Errorf("IsSimpleTransitive(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestInCtract(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		// a* is simple-path tractable.
		{"a*", true},
		// (aa)* is the canonical NP-hard case (even-length paths).
		{"(a/a)*", false},
		// downward-closed languages are tractable.
		{"a*/b*", true},
		{"a?/b?", true},
		// single edges and short sequences are trivially tractable.
		{"a", true},
		{"a/b/c", true},
		{"a/b*", true},
		// a*ba* — tractable per BBG's trichotomy examples.
		{"a*/b/a*", true},
		// (ab)* IS closed under loop pumping (every DFA loop of (ab)* can
		// be repeated more), unlike (aa)* where pumping an odd 'a' loop
		// breaks parity.
		{"(a/b)*", true},
		{"(a/a)*", false},
	}
	for _, c := range cases {
		if got := InCtract(MustParse(c.in)); got != c.want {
			t.Errorf("InCtract(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsDownwardClosed(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"a*", true},
		{"a*/b*", true},
		{"a?/b?", true},
		{"a", false},  // deleting the edge leaves ε ∉ L
		{"a+", false}, // ε missing
		{"(a|b)*", true},
		{"a/b*", false},
	}
	for _, c := range cases {
		if got := IsDownwardClosed(MustParse(c.in)); got != c.want {
			t.Errorf("IsDownwardClosed(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestInTtractApprox(t *testing.T) {
	if !InTtractApprox(MustParse("a*")) {
		t.Error("a* should be trail-tractable")
	}
	if !InTtractApprox(MustParse("a*/b*")) {
		t.Error("a*b* should be trail-tractable (downward closed)")
	}
	if InTtractApprox(MustParse("(a/a)*")) {
		t.Error("(aa)* should not be in the approximation")
	}
}

func wikidataGraph() *rdf.Graph {
	g := rdf.NewGraph()
	// small class hierarchy: site -P31-> cls1 -P279-> cls2 -P279-> arch
	g.Add("site1", "wdt:P31", "cls1")
	g.Add("cls1", "wdt:P279", "cls2")
	g.Add("cls2", "wdt:P279", "wd:Q839954")
	g.Add("site2", "wdt:P31", "wd:Q839954")
	g.Add("site1", "wdt:P625", "coord1")
	return g
}

func TestEvalRegularSemantics(t *testing.T) {
	g := wikidataGraph()
	// The paper's example query path: wdt:P31/wdt:P279*.
	p := MustParse("wdt:P31/wdt:P279*")
	got := Eval(g, p, "site1")
	want := []string{"cls1", "cls2", "wd:Q839954"}
	if len(got) != len(want) {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Eval = %v, want %v", got, want)
		}
	}
	// site2 reaches the target directly (zero P279 steps)
	got2 := Eval(g, p, "site2")
	if len(got2) != 1 || got2[0] != "wd:Q839954" {
		t.Errorf("Eval(site2) = %v", got2)
	}
	// inverse: who is an instance of cls1?
	inv := Eval(g, MustParse("^wdt:P31"), "cls1")
	if len(inv) != 1 || inv[0] != "site1" {
		t.Errorf("inverse eval = %v", inv)
	}
	// negated property set: anything but P625
	neg := Eval(g, MustParse("!wdt:P625"), "site1")
	if len(neg) != 1 || neg[0] != "cls1" {
		t.Errorf("neg eval = %v", neg)
	}
}

func TestEvalSimpleVsTrailVsRegular(t *testing.T) {
	// cycle: x -a-> y -a-> x, plus y -a-> z.
	g := rdf.NewGraph()
	g.Add("x", "a", "y")
	g.Add("y", "a", "x")
	g.Add("y", "a", "z")
	// even-length a-paths from x
	p := MustParse("(a/a)*")
	reg := Eval(g, p, "x")
	// regular semantics: x (0 steps), x (2k steps), z (2 steps)
	if !contains(reg, "x") || !contains(reg, "z") {
		t.Errorf("regular = %v", reg)
	}
	simple := EvalSimplePaths(g, p, "x")
	// simple paths from x with even length: ε (x), x-y-z (length 2, simple) → x, z
	if !contains(simple, "x") || !contains(simple, "z") {
		t.Errorf("simple = %v", simple)
	}
	// x-y-x is NOT simple (repeats x)... but under simple-path semantics
	// the trivial empty path still yields x.
	trails := EvalTrails(g, p, "x")
	if !contains(trails, "x") || !contains(trails, "z") {
		t.Errorf("trails = %v", trails)
	}
	// a path using edge x-y twice is not a trail: x-y-x-y-z (length 4)
	// would need edge (x,a,y) twice — excluded; but it's also even-length
	// reachable via distinct edges? x→y→x→y: reuses. So "y" must NOT be in
	// any of the even-length results.
	for _, res := range [][]string{reg, simple, trails} {
		if contains(res, "y") {
			t.Errorf("y reached by even-length path: %v", res)
		}
	}
}

func TestSimplePathsStricterThanRegular(t *testing.T) {
	// long cycle where regular semantics reaches more than simple paths
	g := rdf.NewGraph()
	g.Add("1", "a", "2")
	g.Add("2", "a", "1")
	p := MustParse("a/a/a") // exactly 3 steps
	reg := Eval(g, p, "1")
	if len(reg) != 1 || reg[0] != "2" {
		t.Errorf("regular = %v", reg)
	}
	simple := EvalSimplePaths(g, p, "1")
	if len(simple) != 0 {
		t.Errorf("simple = %v, want none (3 steps must repeat a node)", simple)
	}
	trail := EvalTrails(g, p, "1")
	if len(trail) != 0 {
		t.Errorf("trail = %v, want none (3 steps must repeat an edge)", trail)
	}
}

func contains(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
