package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// apiError is an error with an HTTP status. Handlers return it instead of
// writing to the response directly so the middleware stays the single
// place that renders errors, counts them, and logs them.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) *apiError {
	return &apiError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// ctxError maps a context error to the timeout / client-gone statuses.
func ctxError(err error) *apiError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &apiError{http.StatusGatewayTimeout, "deadline exceeded"}
	}
	return &apiError{http.StatusGatewayTimeout, "request canceled"}
}

// handlerFunc is an endpoint body: it gets the deadline-bearing context
// and the raw (already size-capped) request body, and returns either a
// JSON-marshalable response or an apiError.
type handlerFunc func(ctx context.Context, body []byte) (any, *apiError)

// endpoint wraps h in the shared middleware stack: admission control,
// request-size cap, per-request deadline, root span, response rendering
// (with the span tree merged in for "explain": true), latency histogram,
// request counter, and a structured access log line.
func (s *Server) endpoint(name string, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := http.StatusOK
		traceID := ""
		defer func() {
			elapsed := time.Since(start)
			s.reqTotal.With(name, fmt.Sprintf("%d", code)).Inc()
			s.latency.With(name).Observe(elapsed.Seconds())
			// path and remote are attacker-controlled: %q-quote them so a
			// crafted URL cannot inject fake key=value pairs or newlines
			// into the log stream.
			s.log.Printf("level=info method=%s path=%q endpoint=%s code=%d dur_ms=%.2f remote=%q trace=%s",
				r.Method, r.URL.Path, name, code, float64(elapsed.Microseconds())/1000, r.RemoteAddr, traceID)
		}()

		// Admission control: shed load before reading the body so an
		// overloaded server spends no work on requests it will not serve.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rejected.With("overload").Inc()
			code = http.StatusTooManyRequests
			writeJSON(w, code, map[string]string{"error": "server overloaded, retry later"})
			return
		}

		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				s.rejected.With("too_large").Inc()
				code = http.StatusRequestEntityTooLarge
				writeJSON(w, code, map[string]string{
					"error": fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
				return
			}
			code = http.StatusBadRequest
			writeJSON(w, code, map[string]string{"error": "reading body: " + err.Error()})
			return
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.deadline(body))
		defer cancel()

		// Every admitted request runs under a root span: the engines'
		// child spans feed the rwd_span_* metrics and the slow-op log
		// whether or not the client asked for explain mode.
		ctx, span := s.tracer.StartRoot(ctx, "http."+name)
		traceID = span.TraceID()

		out, aerr := h(ctx, body)
		span.Finish()
		if aerr != nil {
			code = aerr.status
			if code == http.StatusGatewayTimeout {
				s.timeouts.With(name).Inc()
			}
			writeJSON(w, code, map[string]string{"error": aerr.msg})
			return
		}
		if explainRequested(body) {
			out = withTrace(out, span.Tree())
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// explainRequested peeks the optional "explain" field shared by every
// POST body (like deadline_ms, it lives beside the endpoint-specific
// fields).
func explainRequested(body []byte) bool {
	var peek struct {
		Explain bool `json:"explain"`
	}
	return json.Unmarshal(body, &peek) == nil && peek.Explain
}

// withTrace merges the span tree into the response object under a
// "trace" key. Responses are structs or maps that marshal to JSON
// objects; if re-marshaling fails the verdict is returned untouched
// rather than lost.
func withTrace(out any, tree *obs.Node) any {
	raw, err := json.Marshal(out)
	if err != nil {
		return out
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return out
	}
	m["trace"] = tree
	return m
}

// deadline extracts the optional deadline_ms field shared by every POST
// body, applies the default, and clamps to the configured maximum. A body
// that fails to parse gets the default; the handler will report the
// parse error itself.
func (s *Server) deadline(body []byte) time.Duration {
	var peek struct {
		DeadlineMS int `json:"deadline_ms"`
	}
	d := s.cfg.DefaultDeadline
	if json.Unmarshal(body, &peek) == nil && peek.DeadlineMS > 0 {
		d = time.Duration(peek.DeadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// runEngine runs f on its own goroutine and waits for either its result
// or ctx expiry. The decision engines with cancellation checkpoints
// (regex / k-ORE / DTD containment) return promptly on their own; for
// engines without checkpoints this still guarantees the HTTP deadline,
// at the cost of letting the goroutine run to completion in the
// background; such engines (jsonschema sampling, batch analysis) do work
// bounded by the request-size cap, so the leak is bounded too.
func runEngine(ctx context.Context, f func(ctx context.Context) (any, error)) (any, *apiError) {
	type result struct {
		v   any
		err error
	}
	done := make(chan result, 1)
	go func() {
		v, err := f(ctx)
		done <- result{v, err}
	}()
	select {
	case <-ctx.Done():
		return nil, ctxError(ctx.Err())
	case res := <-done:
		if res.err != nil {
			if ctx.Err() != nil {
				return nil, ctxError(ctx.Err())
			}
			return nil, &apiError{http.StatusInternalServerError, res.err.Error()}
		}
		return res.v, nil
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}
