package determinism

import (
	"repro/internal/automata"
	"repro/internal/regex"
)

// Descriptional-complexity experiments for Section 4.2.1: the paper
// recalls that the translation chain RE → DFA → deterministic RE has
// unavoidable exponential blow-ups at both steps (Losemann, Martens &
// Niewerth), and that the existence of a double-exponential blow-up for
// direct RE determinization is open.

// ExponentialFamily returns the classical witness of the first blow-up:
// eₙ = (a + b)* a (a + b)ⁿ (the "n-th letter from the end is a" language),
// whose minimal DFA needs at least 2ⁿ⁺¹ states while |eₙ| = O(n).
func ExponentialFamily(n int) *regex.Expr {
	ab := func() *regex.Expr {
		return regex.NewUnion(regex.NewSymbol("a"), regex.NewSymbol("b"))
	}
	parts := []*regex.Expr{regex.NewStar(ab()), regex.NewSymbol("a")}
	for i := 0; i < n; i++ {
		parts = append(parts, ab())
	}
	return regex.NewConcat(parts...)
}

// MeasureFamily returns (expression size, minimal DFA size) for eₙ,
// demonstrating the exponential gap empirically.
func MeasureFamily(n int) (exprSize, dfaStates int) {
	e := ExponentialFamily(n)
	return e.Size(), automata.ToDFA(e).NumStates
}
