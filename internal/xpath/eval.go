package xpath

import (
	"repro/internal/tree"
)

// Eval evaluates the expression over a tree for the downward navigational
// fragment (child, descendant(-or-self), self; name and * tests;
// existential path predicates combined with and/or/not). It returns the
// selected nodes in document order. Expressions outside the supported
// fragment return (nil, false).
//
// Downward XPath is exactly the fragment whose practical prevalence
// Section 5 reports (and tree patterns are the and-only special case), so
// an executable semantics for it lets the tests validate the classifiers
// against behaviour rather than syntax alone.
func Eval(e *Expr, root *tree.Node) ([]*tree.Node, bool) {
	if !e.IsDownward() {
		return nil, false
	}
	if !supported(e) {
		return nil, false
	}
	seen := map[*tree.Node]bool{}
	var out []*tree.Node
	for _, p := range e.Paths {
		for _, n := range evalPath(p, root) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	// document order
	order := map[*tree.Node]int{}
	i := 0
	root.Walk(func(n *tree.Node) {
		order[n] = i
		i++
	})
	sortNodes(out, order)
	return out, true
}

func sortNodes(ns []*tree.Node, order map[*tree.Node]int) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && order[ns[j]] < order[ns[j-1]]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func supported(e *Expr) bool {
	ok := true
	e.walkPreds(func(pr *Pred) {
		switch pr.Kind {
		case PredPath, PredAnd, PredOr, PredNot:
		default:
			ok = false
		}
	})
	return ok
}

// evalPath evaluates an absolute path from root, or a relative path with
// root as context node.
func evalPath(p *Path, root *tree.Node) []*tree.Node {
	// Absolute paths start at a virtual document node whose only child is
	// the root element; "/persons" must select the root element itself.
	doc := tree.New("\x00doc")
	doc.Children = []*tree.Node{root}
	cur := []*tree.Node{doc}
	if !p.Absolute {
		cur = []*tree.Node{root}
	}
	for _, s := range p.Steps {
		var next []*tree.Node
		seen := map[*tree.Node]bool{}
		add := func(n *tree.Node) {
			if !seen[n] {
				seen[n] = true
				next = append(next, n)
			}
		}
		for _, c := range cur {
			for _, cand := range axisNodes(s.Axis, c) {
				if !testMatches(s.Test, cand) {
					continue
				}
				if predsHold(s.Predicates, cand) {
					add(cand)
				}
			}
		}
		cur = next
	}
	return cur
}

func axisNodes(a Axis, n *tree.Node) []*tree.Node {
	switch a {
	case AxisChild:
		return n.Children
	case AxisSelf:
		return []*tree.Node{n}
	case AxisDescendant:
		var out []*tree.Node
		for _, c := range n.Children {
			c.Walk(func(m *tree.Node) { out = append(out, m) })
		}
		return out
	case AxisDescendantOrSelf:
		var out []*tree.Node
		n.Walk(func(m *tree.Node) { out = append(out, m) })
		return out
	}
	return nil
}

func testMatches(test string, n *tree.Node) bool {
	switch test {
	case "*", "node()":
		return true
	case "text()":
		return false // trees abstract text away (Example 3.1)
	default:
		return n.Label == test
	}
}

func predsHold(prs []*Pred, n *tree.Node) bool {
	for _, pr := range prs {
		if !predHolds(pr, n) {
			return false
		}
	}
	return true
}

func predHolds(pr *Pred, n *tree.Node) bool {
	switch pr.Kind {
	case PredPath:
		return len(evalPath(pr.PathVal, n)) > 0
	case PredAnd:
		return predHolds(pr.Subs[0], n) && predHolds(pr.Subs[1], n)
	case PredOr:
		return predHolds(pr.Subs[0], n) || predHolds(pr.Subs[1], n)
	case PredNot:
		return !predHolds(pr.Subs[0], n)
	}
	return false
}
