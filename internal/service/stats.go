package service

import (
	"context"
	"net/http"
	"time"

	"repro/internal/obs/profile"
)

// GET /v1/stats: the workload-profile engine's JSON snapshot — windowed
// and lifetime per-(op, engine) statistics, duration and cost-counter
// quantiles, exemplar trace ids per quantile band (resolvable via
// /v1/traces/{id}), fitted cost models, and flagged anomalies.
//
// Parameters:
//
//	window = live | lifetime | all (default all)
//	op     = exact trace op ("containment", "analyze", ...)
//	engine = engine label; "-" selects profiles where no engine ran
//
// Like /v1/traces it bypasses the admission gate: the profile exists to
// diagnose a saturated server. Its own root spans (http.stats) are
// excluded from the trace feed, so reading the stats never shifts them.
func (s *Server) handleStats(ctx context.Context, w http.ResponseWriter, r *http.Request) *apiError {
	q := r.URL.Query()
	window := q.Get("window")
	switch window {
	case "", profile.WindowLive, profile.WindowLifetime, profile.WindowAll:
	default:
		return errBadRequest("window: %q (want %s, %s, or %s)",
			window, profile.WindowLive, profile.WindowLifetime, profile.WindowAll)
	}
	snap := s.profile.Snapshot(time.Now(), window, profile.Filter{
		Op:     q.Get("op"),
		Engine: q.Get("engine"),
	})
	writeJSON(w, http.StatusOK, snap)
	return nil
}
