package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Segment file format. A segment is an immutable, sorted run of
// key/value records, flushed from the memtable or produced by
// compaction:
//
//	header (32 bytes):
//	  magic   "RWDSEG01"           8B
//	  version uint32 BE            4B  (currently 1)
//	  count   uint32 BE            4B  record count
//	  dataLen uint64 BE            8B  bytes after the header
//	  dataCRC uint32 BE            4B  CRC-32 (IEEE) of the data region
//	  hdrCRC  uint32 BE            4B  CRC-32 of the 28 header bytes above
//	data region (dataLen bytes):
//	  records, sorted by key:  [keyLen uint16 BE][key][valLen uint32 BE][val]
//	  offset table:            count × uint64 BE (record offsets into the
//	                           data region), for O(log n) binary search
//
// Segments are written to a ".tmp" name, synced, and renamed into
// place: the rename is the commit. openSegment verifies the magic,
// both CRCs, and the exact file length, so a torn or tampered segment
// is rejected as corruption rather than partially read — stray .tmp
// files from a crash are deleted at open and were never committed.
const (
	segMagic      = "RWDSEG01"
	segVersion    = 1
	segHeaderSize = 32
)

// record is one key/value pair bound for a segment.
type record struct {
	key, val []byte
}

// sortRecords orders records by key (keys are unique within a flush).
func sortRecords(recs []record) {
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].key, recs[j].key) < 0 })
}

// writeSegment builds and atomically commits a segment file at path.
func writeSegment(path string, recs []record) error {
	var data []byte
	offsets := make([]uint64, len(recs))
	for i, r := range recs {
		offsets[i] = uint64(len(data))
		data = binary.BigEndian.AppendUint16(data, uint16(len(r.key)))
		data = append(data, r.key...)
		data = binary.BigEndian.AppendUint32(data, uint32(len(r.val)))
		data = append(data, r.val...)
	}
	for _, off := range offsets {
		data = binary.BigEndian.AppendUint64(data, off)
	}

	hdr := make([]byte, 0, segHeaderSize)
	hdr = append(hdr, segMagic...)
	hdr = binary.BigEndian.AppendUint32(hdr, segVersion)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(recs)))
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(data)))
	hdr = binary.BigEndian.AppendUint32(hdr, crc32.ChecksumIEEE(data))
	hdr = binary.BigEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := failpoint("segment.write"); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(hdr); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := failpoint("segment.sync"); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := failpoint("segment.rename"); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir makes the rename durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// segment is an open, validated segment file. Reads go through the OS
// page cache via ReadAt; only the offset table lives on the heap, so a
// store much larger than RAM stays scannable.
type segment struct {
	path    string
	f       *os.File
	count   int
	offsets []uint64
	dataLen uint64
}

// openSegment validates and opens path. Any mismatch — bad magic, bad
// CRC, wrong length — returns a *CorruptError: a committed segment is
// all-or-nothing.
func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	corrupt := func(reason string) (*segment, error) {
		f.Close()
		return nil, &CorruptError{Path: path, Reason: reason}
	}
	hdr := make([]byte, segHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return corrupt("header truncated")
	}
	if string(hdr[:8]) != segMagic {
		return corrupt("bad magic")
	}
	if crc32.ChecksumIEEE(hdr[:28]) != binary.BigEndian.Uint32(hdr[28:32]) {
		return corrupt("header crc mismatch")
	}
	if v := binary.BigEndian.Uint32(hdr[8:12]); v != segVersion {
		return corrupt(fmt.Sprintf("unsupported version %d", v))
	}
	count := int(binary.BigEndian.Uint32(hdr[12:16]))
	dataLen := binary.BigEndian.Uint64(hdr[16:24])
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if uint64(st.Size()) != segHeaderSize+dataLen {
		return corrupt(fmt.Sprintf("file is %d bytes, header promises %d", st.Size(), segHeaderSize+dataLen))
	}
	if dataLen < uint64(count)*8 {
		return corrupt("offset table larger than data region")
	}
	data := make([]byte, dataLen)
	if _, err := f.ReadAt(data, segHeaderSize); err != nil {
		return corrupt("data region truncated")
	}
	if crc32.ChecksumIEEE(data) != binary.BigEndian.Uint32(hdr[24:28]) {
		return corrupt("data crc mismatch")
	}
	offsets := make([]uint64, count)
	tbl := data[dataLen-uint64(count)*8:]
	recEnd := dataLen - uint64(count)*8
	for i := range offsets {
		offsets[i] = binary.BigEndian.Uint64(tbl[i*8:])
		if offsets[i] >= recEnd && count > 0 {
			return corrupt(fmt.Sprintf("record offset %d beyond records region", offsets[i]))
		}
	}
	return &segment{path: path, f: f, count: count, offsets: offsets, dataLen: dataLen}, nil
}

func (s *segment) close() error { return s.f.Close() }

// readKey returns the i-th record's key.
func (s *segment) readKey(i int) ([]byte, error) {
	var lb [2]byte
	off := int64(segHeaderSize) + int64(s.offsets[i])
	if _, err := s.f.ReadAt(lb[:], off); err != nil {
		return nil, err
	}
	key := make([]byte, binary.BigEndian.Uint16(lb[:]))
	if _, err := s.f.ReadAt(key, off+2); err != nil {
		return nil, err
	}
	return key, nil
}

// readRecord returns the i-th record's key and value.
func (s *segment) readRecord(i int) (key, val []byte, err error) {
	key, err = s.readKey(i)
	if err != nil {
		return nil, nil, err
	}
	off := int64(segHeaderSize) + int64(s.offsets[i]) + 2 + int64(len(key))
	var lb [4]byte
	if _, err := s.f.ReadAt(lb[:], off); err != nil {
		return nil, nil, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n == 0 {
		return key, nil, nil
	}
	val = make([]byte, n)
	if _, err := s.f.ReadAt(val, off+4); err != nil {
		return nil, nil, err
	}
	return key, val, nil
}

// lowerBound returns the index of the first record with key >= target,
// counting key comparisons into compared (nil-safe).
func (s *segment) lowerBound(target []byte, compared *int64) (int, error) {
	var err error
	idx := sort.Search(s.count, func(i int) bool {
		if err != nil {
			return false
		}
		var k []byte
		k, err = s.readKey(i)
		if compared != nil {
			*compared++
		}
		return err == nil && bytes.Compare(k, target) >= 0
	})
	if err != nil {
		return 0, err
	}
	return idx, nil
}

// get returns the value stored under key and whether it exists.
func (s *segment) get(key []byte, compared *int64) ([]byte, bool, error) {
	i, err := s.lowerBound(key, compared)
	if err != nil || i >= s.count {
		return nil, false, err
	}
	k, v, err := s.readRecord(i)
	if err != nil {
		return nil, false, err
	}
	if !bytes.Equal(k, key) {
		return nil, false, nil
	}
	return v, true, nil
}

// prefixUpper returns the smallest key greater than every key with the
// given prefix (nil when the prefix is all 0xFF, meaning "scan to the
// end").
func prefixUpper(prefix []byte) []byte {
	up := append([]byte(nil), prefix...)
	for i := len(up) - 1; i >= 0; i-- {
		if up[i] != 0xFF {
			up[i]++
			return up[:i+1]
		}
	}
	return nil
}

// scanPrefix calls fn for every record whose key starts with prefix, in
// key order. fn returning false stops the scan early. checkpoint, when
// non-nil, is called every scanCheckpointEvery records and aborts the
// scan when it reports an error (cooperative cancellation).
func (s *segment) scanPrefix(prefix []byte, compared *int64, checkpoint func() error,
	fn func(key, val []byte) bool) error {
	i, err := s.lowerBound(prefix, compared)
	if err != nil {
		return err
	}
	for n := 0; i < s.count; i, n = i+1, n+1 {
		if checkpoint != nil && n%scanCheckpointEvery == scanCheckpointEvery-1 {
			if err := checkpoint(); err != nil {
				return err
			}
		}
		key, val, err := s.readRecord(i)
		if err != nil {
			return err
		}
		if compared != nil {
			*compared++
		}
		if !bytes.HasPrefix(key, prefix) {
			return nil
		}
		if !fn(key, val) {
			return nil
		}
	}
	return nil
}

// rangeSize returns the number of records whose key starts with prefix.
func (s *segment) rangeSize(prefix []byte, compared *int64) (int, error) {
	lo, err := s.lowerBound(prefix, compared)
	if err != nil {
		return 0, err
	}
	up := prefixUpper(prefix)
	if up == nil {
		return s.count - lo, nil
	}
	hi, err := s.lowerBound(up, compared)
	if err != nil {
		return 0, err
	}
	return hi - lo, nil
}

// scanCheckpointEvery is the cancellation-checkpoint stride of segment
// scans: frequent enough that a deadline interrupts a large scan in
// well under a millisecond of extra work.
const scanCheckpointEvery = 1024
