package recorder

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"
	"time"
)

// Sort orders for Query.
const (
	SortRecent  = "recent"  // newest first (default)
	SortSlowest = "slowest" // longest duration first
)

// Query selects and orders traces: the parameter set of
// GET /v1/traces and of the rwdtrace filters. The zero value matches
// everything, newest first, capped at DefaultLimit.
type Query struct {
	// Op filters on the trace op (root span name with the "http."
	// prefix trimmed, e.g. "containment"); empty matches all.
	Op string
	// Status filters on the recorded HTTP status code ("200", "504");
	// empty matches all.
	Status string
	// MinMS keeps only traces at least this many milliseconds long.
	MinMS float64
	// Since keeps only traces that started within this window of now;
	// 0 means no time filter.
	Since time.Duration
	// Limit caps the result count; 0 means DefaultLimit, < 0 means
	// unlimited.
	Limit int
	// Sort is SortRecent (default) or SortSlowest.
	Sort string
}

// DefaultLimit is the result cap applied when a query names none.
const DefaultLimit = 50

// ParseQuery reads a Query from URL parameters (op, status, min_ms,
// since, limit, sort). since accepts a Go duration ("90s", "1h").
// Parameters that cannot mean anything are rejected rather than
// silently coerced: a negative or non-finite min_ms, a negative since,
// an explicit limit=0 (use a negative limit for "unlimited"), and
// conflicting repeated sort values all return an error the handler
// surfaces as a 400.
func ParseQuery(v url.Values) (Query, error) {
	q := Query{Op: v.Get("op"), Status: v.Get("status"), Sort: v.Get("sort")}
	if s := v.Get("min_ms"); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return q, fmt.Errorf("min_ms: %v", err)
		}
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return q, fmt.Errorf("min_ms: %q (want a finite duration >= 0 in milliseconds)", s)
		}
		q.MinMS = f
	}
	if s := v.Get("since"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return q, fmt.Errorf("since: %v (want a duration like 10m)", err)
		}
		if d < 0 {
			return q, fmt.Errorf("since: %q (want a duration >= 0)", s)
		}
		q.Since = d
	}
	if s := v.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return q, fmt.Errorf("limit: %v", err)
		}
		if n == 0 {
			return q, fmt.Errorf("limit: 0 selects nothing (omit it for the default %d, or use a negative limit for unlimited)", DefaultLimit)
		}
		q.Limit = n
	}
	if sorts := v["sort"]; len(sorts) > 1 {
		for _, s := range sorts[1:] {
			if s != sorts[0] {
				return q, fmt.Errorf("sort: conflicting values %q and %q (pass sort at most once)", sorts[0], s)
			}
		}
	}
	switch q.Sort {
	case "", SortRecent, SortSlowest:
	default:
		return q, fmt.Errorf("sort: %q (want %s or %s)", q.Sort, SortRecent, SortSlowest)
	}
	return q, nil
}

// Apply filters ts (oldest first, as Snapshot and ReadDir return) and
// returns the selected traces in query order.
func (q Query) Apply(ts []*Trace, now time.Time) []*Trace {
	var out []*Trace
	cutoff := time.Time{}
	if q.Since > 0 {
		cutoff = now.Add(-q.Since)
	}
	for _, t := range ts {
		if q.Op != "" && t.Op != q.Op {
			continue
		}
		if q.Status != "" && t.Status != q.Status {
			continue
		}
		if t.DurationMS < q.MinMS {
			continue
		}
		if !cutoff.IsZero() && t.Start.Before(cutoff) {
			continue
		}
		out = append(out, t)
	}
	if q.Sort == SortSlowest {
		sort.SliceStable(out, func(i, j int) bool { return out[i].DurationMS > out[j].DurationMS })
	} else {
		// newest first; input is oldest first, so reverse
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	limit := q.Limit
	if limit == 0 {
		limit = DefaultLimit
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
