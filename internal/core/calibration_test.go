package core

import (
	"testing"

	"repro/internal/propertypath"
	"repro/internal/sparql"
)

// TestPaperShapeInvariants runs the pipeline at moderate scale and checks
// the qualitative findings of Sections 9.3–9.6 — the "who wins, by what
// factor" shape of Tables 3–8 — on the synthetic corpus. EXPERIMENTS.md
// records the full quantitative comparison.
func TestPaperShapeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is moderately expensive")
	}
	// The Valid-vs-Unique skew emerges from the replay bag, which needs a
	// few thousand queries per source to converge — run at 1:20000
	// (≈ 28k queries total).
	reports := RunLogStudy(3, 20000)
	dbp, wiki := GroupReports(reports)

	rate := func(c *Counter2, total int) float64 {
		if c == nil || total == 0 {
			return 0
		}
		return float64(c.V) / float64(total)
	}

	// Figure 3: queries with ≤ 1 triple are ~51%, ≤ 2 are ~66% overall.
	all := Merge("all", reports)
	le1 := float64(all.TripleBuckets[0].V+all.TripleBuckets[1].V) / float64(all.CountedV)
	if le1 < 0.35 || le1 > 0.65 {
		t.Errorf("≤1 triple rate = %.2f, paper ≈ 0.51", le1)
	}

	// Table 3: property paths are rare in DBpedia–BritM (0.44%) and
	// prominent in Wikidata (24.03%).
	dbpPP := rate(dbp.Features[sparql.FPropertyPath], dbp.Valid)
	wikiPP := rate(wiki.Features[sparql.FPropertyPath], wiki.Valid)
	if dbpPP > 0.03 {
		t.Errorf("DBpedia PP rate = %.4f, paper ≈ 0.0044", dbpPP)
	}
	if wikiPP < 0.15 || wikiPP > 0.35 {
		t.Errorf("Wikidata PP rate = %.3f, paper ≈ 0.24", wikiPP)
	}
	// ... and Service is negligible in DBpedia–BritM but not in Wikidata.
	if s := rate(dbp.Features[sparql.FService], dbp.Valid); s > 0.01 {
		t.Errorf("DBpedia Service rate = %.4f, paper ≈ 0", s)
	}
	if s := rate(wiki.Features[sparql.FService], wiki.Valid); s < 0.03 {
		t.Errorf("Wikidata Service rate = %.4f, paper ≈ 0.084", s)
	}

	// Table 4: the CQ+F subtotal is roughly half of DBpedia–BritM.
	sub := 0
	for _, name := range Table4Rows {
		if c := dbp.OperatorSets[name]; c != nil {
			sub += c.V
		}
	}
	if f := float64(sub) / float64(dbp.Valid); f < 0.30 || f > 0.70 {
		t.Errorf("CQ+F subtotal = %.2f, paper ≈ 0.505", f)
	}

	// Table 6: nearly all conjunctive queries are acyclic and ALL have
	// htw ≤ 3; most are free-connex.
	if dbp.CQF.Total.V > 0 {
		if f := float64(dbp.CQF.Htw3.V) / float64(dbp.CQF.Total.V); f < 0.9999 {
			t.Errorf("htw≤3 rate = %.4f, paper = 1.0000", f)
		}
		if f := float64(dbp.CQF.FCA.V) / float64(dbp.CQF.Total.V); f < 0.80 {
			t.Errorf("FCA rate = %.3f, paper ≈ 0.94", f)
		}
	}

	// Table 7: cumulative star coverage ≈ 99%; everything within tw ≤ 3.
	if dbp.GraphCQF.V > 0 {
		cumStar, cumAll := 0, 0
		for lvl := ShapeNoEdge; lvl <= ShapeStar; lvl++ {
			cumStar += dbp.ShapeWith[lvl].V
		}
		for lvl := ShapeNoEdge; lvl <= ShapeTW3; lvl++ {
			cumAll += dbp.ShapeWith[lvl].V
		}
		if f := float64(cumStar) / float64(dbp.GraphCQF.V); f < 0.93 {
			t.Errorf("≤star coverage = %.3f, paper ≈ 0.988", f)
		}
		if cumAll != dbp.GraphCQF.V {
			t.Errorf("tw≤3 must cover all graph-CQ+F queries: %d vs %d", cumAll, dbp.GraphCQF.V)
		}
		// "without constants" pushes the mass into no-edge (86.75% in the
		// paper): it must exceed the with-constants no-edge share
		if wo, wi := dbp.ShapeWithout[ShapeNoEdge].V, dbp.ShapeWith[ShapeNoEdge].V; wo <= wi {
			t.Errorf("no-edge without constants (%d) should exceed with constants (%d)", wo, wi)
		}
	}

	// Table 8: a* dominates the Valid column, sequences dominate Unique.
	if wiki.PPTotal.V > 100 {
		aStar := wiki.PPRows[propertypath.RowAStar]
		seq := wiki.PPRows[propertypath.RowSeq]
		if aStar == nil || seq == nil {
			t.Fatal("missing Table 8 rows")
		}
		if float64(aStar.V)/float64(wiki.PPTotal.V) < 0.35 {
			t.Errorf("a* Valid share = %.3f, paper ≈ 0.50", float64(aStar.V)/float64(wiki.PPTotal.V))
		}
		if float64(seq.U)/float64(wiki.PPTotal.U) < 0.45 {
			t.Errorf("sequence Unique share = %.3f, paper ≈ 0.66", float64(seq.U)/float64(wiki.PPTotal.U))
		}
		// the skew direction must match: a* is replayed, sequences are not
		if aStar.V*seq.U <= aStar.U*seq.V {
			t.Error("Valid/Unique skew between a* and sequences is missing")
		}
		// STE coverage > 99% (Section 9.6)
		if f := float64(wiki.NonSTE.V) / float64(wiki.PPTotal.V); f > 0.05 {
			t.Errorf("non-STE rate = %.4f, paper < 0.02", f)
		}
	}

	// Section 9.4: nearly all And/Filter/Optional queries are well-designed.
	if dbp.AFO.V > 0 {
		if f := float64(dbp.WellDesigned.V) / float64(dbp.AFO.V); f < 0.90 {
			t.Errorf("well-designed rate = %.3f, paper ≈ 0.987", f)
		}
	}
}
