// Treewidth study (Table 1, after Maniu, Senellart & Jog): compute lower
// and upper treewidth bounds on synthetic analogues of the five datasets.
// Deciding treewidth exactly is NP-complete, so — exactly as in the paper —
// large graphs get heuristic bounds (degeneracy/MMD+ from below,
// min-degree/min-fill elimination from above), and only small graphs are
// solved exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/graph"
	"repro/internal/graphgen"
)

func main() {
	scale := flag.Float64("scale", 0.2, "graph size factor relative to the paper's datasets")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\t#nodes\t#edges\tlower tw\tupper tw\tregime")
	for _, ds := range graphgen.Table1Datasets(*seed, *scale) {
		lb, ub := graph.Bounds(ds.Graph)
		regime := "tree-like fringe"
		switch {
		case ub <= 2*lb && lb > ds.Graph.N()/20:
			regime = "dense core"
		case ub < 40:
			regime = "near-tree"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\n",
			ds.Name, ds.Graph.N(), ds.Graph.M(), lb, ub, regime)
	}
	tw.Flush()

	fmt.Println("\nPaper (Table 1, full-size datasets):")
	fmt.Println("  HongKong   321,210 nodes  lower 32    upper 145")
	fmt.Println("  Paris    4,325,486 nodes  lower 55    upper 521")
	fmt.Println("  Wikipedia  252,335 nodes  lower 1,007 upper 19,876")
	fmt.Println("  Gnutella    65,586 nodes  lower 244   upper 9,374")
	fmt.Println("  Royal        3,007 nodes  lower 11    upper 24")
	fmt.Println("\nThe regimes reproduce at reduced scale: road networks stay low,")
	fmt.Println("web-like graphs have a dense high-treewidth core, and the genealogy")
	fmt.Println("is nearly a tree — too large for treewidth-based query algorithms in")
	fmt.Println("general, but with a tree-like fringe (Section 7.1.1).")

	// exact treewidth is feasible for small graphs: show it on a sample
	small := graphgen.Table1Datasets(*seed, 0.02)
	fmt.Println("\nExact treewidth on tiny instances (branch-and-bound):")
	for _, ds := range small {
		if ds.Graph.N() > 40 {
			continue
		}
		if exact, ok := graph.Treewidth(ds.Graph); ok {
			lb, ub := graph.Bounds(ds.Graph)
			fmt.Printf("  %-10s n=%-4d exact tw=%d (bounds [%d,%d])\n", ds.Name, ds.Graph.N(), exact, lb, ub)
		}
	}
}
