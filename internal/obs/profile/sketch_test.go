package profile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference nearest-rank quantile: the ceil(q*n)-th
// smallest element of sorted (the convention Sketch.Quantile documents).
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestSketchQuantileErrorBound pins the documented guarantee: for values
// inside the sketch range, Quantile(q) is within a relative factor of
// RelError of the exact nearest-rank quantile, across distributions that
// stress different bucket shapes.
func TestSketchQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() float64{
		"uniform":   func() float64 { return 0.01 + rng.Float64()*100 },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64() * 2) },
		"heavytail": func() float64 { return math.Pow(rng.Float64(), -1.5) },
		"tiny":      func() float64 { return 0.002 + rng.Float64()*0.01 },
	}
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for name, gen := range distributions {
		s := &Sketch{}
		values := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := gen()
			values = append(values, v)
			s.Observe(v)
		}
		sort.Float64s(values)
		for _, q := range quantiles {
			exact := exactQuantile(values, q)
			got := s.Quantile(q)
			relErr := math.Abs(got-exact) / exact
			if relErr > RelError {
				t.Errorf("%s q=%g: sketch %g vs exact %g, rel err %.4f > bound %.4f",
					name, q, got, exact, relErr, RelError)
			}
		}
	}
}

func TestSketchZerosAndExactStats(t *testing.T) {
	s := &Sketch{}
	for i := 0; i < 50; i++ {
		s.Observe(0)
	}
	for i := 1; i <= 50; i++ {
		s.Observe(float64(i))
	}
	if got := s.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got := s.Quantile(0.25); got != 0 {
		t.Errorf("Quantile(0.25) = %g, want 0 (rank inside zero bucket)", got)
	}
	if got := s.Min(); got != 0 {
		t.Errorf("Min = %g, want 0", got)
	}
	if got := s.Max(); got != 50 {
		t.Errorf("Max = %g, want 50", got)
	}
	wantSum := float64(50 * 51 / 2)
	if got := s.Sum(); got != wantSum {
		t.Errorf("Sum = %g, want %g", got, wantSum)
	}
	if got := s.Mean(); got != wantSum/100 {
		t.Errorf("Mean = %g, want %g", got, wantSum/100)
	}
	// p100 must clamp to the exact max.
	if got := s.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %g, want exactly max 50", got)
	}
}

func TestSketchEmpty(t *testing.T) {
	s := &Sketch{}
	if s.Quantile(0.5) != 0 || s.Count() != 0 || s.Mean() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
}

// TestSketchMergeEqualsCombined pins mergeability: observing two halves
// separately and merging gives the same sketch state as observing the
// union directly — the property the window ring and offline replay rely
// on.
func TestSketchMergeEqualsCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, all := &Sketch{}, &Sketch{}, &Sketch{}
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.NormFloat64())
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged exact stats differ from combined")
	}
	// Sum is float-addition-order dependent; require agreement to 1e-9
	// relative, not bitwise.
	if math.Abs(a.Sum()-all.Sum()) > 1e-9*all.Sum() {
		t.Fatalf("merged sum %g vs combined %g", a.Sum(), all.Sum())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Errorf("Quantile(%g): merged %g != combined %g", q, got, want)
		}
	}
}

func TestSketchClone(t *testing.T) {
	s := &Sketch{}
	s.Observe(1)
	s.Observe(2)
	c := s.Clone()
	s.Observe(1000)
	if c.Count() != 2 || c.Max() != 2 {
		t.Fatal("clone shares state with original")
	}
}

// TestSketchRangeClamp: values outside [2^-10, 2^30] still count, and
// their quantile estimates clamp to the exact observed extremes.
func TestSketchRangeClamp(t *testing.T) {
	s := &Sketch{}
	s.Observe(1e-6)
	s.Observe(1e12)
	if got := s.Quantile(0.5); got != 1e-6 {
		t.Errorf("below-range value: Quantile(0.5) = %g, want clamp to min 1e-6", got)
	}
	if got := s.Quantile(1); got != 1e12 {
		t.Errorf("above-range value: Quantile(1) = %g, want clamp to max 1e12", got)
	}
}
