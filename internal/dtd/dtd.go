// Package dtd implements Document Type Definitions as abstracted in
// Definition 4.1 of "Towards Theory for Real-World Data": a DTD is a triple
// (Σ, ρ, S) with ρ mapping labels to regular expressions and S a set of
// start labels; a labeled ordered tree is valid iff the root's label is in
// S and every node's child word matches ρ of its label.
//
// Besides validation the package provides the structural analyses of the
// practical studies in Sections 4.1–4.2: recursion detection (Choi: 35 of
// 60 DTDs were recursive), the maximal document depth of non-recursive DTDs
// (up to 20 in Choi's corpus), streaming validation — constant-memory
// exactly for the non-recursive case (Segoufin & Vianu, discussed in
// Section 4.1) — and DTD inference from example trees.
package dtd

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/inference"
	"repro/internal/obs"
	"repro/internal/regex"
	"repro/internal/tree"
)

// DTD is the triple (Σ, ρ, S) of Definition 4.1. Σ is implicit: the labels
// occurring in Rules and Start.
type DTD struct {
	// Rules maps each label a to the regular expression ρ(a). Labels that
	// occur in expressions but have no rule default to ρ(a) = ε (leaves).
	Rules map[string]*regex.Expr
	// Start is the set of allowed root labels.
	Start map[string]bool
}

// New returns an empty DTD.
func New() *DTD {
	return &DTD{Rules: map[string]*regex.Expr{}, Start: map[string]bool{}}
}

// AddRule sets ρ(label) = e (written label → e in the paper).
func (d *DTD) AddRule(label string, e *regex.Expr) *DTD {
	d.Rules[label] = e
	return d
}

// AddStart marks label as a start label.
func (d *DTD) AddStart(label string) *DTD {
	d.Start[label] = true
	return d
}

// Alphabet returns the sorted set Σ of labels mentioned by the DTD.
func (d *DTD) Alphabet() []string {
	set := map[string]bool{}
	for a, e := range d.Rules {
		set[a] = true
		for _, b := range e.Alphabet() {
			set[b] = true
		}
	}
	for a := range d.Start {
		set[a] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Rule returns ρ(label), defaulting to ε for labels without a rule.
func (d *DTD) Rule(label string) *regex.Expr {
	if e, ok := d.Rules[label]; ok {
		return e
	}
	return regex.NewEpsilon()
}

func (d *DTD) String() string {
	var b strings.Builder
	labels := make([]string, 0, len(d.Rules))
	for a := range d.Rules {
		labels = append(labels, a)
	}
	sort.Strings(labels)
	for _, a := range labels {
		fmt.Fprintf(&b, "%s -> %s\n", a, d.Rules[a])
	}
	starts := make([]string, 0, len(d.Start))
	for a := range d.Start {
		starts = append(starts, a)
	}
	sort.Strings(starts)
	fmt.Fprintf(&b, "start: {%s}\n", strings.Join(starts, ", "))
	return b.String()
}

// ValidationError describes why a tree is invalid.
type ValidationError struct {
	Label string   // label of the offending node ("" for a root violation)
	Word  []string // the child word that failed
	Msg   string
}

func (e *ValidationError) Error() string { return "dtd: " + e.Msg }

// Validate checks validity of t w.r.t. d (Definition 4.1). The nil error
// means valid.
func (d *DTD) Validate(t *tree.Node) error {
	if !d.Start[t.Label] {
		return &ValidationError{Msg: fmt.Sprintf("root label %q not in start labels", t.Label)}
	}
	v := &validator{d: d, dfas: map[string]*automata.DFA{}}
	return v.check(t)
}

type validator struct {
	d    *DTD
	dfas map[string]*automata.DFA
}

func (v *validator) dfa(label string) *automata.DFA {
	if d, ok := v.dfas[label]; ok {
		return d
	}
	d := automata.Determinize(automata.Glushkov(v.d.Rule(label)))
	v.dfas[label] = d
	return d
}

func (v *validator) check(n *tree.Node) error {
	w := n.ChildWord()
	if !v.dfa(n.Label).Accepts(w) {
		return &ValidationError{
			Label: n.Label,
			Word:  w,
			Msg:   fmt.Sprintf("children %v of %q do not match %s", w, n.Label, v.d.Rule(n.Label)),
		}
	}
	for _, c := range n.Children {
		if err := v.check(c); err != nil {
			return err
		}
	}
	return nil
}

// IsRecursive reports whether the DTD is recursive in the sense of
// Section 4.1: the graph with an edge (a, b) whenever b appears in ρ(a) has
// a directed cycle.
func (d *DTD) IsRecursive() bool {
	return len(d.recursiveLabels()) > 0
}

// recursiveLabels returns the labels on a cycle of the dependency graph.
func (d *DTD) recursiveLabels() map[string]bool {
	succ := map[string][]string{}
	for a, e := range d.Rules {
		succ[a] = e.Alphabet()
	}
	// A label is on a cycle iff it can reach itself.
	out := map[string]bool{}
	for a := range succ {
		if reaches(succ, a, a) {
			out[a] = true
		}
	}
	return out
}

func reaches(succ map[string][]string, from, target string) bool {
	seen := map[string]bool{}
	stack := append([]string(nil), succ[from]...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == target {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, succ[x]...)
	}
	return false
}

// Realizable returns the set of labels a for which some finite tree rooted
// at an a-labeled node is valid, computed as the least fixpoint: a is
// realizable iff L(ρ(a)) restricted to realizable labels is non-empty.
func (d *DTD) Realizable() map[string]bool {
	real, _ := d.realizableCtx(context.Background())
	return real
}

// realizableCtx is the fixpoint behind Realizable with a context check
// per label per pass: the loop is polynomial in the DTD size, but large
// adversarial DTDs still deserve a deadline.
func (d *DTD) realizableCtx(ctx context.Context) (map[string]bool, error) {
	_, span := obs.StartSpan(ctx, "dtd.realizable")
	defer span.Finish()
	rounds := span.Counter("fixpoint_rounds")
	real := map[string]bool{}
	alpha := d.Alphabet()
	for {
		rounds.Inc()
		changed := false
		for _, a := range alpha {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if real[a] {
				continue
			}
			if restrictedNonEmpty(automata.Glushkov(d.Rule(a)), real) {
				real[a] = true
				changed = true
			}
		}
		if !changed {
			return real, nil
		}
	}
}

// restrictedNonEmpty reports whether the NFA accepts a word using only
// labels in allowed.
func restrictedNonEmpty(n *automata.NFA, allowed map[string]bool) bool {
	seen := make([]bool, n.NumStates)
	stack := append([]int(nil), n.Initial...)
	for _, q := range stack {
		seen[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Final[q] {
			return true
		}
		for a, ps := range n.Trans[q] {
			if !allowed[a] {
				continue
			}
			for _, p := range ps {
				if !seen[p] {
					seen[p] = true
					stack = append(stack, p)
				}
			}
		}
	}
	return false
}

// reachableChildLabels returns the labels that occur in some word of
// L(ρ(label)) ∩ allowed*: the labels on the transitions of the trimmed,
// allowed-restricted Glushkov automaton.
func (d *DTD) reachableChildLabels(label string, allowed map[string]bool) []string {
	n := automata.Glushkov(d.Rule(label))
	// forward-reachable states using allowed labels only
	fwd := make([]bool, n.NumStates)
	stack := append([]int(nil), n.Initial...)
	for _, q := range stack {
		fwd[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for a, ps := range n.Trans[q] {
			if !allowed[a] {
				continue
			}
			for _, p := range ps {
				if !fwd[p] {
					fwd[p] = true
					stack = append(stack, p)
				}
			}
		}
	}
	// backward-reachable from final states using allowed labels only
	rev := make([][]int, n.NumStates)
	for q := 0; q < n.NumStates; q++ {
		for a, ps := range n.Trans[q] {
			if !allowed[a] {
				continue
			}
			for _, p := range ps {
				rev[p] = append(rev[p], q)
			}
		}
	}
	bwd := make([]bool, n.NumStates)
	stack = stack[:0]
	for q := range n.Final {
		bwd[q] = true
		stack = append(stack, q)
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !bwd[p] {
				bwd[p] = true
				stack = append(stack, p)
			}
		}
	}
	// collect labels of transitions on trimmed paths
	set := map[string]bool{}
	for q := 0; q < n.NumStates; q++ {
		if !fwd[q] {
			continue
		}
		for a, ps := range n.Trans[q] {
			if !allowed[a] {
				continue
			}
			for _, p := range ps {
				if bwd[p] {
					set[a] = true
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// MaxDepth returns the maximal depth of a tree valid w.r.t. the DTD, or
// (0, false) if the DTD is recursive (depth unbounded) or allows no tree.
// Choi's corpus had non-recursive DTDs allowing depths up to 20.
func (d *DTD) MaxDepth() (int, bool) {
	if d.IsRecursive() {
		return 0, false
	}
	real := d.Realizable()
	memo := map[string]int{}
	var depth func(label string) int
	depth = func(label string) int {
		if v, ok := memo[label]; ok {
			return v
		}
		best := 0
		for _, b := range d.reachableChildLabels(label, real) {
			if dep := depth(b); dep > best {
				best = dep
			}
		}
		memo[label] = best + 1
		return best + 1
	}
	best := 0
	for s := range d.Start {
		if !real[s] {
			continue
		}
		if v := depth(s); v > best {
			best = v
		}
	}
	if best == 0 {
		return 0, false
	}
	return best, true
}

// Infer learns a DTD from example trees (schema inference, Section 4.2.3):
// start labels are the observed roots; for each label, the children words
// form the sample and infer is applied (e.g. inference.InferSORE or
// inference.InferCHARE).
func Infer(trees []*tree.Node, infer func(inference.Sample) *regex.Expr) *DTD {
	d := New()
	samples := map[string]inference.Sample{}
	for _, t := range trees {
		d.AddStart(t.Label)
		t.Walk(func(n *tree.Node) {
			samples[n.Label] = append(samples[n.Label], n.ChildWord())
		})
	}
	for label, s := range samples {
		d.AddRule(label, infer(s))
	}
	return d
}
