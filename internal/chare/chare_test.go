package chare

import (
	"math/rand"
	"testing"

	"repro/internal/automata"
	"repro/internal/regex"
)

func TestParseClassification(t *testing.T) {
	cases := []struct {
		re       string
		isCHARE  bool
		fragment string
	}{
		// Paper examples from Section 4.2.2.
		{"a* a b b*", true, "RE(a,a*)"},
		{"(a + b)* a (a + b)?", true, "RE(a,(+a)?,(+a)*)"},
		{"(a* + b*)", false, ""},
		{"a b* a* a b", true, "RE(a,a*,a+)"}, // wait: no a+ here
		{"(a + b + c)*", true, "RE((+a)*)"},
		{"a (b + c)+ d?", true, "RE(a,a?,(+a)+)"},
		{"<eps>", true, "RE()"},
		{"(a b)*", false, ""},
		{"(a?) b", true, "RE(a,a?)"},
		{"((a + b)?)*", false, ""},
	}
	// fix the incorrect expectation above
	cases[3].fragment = "RE(a,a*)"
	for _, c := range cases {
		ch, ok := Parse(regex.MustParse(c.re))
		if ok != c.isCHARE {
			t.Errorf("IsCHARE(%q) = %v, want %v", c.re, ok, c.isCHARE)
			continue
		}
		if ok && ch.FragmentName() != c.fragment {
			t.Errorf("FragmentName(%q) = %q, want %q", c.re, ch.FragmentName(), c.fragment)
		}
	}
}

func TestExprRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	alpha := []string{"a", "b", "c", "d"}
	for i := 0; i < 200; i++ {
		c := RandomCHARE(r, alpha, 1+r.Intn(6))
		e := c.Expr()
		c2, ok := Parse(e)
		if !ok {
			t.Fatalf("round trip of %q not recognized as CHARE", c)
		}
		if c.String() != c2.String() {
			t.Fatalf("round trip changed %q to %q", c, c2)
		}
	}
}

func TestContainsBlocks(t *testing.T) {
	cases := []struct {
		e1, e2 string
		want   bool
	}{
		{"a a+", "a+", true},
		{"a+", "a a+", false},
		{"a a a", "a a a", true},
		{"a a a", "a a", false},
		{"a b a", "a b a", true},
		{"a a+ b", "a+ b", true},
		{"a+ b+", "a+ b+", true},
		{"a b", "a+ b+", true},
		{"a+ b", "a b", false},
		{"a a b b", "a+ b+", true},
		{"a b", "b a", false},
	}
	for _, c := range cases {
		got, m := Contains(MustParse(c.e1), MustParse(c.e2))
		if m != MethodBlocks {
			t.Errorf("Contains(%q,%q) used %v, want blocks", c.e1, c.e2, m)
		}
		if got != c.want {
			t.Errorf("Contains(%q,%q) = %v, want %v", c.e1, c.e2, got, c.want)
		}
	}
}

func TestContainsFixedLen(t *testing.T) {
	cases := []struct {
		e1, e2 string
		want   bool
	}{
		{"(a + b) c", "(a + b + d) (c + d)", true},
		{"(a + b) c", "(a + d) c", false},
		{"a b", "(a + b) (a + b)", true},
		{"a b c", "(a + b) (a + b)", false},
	}
	for _, c := range cases {
		got, m := Contains(MustParse(c.e1), MustParse(c.e2))
		if m != MethodFixedLen {
			t.Errorf("Contains(%q,%q) used %v, want fixed-length", c.e1, c.e2, m)
		}
		if got != c.want {
			t.Errorf("Contains(%q,%q) = %v, want %v", c.e1, c.e2, got, c.want)
		}
	}
}

func TestContainsGreedy(t *testing.T) {
	cases := []struct {
		e1, e2 string
		want   bool
	}{
		{"a? b?", "a? b?", true},
		{"a* b*", "(a + b)*", true},
		{"(a + b)*", "a* b*", false},
		{"a? a?", "a*", true},
		{"a+ b", "(a + b)* b?", true},
		{"a b a", "a* b? a?", true},
		{"a b a", "a? b? a?", true},
		{"a b a b", "a? b? a?", false},
		{"b a", "a? b? a?", true}, // skip the first a?, then b, then a
		{"b a b", "a? b? a?", false},
		{"(a + b)+ c?", "(a + b + c)*", true},
		{"(a + b)+", "a* b*", false},
	}
	for _, c := range cases {
		c1, c2 := MustParse(c.e1), MustParse(c.e2)
		got, m := Contains(c1, c2)
		if m != MethodGreedy {
			t.Errorf("Contains(%q,%q) used %v, want greedy", c.e1, c.e2, m)
		}
		if got != c.want {
			t.Errorf("Contains(%q,%q) = %v, want %v", c.e1, c.e2, got, c.want)
		}
	}
}

func TestContainsAgainstAutomataOracle(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	alpha := []string{"a", "b", "c"}
	fragments := [][]FactorType{
		{TypeA, TypeAPlus},
		{TypeA, TypeDisj},
		{TypeAQuestion, TypeAStar, TypeDisjStar},
		{TypeA, TypeAQuestion, TypeAStar},
		{TypeA, TypeDisjQuestion},
		nil, // all types
	}
	for _, frag := range fragments {
		for i := 0; i < 60; i++ {
			c1 := RandomCHARE(r, alpha, 1+r.Intn(4), frag...)
			c2 := RandomCHARE(r, alpha, 1+r.Intn(4), frag...)
			got, method := Contains(c1, c2)
			want := automata.Contains(c1.Expr(), c2.Expr())
			if got != want {
				t.Fatalf("Contains(%q, %q) = %v via %v, automata oracle says %v",
					c1, c2, got, method, want)
			}
		}
	}
}

func TestIntersectionSpecialized(t *testing.T) {
	cases := []struct {
		es     []string
		want   bool
		method Method
	}{
		{[]string{"a a+", "a+ a", "a a a+"}, true, MethodBlocks},
		{[]string{"a a", "a a a"}, false, MethodBlocks},
		{[]string{"a+ b", "a b+"}, true, MethodBlocks},
		{[]string{"a b", "b a"}, false, MethodBlocks},
		{[]string{"(a + b) c", "(b + d) c"}, true, MethodFixedLen},
		{[]string{"(a + b) c", "(c + d) c"}, false, MethodFixedLen},
		{[]string{"a* b", "a a* b"}, true, MethodAutomata},
	}
	for _, c := range cases {
		var cs []*CHARE
		for _, s := range c.es {
			cs = append(cs, MustParse(s))
		}
		got, m := IntersectionNonEmpty(cs...)
		if m != c.method {
			t.Errorf("IntersectionNonEmpty(%v) used %v, want %v", c.es, m, c.method)
		}
		if got != c.want {
			t.Errorf("IntersectionNonEmpty(%v) = %v, want %v", c.es, got, c.want)
		}
	}
}

func TestIntersectionAgainstAutomataOracle(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	alpha := []string{"a", "b"}
	fragments := [][]FactorType{
		{TypeA, TypeAPlus},
		{TypeA, TypeDisj},
	}
	for _, frag := range fragments {
		for i := 0; i < 80; i++ {
			n := 2 + r.Intn(2)
			cs := make([]*CHARE, n)
			es := make([]*regex.Expr, n)
			for j := range cs {
				cs[j] = RandomCHARE(r, alpha, 1+r.Intn(4), frag...)
				es[j] = cs[j].Expr()
			}
			got, _ := IntersectionNonEmpty(cs...)
			want := automata.IntersectionNonEmpty(es...)
			if got != want {
				t.Fatalf("IntersectionNonEmpty(%v) = %v, oracle %v", cs, got, want)
			}
		}
	}
}

func TestMemberRLE(t *testing.T) {
	c := MustParse("a+ b a*")
	cases := []struct {
		w    RLEWord
		want bool
	}{
		{RLEWord{{"a", 1000000000}, {"b", 1}, {"a", 999999999}}, true},
		{RLEWord{{"a", 1}, {"b", 1}}, true},
		{RLEWord{{"b", 1}}, false},
		{RLEWord{{"a", 5}, {"b", 2}}, false},
		{RLEWord{{"a", 3}, {"a", 4}, {"b", 1}}, true}, // non-normalized input
	}
	for _, cse := range cases {
		if got := MemberRLE(c, cse.w); got != cse.want {
			t.Errorf("MemberRLE(%v) = %v, want %v", cse.w, got, cse.want)
		}
	}
	// exact-count expression: huge runs must be rejected
	exact := MustParse("a a a")
	if MemberRLE(exact, RLEWord{{"a", 1000000}}) {
		t.Error("a^1000000 accepted by a a a")
	}
	if !MemberRLE(exact, RLEWord{{"a", 3}}) {
		t.Error("a^3 rejected by a a a")
	}
}

func TestMemberRLEAgainstExpansion(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	alpha := []string{"a", "b"}
	for i := 0; i < 200; i++ {
		c := RandomCHARE(r, alpha, 1+r.Intn(4))
		var w RLEWord
		for j := 0; j < r.Intn(4); j++ {
			w = append(w, RLERun{alpha[r.Intn(2)], 1 + r.Intn(6)})
		}
		var expanded []string
		for _, run := range w {
			for k := 0; k < run.Count; k++ {
				expanded = append(expanded, run.Label)
			}
		}
		if got, want := MemberRLE(c, w), regex.Matches(c.Expr(), expanded); got != want {
			t.Fatalf("MemberRLE(%q, %v) = %v, expansion says %v", c, w, got, want)
		}
	}
}

func TestFactorTypeNames(t *testing.T) {
	f := Factor{Symbols: []string{"a"}, Mod: Star}
	if f.Type().String() != "a*" {
		t.Errorf("type = %q", f.Type())
	}
	g := Factor{Symbols: []string{"a", "b"}, Mod: Plus}
	if g.Type().String() != "(+a)+" {
		t.Errorf("type = %q", g.Type())
	}
	if g.String() != "(a + b)+" {
		t.Errorf("String = %q", g.String())
	}
}
