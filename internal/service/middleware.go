package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/recorder"
)

// apiError is an error with an HTTP status. Handlers return it instead of
// writing to the response directly so the middleware stays the single
// place that renders errors, counts them, and logs them.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) *apiError {
	return &apiError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// ctxError maps a context error to its HTTP status. A deadline expiry is
// the server refusing to work past the requested budget (504); a
// cancellation means the client went away before the verdict (408,
// counted separately so timeout metrics stay honest under load tests
// that abandon connections).
func ctxError(err error) *apiError {
	if errors.Is(err, context.Canceled) {
		return &apiError{http.StatusRequestTimeout, "client closed request"}
	}
	return &apiError{http.StatusGatewayTimeout, "deadline exceeded"}
}

// engineError maps an error returned by an engine: if the request context
// has ended, the context outcome wins (the engine was likely interrupted
// mid-decision); anything else is an internal error.
func engineError(ctx context.Context, err error) *apiError {
	if ctx.Err() != nil {
		return ctxError(ctx.Err())
	}
	return &apiError{http.StatusInternalServerError, err.Error()}
}

// envelope is the shared request envelope: the fields that ride beside
// every endpoint's specific body. JSON bodies carry them inline; NDJSON
// streaming bodies are raw query logs, so the envelope moves to the URL
// query string. The middleware parses it exactly once per request.
type envelope struct {
	Explain    bool `json:"explain"`
	DeadlineMS int  `json:"deadline_ms"`
}

// request is what the middleware hands every handler: the size-capped
// body, the envelope (parsed once), whether the body is a line stream
// rather than a JSON document, the query parameters (the envelope and
// option carrier in stream mode), and the admission-slot guard.
type request struct {
	env    envelope
	body   []byte
	ndjson bool
	query  url.Values
	slot   *slotGuard
}

// handlerFunc is an endpoint body: it gets the deadline-bearing context
// and the parsed request, and returns either a JSON-marshalable response
// or an apiError.
type handlerFunc func(ctx context.Context, req *request) (any, *apiError)

// slotGuard owns one admission-semaphore slot. The HTTP goroutine holds
// it for the life of the request; if the request ends (deadline, client
// gone) while an engine goroutine is still computing — engines without
// cancellation checkpoints run to completion — the slot stays held until
// that goroutine exits. Sustained timeout traffic therefore can never
// exceed the configured in-flight cap: a server full of detached engines
// sheds new load with 429 instead of stacking unbounded background work.
type slotGuard struct {
	sem      chan struct{}
	detached *atomic.Int64 // server-wide gauge of engines outliving their request

	mu          sync.Mutex
	handlerDone bool
	engines     int // engine goroutines currently running
	released    bool
}

// engineStarted registers an engine goroutine about to run. It is called
// on the request goroutine, before the goroutine spawns, so the count
// can never be observed low.
func (g *slotGuard) engineStarted() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.engines++
	g.mu.Unlock()
}

// engineExited releases the slot if this was the last engine of a
// request whose handler already returned.
func (g *slotGuard) engineExited() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.engines--
	if g.handlerDone {
		g.detached.Add(-1)
	}
	g.maybeReleaseLocked()
	g.mu.Unlock()
}

// handlerReturned marks the HTTP goroutine done with the request; any
// engines still running are now detached and inherit the slot.
func (g *slotGuard) handlerReturned() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.handlerDone = true
	if g.engines > 0 {
		g.detached.Add(int64(g.engines))
	}
	g.maybeReleaseLocked()
	g.mu.Unlock()
}

func (g *slotGuard) maybeReleaseLocked() {
	if !g.released && g.handlerDone && g.engines == 0 {
		g.released = true
		<-g.sem
	}
}

// endpoint wraps h in the shared middleware stack: root span (with the
// trace id echoed in the X-Trace-Id response header), admission control,
// request-size cap, one envelope parse, per-request deadline, response
// rendering (with the span tree merged in for "explain": true), latency
// histogram, request/timeout/client-closed counters, and a structured
// access log line.
func (s *Server) endpoint(name string, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := http.StatusOK

		// Every request — including the ones admission control or the
		// body cap rejects — runs under a root span: its id goes out in
		// the X-Trace-Id header so any client error report can be joined
		// to the recorded trace, and its finish feeds the rwd_span_*
		// metrics, the slow-op log, and the flight recorder whether or
		// not the client asked for explain mode.
		rctx, span := s.tracer.StartRoot(r.Context(), "http."+name)
		traceID := span.TraceID()
		w.Header().Set("X-Trace-Id", traceID)
		finished := false
		finish := func() {
			if !finished {
				finished = true
				span.SetAttr(recorder.StatusAttr, strconv.Itoa(code))
				span.Finish()
			}
		}

		defer func() {
			finish()
			elapsed := time.Since(start)
			s.reqTotal.With(name, fmt.Sprintf("%d", code)).Inc()
			s.latency.With(name).Observe(elapsed.Seconds())
			switch code {
			case http.StatusGatewayTimeout:
				s.timeouts.With(name).Inc()
			case http.StatusRequestTimeout:
				s.clientClosed.With(name).Inc()
			}
			// path and remote are attacker-controlled: %q-quote them so a
			// crafted URL cannot inject fake key=value pairs or newlines
			// into the log stream.
			s.log.Printf("level=info method=%s path=%q endpoint=%s code=%d dur_ms=%.2f remote=%q trace=%s",
				r.Method, r.URL.Path, name, code, float64(elapsed.Microseconds())/1000, r.RemoteAddr, traceID)
		}()

		// Admission control: shed load before reading the body so an
		// overloaded server spends no work on requests it will not serve.
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejected.With("overload").Inc()
			code = http.StatusTooManyRequests
			writeJSON(w, code, map[string]string{"error": "server overloaded, retry later"})
			return
		}
		slot := &slotGuard{sem: s.sem, detached: &s.detached}
		defer slot.handlerReturned()

		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				s.rejected.With("too_large").Inc()
				code = http.StatusRequestEntityTooLarge
				writeJSON(w, code, map[string]string{
					"error": fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
				return
			}
			code = http.StatusBadRequest
			writeJSON(w, code, map[string]string{"error": "reading body: " + err.Error()})
			return
		}

		req := &request{body: body, slot: slot}
		req.ndjson = streamingBody(r)
		req.query = r.URL.Query()
		req.env = parseEnvelope(req)

		ctx, cancel := context.WithTimeout(rctx, s.deadline(req.env))
		defer cancel()

		out, aerr := h(ctx, req)
		if aerr != nil {
			code = aerr.status
			finish()
			writeJSON(w, code, map[string]string{"error": aerr.msg})
			return
		}
		finish()
		if req.env.Explain {
			out = withTrace(out, span.Tree())
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// streamingBody reports whether the request body is an NDJSON / plain
// line stream (a raw query log) rather than a JSON document.
func streamingBody(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(strings.ToLower(ct)) {
	case "application/x-ndjson", "application/ndjson", "text/plain":
		return true
	}
	return false
}

// parseEnvelope extracts the shared envelope exactly once per request —
// the handlers receive it instead of re-unmarshaling the body for each
// shared field, which batch-sized bodies make measurably expensive. A
// body that fails to parse gets the zero envelope; the handler reports
// the parse error itself. Stream-mode requests carry the envelope in the
// query string (?deadline_ms=…&explain=true).
func parseEnvelope(req *request) envelope {
	var env envelope
	if req.ndjson {
		if v, err := strconv.Atoi(req.query.Get("deadline_ms")); err == nil {
			env.DeadlineMS = v
		}
		env.Explain = req.query.Get("explain") == "true"
		return env
	}
	_ = json.Unmarshal(req.body, &env)
	return env
}

// withTrace merges the span tree into the response object under a
// "trace" key. Responses are structs or maps that marshal to JSON
// objects; if re-marshaling fails the verdict is returned untouched
// rather than lost.
func withTrace(out any, tree *obs.Node) any {
	raw, err := json.Marshal(out)
	if err != nil {
		return out
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return out
	}
	m["trace"] = tree
	return m
}

// deadline applies the default to the envelope's deadline and clamps to
// the configured maximum.
func (s *Server) deadline(env envelope) time.Duration {
	d := s.cfg.DefaultDeadline
	if env.DeadlineMS > 0 {
		d = time.Duration(env.DeadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// runEngine runs f on its own goroutine and waits for either its result
// or ctx expiry. The decision engines with cancellation checkpoints
// (regex / k-ORE / DTD containment, the sharded analyzer) return promptly
// on their own; for engines without checkpoints this still guarantees the
// HTTP deadline. An engine goroutine that outlives its request keeps the
// admission slot (via req.slot) until it exits, so detached engines count
// against the in-flight cap instead of silently exceeding it.
func runEngine(ctx context.Context, req *request, f func(ctx context.Context) (any, *apiError)) (any, *apiError) {
	type result struct {
		v    any
		aerr *apiError
	}
	done := make(chan result, 1)
	req.slot.engineStarted()
	go func() {
		defer req.slot.engineExited()
		v, aerr := f(ctx)
		done <- result{v, aerr}
	}()
	select {
	case <-ctx.Done():
		return nil, ctxError(ctx.Err())
	case res := <-done:
		if res.aerr != nil {
			return nil, res.aerr
		}
		return res.v, nil
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}
