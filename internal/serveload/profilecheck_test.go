package serveload

import (
	"strings"
	"testing"
)

func profileReport(rows map[string]*OpProfileSummary) *Report {
	return &Report{SchemaVersion: 1, Profile: rows}
}

func row(requests uint64, p50, p99, errRate, toRate float64) *OpProfileSummary {
	return &OpProfileSummary{
		Requests: requests, P50MS: p50, P99MS: p99,
		ErrorRate: errRate, TimeoutRate: toRate,
	}
}

func TestCompareProfilesPasses(t *testing.T) {
	base := profileReport(map[string]*OpProfileSummary{
		"containment|antichain": row(500, 2, 20, 0.01, 0),
		"analyze|analyzer":      row(200, 5, 40, 0, 0),
	})
	// Within-tolerance drift: 3x slower p99, slightly higher error rate.
	fresh := profileReport(map[string]*OpProfileSummary{
		"containment|antichain": row(450, 4, 60, 0.05, 0.01),
		"analyze|analyzer":      row(180, 3, 25, 0, 0),
	})
	if regs := CompareProfiles(base, fresh, ProfileTolerance{}); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareProfilesFlagsLatencyBlowup(t *testing.T) {
	base := profileReport(map[string]*OpProfileSummary{
		"containment|antichain": row(500, 2, 20, 0, 0),
	})
	fresh := profileReport(map[string]*OpProfileSummary{
		"containment|antichain": row(500, 50, 21, 0, 0), // p50: 25x
	})
	regs := CompareProfiles(base, fresh, ProfileTolerance{})
	if len(regs) != 1 || !strings.Contains(regs[0], "p50_ms") {
		t.Fatalf("want one p50 regression, got %v", regs)
	}
	// A matching large speedup is flagged too: the op stopped working.
	fresh = profileReport(map[string]*OpProfileSummary{
		"containment|antichain": row(500, 2, 1.5, 0, 0), // p99 collapsed 13x
	})
	regs = CompareProfiles(base, fresh, ProfileTolerance{})
	if len(regs) != 1 || !strings.Contains(regs[0], "p99_ms") {
		t.Fatalf("want one p99 regression, got %v", regs)
	}
}

func TestCompareProfilesFlagsRateDrift(t *testing.T) {
	base := profileReport(map[string]*OpProfileSummary{
		"containment|antichain": row(500, 2, 20, 0, 0.05),
	})
	fresh := profileReport(map[string]*OpProfileSummary{
		"containment|antichain": row(500, 2, 20, 0.5, 0.45),
	})
	regs := CompareProfiles(base, fresh, ProfileTolerance{})
	if len(regs) != 2 {
		t.Fatalf("want error-rate and timeout-rate regressions, got %v", regs)
	}
	joined := strings.Join(regs, "\n")
	for _, want := range []string{"error rate", "timeout rate"} {
		if !strings.Contains(joined, want) {
			t.Errorf("regressions %v do not mention %q", regs, want)
		}
	}
	// Error rates going down is an improvement, never a regression.
	if regs := CompareProfiles(fresh, base, ProfileTolerance{}); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestCompareProfilesSkipsNoise(t *testing.T) {
	base := profileReport(map[string]*OpProfileSummary{
		// Undersampled row: quantiles are meaningless at 5 requests.
		"infer|inferencer": row(5, 1, 2, 0, 0),
		// Sub-millisecond row (cache hits): ratio measures timer
		// granularity, not the server.
		"containment|-": row(500, 0.02, 0.9, 0, 0),
	})
	fresh := profileReport(map[string]*OpProfileSummary{
		"infer|inferencer": row(5, 100, 200, 1, 1),
		"containment|-":    row(500, 0.9, 0.04, 0, 0),
	})
	if regs := CompareProfiles(base, fresh, ProfileTolerance{}); len(regs) != 0 {
		t.Fatalf("noise flagged: %v", regs)
	}
}

func TestCompareProfilesFlagsVanishedOp(t *testing.T) {
	base := profileReport(map[string]*OpProfileSummary{
		"containment|antichain": row(500, 2, 20, 0, 0),
	})
	regs := CompareProfiles(base, profileReport(nil), ProfileTolerance{})
	if len(regs) != 1 || !strings.Contains(regs[0], "absent") {
		t.Fatalf("want vanished-op regression, got %v", regs)
	}
	// Undersampled on the fresh side only is flagged as such.
	fresh := profileReport(map[string]*OpProfileSummary{
		"containment|antichain": row(3, 2, 20, 0, 0),
	})
	regs = CompareProfiles(base, fresh, ProfileTolerance{})
	if len(regs) != 1 || !strings.Contains(regs[0], "undersampled") {
		t.Fatalf("want undersampled regression, got %v", regs)
	}
}

func TestCompareProfilesNoBaselineBlock(t *testing.T) {
	// Baselines from before the profile engine have no profile block;
	// the gate has nothing to compare and must pass, not crash.
	if regs := CompareProfiles(profileReport(nil), profileReport(nil), ProfileTolerance{}); regs != nil {
		t.Fatalf("want nil, got %v", regs)
	}
	if regs := CompareProfiles(nil, profileReport(nil), ProfileTolerance{}); regs != nil {
		t.Fatalf("want nil, got %v", regs)
	}
}
