// Command rwdstore manages a persistent corpus store (internal/store)
// from the command line: ingest triples or query logs, list corpora,
// print store statistics, compact segments, and verify on-disk
// integrity. The same directory can then be served by rwdserve
// (-store-dir) or analyzed offline by rwdanalyze.
//
// Usage:
//
//	rwdstore ingest -dir ./corpus.store -name logs -kind log -file queries.log
//	rwdstore ingest -dir ./corpus.store -name graph -kind triples -file triples.tsv
//	rwdstore list    -dir ./corpus.store
//	rwdstore stats   -dir ./corpus.store
//	rwdstore compact -dir ./corpus.store
//	rwdstore verify  -dir ./corpus.store
//
// Triples input is one triple per line, tab-separated: subject,
// predicate, object. Log input is one query per line, verbatim.
//
// Exit codes match rwdanalyze: 2 for usage errors, 1 for I/O errors,
// 3 when -dir points at a missing or corrupt store (every subcommand
// except ingest, which creates the store when absent).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/textio"
)

const exitBadStore = 3

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	ctx := context.Background()
	var err error
	switch cmd {
	case "ingest":
		err = runIngest(ctx, args)
	case "list":
		err = withStore(args, runList)
	case "stats":
		err = withStore(args, runStats)
	case "compact":
		err = withStore(args, func(ctx context.Context, st *store.Store) error {
			return st.Compact(ctx)
		})
	case "verify":
		err = withStore(args, func(ctx context.Context, st *store.Store) error {
			if err := st.Verify(ctx); err != nil {
				return err
			}
			fmt.Println("ok")
			return nil
		})
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rwdstore: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwdstore:", err)
		if store.IsCorrupt(err) {
			os.Exit(exitBadStore)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: rwdstore <command> [flags]

commands:
  ingest   add triples (tab-separated s, p, o) or log lines to a corpus
  list     list corpora with entry and segment counts
  stats    print store-wide statistics
  compact  merge all segments into one and drop duplicates
  verify   check every index entry decodes and the indexes agree

run 'rwdstore <command> -h' for the flags of each command.
`)
}

// withStore opens an existing store (exit 3 if missing or corrupt) and
// runs fn against it. Mutating commands rely on Close to flush.
func withStore(args []string, fn func(context.Context, *store.Store) error) error {
	fs := flag.NewFlagSet("rwdstore", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "rwdstore: -dir is required")
		os.Exit(2)
	}
	st, err := store.OpenExisting(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwdstore: store at %s is unusable: %v\n", *dir, err)
		os.Exit(exitBadStore)
	}
	defer st.Close()
	if err := fn(context.Background(), st); err != nil {
		return err
	}
	return st.Close()
}

func runIngest(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rwdstore ingest", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (created if missing)")
	name := fs.String("name", "", "corpus name (required)")
	kind := fs.String("kind", "log", "corpus kind: log|triples")
	file := fs.String("file", "-", "input file; '-' reads stdin")
	fs.Parse(args)
	if *dir == "" || *name == "" {
		fmt.Fprintln(os.Stderr, "rwdstore ingest: -dir and -name are required")
		os.Exit(2)
	}
	if *kind != "log" && *kind != "triples" {
		fmt.Fprintf(os.Stderr, "rwdstore ingest: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	lines, err := textio.ReadLines(in)
	if err != nil {
		return err
	}

	st, err := store.Open(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwdstore: store at %s is unusable: %v\n", *dir, err)
		os.Exit(exitBadStore)
	}
	defer st.Close()

	var added int
	switch *kind {
	case "log":
		if added, err = st.IngestLog(ctx, *name, lines); err != nil {
			return err
		}
	case "triples":
		triples := make([]rdf.Triple, 0, len(lines))
		for i, ln := range lines {
			parts := strings.Split(ln, "\t")
			if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
				return fmt.Errorf("line %d: want 3 tab-separated non-empty fields, got %q", i+1, ln)
			}
			triples = append(triples, rdf.Triple{S: parts[0], P: parts[1], O: parts[2]})
		}
		if added, err = st.IngestTriples(ctx, *name, triples); err != nil {
			return err
		}
	}
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Printf("corpus %s: added %d of %d (%d duplicates skipped)\n",
		*name, added, len(lines), len(lines)-added)
	return nil
}

func runList(ctx context.Context, st *store.Store) error {
	cs, err := st.Corpora(ctx)
	if err != nil {
		return err
	}
	if len(cs) == 0 {
		fmt.Println("no corpora")
		return nil
	}
	fmt.Printf("%-24s %-8s %10s %10s\n", "NAME", "KIND", "ENTRIES", "SEGMENTS")
	for _, c := range cs {
		fmt.Printf("%-24s %-8s %10d %10d\n", c.Name, c.Kind, c.Entries, c.Segments)
	}
	return nil
}

func runStats(ctx context.Context, st *store.Store) error {
	s, err := st.StoreStats()
	if err != nil {
		return err
	}
	fmt.Printf("corpora:       %d\n", s.Corpora)
	fmt.Printf("triples:       %d\n", s.Triples)
	fmt.Printf("log lines:     %d\n", s.LogLines)
	fmt.Printf("segments:      %d (%d bytes)\n", s.Segments, s.SegmentBytes)
	fmt.Printf("terms interned: %d\n", s.Terms)
	fmt.Printf("pending keys:  %d\n", s.PendingKeys)
	return nil
}
