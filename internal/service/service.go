// Package service is the production HTTP layer over the repository's
// decision procedures and analysis pipeline. Every capability that was
// previously CLI-only — regex/k-ORE/DTD/JSON-Schema containment
// (Theorems 4.4–4.6), membership, DTD/EDTD validation, schema inference
// (Section 4.2.3), and the SHARQL-style SPARQL log analysis — is exposed
// as a JSON endpoint behind a shared middleware stack.
//
// The decision problems served here are PSPACE-hard (containment) or
// worse, so the server treats every request as potentially adversarial:
//
//   - deadlines: each request runs under a context deadline (default /
//     maximum configurable); the containment engines carry cooperative
//     cancellation checkpoints (automata.ContainsCtx et al.) so a
//     timed-out instance stops burning CPU instead of merely abandoning
//     the response;
//   - admission control: a bounded semaphore sheds load with 429 before
//     work starts;
//   - request-size caps: bodies beyond MaxBodyBytes are rejected with 413;
//   - verdict cache: containment verdicts are cached under canonical
//     renderings of the parsed inputs, so syntactically different but
//     identical requests hit;
//   - observability: per-endpoint latency histograms, request/timeout/
//     rejection counters, in-flight and cache gauges on GET /metrics in
//     Prometheus text format, plus structured access logs.
package service

import (
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/cache"
	"repro/internal/metrics"
)

// Config parameterizes the server. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// MaxInFlight is the admission-control bound on concurrently served
	// requests (the "worker limit"); <= 0 means 2 × GOMAXPROCS.
	MaxInFlight int
	// MaxBodyBytes caps request bodies; <= 0 means 8 MiB.
	MaxBodyBytes int64
	// DefaultDeadline applies when a request carries no deadline_ms;
	// <= 0 means 2s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines; <= 0 means 30s.
	MaxDeadline time.Duration
	// CacheSize is the verdict-cache capacity in entries; < 0 disables
	// the cache, 0 means 1024.
	CacheSize int
	// AnalyzeWorkers bounds the worker pool of /v1/analyze;
	// <= 0 means GOMAXPROCS.
	AnalyzeWorkers int
	// Logger receives structured access and error logs; nil means stderr.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = 1024
	case c.CacheSize < 0:
		c.CacheSize = 0
	}
	if c.AnalyzeWorkers <= 0 {
		c.AnalyzeWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Logger == nil {
		c.Logger = log.New(os.Stderr, "rwdserve ", log.LstdFlags|log.Lmicroseconds)
	}
	return c
}

// Server is the HTTP service. Construct with New; Handler returns the
// routed middleware stack.
type Server struct {
	cfg   Config
	log   *log.Logger
	mux   *http.ServeMux
	reg   *metrics.Registry
	cache *cache.Cache
	sem   chan struct{}

	reqTotal *metrics.CounterVec   // endpoint, code
	latency  *metrics.HistogramVec // endpoint
	rejected *metrics.CounterVec   // reason
	timeouts *metrics.CounterVec   // endpoint
}

// New constructs a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		log:   cfg.Logger,
		mux:   http.NewServeMux(),
		reg:   metrics.NewRegistry(),
		cache: cache.New(cfg.CacheSize),
		sem:   make(chan struct{}, cfg.MaxInFlight),
	}
	s.reqTotal = s.reg.CounterVec("rwdserve_requests_total",
		"Requests served, by endpoint and HTTP status code.", "endpoint", "code")
	s.latency = s.reg.HistogramVec("rwdserve_request_seconds",
		"Request latency in seconds, by endpoint.", metrics.DefBuckets, "endpoint")
	s.rejected = s.reg.CounterVec("rwdserve_rejected_total",
		"Requests rejected before reaching an engine, by reason.", "reason")
	s.timeouts = s.reg.CounterVec("rwdserve_timeouts_total",
		"Requests that exceeded their deadline, by endpoint.", "endpoint")
	s.reg.GaugeFunc("rwdserve_inflight",
		"Requests currently admitted past the admission gate.",
		func() float64 { return float64(len(s.sem)) })
	s.reg.GaugeFunc("rwdserve_cache_hits_total",
		"Verdict-cache hits.", func() float64 { return float64(s.cache.Stats().Hits) })
	s.reg.GaugeFunc("rwdserve_cache_misses_total",
		"Verdict-cache misses.", func() float64 { return float64(s.cache.Stats().Misses) })
	s.reg.GaugeFunc("rwdserve_cache_evictions_total",
		"Verdict-cache evictions.", func() float64 { return float64(s.cache.Stats().Evictions) })
	s.reg.GaugeFunc("rwdserve_cache_entries",
		"Verdict-cache occupancy.", func() float64 { return float64(s.cache.Stats().Len) })

	s.mux.Handle("POST /v1/containment", s.endpoint("containment", s.handleContainment))
	s.mux.Handle("POST /v1/membership", s.endpoint("membership", s.handleMembership))
	s.mux.Handle("POST /v1/validate", s.endpoint("validate", s.handleValidate))
	s.mux.Handle("POST /v1/infer", s.endpoint("infer", s.handleInfer))
	s.mux.Handle("POST /v1/analyze", s.endpoint("analyze", s.handleAnalyze))
	// healthz and metrics bypass admission control: they must answer even
	// (especially) when the server is saturated.
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the fully routed handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metrics registry (for tests and embedders).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// CacheStats exposes the verdict-cache counters (for tests and embedders).
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		s.log.Printf("level=error endpoint=metrics err=%q", err)
	}
}
