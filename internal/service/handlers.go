package service

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"time"

	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/edtd"
	"repro/internal/inference"
	"repro/internal/jsonschema"
	"repro/internal/kore"
	"repro/internal/rdf"
	"repro/internal/regex"
	"repro/internal/store"
	"repro/internal/textio"
	"repro/internal/tree"
)

// jsonschemaSamples is the randomized-refutation budget of the
// jsonschema containment engine; fixed (with the seed) so that verdicts
// are deterministic and therefore cacheable.
const jsonschemaSamples = 200

// Every endpoint body is parsed and decided by a decide* function that
// runs synchronously under ctx: parse, per-instance cache lookup where a
// cache exists, engine, cache fill. The single-decision endpoints wrap
// one decide call in the runEngine deadline harness; /v1/batch calls the
// same functions once per item, so a batch verdict is identical to the
// verdict the dedicated endpoint would have produced.

// ---- POST /v1/containment ----

type containmentRequest struct {
	// Engine selects the decision procedure: regex (general, PSPACE),
	// kore (k-ORE, Theorem 4.6), dtd (Definition 4.1 reduction), or
	// jsonschema (sound-but-incomplete three-valued check).
	Engine string `json:"engine"`
	Left   string `json:"left"`
	Right  string `json:"right"`
	// DeadlineMS overrides the server's default deadline (clamped to the
	// configured maximum). Parsed by the middleware envelope; listed here
	// so the request shape documents itself.
	DeadlineMS int `json:"deadline_ms"`
	// Explain asks for the span tree of the decision alongside the
	// verdict. Explain requests bypass the verdict-cache read: a cache
	// hit would short-circuit the engine and return an empty trace.
	Explain bool `json:"explain"`
}

type containmentResponse struct {
	Engine    string  `json:"engine"`
	Contained bool    `json:"contained"`
	Verdict   string  `json:"verdict"`
	Witness   string  `json:"witness,omitempty"`
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleContainment(ctx context.Context, req *request) (any, *apiError) {
	return runEngine(ctx, req, func(ctx context.Context) (any, *apiError) {
		return s.decideContainment(ctx, req.body, req.env.Explain)
	})
}

// decideContainment parses one containment instance, consults the
// verdict cache under the canonical key, runs the selected engine, and
// fills the cache. Shared by /v1/containment and /v1/batch.
func (s *Server) decideContainment(ctx context.Context, body []byte, explain bool) (any, *apiError) {
	var req containmentRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, errBadRequest("invalid JSON: %v", err)
	}
	if req.Left == "" || req.Right == "" {
		return nil, errBadRequest("left and right are required")
	}

	// Parse and canonicalize both sides up front: the canonical rendering
	// is the cache key, so "a|b" and "( a | b )" share an entry.
	var engine func(ctx context.Context) (bool, string, string, error) // contained, verdict, witness
	var key string
	switch req.Engine {
	case "regex", "kore":
		e1, err := regex.Parse(req.Left)
		if err != nil {
			return nil, errBadRequest("left: %v", err)
		}
		e2, err := regex.Parse(req.Right)
		if err != nil {
			return nil, errBadRequest("right: %v", err)
		}
		key = cacheKey(req.Engine, e1.String(), e2.String())
		contains := automata.ContainsCtx
		if req.Engine == "kore" {
			contains = kore.ContainmentCtx
		}
		engine = func(ctx context.Context) (bool, string, string, error) {
			ok, err := contains(ctx, e1, e2)
			return ok, boolVerdict(ok), "", err
		}
	case "dtd":
		d1, err := dtd.ParseText(req.Left, "")
		if err != nil {
			return nil, errBadRequest("left: %v", err)
		}
		d2, err := dtd.ParseText(req.Right, "")
		if err != nil {
			return nil, errBadRequest("right: %v", err)
		}
		key = cacheKey("dtd", d1.String(), d2.String())
		engine = func(ctx context.Context) (bool, string, string, error) {
			ok, err := dtd.ContainsCtx(ctx, d1, d2)
			return ok, boolVerdict(ok), "", err
		}
	case "jsonschema":
		s1, err := jsonschema.Parse(req.Left)
		if err != nil {
			return nil, errBadRequest("left: %v", err)
		}
		s2, err := jsonschema.Parse(req.Right)
		if err != nil {
			return nil, errBadRequest("right: %v", err)
		}
		cl, err := canonicalJSON(req.Left)
		if err != nil {
			return nil, errBadRequest("left: %v", err)
		}
		cr, err := canonicalJSON(req.Right)
		if err != nil {
			return nil, errBadRequest("right: %v", err)
		}
		key = cacheKey("jsonschema", cl, cr)
		engine = func(ctx context.Context) (bool, string, string, error) {
			v, witness := jsonschema.ContainsCtx(ctx, s1, s2, jsonschemaSamples, 1)
			switch v {
			case jsonschema.Contained:
				return true, "contained", "", nil
			case jsonschema.NotContained:
				return false, "not_contained", witness, nil
			}
			return false, "unknown", "", nil
		}
	default:
		return nil, errBadRequest("unknown engine %q (want regex, kore, dtd, or jsonschema)", req.Engine)
	}

	if !explain {
		if v, ok := s.cache.Get(key); ok {
			resp := v.(containmentResponse)
			resp.Cached = true
			return resp, nil
		}
	}
	start := time.Now()
	ok, verdict, witness, err := engine(ctx)
	if err != nil {
		return nil, engineError(ctx, err) // timeouts are not cached: the verdict is unknown
	}
	resp := containmentResponse{
		Engine:    req.Engine,
		Contained: ok,
		Verdict:   verdict,
		Witness:   witness,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	s.cache.Put(key, resp)
	return resp, nil
}

func boolVerdict(ok bool) string {
	if ok {
		return "contained"
	}
	return "not_contained"
}

func cacheKey(engine string, parts ...string) string {
	key := engine
	for _, p := range parts {
		key += "\x1f" + p
	}
	return key
}

// canonicalJSON re-renders a JSON document with sorted object keys and no
// insignificant whitespace, so syntactically different but identical
// schemas share a cache entry.
func canonicalJSON(doc string) (string, error) {
	var v any
	if err := json.Unmarshal([]byte(doc), &v); err != nil {
		return "", err
	}
	out, err := json.Marshal(v) // Go marshals map keys in sorted order
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// ---- POST /v1/membership ----

type membershipRequest struct {
	Expr       string   `json:"expr"`
	Word       []string `json:"word"`
	DeadlineMS int      `json:"deadline_ms"`
}

type membershipResponse struct {
	Member bool `json:"member"`
	// Deterministic reports whether the expression is deterministic in
	// the Brüggemann-Klein & Wood sense (its Glushkov automaton is a DFA).
	Deterministic bool `json:"deterministic"`
}

func (s *Server) handleMembership(ctx context.Context, req *request) (any, *apiError) {
	return runEngine(ctx, req, func(ctx context.Context) (any, *apiError) {
		return decideMembership(ctx, req.body)
	})
}

func decideMembership(_ context.Context, body []byte) (any, *apiError) {
	var req membershipRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, errBadRequest("invalid JSON: %v", err)
	}
	e, err := regex.Parse(req.Expr)
	if err != nil {
		return nil, errBadRequest("expr: %v", err)
	}
	n := automata.Glushkov(e)
	return membershipResponse{
		Member:        n.Accepts(req.Word),
		Deterministic: n.IsDeterministic(),
	}, nil
}

// ---- POST /v1/validate ----

type edtdTypeJSON struct {
	Name    string `json:"name"`
	Label   string `json:"label"`
	Content string `json:"content"` // regular expression over type names
}

type validateRequest struct {
	// Kind selects the schema language: dtd, edtd, or single-type.
	Kind string `json:"kind"`
	// Schema is DTD text (<!ELEMENT …>) for kind=dtd.
	Schema string `json:"schema,omitempty"`
	// Root optionally overrides the DTD start label.
	Root string `json:"root,omitempty"`
	// Types and Start define the EDTD for kind=edtd / single-type.
	Types []edtdTypeJSON `json:"types,omitempty"`
	Start []string       `json:"start,omitempty"`
	// Docs are documents in label(child, …) tree syntax.
	Docs       []string `json:"docs"`
	DeadlineMS int      `json:"deadline_ms"`
}

type validateResult struct {
	Valid bool   `json:"valid"`
	Error string `json:"error,omitempty"`
}

type validateResponse struct {
	Kind    string           `json:"kind"`
	Results []validateResult `json:"results"`
}

func (s *Server) handleValidate(ctx context.Context, req *request) (any, *apiError) {
	return runEngine(ctx, req, func(ctx context.Context) (any, *apiError) {
		return decideValidate(ctx, req.body)
	})
}

func decideValidate(ctx context.Context, body []byte) (any, *apiError) {
	var req validateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, errBadRequest("invalid JSON: %v", err)
	}
	if len(req.Docs) == 0 {
		return nil, errBadRequest("docs is required")
	}
	docs := make([]*tree.Node, len(req.Docs))
	for i, d := range req.Docs {
		t, err := tree.Parse(d)
		if err != nil {
			return nil, errBadRequest("docs[%d]: %v", i, err)
		}
		docs[i] = t
	}

	var check func(*tree.Node) validateResult
	switch req.Kind {
	case "dtd":
		if req.Schema == "" {
			return nil, errBadRequest("schema (DTD text) is required for kind=dtd")
		}
		d, err := dtd.ParseText(req.Schema, req.Root)
		if err != nil {
			return nil, errBadRequest("schema: %v", err)
		}
		check = func(t *tree.Node) validateResult {
			if err := d.Validate(t); err != nil {
				return validateResult{Valid: false, Error: err.Error()}
			}
			return validateResult{Valid: true}
		}
	case "edtd", "single-type":
		d, aerr := buildEDTD(req.Types, req.Start)
		if aerr != nil {
			return nil, aerr
		}
		valid := d.Valid
		if req.Kind == "single-type" {
			if !d.IsSingleType() {
				return nil, errBadRequest("the given EDTD is not single-type")
			}
			valid = d.ValidSingleType
		}
		check = func(t *tree.Node) validateResult {
			if !valid(t) {
				return validateResult{Valid: false, Error: "no valid typing exists"}
			}
			return validateResult{Valid: true}
		}
	default:
		return nil, errBadRequest("unknown kind %q (want dtd, edtd, or single-type)", req.Kind)
	}

	resp := validateResponse{Kind: req.Kind, Results: make([]validateResult, len(docs))}
	for i, t := range docs {
		if err := ctx.Err(); err != nil {
			return nil, ctxError(err)
		}
		resp.Results[i] = check(t)
	}
	return resp, nil
}

func buildEDTD(types []edtdTypeJSON, start []string) (*edtd.EDTD, *apiError) {
	if len(types) == 0 {
		return nil, errBadRequest("types is required for kind=edtd / single-type")
	}
	d := edtd.New()
	for i, t := range types {
		if t.Name == "" || t.Label == "" {
			return nil, errBadRequest("types[%d]: name and label are required", i)
		}
		e, err := regex.Parse(t.Content)
		if t.Content == "" {
			e, err = regex.NewEpsilon(), nil
		}
		if err != nil {
			return nil, errBadRequest("types[%d].content: %v", i, err)
		}
		d.AddType(t.Name, t.Label, e)
	}
	if len(start) == 0 {
		return nil, errBadRequest("start is required for kind=edtd / single-type")
	}
	for _, s := range start {
		d.AddStart(s)
	}
	return d, nil
}

// ---- POST /v1/infer ----

type inferRequest struct {
	// Algorithm: sore (2T-INF + RWR), chare (CRX), kore (fixed k), or
	// best-kore (smallest k <= K yielding a deterministic expression).
	Algorithm  string     `json:"algorithm"`
	K          int        `json:"k,omitempty"`
	Words      [][]string `json:"words"`
	DeadlineMS int        `json:"deadline_ms"`
}

type inferResponse struct {
	Algorithm     string `json:"algorithm"`
	Expr          string `json:"expr"`
	K             int    `json:"k,omitempty"`
	Deterministic bool   `json:"deterministic"`
}

func (s *Server) handleInfer(ctx context.Context, req *request) (any, *apiError) {
	return runEngine(ctx, req, func(ctx context.Context) (any, *apiError) {
		return decideInfer(ctx, req.body)
	})
}

func decideInfer(ctx context.Context, body []byte) (any, *apiError) {
	var req inferRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, errBadRequest("invalid JSON: %v", err)
	}
	if len(req.Words) == 0 {
		return nil, errBadRequest("words is required")
	}
	switch req.Algorithm {
	case "sore", "chare", "kore", "best-kore":
	default:
		return nil, errBadRequest("unknown algorithm %q (want sore, chare, kore, or best-kore)", req.Algorithm)
	}
	sample := inference.Sample(req.Words)
	var e *regex.Expr
	k := req.K
	switch req.Algorithm {
	case "sore":
		e = inference.InferSORECtx(ctx, sample)
	case "chare":
		e = inference.InferCHARECtx(ctx, sample)
	case "kore":
		if k < 1 {
			k = 2
		}
		e = inference.InferKORECtx(ctx, sample, k)
	case "best-kore":
		if k < 1 {
			k = 4
		}
		e, k = inference.InferBestKORECtx(ctx, sample, k, func(e *regex.Expr) bool {
			return automata.Glushkov(e).IsDeterministic()
		})
	}
	return inferResponse{
		Algorithm:     req.Algorithm,
		Expr:          e.String(),
		K:             k,
		Deterministic: automata.Glushkov(e).IsDeterministic(),
	}, nil
}

// ---- POST /v1/analyze ----

type analyzeRequest struct {
	Name    string   `json:"name"`
	Queries []string `json:"queries"`
	// Corpus names a stored corpus to analyze instead of inline
	// queries: a log corpus runs through the same query analysis as
	// inline queries (byte-identical report); a triples corpus runs the
	// Section 7.1 RDF analyses. Requires an attached store.
	Corpus     string `json:"corpus,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	DeadlineMS int    `json:"deadline_ms"`
}

type analyzeResponse struct {
	Corpus    string             `json:"corpus,omitempty"`
	Queries   int                `json:"queries"`
	Workers   int                `json:"workers"`
	Report    *core.SourceReport `json:"report,omitempty"`
	RDFStats  *rdf.Stats         `json:"rdf_stats,omitempty"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

// handleAnalyze accepts either a JSON body ({"queries": […]}) or — with
// Content-Type application/x-ndjson or text/plain — a raw query log, one
// query per line, read through internal/textio and sharded server-side
// across the core worker pool. In stream mode the options move to the
// query string: ?name=…&workers=…&deadline_ms=…&explain=true.
func (s *Server) handleAnalyze(ctx context.Context, req *request) (any, *apiError) {
	var in analyzeRequest
	if req.ndjson {
		queries, err := textio.ReadLines(bytes.NewReader(req.body))
		if err != nil {
			return nil, errBadRequest("reading query log: %v", err)
		}
		in = analyzeRequest{Name: req.query.Get("name"), Queries: queries}
		in.Corpus = req.query.Get("corpus")
		if w, err := strconv.Atoi(req.query.Get("workers")); err == nil {
			in.Workers = w
		}
	} else if err := json.Unmarshal(req.body, &in); err != nil {
		return nil, errBadRequest("invalid JSON: %v", err)
	}
	if in.Corpus != "" && len(in.Queries) > 0 {
		return nil, errBadRequest("corpus and queries are mutually exclusive")
	}
	if in.Corpus == "" && len(in.Queries) == 0 {
		return nil, errBadRequest("queries is required")
	}
	var corpus store.Corpus
	if in.Corpus != "" {
		if s.store == nil {
			return nil, errNoStoreAttached
		}
		var err error
		if corpus, err = s.store.Lookup(in.Corpus); err != nil {
			return nil, storeError(err)
		}
	}
	name := in.Name
	if name == "" {
		name = "corpus"
	}
	workers := in.Workers
	if workers <= 0 || workers > s.cfg.AnalyzeWorkers {
		workers = s.cfg.AnalyzeWorkers
	}
	start := time.Now()
	return runEngine(ctx, req, func(ctx context.Context) (any, *apiError) {
		elapsed := func() float64 { return float64(time.Since(start).Microseconds()) / 1000 }
		queries := in.Queries
		switch {
		case in.Corpus != "" && corpus.Kind == store.KindTriples:
			// Store-backed RDF analysis: the Section 7.1 stats over a
			// GraphReader view of the corpus.
			sg, err := s.store.Graph(ctx, in.Corpus)
			if err != nil {
				return nil, storeError(err)
			}
			stats := rdf.ComputeStats(sg)
			if err := sg.Err(); err != nil {
				if ctx.Err() != nil {
					return nil, ctxError(ctx.Err())
				}
				return nil, storeError(err)
			}
			return analyzeResponse{
				Corpus:    in.Corpus,
				Workers:   workers,
				RDFStats:  stats,
				ElapsedMS: elapsed(),
			}, nil
		case in.Corpus != "":
			// Store-backed log analysis: the stored lines run through the
			// same sharded analyzer as inline queries, so the report is
			// byte-identical to the in-memory path on the same log.
			var err error
			if queries, err = s.store.LogLines(ctx, in.Corpus); err != nil {
				if ctx.Err() != nil {
					return nil, ctxError(ctx.Err())
				}
				return nil, storeError(err)
			}
			if name == "corpus" {
				name = in.Corpus
			}
		}
		rep := core.AnalyzeQueriesCtx(ctx, name, queries, workers)
		if err := ctx.Err(); err != nil {
			return nil, ctxError(err) // the shards aborted early; the report is partial
		}
		return analyzeResponse{
			Corpus:    in.Corpus,
			Queries:   len(queries),
			Workers:   workers,
			Report:    rep,
			ElapsedMS: elapsed(),
		}, nil
	})
}
