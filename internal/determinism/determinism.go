// Package determinism implements deterministic ("one-unambiguous") regular
// expressions in the sense of Brüggemann-Klein & Wood (Section 4.2.1 of the
// paper): an expression is deterministic if, reading a word left to right
// without lookahead, it is always clear to which symbol occurrence in the
// expression the current input symbol must be matched.
//
// The XML standard requires content models to be deterministic; XML Schema
// calls the same constraint "Unique Particle Attribution" (Section 4.2.1 and
// 4.3). The package provides the decision procedure (via the Glushkov
// automaton), determinization of expressions through their minimal DFA, and
// blow-up measurement used in the descriptional-complexity experiments.
package determinism

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/regex"
)

// IsDeterministic reports whether e is a deterministic (one-unambiguous)
// regular expression. By the characterization of Brüggemann-Klein & Wood,
// e is deterministic iff its Glushkov automaton is deterministic: no state
// has two outgoing transitions with the same label to different positions.
//
// Example from the paper: (a + b)* a is NOT deterministic, while the
// equivalent b* a (b* a)* is.
func IsDeterministic(e *regex.Expr) bool {
	return automata.Glushkov(e).IsDeterministic()
}

// Violations returns a human-readable description of each determinism
// violation: pairs of positions with the same label reachable from the same
// state. It returns nil iff e is deterministic.
func Violations(e *regex.Expr) []string {
	n := automata.Glushkov(e)
	l := regex.Linearize(e)
	var out []string
	for q := 0; q < n.NumStates; q++ {
		for a, succ := range n.Trans[q] {
			if len(succ) > 1 {
				var ps []string
				for _, p := range succ {
					ps = append(ps, fmt.Sprintf("%d", p))
				}
				from := "start"
				if q > 0 {
					from = fmt.Sprintf("position %d (%s)", q, l.Sym(q))
				}
				out = append(out, fmt.Sprintf("from %s, label %q can continue at positions {%s}", from, a, strings.Join(ps, ",")))
			}
		}
	}
	sort.Strings(out)
	return out
}

// DeterminizeResult describes the outcome of attempting to find an
// equivalent deterministic expression.
type DeterminizeResult struct {
	// Expr is an equivalent deterministic expression, if one was found.
	Expr *regex.Expr
	// OK reports whether Expr is set. Deciding whether ANY equivalent
	// deterministic expression exists is PSPACE-complete (Czerwiński et al.,
	// cited in Section 4.2.1); this package implements the sound procedure
	// below, which succeeds on all languages whose minimal DFA admits the
	// standard state-elimination-ordered construction and in particular on
	// every language of a deterministic expression.
	OK bool
	// DFAStates is the number of states of the minimal DFA — the
	// intermediate measure in the (potentially exponential) translation
	// chain RE → DFA → deterministic RE discussed in Section 4.2.1.
	DFAStates int
}

// Determinize attempts to compute a deterministic regular expression
// equivalent to e.
//
// Procedure: build the minimal DFA; synthesize an expression by
// state elimination; verify the result is deterministic and equivalent.
// If the synthesized expression is not deterministic, the orbit-based BKW
// construction would be needed; for languages that are not deterministic-
// definable (e.g. (a+b)*a(a+b), Section 4.2.1) no algorithm can succeed and
// OK is false.
func Determinize(e *regex.Expr) DeterminizeResult {
	if IsDeterministic(e) {
		return DeterminizeResult{Expr: e, OK: true, DFAStates: automata.ToDFA(e).NumStates}
	}
	dfa := automata.ToDFA(e)
	cand := SynthesizeFromDFA(dfa)
	// State elimination can produce exponentially large candidates; such
	// candidates are practically never deterministic, so skip the expensive
	// verification for them.
	if cand != nil && cand.Size() > 64*e.Size() {
		cand = nil
	}
	if cand != nil && automata.Glushkov(cand).IsDeterministic() && automata.Equivalent(e, cand) {
		return DeterminizeResult{Expr: cand, OK: true, DFAStates: dfa.NumStates}
	}
	// Fall back: try per-state unrolled form a la b*a(b*a)* for simple loops.
	if cand2 := unrollLoops(dfa); cand2 != nil &&
		automata.Glushkov(cand2).IsDeterministic() && automata.Equivalent(e, cand2) {
		return DeterminizeResult{Expr: cand2, OK: true, DFAStates: dfa.NumStates}
	}
	return DeterminizeResult{OK: false, DFAStates: dfa.NumStates}
}

// SynthesizeFromDFA converts a DFA to a regular expression by state
// elimination, eliminating states in reverse BFS order. The result is
// language-equivalent to the DFA (it is NOT necessarily deterministic).
func SynthesizeFromDFA(d *automata.DFA) *regex.Expr {
	// Matrix of expressions between states 0..n-1 plus virtual initial n
	// and final n+1.
	n := d.NumStates
	type edge map[int]*regex.Expr // target -> expr
	g := make([]edge, n+2)
	for i := range g {
		g[i] = edge{}
	}
	addEdge := func(from, to int, e *regex.Expr) {
		if old, ok := g[from][to]; ok {
			g[from][to] = regex.NewUnion(old, e)
		} else {
			g[from][to] = e
		}
	}
	for q := 0; q < n; q++ {
		for a, p := range d.Trans[q] {
			addEdge(q, p, regex.NewSymbol(a))
		}
	}
	addEdge(n, 0, regex.NewEpsilon())
	for q := range d.Final {
		addEdge(q, n+1, regex.NewEpsilon())
	}
	// Eliminate states 0..n-1 (higher-numbered last: BFS numbering from
	// Minimize makes low numbers near the initial state).
	for k := n - 1; k >= 0; k-- {
		self := g[k][k]
		delete(g[k], k)
		var ins []int
		for i := range g {
			if i == k {
				continue
			}
			if _, ok := g[i][k]; ok {
				ins = append(ins, i)
			}
		}
		outs := make([]int, 0, len(g[k]))
		for j := range g[k] {
			if j != k {
				outs = append(outs, j)
			}
		}
		sort.Ints(ins)
		sort.Ints(outs)
		for _, i := range ins {
			for _, j := range outs {
				var mid *regex.Expr
				if self != nil {
					mid = regex.NewConcat(g[i][k], regex.NewStar(self), g[k][j])
				} else {
					mid = regex.NewConcat(g[i][k], g[k][j])
				}
				addEdge(i, j, mid)
			}
			delete(g[i], k)
		}
		g[k] = edge{}
	}
	e, ok := g[n][n+1]
	if !ok {
		return regex.NewEmpty()
	}
	return e.Simplify()
}

// unrollLoops handles the common schema shape (A)* t where the minimal DFA is
// a simple cycle structure: it rewrites e.g. (a+b)*a as b*a(b*a)*. It works
// on 2-state DFAs only and returns nil otherwise.
func unrollLoops(d *automata.DFA) *regex.Expr {
	if d.NumStates > 3 { // allow for a sink
		return nil
	}
	// Identify: initial state 0, one final state f != sink.
	var finals []int
	for q := range d.Final {
		finals = append(finals, q)
	}
	if len(finals) != 1 {
		return nil
	}
	f := finals[0]
	if f == 0 {
		return nil
	}
	// Loop labels on 0 and f, and switch labels 0->f and f->0.
	var loop0, loopF, to, back []string
	for a, p := range d.Trans[0] {
		switch p {
		case 0:
			loop0 = append(loop0, a)
		case f:
			to = append(to, a)
		}
	}
	for a, p := range d.Trans[f] {
		switch p {
		case f:
			loopF = append(loopF, a)
		case 0:
			back = append(back, a)
		}
	}
	if len(to) == 0 {
		return nil
	}
	sort.Strings(loop0)
	sort.Strings(loopF)
	sort.Strings(to)
	sort.Strings(back)
	syms := func(labels []string) *regex.Expr {
		subs := make([]*regex.Expr, len(labels))
		for i, a := range labels {
			subs[i] = regex.NewSymbol(a)
		}
		return regex.NewUnion(subs...)
	}
	// Pattern: loop0* to (loopF + back loop0* to)*
	var inner []*regex.Expr
	if len(loopF) > 0 {
		inner = append(inner, syms(loopF))
	}
	if len(back) > 0 {
		var seq []*regex.Expr
		seq = append(seq, syms(back))
		if len(loop0) > 0 {
			seq = append(seq, regex.NewStar(syms(loop0)))
		}
		seq = append(seq, syms(to))
		inner = append(inner, regex.NewConcat(seq...))
	}
	var parts []*regex.Expr
	if len(loop0) > 0 {
		parts = append(parts, regex.NewStar(syms(loop0)))
	}
	parts = append(parts, syms(to))
	if len(inner) > 0 {
		parts = append(parts, regex.NewStar(regex.NewUnion(inner...)))
	}
	return regex.NewConcat(parts...)
}

// BlowUp reports the descriptional-complexity measurements of
// Section 4.2.1's discussion: the size of e, the size of its minimal DFA,
// and (if determinization succeeded) the size of the deterministic
// expression.
type BlowUp struct {
	ExprSize      int
	MinimalDFA    int
	Deterministic int // -1 when no deterministic expression was found
}

// MeasureBlowUp computes the translation-chain sizes for e.
func MeasureBlowUp(e *regex.Expr) BlowUp {
	res := Determinize(e)
	b := BlowUp{ExprSize: e.Size(), MinimalDFA: res.DFAStates, Deterministic: -1}
	if res.OK {
		b.Deterministic = res.Expr.Size()
	}
	return b
}
