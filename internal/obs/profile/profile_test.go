package profile

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/recorder"
)

var testEpoch = time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)

// mkTrace builds a finished trace the way the service records them: the
// op on the root, counters and the engine attr on a child span node.
func mkTrace(id, op, engine, status string, start time.Time, durMS float64, counters map[string]int64) *recorder.Trace {
	root := &obs.Node{
		Name:       "http." + op,
		DurationMS: durMS,
		Attrs:      map[string]string{recorder.StatusAttr: status},
	}
	child := &obs.Node{Name: "work", DurationMS: durMS * 0.9, Counters: counters}
	if engine != "" {
		child.Attrs = map[string]string{recorder.EngineAttr: engine}
	}
	root.Children = []*obs.Node{child}
	return &recorder.Trace{
		TraceID:    id,
		Op:         op,
		Status:     status,
		Start:      start,
		DurationMS: durMS,
		Root:       root,
	}
}

func TestEngineWindowVsLifetime(t *testing.T) {
	e := New(Config{BucketWidth: time.Second, WindowBuckets: 5})
	// 3 old traces well outside the 5s window, 2 recent inside it.
	for i := 0; i < 3; i++ {
		e.Observe(mkTrace(fmt.Sprintf("old%d", i), "containment", "antichain", "200",
			testEpoch, 10, map[string]int64{"states_expanded": 100}))
	}
	recent := testEpoch.Add(30 * time.Second)
	for i := 0; i < 2; i++ {
		e.Observe(mkTrace(fmt.Sprintf("new%d", i), "containment", "antichain", "200",
			recent, 20, map[string]int64{"states_expanded": 200}))
	}
	snap := e.Snapshot(e.LastSeen(), WindowAll, Filter{})
	if len(snap.Lifetime) != 1 {
		t.Fatalf("lifetime rows = %d, want 1", len(snap.Lifetime))
	}
	if got := snap.Lifetime[0].Requests; got != 5 {
		t.Errorf("lifetime requests = %d, want 5", got)
	}
	if len(snap.Window) != 1 {
		t.Fatalf("window rows = %d, want 1", len(snap.Window))
	}
	if got := snap.Window[0].Requests; got != 2 {
		t.Errorf("window requests = %d, want 2 (old traces must have aged out)", got)
	}
	if eng := snap.Window[0].Engine; eng != "antichain" {
		t.Errorf("engine = %q, want antichain", eng)
	}
	if snap.Observed != 5 {
		t.Errorf("observed = %d, want 5", snap.Observed)
	}
}

// TestEngineReplayAgreement pins the core live/offline contract: feeding
// the same traces through a fresh engine (as `rwdtrace stats -trace-dir`
// does) and snapshotting at LastSeen reproduces the live engine's
// snapshot byte for byte.
func TestEngineReplayAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var traces []*recorder.Trace
	for i := 0; i < 500; i++ {
		status := "200"
		if i%17 == 0 {
			status = "429"
		}
		op := "containment"
		engine := "antichain"
		if i%5 == 0 {
			op, engine = "membership", ""
		}
		n := int64(rng.Intn(1000))
		traces = append(traces, mkTrace(fmt.Sprintf("t%04d", i), op, engine, status,
			testEpoch.Add(time.Duration(i)*73*time.Millisecond),
			1+float64(n)*0.01+rng.Float64(),
			map[string]int64{"states_expanded": n, "product_states": n / 2}))
	}
	live := New(Config{})
	for _, tr := range traces {
		live.Observe(tr)
	}
	replayed := Replay(traces, Config{})

	at := live.LastSeen()
	if !at.Equal(replayed.LastSeen()) {
		t.Fatalf("LastSeen: live %v != replayed %v", at, replayed.LastSeen())
	}
	a, err := json.Marshal(live.Snapshot(at, WindowAll, Filter{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(replayed.Snapshot(at, WindowAll, Filter{}))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("live and replayed snapshots differ:\nlive:     %s\nreplayed: %s", a, b)
	}
}

// TestSnapshotDeterministic: two marshals of the same state are
// byte-identical (sorted slices, struct field order).
func TestSnapshotDeterministic(t *testing.T) {
	e := New(Config{})
	for i := 0; i < 100; i++ {
		e.Observe(mkTrace(fmt.Sprintf("t%d", i), "analyze", "", "200",
			testEpoch.Add(time.Duration(i)*time.Millisecond), float64(1+i%7),
			map[string]int64{"docs": int64(i), "fields": int64(i * 2), "rounds": 3}))
	}
	at := e.LastSeen()
	a, _ := json.Marshal(e.Snapshot(at, WindowAll, Filter{}))
	b, _ := json.Marshal(e.Snapshot(at, WindowAll, Filter{}))
	if string(a) != string(b) {
		t.Fatal("repeated snapshots of identical state differ")
	}
}

func TestEngineErrorAndTimeoutRates(t *testing.T) {
	e := New(Config{})
	start := testEpoch
	for i := 0; i < 6; i++ {
		e.Observe(mkTrace(fmt.Sprintf("ok%d", i), "validate", "", "200", start, 5, nil))
	}
	for i := 0; i < 3; i++ {
		e.Observe(mkTrace(fmt.Sprintf("bad%d", i), "validate", "", "400", start, 1, nil))
	}
	e.Observe(mkTrace("to", "validate", "", "504", start, 100, nil))
	snap := e.Snapshot(e.LastSeen(), WindowLifetime, Filter{})
	if len(snap.Lifetime) != 1 {
		t.Fatalf("rows = %d, want 1", len(snap.Lifetime))
	}
	row := snap.Lifetime[0]
	if row.Requests != 10 || row.Errors != 4 || row.Timeouts != 1 {
		t.Fatalf("requests/errors/timeouts = %d/%d/%d, want 10/4/1", row.Requests, row.Errors, row.Timeouts)
	}
	if row.ErrorRate != 0.4 || row.TimeoutRate != 0.1 {
		t.Errorf("rates = %g/%g, want 0.4/0.1", row.ErrorRate, row.TimeoutRate)
	}
	if len(row.Statuses) != 3 {
		t.Errorf("status breakdown = %v, want 3 entries", row.Statuses)
	}
}

// TestEngineAnomaly: after warming the fit on a clean linear workload,
// a trace far above the fitted line is flagged with the dominant counter
// and a high z-score; in-model traces are not.
func TestEngineAnomaly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := New(Config{AnomalyMinSamples: 50, AnomalyZ: 4})
	for i := 0; i < 200; i++ {
		n := int64(100 + rng.Intn(900))
		durMS := 1 + float64(n)*0.05 + rng.NormFloat64()*0.3
		e.Observe(mkTrace(fmt.Sprintf("warm%d", i), "containment", "antichain", "200",
			testEpoch.Add(time.Duration(i)*time.Millisecond), durMS,
			map[string]int64{"states_expanded": n, "other": 1}))
	}
	if got := e.AnomalyCount(); got != 0 {
		t.Fatalf("clean workload flagged %d anomalies", got)
	}
	// 500 states predicts ~26ms; 500ms is wildly off the line.
	e.Observe(mkTrace("slow", "containment", "antichain", "200",
		testEpoch.Add(time.Second), 500, map[string]int64{"states_expanded": 500, "other": 1}))
	if got := e.AnomalyCount(); got != 1 {
		t.Fatalf("anomaly count = %d, want 1", got)
	}
	snap := e.Snapshot(e.LastSeen(), WindowLifetime, Filter{})
	if len(snap.Anomalies) != 1 {
		t.Fatalf("snapshot anomalies = %d, want 1", len(snap.Anomalies))
	}
	a := snap.Anomalies[0]
	if a.TraceID != "slow" || a.Op != "containment" || a.Counter != "states_expanded" {
		t.Errorf("anomaly = %+v", a)
	}
	if a.Score < 4 {
		t.Errorf("score = %g, want >= 4", a.Score)
	}
	if a.PredictedMS > 100 {
		t.Errorf("predicted = %gms, want near the fitted line (~26ms)", a.PredictedMS)
	}
	// The model must be exported too.
	if len(snap.Models) != 1 || snap.Models[0].Counter != "states_expanded" {
		t.Fatalf("models = %+v, want one on states_expanded", snap.Models)
	}
	if snap.Models[0].R2 < 0.9 {
		t.Errorf("model R2 = %g, want > 0.9 on near-linear data", snap.Models[0].R2)
	}
}

func TestEngineAnomalyRingBounded(t *testing.T) {
	e := New(Config{AnomalyMinSamples: 10, AnomalyKeep: 5, AnomalyFloorMS: 1})
	for i := 0; i < 50; i++ {
		n := int64(100 + i)
		e.Observe(mkTrace(fmt.Sprintf("w%d", i), "op", "", "200",
			testEpoch, 1+float64(n)*0.01, map[string]int64{"c": n}))
	}
	for i := 0; i < 20; i++ {
		e.Observe(mkTrace(fmt.Sprintf("a%d", i), "op", "", "200",
			testEpoch, 1000+float64(i), map[string]int64{"c": 100}))
	}
	snap := e.Snapshot(e.LastSeen(), WindowLifetime, Filter{})
	if len(snap.Anomalies) > 5 {
		t.Fatalf("anomaly ring = %d entries, want <= 5", len(snap.Anomalies))
	}
	if e.AnomalyCount() < 5 {
		t.Fatalf("anomaly total = %d, want several", e.AnomalyCount())
	}
	// Newest first.
	if snap.Anomalies[0].TraceID != "a19" {
		t.Errorf("first anomaly = %s, want newest (a19)", snap.Anomalies[0].TraceID)
	}
}

func TestEngineFilters(t *testing.T) {
	e := New(Config{})
	e.Observe(mkTrace("a", "containment", "antichain", "200", testEpoch, 5, nil))
	e.Observe(mkTrace("b", "membership", "", "200", testEpoch, 1, nil))

	snap := e.Snapshot(e.LastSeen(), WindowLifetime, Filter{Op: "containment"})
	if len(snap.Lifetime) != 1 || snap.Lifetime[0].Op != "containment" {
		t.Fatalf("op filter: %+v", snap.Lifetime)
	}
	snap = e.Snapshot(e.LastSeen(), WindowLifetime, Filter{Engine: "-"})
	if len(snap.Lifetime) != 1 || snap.Lifetime[0].Op != "membership" {
		t.Fatalf("engine '-' filter: %+v", snap.Lifetime)
	}
	snap = e.Snapshot(e.LastSeen(), WindowLifetime, Filter{Engine: "antichain"})
	if len(snap.Lifetime) != 1 || snap.Lifetime[0].Op != "containment" {
		t.Fatalf("engine filter: %+v", snap.Lifetime)
	}
}

func TestEngineExemplars(t *testing.T) {
	e := New(Config{})
	for i := 0; i < 200; i++ {
		durMS := float64(1 + i%10)
		if i == 150 {
			durMS = 1000 // a clear tail trace
		}
		e.Observe(mkTrace(fmt.Sprintf("t%d", i), "infer", "", "200",
			testEpoch.Add(time.Duration(i)*time.Millisecond), durMS, nil))
	}
	snap := e.Snapshot(e.LastSeen(), WindowLifetime, Filter{})
	if len(snap.Lifetime) != 1 {
		t.Fatal("want one row")
	}
	exs := snap.Lifetime[0].Exemplars
	if len(exs) == 0 {
		t.Fatal("no exemplars")
	}
	bands := map[string]Exemplar{}
	for _, x := range exs {
		bands[x.Band] = x
	}
	tail, ok := bands["ge_p99"]
	if !ok {
		t.Fatalf("no ge_p99 exemplar in %+v", exs)
	}
	if tail.TraceID != "t150" {
		t.Errorf("ge_p99 exemplar = %s (%.0fms), want t150", tail.TraceID, tail.DurationMS)
	}
	if _, ok := bands["le_p50"]; !ok {
		t.Errorf("no le_p50 exemplar in %+v", exs)
	}
	// Window rows carry no exemplars (bands are lifetime-relative).
	full := e.Snapshot(e.LastSeen(), WindowAll, Filter{})
	for _, row := range full.Window {
		if len(row.Exemplars) != 0 {
			t.Errorf("window row has exemplars: %+v", row.Exemplars)
		}
	}
}

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	e.Observe(mkTrace("x", "op", "", "200", testEpoch, 1, nil))
	if e.Observed() != 0 || e.AnomalyCount() != 0 || e.Window() != 0 {
		t.Fatal("nil engine must be inert")
	}
	snap := e.Snapshot(testEpoch, WindowAll, Filter{})
	if snap == nil || snap.SchemaVersion != SnapshotSchemaVersion {
		t.Fatal("nil engine snapshot must still be well-formed")
	}
}

func TestEngineConcurrentObserve(t *testing.T) {
	e := New(Config{})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				e.Observe(mkTrace(fmt.Sprintf("g%d-%d", g, i), "containment", "antichain", "200",
					testEpoch.Add(time.Duration(i)*time.Millisecond), float64(1+i%5),
					map[string]int64{"states_expanded": int64(i)}))
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := e.Observed(); got != 1600 {
		t.Fatalf("observed = %d, want 1600", got)
	}
	snap := e.Snapshot(e.LastSeen(), WindowAll, Filter{})
	if snap.Lifetime[0].Requests != 1600 {
		t.Fatalf("requests = %d, want 1600", snap.Lifetime[0].Requests)
	}
}
