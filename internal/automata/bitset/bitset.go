// Package bitset provides word-packed state sets and a hash-consing
// interner for the automata engines. A subset-state of an n-state NFA
// is a StateSet over ⌈n/64⌉ uint64 words; the Interner canonicalizes
// equal sets to small dense integer ids, so the antichain containment
// engine can represent a subset-state as one int, compare sets with a
// word-wise subset test, and look transitions up in flat arrays instead
// of maps keyed by formatted strings.
package bitset

import (
	"math/bits"
	"sync"
)

// StateSet is a fixed-universe bitset: bit i set means state i is a
// member. All binary operations require both operands to come from the
// same universe (equal word length); New and Interner enforce that.
type StateSet []uint64

// New returns an empty StateSet for a universe of n states.
func New(n int) StateSet {
	return make(StateSet, (n+63)/64)
}

// Add inserts state i.
func (s StateSet) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Has reports whether state i is a member.
func (s StateSet) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clear removes every member, keeping the universe size.
func (s StateSet) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// UnionWith adds every member of o to s.
func (s StateSet) UnionWith(o StateSet) {
	for i, w := range o {
		s[i] |= w
	}
}

// IntersectWith removes every member of s not in o.
func (s StateSet) IntersectWith(o StateSet) {
	for i, w := range o {
		s[i] &= w
	}
}

// Intersects reports whether s and o share a member.
func (s StateSet) Intersects(o StateSet) bool {
	for i, w := range o {
		if s[i]&w != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every member of s is in o.
func (s StateSet) SubsetOf(o StateSet) bool {
	for i, w := range s {
		if w&^o[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o have exactly the same members.
func (s StateSet) Equal(o StateSet) bool {
	if len(s) != len(o) {
		return false
	}
	for i, w := range s {
		if w != o[i] {
			return false
		}
	}
	return true
}

// Empty reports whether s has no members.
func (s StateSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of members.
func (s StateSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f for every member in increasing order.
func (s StateSet) ForEach(f func(int)) {
	for i, w := range s {
		base := i << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Members returns the sorted member list (nil for the empty set).
func (s StateSet) Members() []int {
	var out []int
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Clone returns an independent copy.
func (s StateSet) Clone() StateSet {
	out := make(StateSet, len(s))
	copy(out, s)
	return out
}

// Hash returns an FNV-1a hash over the words, suitable for the
// interner's bucket index.
func (s StateSet) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s {
		for i := 0; i < 8; i++ {
			h ^= w & 0xff
			h *= prime
			w >>= 8
		}
	}
	return h
}

// Interner hash-conses StateSets of a fixed universe: structurally
// equal sets always receive the same small dense id, so engines can
// compare subset-states as ints and index side tables by id. Safe for
// concurrent use.
type Interner struct {
	words int

	mu     sync.RWMutex
	byHash map[uint64][]int
	sets   []StateSet
}

// NewInterner returns an interner for sets over a universe of n states.
func NewInterner(n int) *Interner {
	return &Interner{words: (n + 63) / 64, byHash: map[uint64][]int{}}
}

// Intern returns the canonical id of s, allocating a fresh id (and a
// private copy of s, so the caller may keep mutating its scratch set)
// the first time this set value is seen. fresh reports whether the id
// was newly allocated.
func (in *Interner) Intern(s StateSet) (id int, fresh bool) {
	if len(s) != in.words {
		panic("bitset: Intern called with a set from a different universe")
	}
	h := s.Hash()
	in.mu.RLock()
	for _, id := range in.byHash[h] {
		if in.sets[id].Equal(s) {
			in.mu.RUnlock()
			return id, false
		}
	}
	in.mu.RUnlock()

	in.mu.Lock()
	defer in.mu.Unlock()
	// re-check under the write lock: another goroutine may have won
	for _, id := range in.byHash[h] {
		if in.sets[id].Equal(s) {
			return id, false
		}
	}
	id = len(in.sets)
	in.sets = append(in.sets, s.Clone())
	in.byHash[h] = append(in.byHash[h], id)
	return id, true
}

// Set returns the canonical set for id. The returned set is shared and
// must not be mutated.
func (in *Interner) Set(id int) StateSet {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.sets[id]
}

// Len returns the number of distinct sets interned so far.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.sets)
}
