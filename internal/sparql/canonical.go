package sparql

import (
	"fmt"
	"sort"
	"strings"
)

// writeCanonical renders a parsed query into a normalized single-line form
// used for duplicate elimination (the Unique columns of the Section 9
// studies). The rendering is whitespace- and case-normalized but keeps the
// syntactic structure (it does not canonicalize variable names, matching
// the studies' string-level dedup after parsing).
func writeCanonical(q *Query, b *strings.Builder) {
	// prefixes are resolved away from the canonical form: two queries that
	// differ only in prefix declarations but expand identically should
	// dedup; we approximate by expanding prefixed names.
	switch q.Type {
	case Select:
		b.WriteString("SELECT ")
		if q.Distinct {
			b.WriteString("DISTINCT ")
		}
		if q.Reduced {
			b.WriteString("REDUCED ")
		}
		if q.Star {
			b.WriteString("* ")
		}
		for _, it := range q.Items {
			if it.Expr != nil {
				fmt.Fprintf(b, "(%s AS ?%s) ", canonExpr(it.Expr, q), it.Var)
			} else {
				fmt.Fprintf(b, "?%s ", it.Var)
			}
		}
	case Ask:
		b.WriteString("ASK ")
	case Construct:
		b.WriteString("CONSTRUCT { ")
		for _, t := range q.Template {
			writeCanonPattern(t, q, b)
		}
		b.WriteString("} ")
	case Describe:
		b.WriteString("DESCRIBE ")
		for _, t := range q.DescribeTerms {
			b.WriteString(canonTerm(t, q))
			b.WriteByte(' ')
		}
	}
	if q.Where != nil {
		b.WriteString("WHERE { ")
		writeCanonPattern(q.Where, q, b)
		b.WriteString("} ")
	}
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(b, "GROUP BY %s ", strings.Join(q.GroupBy, " "))
	}
	for _, h := range q.Having {
		fmt.Fprintf(b, "HAVING (%s) ", canonExpr(h, q))
	}
	if q.OrderBy > 0 {
		fmt.Fprintf(b, "ORDER BY [%d] ", q.OrderBy)
	}
	if q.Limit >= 0 {
		fmt.Fprintf(b, "LIMIT %d ", q.Limit)
	}
	if q.Offset >= 0 {
		fmt.Fprintf(b, "OFFSET %d ", q.Offset)
	}
}

func canonTerm(t Term, q *Query) string {
	if t.Kind == TermIRI {
		return expandIRI(t.Value, q)
	}
	return t.String()
}

// expandIRI resolves a prefixed name against the query's prologue.
func expandIRI(iri string, q *Query) string {
	if strings.HasPrefix(iri, "<") || q == nil {
		return iri
	}
	i := strings.IndexByte(iri, ':')
	if i < 0 {
		return iri
	}
	if base, ok := q.Prefixes[iri[:i]]; ok {
		return "<" + strings.TrimSuffix(strings.TrimPrefix(base, "<"), ">") + iri[i+1:] + ">"
	}
	return iri
}

func writeCanonPattern(p *Pattern, q *Query, b *strings.Builder) {
	switch p.Kind {
	case PGroup:
		for _, s := range p.Subs {
			writeCanonPattern(s, q, b)
		}
	case PTriple:
		fmt.Fprintf(b, "%s %s %s . ", canonTerm(p.S, q), canonTerm(p.P, q), canonTerm(p.O, q))
	case PPath:
		fmt.Fprintf(b, "%s %s %s . ", canonTerm(p.S, q), p.Path, canonTerm(p.O, q))
	case PFilter:
		fmt.Fprintf(b, "FILTER(%s) ", canonExpr(p.Expr, q))
	case PUnion:
		b.WriteString("{ ")
		writeCanonPattern(p.Subs[0], q, b)
		b.WriteString("} UNION { ")
		writeCanonPattern(p.Subs[1], q, b)
		b.WriteString("} ")
	case POptional:
		b.WriteString("OPTIONAL { ")
		writeCanonPattern(p.Subs[0], q, b)
		b.WriteString("} ")
	case PGraph:
		fmt.Fprintf(b, "GRAPH %s { ", canonTerm(p.Name, q))
		writeCanonPattern(p.Subs[0], q, b)
		b.WriteString("} ")
	case PBind:
		fmt.Fprintf(b, "BIND(%s AS ?%s) ", canonExpr(p.Expr, q), p.BindVar)
	case PValues:
		fmt.Fprintf(b, "VALUES (%s) [%d rows] ", strings.Join(p.ValuesVars, " "), p.ValuesRows)
	case PService:
		fmt.Fprintf(b, "SERVICE %s { ", canonTerm(p.Name, q))
		writeCanonPattern(p.Subs[0], q, b)
		b.WriteString("} ")
	case PMinus:
		b.WriteString("MINUS { ")
		writeCanonPattern(p.Subs[0], q, b)
		b.WriteString("} ")
	case PSubquery:
		b.WriteString("{ ")
		writeCanonical(p.Query, b)
		b.WriteString("} ")
	}
}

func canonExpr(e *Expr, q *Query) string {
	if e == nil {
		return ""
	}
	switch e.Kind {
	case EVar:
		return "?" + e.Var
	case EConst:
		return expandIRI(e.Const, q)
	case ECompare, EBool, EArith:
		if e.Op == "neg" {
			return "-" + canonExpr(e.Subs[0], q)
		}
		return "(" + canonExpr(e.Subs[0], q) + e.Op + canonExpr(e.Subs[1], q) + ")"
	case ENot:
		return "!(" + canonExpr(e.Subs[0], q) + ")"
	case EFunc:
		parts := make([]string, len(e.Subs))
		for i, s := range e.Subs {
			parts[i] = canonExpr(s, q)
		}
		return e.Func + "(" + strings.Join(parts, ",") + ")"
	case EExists:
		var b strings.Builder
		if e.Negated {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS { ")
		writeCanonPattern(e.Pattern, q, &b)
		b.WriteString("}")
		return b.String()
	case EIn:
		parts := make([]string, 0, len(e.Subs)-1)
		for _, s := range e.Subs[1:] {
			parts = append(parts, canonExpr(s, q))
		}
		sort.Strings(parts)
		neg := ""
		if e.Negated {
			neg = "NOT "
		}
		return canonExpr(e.Subs[0], q) + " " + neg + "IN(" + strings.Join(parts, ",") + ")"
	}
	return "?"
}
