package serveload

import (
	"io"
	"log"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// TestStreamDeterminism is the baseline-comparability guarantee: two
// streams constructed with the same (seed, worker) pair must issue a
// byte-identical request sequence, so two -serve-load runs with the same
// seed measure the same workload.
func TestStreamDeterminism(t *testing.T) {
	const n = 2000
	for _, worker := range []int{0, 1, 7} {
		a, b := NewStream(42, worker), NewStream(42, worker)
		for i := 0; i < n; i++ {
			ra, rb := a.Next(), b.Next()
			if ra != rb {
				t.Fatalf("worker %d diverged at request %d:\n a: %+v\n b: %+v", worker, i, ra, rb)
			}
			if ra.Kind == "" || ra.Path == "" || ra.ContentType == "" {
				t.Fatalf("request %d incomplete: %+v", i, ra)
			}
		}
	}
}

// TestStreamWorkersDiffer: distinct workers (and distinct seeds) must
// not replay each other's stream, or concurrency would measure nothing
// but the verdict cache.
func TestStreamWorkersDiffer(t *testing.T) {
	same := 0
	a, b, c := NewStream(42, 0), NewStream(42, 1), NewStream(43, 0)
	for i := 0; i < 200; i++ {
		ra, rb, rc := a.Next(), b.Next(), c.Next()
		if ra == rb || ra == rc {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("%d/200 requests identical across workers/seeds", same)
	}
}

// TestStreamCoversEveryKind: over a long horizon the mix must include
// every endpoint family, including the streaming and adversarial shares.
func TestStreamCoversEveryKind(t *testing.T) {
	want := []string{"containment", "membership", "validate", "infer",
		"analyze", "batch", "analyze-stream", "containment-adversarial"}
	seen := map[string]int{}
	s := NewStream(7, 3)
	for i := 0; i < 3000; i++ {
		seen[s.Next().Kind]++
	}
	for _, k := range want {
		if seen[k] == 0 {
			t.Errorf("kind %q never generated (mix: %v)", k, seen)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if p := percentile(xs, 0.5); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := percentile(xs, 0.99); p != 5 {
		t.Fatalf("p99 = %v, want 5", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v, want 0", p)
	}
	// the report invariant CI checks: p99 >= p50 for any sample set
	if percentile(xs, 0.99) < percentile(xs, 0.5) {
		t.Fatal("p99 < p50")
	}
}

// TestRunAgainstService exercises the whole generator end-to-end against
// an in-process server: bounded per-worker request counts, a populated
// report, and the percentile ordering the CI sanity check relies on.
func TestRunAgainstService(t *testing.T) {
	srv := service.New(service.Config{Logger: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := Run(Config{
		BaseURL:              ts.URL,
		Seed:                 1,
		Duration:             5 * time.Second,
		Concurrency:          2,
		MaxRequestsPerWorker: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 80 {
		t.Fatalf("requests = %d, want 2 workers x 40", rep.Requests)
	}
	if rep.RPS <= 0 || rep.DurationSeconds <= 0 {
		t.Fatalf("rps=%v duration=%v", rep.RPS, rep.DurationSeconds)
	}
	if rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Fatalf("p99 %v < p50 %v", rep.LatencyMS.P99, rep.LatencyMS.P50)
	}
	if rep.Seed != 1 || rep.Tool == "" || rep.SchemaVersion != 1 {
		t.Fatalf("report header: %+v", rep)
	}
	total := 0
	for _, n := range rep.Status {
		total += n
	}
	if total != rep.Requests {
		t.Fatalf("status counts sum to %d, want %d", total, rep.Requests)
	}
	if rep.Cache.Hits+rep.Cache.Misses == 0 {
		t.Fatal("cache counters never scraped")
	}

	// The profile block mirrors the server's /v1/stats lifetime view;
	// for the private in-process server it covers exactly this run.
	if len(rep.Profile) == 0 {
		t.Fatal("profile block never scraped")
	}
	var profiled uint64
	for key, row := range rep.Profile {
		profiled += row.Requests
		if row.P99MS < row.P50MS {
			t.Errorf("%s: p99 %.3f < p50 %.3f", key, row.P99MS, row.P50MS)
		}
	}
	if profiled != uint64(rep.Requests) {
		t.Fatalf("profile rows cover %d requests, client sent %d", profiled, rep.Requests)
	}
}
