package oracle

import (
	"fmt"
	"math/rand"
	"reflect"

	"repro/internal/core"
	"repro/internal/loggen"
)

// shardMerge is the always-on invariant of the parallel pipeline: the
// sharded analyze/merge path must produce a report deeply identical to
// the sequential reference at any shard count, on streams that contain
// invalid queries and cross-shard duplicates.
type shardMerge struct{}

func (shardMerge) Name() string { return "shard-merge" }

func (shardMerge) Description() string {
	return "core.AnalyzeQueries sharded vs sequential on loggen streams with cross-shard duplicates"
}

func (o shardMerge) Trial(r *rand.Rand) *Divergence {
	srcs := loggen.Sources()
	s := srcs[r.Intn(len(srcs))]
	g := loggen.NewGen(s, r.Int63())
	n := 15 + r.Intn(25)
	qs := make([]string, 0, n+n/3)
	for i := 0; i < n; i++ {
		qs = append(qs, g.Next())
	}
	// duplicates appended at the end land in different shards than their
	// first occurrence, exercising the cross-shard dedup correction
	for i := 0; i < n/3; i++ {
		qs = append(qs, qs[r.Intn(n)])
	}

	for _, workers := range []int{2, 3, 7} {
		if diff := shardDiff(s.Name, qs, workers); diff != "" {
			workers := workers
			qs = shrinkList(qs, func(cand []string) bool {
				return shardDiff(s.Name, cand, workers) != ""
			})
			return &Divergence{
				Input:  fmt.Sprintf("source=%s workers=%d queries=%q", s.Name, workers, qs),
				Detail: shardDiff(s.Name, qs, workers),
			}
		}
	}
	return nil
}

// shardDiff compares the sequential and sharded reports, returning a
// description of the first difference ("" when identical).
func shardDiff(name string, qs []string, workers int) string {
	seq := core.AnalyzeQueries(name, qs, 1)
	par := core.AnalyzeQueries(name, qs, workers)
	if reflect.DeepEqual(seq, par) {
		return ""
	}
	type scalar struct {
		field    string
		seq, par int
	}
	scalars := []scalar{
		{"Total", seq.Total, par.Total},
		{"Valid", seq.Valid, par.Valid},
		{"Unique", seq.Unique, par.Unique},
		{"CountedV", seq.CountedV, par.CountedV},
		{"CountedU", seq.CountedU, par.CountedU},
		{"MaxTriples", seq.MaxTriples, par.MaxTriples},
	}
	for _, sc := range scalars {
		if sc.seq != sc.par {
			return fmt.Sprintf("sharded (workers=%d) %s=%d but sequential %s=%d",
				workers, sc.field, sc.par, sc.field, sc.seq)
		}
	}
	return fmt.Sprintf("sharded (workers=%d) report differs from sequential in a counter field (scalars agree)", workers)
}
