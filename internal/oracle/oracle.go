// Package oracle is a seeded, reproducible differential-testing and
// metamorphic-oracle subsystem for the decision-procedure stack. Each
// Oracle pits independent implementations of the same problem against
// each other on randomly generated instances — regex membership via the
// memoized matcher vs. Brzozowski derivatives vs. the Glushkov NFA vs.
// the determinized DFA, schema containment verdicts vs. randomized
// counterexample search over sampled documents, property-path evaluation
// vs. a derivative-product and brute-force path enumeration, SPARQL
// algebra evaluation vs. exhaustive assignment enumeration, and the
// shard/merge pipeline vs. the sequential reference.
//
// Every trial is driven by a single int64 seed, so any divergence is
// replayable: RunTrial(o, seed) regenerates the exact instance. Oracles
// shrink failing inputs to minimal reproducers before reporting them.
package oracle

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Divergence describes one disagreement between implementations,
// already shrunk to a minimal reproducer.
type Divergence struct {
	// Oracle is the name of the oracle that found the disagreement.
	Oracle string
	// Seed is the trial seed that reproduces it deterministically.
	Seed int64
	// Input is the shrunk, human-readable reproducer.
	Input string
	// Detail names the implementations that disagreed, and how.
	Detail string
}

// ReplayCommand returns the rwdfuzz invocation that reruns exactly this
// trial.
func (d *Divergence) ReplayCommand() string {
	return fmt.Sprintf("go run ./cmd/rwdfuzz -oracle %s -replay %d", d.Oracle, d.Seed)
}

func (d *Divergence) String() string {
	return fmt.Sprintf("[%s seed=%d]\n  input:  %s\n  detail: %s\n  replay: %s",
		d.Oracle, d.Seed, d.Input, d.Detail, d.ReplayCommand())
}

// Oracle is one differential or metamorphic cross-check. Trial runs a
// single randomized comparison driven entirely by r; the returned
// divergence (nil when all implementations agree) must already be shrunk.
// Trial must be deterministic in r: the same seed regenerates the same
// instance and verdicts.
type Oracle interface {
	Name() string
	Description() string
	Trial(r *rand.Rand) *Divergence
}

// injectedBug names the oracle whose primary implementation is
// deliberately mutated, to prove the detector catches and shrinks real
// bugs. Empty means no mutation.
var injectedBug string

// SetInjectedBug enables (non-empty) or disables ("") the deliberate
// mutation for the named oracle.
func SetInjectedBug(oracle string) { injectedBug = oracle }

// All returns every registered oracle in stable order.
func All() []Oracle {
	return []Oracle{
		regexMembership{},
		regexContainment{},
		antichainContainment{},
		schemaContainment{},
		jsonSchemaContainment{},
		propertyPathEval{},
		sparqlEval{},
		shardMerge{},
		storeAnalysis{},
	}
}

// Names returns the registered oracle names in stable order.
func Names() []string {
	var out []string
	for _, o := range All() {
		out = append(out, o.Name())
	}
	return out
}

// Select resolves oracle names ("all" or a subset) to oracles.
func Select(names []string) ([]Oracle, error) {
	if len(names) == 1 && names[0] == "all" {
		return All(), nil
	}
	byName := map[string]Oracle{}
	for _, o := range All() {
		byName[o.Name()] = o
	}
	var out []Oracle
	for _, n := range names {
		o, ok := byName[n]
		if !ok {
			known := Names()
			sort.Strings(known)
			return nil, fmt.Errorf("unknown oracle %q (known: %v)", n, known)
		}
		out = append(out, o)
	}
	return out, nil
}

// RunTrial runs one trial of o with the given seed, stamping any
// divergence with the oracle name and seed so it can be replayed.
func RunTrial(o Oracle, trialSeed int64) *Divergence {
	r := rand.New(rand.NewSource(trialSeed))
	d := o.Trial(r)
	if d != nil {
		d.Oracle = o.Name()
		d.Seed = trialSeed
	}
	return d
}

// Stats summarizes one oracle run.
type Stats struct {
	Oracle      string
	Trials      int
	Elapsed     time.Duration
	Divergences []*Divergence
}

// Run drives o with trial seeds seed, seed+1, … until the budget is
// exhausted or maxDivergences have been found (<= 0 means stop at the
// first).
func Run(o Oracle, seed int64, budget time.Duration, maxDivergences int) *Stats {
	if maxDivergences <= 0 {
		maxDivergences = 1
	}
	start := time.Now()
	deadline := start.Add(budget)
	st := &Stats{Oracle: o.Name()}
	for trial := int64(0); time.Now().Before(deadline); trial++ {
		if d := RunTrial(o, seed+trial); d != nil {
			st.Divergences = append(st.Divergences, d)
			if len(st.Divergences) >= maxDivergences {
				st.Trials++
				break
			}
		}
		st.Trials++
	}
	st.Elapsed = time.Since(start)
	return st
}

// RunTrials drives o with exactly trials seeds seed, …, seed+trials-1,
// independent of wall time — the form CI uses so a required trial count
// (e.g. the 10k-case antichain run) does not silently shrink on slow
// runners. It stops early only after maxDivergences findings (<= 0
// means stop at the first).
func RunTrials(o Oracle, seed int64, trials int, maxDivergences int) *Stats {
	if maxDivergences <= 0 {
		maxDivergences = 1
	}
	start := time.Now()
	st := &Stats{Oracle: o.Name()}
	for trial := int64(0); trial < int64(trials); trial++ {
		if d := RunTrial(o, seed+trial); d != nil {
			st.Divergences = append(st.Divergences, d)
			if len(st.Divergences) >= maxDivergences {
				st.Trials++
				break
			}
		}
		st.Trials++
	}
	st.Elapsed = time.Since(start)
	return st
}
