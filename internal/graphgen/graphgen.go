// Package graphgen provides deterministic synthetic generators for the
// graph families of the treewidth study (Maniu, Senellart & Jog; Table 1
// of "Towards Theory for Real-World Data"): road networks (HongKong,
// Paris), web-like networks (Wikipedia), communication networks
// (Gnutella), and hierarchical networks (Royal, a genealogy). The paper's
// point — road networks have comparatively small treewidth, web-like
// graphs have treewidth in the thousands (a dense core), hierarchical data
// is nearly tree-like — is a property of the family, which these
// generators reproduce at configurable scale.
package graphgen

import (
	"math/rand"

	"repro/internal/graph"
)

// RoadNetwork generates a perturbed grid: a w×h lattice with a fraction of
// edges removed and a few diagonal shortcuts — planar-ish, low treewidth
// (the treewidth of an n×n grid is n, so scale controls the bound).
func RoadNetwork(r *rand.Rand, w, h int) *graph.Graph {
	g := graph.New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w && r.Float64() < 0.93 {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h && r.Float64() < 0.93 {
				g.AddEdge(id(x, y), id(x, y+1))
			}
			if x+1 < w && y+1 < h && r.Float64() < 0.05 {
				g.AddEdge(id(x, y), id(x+1, y+1))
			}
		}
	}
	return g
}

// WebLike generates a Barabási–Albert preferential-attachment graph with m
// edges per new vertex — power-law degrees and a dense core, the regime in
// which Maniu et al. found treewidth bounds in the thousands.
func WebLike(r *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(n)
	if n == 0 {
		return g
	}
	// endpoint pool for preferential attachment
	var pool []int
	start := m + 1
	if start > n {
		start = n
	}
	for v := 0; v < start; v++ {
		for u := 0; u < v; u++ {
			g.AddEdge(u, v)
			pool = append(pool, u, v)
		}
	}
	for v := start; v < n; v++ {
		added := map[int]bool{}
		for len(added) < m {
			var u int
			if len(pool) > 0 {
				u = pool[r.Intn(len(pool))]
			} else {
				u = r.Intn(v)
			}
			if u == v || added[u] {
				continue
			}
			added[u] = true
			g.AddEdge(u, v)
			pool = append(pool, u, v)
		}
	}
	return g
}

// Communication generates a Gnutella-like sparse random graph with a
// power-law flavor: preferential attachment with m = 2 plus random
// rewiring — moderately large treewidth relative to its size.
func Communication(r *rand.Rand, n int) *graph.Graph {
	g := WebLike(r, n, 2)
	// random long-range edges increase the core density slightly
	for i := 0; i < n/10; i++ {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	return g
}

// Genealogy generates a Royal-style hierarchical network: a forest of
// ancestry trees plus a small fraction of marriage/intermarriage edges —
// nearly tree-like, treewidth O(1)-ish (Table 1 reports bounds 11–24 on
// 3k nodes).
func Genealogy(r *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		parent := r.Intn(v)
		g.AddEdge(v, parent)
	}
	// marriages between close generations create small cycles
	for i := 0; i < n/20; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		g.AddEdge(u, v)
	}
	return g
}

// Dataset pairs a name with a generated graph, mirroring a Table 1 row.
type Dataset struct {
	Name  string
	Graph *graph.Graph
}

// Table1Datasets generates scaled-down analogues of the five Table 1 rows.
// scale ≈ 1 yields graphs of a few thousand nodes (Royal is generated at
// its original ~3k size).
func Table1Datasets(seed int64, scale float64) []Dataset {
	r := rand.New(rand.NewSource(seed))
	dim := func(base int) int {
		v := int(float64(base) * scale)
		if v < 4 {
			v = 4
		}
		return v
	}
	return []Dataset{
		{"HongKong", RoadNetwork(r, dim(40), dim(25))},
		{"Paris", RoadNetwork(r, dim(80), dim(50))},
		{"Wikipedia", WebLike(r, dim(2500), 10)},
		{"Gnutella", Communication(r, dim(2000))},
		{"Royal", Genealogy(r, dim(3000))},
	}
}
