// Package automata implements finite automata over label alphabets: the
// Glushkov construction from regular expressions, subset construction,
// DFA minimization, Boolean operations, and the decision procedures
// (membership, emptiness, containment, equivalence, intersection
// non-emptiness) that underpin the complexity landscape of Sections 4.2
// and 9.6 of "Towards Theory for Real-World Data".
package automata

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/regex"
)

// NFA is a nondeterministic finite automaton without ε-transitions.
// States are 0..NumStates-1.
type NFA struct {
	NumStates int
	Initial   []int
	Final     map[int]bool
	// Trans[q][a] is the sorted set of successor states of q on label a.
	Trans []map[string][]int
	// Alphabet is the sorted set of labels with at least one transition,
	// possibly extended explicitly via WithAlphabet.
	Alphabet []string
}

// NewNFA returns an empty NFA with n states and no transitions.
func NewNFA(n int) *NFA {
	t := make([]map[string][]int, n)
	for i := range t {
		t[i] = map[string][]int{}
	}
	return &NFA{NumStates: n, Final: map[int]bool{}, Trans: t}
}

// AddTransition adds q --a--> p, keeping successor sets sorted and unique.
func (n *NFA) AddTransition(q int, a string, p int) {
	succ := n.Trans[q][a]
	i := sort.SearchInts(succ, p)
	if i < len(succ) && succ[i] == p {
		return
	}
	succ = append(succ, 0)
	copy(succ[i+1:], succ[i:])
	succ[i] = p
	n.Trans[q][a] = succ
	n.addLabel(a)
}

func (n *NFA) addLabel(a string) {
	i := sort.SearchStrings(n.Alphabet, a)
	if i < len(n.Alphabet) && n.Alphabet[i] == a {
		return
	}
	n.Alphabet = append(n.Alphabet, "")
	copy(n.Alphabet[i+1:], n.Alphabet[i:])
	n.Alphabet[i] = a
}

// WithAlphabet extends the automaton's alphabet (needed, e.g., before
// complementation so that both sides of a containment check agree).
func (n *NFA) WithAlphabet(labels []string) *NFA {
	for _, a := range labels {
		n.addLabel(a)
	}
	return n
}

// Glushkov constructs the position automaton of e: state 0 is initial,
// states 1..n correspond to the symbol occurrences of e in preorder
// (Section 4.2.1; the expression is deterministic in the sense of
// Brüggemann-Klein & Wood iff this automaton is deterministic).
func Glushkov(e *regex.Expr) *NFA {
	l := regex.Linearize(e)
	n := NewNFA(l.NumPositions() + 1)
	for _, p := range l.First {
		n.AddTransition(0, l.Sym(p), p)
	}
	for p, succs := range l.Follow {
		for _, q := range succs {
			n.AddTransition(p, l.Sym(q), q)
		}
	}
	n.Initial = []int{0}
	if l.Nullable {
		n.Final[0] = true
	}
	for _, p := range l.Last {
		n.Final[p] = true
	}
	// Make sure symbols of an empty-language subexpression still extend the
	// alphabet (they generate no transitions).
	n.WithAlphabet(e.Alphabet())
	return n
}

// IsDeterministic reports whether the NFA has a single initial state and at
// most one successor per state and label.
func (n *NFA) IsDeterministic() bool {
	if len(n.Initial) > 1 {
		return false
	}
	for _, m := range n.Trans {
		for _, succ := range m {
			if len(succ) > 1 {
				return false
			}
		}
	}
	return true
}

// Accepts reports whether the NFA accepts the word.
func (n *NFA) Accepts(word []string) bool {
	cur := map[int]bool{}
	for _, q := range n.Initial {
		cur[q] = true
	}
	for _, a := range word {
		next := map[int]bool{}
		for q := range cur {
			for _, p := range n.Trans[q][a] {
				next[p] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for q := range cur {
		if n.Final[q] {
			return true
		}
	}
	return false
}

// IsEmpty reports whether L(n) = ∅ (no final state reachable).
func (n *NFA) IsEmpty() bool {
	seen := make([]bool, n.NumStates)
	stack := append([]int(nil), n.Initial...)
	for _, q := range stack {
		seen[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Final[q] {
			return false
		}
		for _, succs := range n.Trans[q] {
			for _, p := range succs {
				if !seen[p] {
					seen[p] = true
					stack = append(stack, p)
				}
			}
		}
	}
	return true
}

// ShortestWitness returns a shortest accepted word, or (nil, false) if the
// language is empty. The empty word is returned as an empty non-nil slice.
func (n *NFA) ShortestWitness() ([]string, bool) {
	type item struct {
		state int
		word  []string
	}
	seen := make([]bool, n.NumStates)
	var queue []item
	for _, q := range n.Initial {
		if n.Final[q] {
			return []string{}, true
		}
		seen[q] = true
		queue = append(queue, item{q, nil})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		// Deterministic order: iterate labels sorted.
		labels := make([]string, 0, len(n.Trans[it.state]))
		for a := range n.Trans[it.state] {
			labels = append(labels, a)
		}
		sort.Strings(labels)
		for _, a := range labels {
			for _, p := range n.Trans[it.state][a] {
				if seen[p] {
					continue
				}
				seen[p] = true
				w := append(append([]string(nil), it.word...), a)
				if n.Final[p] {
					return w, true
				}
				queue = append(queue, item{p, w})
			}
		}
	}
	return nil, false
}

// DFA is a deterministic finite automaton. State 0 is the initial state.
// A missing transition means the word is rejected (partial DFA); Totalize
// adds an explicit sink.
type DFA struct {
	NumStates int
	Final     map[int]bool
	Trans     []map[string]int
	Alphabet  []string
}

// NewDFA returns a DFA with n states and no transitions.
func NewDFA(n int) *DFA {
	t := make([]map[string]int, n)
	for i := range t {
		t[i] = map[string]int{}
	}
	return &DFA{NumStates: n, Final: map[int]bool{}, Trans: t}
}

// SetTransition sets δ(q, a) = p.
func (d *DFA) SetTransition(q int, a string, p int) {
	d.Trans[q][a] = p
	i := sort.SearchStrings(d.Alphabet, a)
	if i < len(d.Alphabet) && d.Alphabet[i] == a {
		return
	}
	d.Alphabet = append(d.Alphabet, "")
	copy(d.Alphabet[i+1:], d.Alphabet[i:])
	d.Alphabet[i] = a
}

// Accepts reports whether d accepts the word.
func (d *DFA) Accepts(word []string) bool {
	q := 0
	for _, a := range word {
		p, ok := d.Trans[q][a]
		if !ok {
			return false
		}
		q = p
	}
	return d.Final[q]
}

// Determinize applies the subset construction, producing a partial DFA whose
// states are the reachable subsets. DeterminizeCtx adds cooperative
// cancellation for callers facing adversarial inputs.
func Determinize(n *NFA) *DFA {
	d, _ := DeterminizeCtx(context.Background(), n)
	return d
}

// Totalize returns an equivalent total DFA over the union of d's alphabet and
// extra, adding a non-final sink state if any transition is missing.
func (d *DFA) Totalize(extra []string) *DFA {
	alpha := append([]string(nil), d.Alphabet...)
	for _, a := range extra {
		i := sort.SearchStrings(alpha, a)
		if i >= len(alpha) || alpha[i] != a {
			alpha = append(alpha, "")
			copy(alpha[i+1:], alpha[i:])
			alpha[i] = a
		}
	}
	needSink := false
	for q := 0; q < d.NumStates; q++ {
		if len(d.Trans[q]) < len(alpha) {
			needSink = true
			break
		}
	}
	out := NewDFA(d.NumStates)
	out.Alphabet = alpha
	for q := range d.Final {
		out.Final[q] = d.Final[q]
	}
	sink := -1
	if needSink {
		sink = d.NumStates
		out.NumStates++
		out.Trans = append(out.Trans, map[string]int{})
	}
	for q := 0; q < d.NumStates; q++ {
		for _, a := range alpha {
			if p, ok := d.Trans[q][a]; ok {
				out.Trans[q][a] = p
			} else {
				out.Trans[q][a] = sink
			}
		}
	}
	if needSink {
		for _, a := range alpha {
			out.Trans[sink][a] = sink
		}
	}
	return out
}

// Complement returns a total DFA for the complement of L(d) w.r.t. the union
// of d's alphabet and extra.
func (d *DFA) Complement(extra []string) *DFA {
	t := d.Totalize(extra)
	for q := 0; q < t.NumStates; q++ {
		if t.Final[q] {
			delete(t.Final, q)
		} else {
			t.Final[q] = true
		}
	}
	return t
}

// Minimize returns the minimal total DFA equivalent to d (Moore's algorithm
// over the totalized automaton, with unreachable-state pruning).
func (d *DFA) Minimize() *DFA {
	t := d.Totalize(nil)
	// prune unreachable
	reach := make([]bool, t.NumStates)
	stack := []int{0}
	reach[0] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range t.Trans[q] {
			if !reach[p] {
				reach[p] = true
				stack = append(stack, p)
			}
		}
	}
	// Moore partition refinement
	class := make([]int, t.NumStates)
	for q := 0; q < t.NumStates; q++ {
		if t.Final[q] {
			class[q] = 1
		}
	}
	for {
		// signature = (class, class of successor per alphabet label)
		sig := make([]string, t.NumStates)
		for q := 0; q < t.NumStates; q++ {
			if !reach[q] {
				continue
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%d", class[q])
			for _, a := range t.Alphabet {
				fmt.Fprintf(&b, "|%d", class[t.Trans[q][a]])
			}
			sig[q] = b.String()
		}
		newClass := make([]int, t.NumStates)
		idx := map[string]int{}
		n := 0
		for q := 0; q < t.NumStates; q++ {
			if !reach[q] {
				continue
			}
			c, ok := idx[sig[q]]
			if !ok {
				c = n
				n++
				idx[sig[q]] = c
			}
			newClass[q] = c
		}
		same := true
		for q := 0; q < t.NumStates; q++ {
			if reach[q] && newClass[q] != class[q] {
				same = false
			}
		}
		class = newClass
		if same {
			break
		}
	}
	// renumber with initial state's class first
	nClasses := 0
	for q := 0; q < t.NumStates; q++ {
		if reach[q] && class[q]+1 > nClasses {
			nClasses = class[q] + 1
		}
	}
	remap := make([]int, nClasses)
	for i := range remap {
		remap[i] = -1
	}
	next := 0
	order := make([]int, 0, t.NumStates)
	order = append(order, 0)
	seen := map[int]bool{class[0]: true}
	remap[class[0]] = next
	next++
	// BFS over class graph for stable numbering
	for i := 0; i < len(order); i++ {
		q := order[i]
		for _, a := range t.Alphabet {
			p := t.Trans[q][a]
			if !seen[class[p]] {
				seen[class[p]] = true
				remap[class[p]] = next
				next++
				order = append(order, p)
			}
		}
	}
	out := NewDFA(next)
	out.Alphabet = append([]string(nil), t.Alphabet...)
	for i, q := range order {
		for _, a := range t.Alphabet {
			out.Trans[i][a] = remap[class[t.Trans[q][a]]]
		}
		if t.Final[q] {
			out.Final[i] = true
		}
	}
	return out
}

// Product returns a partial DFA for L(d1) ∩ L(d2) (on intersect=true) or
// L(d1) ∪ L(d2) (intersect=false; both inputs are totalized first).
func Product(d1, d2 *DFA, intersect bool) *DFA {
	if !intersect {
		d1 = d1.Totalize(d2.Alphabet)
		d2 = d2.Totalize(d1.Alphabet)
	}
	type pair struct{ a, b int }
	index := map[pair]int{{0, 0}: 0}
	states := []pair{{0, 0}}
	out := NewDFA(1)
	for i := 0; i < len(states); i++ {
		st := states[i]
		f1, f2 := d1.Final[st.a], d2.Final[st.b]
		if (intersect && f1 && f2) || (!intersect && (f1 || f2)) {
			out.Final[i] = true
		}
		for a, p1 := range d1.Trans[st.a] {
			p2, ok := d2.Trans[st.b][a]
			if !ok {
				continue // missing transition rejects in both modes after totalization
			}
			np := pair{p1, p2}
			j, ok := index[np]
			if !ok {
				j = len(states)
				index[np] = j
				states = append(states, np)
				out.Trans = append(out.Trans, map[string]int{})
				out.NumStates++
			}
			out.SetTransition(i, a, j)
		}
	}
	return out
}

// IsEmpty reports whether L(d) = ∅.
func (d *DFA) IsEmpty() bool {
	seen := make([]bool, d.NumStates)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Final[q] {
			return false
		}
		for _, p := range d.Trans[q] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return true
}

// ToNFA converts d to an equivalent NFA.
func (d *DFA) ToNFA() *NFA {
	n := NewNFA(d.NumStates)
	n.Initial = []int{0}
	for q, m := range d.Trans {
		for a, p := range m {
			n.AddTransition(q, a, p)
		}
	}
	for q := range d.Final {
		n.Final[q] = true
	}
	n.WithAlphabet(d.Alphabet)
	return n
}

// Contains reports whether L(e1) ⊆ L(e2), deciding
// L(e1) ∩ complement(L(e2)) = ∅ with the antichain engine of
// antichain.go: a lazy product of the Glushkov NFA of e1 with the
// on-the-fly subset automaton of e2 over interned bitsets, pruned by
// subsumption. This is the general (PSPACE-complete, Section 4.2.2)
// decision procedure — the problem stays exponential in the worst case,
// the engine just reaches it far later; ContainsClassic retains the
// eager textbook construction, and package chare provides the
// polynomial-time algorithms for the fragments of Theorem 4.4.
func Contains(e1, e2 *regex.Expr) bool {
	ok, _ := ContainsCtx(context.Background(), e1, e2)
	return ok
}

// Equivalent reports whether L(e1) = L(e2).
func Equivalent(e1, e2 *regex.Expr) bool {
	return Contains(e1, e2) && Contains(e2, e1)
}

// NFAContains reports whether L(n1) ⊆ L(e2), with the same antichain
// construction as Contains. The NFA form lets callers pre-restrict the
// left language (e.g. DTD containment restricts content models to
// realizable labels before comparing).
func NFAContains(n1 *NFA, e2 *regex.Expr) bool {
	ok, _ := NFAContainsCtx(context.Background(), n1, e2)
	return ok
}

// IntersectionNonEmpty decides RE-Intersection (Section 4.2.2): whether
// L(e1) ∩ … ∩ L(en) ≠ ∅, by an on-the-fly product of the Glushkov automata.
// The state space is exponential in the number of expressions in the worst
// case (the problem is PSPACE-complete); package chare provides the
// polynomial cases of Theorem 4.5.
func IntersectionNonEmpty(es ...*regex.Expr) bool {
	w, ok := IntersectionWitness(es...)
	_ = w
	return ok
}

// IntersectionWitness returns a word in the intersection of the languages,
// or (nil, false) if the intersection is empty.
func IntersectionWitness(es ...*regex.Expr) ([]string, bool) {
	w, ok, _ := IntersectionWitnessCtx(context.Background(), es...)
	return w, ok
}

func unionAlpha(a, b []string) []string {
	m := map[string]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		m[x] = true
	}
	out := make([]string, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

func intersectSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// ToDFA is a convenience: minimal DFA of a regular expression.
func ToDFA(e *regex.Expr) *DFA {
	return Determinize(Glushkov(e)).Minimize()
}
