package main

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/obs/recorder"
)

var testEpoch = time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)

// mkTrace builds a synthetic recorded trace the way the server would
// export one: an "http."-prefixed root carrying the status attribute
// and a child engine span carrying cost counters.
func mkTrace(id, op, status string, start time.Time, durMS float64, engine string, counters map[string]int64) *recorder.Trace {
	child := &obs.Node{Name: "work", DurationMS: durMS, Counters: counters}
	if engine != "" {
		child.Attrs = map[string]string{recorder.EngineAttr: engine}
	}
	return &recorder.Trace{
		TraceID:    id,
		Op:         op,
		Status:     status,
		Start:      start,
		DurationMS: durMS,
		Root: &obs.Node{
			Name:       "http." + op,
			TraceID:    id,
			Attrs:      map[string]string{recorder.StatusAttr: status},
			DurationMS: durMS,
			Children:   []*obs.Node{child},
		},
	}
}

func TestCheckCounterKnown(t *testing.T) {
	traces := []*recorder.Trace{
		mkTrace("t1", "containment", "200", testEpoch, 2, "antichain",
			map[string]int64{"states_expanded": 40}),
		mkTrace("t2", "containment", "200", testEpoch, 3, "antichain",
			map[string]int64{"antichain_pruned": 7}),
	}
	if err := checkCounterKnown(traces, "states_expanded"); err != nil {
		t.Fatalf("known counter rejected: %v", err)
	}
	err := checkCounterKnown(traces, "bogus_counter")
	if err == nil {
		t.Fatal("unknown counter accepted")
	}
	if _, ok := err.(usageError); !ok {
		t.Fatalf("want usageError (exit 2), got %T: %v", err, err)
	}
	for _, want := range []string{"bogus_counter", "states_expanded", "antichain_pruned"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if err := checkCounterKnown(nil, "anything"); err != nil {
		t.Fatalf("empty trace set should not be a usage error: %v", err)
	}
}

// TestFetchSnapshotDir replays an on-disk NDJSON log through the
// profile engine and checks the snapshot is exactly what a direct
// profile.Replay of the same traces produces.
func TestFetchSnapshotDir(t *testing.T) {
	dir := t.TempDir()
	log, err := recorder.OpenLog(dir, recorder.LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var traces []*recorder.Trace
	for i := 0; i < 30; i++ {
		tr := mkTrace(fmt.Sprintf("t%02d", i), "containment", "200",
			testEpoch.Add(time.Duration(i)*time.Second),
			1+float64(i%7), "antichain",
			map[string]int64{"states_expanded": int64(20 + 5*i)})
		traces = append(traces, tr)
		if err := log.Append(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := fetchSnapshot(&source{dir: dir}, profile.WindowAll, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Observed != 30 {
		t.Fatalf("observed %d, want 30", snap.Observed)
	}
	if len(snap.Lifetime) != 1 {
		t.Fatalf("lifetime rows: %d, want 1", len(snap.Lifetime))
	}
	row := snap.Lifetime[0]
	if row.Op != "containment" || row.Engine != "antichain" || row.Requests != 30 {
		t.Fatalf("bad lifetime row: %+v", row)
	}
	if row.DurationMS.P99 < row.DurationMS.P50 {
		t.Fatalf("p99 %.3f < p50 %.3f", row.DurationMS.P99, row.DurationMS.P50)
	}
	if len(snap.Window) == 0 {
		t.Fatal("no live-window rows: snapshot must be taken at the log's tail, not wall clock")
	}

	eng := profile.Replay(traces, profile.Config{})
	want := eng.Snapshot(eng.LastSeen(), profile.WindowAll, profile.Filter{})
	got, _ := json.Marshal(snap)
	wantJSON, _ := json.Marshal(want)
	if string(got) != string(wantJSON) {
		t.Fatalf("dir snapshot differs from direct replay:\n got %s\nwant %s", got, wantJSON)
	}

	// Filters pass through to the replayed engine too.
	filtered, err := fetchSnapshot(&source{dir: dir}, profile.WindowLifetime, "containment", "-")
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.Lifetime) != 0 {
		t.Fatalf("engine=- (no engine ran) matched %d rows, want 0", len(filtered.Lifetime))
	}
}
