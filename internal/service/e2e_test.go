package service

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEndToEndMixedWorkload drives a concurrent mix of containment,
// validation, inference, and analysis requests (run under -race in CI)
// and then checks the observability surface: request counters must add
// up and repeated containment requests must be served from the cache.
func TestEndToEndMixedWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 32, CacheSize: 256})

	type reqSpec struct {
		path string
		body string
	}
	specs := []reqSpec{
		{"/v1/containment", `{"engine":"regex","left":"a b","right":"a (b|c)"}`},
		{"/v1/containment", `{"engine":"kore","left":"a a","right":"a*"}`},
		{"/v1/membership", `{"expr":"(a|b)* a","word":["b","a"]}`},
		{"/v1/validate", `{"kind":"dtd","schema":"<!ELEMENT r (a*)> <!ELEMENT a EMPTY>","docs":["r(a, a)","r(r)"]}`},
		{"/v1/infer", `{"algorithm":"sore","words":[["a","b"],["b"]]}`},
		{"/v1/analyze", `{"name":"mix","queries":["SELECT ?x WHERE { ?x ?p ?y }","ASK { ?a ?b ?c }"]}`},
	}
	// Warm the verdict cache sequentially: concurrent identical requests
	// may legitimately all miss before the first Put lands.
	warmed := 0
	for _, spec := range specs {
		if spec.path == "/v1/containment" {
			post(t, ts.URL, spec.path, spec.body, nil)
			warmed++
		}
	}

	const perWorker = 5
	var wg sync.WaitGroup
	errs := make(chan error, len(specs)*perWorker)
	for w := 0; w < len(specs); w++ {
		for i := 0; i < perWorker; i++ {
			wg.Add(1)
			go func(spec reqSpec) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+spec.path, "application/json", strings.NewReader(spec.body))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != 200 {
					raw, _ := io.ReadAll(resp.Body)
					errs <- fmt.Errorf("%s: code %d: %s", spec.path, resp.StatusCode, raw)
				}
			}(specs[(w+i)%len(specs)])
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := scrapeMetrics(t, ts.URL)
	total := 0
	for k, v := range m {
		if strings.HasPrefix(k, "rwdserve_requests_total{") {
			total += int(v)
		}
	}
	if want := len(specs)*perWorker + warmed; total != want {
		t.Fatalf("requests_total sums to %d, want %d", total, want)
	}
	// every concurrent containment request hits the warmed cache
	if hits := m["rwdserve_cache_hits_total"]; hits < float64(2*perWorker) {
		t.Fatalf("cache hits = %v, want >= %d", hits, 2*perWorker)
	}
	if m["rwdserve_inflight"] != 0 {
		t.Fatalf("inflight = %v after workload drained", m["rwdserve_inflight"])
	}
}

// TestCacheHitVisibleInMetrics is the acceptance check: a second
// identical containment request is served from the cache, verified via
// the /metrics counters (not only the response's cached flag).
func TestCacheHitVisibleInMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"engine":"regex","left":"(a|b)*","right":"a* (b a*)*"}`
	var first, second containmentResponse
	post(t, ts.URL, "/v1/containment", body, &first)
	before := scrapeMetrics(t, ts.URL)
	post(t, ts.URL, "/v1/containment", body, &second)
	after := scrapeMetrics(t, ts.URL)
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags: first=%v second=%v", first.Cached, second.Cached)
	}
	if first.Contained != second.Contained {
		t.Fatalf("cache changed the verdict: %v vs %v", first.Contained, second.Contained)
	}
	if after["rwdserve_cache_hits_total"] != before["rwdserve_cache_hits_total"]+1 {
		t.Fatalf("cache hits %v -> %v, want +1",
			before["rwdserve_cache_hits_total"], after["rwdserve_cache_hits_total"])
	}
	if after["rwdserve_cache_misses_total"] != before["rwdserve_cache_misses_total"] {
		t.Fatalf("cache misses moved on a hit: %v -> %v",
			before["rwdserve_cache_misses_total"], after["rwdserve_cache_misses_total"])
	}
}

// TestGracefulDrain exercises the SIGTERM path via Serve's shutdown
// channel: a request in flight when shutdown begins must still get its
// response, and Serve must return only after it did.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Logger: log.New(io.Discard, "", 0)})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shutdown := make(chan struct{})
	served := make(chan error, 1)
	go func() { served <- s.Serve(l, shutdown, 10*time.Second) }()
	base := "http://" + l.Addr().String()

	// in-flight adversarial request that will end at its 400ms deadline
	type result struct {
		code int
		at   time.Time
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/containment", "application/json",
			strings.NewReader(adversarialContainment(400)))
		if err != nil {
			t.Error(err)
			resc <- result{0, time.Now()}
			return
		}
		resp.Body.Close()
		resc <- result{resp.StatusCode, time.Now()}
	}()
	time.Sleep(100 * time.Millisecond) // let the request reach the engine
	close(shutdown)

	res := <-resc
	if res.code != 504 {
		t.Fatalf("in-flight request code=%d, want 504", res.code)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil after clean drain", err)
	}
	if exited := time.Now(); exited.Before(res.at) {
		t.Fatal("Serve returned before the in-flight response was written")
	}
	// new connections are refused after drain
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

var metricLine = regexp.MustCompile(`^([a-zA-Z_]+(?:\{[^}]*\})?) ([0-9.eE+-]+)$`)

// scrapeMetrics fetches /metrics and returns series name (with labels)
// -> value.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := metricLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = v
	}
	return out
}
