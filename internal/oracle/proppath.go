package oracle

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/propertypath"
	"repro/internal/rdf"
	"repro/internal/regex"
)

// propertyPathEval cross-checks the Glushkov-product evaluator of
// propertypath.Eval against an independent Brzozowski derivative-product
// BFS, checks the semantics hierarchy (simple-path answers ⊆ trail
// answers ⊆ regular answers), and, for paths without negated property
// sets, compares the simple-path and trail evaluators against exhaustive
// path enumeration over the graph.
type propertyPathEval struct{}

func (propertyPathEval) Name() string { return "propertypath-eval" }

func (propertyPathEval) Description() string {
	return "propertypath.Eval vs derivative-product BFS; EvalSimplePaths/EvalTrails vs exhaustive path enumeration"
}

var ppPreds = []string{"p", "q"}

// randomPPGraph draws a small graph over nodes n0..n4 and ppPreds.
func randomPPGraph(r *rand.Rand) *rdf.Graph {
	g := rdf.NewGraph()
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	// <= 6 triples keeps exhaustive trail enumeration cheap
	m := 3 + r.Intn(4)
	for i := 0; i < m; i++ {
		g.Add(nodes[r.Intn(len(nodes))], ppPreds[r.Intn(len(ppPreds))], nodes[r.Intn(len(nodes))])
	}
	return g
}

// randomPropertyPath draws a path AST of bounded depth; negated property
// sets are included only when allowNeg is set (the exhaustive path
// enumerators only handle plain forward/inverse atoms).
func randomPropertyPath(r *rand.Rand, depth int, allowNeg bool) *propertypath.Path {
	if depth <= 0 || r.Float64() < 0.4 {
		pred := ppPreds[r.Intn(len(ppPreds))]
		switch x := r.Float64(); {
		case allowNeg && x < 0.15:
			np := &propertypath.Path{Kind: propertypath.NegSet}
			if r.Intn(2) == 0 {
				np.Neg = []string{pred}
			}
			if r.Intn(2) == 0 {
				np.NegInv = []string{ppPreds[r.Intn(len(ppPreds))]}
			}
			if len(np.Neg) == 0 && len(np.NegInv) == 0 {
				np.Neg = []string{pred}
			}
			return np
		case x < 0.5:
			return &propertypath.Path{Kind: propertypath.Inverse,
				Subs: []*propertypath.Path{{Kind: propertypath.IRI, IRI: pred}}}
		default:
			return &propertypath.Path{Kind: propertypath.IRI, IRI: pred}
		}
	}
	switch r.Intn(5) {
	case 0:
		return &propertypath.Path{Kind: propertypath.Seq, Subs: []*propertypath.Path{
			randomPropertyPath(r, depth-1, allowNeg), randomPropertyPath(r, depth-1, allowNeg)}}
	case 1:
		return &propertypath.Path{Kind: propertypath.Alt, Subs: []*propertypath.Path{
			randomPropertyPath(r, depth-1, allowNeg), randomPropertyPath(r, depth-1, allowNeg)}}
	case 2:
		return &propertypath.Path{Kind: propertypath.Star,
			Subs: []*propertypath.Path{randomPropertyPath(r, depth-1, allowNeg)}}
	case 3:
		return &propertypath.Path{Kind: propertypath.Plus,
			Subs: []*propertypath.Path{randomPropertyPath(r, depth-1, allowNeg)}}
	default:
		return &propertypath.Path{Kind: propertypath.Opt,
			Subs: []*propertypath.Path{randomPropertyPath(r, depth-1, allowNeg)}}
	}
}

// stepAtom is the oracle's own reading of the extended-alphabet atoms —
// deliberately written against rdf.Graph from scratch rather than reusing
// propertypath's atomMatcher.
func stepAtom(g *rdf.Graph, node, sym string) []string {
	var out []string
	switch {
	case strings.HasPrefix(sym, "^"):
		for _, t := range g.InEdges(node) {
			if t.P == sym[1:] {
				out = append(out, t.S)
			}
		}
	case strings.HasPrefix(sym, "!("):
		body := strings.TrimSuffix(strings.TrimPrefix(sym, "!("), ")")
		fwd := map[string]bool{}
		inv := map[string]bool{}
		if body != "" {
			for _, part := range strings.Split(body, "|") {
				if strings.HasPrefix(part, "^") {
					inv[part[1:]] = true
				} else {
					fwd[part] = true
				}
			}
		}
		// a direction is traversable only when the set names at least one
		// predicate in that direction (W3C negated property sets)
		if len(fwd) > 0 {
			for _, t := range g.OutEdges(node) {
				if !fwd[t.P] {
					out = append(out, t.O)
				}
			}
		}
		if len(inv) > 0 {
			for _, t := range g.InEdges(node) {
				if !inv[t.P] {
					out = append(out, t.S)
				}
			}
		}
	default:
		for _, t := range g.OutEdges(node) {
			if t.P == sym {
				out = append(out, t.O)
			}
		}
	}
	return out
}

// derivativeEval evaluates the path under regular semantics by BFS over
// (node, Brzozowski derivative) pairs. Returns ok=false when the
// derivative state space exceeds maxStates (the trial is then skipped).
func derivativeEval(g *rdf.Graph, p *propertypath.Path, start string, maxStates int) ([]string, bool) {
	re := propertypath.ToRegex(p).Simplify()
	alphabet := re.Alphabet()
	type state struct{ node, expr string }
	exprs := map[string]*regex.Expr{}
	intern := func(e *regex.Expr) string {
		k := e.String()
		if _, ok := exprs[k]; !ok {
			exprs[k] = e
		}
		return k
	}
	results := map[string]bool{}
	seen := map[state]bool{}
	var queue []state
	push := func(node string, e *regex.Expr) {
		s := state{node, intern(e)}
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
			if e.Nullable() {
				results[node] = true
			}
		}
	}
	push(start, re)
	for len(queue) > 0 {
		if len(seen) > maxStates {
			return nil, false
		}
		cur := queue[0]
		queue = queue[1:]
		e := exprs[cur.expr]
		for _, sym := range alphabet {
			d := regex.Derivative(e, sym).Simplify()
			if d.IsEmptyLanguage() {
				continue
			}
			for _, to := range stepAtom(g, cur.node, sym) {
				push(to, d)
			}
		}
	}
	out := make([]string, 0, len(results))
	for n := range results {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, true
}

// enumEval exhaustively enumerates graph walks from start — node-simple
// walks when trail is false, edge-distinct walks when trail is true
// (edges are identified by their triple, matching EvalTrails) — and
// collects the endpoints whose label word is in L(re). Only valid for
// paths whose atoms are plain forward/inverse IRIs.
func enumEval(g *rdf.Graph, re *regex.Expr, start string, trail bool) []string {
	results := map[string]bool{}
	visitedNodes := map[string]bool{start: true}
	usedEdges := map[rdf.Triple]bool{}
	var word []string
	var walk func(node string)
	walk = func(node string) {
		if regex.Matches(re, word) {
			results[node] = true
		}
		type move struct {
			to  string
			sym string
			t   rdf.Triple
		}
		var moves []move
		for _, t := range g.OutEdges(node) {
			moves = append(moves, move{t.O, t.P, t})
		}
		for _, t := range g.InEdges(node) {
			moves = append(moves, move{t.S, "^" + t.P, t})
		}
		for _, mv := range moves {
			if trail {
				if usedEdges[mv.t] {
					continue
				}
				usedEdges[mv.t] = true
			} else {
				if visitedNodes[mv.to] {
					continue
				}
				visitedNodes[mv.to] = true
			}
			word = append(word, mv.sym)
			walk(mv.to)
			word = word[:len(word)-1]
			if trail {
				delete(usedEdges, mv.t)
			} else {
				delete(visitedNodes, mv.to)
			}
		}
	}
	walk(start)
	out := make([]string, 0, len(results))
	for n := range results {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func subset(a, b []string) bool {
	set := map[string]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func (o propertyPathEval) Trial(r *rand.Rand) *Divergence {
	allowNeg := r.Float64() < 0.4
	g := randomPPGraph(r)
	p := randomPropertyPath(r, 3, allowNeg)
	start := fmt.Sprintf("n%d", r.Intn(5))

	reg := propertypath.Eval(g, p, start)
	if naive, ok := derivativeEval(g, p, start, 20000); ok && !sameStrings(reg, naive) {
		g2, p2 := shrinkPPInstance(g, p, func(gg *rdf.Graph, pp *propertypath.Path) bool {
			n, ok2 := derivativeEval(gg, pp, start, 20000)
			return ok2 && !sameStrings(propertypath.Eval(gg, pp, start), n)
		})
		n2, _ := derivativeEval(g2, p2, start, 20000)
		return &Divergence{
			Input:  ppInput(g2, p2, start),
			Detail: fmt.Sprintf("Eval(Glushkov product)=%v but derivative-product BFS=%v", propertypath.Eval(g2, p2, start), n2),
		}
	}

	simple := propertypath.EvalSimplePaths(g, p, start)
	trails := propertypath.EvalTrails(g, p, start)
	if !subset(simple, trails) || !subset(trails, reg) {
		g2, p2 := shrinkPPInstance(g, p, func(gg *rdf.Graph, pp *propertypath.Path) bool {
			s := propertypath.EvalSimplePaths(gg, pp, start)
			t := propertypath.EvalTrails(gg, pp, start)
			return !subset(s, t) || !subset(t, propertypath.Eval(gg, pp, start))
		})
		return &Divergence{
			Input: ppInput(g2, p2, start),
			Detail: fmt.Sprintf("semantics hierarchy violated: simple=%v trails=%v regular=%v",
				propertypath.EvalSimplePaths(g2, p2, start), propertypath.EvalTrails(g2, p2, start), propertypath.Eval(g2, p2, start)),
		}
	}

	if !allowNeg && g.Len() <= 8 {
		re := propertypath.ToRegex(p)
		if brute := enumEval(g, re, start, false); !sameStrings(simple, brute) {
			g2, p2 := shrinkPPInstance(g, p, func(gg *rdf.Graph, pp *propertypath.Path) bool {
				return !sameStrings(propertypath.EvalSimplePaths(gg, pp, start),
					enumEval(gg, propertypath.ToRegex(pp), start, false))
			})
			return &Divergence{
				Input: ppInput(g2, p2, start),
				Detail: fmt.Sprintf("EvalSimplePaths=%v but exhaustive simple-path enumeration=%v",
					propertypath.EvalSimplePaths(g2, p2, start), enumEval(g2, propertypath.ToRegex(p2), start, false)),
			}
		}
		if brute := enumEval(g, re, start, true); !sameStrings(trails, brute) {
			g2, p2 := shrinkPPInstance(g, p, func(gg *rdf.Graph, pp *propertypath.Path) bool {
				return !sameStrings(propertypath.EvalTrails(gg, pp, start),
					enumEval(gg, propertypath.ToRegex(pp), start, true))
			})
			return &Divergence{
				Input: ppInput(g2, p2, start),
				Detail: fmt.Sprintf("EvalTrails=%v but exhaustive trail enumeration=%v",
					propertypath.EvalTrails(g2, p2, start), enumEval(g2, propertypath.ToRegex(p2), start, true)),
			}
		}
	}
	return nil
}

func ppInput(g *rdf.Graph, p *propertypath.Path, start string) string {
	var ts []string
	for _, t := range g.Triples() {
		ts = append(ts, fmt.Sprintf("(%s %s %s)", t.S, t.P, t.O))
	}
	sort.Strings(ts)
	return fmt.Sprintf("path=%s start=%s graph=%s", p, start, strings.Join(ts, " "))
}

// shrinkPPInstance shrinks the graph (dropping triples) and the path
// while the divergence predicate holds.
func shrinkPPInstance(g *rdf.Graph, p *propertypath.Path,
	diverges func(*rdf.Graph, *propertypath.Path) bool) (*rdf.Graph, *propertypath.Path) {
	rebuild := func(ts []rdf.Triple) *rdf.Graph {
		out := rdf.NewGraph()
		for _, t := range ts {
			out.Add(t.S, t.P, t.O)
		}
		return out
	}
	triples := shrinkList(g.Triples(), func(ts []rdf.Triple) bool {
		return diverges(rebuild(ts), p)
	})
	g = rebuild(triples)
	p = shrinkPath(p, func(c *propertypath.Path) bool { return diverges(g, c) })
	return g, p
}
