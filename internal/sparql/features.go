package sparql

import "repro/internal/propertypath"

// Feature identifies a SPARQL feature counted in Table 3.
type Feature string

// The features of Table 3, in the paper's row order.
const (
	FDistinct     Feature = "Distinct"
	FLimit        Feature = "Limit"
	FOffset       Feature = "Offset"
	FOrderBy      Feature = "Order By"
	FFilter       Feature = "Filter"
	FAnd          Feature = "And"
	FOptional     Feature = "Optional"
	FUnion        Feature = "Union"
	FGraph        Feature = "Graph"
	FValues       Feature = "Values"
	FNotExists    Feature = "Not Exists"
	FMinus        Feature = "Minus"
	FExists       Feature = "Exists"
	FGroupBy      Feature = "Group By"
	FCount        Feature = "Count"
	FHaving       Feature = "Having"
	FAvg          Feature = "Avg"
	FMin          Feature = "Min"
	FMax          Feature = "Max"
	FSum          Feature = "Sum"
	FService      Feature = "Service"
	FPropertyPath Feature = "property paths (RPQs)"
)

// Table3Features lists the features in the paper's row order.
var Table3Features = []Feature{
	FDistinct, FLimit, FOffset, FOrderBy, FFilter, FAnd, FOptional, FUnion,
	FGraph, FValues, FNotExists, FMinus, FExists, FGroupBy, FCount, FHaving,
	FAvg, FMin, FMax, FSum, FService, FPropertyPath,
}

// Features returns the set of Table 3 features the query uses.
func (q *Query) Features() map[Feature]bool {
	f := map[Feature]bool{}
	if q.Distinct {
		f[FDistinct] = true
	}
	if q.Limit >= 0 {
		f[FLimit] = true
	}
	if q.Offset >= 0 {
		f[FOffset] = true
	}
	if q.OrderBy > 0 {
		f[FOrderBy] = true
	}
	if len(q.GroupBy) > 0 {
		f[FGroupBy] = true
	}
	if len(q.Having) > 0 {
		f[FHaving] = true
	}
	var exprs []*Expr
	exprs = append(exprs, q.Having...)
	for _, it := range q.Items {
		if it.Expr != nil {
			exprs = append(exprs, it.Expr)
		}
	}
	// The And feature is the conjunction operator: a group joining ≥ 2
	// sub-patterns (after Bonifati et al.'s operator-set analysis).
	q.Walk(func(p *Pattern) {
		switch p.Kind {
		case PGroup:
			if countJoinOperands(p) >= 2 {
				f[FAnd] = true
			}
		case PFilter:
			f[FFilter] = true
			exprs = append(exprs, p.Expr)
		case PUnion:
			f[FUnion] = true
		case POptional:
			f[FOptional] = true
		case PGraph:
			f[FGraph] = true
		case PValues:
			f[FValues] = true
		case PService:
			f[FService] = true
		case PMinus:
			f[FMinus] = true
		case PPath:
			f[FPropertyPath] = true
		case PBind:
			exprs = append(exprs, p.Expr)
		case PSubquery:
			for feat := range p.Query.Features() {
				f[feat] = true
			}
		}
	})
	for _, e := range exprs {
		markExprFeatures(e, f)
	}
	return f
}

// countJoinOperands counts the conjunctive operands of a group. Filters,
// binds, VALUES blocks, SERVICE calls and OPTIONAL parts are not And
// operands: in the SPARQL algebra they attach by filtering, extension,
// joins with constant tables, federation, and left-join respectively —
// the paper's feature analysis counts the And operator between proper
// pattern conjuncts.
func countJoinOperands(p *Pattern) int {
	n := 0
	for _, s := range p.Subs {
		switch s.Kind {
		case PFilter, PBind, PValues, PService, POptional:
		default:
			n++
		}
	}
	return n
}

func markExprFeatures(e *Expr, f map[Feature]bool) {
	if e == nil {
		return
	}
	switch e.Kind {
	case EExists:
		if e.Negated {
			f[FNotExists] = true
		} else {
			f[FExists] = true
		}
	case EFunc:
		switch e.Func {
		case "COUNT":
			f[FCount] = true
		case "AVG":
			f[FAvg] = true
		case "MIN":
			f[FMin] = true
		case "MAX":
			f[FMax] = true
		case "SUM":
			f[FSum] = true
		}
	}
	for _, s := range e.Subs {
		markExprFeatures(s, f)
	}
}

// TripleCount returns the number of triple patterns (including property-
// path patterns) in the query — the measure of Figure 3.
func (q *Query) TripleCount() int {
	n := 0
	q.Walk(func(p *Pattern) {
		if p.Kind == PTriple || p.Kind == PPath {
			n++
		}
	})
	// template triples of CONSTRUCT are part of Walk; Figure 3 counts the
	// pattern's triples, so subtract the template.
	for _, t := range q.Template {
		n -= countTriples(t)
	}
	return n
}

func countTriples(p *Pattern) int {
	n := 0
	walkPattern(p, func(x *Pattern) {
		if x.Kind == PTriple || x.Kind == PPath {
			n++
		}
	})
	return n
}

// PropertyPaths returns every property path occurring in the query.
func (q *Query) PropertyPaths() []*propertypath.Path {
	var out []*propertypath.Path
	q.Walk(func(p *Pattern) {
		if p.Kind == PPath {
			out = append(out, p.Path)
		}
	})
	return out
}

// OperatorSet classifies the pattern operators used, for the Table 4/5
// fragment analysis: which of And, Filter, and property paths (2RPQ) occur,
// and whether anything beyond them occurs.
type OperatorSet struct {
	And, Filter, Path bool
	// Beyond is true when the query uses any operator outside
	// {And, Filter, property paths}: Union, Optional, Graph, Bind, Values,
	// Service, Minus, Exists in filters, or subqueries.
	Beyond bool
}

// Name renders the paper's row labels: "none", "And", "Filter",
// "And, Filter", …, with "2RPQ" for property paths.
func (s OperatorSet) Name() string {
	if s.Beyond {
		return "beyond"
	}
	parts := []string{}
	if s.And {
		parts = append(parts, "And")
	}
	if s.Filter {
		parts = append(parts, "Filter")
	}
	if s.Path {
		parts = append(parts, "2RPQ")
	}
	if len(parts) == 0 {
		return "none"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += ", " + p
	}
	return out
}

// Operators computes the operator set of the query's pattern.
func (q *Query) Operators() OperatorSet {
	var s OperatorSet
	q.Walk(func(p *Pattern) {
		switch p.Kind {
		case PGroup:
			if countJoinOperands(p) >= 2 {
				s.And = true
			}
		case PFilter:
			s.Filter = true
			if p.Expr != nil && p.Expr.containsExists() {
				s.Beyond = true
			}
		case PPath:
			s.Path = true
		case PTriple:
		case PBind, PValues, PService, PGraph, PMinus, PSubquery, PUnion, POptional:
			s.Beyond = true
		}
	})
	return s
}

// IsCQ reports whether the query's pattern uses only And (the CQ rows of
// Table 4: operator sets "none" and "And").
func (q *Query) IsCQ() bool {
	s := q.Operators()
	return !s.Beyond && !s.Filter && !s.Path
}

// IsCQF reports whether the pattern uses only And and Filter (CQ+F).
func (q *Query) IsCQF() bool {
	s := q.Operators()
	return !s.Beyond && !s.Path
}

// IsC2RPQF reports whether the pattern uses only And, Filter and property
// paths (C2RPQ+F, Table 5).
func (q *Query) IsC2RPQF() bool {
	return !q.Operators().Beyond
}
