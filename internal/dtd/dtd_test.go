package dtd

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/inference"
	"repro/internal/regex"
	"repro/internal/tree"
)

// example42 is the DTD of Example 4.2:
//
//	persons    → person*
//	person     → name birthplace
//	birthplace → city state country?
func example42() *DTD {
	return New().
		AddRule("persons", regex.MustParse("person*")).
		AddRule("person", regex.MustParse("name birthplace")).
		AddRule("birthplace", regex.MustParse("city state country?")).
		AddStart("persons")
}

// figure1Tree is the tree of Figure 1c.
func figure1Tree() *tree.Node {
	return tree.MustParse("persons(person(name, birthplace(city, state, country)), person(name, birthplace(city, state)))")
}

func TestExample42Validation(t *testing.T) {
	d := example42()
	if err := d.Validate(figure1Tree()); err != nil {
		t.Fatalf("Figure 1c tree should satisfy Example 4.2 DTD: %v", err)
	}
	bad := []string{
		"person(name, birthplace(city, state))",                         // wrong root
		"persons(person(name))",                                         // missing birthplace
		"persons(person(birthplace(city, state), name))",                // wrong order
		"persons(person(name, birthplace(city, country)))",              // missing state
		"persons(person(name, birthplace(city, state, country)), name)", // stray child
	}
	for _, s := range bad {
		if err := d.Validate(tree.MustParse(s)); err == nil {
			t.Errorf("tree %q should be invalid", s)
		}
	}
}

func TestParseText(t *testing.T) {
	src := `
<!-- the Example 4.2 DTD in real syntax -->
<!ELEMENT persons (person*)>
<!ELEMENT person (name, birthplace)>
<!ATTLIST person pers_id CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT birthplace (city, state, country?)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT country (#PCDATA)>
`
	d, err := ParseText(src, "")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Start["persons"] {
		t.Error("first declared element should be the start label")
	}
	if err := d.Validate(figure1Tree()); err != nil {
		t.Errorf("parsed DTD rejects Figure 1c: %v", err)
	}
	if d.IsRecursive() {
		t.Error("Example 4.2 DTD is not recursive")
	}
	if depth, ok := d.MaxDepth(); !ok || depth != 4 {
		// persons → person → birthplace → city
		t.Errorf("MaxDepth = %d, %v; want 4", depth, ok)
	}
}

func TestParseTextANY(t *testing.T) {
	d, err := ParseText(`<!ELEMENT a ANY><!ELEMENT b EMPTY>`, "")
	if err != nil {
		t.Fatal(err)
	}
	// ANY = (a + b)*: a may contain anything, arbitrarily deep.
	if err := d.Validate(tree.MustParse("a(b, a(a(b)))")); err != nil {
		t.Errorf("ANY should allow nesting: %v", err)
	}
	if !d.IsRecursive() {
		t.Error("ANY-rule DTD is recursive")
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<!ELEMENT >",
		"<!ELEMENT a (b,>",
		"<!ELEMENT a (b)><!ELEMENT a (c)>",
		"<!BOGUS a>",
		"<!ELEMENT a (b",
	} {
		if _, err := ParseText(src, ""); err == nil {
			t.Errorf("ParseText(%q): expected error", src)
		}
	}
}

func TestRecursion(t *testing.T) {
	// Choi (Section 4.1): recursion = cycle in the label dependency graph.
	rec := New().
		AddRule("section", regex.MustParse("title (para + section)*")).
		AddRule("title", regex.NewEpsilon()).
		AddRule("para", regex.NewEpsilon()).
		AddStart("section")
	if !rec.IsRecursive() {
		t.Error("section DTD should be recursive")
	}
	if _, ok := rec.MaxDepth(); ok {
		t.Error("recursive DTD has unbounded depth")
	}
	if example42().IsRecursive() {
		t.Error("Example 4.2 should not be recursive")
	}
}

func TestMaxDepthDeep(t *testing.T) {
	// A chain DTD a1 → a2 → … → a20 allows depth 20 (Choi's corpus
	// reached depth 20 without recursion).
	d := New().AddStart("a1")
	for i := 1; i < 20; i++ {
		d.AddRule(label(i), regex.NewOpt(regex.NewSymbol(label(i+1))))
	}
	d.AddRule(label(20), regex.NewEpsilon())
	depth, ok := d.MaxDepth()
	if !ok || depth != 20 {
		t.Errorf("MaxDepth = %d, %v; want 20", depth, ok)
	}
}

func label(i int) string {
	return "a" + strings.Repeat("x", 0) + itoa(i)
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}

func TestMaxDepthRealizability(t *testing.T) {
	// Label b is not realizable (its rule requires a child c with an
	// unsatisfiable rule), so it must not contribute depth.
	d := New().
		AddRule("r", regex.MustParse("x + b")).
		AddRule("b", regex.MustParse("c")).
		AddRule("c", regex.NewEmpty()). // no valid c-tree
		AddRule("x", regex.NewEpsilon()).
		AddStart("r")
	depth, ok := d.MaxDepth()
	if !ok || depth != 2 {
		t.Errorf("MaxDepth = %d, %v; want 2 (r over x only)", depth, ok)
	}
	real := d.Realizable()
	if real["b"] || real["c"] {
		t.Errorf("b/c should not be realizable: %v", real)
	}
	if !real["r"] || !real["x"] {
		t.Errorf("r/x should be realizable: %v", real)
	}
}

func TestStreamingValidation(t *testing.T) {
	d := example42()
	tr := figure1Tree()
	if err := d.ValidateStream(Events(tr)); err != nil {
		t.Fatalf("streaming rejects valid tree: %v", err)
	}
	// invalid: missing state under birthplace
	bad := tree.MustParse("persons(person(name, birthplace(city)))")
	if err := d.ValidateStream(Events(bad)); err == nil {
		t.Error("streaming accepted invalid tree")
	}
	// memory: high-watermark equals tree depth
	v := NewStreamValidator(d)
	for _, ev := range Events(tr) {
		if err := v.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	if v.HighWater != tr.Depth() {
		t.Errorf("HighWater = %d, want %d", v.HighWater, tr.Depth())
	}
}

func TestStreamingAgreesWithTreeValidation(t *testing.T) {
	d := example42()
	r := rand.New(rand.NewSource(4))
	labels := []string{"persons", "person", "name", "birthplace", "city", "state", "country"}
	var gen func(depth int) *tree.Node
	gen = func(depth int) *tree.Node {
		n := tree.New(labels[r.Intn(len(labels))])
		if depth > 0 {
			for i := 0; i < r.Intn(4); i++ {
				n.Add(gen(depth - 1))
			}
		}
		return n
	}
	for i := 0; i < 300; i++ {
		tr := gen(3)
		want := d.Validate(tr) == nil
		got := d.ValidateStream(Events(tr)) == nil
		if got != want {
			t.Fatalf("streaming %v, tree validation %v for %v", got, want, tr)
		}
	}
}

func TestInferDTD(t *testing.T) {
	trees := []*tree.Node{
		figure1Tree(),
		tree.MustParse("persons(person(name, birthplace(city, state)))"),
		tree.MustParse("persons"),
	}
	d := Infer(trees, inference.InferSORE)
	for _, tr := range trees {
		if err := d.Validate(tr); err != nil {
			t.Errorf("inferred DTD rejects example tree: %v", err)
		}
	}
	// The inferred rule for birthplace should be ≡ city state country?.
	if !automata.Equivalent(d.Rule("birthplace"), regex.MustParse("city state country?")) {
		t.Errorf("birthplace rule = %q", d.Rule("birthplace"))
	}
	if !automata.Equivalent(d.Rule("persons"), regex.MustParse("person*")) {
		t.Errorf("persons rule = %q", d.Rule("persons"))
	}
}

func TestValidateUsesDefaultEpsilonRule(t *testing.T) {
	d := New().AddRule("a", regex.MustParse("b")).AddStart("a")
	// b has no rule: defaults to ε, so b must be a leaf.
	if err := d.Validate(tree.MustParse("a(b)")); err != nil {
		t.Errorf("leaf default failed: %v", err)
	}
	if err := d.Validate(tree.MustParse("a(b(a))")); err == nil {
		t.Error("b with children should be invalid")
	}
}
