// Command rwdanalyze runs the SHARQL-style analysis pipeline over a
// user-supplied corpus: a SPARQL log (one query per line), an XML corpus
// (one document per line), a DTD corpus, a JSON Schema corpus, or an XPath
// corpus — and prints the corresponding tables of the paper.
//
// Usage:
//
//	rwdgen -kind sparql -source WikiRobot/OK -n 5000 | rwdanalyze -kind sparql
//	rwdanalyze -kind sparql -file queries.log
//	rwdanalyze -kind xml -file corpus.txt
//	rwdanalyze -kind sparql -store-dir ./corpus.store -corpus wikidata-logs
//	rwdanalyze -kind rdf -store-dir ./corpus.store -corpus dbpedia
//
// With -store-dir the input comes from a persistent corpus store
// (built by rwdstore or POST /v1/corpora) instead of a file: kind
// sparql reads a log corpus's committed lines, and kind rdf runs the
// Section 7.1 RDF analyses over a triples corpus. A missing or corrupt
// store is exit code 3 — distinct from usage errors (2) and I/O errors
// (1) — and never silently falls back to regeneration.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/jsonschema"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/schemastudy"
	"repro/internal/store"
	"repro/internal/textio"
	"repro/internal/xmllite"
	"repro/internal/xpath"
)

var kinds = map[string]bool{
	"sparql": true, "xml": true, "dtd": true, "jsonschema": true, "xpath": true, "rdf": true,
}

// exitBadStore is the exit code for a missing or corrupt -store-dir:
// callers scripting the CLI can tell "fix the store" (3) apart from
// "fix the invocation" (2) and ordinary I/O failures (1).
const exitBadStore = 3

func main() {
	kind := flag.String("kind", "sparql", "corpus kind: sparql|xml|dtd|jsonschema|xpath|rdf")
	file := flag.String("file", "-", "input file; '-' reads stdin")
	name := flag.String("name", "corpus", "corpus name for the reports")
	storeDir := flag.String("store-dir", "", "read the corpus from the persistent store at this directory instead of -file")
	corpusName := flag.String("corpus", "", "corpus name inside -store-dir (required with -store-dir)")
	workers := flag.Int("workers", 0, "analysis workers for -kind sparql; 0 = one per CPU, 1 = sequential")
	trace := flag.String("trace", "", "dump the pipeline span tree after the run: '-' writes stderr, anything else is a file path; empty disables")
	flag.Parse()

	// Validate the kind before touching the input: feeding a huge log to
	// an unknown analyzer should fail fast, not after reading it all.
	if !kinds[*kind] {
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *kind == "rdf" && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "kind rdf analyzes a stored triples corpus: -store-dir and -corpus are required")
		os.Exit(2)
	}
	if *storeDir != "" && *corpusName == "" {
		fmt.Fprintln(os.Stderr, "-store-dir requires -corpus")
		os.Exit(2)
	}

	// With -trace the whole analysis runs under a root span; the sparql
	// pipeline is instrumented down to per-shard ingest spans.
	ctx := context.Background()
	var root *obs.Span
	if *trace != "" {
		ctx, root = (&obs.Tracer{}).StartRoot(ctx, "rwdanalyze")
		defer func() {
			root.Finish()
			dumpTrace(*trace, root.Tree())
		}()
	}

	var lines []string
	if *storeDir != "" {
		// OpenExisting refuses to create a store: pointing -store-dir at
		// the wrong directory must fail loudly, not regenerate silently.
		st, err := store.OpenExisting(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwdanalyze: store at %s is unusable: %v\n", *storeDir, err)
			os.Exit(exitBadStore)
		}
		defer st.Close()
		switch *kind {
		case "rdf":
			analyzeStoredGraph(ctx, st, *corpusName)
			return
		case "sparql":
			if lines, err = st.LogLines(ctx, *corpusName); err != nil {
				fmt.Fprintf(os.Stderr, "rwdanalyze: reading corpus %q: %v\n", *corpusName, err)
				os.Exit(exitBadStore)
			}
		default:
			fmt.Fprintf(os.Stderr, "kind %q cannot read from a store (only sparql and rdf corpora persist)\n", *kind)
			os.Exit(2)
		}
	} else {
		var in io.Reader = os.Stdin
		if *file != "-" {
			f, err := os.Open(*file)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			in = f
		}
		var err error
		if lines, err = textio.ReadLines(in); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch *kind {
	case "sparql":
		rep := core.AnalyzeQueriesCtx(ctx, *name, lines, *workers)
		if err := core.RenderAll(os.Stdout, []*core.SourceReport{rep}); err != nil {
			fmt.Fprintln(os.Stderr, "render:", err)
			os.Exit(1)
		}
	case "xml":
		res := xmllite.RunStudy(lines)
		fmt.Printf("documents: %d; well-formed: %d (%.1f%%); top-3 error share: %.1f%%\n",
			res.Total, res.WellFormed, 100*res.WellFormedRate(), 100*res.TopThreeRate)
		for cat, n := range res.ByCategory {
			fmt.Printf("  %-24s %d\n", cat.String(), n)
		}
	case "dtd":
		rep := schemastudy.AnalyzeDTDs(lines)
		fmt.Printf("DTDs: %d (parse errors %d); recursive: %d; depths: %s\n",
			rep.Total, rep.ParseErrors, rep.Recursive, schemastudy.DescribeDepths(rep.MaxDepths))
		fmt.Printf("expressions: %d; CHARE %.1f%%; SORE %.1f%%; deterministic %.1f%%\n",
			rep.Expressions, 100*rep.CHARERate(), 100*rep.SORERate(),
			100*float64(rep.Deterministic)/float64(max(rep.Expressions, 1)))
	case "jsonschema":
		rep := jsonschema.RunStudy(lines)
		fmt.Printf("schemas: %d; recursive: %d; depths: %s; negation: %d; schema-full: %d\n",
			rep.Total, rep.Recursive, schemastudy.DescribeDepths(rep.Depths),
			rep.NegationUse, rep.SchemaFull)
	case "xpath":
		res := xpath.RunStudy(lines)
		fmt.Printf("queries: %d (parse errors %d); median size %d; tree patterns %d (%.1f%%)\n",
			res.Total, res.ParseErrors, res.SizeQuantile(0.5), res.TreePatterns,
			100*float64(res.TreePatterns)/float64(max(res.Total, 1)))
	}
}

// analyzeStoredGraph runs the Section 7.1 RDF analyses over a stored
// triples corpus and prints them in the rwdbench -rdfstats format.
func analyzeStoredGraph(ctx context.Context, st *store.Store, corpus string) {
	sg, err := st.Graph(ctx, corpus)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwdanalyze: corpus %q: %v\n", corpus, err)
		os.Exit(exitBadStore)
	}
	stats := rdf.ComputeStats(sg)
	if err := sg.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "rwdanalyze: scanning corpus %q: %v\n", corpus, err)
		os.Exit(exitBadStore)
	}
	fmt.Printf("triples: %d, subjects: %d, predicates: %d, objects: %d\n",
		stats.Triples, stats.Subjects, stats.Predicates, stats.Objects)
	fmt.Printf("in-degree: max %d, mean %.2f, alpha %.2f (power law; Bachlechner/Strang: max 7739 vs mean 9.56)\n",
		stats.InDegree.Max, stats.InDegree.Mean, stats.InDegree.Alpha)
	fmt.Printf("predicate lists: %d distinct; %.1f%% of subjects share a common list (Fernandez: ≈99%%)\n",
		stats.PredicateLists, 100*stats.SharedListSubjectRate)
	fmt.Printf("objects per (s,p): %.3f (≈1); subjects per (p,o): %.2f ± %.2f (skewed)\n",
		stats.MeanObjectsPerSP, stats.MeanSubjectsPerPO, stats.StdDevSubjectsPerPO)
	fmt.Printf("|P∩S|/|P∪S| = %.2g, |P∩O|/|P∪O| = %.2g (paper: 0 or 10⁻⁷..10⁻³)\n",
		stats.PSOverlap, stats.POOverlap)
}

// dumpTrace renders the span tree to stderr ("-") or the given file.
func dumpTrace(dest string, n *obs.Node) {
	w := io.Writer(os.Stderr)
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			return
		}
		defer f.Close()
		w = f
	}
	if err := obs.WriteTree(w, n); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
	}
}
