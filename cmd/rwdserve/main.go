// Command rwdserve serves the repository's decision procedures and the
// SHARQL-style analysis pipeline over HTTP: containment (regex, k-ORE,
// DTD, JSON Schema), membership, DTD/EDTD validation, schema inference,
// and batch SPARQL log analysis, hardened for untrusted traffic with
// per-request deadlines, admission control, request-size caps, a
// canonicalizing verdict cache, and Prometheus-style metrics.
//
// Usage:
//
//	rwdserve -addr :8080 -max-inflight 16 -cache-size 4096 \
//	         -default-deadline 2s -max-deadline 30s
//
// Endpoints: POST /v1/containment /v1/membership /v1/validate /v1/infer
// /v1/analyze; GET /healthz /metrics. See the README "Service API"
// section for request shapes and curl examples.
//
// SIGTERM or SIGINT starts a graceful drain: the listener closes, in-
// flight requests finish (bounded by -drain-timeout), then the process
// exits 0.
//
// -debug-addr starts a second, private HTTP server exposing
// net/http/pprof (heap, CPU, goroutine profiles). It is off by default
// and should never be bound to a public interface.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInflight := flag.Int("max-inflight", 2*runtime.GOMAXPROCS(0),
		"admission-control bound on concurrently served requests")
	maxBody := flag.Int64("max-body-bytes", 8<<20, "request body size cap in bytes")
	defaultDeadline := flag.Duration("default-deadline", 2*time.Second,
		"deadline for requests without deadline_ms")
	maxDeadline := flag.Duration("max-deadline", 30*time.Second,
		"upper clamp on client-requested deadlines")
	cacheSize := flag.Int("cache-size", 1024, "verdict-cache capacity in entries (negative disables)")
	analyzeWorkers := flag.Int("analyze-workers", 0, "worker pool bound for /v1/analyze; 0 = one per CPU")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second,
		"how long a graceful shutdown waits for in-flight requests")
	slowOpThreshold := flag.Duration("slow-op-threshold", 500*time.Millisecond,
		"span duration above which a structured slow-op line is logged")
	slowOpSample := flag.Int64("slow-op-sample", 1,
		"log 1 of every N slow spans (the rest are only counted)")
	debugAddr := flag.String("debug-addr", "",
		"optional private address for the pprof debug server (e.g. localhost:6060); empty disables")
	flag.Parse()

	srv := service.New(service.Config{
		MaxInFlight:     *maxInflight,
		MaxBodyBytes:    *maxBody,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		CacheSize:       *cacheSize,
		AnalyzeWorkers:  *analyzeWorkers,
		SlowOpThreshold: *slowOpThreshold,
		SlowOpSample:    *slowOpSample,
	})

	if *debugAddr != "" {
		// net/http/pprof registers its handlers on the default mux; keep
		// them off the service handler so profiles are never reachable on
		// the public address.
		go func() {
			fmt.Fprintf(os.Stderr, "rwdserve debug server (pprof) on %s\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rwdserve: debug server:", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwdserve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rwdserve listening on %s (max-inflight %d, cache %d, deadlines %s/%s)\n",
		l.Addr(), *maxInflight, *cacheSize, *defaultDeadline, *maxDeadline)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	shutdown := make(chan struct{})
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "rwdserve: received %v, draining\n", s)
		close(shutdown)
	}()

	if err := srv.Serve(l, shutdown, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "rwdserve:", err)
		os.Exit(1)
	}
}
