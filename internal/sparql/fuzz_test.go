package sparql

import "testing"

// FuzzParse asserts the SPARQL parser never panics on arbitrary input and
// that every accepted query supports the analysis surface the log studies
// rely on: Canonical is deterministic, and the feature/classification
// battery runs without panicking.
func FuzzParse(f *testing.F) {
	f.Add("SELECT * WHERE { ?s ?p ?o . }")
	f.Add("SELECT DISTINCT ?s WHERE { ?s wdt:P31/wdt:P279* wd:Q5 . FILTER(?s != wd:Q1) }")
	f.Add("ASK { { ?s ex:p ?o } UNION { ?s ex:q ?o } OPTIONAL { ?o ex:r ?x } }")
	f.Add("SELECT (COUNT(?x) AS ?n) WHERE { ?x ?p ?y } GROUP BY ?p HAVING (COUNT(?x) > 1) ORDER BY ?n LIMIT 5")
	f.Add("PREFIX f: <http://x/> DESCRIBE f:e")
	f.Add("SELECT * WHERE { ?s !(ex:p|^ex:q) ?o }")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		c1 := q.Canonical()
		q2, err := Parse(src)
		if err != nil {
			t.Fatalf("second Parse of accepted input %q failed: %v", src, err)
		}
		if c2 := q2.Canonical(); c1 != c2 {
			t.Fatalf("Canonical nondeterministic for %q:\n%q\n%q", src, c1, c2)
		}
		// the analysis battery must tolerate every parseable query
		q.Features()
		q.Operators()
		q.TripleCount()
		q.PropertyPaths()
		q.IsCQ()
		q.IsCQF()
		q.IsC2RPQF()
		q.Walk(func(*Pattern) {})
	})
}
