package store

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTermCodec fuzzes the term codec from both directions with one
// input: (a, b) as terms — encode/decode round-trip and inline
// order-preservation — and a's raw bytes as a candidate encoded term,
// which decode must reject or accept without ever panicking.
func FuzzTermCodec(f *testing.F) {
	f.Add("", "")
	f.Add("a", "b")
	f.Add("short", "a-term-well-beyond-the-inline-limit")
	f.Add("exactly8", "exactly8")
	f.Add("\x00\x00", "\x00")
	f.Add("prefix", "prefixsuffix")
	f.Add(string([]byte{kindInline, 'a', 0, 0, 0, 0, 0, 0, 0, 1}), "x")
	f.Add(string([]byte{kindHash, 1, 2, 3, 4, 5, 6, 7, 8, 0}), "y")
	f.Fuzz(func(t *testing.T, a, b string) {
		d, _ := openDict("")

		// Round trip, fixed width.
		for _, term := range []string{a, b} {
			enc := appendTerm(nil, term, d)
			if len(enc) != encodedTermSize {
				t.Fatalf("encoded %q to %d bytes", term, len(enc))
			}
			got, err := decodeTerm(enc, d)
			if err != nil {
				t.Fatalf("decode of just-encoded %q: %v", term, err)
			}
			if got != term {
				t.Fatalf("round trip %q -> %q", term, got)
			}
		}

		// Equality must be preserved for every term pair; order must be
		// preserved whenever both terms inline.
		ea := appendTerm(nil, a, d)
		eb := appendTerm(nil, b, d)
		if (a == b) != bytes.Equal(ea, eb) {
			t.Fatalf("equality broken for %q vs %q", a, b)
		}
		if len(a) <= inlineMax && len(b) <= inlineMax {
			if sign(bytes.Compare(ea, eb)) != sign(strings.Compare(a, b)) {
				t.Fatalf("inline order broken for %q vs %q", a, b)
			}
		}

		// Arbitrary bytes into the decoder: must never panic, and on
		// success must re-encode to the same bytes (no two encodings
		// decode to one term within a kind).
		raw := []byte(a)
		if term, err := decodeTerm(raw, d); err == nil {
			re := appendTerm(nil, term, d)
			if !bytes.Equal(re, raw[:encodedTermSize]) {
				// A long term decoded via a handle re-encodes to the same
				// handle only if it was interned under it; tolerate the
				// hash kind, reject divergence for inline.
				if raw[0] == kindInline {
					t.Fatalf("inline bytes %v decode to %q which re-encodes to %v", raw[:encodedTermSize], term, re)
				}
			}
		}
	})
}
