package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rdf"
)

// The crash-recovery battery. The durability contract under test:
// everything committed by a successful Flush survives any crash; a
// crash during a later Flush loses at most that flush's writes,
// wholesale; a torn segment is never accepted as committed data.

// withLongTerms appends triples whose terms exceed the inline limit,
// guaranteeing the batch interns fresh dictionary entries.
func withLongTerms(ts []rdf.Triple, tag string) []rdf.Triple {
	for i := 0; i < 10; i++ {
		ts = append(ts, rdf.Triple{
			S: "http://example.org/" + tag + "/subject/" + strings.Repeat("s", i+1),
			P: "http://example.org/" + tag + "/predicate",
			O: "http://example.org/" + tag + "/object/" + strings.Repeat("o", i+1),
		})
	}
	return ts
}

// committedTriples reopens dir and returns corpus "g" sorted.
func committedTriples(t *testing.T, dir string) []rdf.Triple {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after simulated crash: %v", err)
	}
	defer st.Close()
	sg, err := st.Graph(context.Background(), "g")
	if err != nil {
		t.Fatalf("open graph after crash: %v", err)
	}
	got := sg.Triples()
	if sg.Err() != nil {
		t.Fatalf("read after crash: %v", sg.Err())
	}
	sortTriples(got)
	return got
}

// TestCrashMidFlushLosesNothingCommitted injects a failure at every
// write boundary of the second flush and asserts the first flush's
// triples all survive reopen — and that the failed flush's triples are
// still pending, not torn.
func TestCrashMidFlushLosesNothingCommitted(t *testing.T) {
	errBoom := errors.New("injected crash")
	for _, op := range []string{"dict.append", "segment.write", "segment.sync", "segment.rename"} {
		t.Run(op, func(t *testing.T) {
			dir := t.TempDir()
			ctx := context.Background()
			// Both batches carry long IRIs so every flush has pending
			// dictionary records and the dict.append boundary is reachable.
			batch1 := withLongTerms(testTriples(101, 200), "one")
			batch2 := withLongTerms(testTriples(202, 200), "two")

			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.IngestTriples(ctx, "g", batch1); err != nil {
				t.Fatal(err)
			}
			if err := st.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			committed := committedTriples(t, dir) // snapshot the commit point

			if _, err := st.IngestTriples(ctx, "g", batch2); err != nil {
				t.Fatal(err)
			}
			testFailpoint = func(fp string) error {
				if fp == op {
					return errBoom
				}
				return nil
			}
			flushErr := st.Flush(ctx)
			testFailpoint = nil
			if !errors.Is(flushErr, errBoom) {
				t.Fatalf("flush did not surface the injected failure: %v", flushErr)
			}
			// Simulate the crash: abandon st without Close, reopen from disk.
			if got := committedTriples(t, dir); !reflect.DeepEqual(got, committed) {
				t.Fatalf("committed triples changed across crash at %s: %d vs %d",
					op, len(got), len(committed))
			}
			// No torn segment may have been committed.
			entries, _ := os.ReadDir(dir)
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".tmp") {
					continue // debris is fine; reopen removed it already for the check above
				}
				if strings.HasSuffix(e.Name(), ".seg") {
					if _, err := openSegment(filepath.Join(dir, e.Name())); err != nil {
						t.Fatalf("committed segment %s unreadable after crash: %v", e.Name(), err)
					}
				}
			}
		})
	}
}

// TestCrashRetryCommitsEverything: a failed flush followed by a
// successful retry (the process survived) must commit both batches.
func TestCrashRetryCommitsEverything(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	triples := testTriples(303, 300)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestTriples(ctx, "g", triples); err != nil {
		t.Fatal(err)
	}
	errBoom := errors.New("injected crash")
	testFailpoint = func(fp string) error {
		if fp == "segment.sync" {
			return errBoom
		}
		return nil
	}
	if err := st.Flush(ctx); !errors.Is(err, errBoom) {
		t.Fatalf("want injected failure, got %v", err)
	}
	testFailpoint = nil
	if err := st.Close(); err != nil { // Close retries the flush
		t.Fatal(err)
	}
	want := memGraph(triples)
	got := committedTriples(t, dir)
	wantT := append([]rdf.Triple(nil), want.Triples()...)
	sortTriples(wantT)
	if !reflect.DeepEqual(got, wantT) {
		t.Fatalf("retry lost triples: %d vs %d", len(got), len(wantT))
	}
}

// TestTruncatedCommittedSegmentRejected: a committed segment that loses
// its tail (torn at the storage layer) must fail the open as corrupt,
// not be silently half-read.
func TestTruncatedCommittedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestTriples(ctx, "g", testTriples(404, 100)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segment written")
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !IsCorrupt(err) {
		t.Fatalf("truncated committed segment: want CorruptError, got %v", err)
	}
}

// TestTornTmpSegmentIgnored: a leftover .tmp file (crash between write
// and rename) is debris, not data — reopen deletes it and loses
// nothing that was committed.
func TestTornTmpSegmentIgnored(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	triples := testTriples(505, 150)
	if _, err := st.IngestTriples(ctx, "g", triples); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "seg-000099.seg.tmp")
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := memGraph(triples)
	got := committedTriples(t, dir)
	wantT := append([]rdf.Triple(nil), want.Triples()...)
	sortTriples(wantT)
	if !reflect.DeepEqual(got, wantT) {
		t.Fatal("tmp debris changed the committed state")
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp debris not removed at open: %v", err)
	}
}

// TestTornDictTailTolerated: a crash mid-append to terms.dat leaves a
// torn final record; reopen truncates it and keeps every committed
// segment readable (dict entries are synced before any segment that
// references them, so the torn tail can only name unreferenced terms).
func TestTornDictTailTolerated(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	triples := testTriples(606, 200)
	if _, err := st.IngestTriples(ctx, "g", triples); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half of a record.
	f, err := os.OpenFile(filepath.Join(dir, "terms.dat"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{dictMarker, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	want := memGraph(triples)
	got := committedTriples(t, dir)
	wantT := append([]rdf.Triple(nil), want.Triples()...)
	sortTriples(wantT)
	if !reflect.DeepEqual(got, wantT) {
		t.Fatal("torn dict tail lost committed triples")
	}
}

// TestMidLogDictDamageRejected: damage in the middle of terms.dat —
// records still parse after the bad offset — is corruption, not a torn
// tail, and must fail the open.
func TestMidLogDictDamageRejected(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Long terms so the dictionary has many records.
	var triples []rdf.Triple
	for i := 0; i < 50; i++ {
		triples = append(triples, rdf.Triple{
			S: "http://example.org/subject/" + strings.Repeat("s", i+1),
			P: "http://example.org/predicate/p",
			O: "http://example.org/object/" + strings.Repeat("o", i+1),
		})
	}
	if _, err := st.IngestTriples(ctx, "g", triples); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "terms.dat")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 100 {
		t.Fatalf("dictionary unexpectedly small: %d bytes", len(data))
	}
	data[20] ^= 0xFF // damage an early record; later records still parse
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !IsCorrupt(err) {
		t.Fatalf("mid-log dictionary damage: want CorruptError, got %v", err)
	}
}
