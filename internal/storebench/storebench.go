// Package storebench benchmarks the persistent corpus store
// (internal/store) on a seeded synthetic graph and distills the run
// into a committed machine-readable baseline (BENCH_store.json):
// ingest throughput, range-scan throughput, reopen (recovery) latency,
// and on-disk bytes per triple.
//
// The graph comes from rdf.DefaultGen — the same generator the paper
// experiments use — so the term-length and degree distributions the
// codec sees match the analysis workload, not a synthetic best case.
package storebench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// SchemaVersion identifies the report layout for downstream tooling
// (the CI jq checks pin it).
const SchemaVersion = 1

// Config parameterizes a run.
type Config struct {
	// Dir is the store directory; the caller owns creation and cleanup
	// (tests use t.TempDir, the CLI uses os.MkdirTemp).
	Dir string
	// Seed drives the graph generator.
	Seed int64
	// Triples is the generated graph size (default 20000).
	Triples int
	// ScanSubjects is how many per-subject prefix scans the range-scan
	// phase issues on top of the full-index scan (default 200).
	ScanSubjects int
}

func (c *Config) fill() {
	if c.Triples <= 0 {
		c.Triples = 20000
	}
	if c.ScanSubjects <= 0 {
		c.ScanSubjects = 200
	}
}

// Report is the whole baseline.
type Report struct {
	SchemaVersion int   `json:"schema_version"`
	Seed          int64 `json:"seed"`
	// Triples is the number of distinct triples committed (the
	// generator may emit duplicates; dedup happens at ingest).
	Triples int `json:"triples"`

	IngestWallMS        float64 `json:"ingest_wall_ms"`
	IngestTriplesPerSec float64 `json:"ingest_triples_per_sec"`

	// ScanRows counts rows returned by one full SPO scan plus
	// ScanSubjects per-subject prefix scans.
	ScanRows       int     `json:"scan_rows"`
	ScanWallMS     float64 `json:"scan_wall_ms"`
	ScanRowsPerSec float64 `json:"scan_rows_per_sec"`

	// ReopenMS is a cold OpenExisting: registry load, segment header
	// and CRC validation, term-dictionary replay.
	ReopenMS float64 `json:"reopen_ms"`

	SegmentBytes   int64   `json:"segment_bytes"`
	BytesPerTriple float64 `json:"bytes_per_triple"`
}

// Run executes the benchmark in cfg.Dir and returns the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg.fill()
	rep := &Report{SchemaVersion: SchemaVersion, Seed: cfg.Seed}

	g := rdf.DefaultGen().Graph(rand.New(rand.NewSource(cfg.Seed)), cfg.Triples)
	triples := g.Triples()

	st, err := store.Open(cfg.Dir)
	if err != nil {
		return nil, err
	}
	defer st.Close()

	start := time.Now()
	added, err := st.IngestTriples(ctx, "bench", triples)
	if err != nil {
		return nil, err
	}
	if err := st.Flush(ctx); err != nil {
		return nil, err
	}
	ingest := time.Since(start)
	rep.Triples = added
	rep.IngestWallMS = ms(ingest)
	rep.IngestTriplesPerSec = perSec(added, ingest)

	// Range scans against the committed segments: one full SPO scan and
	// a spread of per-subject prefix scans (the OutEdges access pattern
	// of the path and algebra evaluators).
	sg, err := st.Graph(ctx, "bench")
	if err != nil {
		return nil, err
	}
	subjects := sg.Subjects()
	start = time.Now()
	rows := len(sg.Triples())
	for i := 0; i < cfg.ScanSubjects && len(subjects) > 0; i++ {
		s := subjects[i*len(subjects)/cfg.ScanSubjects]
		rows += len(sg.OutEdges(s))
	}
	scan := time.Since(start)
	if err := sg.Err(); err != nil {
		return nil, err
	}
	rep.ScanRows = rows
	rep.ScanWallMS = ms(scan)
	rep.ScanRowsPerSec = perSec(rows, scan)

	if err := st.Close(); err != nil {
		return nil, err
	}

	start = time.Now()
	st2, err := store.OpenExisting(cfg.Dir)
	if err != nil {
		return nil, err
	}
	rep.ReopenMS = ms(time.Since(start))
	defer st2.Close()

	stats, err := st2.StoreStats()
	if err != nil {
		return nil, err
	}
	if stats.Triples != added {
		return nil, fmt.Errorf("reopen lost triples: committed %d, recovered %d", added, stats.Triples)
	}
	rep.SegmentBytes = stats.SegmentBytes
	if added > 0 {
		rep.BytesPerTriple = float64(stats.SegmentBytes) / float64(added)
	}
	return rep, st2.Close()
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func perSec(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
