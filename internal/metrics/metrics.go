// Package metrics is a lightweight, dependency-free counter / gauge /
// histogram registry rendered in the Prometheus text exposition format.
// It covers exactly what the rwdserve observability surface needs:
// labeled counters (requests by endpoint and code), gauges and gauge
// callbacks (in-flight requests, cache occupancy), and latency histograms
// with cumulative buckets. All metric operations are safe for concurrent
// use and lock-free on the hot path (atomics only).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of metric families and renders them on demand.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	}
	return "gauge"
}

// family is one named metric with a fixed label schema and any number of
// children (one per observed label-value combination).
type family struct {
	name    string
	help    string
	kind    familyKind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	order    []string
	fn       func() float64 // kindGaugeFunc only
}

// child is the concrete time series for one label-value combination.
type child struct {
	labelValues []string
	val         atomic.Int64 // counters and gauges

	// histogram state: bucketCounts[i] counts observations <= buckets[i];
	// the last slot is the +Inf bucket.
	bucketCounts []atomic.Int64
	sumBits      atomic.Uint64 // float64 bits of the observation sum
	count        atomic.Int64
}

func (r *Registry) register(name, help string, kind familyKind, buckets []float64, labels ...string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("metrics: duplicate registration of " + name)
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		buckets:  buckets,
		children: map[string]*child{},
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), values...)}
		if f.kind == kindHistogram {
			c.bucketCounts = make([]atomic.Int64, len(f.buckets)+1)
		}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter is a monotonically increasing count.
type Counter struct{ c *child }

// Inc adds one.
func (c *Counter) Inc() { c.c.val.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) { c.c.val.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.c.val.Load() }

// Counter registers a new unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil)
	return &Counter{f.child(nil)}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a new labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, nil, labels...)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.child(values)} }

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.c.val.Store(n) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.c.val.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.c.val.Load() }

// Gauge registers a new unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil)
	return &Gauge{f.child(nil)}
}

// GaugeVec is a gauge family with labels (e.g. a build-info metric whose
// constant value 1 carries its information in the labels).
type GaugeVec struct{ f *family }

// GaugeVec registers a new labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, nil, labels...)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.child(values)} }

// GaugeFunc registers a gauge whose value is computed by f at scrape time
// (used for values owned elsewhere, e.g. cache occupancy or semaphore
// depth). f must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	fam := r.register(name, help, kindGaugeFunc, nil)
	fam.fn = f
}

// Histogram observes a distribution into cumulative buckets.
type Histogram struct {
	c       *child
	buckets []float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	// v belongs to every bucket with upper bound >= v; store only the
	// first and cumulate at render time.
	h.c.bucketCounts[i].Add(1)
	h.c.count.Add(1)
	for {
		old := h.c.sumBits.Load()
		if h.c.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram registers a new unlabeled histogram with the given upper
// bucket bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, append([]float64(nil), buckets...))
	return &Histogram{f.child(nil), f.buckets}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a new labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, append([]float64(nil), buckets...), labels...)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{v.f.child(values), v.f.buckets}
}

// DefBuckets is a latency bucket ladder (seconds) suited to decision
// procedures that are usually sub-millisecond but occasionally explode.
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		if f.kind == kindGaugeFunc {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn())); err != nil {
				return err
			}
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]*child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		for _, c := range children {
			if err := f.renderChild(w, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f *family) renderChild(w io.Writer, c *child) error {
	switch f.kind {
	case kindHistogram:
		cum := int64(0)
		for i, ub := range f.buckets {
			cum += c.bucketCounts[i].Load()
			ls := labelString(f.labels, c.labelValues, "le", formatFloat(ub))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum); err != nil {
				return err
			}
		}
		cum += c.bucketCounts[len(f.buckets)].Load()
		ls := labelString(f.labels, c.labelValues, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum); err != nil {
			return err
		}
		base := labelString(f.labels, c.labelValues, "", "")
		sum := math.Float64frombits(c.sumBits.Load())
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, c.count.Load())
		return err
	default:
		ls := labelString(f.labels, c.labelValues, "", "")
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, c.val.Load())
		return err
	}
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram "le" label); it returns "" when there are no labels.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
