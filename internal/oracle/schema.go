package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/dtd"
	"repro/internal/edtd"
	"repro/internal/regex"
	"repro/internal/tree"
)

// schemaContainment cross-checks DTD containment against (a) the
// single-type EDTD containment decision on the trivial type-per-label
// embedding, and (b) randomized counterexample search over documents
// sampled from the would-be sublanguage. It also pits the two EDTD
// validators (bottom-up possible-type sets vs top-down single-type
// typing) against each other and against the DTD validator.
type schemaContainment struct{}

func (schemaContainment) Name() string { return "schema-containment" }

func (schemaContainment) Description() string {
	return "dtd.Contains vs edtd.Contains on trivial EDTDs, vs sampled trees; Valid vs ValidSingleType vs dtd.Validate"
}

// schemaLabels is layered: the content model of labels[i] only uses
// labels[i+1:], so every valid document has depth <= len(schemaLabels)
// and tree sampling always terminates.
var schemaLabels = []string{"r", "s", "t", "u"}

// randomLayeredDTD draws a DTD over schemaLabels with root "r".
func randomLayeredDTD(r *rand.Rand) *dtd.DTD {
	d := dtd.New()
	for i, l := range schemaLabels {
		rest := schemaLabels[i+1:]
		var e *regex.Expr
		if len(rest) == 0 || r.Float64() < 0.25 {
			e = regex.NewEpsilon()
		} else {
			g := regex.DefaultGen(rest)
			g.MaxDepth = 3
			g.MaxFanout = 3
			e = g.Random(r)
			// containment determinizes content models; keep them small
			for tries := 0; posCount(e) > 6 && tries < 4; tries++ {
				e = g.Random(r)
			}
			if posCount(e) > 6 {
				e = regex.NewSymbol(rest[r.Intn(len(rest))])
			}
		}
		d.AddRule(l, e)
	}
	d.AddStart("r")
	return d
}

// sampleDTDTree samples a random valid document of d (layered DTDs
// only), or nil when the root's language is empty.
func sampleDTDTree(d *dtd.DTD, r *rand.Rand) *tree.Node {
	var build func(label string) *tree.Node
	build = func(label string) *tree.Node {
		n := tree.New(label)
		rule := d.Rule(label)
		w, ok := regex.RandomWord(rule, r)
		if !ok {
			return nil
		}
		for _, child := range w {
			c := build(child)
			if c == nil {
				return nil
			}
			n.Add(c)
		}
		return n
	}
	return build("r")
}

// trivialEDTD embeds a DTD as the single-type EDTD with one type per
// label (mu = identity).
func trivialEDTD(d *dtd.DTD) *edtd.EDTD {
	e := edtd.New()
	for label, rule := range d.Rules {
		e.AddType(label, label, rule.Clone())
	}
	for label := range d.Start {
		e.AddStart(label)
	}
	return e
}

func (o schemaContainment) Trial(r *rand.Rand) *Divergence {
	d1, d2 := randomLayeredDTD(r), randomLayeredDTD(r)

	if !dtd.Contains(d1, d1) {
		return &Divergence{
			Input:  fmt.Sprintf("d1=%q", d1.String()),
			Detail: "dtd.Contains(d1,d1)=false (reflexivity violated)",
		}
	}

	c := dtd.Contains(d1, d2)
	e1, e2 := trivialEDTD(d1), trivialEDTD(d2)
	if ec := edtd.Contains(e1, e2); ec != c {
		d1, d2 = shrinkDTDPair(d1, d2, func(a, b *dtd.DTD) bool {
			return edtd.Contains(trivialEDTD(a), trivialEDTD(b)) != dtd.Contains(a, b)
		})
		return &Divergence{
			Input:  fmt.Sprintf("d1=%q d2=%q", d1.String(), d2.String()),
			Detail: fmt.Sprintf("dtd.Contains=%v but edtd.Contains on trivial embedding=%v", dtd.Contains(d1, d2), edtd.Contains(trivialEDTD(d1), trivialEDTD(d2))),
		}
	}

	toDTD := e1.ToDTD()
	for i := 0; i < 6; i++ {
		t := sampleDTDTree(d1, r)
		if t == nil {
			break
		}
		if err := d1.Validate(t); err != nil {
			t = shrinkTree(t, func(c *tree.Node) bool { return d1.Validate(c) != nil })
			return &Divergence{
				Input:  fmt.Sprintf("d1=%q tree=%s", d1.String(), t),
				Detail: fmt.Sprintf("tree sampled from d1 rejected by d1.Validate: %v", d1.Validate(t)),
			}
		}
		if c {
			if err := d2.Validate(t); err != nil {
				t = shrinkTree(t, func(c2 *tree.Node) bool {
					return d1.Validate(c2) == nil && d2.Validate(c2) != nil
				})
				return &Divergence{
					Input:  fmt.Sprintf("d1=%q d2=%q tree=%s", d1.String(), d2.String(), t),
					Detail: "dtd.Contains(d1,d2)=true refuted by a sampled document of L(d1) outside L(d2)",
				}
			}
		}
		if got, want := e1.Valid(t), d1.Validate(t) == nil; got != want {
			t = shrinkTree(t, func(c2 *tree.Node) bool {
				return e1.Valid(c2) != (d1.Validate(c2) == nil)
			})
			return &Divergence{
				Input:  fmt.Sprintf("d1=%q tree=%s", d1.String(), t),
				Detail: fmt.Sprintf("edtd.Valid=%v but dtd.Validate says %v on the trivial embedding", e1.Valid(t), d1.Validate(t) == nil),
			}
		}
		if got, want := e1.ValidSingleType(t), e1.Valid(t); got != want {
			t = shrinkTree(t, func(c2 *tree.Node) bool {
				return e1.ValidSingleType(c2) != e1.Valid(c2)
			})
			return &Divergence{
				Input:  fmt.Sprintf("d1=%q tree=%s", d1.String(), t),
				Detail: fmt.Sprintf("ValidSingleType=%v but Valid=%v on a single-type EDTD", e1.ValidSingleType(t), e1.Valid(t)),
			}
		}
		if e1.Valid(t) && toDTD.Validate(t) != nil {
			t = shrinkTree(t, func(c2 *tree.Node) bool {
				return e1.Valid(c2) && toDTD.Validate(c2) != nil
			})
			return &Divergence{
				Input:  fmt.Sprintf("edtd=%q tree=%s", e1.String(), t),
				Detail: "tree valid for the EDTD but rejected by its ToDTD over-approximation (L(E) ⊆ L(ToDTD(E)) violated)",
			}
		}
		// resample bias: mutate the sampled tree and re-check the two
		// EDTD validators on near-miss documents too
		mt := mutateTree(t, r)
		if got, want := e1.ValidSingleType(mt), e1.Valid(mt); got != want {
			mt = shrinkTree(mt, func(c2 *tree.Node) bool {
				return e1.ValidSingleType(c2) != e1.Valid(c2)
			})
			return &Divergence{
				Input:  fmt.Sprintf("d1=%q tree=%s", d1.String(), mt),
				Detail: fmt.Sprintf("ValidSingleType=%v but Valid=%v on a single-type EDTD (mutated document)", e1.ValidSingleType(mt), e1.Valid(mt)),
			}
		}
	}
	return nil
}

// mutateTree returns a copy of t with one random structural edit:
// deleting a child, duplicating a child, or relabeling a node.
func mutateTree(t *tree.Node, r *rand.Rand) *tree.Node {
	out := t.Clone()
	var nodes []*tree.Node
	out.Walk(func(n *tree.Node) { nodes = append(nodes, n) })
	n := nodes[r.Intn(len(nodes))]
	switch r.Intn(3) {
	case 0:
		if len(n.Children) > 0 {
			i := r.Intn(len(n.Children))
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
		}
	case 1:
		if len(n.Children) > 0 {
			i := r.Intn(len(n.Children))
			n.Children = append(n.Children, n.Children[i].Clone())
		}
	default:
		n.Label = schemaLabels[r.Intn(len(schemaLabels))]
	}
	return out
}

// shrinkDTDPair shrinks the content models of both DTDs while the
// divergence predicate holds.
func shrinkDTDPair(d1, d2 *dtd.DTD, diverges func(a, b *dtd.DTD) bool) (*dtd.DTD, *dtd.DTD) {
	shrinkOne := func(d, other *dtd.DTD, first bool) {
		for _, l := range schemaLabels {
			rule := d.Rule(l)
			d.Rules[l] = shrinkExpr(rule, func(c *regex.Expr) bool {
				saved := d.Rules[l]
				d.Rules[l] = c
				var ok bool
				if first {
					ok = diverges(d, other)
				} else {
					ok = diverges(other, d)
				}
				d.Rules[l] = saved
				return ok
			})
		}
	}
	shrinkOne(d1, d2, true)
	shrinkOne(d2, d1, false)
	return d1, d2
}
