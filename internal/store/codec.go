// Package store is the persistent corpus layer of the repository: a
// single-directory, crash-recoverable store for RDF triple corpora and
// ingested query logs. It is the ROADMAP's "persistent encoded-term
// store" — the refactor that turns every analysis of the paper's
// Section 7 practical studies (degree power laws, predicate overlap
// ratios) and the SHARQL-style log study into ingest-once /
// re-analyze-many workloads instead of regenerate-per-run ones.
//
// Layout of a store directory:
//
//	terms.dat      append-only term dictionary (CRC-framed records,
//	               truncated-tail tolerant)
//	corpora.json   corpus registry (name → id, kind), atomic rewrite
//	seg-N.seg      immutable sorted segment files (CRC-checked header,
//	               written to a temp file and renamed, so a crash can
//	               never leave a half-written committed segment)
//
// Triples are stored three times — under the SPO, POS, and OSP key
// orders — so every bound-variable lookup shape of the property-path
// and SPARQL-algebra evaluators (S, P, O, SP, PO) is one contiguous
// range scan. Log corpora are stored once, keyed by a big-endian
// sequence number, so iteration order is ingest order.
//
// The commit point is Flush (and Close, which flushes): triples and
// log lines accepted before a successful Flush survive any crash;
// writes since the last Flush are lost wholesale, never torn.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Term codec. Every term is encoded into exactly encodedTermSize bytes
// so that keys built by concatenating encoded terms are fixed-width and
// byte-lexicographic order doubles as range-scan order:
//
//	[kind 1B][payload 8B][length-or-zero 1B]
//
// Short terms (≤ 8 bytes) are inlined: kind kindInline, payload the
// zero-padded term bytes, final byte the true length. Zero-padding plus
// the length suffix preserves lexicographic term order among inline
// terms — including terms containing NUL bytes — because the pad byte
// 0x00 is the minimum byte and equal padded payloads are disambiguated
// by length (a strict prefix sorts first, exactly as in string order).
//
// Longer terms get an 8-byte FNV-1a handle into the term dictionary:
// kind kindHash, payload the big-endian handle, final byte 0. Handles
// preserve equality (the dictionary resolves collisions at intern time
// by deterministic re-hashing) but not order; range scans only ever
// group by equal prefixes, so grouping — not global term order — is
// what the indexes need.
const (
	kindInline byte = 0x01
	kindHash   byte = 0x02

	inlineMax       = 8
	encodedTermSize = 10
)

// appendTerm encodes term into dst, interning long terms in dict.
func appendTerm(dst []byte, term string, dict *dict) []byte {
	if len(term) <= inlineMax {
		dst = append(dst, kindInline)
		dst = append(dst, term...)
		for i := len(term); i < inlineMax; i++ {
			dst = append(dst, 0)
		}
		return append(dst, byte(len(term)))
	}
	h := dict.intern(term)
	dst = append(dst, kindHash)
	dst = binary.BigEndian.AppendUint64(dst, h)
	return append(dst, 0)
}

// appendTermRead encodes term without interning: the read path
// (lookups, Match, Has) must not grow the dictionary. A long term the
// dictionary has never seen cannot appear in any key, so ok=false means
// "no stored key can match".
func appendTermRead(dst []byte, term string, dict *dict) ([]byte, bool) {
	if len(term) <= inlineMax {
		return appendTerm(dst, term, dict), true
	}
	dict.mu.RLock()
	h, ok := dict.byTerm[term]
	dict.mu.RUnlock()
	if !ok {
		return dst, false
	}
	dst = append(dst, kindHash)
	dst = binary.BigEndian.AppendUint64(dst, h)
	return append(dst, 0), true
}

// decodeTerm decodes one encoded term, resolving handles through dict.
// It rejects corrupt bytes with an error instead of panicking: the
// segment reader calls it on data whose CRC already passed, but the
// fuzz target and the verify path call it on arbitrary bytes.
func decodeTerm(b []byte, dict *dict) (string, error) {
	if len(b) < encodedTermSize {
		return "", fmt.Errorf("store: encoded term truncated: %d bytes", len(b))
	}
	switch b[0] {
	case kindInline:
		n := int(b[9])
		if n > inlineMax {
			return "", fmt.Errorf("store: inline term length %d out of range", n)
		}
		for i := 1 + n; i < 1+inlineMax; i++ {
			if b[i] != 0 {
				return "", fmt.Errorf("store: inline term has nonzero padding")
			}
		}
		return string(b[1 : 1+n]), nil
	case kindHash:
		if b[9] != 0 {
			return "", fmt.Errorf("store: hashed term has nonzero length byte")
		}
		h := binary.BigEndian.Uint64(b[1:9])
		term, ok := dict.lookup(h)
		if !ok {
			return "", fmt.Errorf("store: term handle %016x not in dictionary", h)
		}
		return term, nil
	default:
		return "", fmt.Errorf("store: unknown term kind 0x%02x", b[0])
	}
}

// fnvHash is the base handle: FNV-1a over the term bytes. Collisions
// are resolved deterministically by intern (see dict.intern).
func fnvHash(term string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(term))
	return h.Sum64()
}

// rehash derives the i-th probe handle for a colliding term: FNV-1a
// over the term bytes plus a separator and the probe counter. The
// sequence depends only on the term and i, so an intern order that
// replays identically (same segments, same dictionary log) assigns
// identical handles.
func rehash(term string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(term))
	h.Write([]byte{0xff, byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
	return h.Sum64()
}
