package bonxai

import (
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/edtd"
	"repro/internal/regex"
)

// FromEDTD converts a single-type EDTD into an equivalent pattern-based
// schema — the Figure 2a → Figure 2b direction of Section 4.4 ("the main
// conceptual idea behind BonXai is to specify the Figure 2a schema as the
// set of rules in Figure 2b"). It succeeds when every pair of same-label
// types with different content is separated by a bounded ancestor-label
// context (Bex et al. observed depth ≤ 2 in all real-world XSDs); it
// returns (nil, false) otherwise.
//
// For a type t whose content is determined by its k nearest ancestor
// labels ℓ1 (parent) … ℓk, the emitted rule is
//
//	//ℓk/…/ℓ1/μ(t) → μ(ρ(t)),
//
// with plain-label rules for context-independent types.
func FromEDTD(d *edtd.EDTD, maxContext int) (*Schema, bool) {
	if !d.IsSingleType() {
		return nil, false
	}
	k := d.TypeDependencyDepth(maxContext)
	if k < 0 {
		return nil, false
	}
	real := d.Realizable()
	// Per type: the set of ancestor-label contexts of length ≤ k under
	// which it occurs (nearest ancestor first), via fixpoint propagation
	// from the start types.
	contexts := map[string]map[string]bool{}
	types := d.Types()
	for _, t := range types {
		contexts[t] = map[string]bool{}
	}
	for s := range d.Start {
		if real[s] {
			contexts[s][""] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, t := range types {
			if !real[t] {
				continue
			}
			for ctx := range contexts[t] {
				child := pushContext(ctx, d.Label(t), k)
				for _, u := range d.Rule(t).Alphabet() {
					if !real[u] {
						continue
					}
					if !contexts[u][child] {
						contexts[u][child] = true
						changed = true
					}
				}
			}
		}
	}

	schema := &Schema{}
	// group same-label types: when all reachable same-label types share a
	// language-equivalent content we can emit a bare-label rule; otherwise
	// one rule per context.
	byLabel := map[string][]string{}
	for _, t := range types {
		if real[t] && len(contexts[t]) > 0 {
			byLabel[d.Label(t)] = append(byLabel[d.Label(t)], t)
		}
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		ts := byLabel[l]
		sort.Strings(ts)
		if allEquivalentContent(d, ts) {
			// the label's content is context-independent: one bare rule
			schema.Rules = append(schema.Rules, Rule{
				Pattern: MustParsePattern(l),
				Expr:    projectContent(d, ts[0]),
			})
			continue
		}
		// context-dependent label: one rule per (type, context). Contexts
		// with fewer than k parts were not truncated, so they reach the
		// root and the pattern can (and must) be anchored.
		for _, t := range ts {
			ctxs := make([]string, 0, len(contexts[t]))
			for c := range contexts[t] {
				ctxs = append(ctxs, c)
			}
			sort.Strings(ctxs)
			for _, ctx := range ctxs {
				pat, err := ParsePattern(contextPattern(ctx, l, k))
				if err != nil {
					return nil, false
				}
				schema.Rules = append(schema.Rules, Rule{
					Pattern: pat,
					Expr:    projectContent(d, t),
				})
			}
		}
	}
	// roots
	for s := range d.Start {
		if real[s] {
			schema.Root(d.Label(s))
		}
	}
	if schema.Roots == nil {
		schema.Roots = map[string]bool{}
	}
	return schema, true
}

// allEquivalentContent reports whether all the types' label-projected
// contents define the same language.
func allEquivalentContent(d *edtd.EDTD, ts []string) bool {
	for i := 1; i < len(ts); i++ {
		if !automata.Equivalent(projectContent(d, ts[0]), projectContent(d, ts[i])) {
			return false
		}
	}
	return true
}

// contextPattern renders the nearest-first ancestor context ℓ1/…/ℓj and
// the node label. A full-length context (j = k) may have been truncated,
// so the pattern floats: //ℓk/…/ℓ1/label. A shorter context reaches the
// root, so the pattern is anchored exactly: /ℓj/…/ℓ1/label.
func contextPattern(ctx, label string, k int) string {
	if ctx == "" {
		return "/" + label // at the root
	}
	parts := strings.Split(ctx, "/")
	short := len(parts) < k
	// reverse: furthest ancestor first
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	if short {
		return "/" + strings.Join(parts, "/") + "/" + label
	}
	return "//" + strings.Join(parts, "/") + "/" + label
}

// projectContent returns μ(ρ(t)) restricted to realizable types.
func projectContent(d *edtd.EDTD, t string) *regex.Expr {
	e := d.Rule(t).Clone()
	mu := d.Mu
	e.Walk(func(x *regex.Expr) {
		if x.Kind == regex.Symbol {
			if l, ok := mu[x.Sym]; ok {
				x.Sym = l
			}
		}
	})
	return e
}

// pushContext is shared with the EDTD context analysis: prepend the label
// and truncate to k.
func pushContext(ctx, label string, k int) string {
	parts := []string{label}
	if ctx != "" {
		parts = append(parts, strings.Split(ctx, "/")...)
	}
	if len(parts) > k {
		parts = parts[:k]
	}
	return strings.Join(parts, "/")
}
