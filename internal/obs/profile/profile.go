package profile

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs/recorder"
)

// Config parameterizes an Engine. The zero value is usable: every field
// has a documented default.
type Config struct {
	// BucketWidth is the width of one sliding-window ring bucket;
	// <= 0 means 6s.
	BucketWidth time.Duration
	// WindowBuckets is the ring length; the sliding window spans
	// BucketWidth * WindowBuckets; <= 0 means 10 (i.e. a 60s window).
	WindowBuckets int
	// AnomalyZ is the residual z-score above which a finished trace is
	// flagged as an anomaly against its op's cost model; <= 0 means 4.
	AnomalyZ float64
	// AnomalyMinSamples is the fit size below which no anomaly is ever
	// flagged (the model is still warming up); <= 0 means 50.
	AnomalyMinSamples int
	// AnomalyFloorMS is an absolute residual floor: a trace is flagged
	// only if measured - predicted also exceeds this many milliseconds,
	// so a near-perfect fit's tiny sigma cannot turn scheduler jitter
	// into anomalies; <= 0 means 1ms.
	AnomalyFloorMS float64
	// AnomalyKeep bounds the retained anomaly ring; <= 0 means 256.
	AnomalyKeep int
}

func (c Config) withDefaults() Config {
	if c.BucketWidth <= 0 {
		c.BucketWidth = 6 * time.Second
	}
	if c.WindowBuckets <= 0 {
		c.WindowBuckets = 10
	}
	if c.AnomalyZ <= 0 {
		c.AnomalyZ = 4
	}
	if c.AnomalyMinSamples <= 0 {
		c.AnomalyMinSamples = 50
	}
	if c.AnomalyFloorMS <= 0 {
		c.AnomalyFloorMS = 1
	}
	if c.AnomalyKeep <= 0 {
		c.AnomalyKeep = 256
	}
	return c
}

// key identifies one profiled series: the trace op (root span name with
// "http." trimmed) and the engine that did the work ("" when none ran,
// e.g. cache hits). Statuses are kept as sub-series inside the profile.
type key struct{ op, engine string }

// statusStats is one (op, engine, status) series: a request count and a
// duration sketch.
type statusStats struct {
	count uint64
	dur   *Sketch
}

// counterAgg is the distribution of one cost counter within a profile.
type counterAgg struct {
	sum, max int64
	sketch   *Sketch
}

// prof is the mutable per-(op, engine) profile: per-status duration
// sketches plus per-counter distributions. It appears twice per key —
// once per live ring bucket and once in the lifetime aggregate.
type prof struct {
	status   map[string]*statusStats
	counters map[string]*counterAgg
}

func newProf() *prof {
	return &prof{status: map[string]*statusStats{}, counters: map[string]*counterAgg{}}
}

func (p *prof) observe(status string, durMS float64, counters map[string]int64) {
	st := p.status[status]
	if st == nil {
		st = &statusStats{dur: &Sketch{}}
		p.status[status] = st
	}
	st.count++
	st.dur.Observe(durMS)
	for name, v := range counters {
		c := p.counters[name]
		if c == nil {
			c = &counterAgg{sketch: &Sketch{}}
			p.counters[name] = c
		}
		c.sum += v
		if v > c.max {
			c.max = v
		}
		c.sketch.Observe(float64(v))
	}
}

// merge folds other into p (used when the snapshot collapses the live
// ring buckets into one window view).
func (p *prof) merge(other *prof) {
	for status, ost := range other.status {
		st := p.status[status]
		if st == nil {
			st = &statusStats{dur: &Sketch{}}
			p.status[status] = st
		}
		st.count += ost.count
		st.dur.Merge(ost.dur)
	}
	for name, oc := range other.counters {
		c := p.counters[name]
		if c == nil {
			c = &counterAgg{sketch: &Sketch{}}
			p.counters[name] = c
		}
		c.sum += oc.sum
		if oc.max > c.max {
			c.max = oc.max
		}
		c.sketch.Merge(oc.sketch)
	}
}

// bucket is one slot of the sliding-window ring.
type bucket struct {
	start    time.Time // aligned bucket start; zero = never used
	profiles map[key]*prof
}

// Exemplar links a quantile band of a profile back to a concrete trace
// in the flight recorder (GET /v1/traces/{id}).
type Exemplar struct {
	// Band is the duration quantile band the trace fell in when it was
	// observed: "le_p50", "p50_p90", "p90_p99", or "ge_p99".
	Band       string    `json:"band"`
	TraceID    string    `json:"trace_id"`
	DurationMS float64   `json:"duration_ms"`
	Start      time.Time `json:"start"`
}

// exemplar bands, slowest last.
var bandNames = [4]string{"le_p50", "p50_p90", "p90_p99", "ge_p99"}

// Anomaly is one flagged trace: measured duration far above what the
// op's fitted cost model predicts from its cost counters.
type Anomaly struct {
	TraceID      string    `json:"trace_id"`
	Op           string    `json:"op"`
	Engine       string    `json:"engine,omitempty"`
	Start        time.Time `json:"start"`
	DurationMS   float64   `json:"duration_ms"`
	PredictedMS  float64   `json:"predicted_ms"`
	Counter      string    `json:"counter"`
	CounterValue int64     `json:"counter_value"`
	// Score is the residual in units of the fit's residual standard
	// deviation (a z-score); flagged when >= the configured threshold.
	Score float64 `json:"score"`
}

// Engine is the live workload-profile aggregator. All methods are safe
// for concurrent use; a nil *Engine is a disabled engine on which every
// method is a no-op.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	ring     []bucket
	life     map[key]*prof
	exemplar map[key]*[4]Exemplar
	// fits and counterTotals are per op (not per key): the cost model
	// predicts duration from algorithmic work regardless of status or
	// engine label, and the dominant counter is the one with the largest
	// total over the op's successful traces.
	fits          map[string]map[string]*Fit
	counterTotals map[string]map[string]int64
	anomalies     []Anomaly // newest last, bounded by cfg.AnomalyKeep
	observed      int64
	anomalyTotal  int64
	lastSeen      time.Time // max trace End() observed
}

// New builds an Engine from cfg.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:           cfg,
		ring:          make([]bucket, cfg.WindowBuckets),
		life:          map[key]*prof{},
		exemplar:      map[key]*[4]Exemplar{},
		fits:          map[string]map[string]*Fit{},
		counterTotals: map[string]map[string]int64{},
	}
}

// Window returns the sliding-window span (BucketWidth * WindowBuckets).
func (e *Engine) Window() time.Duration {
	if e == nil {
		return 0
	}
	return e.cfg.BucketWidth * time.Duration(e.cfg.WindowBuckets)
}

// Observe folds one finished trace into the profiles. The trace is
// bucketed on its own completion time (Start + Duration), not the wall
// clock, so replaying the NDJSON log through a fresh engine reproduces
// the live windows exactly.
func (e *Engine) Observe(t *recorder.Trace) {
	if e == nil || t == nil || t.Op == "" {
		return
	}
	end := t.End()
	k := key{op: t.Op, engine: recorder.TraceEngine(t)}
	counters := recorder.TraceCounters(t.Root)

	e.mu.Lock()
	defer e.mu.Unlock()
	e.observed++
	if end.After(e.lastSeen) {
		e.lastSeen = end
	}

	lp := e.life[k]
	if lp == nil {
		lp = newProf()
		e.life[k] = lp
	}
	// Score against the model as fitted *before* this observation; a
	// flagged trace is excluded from the model update so an outlier can
	// neither explain itself away nor drag the line toward a burst of
	// outliers (a sustained regime shift then shows up as a sustained
	// anomaly rate — itself the signal the regression gate watches).
	flagged := false
	if success(t.Status) {
		flagged = e.maybeFlagLocked(t, k.engine, counters)
	}
	lp.observe(t.Status, t.DurationMS, counters)
	e.ringProfLocked(end, k).observe(t.Status, t.DurationMS, counters)
	e.exemplarLocked(k, lp, t)
	if success(t.Status) && !flagged {
		e.fitLocked(t.Op, t.DurationMS, counters)
	}
}

// success reports whether a status string is a 2xx.
func success(status string) bool {
	return len(status) == 3 && status[0] == '2'
}

// isError reports whether a status string is a 4xx or 5xx.
func isError(status string) bool {
	return len(status) == 3 && (status[0] == '4' || status[0] == '5')
}

// isTimeout reports whether a status is one of the service's deadline
// statuses: 408 (client context canceled/expired) or 504 (server
// deadline exceeded).
func isTimeout(status string) bool {
	return status == "408" || status == "504"
}

// ringProfLocked returns key k's profile in the ring bucket covering an
// observation at time at, resetting the slot when it last held an older
// window period.
func (e *Engine) ringProfLocked(at time.Time, k key) *prof {
	width := e.cfg.BucketWidth
	aligned := at.Truncate(width)
	slot := int((aligned.UnixNano() / int64(width)) % int64(len(e.ring)))
	if slot < 0 {
		slot += len(e.ring)
	}
	b := &e.ring[slot]
	if !b.start.Equal(aligned) {
		b.start = aligned
		b.profiles = map[key]*prof{}
	}
	p := b.profiles[k]
	if p == nil {
		p = newProf()
		b.profiles[k] = p
	}
	return p
}

// exemplarLocked files t into its duration quantile band (computed
// against the key's lifetime sketch merged over statuses), keeping the
// most recent trace per band.
func (e *Engine) exemplarLocked(k key, lp *prof, t *recorder.Trace) {
	merged := &Sketch{}
	for _, st := range lp.status {
		merged.Merge(st.dur)
	}
	p50, p90, p99 := merged.Quantile(0.50), merged.Quantile(0.90), merged.Quantile(0.99)
	band := 0
	switch d := t.DurationMS; {
	case d >= p99:
		band = 3
	case d >= p90:
		band = 2
	case d >= p50:
		band = 1
	}
	ex := e.exemplar[k]
	if ex == nil {
		ex = &[4]Exemplar{}
		e.exemplar[k] = ex
	}
	ex[band] = Exemplar{Band: bandNames[band], TraceID: t.TraceID, DurationMS: t.DurationMS, Start: t.Start}
}

// fitLocked updates every (op, counter) fit and the dominance totals.
func (e *Engine) fitLocked(op string, durMS float64, counters map[string]int64) {
	fits := e.fits[op]
	if fits == nil {
		fits = map[string]*Fit{}
		e.fits[op] = fits
	}
	totals := e.counterTotals[op]
	if totals == nil {
		totals = map[string]int64{}
		e.counterTotals[op] = totals
	}
	for name, v := range counters {
		f := fits[name]
		if f == nil {
			f = &Fit{}
			fits[name] = f
		}
		f.Add(float64(v), durMS)
		totals[name] += v
	}
}

// dominantLocked returns the op's dominant cost counter: the one with
// the largest total over successful traces (ties broken lexicographically
// for determinism), or "" when the op has no counters.
func (e *Engine) dominantLocked(op string) string {
	best, bestTotal := "", int64(-1)
	for name, total := range e.counterTotals[op] {
		if total > bestTotal || (total == bestTotal && (best == "" || name < best)) {
			best, bestTotal = name, total
		}
	}
	return best
}

// maybeFlagLocked scores t against its op's dominant-counter cost model
// and appends an anomaly (returning true) when measured time exceeds the
// prediction by both the z-score threshold and the absolute floor.
func (e *Engine) maybeFlagLocked(t *recorder.Trace, engine string, counters map[string]int64) bool {
	dom := e.dominantLocked(t.Op)
	if dom == "" {
		return false
	}
	f := e.fits[t.Op][dom]
	if f == nil || int(f.N) < e.cfg.AnomalyMinSamples {
		return false
	}
	pred, ok := f.Predict(float64(counters[dom]))
	if !ok {
		return false
	}
	sigma, ok := f.ResidualStd()
	if !ok || sigma <= 0 {
		return false
	}
	residual := t.DurationMS - pred
	if residual < e.cfg.AnomalyFloorMS || residual < e.cfg.AnomalyZ*sigma {
		return false
	}
	e.anomalyTotal++
	e.anomalies = append(e.anomalies, Anomaly{
		TraceID:      t.TraceID,
		Op:           t.Op,
		Engine:       engine,
		Start:        t.Start,
		DurationMS:   t.DurationMS,
		PredictedMS:  pred,
		Counter:      dom,
		CounterValue: counters[dom],
		Score:        residual / sigma,
	})
	if len(e.anomalies) > e.cfg.AnomalyKeep {
		e.anomalies = append(e.anomalies[:0], e.anomalies[len(e.anomalies)-e.cfg.AnomalyKeep:]...)
	}
	return true
}

// LastSeen returns the latest trace completion time observed — the
// "now" an offline replay snapshots at so its windows match what the
// live engine reported at that instant.
func (e *Engine) LastSeen() time.Time {
	if e == nil {
		return time.Time{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastSeen
}

// Observed returns the number of traces folded in.
func (e *Engine) Observed() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.observed
}

// AnomalyCount returns the total anomalies flagged (including ones that
// have rotated out of the bounded ring).
func (e *Engine) AnomalyCount() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.anomalyTotal
}

// Replay builds a fresh engine from an on-disk trace history (oldest
// first, as recorder.ReadDir returns): the offline half of the live
// surface — `rwdtrace stats -trace-dir` replays through the exact code
// the server runs, so history and live windows agree by construction.
func Replay(traces []*recorder.Trace, cfg Config) *Engine {
	e := New(cfg)
	for _, t := range traces {
		e.Observe(t)
	}
	return e
}

// ---- snapshots ----

// Filter restricts a Snapshot. Zero value = everything.
type Filter struct {
	// Op keeps only profiles with this exact op ("" keeps all).
	Op string
	// Engine keeps only profiles with this engine label; "-" matches
	// the empty engine (no engine ran, e.g. cache hits); "" keeps all.
	Engine string
}

func (f Filter) match(k key) bool {
	if f.Op != "" && f.Op != k.op {
		return false
	}
	switch f.Engine {
	case "":
		return true
	case "-":
		return k.engine == ""
	default:
		return f.Engine == k.engine
	}
}

// DistStats summarizes one duration or counter distribution. Quantiles
// carry the sketch's RelError bound; Min/Max/Mean/Sum are exact.
type DistStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func distStats(s *Sketch) DistStats {
	return DistStats{
		Count: s.Count(),
		Sum:   s.Sum(),
		Mean:  s.Mean(),
		Min:   s.Min(),
		Max:   s.Max(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}

// StatusCount is one status sub-series of a profile.
type StatusCount struct {
	Status string `json:"status"`
	Count  uint64 `json:"count"`
}

// CounterProfile is the distribution of one cost counter over a
// profile's traces.
type CounterProfile struct {
	Name string    `json:"name"`
	Sum  int64     `json:"sum"`
	Max  int64     `json:"max"`
	Dist DistStats `json:"dist"`
}

// OpProfile is one (op, engine) row of a snapshot: request and error
// accounting, the duration distribution (merged across statuses), the
// per-status breakdown, the per-counter distributions, and (lifetime
// rows only) exemplar trace ids per duration quantile band.
type OpProfile struct {
	Op          string           `json:"op"`
	Engine      string           `json:"engine,omitempty"`
	Requests    uint64           `json:"requests"`
	Errors      uint64           `json:"errors"`
	Timeouts    uint64           `json:"timeouts"`
	ErrorRate   float64          `json:"error_rate"`
	TimeoutRate float64          `json:"timeout_rate"`
	DurationMS  DistStats        `json:"duration_ms"`
	Statuses    []StatusCount    `json:"statuses"`
	Counters    []CounterProfile `json:"counters,omitempty"`
	Exemplars   []Exemplar       `json:"exemplars,omitempty"`
}

// Model is the fitted duration-vs-dominant-counter cost model of one op:
// duration_ms ≈ intercept_ms + slope_ms * counter.
type Model struct {
	Op            string  `json:"op"`
	Counter       string  `json:"counter"`
	Samples       int64   `json:"samples"`
	SlopeMS       float64 `json:"slope_ms_per_unit"`
	InterceptMS   float64 `json:"intercept_ms"`
	R2            float64 `json:"r2"`
	ResidualStdMS float64 `json:"residual_std_ms"`
}

// Snapshot is the full JSON view served by GET /v1/stats. Field order is
// deterministic (structs and sorted slices throughout), so snapshots of
// identical engine states are byte-identical.
type Snapshot struct {
	SchemaVersion  int         `json:"schema_version"`
	GeneratedAt    time.Time   `json:"generated_at"`
	WindowSeconds  float64     `json:"window_seconds"`
	SketchRelError float64     `json:"sketch_rel_error"`
	Observed       int64       `json:"observed"`
	AnomaliesTotal int64       `json:"anomalies_total"`
	Window         []OpProfile `json:"window,omitempty"`
	Lifetime       []OpProfile `json:"lifetime,omitempty"`
	Models         []Model     `json:"models,omitempty"`
	Anomalies      []Anomaly   `json:"anomalies,omitempty"`
}

// SnapshotSchemaVersion identifies the /v1/stats payload shape.
const SnapshotSchemaVersion = 1

// WindowLive, WindowLifetime and WindowAll are the accepted window
// selectors of Snapshot and the /v1/stats `window` query parameter.
const (
	WindowLive     = "live"
	WindowLifetime = "lifetime"
	WindowAll      = "all"
)

// Snapshot renders the engine state as of now. window selects which
// profile sets to include (WindowLive, WindowLifetime, or WindowAll;
// "" means WindowAll). Live windows are evaluated against now: ring
// buckets older than the window span are excluded, so a replayed
// engine snapshotted at its LastSeen reproduces what the live engine
// reported at that instant.
func (e *Engine) Snapshot(now time.Time, window string, f Filter) *Snapshot {
	if e == nil {
		return &Snapshot{SchemaVersion: SnapshotSchemaVersion, GeneratedAt: now, SketchRelError: RelError}
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	snap := &Snapshot{
		SchemaVersion:  SnapshotSchemaVersion,
		GeneratedAt:    now,
		WindowSeconds:  e.Window().Seconds(),
		SketchRelError: RelError,
		Observed:       e.observed,
		AnomaliesTotal: e.anomalyTotal,
	}
	if window == "" {
		window = WindowAll
	}
	if window == WindowLive || window == WindowAll {
		span := e.Window()
		merged := map[key]*prof{}
		for i := range e.ring {
			b := &e.ring[i]
			if b.start.IsZero() || b.start.After(now) || now.Sub(b.start) >= span {
				continue
			}
			for k, p := range b.profiles {
				m := merged[k]
				if m == nil {
					m = newProf()
					merged[k] = m
				}
				m.merge(p)
			}
		}
		snap.Window = e.profilesLocked(merged, f, false)
	}
	if window == WindowLifetime || window == WindowAll {
		snap.Lifetime = e.profilesLocked(e.life, f, true)
		snap.Models = e.modelsLocked(f)
		for i := len(e.anomalies) - 1; i >= 0; i-- {
			a := e.anomalies[i]
			if f.match(key{op: a.Op, engine: a.Engine}) {
				snap.Anomalies = append(snap.Anomalies, a) // newest first
			}
		}
	}
	return snap
}

// profilesLocked renders a profile map as sorted OpProfile rows.
func (e *Engine) profilesLocked(profiles map[key]*prof, f Filter, exemplars bool) []OpProfile {
	keys := make([]key, 0, len(profiles))
	for k := range profiles {
		if f.match(k) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].op != keys[j].op {
			return keys[i].op < keys[j].op
		}
		return keys[i].engine < keys[j].engine
	})
	out := make([]OpProfile, 0, len(keys))
	for _, k := range keys {
		p := profiles[k]
		row := OpProfile{Op: k.op, Engine: k.engine}
		dur := &Sketch{}
		statuses := make([]string, 0, len(p.status))
		for status := range p.status {
			statuses = append(statuses, status)
		}
		sort.Strings(statuses)
		for _, status := range statuses {
			st := p.status[status]
			row.Requests += st.count
			if isError(status) {
				row.Errors += st.count
			}
			if isTimeout(status) {
				row.Timeouts += st.count
			}
			dur.Merge(st.dur)
			row.Statuses = append(row.Statuses, StatusCount{Status: status, Count: st.count})
		}
		if row.Requests > 0 {
			row.ErrorRate = float64(row.Errors) / float64(row.Requests)
			row.TimeoutRate = float64(row.Timeouts) / float64(row.Requests)
		}
		row.DurationMS = distStats(dur)
		names := make([]string, 0, len(p.counters))
		for name := range p.counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := p.counters[name]
			row.Counters = append(row.Counters, CounterProfile{
				Name: name, Sum: c.sum, Max: c.max, Dist: distStats(c.sketch),
			})
		}
		if exemplars {
			if ex := e.exemplar[k]; ex != nil {
				for _, x := range ex {
					if x.TraceID != "" {
						row.Exemplars = append(row.Exemplars, x)
					}
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// modelsLocked renders each op's dominant-counter fit as a sorted Model
// list. Ops whose dominant fit cannot define a line yet are skipped.
func (e *Engine) modelsLocked(f Filter) []Model {
	ops := make([]string, 0, len(e.fits))
	for op := range e.fits {
		if f.Op == "" || f.Op == op {
			ops = append(ops, op)
		}
	}
	sort.Strings(ops)
	var out []Model
	for _, op := range ops {
		dom := e.dominantLocked(op)
		if dom == "" {
			continue
		}
		fit := e.fits[op][dom]
		slope, intercept, ok := fit.Line()
		if !ok {
			continue
		}
		m := Model{
			Op:          op,
			Counter:     dom,
			Samples:     int64(fit.N),
			SlopeMS:     slope,
			InterceptMS: intercept,
			R2:          fit.R2(),
		}
		if sigma, ok := fit.ResidualStd(); ok {
			m.ResidualStdMS = sigma
		}
		out = append(out, m)
	}
	return out
}
