package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/automata"
	"repro/internal/regex"
)

// TestReductionRoundTripTable pins the Appendix A round-trip on a table of
// formulas with hand-checked validity: φ is valid iff L(e1) ⊆ L(e2), for
// both the RE(a,a?) and the RE(a,a*) encodings.
func TestReductionRoundTripTable(t *testing.T) {
	cases := []struct {
		name  string
		f     *DNF
		valid bool
	}{
		{"single positive literal", &DNF{Vars: 1, Clauses: []Clause{{1}}}, false},
		{"excluded middle", &DNF{Vars: 1, Clauses: []Clause{{1}, {-1}}}, true},
		{"excluded middle with spectator var", &DNF{Vars: 2, Clauses: []Clause{{1}, {-1}}}, true},
		{"complementary conjunctions miss mixed rows", &DNF{Vars: 2, Clauses: []Clause{{1, 2}, {-1, -2}}}, false},
		{"case split on x1", &DNF{Vars: 2, Clauses: []Clause{{1}, {-1, 2}, {-1, -2}}}, true},
		{"contradictory clause contributes nothing", &DNF{Vars: 1, Clauses: []Clause{{1, -1}, {1}}}, false},
		{"full truth table by clauses", &DNF{Vars: 2, Clauses: []Clause{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}}, true},
		{"three-var case split", &DNF{Vars: 3, Clauses: []Clause{{1}, {-1, 2}, {-1, -2, 3}, {-1, -2, -3}}}, true},
		{"three-var near-miss", &DNF{Vars: 3, Clauses: []Clause{{1}, {-1, 2}, {-1, -2, 3}}}, false},
	}
	for _, c := range cases {
		if got := c.f.Valid(); got != c.valid {
			t.Errorf("%s: Valid()=%v, want %v for %s", c.name, got, c.valid, c.f)
			continue
		}
		o1, o2 := c.f.ToOptContainment()
		if got := automata.Contains(o1, o2); got != c.valid {
			t.Errorf("%s: RE(a,a?) containment=%v, want %v", c.name, got, c.valid)
		}
		s1, s2 := c.f.ToStarContainment()
		if got := automata.Contains(s1, s2); got != c.valid {
			t.Errorf("%s: RE(a,a*) containment=%v, want %v", c.name, got, c.valid)
		}
	}
}

// TestReductionWordLevel cross-checks the encodings at the word level with
// the membership implementations: for valid formulas every word sampled
// from e1 must be in L(e2); for invalid formulas some sampled word must
// eventually fall outside (the reduction's counterexample witness).
func TestReductionWordLevel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	valid := &DNF{Vars: 2, Clauses: []Clause{{1}, {-1, 2}, {-1, -2}}}
	invalid := &DNF{Vars: 2, Clauses: []Clause{{1, 2}, {-1, -2}}}
	encoders := []struct {
		name string
		enc  func(*DNF) (*regex.Expr, *regex.Expr)
	}{
		{"opt", (*DNF).ToOptContainment},
		{"star", (*DNF).ToStarContainment},
	}
	for _, e := range encoders {
		e1, e2 := e.enc(valid)
		for i := 0; i < 40; i++ {
			w, ok := regex.RandomWord(e1, r)
			if !ok {
				t.Fatalf("%s: L(e1) empty for valid formula", e.name)
			}
			if !regex.Matches(e2, w) || !regex.MatchesDerivative(e2, w) {
				t.Fatalf("%s: valid formula but sampled word %v of L(e1) not in L(e2)", e.name, w)
			}
		}
		e1, e2 = e.enc(invalid)
		found := false
		for i := 0; i < 200 && !found; i++ {
			w, ok := regex.RandomWord(e1, r)
			if !ok {
				break
			}
			if !regex.Matches(e2, w) {
				if regex.MatchesDerivative(e2, w) {
					t.Fatalf("%s: membership implementations disagree on witness %v", e.name, w)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no counterexample word sampled for an invalid formula in 200 draws", e.name)
		}
	}
}
