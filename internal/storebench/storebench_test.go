package storebench

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestRunProducesSaneReport(t *testing.T) {
	rep, err := Run(context.Background(), Config{Dir: t.TempDir(), Seed: 1, Triples: 500, ScanSubjects: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d", rep.SchemaVersion)
	}
	if rep.Triples <= 0 {
		t.Fatalf("triples %d", rep.Triples)
	}
	if rep.ScanRows < rep.Triples {
		t.Fatalf("scan rows %d < triples %d", rep.ScanRows, rep.Triples)
	}
	if rep.IngestTriplesPerSec <= 0 || rep.ScanRowsPerSec <= 0 {
		t.Fatalf("rates must be positive: %+v", rep)
	}
	if rep.BytesPerTriple <= 0 {
		t.Fatalf("bytes per triple %f", rep.BytesPerTriple)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"schema_version", "triples", "ingest_triples_per_sec",
		"scan_rows_per_sec", "reopen_ms", "bytes_per_triple"} {
		if _, ok := decoded[k]; !ok {
			t.Fatalf("report JSON missing %q", k)
		}
	}
}
