// Command rwdanalyze runs the SHARQL-style analysis pipeline over a
// user-supplied corpus: a SPARQL log (one query per line), an XML corpus
// (one document per line), a DTD corpus, a JSON Schema corpus, or an XPath
// corpus — and prints the corresponding tables of the paper.
//
// Usage:
//
//	rwdgen -kind sparql -source WikiRobot/OK -n 5000 | rwdanalyze -kind sparql
//	rwdanalyze -kind sparql -file queries.log
//	rwdanalyze -kind xml -file corpus.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/jsonschema"
	"repro/internal/obs"
	"repro/internal/schemastudy"
	"repro/internal/textio"
	"repro/internal/xmllite"
	"repro/internal/xpath"
)

var kinds = map[string]bool{
	"sparql": true, "xml": true, "dtd": true, "jsonschema": true, "xpath": true,
}

func main() {
	kind := flag.String("kind", "sparql", "corpus kind: sparql|xml|dtd|jsonschema|xpath")
	file := flag.String("file", "-", "input file; '-' reads stdin")
	name := flag.String("name", "corpus", "corpus name for the reports")
	workers := flag.Int("workers", 0, "analysis workers for -kind sparql; 0 = one per CPU, 1 = sequential")
	trace := flag.String("trace", "", "dump the pipeline span tree after the run: '-' writes stderr, anything else is a file path; empty disables")
	flag.Parse()

	// Validate the kind before touching the input: feeding a huge log to
	// an unknown analyzer should fail fast, not after reading it all.
	if !kinds[*kind] {
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	lines, err := textio.ReadLines(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// With -trace the whole analysis runs under a root span; the sparql
	// pipeline is instrumented down to per-shard ingest spans.
	ctx := context.Background()
	var root *obs.Span
	if *trace != "" {
		ctx, root = (&obs.Tracer{}).StartRoot(ctx, "rwdanalyze")
		defer func() {
			root.Finish()
			dumpTrace(*trace, root.Tree())
		}()
	}

	switch *kind {
	case "sparql":
		rep := core.AnalyzeQueriesCtx(ctx, *name, lines, *workers)
		if err := core.RenderAll(os.Stdout, []*core.SourceReport{rep}); err != nil {
			fmt.Fprintln(os.Stderr, "render:", err)
			os.Exit(1)
		}
	case "xml":
		res := xmllite.RunStudy(lines)
		fmt.Printf("documents: %d; well-formed: %d (%.1f%%); top-3 error share: %.1f%%\n",
			res.Total, res.WellFormed, 100*res.WellFormedRate(), 100*res.TopThreeRate)
		for cat, n := range res.ByCategory {
			fmt.Printf("  %-24s %d\n", cat.String(), n)
		}
	case "dtd":
		rep := schemastudy.AnalyzeDTDs(lines)
		fmt.Printf("DTDs: %d (parse errors %d); recursive: %d; depths: %s\n",
			rep.Total, rep.ParseErrors, rep.Recursive, schemastudy.DescribeDepths(rep.MaxDepths))
		fmt.Printf("expressions: %d; CHARE %.1f%%; SORE %.1f%%; deterministic %.1f%%\n",
			rep.Expressions, 100*rep.CHARERate(), 100*rep.SORERate(),
			100*float64(rep.Deterministic)/float64(max(rep.Expressions, 1)))
	case "jsonschema":
		rep := jsonschema.RunStudy(lines)
		fmt.Printf("schemas: %d; recursive: %d; depths: %s; negation: %d; schema-full: %d\n",
			rep.Total, rep.Recursive, schemastudy.DescribeDepths(rep.Depths),
			rep.NegationUse, rep.SchemaFull)
	case "xpath":
		res := xpath.RunStudy(lines)
		fmt.Printf("queries: %d (parse errors %d); median size %d; tree patterns %d (%.1f%%)\n",
			res.Total, res.ParseErrors, res.SizeQuantile(0.5), res.TreePatterns,
			100*float64(res.TreePatterns)/float64(max(res.Total, 1)))
	}
}

// dumpTrace renders the span tree to stderr ("-") or the given file.
func dumpTrace(dest string, n *obs.Node) {
	w := io.Writer(os.Stderr)
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			return
		}
		defer f.Close()
		w = f
	}
	if err := obs.WriteTree(w, n); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
	}
}
