package obs

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// SlowLog is a process-wide, sampled log of operations that exceeded a
// duration threshold. A saturated server can finish thousands of slow
// spans per second (an adversarial burst makes every request slow), so
// the log samples: of the spans over Threshold, every Sample-th one is
// emitted, the rest only counted. Seen/Logged expose the totals so the
// sampling loss is never silent.
type SlowLog struct {
	// Threshold is the minimum duration for a span to count as slow.
	Threshold time.Duration
	// Sample emits 1 of every Sample slow spans; <= 1 emits all.
	Sample int64
	// Logger receives the structured lines; nil drops them (the
	// counters still advance).
	Logger *log.Logger

	seen   atomic.Int64
	logged atomic.Int64
}

// Seen returns how many spans exceeded the threshold.
func (l *SlowLog) Seen() int64 { return l.seen.Load() }

// Logged returns how many slow spans were actually emitted.
func (l *SlowLog) Logged() int64 { return l.logged.Load() }

func (l *SlowLog) observe(s *Span) {
	if s.Duration() < l.Threshold {
		return
	}
	k := l.seen.Add(1)
	sample := l.Sample
	if sample < 1 {
		sample = 1
	}
	if (k-1)%sample != 0 {
		return
	}
	l.logged.Add(1)
	if l.Logger == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "level=warn msg=slow_op trace=%s span=%q dur_ms=%.2f threshold_ms=%d",
		s.TraceID(), s.Name(), float64(s.Duration().Microseconds())/1000,
		l.Threshold.Milliseconds())
	counters := s.Counters()
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, counters[k])
	}
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%q", a.Key, a.Value)
	}
	l.Logger.Print(b.String())
}
