package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/recorder"
)

// postResp is post without JSON decoding: the response (for headers
// and status) plus the raw body.
func postResp(t *testing.T, base, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestTraceIDHeaderOnAllResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})

	// 200: a normal request.
	resp, _ := postResp(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a","right":"a*"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("code = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("200 response missing X-Trace-Id")
	}

	// 400: a malformed envelope.
	resp, _ = postResp(t, ts.URL, "/v1/containment", `{not json`)
	if resp.StatusCode != 400 {
		t.Fatalf("code = %d, want 400", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("400 response missing X-Trace-Id")
	}

	// 413: a body over the cap.
	big := `{"engine":"regex","left":"` + strings.Repeat("a ", 2000) + `","right":"a*"}`
	resp, _ = postResp(t, ts.URL, "/v1/containment", big)
	if resp.StatusCode != 413 {
		t.Fatalf("code = %d, want 413", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("413 response missing X-Trace-Id")
	}

	// The trace endpoints themselves carry the header too.
	getResp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("/v1/traces response missing X-Trace-Id")
	}
}

func TestTraceIDHeaderOn429(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1})
	slow := make(chan int, 1)
	go func() {
		slow <- post(t, ts.URL, "/v1/containment", adversarialContainment(2000), nil)
	}()
	time.Sleep(100 * time.Millisecond)
	resp, _ := postResp(t, ts.URL, "/v1/membership", `{"expr":"a","word":["a"]}`)
	if resp.StatusCode != 429 {
		t.Fatalf("code = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("429 response missing X-Trace-Id")
	}
	if got := <-slow; got != 504 {
		t.Fatalf("slow request code = %d, want 504", got)
	}
}

func TestTraceRoundTripByHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postResp(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"(a|b)*abb","right":"(a|b)*"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("code = %d, want 200", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("missing X-Trace-Id")
	}

	getResp, err := http.Get(ts.URL + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != 200 {
		raw, _ := io.ReadAll(getResp.Body)
		t.Fatalf("GET /v1/traces/%s = %d: %s", id, getResp.StatusCode, raw)
	}
	var tr recorder.Trace
	if err := json.NewDecoder(getResp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != id {
		t.Fatalf("trace id = %q, want %q", tr.TraceID, id)
	}
	if tr.Op != "containment" {
		t.Fatalf("op = %q, want containment", tr.Op)
	}
	if tr.Status != "200" {
		t.Fatalf("status = %q, want 200", tr.Status)
	}
	if tr.Root == nil {
		t.Fatal("trace has no span tree")
	}
	if got := recorder.CounterSum(tr.Root, "states_expanded"); got == 0 {
		t.Fatalf("states_expanded = 0, want the engine's cost counters in the tree:\n%+v", tr.Root)
	}

	// An unknown id is a 404, not an empty trace.
	missResp, err := http.Get(ts.URL + "/v1/traces/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	missResp.Body.Close()
	if missResp.StatusCode != 404 {
		t.Fatalf("unknown trace = %d, want 404", missResp.StatusCode)
	}
}

func TestTracesQueryFiltersAndSort(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		post(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a","right":"a*"}`, nil)
	}
	post(t, ts.URL, "/v1/membership", `{"expr":"a","word":["a"]}`, nil)

	var out struct {
		Count  int               `json:"count"`
		Traces []*recorder.Trace `json:"traces"`
		Stats  recorder.Stats    `json:"stats"`
	}
	get := func(query string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/traces" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("GET /v1/traces%s = %d: %s", query, resp.StatusCode, raw)
		}
		out = struct {
			Count  int               `json:"count"`
			Traces []*recorder.Trace `json:"traces"`
			Stats  recorder.Stats    `json:"stats"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}

	get("")
	if out.Count != 4 || len(out.Traces) != 4 {
		t.Fatalf("count = %d (%d traces), want 4", out.Count, len(out.Traces))
	}
	if out.Stats.Recorded != 4 || out.Stats.Retained != 4 {
		t.Fatalf("stats = %+v, want recorded=retained=4", out.Stats)
	}

	get("?op=containment")
	if out.Count != 3 {
		t.Fatalf("op=containment count = %d, want 3", out.Count)
	}
	for _, tr := range out.Traces {
		if tr.Op != "containment" {
			t.Fatalf("filtered result has op %q", tr.Op)
		}
	}

	get("?sort=slowest&limit=2")
	if out.Count != 2 {
		t.Fatalf("limit=2 count = %d", out.Count)
	}
	if len(out.Traces) == 2 && out.Traces[0].DurationMS < out.Traces[1].DurationMS {
		t.Fatalf("sort=slowest out of order: %v then %v",
			out.Traces[0].DurationMS, out.Traces[1].DurationMS)
	}

	// Reading /v1/traces must not record itself: still 4 recorded.
	get("")
	if out.Stats.Recorded != 4 {
		t.Fatalf("recorded grew to %d after queries — the recorder is polluting itself", out.Stats.Recorded)
	}

	// Bad parameters are 400s.
	resp, err := http.Get(ts.URL + "/v1/traces?sort=biggest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("sort=biggest = %d, want 400", resp.StatusCode)
	}
}

func TestTracesPerfettoExport(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a","right":"a*"}`, nil)

	resp, err := http.Get(ts.URL + "/v1/traces?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("code = %d, want 200", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("doc = unit %q, %d events; want ms and > 0", doc.Unit, len(doc.TraceEvents))
	}
}

func TestRecorderDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceCapacity: -1})
	// Requests still work and still carry a trace id...
	resp, _ := postResp(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a","right":"a*"}`)
	if resp.StatusCode != 200 || resp.Header.Get("X-Trace-Id") == "" {
		t.Fatalf("code = %d, header = %q", resp.StatusCode, resp.Header.Get("X-Trace-Id"))
	}
	// ...but the query surface reports the recorder off.
	getResp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != 503 {
		t.Fatalf("GET /v1/traces with recorder off = %d, want 503", getResp.StatusCode)
	}
}

func TestTraceLogSurvivesServer(t *testing.T) {
	dir := t.TempDir()
	lg, err := recorder.OpenLog(dir, recorder.LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{TraceLog: lg})
	resp, _ := postResp(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a","right":"a*"}`)
	id := resp.Header.Get("X-Trace-Id")
	ts.Close() // "server restart"
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	traces, discarded, err := recorder.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if discarded != 0 {
		t.Fatalf("discarded = %d, want 0", discarded)
	}
	var found bool
	for _, tr := range traces {
		if tr.TraceID == id {
			found = true
			if tr.Op != "containment" {
				t.Fatalf("logged op = %q, want containment", tr.Op)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in on-disk log (have %d traces)", id, len(traces))
	}
}

func TestTracesRecordedMetricsExposed(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a","right":"a*"}`, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"rwd_traces_recorded_total", "rwd_traces_retained",
		"rwd_traces_evicted_total", "rwd_traces_dropped_total", "rwd_trace_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
	if st := s.FlightStats(); st.Recorded == 0 {
		t.Fatalf("flight stats = %+v, want recorded > 0", st)
	}
}

// TestRecorderOverheadUnderFivePercent pins the recorder's hot-path
// cost: exporting a finished request's span tree and admitting it into
// the ring must cost less than 5% of serving the request itself. The
// request side is measured end to end over the HTTP stack — the
// denominator a production operator would see.
func TestRecorderOverheadUnderFivePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s, ts := newTestServer(t, Config{})
	const reqN = 200
	body := `{"engine":"regex","left":"(a|b)*abb","right":"(a|b)*"}`
	// Warm the stack (connection setup, first-request caches).
	for i := 0; i < 10; i++ {
		post(t, ts.URL, "/v1/containment", fmt.Sprintf(`{"engine":"regex","left":"a{%d}","right":"a*"}`, i+1), nil)
	}
	reqStart := time.Now()
	for i := 0; i < reqN; i++ {
		if code := post(t, ts.URL, "/v1/containment", body, nil); code != 200 {
			t.Fatalf("code = %d", code)
		}
	}
	perRequest := time.Since(reqStart) / reqN

	// A representative recorded trace from the run above.
	snap := s.flight.Snapshot()
	if len(snap) == 0 {
		t.Fatal("nothing recorded")
	}
	sample := snap[len(snap)-1]
	ring := recorder.New(recorder.Config{Capacity: 1024})
	const recN = 50000
	recStart := time.Now()
	for i := 0; i < recN; i++ {
		ring.Record(sample)
	}
	perRecord := time.Since(recStart) / recN

	if perRecord*20 > perRequest {
		t.Fatalf("recorder overhead %v per trace is not <5%% of %v per request", perRecord, perRequest)
	}
	t.Logf("per-request %v, per-record %v (%.3f%%)", perRequest, perRecord,
		100*float64(perRecord)/float64(perRequest))
}
