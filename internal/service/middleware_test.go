package service

import (
	"context"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"
)

func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// waitFor polls cond for up to 5s. The slot-release and metrics paths
// run on goroutines the test can't join directly.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClientClosedCounts408 is the regression test for the timeout-vs-
// disconnect split: a client that abandons an in-flight request must
// increment rwdserve_client_closed_total, not rwdserve_timeouts_total —
// before the fix both paths landed on 504 and the timeout counter.
func TestClientClosedCounts408(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/containment", strings.NewReader(adversarialContainment(60000)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(50 * time.Millisecond) // let the engine start
		cancel()
	}()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("expected the canceled request to fail client-side")
	}

	waitFor(t, "client_closed counter", func() bool {
		m := scrapeMetrics(t, ts.URL)
		return m[`rwdserve_client_closed_total{endpoint="containment"}`] == 1
	})
	if v := scrapeMetrics(t, ts.URL)[`rwdserve_timeouts_total{endpoint="containment"}`]; v != 0 {
		t.Fatalf("disconnect was counted as a server timeout (%v)", v)
	}
	waitFor(t, "admission slot release", func() bool {
		return scrapeMetrics(t, ts.URL)["rwdserve_inflight"] == 0
	})
}

// TestDeadlineStillCounts504 pins the other half of the split: a real
// deadline expiry stays 504 + timeouts counter, with client_closed
// untouched.
func TestDeadlineStillCounts504(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var e map[string]string
	if code := post(t, ts.URL, "/v1/containment", adversarialContainment(80), &e); code != 504 {
		t.Fatalf("code=%d, want 504", code)
	}
	m := scrapeMetrics(t, ts.URL)
	if m[`rwdserve_timeouts_total{endpoint="containment"}`] != 1 {
		t.Fatalf("timeouts counter = %v, want 1", m[`rwdserve_timeouts_total{endpoint="containment"}`])
	}
	if m[`rwdserve_client_closed_total{endpoint="containment"}`] != 0 {
		t.Fatalf("client_closed = %v, want 0", m[`rwdserve_client_closed_total{endpoint="containment"}`])
	}
}

// TestSlotHeldUntilEngineExits is the regression test for the admission
// leak: before the fix, endpoint() released the semaphore slot when the
// handler returned, even though a timed-out engine goroutine was still
// computing — sustained timeout traffic could stack unbounded background
// engines. Now the last of {handler, engines} to finish releases the
// slot, and detached engines are visible on a gauge.
func TestSlotHeldUntilEngineExits(t *testing.T) {
	s := New(Config{MaxInFlight: 1, Logger: discardLogger()})

	// acquire the slot exactly as endpoint() does
	s.sem <- struct{}{}
	slot := &slotGuard{sem: s.sem, detached: &s.detached}
	req := &request{slot: slot}

	ctx, cancel := context.WithCancel(context.Background())
	block := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel() // the request times out while the engine is stuck
	}()
	_, aerr := runEngine(ctx, req, func(context.Context) (any, *apiError) {
		<-block // an engine with no cancellation checkpoint
		return "late verdict", nil
	})
	if aerr == nil || aerr.status != http.StatusRequestTimeout {
		t.Fatalf("runEngine returned %+v, want 408", aerr)
	}

	// handler returns; the engine is still running, so the slot must
	// stay held and the engine counts as detached.
	slot.handlerReturned()
	if len(s.sem) != 1 {
		t.Fatal("slot released while an engine goroutine was still running")
	}
	if got := s.detached.Load(); got != 1 {
		t.Fatalf("detached gauge = %d, want 1", got)
	}

	// a second acquisition attempt must shed, as endpoint() would
	select {
	case s.sem <- struct{}{}:
		t.Fatal("admission gate admitted a request past the cap")
	default:
	}

	close(block) // the engine finally exits
	waitFor(t, "slot release after engine exit", func() bool {
		return len(s.sem) == 0 && s.detached.Load() == 0
	})
}

// TestSlotReleasedOnCleanFinish: the common case — engine finishes
// before the handler returns — releases exactly once with no detached
// accounting.
func TestSlotReleasedOnCleanFinish(t *testing.T) {
	s := New(Config{MaxInFlight: 1, Logger: discardLogger()})
	s.sem <- struct{}{}
	slot := &slotGuard{sem: s.sem, detached: &s.detached}
	req := &request{slot: slot}

	out, aerr := runEngine(context.Background(), req, func(context.Context) (any, *apiError) {
		return 42, nil
	})
	if aerr != nil || out.(int) != 42 {
		t.Fatalf("runEngine = %v, %v", out, aerr)
	}
	waitFor(t, "engine bookkeeping", func() bool {
		slot.mu.Lock()
		defer slot.mu.Unlock()
		return slot.engines == 0
	})
	if len(s.sem) != 1 {
		t.Fatal("slot released before the handler returned")
	}
	slot.handlerReturned()
	if len(s.sem) != 0 || s.detached.Load() != 0 {
		t.Fatalf("sem=%d detached=%d after clean finish", len(s.sem), s.detached.Load())
	}
	slot.handlerReturned() // idempotent: never double-releases
	if len(s.sem) != 0 {
		t.Fatal("double release")
	}
}

// TestParseEnvelopeOnce covers the three envelope sources: inline JSON,
// query string in stream mode, and the zero envelope for malformed JSON.
func TestParseEnvelope(t *testing.T) {
	jsonReq := &request{body: []byte(`{"explain":true,"deadline_ms":250,"left":"a"}`)}
	if env := parseEnvelope(jsonReq); !env.Explain || env.DeadlineMS != 250 {
		t.Fatalf("json envelope = %+v", env)
	}

	q, _ := url.ParseQuery("deadline_ms=90&explain=true&name=log")
	streamReq := &request{body: []byte("not json at all\n"), ndjson: true, query: q}
	if env := parseEnvelope(streamReq); !env.Explain || env.DeadlineMS != 90 {
		t.Fatalf("stream envelope = %+v", env)
	}

	// stream mode must NOT read the body even if it looks like JSON
	streamReq2 := &request{body: []byte(`{"deadline_ms":1}`), ndjson: true, query: url.Values{}}
	if env := parseEnvelope(streamReq2); env.DeadlineMS != 0 {
		t.Fatalf("stream envelope read the body: %+v", env)
	}

	if env := parseEnvelope(&request{body: []byte("garbage")}); env != (envelope{}) {
		t.Fatalf("malformed body envelope = %+v, want zero", env)
	}
}

func TestStreamingBodyContentTypes(t *testing.T) {
	cases := map[string]bool{
		"application/x-ndjson":            true,
		"application/ndjson":              true,
		"text/plain":                      true,
		"text/plain; charset=utf-8":       true,
		"Application/X-NDJSON":            true,
		"application/json":                false,
		"":                                false,
		"application/json; charset=utf-8": false,
	}
	for ct, want := range cases {
		r, _ := http.NewRequest(http.MethodPost, "/v1/analyze", nil)
		if ct != "" {
			r.Header.Set("Content-Type", ct)
		}
		if got := streamingBody(r); got != want {
			t.Errorf("streamingBody(%q) = %v, want %v", ct, got, want)
		}
	}
}
