package core

import (
	"errors"
	"io"
	"runtime"
	"testing"

	"repro/internal/loggen"
)

// hugeScale keeps every source at the 50-query floor so the tests below
// run whole studies in milliseconds.
const hugeScale = 1 << 30

func TestConfigNormalizedDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Config
	}{
		{"zero", Config{}},
		{"negative", Config{Workers: -3, ScaleDiv: -1, SeedStride: -7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.normalized()
			if want := runtime.GOMAXPROCS(0); got.Workers != want {
				t.Errorf("Workers = %d, want %d", got.Workers, want)
			}
			if got.ScaleDiv != 10000 {
				t.Errorf("ScaleDiv = %d, want 10000", got.ScaleDiv)
			}
			if got.SeedStride != defaultSeedStride {
				t.Errorf("SeedStride = %d, want %d", got.SeedStride, defaultSeedStride)
			}
		})
	}
}

func TestConfigNormalizedKeepsExplicitValues(t *testing.T) {
	in := Config{Workers: 3, ScaleDiv: 500, Seed: 42, SeedStride: 11}
	got := in.normalized()
	if got != in {
		t.Fatalf("normalized() = %+v, want unchanged %+v", got, in)
	}
}

func TestSourceSeedIndependentOfWorkers(t *testing.T) {
	base := Config{Seed: 100, SeedStride: 13}
	for i := 0; i < 5; i++ {
		want := int64(100 + i*13)
		if got := base.SourceSeed(i); got != want {
			t.Errorf("SourceSeed(%d) = %d, want %d", i, got, want)
		}
		many := Config{Seed: 100, SeedStride: 13, Workers: 8}
		if base.SourceSeed(i) != many.SourceSeed(i) {
			t.Errorf("SourceSeed(%d) depends on worker count", i)
		}
	}
	// the zero stride falls back to the historical default
	zero := Config{Seed: 5}
	if got, want := zero.SourceSeed(2), int64(5+2*defaultSeedStride); got != want {
		t.Errorf("SourceSeed with default stride = %d, want %d", got, want)
	}
}

func TestSourceStreamDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, ScaleDiv: hugeScale}
	a := cfg.SourceStream(0)
	b := cfg.SourceStream(0)
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// a different seed must change the stream
	other := Config{Seed: 8, ScaleDiv: hugeScale}.SourceStream(0)
	same := len(other) == len(a)
	if same {
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("streams identical across different seeds")
	}
}

func TestSourceStreamMatchesSequentialIngest(t *testing.T) {
	cfg := Config{Seed: 3, ScaleDiv: hugeScale}
	reports := RunLogStudySequential(cfg)
	srcs := loggen.Sources()
	if len(reports) != len(srcs) {
		t.Fatalf("got %d reports, want %d", len(reports), len(srcs))
	}
	for i, rep := range reports {
		stream := cfg.SourceStream(i)
		if rep.Total != len(stream) {
			t.Errorf("source %d: report.Total = %d, stream length = %d",
				i, rep.Total, len(stream))
		}
	}
}

// failAfterWriter fails every write after the first n bytes, exercising
// errors both in section headers and in table renderers.
type failAfterWriter struct {
	n       int
	wrote   int
	failErr error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.wrote >= w.n {
		return 0, w.failErr
	}
	w.wrote += len(p)
	return len(p), nil
}

func TestRenderAllPropagatesWriteError(t *testing.T) {
	reports := RunLogStudySequential(Config{ScaleDiv: hugeScale})
	sentinel := errors.New("disk full")
	for _, budget := range []int{0, 1, 100, 4096} {
		w := &failAfterWriter{n: budget, failErr: sentinel}
		if err := RenderAll(w, reports); !errors.Is(err, sentinel) {
			t.Errorf("budget %d: RenderAll err = %v, want %v", budget, err, sentinel)
		}
	}
	if err := RenderAll(io.Discard, reports); err != nil {
		t.Errorf("RenderAll(io.Discard) = %v, want nil", err)
	}
}
