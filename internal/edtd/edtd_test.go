package edtd

import (
	"testing"

	"repro/internal/regex"
	"repro/internal/tree"
)

// example411 is the EDTD of Example 4.11:
//
//	persons          → person*
//	person           → name (birthplace-US + birthplace-Intl)
//	birthplace-US    → city state country?
//	birthplace-Intl  → city state country
//
// with μ(birthplace-US) = μ(birthplace-Intl) = birthplace.
func example411() *EDTD {
	return New().
		AddType("persons", "persons", regex.MustParse("person*")).
		AddType("person", "person", regex.MustParse("name (birthplace-US + birthplace-Intl)")).
		AddType("name", "name", regex.NewEpsilon()).
		AddType("birthplace-US", "birthplace", regex.MustParse("city state country?")).
		AddType("birthplace-Intl", "birthplace", regex.MustParse("city state country")).
		AddType("city", "city", regex.NewEpsilon()).
		AddType("state", "state", regex.NewEpsilon()).
		AddType("country", "country", regex.NewEpsilon()).
		AddStart("persons")
}

// figure2a is the single-type EDTD of Figure 2a.
func figure2a() *EDTD {
	return New().
		AddType("a", "a", regex.MustParse("b + c")).
		AddType("b", "b", regex.MustParse("e d1 f")).
		AddType("c", "c", regex.MustParse("e d2 f")).
		AddType("d1", "d", regex.MustParse("g h1 i")).
		AddType("d2", "d", regex.MustParse("g h2 i")).
		AddType("h1", "h", regex.MustParse("j")).
		AddType("h2", "h", regex.MustParse("k")).
		AddType("e", "e", regex.NewEpsilon()).
		AddType("f", "f", regex.NewEpsilon()).
		AddType("g", "g", regex.NewEpsilon()).
		AddType("i", "i", regex.NewEpsilon()).
		AddType("j", "j", regex.NewEpsilon()).
		AddType("k", "k", regex.NewEpsilon()).
		AddStart("a")
}

func figure1Tree() *tree.Node {
	return tree.MustParse("persons(person(name, birthplace(city, state, country)), person(name, birthplace(city, state)))")
}

func TestExample411Validation(t *testing.T) {
	d := example411()
	// "The tree in Figure 1c is in the language of the schema."
	if !d.Valid(figure1Tree()) {
		t.Fatal("Figure 1c tree should satisfy Example 4.11 EDTD")
	}
	bad := []string{
		"persons(person(name, birthplace(city)))",
		"persons(person(birthplace(city, state)))",
		"person(name, birthplace(city, state))",
	}
	for _, s := range bad {
		if d.Valid(tree.MustParse(s)) {
			t.Errorf("tree %q should be invalid", s)
		}
	}
}

func TestWitnessTyping(t *testing.T) {
	d := example411()
	w := d.Witness(figure1Tree())
	if w == nil {
		t.Fatal("no witness for a valid tree")
	}
	// The first (3-child) birthplace may use either type; the second
	// (2-child) must be typed birthplace-US.
	second := w.Children[1].Children[1]
	if second.Label != "birthplace-US" {
		t.Errorf("second birthplace typed %q, want birthplace-US", second.Label)
	}
	if d.Witness(tree.MustParse("persons(name)")) != nil {
		t.Error("witness for invalid tree")
	}
}

func TestEDCViolation(t *testing.T) {
	// Example 4.11 violates Element Declarations Consistent: both
	// birthplace types occur in the same rule.
	d := example411()
	if d.IsSingleType() {
		t.Error("Example 4.11 should not be single-type")
	}
	v := d.EDCViolations()
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly 1", v)
	}
	// Figure 2a satisfies EDC: d1/d2 and h1/h2 never share a rule.
	if !figure2a().IsSingleType() {
		t.Error("Figure 2a should be single-type")
	}
	if v := figure2a().EDCViolations(); len(v) != 0 {
		t.Errorf("Figure 2a violations = %v", v)
	}
}

func TestFigure2aValidation(t *testing.T) {
	d := figure2a()
	// Under b, h must contain j; under c, h must contain k.
	good := []string{
		"a(b(e, d(g, h(j), i), f))",
		"a(c(e, d(g, h(k), i), f))",
	}
	bad := []string{
		"a(b(e, d(g, h(k), i), f))", // k under b-branch
		"a(c(e, d(g, h(j), i), f))", // j under c-branch
		"a(b(e, f))",
		"b(e, d(g, h(j), i), f)",
	}
	for _, s := range good {
		if !d.Valid(tree.MustParse(s)) {
			t.Errorf("tree %q should be valid", s)
		}
		if !d.ValidSingleType(tree.MustParse(s)) {
			t.Errorf("single-type validation rejects %q", s)
		}
	}
	for _, s := range bad {
		if d.Valid(tree.MustParse(s)) {
			t.Errorf("tree %q should be invalid", s)
		}
		if d.ValidSingleType(tree.MustParse(s)) {
			t.Errorf("single-type validation accepts %q", s)
		}
	}
}

func TestSingleTypeAgreesWithGeneralValidation(t *testing.T) {
	d := figure2a()
	trees := []string{
		"a(b(e, d(g, h(j), i), f))",
		"a(c(e, d(g, h(k), i), f))",
		"a(b(e, d(g, h(j), i), f), b(e, d(g, h(j), i), f))",
		"a(b(e, d(g, h(j, j), i), f))",
		"a",
		"x",
	}
	for _, s := range trees {
		tr := tree.MustParse(s)
		if d.Valid(tr) != d.ValidSingleType(tr) {
			t.Errorf("general and single-type validation disagree on %q", s)
		}
	}
}

func TestStructurallyDTDExpressible(t *testing.T) {
	// Bex et al. (Section 4.4): most real XSDs are structurally equivalent
	// to DTDs; Figure 2a is one of the exceptions (types depend on the
	// ancestor context).
	if figure2a().StructurallyDTDExpressible() {
		t.Error("Figure 2a uses complex types beyond DTDs")
	}
	// An EDTD whose same-label types have equivalent content IS expressible.
	d := New().
		AddType("r", "r", regex.MustParse("x1 + x2")).
		AddType("x1", "x", regex.MustParse("y?")).
		AddType("x2", "x", regex.MustParse("y?")).
		AddType("y", "y", regex.NewEpsilon()).
		AddStart("r")
	if !d.StructurallyDTDExpressible() {
		t.Error("equivalent-content types should be DTD-expressible")
	}
	// Example 4.11 is not structurally DTD-expressible (country? vs country).
	if example411().StructurallyDTDExpressible() {
		t.Error("Example 4.11 should not be structurally DTD-expressible")
	}
}

func TestToDTDOverapproximates(t *testing.T) {
	d := figure2a()
	cand := d.ToDTD()
	for _, s := range []string{
		"a(b(e, d(g, h(j), i), f))",
		"a(c(e, d(g, h(k), i), f))",
		// DTD erasure also accepts the "crossed" trees:
		"a(b(e, d(g, h(k), i), f))",
	} {
		if err := cand.Validate(tree.MustParse(s)); err != nil {
			t.Errorf("candidate DTD rejects %q: %v", s, err)
		}
	}
}

func TestTypeDependencyDepth(t *testing.T) {
	// Figure 2a's h-types depend on an ancestor further than the parent
	// (h's parent is always d; the discriminator is b vs c higher up), so
	// the dependency depth is 2 in the paper's parent/grandparent sense...
	// measured from the node: parent label d (depth 1) does not decide;
	// grandparent chain "d/b" vs "d/c" (depth 2) does.
	got := figure2a().TypeDependencyDepth(4)
	if got != 2 {
		t.Errorf("TypeDependencyDepth = %d, want 2", got)
	}
	// Example 4.11's birthplace types can occur under identical contexts,
	// so no finite context depth separates them.
	if got := example411().TypeDependencyDepth(4); got != -1 {
		t.Errorf("Example 4.11 TypeDependencyDepth = %d, want -1", got)
	}
}

func TestSTEDTDContainment(t *testing.T) {
	base := figure2a()
	if !Contains(base, base) {
		t.Error("reflexivity failed")
	}
	// widen the h1 rule from j to j? — a strict superset
	wide := figure2a()
	wide.Rules["h1"] = regex.MustParse("j?")
	if !Contains(base, wide) {
		t.Error("base ⊆ wide should hold")
	}
	if Contains(wide, base) {
		t.Error("wide ⊄ base (h without j exists only in wide)")
	}
	if !Equivalent(base, figure2a()) {
		t.Error("identical schemas should be equivalent")
	}
	// crossing the h-content between contexts changes the language
	crossed := figure2a()
	crossed.Rules["h1"], crossed.Rules["h2"] = crossed.Rules["h2"], crossed.Rules["h1"]
	if Contains(base, crossed) || Contains(crossed, base) {
		t.Error("swapped h-contents should be incomparable")
	}
}

func TestSTEDTDContainmentIgnoresUnrealizable(t *testing.T) {
	// A type whose rule requires an unsatisfiable child must not affect
	// containment.
	d1 := New().
		AddType("r", "r", regex.MustParse("x + b")).
		AddType("x", "x", regex.NewEpsilon()).
		AddType("b", "b", regex.MustParse("c")).
		AddType("c", "c", regex.MustParse("c")). // infinite descent: unrealizable
		AddStart("r")
	d2 := New().
		AddType("r", "r", regex.MustParse("x")).
		AddType("x", "x", regex.NewEpsilon()).
		AddStart("r")
	if !Contains(d1, d2) {
		t.Error("unrealizable branch must not break containment")
	}
}

func TestSTEDTDContainmentAgainstSampling(t *testing.T) {
	base := figure2a()
	wide := figure2a()
	wide.Rules["d1"] = regex.MustParse("g h1 i?")
	if !Contains(base, wide) {
		t.Fatal("base ⊆ wide")
	}
	// every tree valid for base must be valid for wide
	for _, s := range []string{
		"a(b(e, d(g, h(j), i), f))",
		"a(c(e, d(g, h(k), i), f))",
	} {
		tr := tree.MustParse(s)
		if base.Valid(tr) && !wide.Valid(tr) {
			t.Errorf("containment violated on %s", s)
		}
	}
}
