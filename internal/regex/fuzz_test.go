package regex

import "testing"

// FuzzParse asserts the parser never panics on arbitrary input and that
// accepted expressions survive a String/Parse round-trip: re-parsing the
// printed form must succeed and print identically (String is a fixpoint).
func FuzzParse(f *testing.F) {
	f.Add("(a b* + c)+")
	f.Add("a? (b + ()) c*")
	f.Add("((a))")
	f.Add("a +")
	f.Add("∅")
	f.Add("a b c d e f g h + i*")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		printed := e.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("Parse(%q) ok but re-parse of String %q failed: %v", src, printed, err)
		}
		if got := e2.String(); got != printed {
			t.Fatalf("String not a fixpoint: %q -> %q -> %q", src, printed, got)
		}
		// the empty word is cheap to decide on any expression and ties the
		// matcher to the syntactic nullability predicate
		if Matches(e, nil) != e.Nullable() {
			t.Fatalf("Matches(e, ε)=%v but Nullable=%v for %q", Matches(e, nil), e.Nullable(), printed)
		}
	})
}
