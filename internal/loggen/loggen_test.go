package loggen

import (
	"testing"

	"repro/internal/sparql"
)

func TestSourcesMatchTable2(t *testing.T) {
	srcs := Sources()
	if len(srcs) != 17 {
		t.Fatalf("sources = %d, want 17", len(srcs))
	}
	var total, valid, unique int
	for _, s := range srcs {
		total += s.PaperTotal
		valid += s.PaperValid
		unique += s.PaperUnique
		if s.PaperValid > s.PaperTotal || s.PaperUnique > s.PaperValid {
			t.Errorf("%s: inconsistent paper counts", s.Name)
		}
	}
	// Table 2 totals: 558,352,049 / 546,956,715 / 125,404,550.
	if total != 558352049 {
		t.Errorf("total = %d, want 558352049", total)
	}
	if valid != 546956715 {
		t.Errorf("valid = %d, want 546956715", valid)
	}
	if unique != 125404550 {
		t.Errorf("unique = %d, want 125404550", unique)
	}
}

func TestFreshQueriesParse(t *testing.T) {
	for _, s := range Sources() {
		g := NewGen(s, 99)
		for i := 0; i < 300; i++ {
			q := g.fresh()
			if _, err := sparql.Parse(q); err != nil {
				t.Fatalf("%s: generated unparsable query: %v\n%s", s.Name, err, q)
			}
		}
	}
}

func TestCorruptQueriesFail(t *testing.T) {
	s := Sources()[0]
	g := NewGen(s, 5)
	fails := 0
	for i := 0; i < 200; i++ {
		q := g.corrupt(g.fresh())
		if _, err := sparql.Parse(q); err != nil {
			fails++
		}
	}
	if fails < 190 {
		t.Errorf("only %d/200 corrupted queries fail to parse", fails)
	}
}

func TestRatesRoughlyCalibrated(t *testing.T) {
	s := Sources()[0] // DBpedia9-12: invalid ≈ 3.6%, unique/valid ≈ 48.6%
	g := NewGen(s, 13)
	const n = 6000
	valid := 0
	uniq := map[string]bool{}
	for i := 0; i < n; i++ {
		q := g.Next()
		if parsed, err := sparql.Parse(q); err == nil {
			valid++
			uniq[parsed.Canonical()] = true
		}
	}
	validRate := float64(valid) / n
	wantValid := float64(s.PaperValid) / float64(s.PaperTotal)
	if validRate < wantValid-0.05 || validRate > wantValid+0.05 {
		t.Errorf("valid rate = %.3f, want ≈ %.3f", validRate, wantValid)
	}
	uniqueRate := float64(len(uniq)) / float64(valid)
	wantUnique := s.UniqueRate()
	if uniqueRate < wantUnique-0.12 || uniqueRate > wantUnique+0.12 {
		t.Errorf("unique rate = %.3f, want ≈ %.3f", uniqueRate, wantUnique)
	}
}

func TestWikidataPPRate(t *testing.T) {
	var wiki Source
	for _, s := range Sources() {
		if s.Name == "WikiRobot/OK" {
			wiki = s
		}
	}
	g := NewGen(wiki, 77)
	const n = 3000
	ppQueries := 0
	for i := 0; i < n; i++ {
		q, err := sparql.Parse(g.fresh())
		if err != nil {
			continue
		}
		if len(q.PropertyPaths()) > 0 {
			ppQueries++
		}
	}
	rate := float64(ppQueries) / n
	// fresh queries realize the UNIQUE distribution: the paper reports
	// 38.94% of unique Wikidata queries using property paths (the Valid
	// 24.03% emerges from the weighted replay bag, checked in core tests)
	if rate < 0.30 || rate > 0.50 {
		t.Errorf("fresh PP rate = %.3f, want ≈ 0.39", rate)
	}
}

func TestDeterminism(t *testing.T) {
	g1 := NewGen(Sources()[0], 3)
	g2 := NewGen(Sources()[0], 3)
	for i := 0; i < 50; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("generator is not deterministic")
		}
	}
}
