// Package edtd implements extended DTDs (Definition 4.10) and single-type
// EDTDs (Definition 4.12) — the paper's structural abstraction of XML
// Schema (Section 4.3): an EDTD is (Σ, Γ, ρ, S, μ) where (Γ, ρ, S) is a DTD
// over the type alphabet and μ maps types to labels; a tree is valid iff
// some typing of its nodes is valid w.r.t. the underlying DTD.
//
// The package provides validation for general EDTDs (bottom-up computation
// of possible type sets — an unranked tree automaton run), the single-type
// and Element-Declarations-Consistent checks, deterministic top-down typing
// for single-type EDTDs, and the DTD structural-expressibility test behind
// the Bex et al. statistic of Section 4.4 (25 of 30 real XSDs are
// structurally equivalent to a DTD).
package edtd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/dtd"
	"repro/internal/regex"
	"repro/internal/tree"
)

// EDTD is an extended DTD (Definition 4.10). Rules are indexed by type;
// Mu maps each type to the label it represents. Types without a rule
// default to ε-content.
type EDTD struct {
	Rules map[string]*regex.Expr // ρ : Γ → RE over Γ
	Start map[string]bool        // S ⊆ Γ
	Mu    map[string]string      // μ : Γ → Σ
}

// New returns an empty EDTD.
func New() *EDTD {
	return &EDTD{Rules: map[string]*regex.Expr{}, Start: map[string]bool{}, Mu: map[string]string{}}
}

// AddType declares a type with its label and content model.
func (d *EDTD) AddType(typ, label string, content *regex.Expr) *EDTD {
	d.Rules[typ] = content
	d.Mu[typ] = label
	return d
}

// AddStart marks a type as a start type.
func (d *EDTD) AddStart(typ string) *EDTD {
	d.Start[typ] = true
	return d
}

// Types returns the sorted set Γ.
func (d *EDTD) Types() []string {
	set := map[string]bool{}
	for t := range d.Rules {
		set[t] = true
	}
	for t := range d.Mu {
		set[t] = true
	}
	for t := range d.Start {
		set[t] = true
	}
	for _, e := range d.Rules {
		for _, t := range e.Alphabet() {
			set[t] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Label returns μ(typ); types never added via AddType map to themselves,
// so a plain DTD is the special case Γ = Σ, μ = id.
func (d *EDTD) Label(typ string) string {
	if l, ok := d.Mu[typ]; ok {
		return l
	}
	return typ
}

// Rule returns ρ(typ), defaulting to ε.
func (d *EDTD) Rule(typ string) *regex.Expr {
	if e, ok := d.Rules[typ]; ok {
		return e
	}
	return regex.NewEpsilon()
}

func (d *EDTD) String() string {
	var b strings.Builder
	for _, t := range d.Types() {
		if e, ok := d.Rules[t]; ok {
			fmt.Fprintf(&b, "%s[%s] -> %s\n", t, d.Label(t), e)
		}
	}
	return b.String()
}

// Valid reports whether t satisfies the EDTD (Definition 4.10): some
// witness typing exists. The implementation computes, bottom-up, the set
// of possible types of every node.
func (d *EDTD) Valid(t *tree.Node) bool {
	types := d.possibleTypes(t)
	for s := range d.Start {
		if types[s] && d.Label(s) == t.Label {
			return true
		}
	}
	return false
}

// possibleTypes returns the set of types assignable to the root of t such
// that the whole subtree admits a valid typing.
func (d *EDTD) possibleTypes(t *tree.Node) map[string]bool {
	childSets := make([]map[string]bool, len(t.Children))
	for i, c := range t.Children {
		childSets[i] = d.possibleTypes(c)
	}
	out := map[string]bool{}
	for _, typ := range d.Types() {
		if d.Label(typ) != t.Label {
			continue
		}
		if d.matchesChildren(d.Rule(typ), childSets) {
			out[typ] = true
		}
	}
	return out
}

// matchesChildren reports whether some word t1…tn with ti ∈ sets[i] is in
// L(e) — an NFA simulation where step i may use any type in sets[i].
func (d *EDTD) matchesChildren(e *regex.Expr, sets []map[string]bool) bool {
	n := automata.Glushkov(e)
	cur := map[int]bool{}
	for _, q := range n.Initial {
		cur[q] = true
	}
	for _, set := range sets {
		next := map[int]bool{}
		for q := range cur {
			for typ, ps := range n.Trans[q] {
				if !set[typ] {
					continue
				}
				for _, p := range ps {
					next[p] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for q := range cur {
		if n.Final[q] {
			return true
		}
	}
	return false
}

// Witness returns a typed tree T^Γ with μ(T^Γ) = t witnessing validity
// (Definition 4.10), or nil when t is invalid.
func (d *EDTD) Witness(t *tree.Node) *tree.Node {
	for s := range d.Start {
		if d.Label(s) != t.Label {
			continue
		}
		if w := d.typeAs(t, s); w != nil {
			return w
		}
	}
	return nil
}

func (d *EDTD) typeAs(t *tree.Node, typ string) *tree.Node {
	childSets := make([]map[string]bool, len(t.Children))
	for i, c := range t.Children {
		childSets[i] = d.possibleTypes(c)
	}
	word, ok := d.childWordWitness(d.Rule(typ), childSets)
	if !ok {
		return nil
	}
	out := tree.New(typ)
	for i, c := range t.Children {
		sub := d.typeAs(c, word[i])
		if sub == nil {
			return nil
		}
		out.Add(sub)
	}
	return out
}

// childWordWitness finds a concrete type word accepted by e with ti ∈
// sets[i], if any.
func (d *EDTD) childWordWitness(e *regex.Expr, sets []map[string]bool) ([]string, bool) {
	n := automata.Glushkov(e)
	type key struct{ pos, state int }
	// BFS over (position, state) with parent pointers.
	type crumb struct {
		prev key
		typ  string
	}
	from := map[key]crumb{}
	var queue []key
	for _, q := range n.Initial {
		k := key{0, q}
		from[k] = crumb{prev: key{-1, -1}}
		queue = append(queue, k)
	}
	var final key
	found := false
	for len(queue) > 0 && !found {
		k := queue[0]
		queue = queue[1:]
		if k.pos == len(sets) {
			if n.Final[k.state] {
				final = k
				found = true
			}
			continue
		}
		for typ, ps := range n.Trans[k.state] {
			if !sets[k.pos][typ] {
				continue
			}
			for _, p := range ps {
				nk := key{k.pos + 1, p}
				if _, seen := from[nk]; !seen {
					from[nk] = crumb{prev: k, typ: typ}
					queue = append(queue, nk)
				}
			}
		}
	}
	if !found {
		// also allow acceptance when no children and initial state final
		return nil, false
	}
	var word []string
	for k := final; k.pos > 0; k = from[k].prev {
		word = append(word, from[k].typ)
	}
	for i, j := 0, len(word)-1; i < j; i, j = i+1, j-1 {
		word[i], word[j] = word[j], word[i]
	}
	return word, true
}

// typeAs requires d.Valid-style acceptance; when sets is empty,
// childWordWitness must accept iff a final initial state exists — handled
// by the pos == len(sets) check above.

// IsSingleType reports whether the EDTD is a single-type EDTD
// (Definition 4.12): no regular expression ρ(t) — and not S either —
// contains two distinct types with the same label.
func (d *EDTD) IsSingleType() bool {
	if !singleTypeSet(keys(d.Start), d) {
		return false
	}
	for _, e := range d.Rules {
		if !singleTypeSet(e.Alphabet(), d) {
			return false
		}
	}
	return true
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func singleTypeSet(types []string, d *EDTD) bool {
	seen := map[string]string{}
	for _, t := range types {
		l := d.Label(t)
		if prev, ok := seen[l]; ok && prev != t {
			return false
		}
		seen[l] = t
	}
	return true
}

// EDCViolations returns, per rule, the pairs of distinct same-label types
// that violate XML Schema's Element Declarations Consistent constraint
// (Section 4.3's discussion of Example 4.11).
func (d *EDTD) EDCViolations() []string {
	var out []string
	check := func(where string, types []string) {
		seen := map[string]string{}
		for _, t := range types {
			l := d.Label(t)
			if prev, ok := seen[l]; ok && prev != t {
				out = append(out, fmt.Sprintf("%s: types %s and %s share label %s", where, prev, t, l))
			} else {
				seen[l] = t
			}
		}
	}
	check("start", keys(d.Start))
	for _, t := range d.Types() {
		if e, ok := d.Rules[t]; ok {
			check("rule "+t, e.Alphabet())
		}
	}
	sort.Strings(out)
	return out
}

// ValidSingleType validates t against a single-type EDTD by deterministic
// top-down typing (the reason XML Schema validation is efficiently
// streamable). It panics if the EDTD is not single-type.
func (d *EDTD) ValidSingleType(t *tree.Node) bool {
	if !d.IsSingleType() {
		panic("edtd: ValidSingleType on non-single-type EDTD")
	}
	var rootType string
	for s := range d.Start {
		if d.Label(s) == t.Label {
			rootType = s
			break
		}
	}
	if rootType == "" {
		return false
	}
	return d.validAs(t, rootType)
}

func (d *EDTD) validAs(t *tree.Node, typ string) bool {
	e := d.Rule(typ)
	// Map each label to its unique type in e (single-type property).
	typeOf := map[string]string{}
	for _, ty := range e.Alphabet() {
		typeOf[d.Label(ty)] = ty
	}
	// The children's label word must match μ(e).
	mu := relabel(e, d.Mu)
	if !regex.Matches(mu, t.ChildWord()) {
		return false
	}
	for _, c := range t.Children {
		ct, ok := typeOf[c.Label]
		if !ok {
			return false
		}
		if !d.validAs(c, ct) {
			return false
		}
	}
	return true
}

// relabel applies μ to every symbol of e.
func relabel(e *regex.Expr, mu map[string]string) *regex.Expr {
	out := e.Clone()
	out.Walk(func(x *regex.Expr) {
		if x.Kind == regex.Symbol {
			if l, ok := mu[x.Sym]; ok {
				x.Sym = l
			}
		}
	})
	return out
}

// ToDTD builds the candidate DTD obtained by erasing types: for every
// label a, ρ(a) is the union of μ(ρ(t)) over types t with μ(t) = a; the
// start labels are μ(S). L(EDTD) ⊆ L(ToDTD) always holds.
func (d *EDTD) ToDTD() *dtd.DTD {
	out := dtd.New()
	byLabel := map[string][]*regex.Expr{}
	for _, t := range d.Types() {
		if e, ok := d.Rules[t]; ok {
			l := d.Label(t)
			byLabel[l] = append(byLabel[l], relabel(e, d.Mu))
		}
	}
	for l, es := range byLabel {
		out.AddRule(l, regex.NewUnion(es...))
	}
	for s := range d.Start {
		out.AddStart(d.Label(s))
	}
	return out
}

// StructurallyDTDExpressible reports whether the EDTD is structurally
// equivalent to a DTD: all (used) types of the same label have
// language-equivalent label-projected content models. Bex et al.
// (Section 4.4) found 25 of 30 real-world XSDs in this class; the other
// five use types genuinely depending on the parent or grandparent label,
// as in Figure 2a.
func (d *EDTD) StructurallyDTDExpressible() bool {
	byLabel := map[string][]*regex.Expr{}
	for _, t := range d.reachableTypes() {
		byLabel[d.Label(t)] = append(byLabel[d.Label(t)], relabel(d.Rule(t), d.Mu))
	}
	for _, es := range byLabel {
		for i := 1; i < len(es); i++ {
			if !automata.Equivalent(es[0], es[i]) {
				return false
			}
		}
	}
	return true
}

// reachableTypes returns the types reachable from the start types through
// the rules.
func (d *EDTD) reachableTypes() []string {
	seen := map[string]bool{}
	var stack []string
	for s := range d.Start {
		seen[s] = true
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range d.Rule(t).Alphabet() {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return keys(seen)
}

// TypeDependencyDepth measures how deep the ancestor context must reach to
// determine a node's type: 0 when the EDTD is structurally a DTD (type =
// label), 1 when the parent's label suffices, 2 for grandparents, and -1
// when deeper context or genuine nondeterminism is needed. Bex et al.
// observed only values 0..2 in real XSDs (Section 4.4).
func (d *EDTD) TypeDependencyDepth(maxDepth int) int {
	if d.StructurallyDTDExpressible() {
		return 0
	}
	for k := 1; k <= maxDepth; k++ {
		if d.typesDeterminedByContext(k) {
			return k
		}
	}
	return -1
}

// typesDeterminedByContext reports whether any two distinct same-label
// types with non-equivalent content always occur under distinct label
// contexts of length k (i.e. the k nearest ancestor labels determine the
// content model).
func (d *EDTD) typesDeterminedByContext(k int) bool {
	// compute, per type, the set of label contexts of length ≤ k under
	// which the type can occur (context = labels of the k nearest
	// ancestors, nearest first).
	contexts := map[string]map[string]bool{}
	for _, t := range d.Types() {
		contexts[t] = map[string]bool{}
	}
	for s := range d.Start {
		contexts[s][""] = true
	}
	// fixpoint propagation
	for changed := true; changed; {
		changed = false
		for _, t := range d.reachableTypes() {
			for ctx := range contexts[t] {
				childCtx := pushContext(ctx, d.Label(t), k)
				for _, u := range d.Rule(t).Alphabet() {
					if !contexts[u][childCtx] {
						contexts[u][childCtx] = true
						changed = true
					}
				}
			}
		}
	}
	// two same-label types with different content must have disjoint contexts
	types := d.reachableTypes()
	for i := 0; i < len(types); i++ {
		for j := i + 1; j < len(types); j++ {
			a, b := types[i], types[j]
			if d.Label(a) != d.Label(b) {
				continue
			}
			if automata.Equivalent(relabel(d.Rule(a), d.Mu), relabel(d.Rule(b), d.Mu)) {
				continue
			}
			for ctx := range contexts[a] {
				if contexts[b][ctx] {
					return false
				}
			}
		}
	}
	return true
}

func pushContext(ctx, label string, k int) string {
	parts := []string{label}
	if ctx != "" {
		parts = append(parts, strings.Split(ctx, "/")...)
	}
	if len(parts) > k {
		parts = parts[:k]
	}
	return strings.Join(parts, "/")
}
