package profile

import (
	"math"
	"math/rand"
	"testing"
)

// TestFitRecoversLine: fitting noisy samples of a known line recovers
// slope and intercept, with R² near 1 and ResidualStd near the noise
// scale.
func TestFitRecoversLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const slope, intercept, noise = 0.25, 3.0, 0.5
	f := &Fit{}
	for i := 0; i < 5000; i++ {
		x := rng.Float64() * 1000
		y := intercept + slope*x + rng.NormFloat64()*noise
		f.Add(x, y)
	}
	gotSlope, gotIntercept, ok := f.Line()
	if !ok {
		t.Fatal("Line not ok")
	}
	if math.Abs(gotSlope-slope) > 0.01 {
		t.Errorf("slope = %g, want ~%g", gotSlope, slope)
	}
	if math.Abs(gotIntercept-intercept) > 0.1 {
		t.Errorf("intercept = %g, want ~%g", gotIntercept, intercept)
	}
	if r2 := f.R2(); r2 < 0.99 {
		t.Errorf("R2 = %g, want > 0.99", r2)
	}
	sigma, ok := f.ResidualStd()
	if !ok {
		t.Fatal("ResidualStd not ok")
	}
	if math.Abs(sigma-noise) > 0.05 {
		t.Errorf("ResidualStd = %g, want ~%g", sigma, noise)
	}
	pred, ok := f.Predict(400)
	if !ok || math.Abs(pred-(intercept+slope*400)) > 1 {
		t.Errorf("Predict(400) = %g, want ~%g", pred, intercept+slope*400)
	}
}

// TestFitDegenerate: undefined lines must report ok=false, never NaN.
func TestFitDegenerate(t *testing.T) {
	var f Fit
	if _, _, ok := f.Line(); ok {
		t.Error("empty fit: Line ok")
	}
	f.Add(5, 10)
	if _, _, ok := f.Line(); ok {
		t.Error("one point: Line ok")
	}
	// Constant x: no variance, slope undefined.
	f.Add(5, 12)
	f.Add(5, 14)
	if _, _, ok := f.Line(); ok {
		t.Error("constant x: Line ok")
	}
	if _, ok := f.ResidualStd(); ok {
		t.Error("constant x: ResidualStd ok")
	}
	if r2 := f.R2(); r2 != 0 {
		t.Errorf("constant x: R2 = %g, want 0", r2)
	}
}

// TestFitPerfect: exact linear data gives R²=1 and zero residual std.
func TestFitPerfect(t *testing.T) {
	f := &Fit{}
	for i := 1; i <= 10; i++ {
		f.Add(float64(i), 2+3*float64(i))
	}
	slope, intercept, ok := f.Line()
	if !ok || math.Abs(slope-3) > 1e-9 || math.Abs(intercept-2) > 1e-9 {
		t.Fatalf("Line = %g, %g, %v; want 3, 2, true", slope, intercept, ok)
	}
	if r2 := f.R2(); r2 != 1 {
		t.Errorf("R2 = %g, want 1", r2)
	}
	if sigma, ok := f.ResidualStd(); !ok || sigma > 1e-6 {
		t.Errorf("ResidualStd = %g, %v; want ~0, true", sigma, ok)
	}
}

// TestFitMerge: merging two fits equals fitting the union.
func TestFitMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b, all := &Fit{}, &Fit{}, &Fit{}
	for i := 0; i < 1000; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		if i%2 == 0 {
			a.Add(x, y)
		} else {
			b.Add(x, y)
		}
		all.Add(x, y)
	}
	a.merge(b)
	as, ai, _ := a.Line()
	us, ui, _ := all.Line()
	if math.Abs(as-us) > 1e-9 || math.Abs(ai-ui) > 1e-9 {
		t.Errorf("merged line (%g, %g) != union line (%g, %g)", as, ai, us, ui)
	}
}
