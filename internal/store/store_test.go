package store

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func testTriples(seed int64, n int) []rdf.Triple {
	g := rdf.DefaultGen().Graph(rand.New(rand.NewSource(seed)), n)
	return append([]rdf.Triple(nil), g.Triples()...)
}

func memGraph(triples []rdf.Triple) *rdf.Graph {
	g := rdf.NewGraph()
	for _, t := range triples {
		g.Add(t.S, t.P, t.O)
	}
	return g
}

func sortTriples(ts []rdf.Triple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].S != ts[j].S {
			return ts[i].S < ts[j].S
		}
		if ts[i].P != ts[j].P {
			return ts[i].P < ts[j].P
		}
		return ts[i].O < ts[j].O
	})
}

// --- codec ---

func TestTermCodecRoundTrip(t *testing.T) {
	d, _ := openDict("")
	terms := []string{
		"", "a", "ab\x00cd", "12345678", "exactly-8"[:8],
		"a-term-well-beyond-the-inline-limit",
		"http://example.org/resource/with/a/long/iri",
		strings.Repeat("x", 1000),
		"ünïcödé-términology",
	}
	for _, term := range terms {
		enc := appendTerm(nil, term, d)
		if len(enc) != encodedTermSize {
			t.Fatalf("encoded %q to %d bytes, want %d", term, len(enc), encodedTermSize)
		}
		got, err := decodeTerm(enc, d)
		if err != nil {
			t.Fatalf("decode %q: %v", term, err)
		}
		if got != term {
			t.Fatalf("round trip %q -> %q", term, got)
		}
	}
}

func TestInlineEncodingPreservesOrder(t *testing.T) {
	d, _ := openDict("")
	terms := []string{"", "a", "aa", "a\x00", "a\x00b", "ab", "b", "zzzzzzzz", "\x00", "\x00\x00"}
	for _, x := range terms {
		for _, y := range terms {
			ex := appendTerm(nil, x, d)
			ey := appendTerm(nil, y, d)
			if sign(bytes.Compare(ex, ey)) != sign(strings.Compare(x, y)) {
				t.Fatalf("order broken: %q vs %q → enc cmp %d, str cmp %d",
					x, y, bytes.Compare(ex, ey), strings.Compare(x, y))
			}
		}
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

func TestDecodeTermRejectsCorrupt(t *testing.T) {
	d, _ := openDict("")
	cases := [][]byte{
		nil,
		{kindInline},
		{0x00, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown kind
		{kindInline, 'a', 0, 0, 0, 0, 0, 0, 0, 9},   // length out of range
		{kindInline, 'a', 'b', 0, 0, 0, 0, 0, 0, 1}, // nonzero padding
		{kindHash, 1, 2, 3, 4, 5, 6, 7, 8, 0},       // unknown handle
		{kindHash, 0, 0, 0, 0, 0, 0, 0, 0, 7},       // nonzero length byte
	}
	for i, b := range cases {
		if _, err := decodeTerm(b, d); err == nil {
			t.Fatalf("case %d: corrupt bytes %v decoded without error", i, b)
		}
	}
}

func TestDictCollisionsPreserveEquality(t *testing.T) {
	d, _ := openDict("")
	// Force the maps into a collision by pre-seeding byHandle at another
	// term's base hash.
	a := strings.Repeat("a", 20)
	b := strings.Repeat("b", 20)
	d.byHandle[fnvHash(b)] = a
	d.byTerm[a] = fnvHash(b)
	hb := d.intern(b)
	if got, _ := d.lookup(hb); got != b {
		t.Fatalf("collision broke equality: handle of %q resolves to %q", b, got)
	}
	if hb == fnvHash(b) {
		t.Fatalf("collision not detected: %q kept its base hash", b)
	}
	if d.intern(b) != hb {
		t.Fatalf("re-intern changed the handle")
	}
}

// --- segments ---

func TestSegmentRoundTripAndScan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000001.seg")
	var recs []record
	for i := 0; i < 500; i++ {
		recs = append(recs, record{
			key: []byte(fmt.Sprintf("key-%04d", i)),
			val: []byte(fmt.Sprintf("val-%d", i)),
		})
	}
	sortRecords(recs)
	if err := writeSegment(path, recs); err != nil {
		t.Fatal(err)
	}
	seg, err := openSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.close()

	if v, ok, err := seg.get([]byte("key-0123"), nil); err != nil || !ok || string(v) != "val-123" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if _, ok, err := seg.get([]byte("key-9999"), nil); err != nil || ok {
		t.Fatalf("get of absent key: ok=%v err=%v", ok, err)
	}
	var got []string
	err = seg.scanPrefix([]byte("key-01"), nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil || len(got) != 100 {
		t.Fatalf("prefix scan: %d records, err %v", len(got), err)
	}
	if n, err := seg.rangeSize([]byte("key-01"), nil); err != nil || n != 100 {
		t.Fatalf("rangeSize: %d %v", n, err)
	}
}

func TestSegmentDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000001.seg")
	recs := []record{{key: []byte("hello"), val: []byte("world")}}
	if err := writeSegment(path, recs); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)

	for name, mutate := range map[string]func([]byte) []byte{
		"flipped data byte": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[segHeaderSize] ^= 0xFF
			return c
		},
		"flipped header byte": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[10] ^= 0xFF
			return c
		},
		"truncated tail":   func(b []byte) []byte { return b[:len(b)-3] },
		"truncated header": func(b []byte) []byte { return b[:segHeaderSize-4] },
		"bad magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		},
	} {
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := openSegment(path); !IsCorrupt(err) {
			t.Fatalf("%s: want CorruptError, got %v", name, err)
		}
	}
}

// --- store ---

func TestStoreIngestFlushReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	triples := testTriples(7, 300)

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := st.IngestTriples(ctx, "g", triples)
	if err != nil {
		t.Fatal(err)
	}
	want := memGraph(triples)
	if n != want.Len() {
		t.Fatalf("ingested %d, want %d (post-dedup)", n, want.Len())
	}
	// Dedup within the memtable and across a flush boundary.
	if err := st.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if n, err := st.IngestTriples(ctx, "g", triples); err != nil || n != 0 {
		t.Fatalf("re-ingest accepted %d triples, err %v", n, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sg, err := st.Graph(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if sg.Len() != want.Len() {
		t.Fatalf("reopened Len = %d, want %d", sg.Len(), want.Len())
	}
	got := sg.Triples()
	wantT := append([]rdf.Triple(nil), want.Triples()...)
	sortTriples(got)
	sortTriples(wantT)
	if !reflect.DeepEqual(got, wantT) {
		t.Fatalf("triples diverge after reopen: %d vs %d", len(got), len(wantT))
	}
	if sg.Err() != nil {
		t.Fatalf("stored graph error: %v", sg.Err())
	}
}

func TestStoredGraphMatchesMemoryGraph(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	triples := testTriples(11, 400)
	want := memGraph(triples)

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.IngestTriples(ctx, "g", triples); err != nil {
		t.Fatal(err)
	}
	sg, err := st.Graph(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(sg.Subjects(), want.Subjects()) {
		t.Fatalf("Subjects diverge")
	}
	if !reflect.DeepEqual(sg.Predicates(), want.Predicates()) {
		t.Fatalf("Predicates diverge")
	}
	if !reflect.DeepEqual(sg.Objects(), want.Objects()) {
		t.Fatalf("Objects diverge")
	}

	asSet := func(ts []rdf.Triple) map[rdf.Triple]bool {
		m := map[rdf.Triple]bool{}
		for _, t := range ts {
			m[t] = true
		}
		return m
	}
	asSortedStrings := func(ss []string) []string {
		out := append([]string(nil), ss...)
		sort.Strings(out)
		return out
	}
	// Every lookup shape the evaluators use, on every term that occurs
	// plus some that do not.
	subjects := append(want.Subjects(), "no-such-subject", strings.Repeat("missing-long-term-", 3))
	preds := append(want.Predicates(), "no-such-predicate")
	objects := append(want.Objects(), "no-such-object")
	for _, s := range subjects {
		if !reflect.DeepEqual(asSet(sg.OutEdges(s)), asSet(want.OutEdges(s))) {
			t.Fatalf("OutEdges(%q) diverge", s)
		}
		for _, p := range preds[:4] {
			if !reflect.DeepEqual(asSortedStrings(sg.ObjectsOf(s, p)), asSortedStrings(want.ObjectsOf(s, p))) {
				t.Fatalf("ObjectsOf(%q, %q) diverge", s, p)
			}
			if !reflect.DeepEqual(asSet(sg.Match(s, p, "")), asSet(want.Match(s, p, ""))) {
				t.Fatalf("Match(%q, %q, _) diverges", s, p)
			}
		}
	}
	for _, o := range objects {
		if !reflect.DeepEqual(asSet(sg.InEdges(o)), asSet(want.InEdges(o))) {
			t.Fatalf("InEdges(%q) diverge", o)
		}
		for _, p := range preds[:4] {
			if !reflect.DeepEqual(asSortedStrings(sg.SubjectsOf(p, o)), asSortedStrings(want.SubjectsOf(p, o))) {
				t.Fatalf("SubjectsOf(%q, %q) diverge", p, o)
			}
		}
	}
	for _, p := range preds {
		if !reflect.DeepEqual(asSet(sg.Match("", p, "")), asSet(want.Match("", p, ""))) {
			t.Fatalf("Match(_, %q, _) diverges", p)
		}
	}
	for _, tr := range triples[:50] {
		if !sg.Has(tr.S, tr.P, tr.O) {
			t.Fatalf("Has(%v) = false for stored triple", tr)
		}
	}
	if sg.Has("no-such-subject", "p", "o") {
		t.Fatal("Has reported a phantom triple")
	}
	if sg.Err() != nil {
		t.Fatalf("stored graph error: %v", sg.Err())
	}
}

func TestComputeStatsBackendAgnostic(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	triples := testTriples(13, 500)
	want := memGraph(triples)

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.IngestTriples(ctx, "g", triples); err != nil {
		t.Fatal(err)
	}
	sg, err := st.Graph(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	a := rdf.ComputeStats(want)
	b := rdf.ComputeStats(sg)
	if sg.Err() != nil {
		t.Fatal(sg.Err())
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ComputeStats diverges across backends:\nmem:   %+v\nstore: %+v", a, b)
	}
}

func TestLogCorpusKeepsDuplicatesAndOrder(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	lines := []string{"q1", "q2", "q1", "", "q3", "q1"}

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestLog(ctx, "log", lines[:3]); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Second batch in a second segment, after a reopen.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.IngestLog(ctx, "log", lines[3:]); err != nil {
		t.Fatal(err)
	}
	got, err := st.LogLines(ctx, "log")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, lines) {
		t.Fatalf("log lines diverge: got %q want %q", got, lines)
	}
}

func TestCompactMergesToOneSegment(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	all := testTriples(17, 300)
	want := memGraph(all)

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < len(all); i += 60 {
		end := i + 60
		if end > len(all) {
			end = len(all)
		}
		if _, err := st.IngestTriples(ctx, "g", all[i:end]); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.IngestLog(ctx, "log", []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err := st.StoreStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 1 {
		t.Fatalf("compaction left %d segments", stats.Segments)
	}
	sg, err := st.Graph(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	got := sg.Triples()
	wantT := append([]rdf.Triple(nil), want.Triples()...)
	sortTriples(got)
	sortTriples(wantT)
	if !reflect.DeepEqual(got, wantT) {
		t.Fatalf("triples diverge after compaction")
	}
	if lines, err := st.LogLines(ctx, "log"); err != nil || !reflect.DeepEqual(lines, []string{"a", "b", "c"}) {
		t.Fatalf("log lines diverge after compaction: %q %v", lines, err)
	}
	if err := st.Verify(ctx); err != nil {
		t.Fatalf("verify after compaction: %v", err)
	}
}

func TestOpenExistingRefusesMissingStore(t *testing.T) {
	if _, err := OpenExisting(filepath.Join(t.TempDir(), "nope")); err == nil || !strings.Contains(err.Error(), "no store") {
		t.Fatalf("missing dir: %v", err)
	}
	empty := t.TempDir()
	if _, err := OpenExisting(empty); err == nil {
		t.Fatalf("empty dir accepted as store")
	}
}

func TestCorpusKindMismatch(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	if _, err := st.IngestLog(ctx, "c", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestTriples(ctx, "c", testTriples(1, 5)); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := st.Graph(ctx, "c"); err == nil {
		t.Fatal("Graph over a log corpus accepted")
	}
	if _, err := st.Graph(ctx, "absent"); err == nil {
		t.Fatal("Graph over an unknown corpus accepted")
	}
}

func TestContextCancellationStopsScan(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	if _, err := st.IngestTriples(ctx, "g", testTriples(3, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	sg, err := st.Graph(cctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	_ = sg.Triples()
	if sg.Err() == nil {
		t.Fatal("cancelled scan reported no error")
	}
}
