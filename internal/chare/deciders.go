package chare

import (
	"repro/internal/automata"
	"repro/internal/regex"
)

// Method identifies which decision procedure answered a query; benchmarks
// use it to separate the fragment-specific polynomial algorithms of
// Theorems 4.4/4.5 from the general automata fallback.
type Method int

// Decision methods.
const (
	MethodBlocks   Method = iota // RE(a,a+) block normal form (Thm 4.4(a)/4.5(a))
	MethodFixedLen               // RE(a,(+a)) positionwise sets (Thm 4.4(b)/4.5(b))
	MethodGreedy                 // subsequence-closed greedy (Abdulla et al.)
	MethodAutomata               // general automata construction (PSPACE regime)
)

func (m Method) String() string {
	switch m {
	case MethodBlocks:
		return "blocks"
	case MethodFixedLen:
		return "fixed-length"
	case MethodGreedy:
		return "greedy"
	case MethodAutomata:
		return "automata"
	}
	return "?"
}

// Contains decides L(c1) ⊆ L(c2), dispatching to the fastest applicable
// procedure, and reports which one was used.
func Contains(c1, c2 *CHARE) (bool, Method) {
	if c1.InFragment(TypeA, TypeAPlus) && c2.InFragment(TypeA, TypeAPlus) {
		return containsBlocks(c1, c2), MethodBlocks
	}
	if c1.InFragment(TypeA, TypeDisj) && c2.InFragment(TypeA, TypeDisj) {
		return containsFixedLen(c1, c2), MethodFixedLen
	}
	if greedyApplicableLeft(c1) && greedyApplicableRight(c2) {
		return containsGreedy(c1, c2), MethodGreedy
	}
	return automata.Contains(c1.Expr(), c2.Expr()), MethodAutomata
}

// IntersectionNonEmpty decides whether L(c1) ∩ … ∩ L(cn) ≠ ∅, dispatching
// to the fastest applicable procedure.
func IntersectionNonEmpty(cs ...*CHARE) (bool, Method) {
	if len(cs) == 0 {
		return true, MethodFixedLen
	}
	allBlocks, allFixed := true, true
	for _, c := range cs {
		if !c.InFragment(TypeA, TypeAPlus) {
			allBlocks = false
		}
		if !c.InFragment(TypeA, TypeDisj) {
			allFixed = false
		}
	}
	if allBlocks {
		return intersectBlocks(cs), MethodBlocks
	}
	if allFixed {
		return intersectFixedLen(cs), MethodFixedLen
	}
	es := make([]*regex.Expr, len(cs))
	for i, c := range cs {
		es[i] = c.Expr()
	}
	return automata.IntersectionNonEmpty(es...), MethodAutomata
}

// ---------------------------------------------------------------------------
// RE(a,a+): block normal form. Theorem 4.4(a) and 4.5(a).
//
// Merging adjacent factors over the same label, an RE(a,a+) expression is a
// sequence of blocks (label, minCount, unbounded) with distinct adjacent
// labels; its language is the set of words a1^n1 … am^nm with ni = minCount
// (bounded block) or ni ≥ minCount (unbounded block). Words decompose
// uniquely into blocks, so containment and intersection reduce to per-block
// count-set comparisons — the normal form is the "easy to see" PTIME
// argument referenced under Theorem 4.4(a).
// ---------------------------------------------------------------------------

type block struct {
	label     string
	min       int
	unbounded bool
}

func blocks(c *CHARE) []block {
	var out []block
	for _, f := range c.Factors {
		a := f.Symbols[0]
		unb := f.Mod == Plus
		if len(out) > 0 && out[len(out)-1].label == a {
			out[len(out)-1].min++
			out[len(out)-1].unbounded = out[len(out)-1].unbounded || unb
		} else {
			out = append(out, block{a, 1, unb})
		}
	}
	return out
}

func containsBlocks(c1, c2 *CHARE) bool {
	b1, b2 := blocks(c1), blocks(c2)
	if len(b1) != len(b2) {
		return false
	}
	for i := range b1 {
		x, y := b1[i], b2[i]
		if x.label != y.label {
			return false
		}
		switch {
		case !x.unbounded && !y.unbounded:
			if x.min != y.min {
				return false
			}
		case !x.unbounded && y.unbounded:
			if x.min < y.min {
				return false
			}
		case x.unbounded && !y.unbounded:
			return false
		default:
			if x.min < y.min {
				return false
			}
		}
	}
	return true
}

func intersectBlocks(cs []*CHARE) bool {
	base := blocks(cs[0])
	for _, c := range cs[1:] {
		b := blocks(c)
		if len(b) != len(base) {
			return false
		}
		for i := range b {
			if b[i].label != base[i].label {
				return false
			}
			x, y := base[i], b[i]
			// Intersect count sets {x} with {y}: exact∩exact needs equality;
			// exact∩[y,∞) needs exact ≥ y; [x,∞)∩[y,∞) = [max,∞).
			switch {
			case !x.unbounded && !y.unbounded:
				if x.min != y.min {
					return false
				}
			case !x.unbounded && y.unbounded:
				if x.min < y.min {
					return false
				}
			case x.unbounded && !y.unbounded:
				if y.min < x.min {
					return false
				}
				base[i] = y
			default:
				if y.min > x.min {
					base[i].min = y.min
				}
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// RE(a,(+a)): every word has length = number of factors, and position i is
// drawn from factor i's symbol set. Theorem 4.4(b) and 4.5(b).
// ---------------------------------------------------------------------------

func containsFixedLen(c1, c2 *CHARE) bool {
	if len(c1.Factors) != len(c2.Factors) {
		return false
	}
	for i, f := range c1.Factors {
		if !c2.Factors[i].ContainsAll(f.Symbols) {
			return false
		}
	}
	return true
}

func intersectFixedLen(cs []*CHARE) bool {
	n := len(cs[0].Factors)
	for _, c := range cs[1:] {
		if len(c.Factors) != n {
			return false
		}
	}
	for i := 0; i < n; i++ {
		common := map[string]bool{}
		for _, a := range cs[0].Factors[i].Symbols {
			common[a] = true
		}
		for _, c := range cs[1:] {
			next := map[string]bool{}
			for _, a := range c.Factors[i].Symbols {
				if common[a] {
					next[a] = true
				}
			}
			common = next
		}
		if len(common) == 0 {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Greedy containment for subsequence-closed right-hand sides
// (Abdulla et al., referenced after Theorem 4.4: containment of
// RE(a?,(+a)*) is in PTIME because the languages are closed under taking
// subsequences, so a greedy strategy works).
//
// Applicability: every factor of c2 is nullable (types a?, a*, (+a)?, (+a)*),
// and every factor of c1 is either a singleton (a, a?, a*, a+) or an
// unbounded disjunction ((+a)*, (+a)+). Bounded disjunction factors on the
// left, (+a) and (+a)?, are excluded: their words can split over multiple
// right-hand factors and the per-factor greedy argument breaks.
// ---------------------------------------------------------------------------

func greedyApplicableLeft(c *CHARE) bool {
	for _, f := range c.Factors {
		if !f.Singleton() && !f.Mod.Unbounded() {
			return false
		}
	}
	return true
}

func greedyApplicableRight(c *CHARE) bool {
	for _, f := range c.Factors {
		if !f.Mod.Nullable() {
			return false
		}
	}
	return true
}

func containsGreedy(c1, c2 *CHARE) bool {
	j := 0
	for _, f := range c1.Factors {
		if f.Mod.Unbounded() {
			// Arbitrarily many symbols from f.Symbols: need one starred
			// right-hand factor covering the whole set.
			for j < len(c2.Factors) && !(c2.Factors[j].Mod == Star && c2.Factors[j].ContainsAll(f.Symbols)) {
				j++
			}
			if j == len(c2.Factors) {
				return false
			}
			// Stay on the starred factor: it may absorb later material too.
		} else {
			// One occurrence of the singleton symbol.
			a := f.Symbols[0]
			for j < len(c2.Factors) && !c2.Factors[j].Contains(a) {
				j++
			}
			if j == len(c2.Factors) {
				return false
			}
			if c2.Factors[j].Mod != Star {
				j++ // an optional factor is consumed by this occurrence
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Compact witnesses. The NP upper bounds of Theorem 4.5(c–g) rest on the
// fact that a word in the intersection can be guessed as a polynomial-size
// run-length encoding and verified against each CHARE in polynomial time.
// RLEWord and MemberRLE implement that verifier.
// ---------------------------------------------------------------------------

// RLERun is a maximal run of a single label.
type RLERun struct {
	Label string
	Count int
}

// RLEWord is a run-length-encoded word; counts may be astronomically large.
type RLEWord []RLERun

// MemberRLE decides in time polynomial in |c| + |w| (the *encoding* size)
// whether the expanded word is in L(c). It relies on the pumping property
// of CHAREs: runs longer than the number of factors can only be absorbed by
// unbounded factors, so counts can be capped at |factors|+1 without changing
// membership.
func MemberRLE(c *CHARE, w RLEWord) bool {
	// A run longer than the factor count forces at least one unbounded
	// factor to absorb part of it (bounded factors consume ≤ 1 symbol each),
	// and an unbounded factor that consumes one symbol of a run can consume
	// any larger amount; conversely an accepting run can always be shrunk to
	// the cap by reducing unbounded-factor iterations. Membership is
	// therefore invariant under capping counts at |factors|+1.
	maxRun := len(c.Factors) + 1
	// Normalize: merge adjacent runs over the same label (saturating, so
	// huge counts cannot overflow) before capping.
	var norm RLEWord
	for _, r := range w {
		if r.Count <= 0 {
			continue
		}
		if len(norm) > 0 && norm[len(norm)-1].Label == r.Label {
			if norm[len(norm)-1].Count < maxRun {
				norm[len(norm)-1].Count += r.Count
			}
		} else {
			norm = append(norm, r)
		}
	}
	var word []string
	for _, r := range norm {
		n := r.Count
		if n > maxRun {
			n = maxRun
		}
		for i := 0; i < n; i++ {
			word = append(word, r.Label)
		}
	}
	return regex.Matches(c.Expr(), word)
}
