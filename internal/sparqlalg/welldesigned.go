// Package sparqlalg implements SPARQL pattern semantics over RDF graphs
// (Section 9.1 of "Towards Theory for Real-World Data"): evaluation of
// And/Filter/Union/Optional patterns (Pérez, Arenas & Gutiérrez), the
// Evaluation decision problem, and the *well-designed pattern* test — the
// OPTIONAL restriction that brings Evaluation from PSPACE-complete down to
// coNP-complete and covers ≈98% of the And/Filter/Optional queries in the
// logs (Section 9.4).
package sparqlalg

import (
	"repro/internal/sparql"
)

// UsesOnlyAFO reports whether the query's pattern uses only And, Filter
// and Optional (plus triple and property-path patterns) — the fragment in
// which well-designedness is defined.
func UsesOnlyAFO(q *sparql.Query) bool {
	ok := true
	q.Walk(func(p *sparql.Pattern) {
		switch p.Kind {
		case sparql.PGroup, sparql.PTriple, sparql.PPath, sparql.PFilter, sparql.POptional:
		default:
			ok = false
		}
		if p.Kind == sparql.PFilter && p.Expr != nil {
			for _, sub := range flattenExpr(p.Expr) {
				if sub.Kind == sparql.EExists {
					ok = false
				}
			}
		}
	})
	return ok
}

func flattenExpr(e *sparql.Expr) []*sparql.Expr {
	out := []*sparql.Expr{e}
	for _, s := range e.Subs {
		out = append(out, flattenExpr(s)...)
	}
	return out
}

// IsWellDesigned implements Pérez et al.'s condition: for every subpattern
// P' = (P1 OPTIONAL P2), every variable of P2 that also occurs outside P'
// must occur in P1. The group syntax is folded into the binary algebra
// left-to-right: { A B OPTIONAL{C} D } reads as (((A AND B) OPT C) AND D).
// It returns false when the query is outside the And/Filter/Optional
// fragment.
func IsWellDesigned(q *sparql.Query) bool {
	if !UsesOnlyAFO(q) {
		return false
	}
	if q.Where == nil {
		return true
	}
	root := toBinary(q.Where)
	if root == nil {
		return true
	}
	all := root.vars()
	return checkWD(root, all, nil)
}

// binNode is the binary And/Opt algebra with triple/filter leaves.
type binNode struct {
	op          string // "leaf", "and", "opt"
	left, right *binNode
	leafVars    map[string]bool
}

func (b *binNode) vars() map[string]bool {
	if b == nil {
		return map[string]bool{}
	}
	if b.op == "leaf" {
		out := map[string]bool{}
		for v := range b.leafVars {
			out[v] = true
		}
		return out
	}
	out := b.left.vars()
	for v := range b.right.vars() {
		out[v] = true
	}
	return out
}

func toBinary(p *sparql.Pattern) *binNode {
	switch p.Kind {
	case sparql.PTriple, sparql.PPath:
		vars := map[string]bool{}
		for _, t := range []sparql.Term{p.S, p.P, p.O} {
			if t.IsVarLike() && t.Value != "" {
				vars[t.Value] = true
			}
		}
		return &binNode{op: "leaf", leafVars: vars}
	case sparql.PFilter:
		vars := map[string]bool{}
		if p.Expr != nil {
			for _, v := range p.Expr.Vars() {
				vars[v] = true
			}
		}
		return &binNode{op: "leaf", leafVars: vars}
	case sparql.POptional:
		// handled by the parent group; standalone OPTIONAL = ε OPT P
		inner := toBinary(p.Subs[0])
		return &binNode{op: "opt", left: &binNode{op: "leaf", leafVars: map[string]bool{}}, right: inner}
	case sparql.PGroup:
		var acc *binNode
		for _, c := range p.Subs {
			if c.Kind == sparql.POptional {
				inner := toBinary(c.Subs[0])
				if acc == nil {
					acc = &binNode{op: "leaf", leafVars: map[string]bool{}}
				}
				acc = &binNode{op: "opt", left: acc, right: inner}
				continue
			}
			n := toBinary(c)
			if n == nil {
				continue
			}
			if acc == nil {
				acc = n
			} else {
				acc = &binNode{op: "and", left: acc, right: n}
			}
		}
		return acc
	}
	return nil
}

// checkWD verifies the condition on every OPT node. outside accumulates
// the variables occurring in the pattern outside the current subtree.
func checkWD(n *binNode, all map[string]bool, path []*binNode) bool {
	if n == nil || n.op == "leaf" {
		return true
	}
	if n.op == "opt" {
		// vars outside this OPT subtree: all minus the subtree, plus any
		// variable that also occurs elsewhere (a variable can be both
		// inside and outside; compute occurrences structurally).
		outside := varsOutside(all, n, path)
		p1 := n.left.vars()
		for v := range n.right.vars() {
			if outside[v] && !p1[v] {
				return false
			}
		}
	}
	return checkWD(n.left, all, append(path, n)) &&
		checkWD(n.right, all, append(path, n))
}

// varsOutside computes the variables occurring outside the subtree n,
// using the path of ancestors: for each ancestor, the sibling subtree's
// variables are outside.
func varsOutside(all map[string]bool, n *binNode, path []*binNode) map[string]bool {
	outside := map[string]bool{}
	cur := n
	for i := len(path) - 1; i >= 0; i-- {
		anc := path[i]
		var sibling *binNode
		if anc.left == cur {
			sibling = anc.right
		} else {
			sibling = anc.left
		}
		for v := range sibling.vars() {
			outside[v] = true
		}
		cur = anc
	}
	return outside
}

// WellDesignedStats aggregates the Section 9.4 statistic: of the queries
// using only And, Filter and Optional, what fraction is well-designed
// (98.74% in DBpedia–BritM, 94.18% in Wikidata).
type WellDesignedStats struct {
	AFO          int // queries in the And/Filter/Optional fragment
	WellDesigned int
}

// Observe classifies one query into the statistics.
func (s *WellDesignedStats) Observe(q *sparql.Query) {
	if !UsesOnlyAFO(q) {
		return
	}
	s.AFO++
	if IsWellDesigned(q) {
		s.WellDesigned++
	}
}

// IsUnionOfWellDesigned reports whether the query is a union of
// well-designed And/Filter/Optional patterns — UNION allowed only at the
// top level of the pattern, every branch well-designed. Picalausa &
// Vansummeren found roughly 50% of the Optional-using DBpedia queries in
// this class (Section 9.1).
func IsUnionOfWellDesigned(q *sparql.Query) bool {
	if q.Where == nil {
		return true
	}
	branches, ok := topLevelUnionBranches(q.Where)
	if !ok {
		return false
	}
	for _, b := range branches {
		sub := &sparql.Query{Type: q.Type, Where: b}
		if !UsesOnlyAFO(sub) || !IsWellDesigned(sub) {
			return false
		}
	}
	return true
}

// topLevelUnionBranches splits the pattern into UNION branches when UNION
// occurs only at the top level; ok=false when UNION occurs deeper.
func topLevelUnionBranches(p *sparql.Pattern) ([]*sparql.Pattern, bool) {
	switch p.Kind {
	case sparql.PUnion:
		l, okL := topLevelUnionBranches(p.Subs[0])
		r, okR := topLevelUnionBranches(p.Subs[1])
		return append(l, r...), okL && okR
	case sparql.PGroup:
		if len(p.Subs) == 1 {
			return topLevelUnionBranches(p.Subs[0])
		}
	}
	// no top-level union: the whole pattern is one branch, which must not
	// contain UNION anywhere inside
	hasUnion := false
	walkAll(p, func(x *sparql.Pattern) {
		if x.Kind == sparql.PUnion {
			hasUnion = true
		}
	})
	if hasUnion {
		return nil, false
	}
	return []*sparql.Pattern{p}, true
}

func walkAll(p *sparql.Pattern, f func(*sparql.Pattern)) {
	f(p)
	for _, s := range p.Subs {
		walkAll(s, f)
	}
}

// IsWellBehaved approximates the "even stronger condition" of Picalausa &
// Vansummeren that makes Evaluation tractable (Section 9.1 reports 83.8%
// (75.7%) of all patterns well-behaved). The published condition is
// union-of-well-designed plus restrictions on how projection interacts
// with optional variables; since the analyzer works at pattern level
// (patterns have no projection, cf. the paper's footnote on Evaluation),
// the implemented condition coincides with union-of-well-designed.
func IsWellBehaved(q *sparql.Query) bool {
	return IsUnionOfWellDesigned(q)
}
