package metrics

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentWriteWhileRendering hammers counters, gauges, and
// histograms from many goroutines — including ones that create new
// label children mid-flight — while WriteText renders concurrently,
// and asserts every rendered snapshot is well-formed Prometheus text.
// Run under -race this also proves the registry's synchronization.
func TestConcurrentWriteWhileRendering(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("hammer_total", "h.", "worker", "kind")
	gv := r.GaugeVec("hammer_gauge", "h.", "worker")
	h := r.Histogram("hammer_seconds", "h.", DefBuckets)
	hv := r.HistogramVec("hammer_vec_seconds", "h.", []float64{0.1, 1}, "worker")
	r.GaugeFunc("hammer_func", "h.", func() float64 { return 42 })

	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			id := strconv.Itoa(w)
			c := cv.With(id, "steady")
			g := gv.With(id)
			hw := hv.With(id)
			for i := 0; i < iters; i++ {
				c.Inc()
				// a fresh label value every few iterations exercises
				// child creation racing the renderer's family walk
				if i%64 == 0 {
					cv.With(id, "burst"+strconv.Itoa(i)).Add(2)
				}
				g.Set(int64(i))
				h.Observe(float64(i%7) / 10)
				hw.Observe(float64(i%13) / 10)
			}
		}(w)
	}
	renderDone := make(chan []string)
	go func() {
		<-start
		var snaps []string
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Error(err)
				break
			}
			snaps = append(snaps, buf.String())
		}
		renderDone <- snaps
	}()
	close(start)
	wg.Wait()
	snaps := <-renderDone

	for _, s := range snaps {
		checkPrometheusText(t, s)
	}

	// Final snapshot must account every write exactly.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	final := buf.String()
	checkPrometheusText(t, final)
	steady := 0
	for _, line := range strings.Split(final, "\n") {
		if strings.HasPrefix(line, `hammer_total{worker=`) && strings.Contains(line, `kind="steady"`) {
			v, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
			if err != nil {
				t.Fatalf("bad line %q: %v", line, err)
			}
			steady += v
		}
	}
	if steady != workers*iters {
		t.Fatalf("steady counter sum = %d, want %d", steady, workers*iters)
	}
	if !strings.Contains(final, "hammer_func 42") {
		t.Fatal("gauge func missing")
	}
}

// checkPrometheusText asserts the structural invariants of the text
// exposition format: every family has HELP+TYPE before its samples,
// every sample line is "name{labels} value" for a declared family, and
// histogram buckets are cumulative and le-sorted.
func checkPrometheusText(t *testing.T, text string) {
	t.Helper()
	declared := map[string]bool{}
	var lastFamily string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case line == "":
			t.Fatal("blank line in exposition")
		case strings.HasPrefix(line, "# HELP "):
			f := strings.SplitN(line[len("# HELP "):], " ", 2)[0]
			declared[f] = true
			lastFamily = f
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 || parts[0] != lastFamily {
				t.Fatalf("TYPE line %q does not follow HELP for %q", line, lastFamily)
			}
		default:
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("sample line %q has no value", line)
			}
			if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
				t.Fatalf("sample line %q: bad value: %v", line, err)
			}
			name := line[:sp]
			if i := strings.IndexByte(name, '{'); i >= 0 {
				if !strings.HasSuffix(name, "}") {
					t.Fatalf("sample line %q: unterminated label set", line)
				}
				name = name[:i]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if !declared[name] && !declared[base] {
				t.Fatalf("sample line %q references undeclared family", line)
			}
		}
	}
}
