package oracle

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/dtd"
	"repro/internal/edtd"
	"repro/internal/jsonschema"
	"repro/internal/propertypath"
	"repro/internal/regex"
	"repro/internal/sparql"
	"repro/internal/sparqlalg"
	"repro/internal/tree"
)

// Native Go fuzz targets for the differential oracles. Unlike the seeded
// Trial drivers, these let the fuzzing engine mutate the instances
// directly (expressions and words as text, graphs and schemas as seeds),
// so coverage guidance can reach corners the generators never sample.

func splitWord(s string) []string {
	w := strings.Fields(s)
	if len(w) > 12 {
		w = w[:12]
	}
	return w
}

// FuzzRegexMembership feeds arbitrary expression/word texts to the four
// membership implementations; any parseable pair must agree.
func FuzzRegexMembership(f *testing.F) {
	f.Add("(a b* + c)+", "a b b")
	f.Add("((a (a* c? a)*)+ + b+)*", "a a c a")
	f.Add("a? a? a?", "")
	f.Add("(a + b)* a (a + b)", "b a b")
	f.Fuzz(func(t *testing.T, exprSrc, wordSrc string) {
		e, err := regex.Parse(exprSrc)
		if err != nil {
			t.Skip()
		}
		if posCount(e) > 12 || e.Size() > 60 {
			t.Skip()
		}
		w := splitWord(wordSrc)
		if memberDisagree(e, w) {
			v := memberVerdicts(e, w)
			t.Fatalf("membership divergence on expr=%s word=%q: Matches=%v Derivative=%v NFA=%v DFA=%v",
				e, w, v[0], v[1], v[2], v[3])
		}
	})
}

// FuzzRegexContainment cross-checks automata.Contains against sampled
// words and the union upper bound on arbitrary expression pairs.
func FuzzRegexContainment(f *testing.F) {
	f.Add("a b", "a b + a", int64(1))
	f.Add("(a + b)*", "a*", int64(2))
	f.Add("a?", "a", int64(3))
	f.Fuzz(func(t *testing.T, src1, src2 string, seed int64) {
		e1, err := regex.Parse(src1)
		if err != nil {
			t.Skip()
		}
		e2, err := regex.Parse(src2)
		if err != nil {
			t.Skip()
		}
		if posCount(e1) > 8 || posCount(e2) > 8 || e1.Size() > 40 || e2.Size() > 40 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		c := automata.Contains(e1, e2)
		for i := 0; i < 6; i++ {
			w, ok := regex.RandomWord(e1, r)
			if !ok {
				break
			}
			if !regex.Matches(e1, w) {
				t.Fatalf("RandomWord(%s) produced %q outside the language", e1, w)
			}
			if c && !regex.Matches(e2, w) {
				t.Fatalf("Contains(%s, %s)=true refuted by word %q", e1, e2, w)
			}
		}
		if !automata.Contains(e1, regex.NewUnion(e1.Clone(), e2.Clone())) {
			t.Fatalf("Contains(%s, union with itself)=false", e1)
		}
		if !automata.Equivalent(e1, e1.Simplify()) {
			t.Fatalf("Simplify changed the language of %s", e1)
		}
	})
}

// FuzzAntichainContainment pits the lazy antichain engine against the
// classic eager engine on arbitrary expression pairs, in both
// directions — the coverage-guided complement of the seeded
// antichain-containment oracle.
func FuzzAntichainContainment(f *testing.F) {
	f.Add("a b", "a b + a")
	f.Add("(a + b)* a (a + b)", "(a + b)*")
	f.Add("a?", "a")
	f.Add("(a + b)* (a (a + b) a + b (a + b) b)", "(a + b)* (a (a + b) a + b (a + b) b)")
	f.Fuzz(func(t *testing.T, src1, src2 string) {
		e1, err := regex.Parse(src1)
		if err != nil {
			t.Skip()
		}
		e2, err := regex.Parse(src2)
		if err != nil {
			t.Skip()
		}
		if posCount(e1) > 8 || posCount(e2) > 8 || e1.Size() > 40 || e2.Size() > 40 {
			t.Skip()
		}
		for _, dir := range [][2]*regex.Expr{{e1, e2}, {e2, e1}} {
			got, err := automata.ContainsCtx(context.Background(), dir[0], dir[1])
			if err != nil {
				t.Fatalf("ContainsCtx(%s, %s): %v", dir[0], dir[1], err)
			}
			if want := automata.ContainsClassic(dir[0], dir[1]); got != want {
				t.Fatalf("antichain Contains(%s, %s)=%v but classic engine=%v",
					dir[0], dir[1], got, want)
			}
		}
	})
}

// FuzzDTDContainment parses two DTD texts and replays the containment
// cross-checks (trivial-EDTD agreement, sampled-document refutation).
func FuzzDTDContainment(f *testing.F) {
	f.Add("<!ELEMENT r (s, t?)>\n<!ELEMENT s EMPTY>\n<!ELEMENT t EMPTY>",
		"<!ELEMENT r (s, t*)>\n<!ELEMENT s EMPTY>\n<!ELEMENT t EMPTY>", int64(1))
	f.Add("<!ELEMENT r (s | t)>\n<!ELEMENT s EMPTY>\n<!ELEMENT t EMPTY>",
		"<!ELEMENT r (s)>\n<!ELEMENT s EMPTY>\n<!ELEMENT t EMPTY>", int64(2))
	f.Fuzz(func(t *testing.T, src1, src2 string, seed int64) {
		d1, err := dtd.ParseText(src1, "r")
		if err != nil {
			t.Skip()
		}
		d2, err := dtd.ParseText(src2, "r")
		if err != nil {
			t.Skip()
		}
		for _, d := range []*dtd.DTD{d1, d2} {
			for _, e := range d.Rules {
				if posCount(e) > 6 {
					t.Skip()
				}
			}
			if len(d.Rules) > 8 || d.IsRecursive() {
				t.Skip()
			}
		}
		c := dtd.Contains(d1, d2)
		if edtd.Contains(trivialEDTD(d1), trivialEDTD(d2)) != c {
			t.Fatalf("dtd.Contains=%v but trivial-EDTD containment disagrees on\n%s\nvs\n%s", c, d1, d2)
		}
		if !dtd.Contains(d1, d1) {
			t.Fatalf("dtd.Contains not reflexive on %s", d1)
		}
		r := rand.New(rand.NewSource(seed))
		e1 := trivialEDTD(d1)
		for i := 0; i < 4; i++ {
			tr := sampleParsedDTDTree(d1, r, 6)
			if tr == nil {
				break
			}
			if err := d1.Validate(tr); err != nil {
				t.Fatalf("sampled document rejected by its own DTD: %v\n%s", err, tr)
			}
			if c {
				if err := d2.Validate(tr); err != nil {
					t.Fatalf("containment refuted by sampled document %s", tr)
				}
			}
			if e1.Valid(tr) != e1.ValidSingleType(tr) {
				t.Fatalf("EDTD validators disagree on %s", tr)
			}
		}
	})
}

// FuzzJSONSchemaContainment replays the verdict-soundness checks on
// arbitrary schema texts.
func FuzzJSONSchemaContainment(f *testing.F) {
	f.Add(`{"type":"object","required":["a"]}`, `{"type":"object"}`, int64(1))
	f.Add(`{"enum":[1,2]}`, `{"type":"number"}`, int64(2))
	f.Fuzz(func(t *testing.T, src1, src2 string, seed int64) {
		s1, err := jsonschema.Parse(src1)
		if err != nil {
			t.Skip()
		}
		s2, err := jsonschema.Parse(src2)
		if err != nil {
			t.Skip()
		}
		if v, w := jsonschema.Contains(s1, s1, 20, seed); v == jsonschema.NotContained {
			t.Fatalf("Contains(s,s)=NotContained with witness %s for %s", w, src1)
		}
		v, witness := jsonschema.Contains(s1, s2, 20, seed)
		if v == jsonschema.NotContained {
			if err := s1.Validate(witness); err != nil {
				t.Fatalf("witness %s does not validate under s1 %s: %v", witness, src1, err)
			}
			if err := s2.Validate(witness); err == nil {
				t.Fatalf("witness %s validates under s2 %s", witness, src2)
			}
		}
	})
}

// FuzzPropertyPathEval parses a path text and checks the Glushkov
// product against the derivative product on a seeded random graph.
func FuzzPropertyPathEval(f *testing.F) {
	f.Add("p/q*", int64(1))
	f.Add("^p|!(q)", int64(2))
	f.Add("(p/^q)+", int64(3))
	f.Fuzz(func(t *testing.T, pathSrc string, seed int64) {
		p, err := propertypath.Parse(pathSrc)
		if err != nil {
			t.Skip()
		}
		if pathSize(p) > 12 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		g := randomPPGraph(r)
		start := "n0"
		reg := propertypath.Eval(g, p, start)
		naive, ok := derivativeEval(g, p, start, 20000)
		if ok && !sameStrings(reg, naive) {
			t.Fatalf("Eval=%v but derivative product=%v on %s", reg, naive, ppInput(g, p, start))
		}
		simple := propertypath.EvalSimplePaths(g, p, start)
		trails := propertypath.EvalTrails(g, p, start)
		if !subset(simple, trails) || !subset(trails, reg) {
			t.Fatalf("semantics hierarchy violated: simple=%v trails=%v regular=%v on %s",
				simple, trails, reg, ppInput(g, p, start))
		}
	})
}

// FuzzSparqlEval parses arbitrary query text and checks that the
// evaluator never panics and that every solution it returns is an
// answer per IsAnswer.
func FuzzSparqlEval(f *testing.F) {
	f.Add("SELECT * WHERE { ?x ex:p ?y . ?y ex:q ?z . }", int64(1))
	f.Add("SELECT DISTINCT ?x WHERE { { ?x ex:p ex:n0 . } UNION { ?x ex:q ?y . } }", int64(2))
	f.Add("ASK { ex:n0 ex:p ?y FILTER(?y != ex:n1) }", int64(3))
	f.Fuzz(func(t *testing.T, querySrc string, seed int64) {
		q, err := sparql.Parse(querySrc)
		if err != nil {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		g := randomSQGraph(r)
		sols, err := sparqlalg.Eval(g, q)
		if err != nil {
			t.Skip()
		}
		if len(sols) > 200 {
			sols = sols[:200]
		}
		for _, s := range sols {
			ok, err := sparqlalg.IsAnswer(g, q, s)
			if err == nil && !ok {
				t.Fatalf("Eval returned %v but IsAnswer rejects it for %q", s, querySrc)
			}
		}
	})
}

// FuzzShardMerge drives the shard/merge invariant with raw fuzz bytes
// as the query stream: arbitrary (mostly invalid) queries plus forced
// duplicates must still merge byte-identically to sequential.
func FuzzShardMerge(f *testing.F) {
	f.Add("SELECT * WHERE { ?x ex:p ?y . }\nnot a query\nSELECT ?x WHERE { ?x ex:q ex:n0 . }", int64(1))
	f.Add("ASK { ?x ?y ?z }\nASK { ?x ?y ?z }", int64(2))
	f.Fuzz(func(t *testing.T, blob string, seed int64) {
		lines := strings.Split(blob, "\n")
		if len(lines) > 40 {
			lines = lines[:40]
		}
		r := rand.New(rand.NewSource(seed))
		qs := append([]string(nil), lines...)
		for i := 0; i < len(lines)/3+1; i++ {
			qs = append(qs, lines[r.Intn(len(lines))])
		}
		for _, workers := range []int{2, 5} {
			if diff := shardDiff("fuzz", qs, workers); diff != "" {
				t.Fatalf("shard/merge divergence: %s (queries %q)", diff, qs)
			}
		}
	})
}

// sampleParsedDTDTree samples a valid document from an arbitrary
// (possibly non-layered) DTD with an explicit depth bound; nil when the
// bound is hit or a content model has no finite word.
func sampleParsedDTDTree(d *dtd.DTD, r *rand.Rand, maxDepth int) *tree.Node {
	var build func(label string, depth int) *tree.Node
	build = func(label string, depth int) *tree.Node {
		if depth > maxDepth {
			return nil
		}
		n := tree.New(label)
		w, ok := regex.RandomWord(d.Rule(label), r)
		if !ok {
			return nil
		}
		for _, child := range w {
			c := build(child, depth+1)
			if c == nil {
				return nil
			}
			n.Add(c)
		}
		return n
	}
	var root *tree.Node
	for label := range d.Start {
		if root = build(label, 0); root != nil {
			break
		}
	}
	return root
}
