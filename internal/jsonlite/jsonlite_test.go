package jsonlite

import (
	"testing"

	"repro/internal/tree"
)

func TestParseFigure1(t *testing.T) {
	tr := MustParse(Figure1JSON, Options{ItemLabel: "person"})
	want := tree.MustParse("$(persons(person(name, birthplace(city, state, country)), person(name, birthplace(city, state))))")
	if !tr.Equal(want) {
		t.Errorf("tree = %v\nwant %v", tr, want)
	}
}

func TestOptions(t *testing.T) {
	doc := `{"items": [1, 2]}`
	tr := MustParse(doc, Options{})
	if tr.Label != "$" || tr.Children[0].Label != "items" {
		t.Errorf("defaults: %v", tr)
	}
	if len(tr.Children[0].Children) != 2 || tr.Children[0].Children[0].Label != "item" {
		t.Errorf("array items: %v", tr)
	}
	tr2 := MustParse(doc, Options{RootLabel: "doc", ItemLabel: "el"})
	if tr2.Label != "doc" || tr2.Children[0].Children[0].Label != "el" {
		t.Errorf("custom labels: %v", tr2)
	}
	// KeepValues adds value leaves
	tr3 := MustParse(`{"a": "x"}`, Options{KeepValues: true})
	if tr3.Children[0].Children[0].Label != "x" {
		t.Errorf("KeepValues: %v", tr3)
	}
	// default drops scalar values (Figure 1c omits them)
	tr4 := MustParse(`{"a": "x"}`, Options{})
	if len(tr4.Children[0].Children) != 0 {
		t.Errorf("values should be dropped: %v", tr4)
	}
}

func TestScalarsAndNesting(t *testing.T) {
	tr := MustParse(`{"a": {"b": [true, null, 3.5]}}`, Options{})
	// $ → a → b → item,item,item
	b := tr.Children[0].Children[0]
	if b.Label != "b" || len(b.Children) != 3 {
		t.Errorf("tree = %v", tr)
	}
	if tr.Depth() != 4 {
		t.Errorf("depth = %d", tr.Depth())
	}
}

func TestErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"{",
		`{"a": }`,
		`{"a": 1} trailing`,
		`{"a": 1, "a"}`,
		`[1, 2`,
		`{1: 2}`,
	} {
		if _, err := Parse(bad, Options{}); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestTopLevelArrayAndScalar(t *testing.T) {
	tr := MustParse(`[{"x": 1}, {"y": 2}]`, Options{})
	if len(tr.Children) != 2 || tr.Children[0].Children[0].Label != "x" {
		t.Errorf("top-level array: %v", tr)
	}
	tr2 := MustParse(`42`, Options{})
	if len(tr2.Children) != 0 {
		t.Errorf("scalar document: %v", tr2)
	}
}
