// Package autobench benchmarks the two containment engines — the lazy
// antichain engine (the production path of automata.ContainsCtx) and
// the retained classic eager-determinization engine — on seeded
// instance families, and distills the comparison into a committed
// machine-readable baseline (BENCH_automata.json).
//
// Three families are measured:
//
//   - easy-random: small seeded random pairs, the regime real schemas
//     live in (Section 4.2 of the paper); both engines are instant and
//     the numbers pin the bookkeeping overhead.
//   - adversarial-blowup: self-containment of (a|b)* a (a|b)^k, where
//     eager determinization materializes 2^(k+1) subset states but the
//     antichain order collapses the lazy search — the headline
//     states_expanded ratio.
//   - antichain-hard: self-containment of the window-equality family
//     (automata.AntichainHardExpr), where the subset-states are pairwise
//     ⊆-incomparable and pruning never fires — the honest worst case
//     both engines pay exponentially for.
//
// Costs are read from the span cost counters (internal/obs), not timers
// alone, so the baseline is stable across machines.
package autobench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/automata"
	"repro/internal/obs"
	"repro/internal/regex"
)

// SchemaVersion identifies the report layout for downstream tooling
// (the CI jq checks pin it).
const SchemaVersion = 1

// Config parameterizes a run.
type Config struct {
	// Seed drives the easy-random instance generator.
	Seed int64
	// EasyTrials is the number of easy-random pairs (default 50).
	EasyTrials int
	// BlowupK is the k of the adversarial-blowup family (default 14).
	BlowupK int
	// HardK is the k of the antichain-hard family (default 10).
	HardK int
}

func (c *Config) fill() {
	if c.EasyTrials <= 0 {
		c.EasyTrials = 50
	}
	if c.BlowupK <= 0 {
		c.BlowupK = 14
	}
	if c.HardK <= 0 {
		c.HardK = 10
	}
}

// EngineCost aggregates one engine's cost over a family's instances.
type EngineCost struct {
	WallMS          float64 `json:"wall_ms"`
	StatesExpanded  int64   `json:"states_expanded"`
	ProductStates   int64   `json:"product_states"`
	AntichainPruned int64   `json:"antichain_pruned"`
	TrueVerdicts    int     `json:"true_verdicts"`
}

// FamilyReport is the per-family comparison.
type FamilyReport struct {
	Family    string `json:"family"`
	Instances int    `json:"instances"`
	// Params echoes the family knobs (k, trials) for reproducibility.
	Params    map[string]int `json:"params,omitempty"`
	Antichain EngineCost     `json:"antichain"`
	Classic   EngineCost     `json:"classic"`
	// StatesExpandedRatio is classic/antichain states_expanded — the
	// quantity the antichain engine exists to improve.
	StatesExpandedRatio float64 `json:"states_expanded_ratio"`
}

// Report is the whole baseline.
type Report struct {
	SchemaVersion int             `json:"schema_version"`
	Seed          int64           `json:"seed"`
	Families      []*FamilyReport `json:"families"`
}

type instance struct{ e1, e2 *regex.Expr }

// Run executes the three families and returns the report.
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	rep := &Report{SchemaVersion: SchemaVersion, Seed: cfg.Seed}

	easy, err := easyInstances(cfg.Seed, cfg.EasyTrials)
	if err != nil {
		return nil, err
	}
	fams := []struct {
		name      string
		params    map[string]int
		instances []instance
	}{
		{"easy-random", map[string]int{"trials": cfg.EasyTrials}, easy},
		{"adversarial-blowup", map[string]int{"k": cfg.BlowupK},
			[]instance{selfInstance(blowupExpr(cfg.BlowupK))}},
		{"antichain-hard", map[string]int{"k": cfg.HardK},
			[]instance{selfInstance(regex.MustParse(automata.AntichainHardExpr(cfg.HardK)))}},
	}
	for _, f := range fams {
		fr, err := runFamily(f.name, f.params, f.instances)
		if err != nil {
			return nil, err
		}
		rep.Families = append(rep.Families, fr)
	}
	return rep, nil
}

func selfInstance(e *regex.Expr) instance { return instance{e, e} }

// blowupExpr is (a|b)* a (a|b)^k.
func blowupExpr(k int) *regex.Expr {
	src := "(a|b)* a"
	for i := 0; i < k; i++ {
		src += " (a|b)"
	}
	return regex.MustParse(src)
}

func easyInstances(seed int64, trials int) ([]instance, error) {
	r := rand.New(rand.NewSource(seed))
	g := regex.DefaultGen([]string{"a", "b"})
	g.MaxDepth = 3
	g.MaxFanout = 3
	var out []instance
	for len(out) < trials {
		e1, e2 := g.Random(r), g.Random(r)
		if automata.Glushkov(e1).NumStates > 10 || automata.Glushkov(e2).NumStates > 10 {
			continue // keep the classic side's eager determinization small
		}
		out = append(out, instance{e1, e2})
	}
	return out, nil
}

// runFamily runs every instance through both engines under tracing and
// aggregates the span cost counters.
func runFamily(name string, params map[string]int, instances []instance) (*FamilyReport, error) {
	fr := &FamilyReport{Family: name, Instances: len(instances), Params: params}
	for _, in := range instances {
		anti, err := measure(in, func(ctx context.Context, in instance) (bool, error) {
			return automata.ContainsCtx(ctx, in.e1, in.e2)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: antichain: %w", name, err)
		}
		classic, err := measure(in, func(ctx context.Context, in instance) (bool, error) {
			return automata.ContainsClassicCtx(ctx, in.e1, in.e2)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: classic: %w", name, err)
		}
		if anti.TrueVerdicts != classic.TrueVerdicts {
			return nil, fmt.Errorf("%s: engines disagree on %s vs %s", name, in.e1, in.e2)
		}
		addCost(&fr.Antichain, anti)
		addCost(&fr.Classic, classic)
	}
	if fr.Antichain.StatesExpanded > 0 {
		fr.StatesExpandedRatio = float64(fr.Classic.StatesExpanded) / float64(fr.Antichain.StatesExpanded)
	}
	return fr, nil
}

func measure(in instance, engine func(context.Context, instance) (bool, error)) (*EngineCost, error) {
	tr := &obs.Tracer{}
	ctx, root := tr.StartRoot(context.Background(), "autobench")
	start := time.Now()
	ok, err := engine(ctx, in)
	wall := time.Since(start)
	root.Finish()
	if err != nil {
		return nil, err
	}
	c := &EngineCost{WallMS: float64(wall.Microseconds()) / 1000}
	if ok {
		c.TrueVerdicts = 1
	}
	sumCounters(root.Tree(), c)
	return c, nil
}

// sumCounters folds the whole span tree: the classic engine accounts
// states_expanded on its determinize child, the antichain engine on its
// own span, so summing over the tree makes the two comparable.
func sumCounters(n *obs.Node, c *EngineCost) {
	c.StatesExpanded += n.Counters["states_expanded"]
	c.ProductStates += n.Counters["product_states"]
	c.AntichainPruned += n.Counters["antichain_pruned"]
	for _, ch := range n.Children {
		sumCounters(ch, c)
	}
}

func addCost(dst *EngineCost, src *EngineCost) {
	dst.WallMS += src.WallMS
	dst.StatesExpanded += src.StatesExpanded
	dst.ProductStates += src.ProductStates
	dst.AntichainPruned += src.AntichainPruned
	dst.TrueVerdicts += src.TrueVerdicts
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
