package serveload

import (
	"fmt"
	"sort"
)

// ProfileTolerance bounds how far a fresh run's workload profile may
// drift from the committed baseline before `rwdbench -profile-check`
// fails. The defaults are deliberately generous: the gate exists to
// catch shape changes — an op an order of magnitude slower, an error
// rate jumping from zero to everything — not scheduler noise between
// two CI machines.
type ProfileTolerance struct {
	// Factor bounds the p50 and p99 ratio in both directions: a row
	// regresses when fresh/baseline or baseline/fresh exceeds it.
	// (A large speedup is flagged too: it usually means the op stopped
	// doing its work.) <= 1 means 10.
	Factor float64
	// MinRequests skips rows with fewer requests than this on either
	// side; tiny samples make quantiles meaningless. <= 0 means 50.
	MinRequests uint64
	// RateDelta bounds the absolute error-rate and timeout-rate drift.
	// <= 0 means 0.25.
	RateDelta float64
}

func (t ProfileTolerance) withDefaults() ProfileTolerance {
	if t.Factor <= 1 {
		t.Factor = 10
	}
	if t.MinRequests <= 0 {
		t.MinRequests = 50
	}
	if t.RateDelta <= 0 {
		t.RateDelta = 0.25
	}
	return t
}

// CompareProfiles checks a fresh report's profile block against a
// committed baseline and returns one human-readable line per
// regression (empty means the gate passes). Only rows that are
// well-sampled in the baseline are compared; a well-sampled baseline
// row that vanished entirely from the fresh run is itself a
// regression (the workload no longer reaches that op/engine).
func CompareProfiles(baseline, fresh *Report, tol ProfileTolerance) []string {
	tol = tol.withDefaults()
	if baseline == nil || len(baseline.Profile) == 0 {
		return nil // nothing to gate against
	}
	keys := make([]string, 0, len(baseline.Profile))
	for k := range baseline.Profile {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var regressions []string
	for _, k := range keys {
		b := baseline.Profile[k]
		if b.Requests < tol.MinRequests {
			continue
		}
		f := fresh.Profile[k]
		if f == nil {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline (%d requests) but absent from this run", k, b.Requests))
			continue
		}
		if f.Requests < tol.MinRequests {
			regressions = append(regressions,
				fmt.Sprintf("%s: undersampled in this run (%d requests, want >= %d; baseline had %d)",
					k, f.Requests, tol.MinRequests, b.Requests))
			continue
		}
		for _, q := range []struct {
			name     string
			base, fr float64
		}{
			{"p50_ms", b.P50MS, f.P50MS},
			{"p99_ms", b.P99MS, f.P99MS},
		} {
			if bad, ratio := ratioExceeds(q.base, q.fr, tol.Factor); bad {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.3f vs baseline %.3f (%.1fx, tolerance %.1fx)",
						k, q.name, q.fr, q.base, ratio, tol.Factor))
			}
		}
		if d := f.ErrorRate - b.ErrorRate; d > tol.RateDelta {
			regressions = append(regressions,
				fmt.Sprintf("%s: error rate %.2f vs baseline %.2f (drift %.2f > %.2f)",
					k, f.ErrorRate, b.ErrorRate, d, tol.RateDelta))
		}
		if d := f.TimeoutRate - b.TimeoutRate; d > tol.RateDelta {
			regressions = append(regressions,
				fmt.Sprintf("%s: timeout rate %.2f vs baseline %.2f (drift %.2f > %.2f)",
					k, f.TimeoutRate, b.TimeoutRate, d, tol.RateDelta))
		}
	}
	return regressions
}

// ratioExceeds reports whether a/b or b/a exceeds factor, and the
// offending ratio. Sub-resolution quantiles (either side below 1ms,
// common for cache hits) are never flagged: at that scale the ratio
// measures timer granularity, not the server.
func ratioExceeds(a, b, factor float64) (bool, float64) {
	if a < 1 || b < 1 {
		return false, 0
	}
	ratio := b / a
	if ratio < 1 {
		ratio = 1 / ratio
	}
	return ratio > factor, ratio
}
