// Command rwdserve serves the repository's decision procedures and the
// SHARQL-style analysis pipeline over HTTP: containment (regex, k-ORE,
// DTD, JSON Schema), membership, DTD/EDTD validation, schema inference,
// and batch SPARQL log analysis, hardened for untrusted traffic with
// per-request deadlines, admission control, request-size caps, a
// canonicalizing verdict cache, and Prometheus-style metrics.
//
// Usage:
//
//	rwdserve -addr :8080 -max-inflight 16 -cache-size 4096 \
//	         -default-deadline 2s -max-deadline 30s
//
// Endpoints: POST /v1/containment /v1/membership /v1/validate /v1/infer
// /v1/analyze /v1/batch /v1/corpora; GET /v1/corpora /v1/traces
// /v1/traces/{id} /healthz /metrics.
// With -store-dir the server opens (or creates) a persistent corpus
// store there: POST /v1/corpora ingests triples or query logs, and
// /v1/analyze accepts "corpus": "<name>" to analyze committed data
// instead of inline queries. See the README "Service API" and
// "Persistent store" sections for request shapes and curl examples.
//
// Every finished request's span tree lands in the always-on flight
// recorder (bounded ring, -trace-capacity / -trace-max-bytes) behind
// GET /v1/traces; with -trace-dir the traces are also appended to a
// size-rotated NDJSON log that survives restarts and is readable with
// the rwdtrace CLI. Every /v1/* response carries an X-Trace-Id header
// naming its recorded trace. See the README "Trace history" section.
//
// SIGTERM or SIGINT starts a graceful drain: the listener closes, in-
// flight requests finish (bounded by -drain-timeout), then the process
// exits 0.
//
// -debug-addr starts a second, private HTTP server exposing
// net/http/pprof (heap, CPU, goroutine profiles). It is off by default
// and should never be bound to a public interface.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs/recorder"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInflight := flag.Int("max-inflight", 2*runtime.GOMAXPROCS(0),
		"admission-control bound on concurrently served requests")
	maxBody := flag.Int64("max-body-bytes", 8<<20, "request body size cap in bytes")
	defaultDeadline := flag.Duration("default-deadline", 2*time.Second,
		"deadline for requests without deadline_ms")
	maxDeadline := flag.Duration("max-deadline", 30*time.Second,
		"upper clamp on client-requested deadlines")
	cacheSize := flag.Int("cache-size", 1024, "verdict-cache capacity in entries (negative disables)")
	analyzeWorkers := flag.Int("analyze-workers", 0, "worker pool bound for /v1/analyze; 0 = one per CPU")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second,
		"how long a graceful shutdown waits for in-flight requests")
	slowOpThreshold := flag.Duration("slow-op-threshold", 500*time.Millisecond,
		"span duration above which a structured slow-op line is logged")
	slowOpSample := flag.Int64("slow-op-sample", 1,
		"log 1 of every N slow spans (the rest are only counted)")
	debugAddr := flag.String("debug-addr", "",
		"optional private address for the pprof debug server (e.g. localhost:6060); empty disables")
	storeDir := flag.String("store-dir", "",
		"directory of the persistent corpus store (created if missing); empty disables /v1/corpora and corpus-backed /v1/analyze")
	traceCapacity := flag.Int("trace-capacity", 1024,
		"flight-recorder ring capacity in traces (GET /v1/traces); negative disables the recorder")
	traceMaxBytes := flag.Int64("trace-max-bytes", 32<<20,
		"flight-recorder ring byte budget")
	traceDir := flag.String("trace-dir", "",
		"directory for the on-disk NDJSON trace log (created if missing, size-rotated; readable with rwdtrace -trace-dir); empty keeps traces in memory only")
	traceFileBytes := flag.Int64("trace-file-bytes", 8<<20,
		"size at which the -trace-dir log rotates to a new file")
	traceMaxFiles := flag.Int("trace-max-files", 8,
		"rotated -trace-dir files kept before the oldest is pruned")
	flag.Parse()

	var traceLog *recorder.Log
	if *traceDir != "" && *traceCapacity >= 0 {
		var err error
		traceLog, err = recorder.OpenLog(*traceDir, recorder.LogConfig{
			MaxFileBytes: *traceFileBytes,
			MaxFiles:     *traceMaxFiles,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rwdserve: opening trace log:", err)
			os.Exit(1)
		}
		defer traceLog.Close()
		fmt.Fprintf(os.Stderr, "rwdserve trace log at %s\n", *traceDir)
	}

	srv := service.New(service.Config{
		MaxInFlight:     *maxInflight,
		MaxBodyBytes:    *maxBody,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		CacheSize:       *cacheSize,
		AnalyzeWorkers:  *analyzeWorkers,
		SlowOpThreshold: *slowOpThreshold,
		SlowOpSample:    *slowOpSample,
		TraceCapacity:   *traceCapacity,
		TraceMaxBytes:   *traceMaxBytes,
		TraceLog:        traceLog,
	})

	if *storeDir != "" {
		// Open under a root span so the open/recovery work (segments
		// validated, torn temp files discarded) is itself the first
		// trace in the flight recorder.
		ctx, root := srv.Tracer().StartRoot(context.Background(), "rwdserve.startup")
		st, err := store.OpenCtx(ctx, *storeDir)
		root.Finish()
		if err != nil {
			// A corrupt store must stop the server loudly rather than serve
			// 503s that look like a missing -store-dir.
			fmt.Fprintln(os.Stderr, "rwdserve: opening store:", err)
			os.Exit(1)
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rwdserve: closing store:", err)
			}
		}()
		srv.AttachStore(st)
		fmt.Fprintf(os.Stderr, "rwdserve store at %s\n", *storeDir)
	}

	if *debugAddr != "" {
		// net/http/pprof registers its handlers on the default mux; keep
		// them off the service handler so profiles are never reachable on
		// the public address.
		go func() {
			fmt.Fprintf(os.Stderr, "rwdserve debug server (pprof) on %s\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rwdserve: debug server:", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwdserve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rwdserve listening on %s (max-inflight %d, cache %d, deadlines %s/%s)\n",
		l.Addr(), *maxInflight, *cacheSize, *defaultDeadline, *maxDeadline)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	shutdown := make(chan struct{})
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "rwdserve: received %v, draining\n", s)
		close(shutdown)
	}()

	if err := srv.Serve(l, shutdown, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "rwdserve:", err)
		os.Exit(1)
	}
}
