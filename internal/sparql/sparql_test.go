package sparql

import (
	"strings"
	"testing"
)

// wikidataExample is the paper's example query (Section 9, "Locations of
// archaeological sites").
const wikidataExample = `SELECT ?label ?coord ?subj
WHERE { ?subj wdt:P31/wdt:P279* wd:Q839954 .
        ?subj wdt:P625 ?coord .
        ?subj rdfs:label ?label FILTER(lang(?label)="en") }`

func TestParseWikidataExample(t *testing.T) {
	q, err := Parse(wikidataExample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Type != Select {
		t.Errorf("type = %v", q.Type)
	}
	if len(q.Items) != 3 {
		t.Errorf("items = %v", q.Items)
	}
	if got := q.TripleCount(); got != 3 {
		t.Errorf("TripleCount = %d, want 3", got)
	}
	pps := q.PropertyPaths()
	if len(pps) != 1 {
		t.Fatalf("property paths = %d, want 1", len(pps))
	}
	if pps[0].String() != "wdt:P31/wdt:P279*" {
		t.Errorf("path = %q", pps[0])
	}
	f := q.Features()
	for _, want := range []Feature{FFilter, FAnd, FPropertyPath} {
		if !f[want] {
			t.Errorf("feature %s missing", want)
		}
	}
	for _, not := range []Feature{FOptional, FUnion, FDistinct, FLimit, FService} {
		if f[not] {
			t.Errorf("feature %s should be absent", not)
		}
	}
	if !q.IsC2RPQF() {
		t.Error("example query is a C2RPQ+F query")
	}
	if q.IsCQF() {
		t.Error("example query uses property paths, not CQ+F")
	}
}

func TestParseForms(t *testing.T) {
	good := []string{
		"SELECT * WHERE { ?s ?p ?o }",
		"SELECT DISTINCT ?s WHERE { ?s a foaf:Person } LIMIT 10 OFFSET 5",
		"ASK { ?s ?p ?o }",
		"ASK WHERE { ?s ?p ?o . ?o ?q ?r }",
		"CONSTRUCT { ?s a foaf:Agent } WHERE { ?s a foaf:Person }",
		"DESCRIBE ?x",
		"DESCRIBE <http://example.org/thing>",
		"PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?x foaf:name ?n }",
		"SELECT ?s WHERE { ?s ?p ?o FILTER(?o > 3) }",
		"SELECT ?s WHERE { { ?s a :A } UNION { ?s a :B } }",
		"SELECT ?s WHERE { ?s a :A OPTIONAL { ?s :name ?n } }",
		"SELECT ?s WHERE { GRAPH ?g { ?s ?p ?o } }",
		"SELECT ?s WHERE { ?s ?p ?o . BIND(?o + 1 AS ?x) }",
		"SELECT ?s WHERE { VALUES ?s { :a :b :c } ?s ?p ?o }",
		"SELECT ?s WHERE { SERVICE wikibase:label { ?s ?p ?o } }",
		"SELECT ?s WHERE { ?s ?p ?o MINUS { ?s a :Bad } }",
		"SELECT ?s WHERE { ?s ?p ?o FILTER NOT EXISTS { ?s a :Bad } }",
		"SELECT ?s WHERE { ?s ?p ?o FILTER EXISTS { ?s a :Good } }",
		"SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s HAVING (COUNT(*) > 2) ORDER BY ?s",
		"SELECT ?s WHERE { { SELECT ?s WHERE { ?s ?p ?o } LIMIT 5 } }",
		"SELECT ?s WHERE { ?s :p ?a ; :q ?b . }",
		"SELECT ?s WHERE { ?s :p ?a , ?b }",
		"SELECT ?s WHERE { ?s !(rdf:type|^rdfs:label) ?o }",
		"SELECT ?s WHERE { ?s (wdt:P31|wdt:P279)+ ?o }",
		"SELECT ?s WHERE { ?s ?p \"lit\"^^xsd:string }",
		"SELECT ?s WHERE { ?s ?p 'x'@en }",
		"SELECT ?s WHERE { ?s ?p 3.14 }",
		"SELECT ?s WHERE { ?s ?p true }",
		"SELECT ?s WHERE { _:b ?p ?o }",
		"SELECT ?s WHERE { ?s ?p ?o } VALUES ?s { :a }",
		"# comment\nSELECT ?s WHERE { ?s ?p ?o }",
		"SELECT ?s WHERE { ?s a/:b* ?o }",
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	bad := []string{
		"",
		"SELECT WHERE { ?s ?p ?o }",
		"SELECT ?s { ?s ?p }",
		"SELECT ?s WHERE { ?s ?p ?o",
		"FOO ?s WHERE { ?s ?p ?o }",
		"SELECT ?s WHERE { ?s ?p ?o } LIMIT x",
		"SELECT ?s WHERE { FILTER }",
		"SELECT ?s WHERE { \"lit\" ?p ?o }",
		"SELECT ?s WHERE { ?s ?p ?o } GROUP BY",
		"SELECT ?s WHERE { OPTIONAL ?x }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestTripleCountAbbreviations(t *testing.T) {
	q := MustParse("SELECT * WHERE { ?s :p ?a ; :q ?b , ?c . ?x :r ?y }")
	if got := q.TripleCount(); got != 4 {
		t.Errorf("TripleCount = %d, want 4", got)
	}
}

func TestOperatorSets(t *testing.T) {
	cases := []struct {
		src  string
		name string
	}{
		{"SELECT * WHERE { ?s ?p ?o }", "none"},
		{"SELECT * WHERE { ?s ?p ?o . ?o ?q ?r }", "And"},
		{"SELECT * WHERE { ?s ?p ?o FILTER(?o > 1) }", "Filter"},
		{"SELECT * WHERE { ?s ?p ?o . ?o ?q ?r FILTER(?r > 1) }", "And, Filter"},
		{"SELECT * WHERE { ?s :a* ?o }", "2RPQ"},
		{"SELECT * WHERE { ?s :a* ?o . ?o ?q ?r }", "And, 2RPQ"},
		{"SELECT * WHERE { ?s :a* ?o FILTER(?o != ?s) }", "Filter, 2RPQ"},
		{"SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s :n ?n } }", "beyond"},
		{"SELECT * WHERE { { ?s a :A } UNION { ?s a :B } }", "beyond"},
	}
	for _, c := range cases {
		q := MustParse(c.src)
		if got := q.Operators().Name(); got != c.name {
			t.Errorf("Operators(%q) = %q, want %q", c.src, got, c.name)
		}
	}
	// Modifiers do not affect the pattern's operator set (Table 4 counts
	// queries whose BODY is conjunctive even with aggregation on top).
	q := MustParse("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s")
	if !q.IsCQ() {
		t.Error("aggregation should not affect IsCQ")
	}
}

func TestSafeAndSimpleFilters(t *testing.T) {
	getFilter := func(src string) *Expr {
		q := MustParse(src)
		var e *Expr
		q.Walk(func(p *Pattern) {
			if p.Kind == PFilter {
				e = p.Expr
			}
		})
		if e == nil {
			t.Fatalf("no filter in %q", src)
		}
		return e
	}
	safe := []string{
		"SELECT * WHERE { ?s ?p ?o FILTER(?o > 3) }",
		"SELECT * WHERE { ?s ?p ?o FILTER(lang(?o) = \"en\") }",
		"SELECT * WHERE { ?s ?p ?o FILTER(?s = ?o) }",
	}
	for _, src := range safe {
		if !getFilter(src).IsSafeFilter() {
			t.Errorf("filter of %q should be safe", src)
		}
	}
	unsafeButSimple := []string{
		"SELECT * WHERE { ?s ?p ?o FILTER(?s != ?o) }",
		"SELECT * WHERE { ?s ?p ?o FILTER(?s < ?o) }",
	}
	for _, src := range unsafeButSimple {
		e := getFilter(src)
		if e.IsSafeFilter() {
			t.Errorf("filter of %q should not be safe", src)
		}
		if !e.IsSimpleFilter() {
			t.Errorf("filter of %q should be simple", src)
		}
	}
	ternary := getFilter("SELECT * WHERE { ?a ?b ?c FILTER(?a = ?b && ?b = ?c) }")
	if ternary.IsSimpleFilter() {
		t.Error("three-variable filter should not be simple")
	}
}

func TestCanonicalDedup(t *testing.T) {
	a := MustParse("SELECT ?s WHERE { ?s ?p ?o }")
	b := MustParse("  SELECT   ?s\nWHERE {\n  ?s ?p ?o .\n}")
	if a.Canonical() != b.Canonical() {
		t.Errorf("whitespace variants should dedup:\n%q\n%q", a.Canonical(), b.Canonical())
	}
	c := MustParse("SELECT ?s WHERE { ?s ?p ?x }")
	if a.Canonical() == c.Canonical() {
		t.Error("different queries should not dedup")
	}
	// prefix expansion
	d := MustParse("PREFIX f: <http://x/> SELECT ?s WHERE { ?s f:p ?o }")
	e := MustParse("PREFIX g: <http://x/> SELECT ?s WHERE { ?s g:p ?o }")
	if d.Canonical() != e.Canonical() {
		t.Errorf("prefix variants should dedup:\n%q\n%q", d.Canonical(), e.Canonical())
	}
}

func TestAggregateFeatures(t *testing.T) {
	q := MustParse("SELECT (AVG(?x) AS ?a) (SUM(?y) AS ?s) WHERE { ?s :v ?x ; :w ?y } GROUP BY ?s HAVING (MAX(?x) > 2)")
	f := q.Features()
	for _, want := range []Feature{FAvg, FSum, FMax, FGroupBy, FHaving} {
		if !f[want] {
			t.Errorf("missing feature %s", want)
		}
	}
}

func TestServiceFeature(t *testing.T) {
	// The wikibase:label service is the most common SERVICE usage in
	// Wikidata logs (Section 9.4).
	q := MustParse(`SELECT ?item ?itemLabel WHERE {
		?item wdt:P31 wd:Q146 .
		SERVICE wikibase:label { bd:serviceParam wikibase:language "en" }
	}`)
	if !q.Features()[FService] {
		t.Error("SERVICE feature missing")
	}
	if q.IsC2RPQF() {
		t.Error("SERVICE is beyond C2RPQ+F")
	}
}

func TestDescribeWithoutPattern(t *testing.T) {
	q := MustParse("DESCRIBE <http://ex.org/e>")
	if q.Where != nil {
		t.Error("DESCRIBE without pattern should have nil Where")
	}
	if q.TripleCount() != 0 {
		t.Error("no triples expected")
	}
}

func TestCanonicalStable(t *testing.T) {
	src := wikidataExample
	c1 := MustParse(src).Canonical()
	c2 := MustParse(src).Canonical()
	if c1 != c2 {
		t.Error("Canonical must be deterministic")
	}
	if !strings.Contains(c1, "wdt:P31/wdt:P279*") {
		t.Errorf("canonical lost the property path: %q", c1)
	}
}
