package dtd

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/automata"
	"repro/internal/regex"
)

// adversarialDTDs builds a containment instance whose per-label regex
// check requires a 2^n subset construction.
func adversarialDTDs(n int) (*DTD, *DTD) {
	var b strings.Builder
	b.WriteString("(a|b)* a")
	for i := 0; i < n; i++ {
		b.WriteString(" (a|b)")
	}
	d1 := New().AddStart("r").
		AddRule("r", regex.MustParse("(a|b)*")).
		AddRule("a", regex.NewEpsilon()).
		AddRule("b", regex.NewEpsilon())
	d2 := New().AddStart("r").
		AddRule("r", regex.MustParse(b.String())).
		AddRule("a", regex.NewEpsilon()).
		AddRule("b", regex.NewEpsilon())
	return d1, d2
}

func TestContainsCtxAgreesWithContains(t *testing.T) {
	d1, d2 := adversarialDTDs(4) // small enough to decide exactly
	want := Contains(d1, d2)
	got, err := ContainsCtx(context.Background(), d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ContainsCtx = %v, Contains = %v", got, want)
	}
	// and a positive instance
	ok, err := ContainsCtx(context.Background(), d2, d1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("d2 ⊆ d1 should hold: every word of d2's root rule is in (a|b)*")
	}
}

// hardDTDs builds a containment instance whose root-rule check is
// self-containment of the antichain-hard family — the shape the lazy
// engine cannot prune, so the per-label check stays exponential.
func hardDTDs(k int) (*DTD, *DTD) {
	rule := func() *regex.Expr { return regex.MustParse(automata.AntichainHardExpr(k)) }
	d1 := New().AddStart("r").
		AddRule("r", rule()).
		AddRule("a", regex.NewEpsilon()).
		AddRule("b", regex.NewEpsilon())
	d2 := New().AddStart("r").
		AddRule("r", rule()).
		AddRule("a", regex.NewEpsilon()).
		AddRule("b", regex.NewEpsilon())
	return d1, d2
}

func TestContainsCtxDeadlineAbortsHardFamily(t *testing.T) {
	d1, d2 := hardDTDs(16)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ContainsCtx(ctx, d1, d2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 500ms", elapsed)
	}
}

// TestContainsAgreesOnHardFamily pins the verdict at a decidable size.
func TestContainsAgreesOnHardFamily(t *testing.T) {
	d1, d2 := hardDTDs(4)
	ok, err := ContainsCtx(context.Background(), d1, d2)
	if err != nil || !ok {
		t.Fatalf("hard-family self-containment = %v, %v, want true", ok, err)
	}
}

func TestContainsCtxPreCanceled(t *testing.T) {
	d1, d2 := adversarialDTDs(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ContainsCtx(ctx, d1, d2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
