package core

import (
	"math/rand"
	"testing"

	"repro/internal/jsonschema"
	"repro/internal/loggen"
	"repro/internal/propertypath"
	"repro/internal/regex"
	"repro/internal/sparql"
	"repro/internal/tree"
	"repro/internal/xmllite"
	"repro/internal/xpath"
)

// TestParserRobustness is the failure-injection sweep: every parser in the
// system must return errors — never panic — on corrupted and garbage
// inputs. Real logs are dirty ("researchers with a theory background may
// need to adjust to the dirtiness of real-world data", Section 11), so the
// pipeline's first line of defense is total parsers.
func TestParserRobustness(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	seeds := []string{
		"SELECT ?s WHERE { ?s wdt:P31/wdt:P279* wd:Q839954 . FILTER(?s > 3) }",
		"PREFIX f: <http://x/> ASK { f:a f:b f:c }",
		"<persons><person pers_id=\"1\"><name>A</name></person></persons>",
		"<!ELEMENT a (b, c*)><!ELEMENT b EMPTY>",
		`{"type":"object","properties":{"a":{"type":"integer"}}}`,
		"/a/b[c and not(d)]//e",
		"wdt:P31/wdt:P279*",
		"(a + b)* a",
		"a(b(c, d), e)",
	}
	mutate := func(s string) string {
		if len(s) == 0 {
			return s
		}
		b := []byte(s)
		switch r.Intn(5) {
		case 0: // truncate
			return s[:r.Intn(len(s))]
		case 1: // flip a byte
			b[r.Intn(len(b))] = byte(r.Intn(256))
			return string(b)
		case 2: // duplicate a chunk
			i := r.Intn(len(s))
			return s[:i] + s[i:] + s[i:]
		case 3: // splice two seeds
			other := seeds[r.Intn(len(seeds))]
			return s[:r.Intn(len(s))] + other[r.Intn(len(other)):]
		default: // random garbage
			g := make([]byte, r.Intn(40))
			for i := range g {
				g[i] = byte(r.Intn(256))
			}
			return string(g)
		}
	}
	for i := 0; i < 3000; i++ {
		input := mutate(seeds[r.Intn(len(seeds))])
		// none of these calls may panic
		sparql.Parse(input)
		xmllite.Parse(input)
		xpath.Parse(input)
		propertypath.Parse(input)
		regex.Parse(input)
		tree.Parse(input)
		jsonschema.Parse(input)
	}
}

// TestAnalyzerNeverPanicsOnCorpus runs every generated query of every
// source through the full analyzer battery at small scale — including the
// deliberately corrupted queries.
func TestAnalyzerNeverPanicsOnCorpus(t *testing.T) {
	for i, s := range loggen.Sources() {
		g := loggen.NewGen(s, int64(1000+i))
		a := NewAnalyzer(s.Name)
		for j := 0; j < 400; j++ {
			a.Ingest(g.Next())
		}
		if a.Report.Valid == 0 {
			t.Errorf("%s: analyzer rejected everything", s.Name)
		}
	}
}
