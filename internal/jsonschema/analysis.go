package jsonschema

import "sort"

// This file implements the structural analyses of the two JSON Schema
// corpus studies quoted in Section 4.5.

// IsRecursive reports whether the schema is recursive: following $ref
// edges from the root (through properties, items, combinators and
// definitions) reaches a cycle. Maiwald et al. found 26 recursive schemas
// among 159.
func (s *Schema) IsRecursive() bool {
	// Build the reference graph over definition names (plus "#").
	// A schema is recursive iff some definition reachable from the root can
	// reach itself.
	reach := s.refTargets()
	// nodes: "#" plus definition names
	var nodes []string
	nodes = append(nodes, "#")
	for name := range s.Definitions {
		nodes = append(nodes, name)
	}
	for _, n := range nodes {
		if reachesSelf(reach, n) {
			return true
		}
	}
	return false
}

// refTargets maps each node ("#" or definition name) to the set of
// definition nodes its body references.
func (s *Schema) refTargets() map[string][]string {
	out := map[string][]string{}
	collect := func(node string, body *Schema) {
		set := map[string]bool{}
		var visit func(x *Schema)
		visit = func(x *Schema) {
			if x == nil {
				return
			}
			if x.Ref != "" {
				set[refName(x.Ref)] = true
			}
			for _, sub := range x.Properties {
				visit(sub)
			}
			visit(x.Items)
			visit(x.Not)
			for _, sub := range x.AllOf {
				visit(sub)
			}
			for _, sub := range x.AnyOf {
				visit(sub)
			}
			for _, sub := range x.OneOf {
				visit(sub)
			}
			// nested definitions are hoisted to the root in this fragment
		}
		visit(body)
		var ts []string
		for t := range set {
			ts = append(ts, t)
		}
		sort.Strings(ts)
		out[node] = ts
	}
	rootBody := *s
	rootBody.Definitions = nil
	collect("#", &rootBody)
	for name, def := range s.Definitions {
		collect(name, def)
	}
	return out
}

func refName(ref string) string {
	for _, prefix := range []string{"#/definitions/", "#/$defs/"} {
		if len(ref) > len(prefix) && ref[:len(prefix)] == prefix {
			return ref[len(prefix):]
		}
	}
	return "#"
}

func reachesSelf(g map[string][]string, start string) bool {
	seen := map[string]bool{}
	stack := append([]string(nil), g[start]...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == start {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, g[x]...)
	}
	return false
}

// MaxNestingDepth returns the maximal nesting depth of documents the
// schema describes (1 for a scalar schema, +1 per object/array level), or
// (0, false) for recursive schemas. Maiwald et al. measured depths 3–43
// with average 11 on non-recursive real-world schemas.
func (s *Schema) MaxNestingDepth() (int, bool) {
	if s.IsRecursive() {
		return 0, false
	}
	var depth func(x *Schema) int
	depth = func(x *Schema) int {
		if x == nil {
			return 0
		}
		if x.Ref != "" {
			if t, err := s.resolve(x.Ref); err == nil {
				return depth(t)
			}
			return 1
		}
		best := 1
		consider := func(d int) {
			if d > best {
				best = d
			}
		}
		for _, sub := range x.Properties {
			consider(1 + depth(sub))
		}
		if x.Items != nil {
			consider(1 + depth(x.Items))
		}
		for _, sub := range x.AllOf {
			consider(depth(sub))
		}
		for _, sub := range x.AnyOf {
			consider(depth(sub))
		}
		for _, sub := range x.OneOf {
			consider(depth(sub))
		}
		if x.Not != nil {
			consider(depth(x.Not))
		}
		return best
	}
	return depth(s), true
}

// UsesNegation reports whether "not" occurs anywhere in the schema —
// the feature Baazizi et al. found in 2.6% of 11.5k real schemas, often as
// a workaround (e.g. "forbidden" as not-required, implication as ¬x ∨ y).
func (s *Schema) UsesNegation() bool {
	found := false
	var visit func(x *Schema)
	visit = func(x *Schema) {
		if x == nil || found {
			return
		}
		if x.Not != nil {
			found = true
			return
		}
		for _, sub := range x.Properties {
			visit(sub)
		}
		visit(x.Items)
		for _, sub := range x.AllOf {
			visit(sub)
		}
		for _, sub := range x.AnyOf {
			visit(sub)
		}
		for _, sub := range x.OneOf {
			visit(sub)
		}
		for _, sub := range x.Definitions {
			visit(sub)
		}
	}
	visit(s)
	return found
}

// IsSchemaFull reports whether the schema explicitly uses schema-full mode
// somewhere (additionalProperties: false) — 8 of Maiwald et al.'s 159
// schemas did; JSON Schema is schema-mixed by default, in stark contrast
// with DTDs (where ANY appeared in only 1 of 103 schemas, Section 4.5).
func (s *Schema) IsSchemaFull() bool {
	found := false
	var visit func(x *Schema)
	visit = func(x *Schema) {
		if x == nil || found {
			return
		}
		if x.AdditionalProperties != nil && !*x.AdditionalProperties {
			found = true
			return
		}
		for _, sub := range x.Properties {
			visit(sub)
		}
		visit(x.Items)
		visit(x.Not)
		for _, sub := range x.AllOf {
			visit(sub)
		}
		for _, sub := range x.AnyOf {
			visit(sub)
		}
		for _, sub := range x.OneOf {
			visit(sub)
		}
		for _, sub := range x.Definitions {
			visit(sub)
		}
	}
	visit(s)
	return found
}

// StudyResult aggregates a schema-corpus analysis in the shape of the
// Section 4.5 studies.
type StudyResult struct {
	Total       int
	Recursive   int
	Depths      []int // nesting depths of the non-recursive schemas
	NegationUse int
	SchemaFull  int
}

// AverageDepth returns the mean nesting depth of non-recursive schemas.
func (r *StudyResult) AverageDepth() float64 {
	if len(r.Depths) == 0 {
		return 0
	}
	sum := 0
	for _, d := range r.Depths {
		sum += d
	}
	return float64(sum) / float64(len(r.Depths))
}

// RunStudy analyzes a corpus of schema documents; unparsable documents are
// skipped (real corpora contain errors, cf. Sahuguet's observation for
// DTDs).
func RunStudy(docs []string) *StudyResult {
	res := &StudyResult{}
	for _, doc := range docs {
		s, err := Parse(doc)
		if err != nil {
			continue
		}
		res.Total++
		if s.IsRecursive() {
			res.Recursive++
		} else if d, ok := s.MaxNestingDepth(); ok {
			res.Depths = append(res.Depths, d)
		}
		if s.UsesNegation() {
			res.NegationUse++
		}
		if s.IsSchemaFull() {
			res.SchemaFull++
		}
	}
	return res
}
