package xmllite

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func TestParseFigure1(t *testing.T) {
	el, err := Parse(Figure1XML)
	if err != nil {
		t.Fatalf("Figure 1 XML should be well-formed: %v", err)
	}
	tr := el.AsTree()
	want := tree.MustParse("persons(person(name, birthplace(city, state, country)), person(name, birthplace(city, state)))")
	if !tr.Equal(want) {
		t.Errorf("tree = %v, want %v", tr, want)
	}
	if tr.Depth() != 4 {
		t.Errorf("depth = %d, want 4", tr.Depth())
	}
	if el.Children[0].Attrs[0].Name != "pers_id" || el.Children[0].Attrs[0].Value != "1" {
		t.Errorf("attrs = %v", el.Children[0].Attrs)
	}
}

func TestWellFormedVariants(t *testing.T) {
	good := []string{
		"<a/>",
		"<a></a>",
		"<a x=\"1\" y='2'><b/>text</a>",
		"<?xml version=\"1.0\"?><a/>",
		"<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>",
		"<a><!-- comment --></a>",
		"<a><![CDATA[ <raw> & stuff ]]></a>",
		"<a>&amp;&lt;&#38;&#x26;</a>",
		"<a:ns.x-y_z/>",
		"<a><?pi data?></a>",
	}
	for _, doc := range good {
		if cat := Check(doc); cat != ErrNone {
			t.Errorf("Check(%q) = %v, want well-formed", doc, cat)
		}
	}
}

func TestErrorCategories(t *testing.T) {
	cases := []struct {
		doc  string
		want ErrorCategory
	}{
		{"<a></b>", ErrTagMismatch},
		{"<a><b></a></b>", ErrTagMismatch},
		{"<a", ErrPrematureEnd},
		{"<a><b></b>", ErrPrematureEnd},
		{"<a x=", ErrPrematureEnd},
		{"<a>\xff\xfe</a>", ErrBadUTF8},
		{"<a>1 & 2</a>", ErrBadEntity},
		{"<a>&nbsp</a>", ErrBadEntity},
		{"<a x=1/>", ErrBadAttribute},
		{"<a x>1</a>", ErrBadAttribute},
		{"<a x=\"1\" x=\"2\"/>", ErrDuplicateAttr},
		{"<a/><b/>", ErrMultipleRoots},
		{"<a/>trailing", ErrMultipleRoots},
		{"<1a/>", ErrBadName},
		{"<a>1 < 2</a>", ErrStrayLT},
		{"", ErrEmptyDocument},
		{"<?xml version=\"1.0\"?>  ", ErrEmptyDocument},
	}
	for _, c := range cases {
		if got := Check(c.doc); got != c.want {
			t.Errorf("Check(%q) = %v, want %v", c.doc, got, c.want)
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	tr := tree.MustParse("persons(person(name, birthplace(city, state)))")
	doc := Render(tr)
	el, err := Parse(doc)
	if err != nil {
		t.Fatalf("Render produced non-well-formed %q: %v", doc, err)
	}
	if !el.AsTree().Equal(tr) {
		t.Errorf("round trip changed tree: %v", el.AsTree())
	}
}

func TestCorpusGeneratorFaultsLandInCategory(t *testing.T) {
	g := DefaultCorpusGen()
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		doc := g.wellFormed(r)
		if cat := Check(doc); cat != ErrNone {
			t.Fatalf("generator produced non-well-formed base document (%v): %q", cat, doc)
		}
	}
}

func TestRunStudyReproducesGrijzenhoutMarx(t *testing.T) {
	// Section 3.1: 85% well-formed; top-3 categories ≈ 79.9% of errors;
	// 9 categories ≈ 99%. The corpus is synthetic but the classification is
	// done by the real checker.
	g := DefaultCorpusGen()
	r := rand.New(rand.NewSource(42))
	docs := make([]string, 4000)
	for i := range docs {
		docs[i] = g.Document(r)
	}
	res := RunStudy(docs)
	if rate := res.WellFormedRate(); rate < 0.82 || rate > 0.88 {
		t.Errorf("well-formed rate = %.3f, want ≈ 0.85", rate)
	}
	if res.TopThreeRate < 0.70 || res.TopThreeRate > 0.90 {
		t.Errorf("top-3 error rate = %.3f, want ≈ 0.80", res.TopThreeRate)
	}
	// the dominant category must be tag mismatch
	max := ErrNone
	for cat, n := range res.ByCategory {
		if max == ErrNone || n > res.ByCategory[max] {
			max = cat
		}
	}
	if max != ErrTagMismatch {
		t.Errorf("dominant category = %v, want tag mismatch", max)
	}
}

func TestStudyOnPerfectAndBrokenCorpora(t *testing.T) {
	res := RunStudy([]string{"<a/>", "<b></b>"})
	if res.WellFormed != 2 || res.TopThreeRate != 0 {
		t.Errorf("perfect corpus: %+v", res)
	}
	res2 := RunStudy([]string{"<a", "<a></b>"})
	if res2.WellFormed != 0 || len(res2.ByCategory) != 2 {
		t.Errorf("broken corpus: %+v", res2)
	}
}
