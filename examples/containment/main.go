// Containment and intersection for chain regular expressions
// (Theorems 4.4 and 4.5), plus the Appendix A coNP-hardness reduction.
package main

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/chare"
	"repro/internal/reduction"
	"repro/internal/regex"
)

func main() {
	// --- fragment-specific deciders --------------------------------------
	pairs := [][2]string{
		{"a a+", "a+"},                       // RE(a,a+): PTIME block normal form
		{"(a + b) c", "(a + b + d) (c + d)"}, // RE(a,(+a)): fixed length
		{"a* b*", "(a + b)*"},                // greedy, subsequence-closed right side
		{"(a + b)* a", "(a + b)* (a + b)"},   // general automata fallback
	}
	fmt.Println("Containment (Theorem 4.4):")
	for _, p := range pairs {
		c1, c2 := chare.MustParse(p[0]), chare.MustParse(p[1])
		ok, method := chare.Contains(c1, c2)
		fmt.Printf("  L(%-12s) ⊆ L(%-18s)?  %-5v  [decided by %s]\n", p[0], p[1], ok, method)
	}

	fmt.Println("\nIntersection non-emptiness (Theorem 4.5):")
	groups := [][]string{
		{"a a+", "a+ a", "a a a+"},
		{"(a + b) c", "(b + d) c"},
		{"a b", "b a"},
	}
	for _, g := range groups {
		var cs []*chare.CHARE
		for _, s := range g {
			cs = append(cs, chare.MustParse(s))
		}
		ok, method := chare.IntersectionNonEmpty(cs...)
		fmt.Printf("  ⋂ %-28v ≠ ∅?  %-5v  [decided by %s]\n", g, ok, method)
	}

	// the NP certificate of Theorem 4.5(c–g): compact run-length witnesses
	c := chare.MustParse("a+ b a*")
	w := chare.RLEWord{{Label: "a", Count: 1_000_000_000}, {Label: "b", Count: 1}}
	fmt.Printf("\nRLE witness a^10⁹ b ∈ L(a+ b a*)? %v (verified in polynomial time)\n",
		chare.MemberRLE(c, w))

	// --- Appendix A: validity → containment -----------------------------
	phi := &reduction.DNF{
		Vars: 4,
		Clauses: []reduction.Clause{
			{1, -2, 3}, {-1, 3, -4}, {2, -3, 4}, // the paper's example φ
		},
	}
	fmt.Printf("\nAppendix A example: φ = %s\n", phi)
	fmt.Println("  valid (brute force):", phi.Valid())
	e1, e2 := phi.ToOptContainment()
	fmt.Printf("  RE(a,a?) instance: |e1| = %d, |e2| = %d nodes\n", e1.Size(), e2.Size())
	fmt.Println("  L(e1) ⊆ L(e2):", automata.Contains(e1, e2))
	s1, s2 := phi.ToStarContainment()
	fmt.Printf("  RE(a,a*) instance: |e1| = %d, |e2| = %d nodes\n", s1.Size(), s2.Size())
	fmt.Println("  L(e1) ⊆ L(e2):", automata.Contains(s1, s2))

	tauto := &reduction.DNF{Vars: 2, Clauses: []reduction.Clause{{1}, {-1}}}
	t1, t2 := tauto.ToOptContainment()
	fmt.Printf("\ntautology x1 ∨ ¬x1: valid=%v, containment=%v\n",
		tauto.Valid(), automata.Contains(t1, t2))

	// --- descriptional complexity: determinization ----------------------
	e := regex.MustParse("(a + b)* a")
	fmt.Printf("\n%q is deterministic per BKW? %v\n", e, automata.Glushkov(e).IsDeterministic())
}
