package xpath

import "testing"

// TestExpressibleTable pins every rewrite rule of expressible.go against
// the three fragment classifications, one row per interesting shape.
func TestExpressibleTable(t *testing.T) {
	cases := []struct {
		src                      string
		positive, core, downward bool
	}{
		// already positive, core and downward
		{"/a/b[c]", true, true, true},
		// double-negation elimination restores positivity
		{"/a[not(not(b))]", true, true, true},
		// quadruple negation reduces all the way
		{"/a[not(not(not(not(b))))]", true, true, true},
		// genuine single negation: core but not positive
		{"/a[not(b)]", false, true, true},
		// De Morgan + double negation: not(not(a) or not(b)) = a and b
		{"/x[not(not(a) or not(b))]", true, true, true},
		// dual form: not(not(a) and not(b)) = a or b
		{"/x[not(not(a) and not(b))]", true, true, true},
		// De Morgan exposing only one inner double negation keeps a not()
		{"/x[not(not(a) or b)]", false, true, true},
		// tautological [.] predicate is dropped
		{"/a[.]/b", true, true, true},
		// true or p collapses to true, so the whole predicate drops
		{"/a[. or not(b)]/c", true, true, true},
		// true and p collapses to p, leaving a positive predicate
		{"/a[. and b]/c", true, true, true},
		// trivial self steps flatten away without changing fragments
		{"/a/./b", true, true, true},
		// upward axis: positive but not downward
		{"/a/b/parent::a", true, true, false},
		// descendant axis stays downward
		{"//a[b]", true, true, true},
		// positional predicate is beyond core
		{"/a[2]", true, false, true},
		// count comparison is beyond core
		{"/a[count(b)=1]", true, false, true},
	}
	for _, c := range cases {
		e := MustParse(c.src)
		if got := ExpressiblePositive(e); got != c.positive {
			t.Errorf("ExpressiblePositive(%q) = %v, want %v (rewritten: %s)", c.src, got, c.positive, Rewrite(e))
		}
		if got := ExpressibleCore(e); got != c.core {
			t.Errorf("ExpressibleCore(%q) = %v, want %v (rewritten: %s)", c.src, got, c.core, Rewrite(e))
		}
		if got := ExpressibleDownward(e); got != c.downward {
			t.Errorf("ExpressibleDownward(%q) = %v, want %v (rewritten: %s)", c.src, got, c.downward, Rewrite(e))
		}
	}
}

// TestRewriteIdempotent asserts Rewrite is a fixpoint operator: rewriting
// a rewritten query changes nothing (no rule re-fires on normalized form).
func TestRewriteIdempotent(t *testing.T) {
	for _, src := range []string{
		"/a[not(not(b))]",
		"/x[not(not(a) or not(b))]",
		"/a[. or not(b)]/c",
		"/a/./b[not(c)]",
		"//a[not(. and not(b))]",
		"/a[2][count(b)=1]",
	} {
		r1 := Rewrite(MustParse(src))
		r2 := Rewrite(r1)
		if r1.String() != r2.String() {
			t.Errorf("Rewrite not idempotent on %q: %s vs %s", src, r1, r2)
		}
	}
}

// TestRewriteTableEvaluation checks on the Figure 1 document that each
// table rewrite preserves the evaluated node set where both the original
// and the rewritten query are evaluable.
func TestRewriteTableEvaluation(t *testing.T) {
	root := figure1()
	for _, src := range []string{
		"/persons/person[not(not(name))]",
		"/persons/./person",
		"//person[. or not(name)]",
		"//birthplace[not(not(city) and not(not(state)))]",
	} {
		e := MustParse(src)
		r := Rewrite(e)
		got1, ok1 := Eval(e, root)
		got2, ok2 := Eval(r, root)
		if !ok1 || !ok2 {
			t.Errorf("%q (rewritten %s) not evaluable (ok1=%v ok2=%v)", src, r, ok1, ok2)
			continue
		}
		if len(got1) != len(got2) {
			t.Errorf("Rewrite changed semantics of %q: %d vs %d nodes (rewritten %s)", src, len(got1), len(got2), r)
		}
	}
}
