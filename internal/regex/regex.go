// Package regex implements the regular expressions of Section 2 of
// "Towards Theory for Real-World Data" (Martens, PODS 2022): expressions over
// a countably infinite label set Lab built from ∅, ε, labels, concatenation,
// union, Kleene star, optionality (?), and plus (+).
//
// The abstract syntax is preserved faithfully: no silent simplification is
// performed, because several notions studied in the paper — determinism
// (one-unambiguity), parse depth, k-occurrence — are properties of the
// *syntax*, not of the language.
package regex

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the top-level operator of an expression.
type Kind int

// Expression kinds. Concat and Union are n-ary (≥ 2 children); Star, Plus and
// Opt are unary.
const (
	Empty   Kind = iota // ∅, the empty language
	Epsilon             // ε, the language {ε}
	Symbol              // a single label a ∈ Lab
	Concat              // e1 · e2 · … · en
	Union               // e1 + e2 + … + en
	Star                // e*
	Plus                // e+
	Opt                 // e?
)

func (k Kind) String() string {
	switch k {
	case Empty:
		return "Empty"
	case Epsilon:
		return "Epsilon"
	case Symbol:
		return "Symbol"
	case Concat:
		return "Concat"
	case Union:
		return "Union"
	case Star:
		return "Star"
	case Plus:
		return "Plus"
	case Opt:
		return "Opt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Expr is a node of a regular-expression syntax tree.
//
// Invariants: Sym is non-empty iff Kind == Symbol; Subs has ≥ 2 elements for
// Concat/Union, exactly 1 for Star/Plus/Opt, and is nil otherwise.
type Expr struct {
	Kind Kind
	Sym  string
	Subs []*Expr
}

// Constructors. NewConcat and NewUnion flatten nested nodes of the same kind
// (associativity is syntactically irrelevant for every analysis in the paper)
// but perform no other rewriting.

// NewEmpty returns ∅.
func NewEmpty() *Expr { return &Expr{Kind: Empty} }

// NewEpsilon returns ε.
func NewEpsilon() *Expr { return &Expr{Kind: Epsilon} }

// NewSymbol returns the expression consisting of the single label a.
func NewSymbol(a string) *Expr {
	if a == "" {
		panic("regex: empty symbol")
	}
	return &Expr{Kind: Symbol, Sym: a}
}

// NewConcat returns the concatenation of es, flattening nested concatenations.
// With zero arguments it returns ε; with one, that argument.
func NewConcat(es ...*Expr) *Expr {
	flat := flatten(Concat, es)
	switch len(flat) {
	case 0:
		return NewEpsilon()
	case 1:
		return flat[0]
	}
	return &Expr{Kind: Concat, Subs: flat}
}

// NewUnion returns the union of es, flattening nested unions. With zero
// arguments it returns ∅; with one, that argument.
func NewUnion(es ...*Expr) *Expr {
	flat := flatten(Union, es)
	switch len(flat) {
	case 0:
		return NewEmpty()
	case 1:
		return flat[0]
	}
	return &Expr{Kind: Union, Subs: flat}
}

// NewStar returns e*.
func NewStar(e *Expr) *Expr { return &Expr{Kind: Star, Subs: []*Expr{e}} }

// NewPlus returns e+.
func NewPlus(e *Expr) *Expr { return &Expr{Kind: Plus, Subs: []*Expr{e}} }

// NewOpt returns e?.
func NewOpt(e *Expr) *Expr { return &Expr{Kind: Opt, Subs: []*Expr{e}} }

func flatten(k Kind, es []*Expr) []*Expr {
	out := make([]*Expr, 0, len(es))
	for _, e := range es {
		if e == nil {
			panic("regex: nil subexpression")
		}
		if e.Kind == k {
			out = append(out, e.Subs...)
		} else {
			out = append(out, e)
		}
	}
	return out
}

// Sub returns the single child of a unary node and panics otherwise.
func (e *Expr) Sub() *Expr {
	if len(e.Subs) != 1 {
		panic("regex: Sub on non-unary expression")
	}
	return e.Subs[0]
}

// Clone returns a deep copy of e.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	c := &Expr{Kind: e.Kind, Sym: e.Sym}
	if e.Subs != nil {
		c.Subs = make([]*Expr, len(e.Subs))
		for i, s := range e.Subs {
			c.Subs[i] = s.Clone()
		}
	}
	return c
}

// Equal reports whether e and f are syntactically identical.
func (e *Expr) Equal(f *Expr) bool {
	if e == nil || f == nil {
		return e == f
	}
	if e.Kind != f.Kind || e.Sym != f.Sym || len(e.Subs) != len(f.Subs) {
		return false
	}
	for i := range e.Subs {
		if !e.Subs[i].Equal(f.Subs[i]) {
			return false
		}
	}
	return true
}

// Size returns the number of nodes in the syntax tree.
func (e *Expr) Size() int {
	n := 1
	for _, s := range e.Subs {
		n += s.Size()
	}
	return n
}

// ParseDepth returns the nesting depth of the syntax tree, with atoms (∅, ε,
// symbols) at depth 1. Choi's study (Section 4.2.1 of the paper) measured
// parse depths of 1–9 for regular expressions occurring in real DTDs.
func (e *Expr) ParseDepth() int {
	d := 0
	for _, s := range e.Subs {
		if sd := s.ParseDepth(); sd > d {
			d = sd
		}
	}
	return d + 1
}

// Alphabet returns the sorted set of labels occurring in e.
func (e *Expr) Alphabet() []string {
	occ := e.Occurrences()
	out := make([]string, 0, len(occ))
	for a := range occ {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Occurrences maps each label to the number of times it occurs in e. The
// maximum over all labels is the k for which e is a k-ORE (Section 4.2.3).
func (e *Expr) Occurrences() map[string]int {
	occ := map[string]int{}
	e.walk(func(x *Expr) {
		if x.Kind == Symbol {
			occ[x.Sym]++
		}
	})
	return occ
}

// MaxOccurrences returns the largest number of times any single label occurs
// in e (0 for expressions without symbols).
func (e *Expr) MaxOccurrences() int {
	max := 0
	for _, n := range e.Occurrences() {
		if n > max {
			max = n
		}
	}
	return max
}

func (e *Expr) walk(f func(*Expr)) {
	f(e)
	for _, s := range e.Subs {
		s.walk(f)
	}
}

// Walk calls f on e and on every descendant, in preorder.
func (e *Expr) Walk(f func(*Expr)) { e.walk(f) }

// Nullable reports whether ε ∈ L(e).
func (e *Expr) Nullable() bool {
	switch e.Kind {
	case Empty, Symbol:
		return false
	case Epsilon, Star, Opt:
		return true
	case Plus:
		return e.Sub().Nullable()
	case Concat:
		for _, s := range e.Subs {
			if !s.Nullable() {
				return false
			}
		}
		return true
	case Union:
		for _, s := range e.Subs {
			if s.Nullable() {
				return true
			}
		}
		return false
	}
	panic("regex: unknown kind")
}

// IsEmptyLanguage reports whether L(e) = ∅.
func (e *Expr) IsEmptyLanguage() bool {
	switch e.Kind {
	case Empty:
		return true
	case Epsilon, Symbol, Star, Opt:
		return false
	case Plus:
		return e.Sub().IsEmptyLanguage()
	case Concat:
		for _, s := range e.Subs {
			if s.IsEmptyLanguage() {
				return true
			}
		}
		return false
	case Union:
		for _, s := range e.Subs {
			if !s.IsEmptyLanguage() {
				return false
			}
		}
		return true
	}
	panic("regex: unknown kind")
}

// String renders e with minimal parentheses using '+' for union (the paper's
// notation), juxtaposition with spaces for concatenation, and postfix
// * / + / ? for iteration. ∅ renders as "<empty>" and ε as "<eps>".
// Multi-character labels render as-is; the output is re-parseable by Parse.
func (e *Expr) String() string {
	var b strings.Builder
	e.render(&b, 0)
	return b.String()
}

// precedence levels: union < concat < unary.
func (e *Expr) render(b *strings.Builder, prec int) {
	switch e.Kind {
	case Empty:
		b.WriteString("<empty>")
	case Epsilon:
		b.WriteString("<eps>")
	case Symbol:
		b.WriteString(e.Sym)
	case Union:
		if prec > 0 {
			b.WriteByte('(')
		}
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteString(" + ")
			}
			s.render(b, 1)
		}
		if prec > 0 {
			b.WriteByte(')')
		}
	case Concat:
		if prec > 1 {
			b.WriteByte('(')
		}
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteByte(' ')
			}
			s.render(b, 2)
		}
		if prec > 1 {
			b.WriteByte(')')
		}
	case Star, Plus, Opt:
		sub := e.Sub()
		needParen := sub.Kind == Concat || sub.Kind == Union ||
			sub.Kind == Star || sub.Kind == Plus || sub.Kind == Opt
		if needParen {
			b.WriteByte('(')
			sub.render(b, 0)
			b.WriteByte(')')
		} else {
			sub.render(b, 3)
		}
		switch e.Kind {
		case Star:
			b.WriteByte('*')
		case Plus:
			b.WriteByte('+')
		case Opt:
			b.WriteByte('?')
		}
	}
}

// Simplify returns a language-equivalent expression with trivial identities
// applied: ∅ absorbed in unions and annihilating concatenations, ε removed
// from concatenations, (e?)? = e?, (e*)* = e*, ε + e = e?, and single-child
// collapses. Simplify never changes the language but may change syntactic
// properties; analyses that depend on syntax must run before simplification.
func (e *Expr) Simplify() *Expr {
	switch e.Kind {
	case Empty, Epsilon, Symbol:
		return e.Clone()
	case Concat:
		var subs []*Expr
		for _, s := range e.Subs {
			ss := s.Simplify()
			switch ss.Kind {
			case Empty:
				return NewEmpty()
			case Epsilon:
				continue
			}
			subs = append(subs, ss)
		}
		return NewConcat(subs...)
	case Union:
		var subs []*Expr
		hasEps := false
		for _, s := range e.Subs {
			ss := s.Simplify()
			switch ss.Kind {
			case Empty:
				continue
			case Epsilon:
				hasEps = true
				continue
			}
			subs = append(subs, ss)
		}
		u := NewUnion(subs...)
		if hasEps {
			if u.Kind == Empty {
				return NewEpsilon()
			}
			if u.Nullable() {
				return u
			}
			return NewOpt(u)
		}
		return u
	case Star:
		s := e.Sub().Simplify()
		switch s.Kind {
		case Empty, Epsilon:
			return NewEpsilon()
		case Star, Plus, Opt:
			return NewStar(s.Sub())
		}
		return NewStar(s)
	case Plus:
		s := e.Sub().Simplify()
		switch s.Kind {
		case Empty:
			return NewEmpty()
		case Epsilon:
			return NewEpsilon()
		case Star:
			return NewStar(s.Sub())
		case Plus:
			return s
		case Opt:
			return NewStar(s.Sub())
		}
		return NewPlus(s)
	case Opt:
		s := e.Sub().Simplify()
		switch s.Kind {
		case Empty, Epsilon:
			return NewEpsilon()
		case Star, Opt:
			return s
		case Plus:
			return NewStar(s.Sub())
		}
		if s.Nullable() {
			return s
		}
		return NewOpt(s)
	}
	panic("regex: unknown kind")
}
