package recorder

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// Perfetto export: the Chrome trace-event JSON format (the "JSON Array
// Format" with an object wrapper), loadable directly in Perfetto or
// chrome://tracing.
//
// Mapping:
//   - one pid per trace, so Perfetto renders each trace as its own
//     process group, named "<op> <trace_id>" via a process_name
//     metadata event;
//   - every span is one complete ("X") event: ts/dur in microseconds
//     from the span's wall-clock start, tid = tree depth so parent and
//     child land on separate tracks even when concurrent shard spans
//     overlap in time;
//   - cost counters and attrs ride in args, where Perfetto's slice
//     details pane shows them.

// event is one trace-event line. Ts and Dur are microseconds.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type perfettoDoc struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WritePerfetto renders traces as trace-event JSON.
func WritePerfetto(w io.Writer, traces []*Trace) error {
	doc := perfettoDoc{TraceEvents: []event{}, DisplayTimeUnit: "ms"}
	for i, t := range traces {
		pid := i + 1
		doc.TraceEvents = append(doc.TraceEvents, event{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]any{"name": fmt.Sprintf("%s %s", t.Op, t.TraceID)},
		})
		appendSpanEvents(&doc.TraceEvents, t, t.Root, pid, 0)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func appendSpanEvents(out *[]event, t *Trace, n *obs.Node, pid, depth int) {
	if n == nil {
		return
	}
	ev := event{
		Name: n.Name,
		Ph:   "X",
		Ts:   n.StartUS,
		Dur:  int64(n.DurationMS * 1000),
		Pid:  pid,
		Tid:  depth,
		Cat:  t.Op,
	}
	if len(n.Counters) > 0 || len(n.Attrs) > 0 {
		ev.Args = make(map[string]any, len(n.Counters)+len(n.Attrs))
		for k, v := range n.Counters {
			ev.Args[k] = v
		}
		for k, v := range n.Attrs {
			ev.Args[k] = v
		}
	}
	*out = append(*out, ev)
	for _, c := range n.Children {
		appendSpanEvents(out, t, c, pid, depth+1)
	}
}
