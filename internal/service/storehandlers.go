package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// tripleRows converts the wire shape ([s, p, o] rows) to rdf.Triples.
func tripleRows(rows [][3]string) []rdf.Triple {
	out := make([]rdf.Triple, len(rows))
	for i, r := range rows {
		out[i] = rdf.Triple{S: r[0], P: r[1], O: r[2]}
	}
	return out
}

// Store endpoints. The server runs with or without a persistent store;
// without one (rwdserve started without -store-dir) the corpus
// endpoints answer 503 so clients can tell "not configured" from "not
// found".

// AttachStore wires a persistent store into the server and registers
// the rwd_store_* gauges. Call before serving; the corpus endpoints
// and /v1/analyze?corpus= are 503 until a store is attached.
func (s *Server) AttachStore(st *store.Store) {
	s.store = st
	stat := func(f func(store.Stats) float64) func() float64 {
		return func() float64 {
			stats, err := st.StoreStats()
			if err != nil {
				return -1
			}
			return f(stats)
		}
	}
	s.reg.GaugeFunc("rwd_store_corpora",
		"Corpora registered in the attached store.",
		stat(func(v store.Stats) float64 { return float64(v.Corpora) }))
	s.reg.GaugeFunc("rwd_store_segments",
		"Committed segment files in the attached store.",
		stat(func(v store.Stats) float64 { return float64(v.Segments) }))
	s.reg.GaugeFunc("rwd_store_terms",
		"Terms interned in the store's dictionary.",
		stat(func(v store.Stats) float64 { return float64(v.Terms) }))
	s.reg.GaugeFunc("rwd_store_triples",
		"Triples committed across all triples corpora.",
		stat(func(v store.Stats) float64 { return float64(v.Triples) }))
	s.reg.GaugeFunc("rwd_store_log_lines",
		"Log lines committed across all log corpora.",
		stat(func(v store.Stats) float64 { return float64(v.LogLines) }))
	s.reg.GaugeFunc("rwd_store_pending_keys",
		"Memtable keys not yet flushed to a segment.",
		stat(func(v store.Stats) float64 { return float64(v.PendingKeys) }))
	s.reg.GaugeFunc("rwd_store_segment_bytes",
		"Total bytes of committed segment files.",
		stat(func(v store.Stats) float64 { return float64(v.SegmentBytes) }))
}

var errNoStoreAttached = &apiError{http.StatusServiceUnavailable,
	"no store configured (start rwdserve with -store-dir)"}

// storeError maps a store error to its HTTP status: an unknown corpus
// is the client's mistake (404), anything else — corruption, I/O — is
// the server's (500).
func storeError(err error) *apiError {
	if errors.Is(err, store.ErrUnknownCorpus) {
		return &apiError{http.StatusNotFound, err.Error()}
	}
	return &apiError{http.StatusInternalServerError, err.Error()}
}

// ---- GET /v1/corpora ----

type corporaResponse struct {
	Corpora []store.CorpusStats `json:"corpora"`
}

func (s *Server) handleCorporaList(ctx context.Context, req *request) (any, *apiError) {
	if s.store == nil {
		return nil, errNoStoreAttached
	}
	list, err := s.store.Corpora(ctx)
	if err != nil {
		return nil, storeError(err)
	}
	if list == nil {
		list = []store.CorpusStats{}
	}
	return corporaResponse{Corpora: list}, nil
}

// ---- POST /v1/corpora ----

type corpusIngestRequest struct {
	Name string `json:"name"`
	// Kind is "triples" or "log"; optional when exactly one of Triples
	// and Queries says which it is.
	Kind    string      `json:"kind,omitempty"`
	Triples [][3]string `json:"triples,omitempty"` // [s, p, o] rows
	Queries []string    `json:"queries,omitempty"` // raw query lines
	// DeadlineMS rides in the shared envelope; listed so the request
	// shape documents itself.
	DeadlineMS int `json:"deadline_ms"`
}

type corpusIngestResponse struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Added     int     `json:"added"`
	Skipped   int     `json:"skipped"` // duplicates deduplicated at ingest
	ElapsedMS float64 `json:"elapsed_ms"`
}

// handleCorporaIngest adds triples or log lines to a named corpus and
// flushes, so a 200 means the data is committed (Flush is the store's
// commit point).
func (s *Server) handleCorporaIngest(ctx context.Context, req *request) (any, *apiError) {
	if s.store == nil {
		return nil, errNoStoreAttached
	}
	var in corpusIngestRequest
	if err := json.Unmarshal(req.body, &in); err != nil {
		return nil, errBadRequest("invalid JSON: %v", err)
	}
	if in.Name == "" {
		return nil, errBadRequest("name is required")
	}
	if len(in.Triples) > 0 && len(in.Queries) > 0 {
		return nil, errBadRequest("a corpus holds triples or queries, not both")
	}
	kind := store.CorpusKind(in.Kind)
	switch {
	case in.Kind == "" && len(in.Triples) > 0:
		kind = store.KindTriples
	case in.Kind == "" && len(in.Queries) > 0:
		kind = store.KindLog
	case in.Kind == "":
		return nil, errBadRequest("kind is required when the request carries no data")
	case kind != store.KindTriples && kind != store.KindLog:
		return nil, errBadRequest("unknown kind %q (want triples or log)", in.Kind)
	}
	if kind == store.KindTriples && len(in.Queries) > 0 {
		return nil, errBadRequest("kind=triples but the request carries queries")
	}
	if kind == store.KindLog && len(in.Triples) > 0 {
		return nil, errBadRequest("kind=log but the request carries triples")
	}

	start := time.Now()
	return runEngine(ctx, req, func(ctx context.Context) (any, *apiError) {
		var added, offered int
		var err error
		if kind == store.KindTriples {
			offered = len(in.Triples)
			added, err = s.store.IngestTriples(ctx, in.Name, tripleRows(in.Triples))
		} else {
			offered = len(in.Queries)
			added, err = s.store.IngestLog(ctx, in.Name, in.Queries)
		}
		if err == nil {
			err = s.store.Flush(ctx)
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctxError(ctx.Err())
			}
			return nil, storeError(err)
		}
		return corpusIngestResponse{
			Name:      in.Name,
			Kind:      string(kind),
			Added:     added,
			Skipped:   offered - added,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		}, nil
	})
}
