package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// POST /v1/batch: many heterogeneous decisions per request. The paper's
// empirical core is bulk analysis — SHARQL-scale query logs, corpus-wide
// schema studies — so the service accepts decision batches: one HTTP
// round trip, one admission slot, one root trace, per-item verdicts.
//
// Each item names an op (containment, membership, validate, infer) and
// carries the exact body the dedicated endpoint would take, so a batch
// item's response is identical to the response of the one-per-request
// call. Items run sequentially under the batch deadline; each gets its
// own "batch.item" span (per-item cost under one root trace), its own
// verdict-cache lookup, and its own deadline watchdog, so one slow item
// yields a per-item 504 while the items before it still return verdicts.

type batchItem struct {
	// Op selects the decision: containment, membership, validate, infer.
	Op string `json:"op"`
	// Request is the op's endpoint body, verbatim. Per-item deadline_ms
	// is ignored: the batch envelope's deadline governs the whole batch.
	Request json.RawMessage `json:"request"`
}

type batchRequest struct {
	Items []batchItem `json:"items"`
	// DeadlineMS and Explain form the shared envelope; explain returns
	// the root span tree with one batch.item child per item.
	DeadlineMS int  `json:"deadline_ms"`
	Explain    bool `json:"explain"`
}

type batchItemResult struct {
	Op     string `json:"op"`
	Status int    `json:"status"`
	// Response is the op endpoint's response object on status 200.
	Response any `json:"response,omitempty"`
	// Error is the op endpoint's error message on any other status.
	Error string `json:"error,omitempty"`
}

type batchResponse struct {
	Count     int               `json:"count"`
	Failed    int               `json:"failed"`
	Items     []batchItemResult `json:"items"`
	ElapsedMS float64           `json:"elapsed_ms"`
}

func (s *Server) handleBatch(ctx context.Context, req *request) (any, *apiError) {
	var br batchRequest
	if err := json.Unmarshal(req.body, &br); err != nil {
		return nil, errBadRequest("invalid JSON: %v", err)
	}
	if len(br.Items) == 0 {
		return nil, errBadRequest("items is required")
	}
	start := time.Now()
	resp := batchResponse{Count: len(br.Items), Items: make([]batchItemResult, len(br.Items))}
	for i, it := range br.Items {
		resp.Items[i] = s.runBatchItem(ctx, req, i, it)
		if resp.Items[i].Status != http.StatusOK {
			resp.Failed++
		}
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return resp, nil
}

// runBatchItem decides one item under its own child span. The item runs
// inside the per-item runEngine watchdog, so an engine without
// cancellation checkpoints cannot drag the whole batch past the
// deadline; once the deadline has passed, the remaining items are marked
// without starting their engines.
func (s *Server) runBatchItem(ctx context.Context, req *request, i int, it batchItem) batchItemResult {
	out := batchItemResult{Op: it.Op}
	if err := ctx.Err(); err != nil {
		aerr := ctxError(err)
		out.Status, out.Error = aerr.status, aerr.msg
		return out
	}
	ctx, span := obs.StartSpan(ctx, "batch.item")
	span.SetAttr("op", it.Op)
	span.SetAttr("index", strconv.Itoa(i))
	defer span.Finish()
	v, aerr := runEngine(ctx, req, func(ctx context.Context) (any, *apiError) {
		return s.decide(ctx, it.Op, it.Request, req.env.Explain)
	})
	if aerr != nil {
		out.Status, out.Error = aerr.status, aerr.msg
		return out
	}
	out.Status, out.Response = http.StatusOK, v
	return out
}

// decide dispatches one decision body to the op's decide function — the
// same code path the dedicated endpoint runs, including the per-item
// verdict-cache lookup for containment.
func (s *Server) decide(ctx context.Context, op string, body []byte, explain bool) (any, *apiError) {
	switch op {
	case "containment":
		return s.decideContainment(ctx, body, explain)
	case "membership":
		return decideMembership(ctx, body)
	case "validate":
		return decideValidate(ctx, body)
	case "infer":
		return decideInfer(ctx, body)
	}
	return nil, errBadRequest("unknown op %q (want containment, membership, validate, or infer)", op)
}
