// Package hypergraph implements the hypergraph machinery of Section 9.5 of
// "Towards Theory for Real-World Data": α-acyclicity via GYO ear removal,
// free-connex acyclicity (the "FCA" row of Table 6), and the hypertree-
// width ≤ k decision used to produce the htw rows of Table 6. Deciding
// width uses an exact det-k-decomp-style search over ≤ k-edge separators
// (Gottlob & Samer's algorithm computed the original table); it decides
// generalized hypertree width, which coincides with hypertree width on the
// query-shaped instances analyzed here (ghw ≤ htw always, and the
// log-derived hypergraphs have no pathological separators).
package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// Hypergraph is a finite hypergraph over string vertices. Edges may repeat
// or be contained in each other (the canonical hypergraphs of queries
// frequently are).
type Hypergraph struct {
	Edges [][]string
}

// New returns an empty hypergraph.
func New() *Hypergraph { return &Hypergraph{} }

// AddEdge inserts a hyperedge (deduplicated, sorted). Empty edges are
// ignored.
func (h *Hypergraph) AddEdge(vertices ...string) *Hypergraph {
	set := map[string]bool{}
	for _, v := range vertices {
		set[v] = true
	}
	if len(set) == 0 {
		return h
	}
	e := make([]string, 0, len(set))
	for v := range set {
		e = append(e, v)
	}
	sort.Strings(e)
	h.Edges = append(h.Edges, e)
	return h
}

// Vertices returns the sorted vertex set.
func (h *Hypergraph) Vertices() []string {
	set := map[string]bool{}
	for _, e := range h.Edges {
		for _, v := range e {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (h *Hypergraph) String() string {
	parts := make([]string, len(h.Edges))
	for i, e := range h.Edges {
		parts[i] = "{" + strings.Join(e, ",") + "}"
	}
	return strings.Join(parts, " ")
}

// IsAcyclic decides α-acyclicity with the GYO ear-removal procedure:
// repeatedly (1) delete vertices that occur in at most one edge and
// (2) delete edges contained in another edge; the hypergraph is acyclic
// iff everything vanishes.
func (h *Hypergraph) IsAcyclic() bool {
	// working copy: edges as maps
	edges := make([]map[string]bool, 0, len(h.Edges))
	for _, e := range h.Edges {
		m := map[string]bool{}
		for _, v := range e {
			m[v] = true
		}
		edges = append(edges, m)
	}
	for {
		changed := false
		// vertex occurrence counts
		occ := map[string]int{}
		for _, e := range edges {
			for v := range e {
				occ[v]++
			}
		}
		// rule 1: remove vertices in ≤ 1 edge
		for _, e := range edges {
			for v := range e {
				if occ[v] <= 1 {
					delete(e, v)
					changed = true
				}
			}
		}
		// rule 2: remove edges contained in another edge (including empty
		// and duplicate edges)
		var kept []map[string]bool
		for i, e := range edges {
			contained := len(e) == 0
			if !contained {
				for j, f := range edges {
					if i == j {
						continue
					}
					if subset(e, f) && (len(e) < len(f) || j < i) {
						contained = true
						break
					}
				}
			}
			if contained {
				changed = true
			} else {
				kept = append(kept, e)
			}
		}
		edges = kept
		if len(edges) <= 1 {
			return true
		}
		if !changed {
			return false
		}
	}
}

func subset(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// IsFreeConnexAcyclic decides free-connex acyclicity (Bagan, Durand &
// Grandjean, cited in Section 9.5): the query is acyclic AND the
// hypergraph extended with a hyperedge holding exactly the free variables
// is acyclic. Queries in this class admit constant-delay enumeration after
// linear preprocessing — the "FCA" row of Table 6.
func (h *Hypergraph) IsFreeConnexAcyclic(free []string) bool {
	if !h.IsAcyclic() {
		return false
	}
	ext := New()
	ext.Edges = append(ext.Edges, h.Edges...)
	if len(free) > 0 {
		ext.AddEdge(free...)
	}
	return ext.IsAcyclic()
}

// HypertreeWidthAtMost decides whether the (generalized) hypertree width
// is at most k by exact search: a component with connector set Conn is
// decomposable iff some bag λ of ≤ k edges covers Conn and every remaining
// connected part is recursively decomposable. Hypergraphs with zero edges
// have width 0.
func (h *Hypergraph) HypertreeWidthAtMost(k int) bool {
	if k <= 0 {
		return len(h.Edges) == 0
	}
	if len(h.Edges) == 0 {
		return true
	}
	d := newDecomposer(h, k)
	return d.root()
}

// HypertreeWidth computes the exact width by linear search from 1.
func (h *Hypergraph) HypertreeWidth() int {
	if len(h.Edges) == 0 {
		return 0
	}
	for k := 1; ; k++ {
		if h.HypertreeWidthAtMost(k) {
			return k
		}
	}
}

type decomposer struct {
	h     *Hypergraph
	k     int
	vid   map[string]int
	edges []vset          // edges as vertex sets
	memo  map[string]int8 // 0 unknown/in-progress, 1 yes, 2 no
	lams  [][]int         // candidate separators (index lists, size ≤ k)
}

// vset is a bitset over vertices.
type vset []uint64

func newVset(n int) vset { return make(vset, (n+63)/64) }

func (s vset) set(i int)      { s[i/64] |= 1 << uint(i%64) }
func (s vset) has(i int) bool { return s[i/64]&(1<<uint(i%64)) != 0 }
func (s vset) clone() vset    { c := make(vset, len(s)); copy(c, s); return c }
func (s vset) or(t vset) {
	for i := range s {
		s[i] |= t[i]
	}
}
func (s vset) andNot(t vset) {
	for i := range s {
		s[i] &^= t[i]
	}
}
func (s vset) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}
func (s vset) subsetOf(t vset) bool {
	for i := range s {
		if s[i]&^t[i] != 0 {
			return false
		}
	}
	return true
}
func (s vset) intersects(t vset) bool {
	for i := range s {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}
func (s vset) key() string {
	var b strings.Builder
	for _, w := range s {
		fmt.Fprintf(&b, "%x.", w)
	}
	return b.String()
}

func newDecomposer(h *Hypergraph, k int) *decomposer {
	d := &decomposer{h: h, k: k, vid: map[string]int{}, memo: map[string]int8{}}
	for _, v := range h.Vertices() {
		d.vid[v] = len(d.vid)
	}
	n := len(d.vid)
	for _, e := range h.Edges {
		s := newVset(n)
		for _, v := range e {
			s.set(d.vid[v])
		}
		d.edges = append(d.edges, s)
	}
	// enumerate candidate separators: all subsets of edges of size 1..k
	var cur []int
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 {
			d.lams = append(d.lams, append([]int(nil), cur...))
		}
		if len(cur) == k {
			return
		}
		for i := start; i < len(d.edges); i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return d
}

func (d *decomposer) root() bool {
	n := len(d.vid)
	all := newVset(n)
	var compEdges []int
	for i, e := range d.edges {
		all.or(e)
		compEdges = append(compEdges, i)
	}
	// split into connected components first
	for _, comp := range d.components(compEdges, newVset(n)) {
		if !d.decompose(comp, newVset(n)) {
			return false
		}
	}
	return true
}

// components splits the given edges into connected components, where
// vertices in `removed` do not connect.
func (d *decomposer) components(edgeIdx []int, removed vset) [][]int {
	n := len(edgeIdx)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	masked := make([]vset, n)
	for i, ei := range edgeIdx {
		m := d.edges[ei].clone()
		m.andNot(removed)
		masked[i] = m
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if masked[i].intersects(masked[j]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	groups := map[int][]int{}
	for i, ei := range edgeIdx {
		if masked[i].empty() {
			continue // edge fully covered: no residual component needed
		}
		groups[find(i)] = append(groups[find(i)], ei)
	}
	var out [][]int
	ids := make([]int, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, groups[id])
	}
	return out
}

// decompose reports whether the component (a set of edges) with connector
// conn admits a decomposition of width ≤ k.
func (d *decomposer) decompose(compEdges []int, conn vset) bool {
	key := fmt.Sprintf("%v|%s", compEdges, conn.key())
	switch d.memo[key] {
	case 1:
		return true
	case 2:
		return false
	}
	d.memo[key] = 2 // in progress: assume false (a finite witness avoids cycles)
	compVerts := newVset(len(d.vid))
	for _, ei := range compEdges {
		compVerts.or(d.edges[ei])
	}
	for _, lam := range d.lams {
		bag := newVset(len(d.vid))
		for _, ei := range lam {
			bag.or(d.edges[ei])
		}
		if !conn.subsetOf(bag) {
			continue
		}
		// the bag must touch the component (progress requires covering at
		// least one component vertex beyond the connector, or covering a
		// full edge)
		if !bag.intersects(compVerts) {
			continue
		}
		subs := d.components(compEdges, bag)
		progress := len(subs) == 0
		ok := true
		for _, sub := range subs {
			if len(sub) < len(compEdges) {
				progress = true
			}
			subVerts := newVset(len(d.vid))
			for _, ei := range sub {
				subVerts.or(d.edges[ei])
			}
			subConn := bag.clone()
			for i := range subConn {
				subConn[i] &= subVerts[i]
			}
			if len(sub) == len(compEdges) && subConn.key() == conn.key() {
				ok = false // no progress with this separator
				break
			}
			if !d.decompose(sub, subConn) {
				ok = false
				break
			}
		}
		_ = progress
		if ok {
			d.memo[key] = 1
			return true
		}
	}
	d.memo[key] = 2
	return false
}
