package store

import (
	"context"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// StoredGraph is a read view of one triples corpus that satisfies
// rdf.GraphReader, so rdf.ComputeStats and both evaluators run against
// it unchanged. Every lookup shape the evaluators use (S, P, O, SP,
// PO) is one contiguous range scan over the matching index:
//
//	S, SP, SPO → SPO index    P, PO → POS index    O → OSP index
//
// The view reflects the committed state at construction plus any
// segments flushed afterwards; Store.Graph flushes first so the view
// starts complete.
//
// GraphReader methods cannot return errors, so the view is bound to a
// context: scans checkpoint cancellation, and the first error (context
// or I/O) is latched and reported by Err — callers run the analysis,
// then check Err once. After an error, scans return empty results
// rather than partial ones being mistaken for complete.
type StoredGraph struct {
	st  *Store
	c   Corpus
	ctx context.Context

	// scan-cost counters, attached to the span that was current when
	// the view was built (nil-safe when tracing is off).
	segsScanned *obs.Counter
	keysCmp     *obs.Counter

	mu  sync.Mutex
	err error
}

// Graph opens a GraphReader view of a triples corpus, flushing pending
// writes first so the view is complete.
func (s *Store) Graph(ctx context.Context, name string) (*StoredGraph, error) {
	c, err := s.Lookup(name)
	if err != nil {
		return nil, err
	}
	if c.Kind != KindTriples {
		return nil, &CorruptError{Path: s.dir, Reason: "corpus " + name + " is not a triples corpus"}
	}
	if err := s.Flush(ctx); err != nil {
		return nil, err
	}
	span := obs.FromContext(ctx)
	return &StoredGraph{
		st:          s,
		c:           c,
		ctx:         ctx,
		segsScanned: span.Counter("segments_scanned"),
		keysCmp:     span.Counter("keys_compared"),
	}, nil
}

// Err returns the first error any scan hit (context cancellation,
// I/O), or nil. Analyses check it once after running.
func (sg *StoredGraph) Err() error {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	return sg.err
}

func (sg *StoredGraph) fail(err error) {
	sg.mu.Lock()
	if sg.err == nil {
		sg.err = err
	}
	sg.mu.Unlock()
}

// scan runs fn over every record under the corpus index prefix built
// from the given terms, across all segments. A term that cannot be
// encoded for reading means no key can match. Returns false after a
// latched error.
func (sg *StoredGraph) scan(idx byte, terms []string, fn func(key []byte, prefixLen int) bool) bool {
	if sg.Err() != nil {
		return false
	}
	prefix := corpusPrefix(sg.c.ID, idx)
	for _, t := range terms {
		var ok bool
		prefix, ok = appendTermRead(prefix, t, sg.st.dict)
		if !ok {
			return true // nothing stored can match
		}
	}
	var compared int64
	checkpoint := func() error { return sg.ctx.Err() }

	sg.st.mu.RLock()
	segs := sg.st.segs
	sg.st.mu.RUnlock()
	for _, seg := range segs {
		sg.segsScanned.Inc()
		err := seg.scanPrefix(prefix, &compared, checkpoint, func(key, _ []byte) bool {
			return fn(key, len(prefix))
		})
		if err != nil {
			sg.keysCmp.Add(compared)
			sg.fail(err)
			return false
		}
	}
	sg.keysCmp.Add(compared)
	return true
}

// decode3 decodes the three terms of a triple key starting at off,
// latching a corruption error if decoding fails.
func (sg *StoredGraph) decode3(key []byte, off int) (a, b, c string, ok bool) {
	var err error
	if a, err = decodeTerm(key[off:], sg.st.dict); err == nil {
		if b, err = decodeTerm(key[off+encodedTermSize:], sg.st.dict); err == nil {
			if c, err = decodeTerm(key[off+2*encodedTermSize:], sg.st.dict); err == nil {
				return a, b, c, true
			}
		}
	}
	sg.fail(err)
	return "", "", "", false
}

// keyBase returns the length of the [corpus 4][index 1] prefix.
const keyBase = 5

// Len returns the number of triples.
func (sg *StoredGraph) Len() int {
	n := 0
	sg.scan(idxSPO, nil, func([]byte, int) bool { n++; return true })
	if sg.Err() != nil {
		return 0
	}
	return n
}

// Triples returns all triples, in SPO key order.
func (sg *StoredGraph) Triples() []rdf.Triple {
	var out []rdf.Triple
	sg.scan(idxSPO, nil, func(key []byte, _ int) bool {
		s, p, o, ok := sg.decode3(key, keyBase)
		if !ok {
			return false
		}
		out = append(out, rdf.Triple{S: s, P: p, O: o})
		return true
	})
	if sg.Err() != nil {
		return nil
	}
	return out
}

// Has reports membership via a point lookup on the SPO index.
func (sg *StoredGraph) Has(s, p, o string) bool {
	if sg.Err() != nil {
		return false
	}
	key := corpusPrefix(sg.c.ID, idxSPO)
	var ok bool
	for _, t := range []string{s, p, o} {
		if key, ok = appendTermRead(key, t, sg.st.dict); !ok {
			return false
		}
	}
	var compared int64
	sg.st.mu.RLock()
	segs := sg.st.segs
	sg.st.mu.RUnlock()
	found := false
	for _, seg := range segs {
		sg.segsScanned.Inc()
		_, hit, err := seg.get(key, &compared)
		if err != nil {
			sg.fail(err)
			break
		}
		if hit {
			found = true
			break
		}
	}
	sg.keysCmp.Add(compared)
	return found
}

// distinctFirst collects the distinct leading term of every key in an
// index — the cheap way to enumerate S_G (SPO), P_G (POS), O_G (OSP),
// since keys sharing a leading term are contiguous.
func (sg *StoredGraph) distinctFirst(idx byte) []string {
	var out []string
	var lastEnc []byte
	sg.scan(idx, nil, func(key []byte, _ int) bool {
		enc := key[keyBase : keyBase+encodedTermSize]
		if lastEnc != nil && string(lastEnc) == string(enc) {
			return true
		}
		lastEnc = append(lastEnc[:0], enc...)
		term, err := decodeTerm(enc, sg.st.dict)
		if err != nil {
			sg.fail(err)
			return false
		}
		out = append(out, term)
		return true
	})
	if sg.Err() != nil {
		return nil
	}
	// Contiguity holds per segment, not across segments, and hashed
	// terms do not sort in term order: dedup and sort the small result.
	seen := make(map[string]bool, len(out))
	uniq := out[:0]
	for _, t := range out {
		if !seen[t] {
			seen[t] = true
			uniq = append(uniq, t)
		}
	}
	sort.Strings(uniq)
	return uniq
}

// Subjects returns the set S_G, sorted.
func (sg *StoredGraph) Subjects() []string { return sg.distinctFirst(idxSPO) }

// Predicates returns the set P_G, sorted.
func (sg *StoredGraph) Predicates() []string { return sg.distinctFirst(idxPOS) }

// Objects returns the set O_G, sorted.
func (sg *StoredGraph) Objects() []string { return sg.distinctFirst(idxOSP) }

// Match returns all triples matching the pattern (empty strings are
// wildcards), dispatching to the index whose key order makes the bound
// terms one contiguous prefix.
func (sg *StoredGraph) Match(s, p, o string) []rdf.Triple {
	var out []rdf.Triple
	keep := func(t rdf.Triple) bool {
		if (s == "" || t.S == s) && (p == "" || t.P == p) && (o == "" || t.O == o) {
			out = append(out, t)
		}
		return true
	}
	switch {
	case s != "" && p != "":
		sg.scan(idxSPO, []string{s, p}, func(key []byte, _ int) bool {
			ts, tp, to, ok := sg.decode3(key, keyBase)
			return ok && keep(rdf.Triple{S: ts, P: tp, O: to})
		})
	case p != "" && o != "":
		sg.scan(idxPOS, []string{p, o}, func(key []byte, _ int) bool {
			tp, to, ts, ok := sg.decode3(key, keyBase)
			return ok && keep(rdf.Triple{S: ts, P: tp, O: to})
		})
	case s != "":
		sg.scan(idxSPO, []string{s}, func(key []byte, _ int) bool {
			ts, tp, to, ok := sg.decode3(key, keyBase)
			return ok && keep(rdf.Triple{S: ts, P: tp, O: to})
		})
	case o != "":
		sg.scan(idxOSP, []string{o}, func(key []byte, _ int) bool {
			to, ts, tp, ok := sg.decode3(key, keyBase)
			return ok && keep(rdf.Triple{S: ts, P: tp, O: to})
		})
	case p != "":
		sg.scan(idxPOS, []string{p}, func(key []byte, _ int) bool {
			tp, to, ts, ok := sg.decode3(key, keyBase)
			return ok && keep(rdf.Triple{S: ts, P: tp, O: to})
		})
	default:
		return sg.Triples()
	}
	if sg.Err() != nil {
		return nil
	}
	return out
}

// ObjectsOf returns the objects reachable from s via p (SP range on
// the SPO index).
func (sg *StoredGraph) ObjectsOf(s, p string) []string {
	var out []string
	sg.scan(idxSPO, []string{s, p}, func(key []byte, prefixLen int) bool {
		o, err := decodeTerm(key[prefixLen:], sg.st.dict)
		if err != nil {
			sg.fail(err)
			return false
		}
		out = append(out, o)
		return true
	})
	if sg.Err() != nil {
		return nil
	}
	return out
}

// SubjectsOf returns the subjects reaching o via p (PO range on the
// POS index).
func (sg *StoredGraph) SubjectsOf(p, o string) []string {
	var out []string
	sg.scan(idxPOS, []string{p, o}, func(key []byte, prefixLen int) bool {
		s, err := decodeTerm(key[prefixLen:], sg.st.dict)
		if err != nil {
			sg.fail(err)
			return false
		}
		out = append(out, s)
		return true
	})
	if sg.Err() != nil {
		return nil
	}
	return out
}

// OutEdges returns the triples with subject s (S range on SPO).
func (sg *StoredGraph) OutEdges(s string) []rdf.Triple { return sg.Match(s, "", "") }

// InEdges returns the triples with object o (O range on OSP).
func (sg *StoredGraph) InEdges(o string) []rdf.Triple { return sg.Match("", "", o) }
