package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/sparql"
)

// TestRunLogStudyParallelMatchesSequential is the acceptance property of
// the parallel pipeline: for the same Config, RenderAll over the parallel
// reports is byte-identical to the sequential run at every worker count.
func TestRunLogStudyParallelMatchesSequential(t *testing.T) {
	cfg := Config{Seed: 1, ScaleDiv: 500000}
	var want bytes.Buffer
	if err := RenderAll(&want, RunLogStudySequential(cfg)); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		cfg.Workers = workers
		var got bytes.Buffer
		if err := RenderAll(&got, RunLogStudyParallel(cfg)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("workers=%d: parallel RenderAll output differs from sequential", workers)
		}
	}
}

// TestRunLogStudyParallelConcurrent drives the worker pool from several
// goroutines at once; under `go test -race` this doubles as the data-race
// check for the shard workers and the merge.
func TestRunLogStudyParallelConcurrent(t *testing.T) {
	cfg := Config{Seed: 5, ScaleDiv: 2000000, Workers: 4}
	var wg sync.WaitGroup
	results := make([][]*SourceReport, 3)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = RunLogStudyParallel(cfg)
		}(i)
	}
	wg.Wait()
	var first bytes.Buffer
	if err := RenderAll(&first, results[0]); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		var b bytes.Buffer
		if err := RenderAll(&b, results[i]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b.Bytes(), first.Bytes()) {
			t.Errorf("run %d: concurrent runs disagree", i)
		}
	}
}

// TestConfigSourceSeedReproducible pins the seeding contract: the default
// stride matches the historical RunLogStudy stride, and a single source's
// shard can be regenerated in isolation.
func TestConfigSourceSeedReproducible(t *testing.T) {
	cfg := Config{Seed: 42, ScaleDiv: 2000000}
	if got, want := cfg.SourceSeed(3), int64(42+3*7919); got != want {
		t.Errorf("SourceSeed(3) = %d, want %d (historical stride)", got, want)
	}
	if s := (Config{Seed: 42, SeedStride: 13}).SourceSeed(3); s != 42+3*13 {
		t.Errorf("custom stride ignored: %d", s)
	}
	// shard 2 of 5 of source 13 regenerates identically
	stream := cfg.SourceStream(13)
	shard := ShardSplit(stream, 5)[2]
	again := ShardSplit(cfg.SourceStream(13), 5)[2]
	if len(shard) == 0 || len(shard) != len(again) {
		t.Fatalf("shard lengths: %d vs %d", len(shard), len(again))
	}
	for i := range shard {
		if shard[i] != again[i] {
			t.Fatalf("shard query %d differs", i)
		}
	}
}

// failWriter fails after n bytes, exercising the render error path.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if len(p) > f.left {
		n := f.left
		f.left = 0
		return n, errShort
	}
	f.left -= len(p)
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write target" }

// TestRenderAllPropagatesWriteErrors: a failing writer must surface the
// error instead of being silently discarded.
func TestRenderAllPropagatesWriteErrors(t *testing.T) {
	a := NewAnalyzer("x")
	a.Ingest("SELECT ?s WHERE { ?s ?p ?o }")
	reports := []*SourceReport{a.Report}
	if err := RenderAll(&bytes.Buffer{}, reports); err != nil {
		t.Fatalf("buffer render failed: %v", err)
	}
	for _, budget := range []int{0, 7, 300} {
		if err := RenderAll(&failWriter{left: budget}, reports); err == nil {
			t.Errorf("budget=%d: write error swallowed", budget)
		}
	}
	if err := RenderTable2(&failWriter{}, reports); err == nil {
		t.Error("RenderTable2 swallowed the write error")
	}
	if err := RenderSection94(&failWriter{}, a.Report); err == nil {
		t.Error("RenderSection94 swallowed the write error")
	}
}

// TestPPCacheConsistent checks the memoized property-path classification
// against the uncached classifiers on real generated paths.
func TestPPCacheConsistent(t *testing.T) {
	a := NewAnalyzer("cache")
	for _, raw := range []string{
		"SELECT ?s WHERE { ?s wdt:P31/wdt:P279* wd:Q839954 }",
		"SELECT ?s WHERE { ?s wdt:P279* ?o }",
		"SELECT ?s WHERE { ?s wdt:P31/wdt:P279* wd:Q5 }", // same path shape again
	} {
		q, err := sparql.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		for _, pp := range q.PropertyPaths() {
			got := a.classifyPP(pp)
			cached := a.classifyPP(pp)
			if got != cached {
				t.Errorf("cache changed the answer for %s", pp)
			}
			if got.row == "" {
				t.Errorf("empty Table 8 row for %s", pp)
			}
		}
	}
	if len(a.ppCache) == 0 {
		t.Error("cache never populated")
	}
}
