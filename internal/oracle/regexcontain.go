package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/automata"
	"repro/internal/chare"
	"repro/internal/regex"
)

// regexContainment cross-checks the automata-theoretic containment
// decision against randomized counterexample search over sampled words,
// metamorphic identities, and the specialized CHARE deciders.
type regexContainment struct{}

func (regexContainment) Name() string { return "regex-containment" }

func (regexContainment) Description() string {
	return "automata.Contains vs sampled-word refutation, Simplify language preservation, and chare.Contains"
}

func (o regexContainment) Trial(r *rand.Rand) *Divergence {
	g := regex.DefaultGen([]string{"a", "b"})
	g.MaxDepth = 3
	g.MaxFanout = 3
	e1, e2 := g.Random(r), g.Random(r)
	if posCount(e1) > 8 || posCount(e2) > 8 {
		// containment determinizes; skip oversized instances
		return nil
	}

	c := automata.Contains(e1, e2)
	for i := 0; i < 8; i++ {
		w, ok := regex.RandomWord(e1, r)
		if !ok {
			break
		}
		if !regex.Matches(e1, w) {
			return shrinkContainDivergence(e1, e2, w,
				func(a, b *regex.Expr, v []string) bool { return !regex.Matches(a, v) },
				"RandomWord sampled a word from L(e1) that regex.Matches rejects")
		}
		if c && !regex.Matches(e2, w) {
			return shrinkContainDivergence(e1, e2, w,
				func(a, b *regex.Expr, v []string) bool {
					return automata.Contains(a, b) && regex.Matches(a, v) && !regex.Matches(b, v)
				},
				"automata.Contains(e1,e2)=true refuted by a sampled word of L(e1) outside L(e2)")
		}
	}

	// metamorphic identities of the containment decision
	if !automata.Contains(e1, e1) {
		return &Divergence{
			Input:  fmt.Sprintf("e1=%s", e1),
			Detail: "automata.Contains(e1,e1)=false (reflexivity violated)",
		}
	}
	if !automata.Contains(e1, regex.NewUnion(e1.Clone(), e2.Clone())) {
		e1s := shrinkExpr(e1, func(c *regex.Expr) bool {
			return !automata.Contains(c, regex.NewUnion(c.Clone(), e2.Clone()))
		})
		return &Divergence{
			Input:  fmt.Sprintf("e1=%s e2=%s", e1s, e2),
			Detail: "automata.Contains(e1, e1|e2)=false (union upper bound violated)",
		}
	}
	if s := e1.Simplify(); !automata.Equivalent(e1, s) {
		e1s := shrinkExpr(e1, func(c *regex.Expr) bool {
			return !automata.Equivalent(c, c.Simplify())
		})
		return &Divergence{
			Input:  fmt.Sprintf("e1=%s simplified=%s", e1s, e1s.Simplify()),
			Detail: "Simplify changed the language (automata.Equivalent(e, e.Simplify())=false)",
		}
	}

	// specialized CHARE deciders vs the general automata construction
	c1 := chare.RandomCHARE(r, []string{"a", "b", "c"}, 1+r.Intn(3))
	c2 := chare.RandomCHARE(r, []string{"a", "b", "c"}, 1+r.Intn(3))
	got, method := chare.Contains(c1, c2)
	want := automata.Contains(c1.Expr(), c2.Expr())
	if got != want {
		c1, c2 = shrinkCHAREPair(c1, c2)
		got, method = chare.Contains(c1, c2)
		want = automata.Contains(c1.Expr(), c2.Expr())
		return &Divergence{
			Input: fmt.Sprintf("c1=%s c2=%s", c1, c2),
			Detail: fmt.Sprintf("chare.Contains=%v (method %v) but automata.Contains=%v",
				got, method, want),
		}
	}
	return nil
}

func shrinkContainDivergence(e1, e2 *regex.Expr, w []string,
	diverges func(*regex.Expr, *regex.Expr, []string) bool, detail string) *Divergence {
	e1 = shrinkExpr(e1, func(c *regex.Expr) bool { return diverges(c, e2, w) })
	e2 = shrinkExpr(e2, func(c *regex.Expr) bool { return diverges(e1, c, w) })
	w = shrinkWord(w, func(c []string) bool { return diverges(e1, e2, c) })
	return &Divergence{
		Input:  fmt.Sprintf("e1=%s e2=%s word=%q", e1, e2, strings.Join(w, " ")),
		Detail: detail,
	}
}

// shrinkCHAREPair drops factors from either CHARE while the specialized
// and general deciders still disagree.
func shrinkCHAREPair(c1, c2 *chare.CHARE) (*chare.CHARE, *chare.CHARE) {
	disagree := func(a, b *chare.CHARE) bool {
		if len(a.Factors) == 0 || len(b.Factors) == 0 {
			return false
		}
		got, _ := chare.Contains(a, b)
		return got != automata.Contains(a.Expr(), b.Expr())
	}
	c1.Factors = shrinkList(c1.Factors, func(fs []chare.Factor) bool {
		return disagree(&chare.CHARE{Factors: fs}, c2)
	})
	c2.Factors = shrinkList(c2.Factors, func(fs []chare.Factor) bool {
		return disagree(c1, &chare.CHARE{Factors: fs})
	})
	return c1, c2
}
