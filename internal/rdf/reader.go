package rdf

// GraphReader is the read surface of an RDF graph: everything the
// Section 7.1 analyses (ComputeStats), the property-path evaluators,
// and the SPARQL-algebra evaluator need. *Graph satisfies it with its
// in-memory indexes; store.StoredGraph satisfies it with SPO/POS/OSP
// range scans over committed segments, so every analysis runs
// unchanged against either backend.
//
// Contract, matching *Graph's documented behavior:
//
//   - Triples returns each triple exactly once (RDF set semantics).
//     Iteration order is unspecified — *Graph yields insertion order,
//     a store-backed reader yields key order — so analyses must be
//     order-independent (ComputeStats aggregates and sorts; the
//     evaluators return sorted node sets).
//   - Subjects, Predicates, Objects are sorted and duplicate-free.
//   - Match treats empty strings as wildcards; ObjectsOf(s, p) is the
//     SP range, SubjectsOf(p, o) the PO range, OutEdges the S range,
//     InEdges the O range. Result order is unspecified; multiplicity
//     is one entry per matching triple.
type GraphReader interface {
	Len() int
	Triples() []Triple
	Has(s, p, o string) bool
	Subjects() []string
	Predicates() []string
	Objects() []string
	Match(s, p, o string) []Triple
	ObjectsOf(s, p string) []string
	SubjectsOf(p, o string) []string
	OutEdges(s string) []Triple
	InEdges(o string) []Triple
}

var _ GraphReader = (*Graph)(nil)
