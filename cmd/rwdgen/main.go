// Command rwdgen emits synthetic corpora to stdout or a directory: SPARQL
// query logs (one query per line, escaped), XML document corpora, DTD
// corpora, JSON Schema corpora, and XPath corpora. These are the
// substitutes for the gated real-world inputs of the paper's studies; feed
// them back through rwdanalyze to reproduce the tables.
//
// Usage:
//
//	rwdgen -kind sparql -source DBpedia17 -n 1000 [-seed 1]
//	rwdgen -kind xml -n 100
//	rwdgen -kind dtd -n 20
//	rwdgen -kind jsonschema -n 20
//	rwdgen -kind xpath -n 100
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/loggen"
	"repro/internal/schemastudy"
	"repro/internal/xmllite"
	"repro/internal/xpath"
)

func main() {
	kind := flag.String("kind", "sparql", "corpus kind: sparql|xml|dtd|jsonschema|xpath")
	source := flag.String("source", "WikiRobot/OK", "log source name for -kind sparql (see Table 2)")
	n := flag.Int("n", 100, "number of items")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	r := rand.New(rand.NewSource(*seed))

	switch *kind {
	case "sparql":
		var src *loggen.Source
		for _, s := range loggen.Sources() {
			if s.Name == *source {
				tmp := s
				src = &tmp
				break
			}
		}
		if src == nil {
			var names []string
			for _, s := range loggen.Sources() {
				names = append(names, s.Name)
			}
			fmt.Fprintf(os.Stderr, "unknown source %q; available: %s\n", *source, strings.Join(names, ", "))
			os.Exit(2)
		}
		g := loggen.NewGen(*src, *seed)
		for i := 0; i < *n; i++ {
			// one query per line: escape newlines
			q := strings.ReplaceAll(g.Next(), "\n", " ")
			fmt.Fprintln(w, q)
		}
	case "xml":
		g := xmllite.DefaultCorpusGen()
		for i := 0; i < *n; i++ {
			fmt.Fprintln(w, strings.ReplaceAll(g.Document(r), "\n", " "))
		}
	case "dtd":
		g := schemastudy.DefaultDTDGen()
		for i := 0; i < *n; i++ {
			fmt.Fprintln(w, strings.ReplaceAll(g.DTD(r), "\n", " "))
		}
	case "jsonschema":
		g := schemastudy.DefaultJSONSchemaGen()
		for i := 0; i < *n; i++ {
			fmt.Fprintln(w, strings.ReplaceAll(g.Schema(r), "\n", " "))
		}
	case "xpath":
		g := xpath.DefaultGen()
		for i := 0; i < *n; i++ {
			fmt.Fprintln(w, g.Query(r))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
