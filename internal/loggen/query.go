package loggen

import (
	"fmt"
	"strings"
)

// Vocabularies. Wikidata-style predicates carry the wdt: prefix the
// Section 9 examples use; the DBpedia group uses dbo:/foaf:/rdfs:.
var (
	wikidataPreds = []string{
		"wdt:P31", "wdt:P279", "wdt:P625", "wdt:P17", "wdt:P131",
		"wdt:P106", "wdt:P569", "wdt:P570", "wdt:P21", "rdfs:label",
	}
	dbpediaPreds = []string{
		"rdf:type", "rdfs:label", "foaf:name", "dbo:birthPlace",
		"dbo:country", "dbo:population", "dbo:author", "dbo:genre",
		"dct:subject", "foaf:homepage",
	}
	wikidataConsts = []string{
		"wd:Q5", "wd:Q146", "wd:Q839954", "wd:Q64", "wd:Q30", "wd:Q90",
	}
	dbpediaConsts = []string{
		"dbr:Berlin", "dbr:Paris", "dbo:Person", "dbo:City", "foaf:Person",
		"dbr:Go_programming_language",
	}
)

// table8Weights are the UNIQUE-column weights of Table 8 for robotic
// Wikidata property paths (aggregated rows). Fresh queries realize the
// Unique distribution; the weighted replay bag in loggen.go replicates the
// iterated types heavily, which reconstitutes the Valid column (a* is
// 9.87% Unique but 50.48% Valid).
var table8Weights = []struct {
	weight float64
	rep    int // replay weight (reconstitutes the Valid column)
	make   func(g *Gen) string
}{
	{9.87, 44, func(g *Gen) string { return g.pred() + "*" }},
	{14.0, 4, func(g *Gen) string { return g.pred() + "/" + g.pred() + "*" }}, // ab*
	{5.96, 4, func(g *Gen) string { return g.pred() + "+" }},                  // aggregated with ab* in Table 8
	{0.48, 8, func(g *Gen) string { return g.pred() + "/" + g.pred() + "*/" + g.pred() + "*" }},
	{0.37, 6, func(g *Gen) string { return "(" + g.pred() + "|" + g.pred() + ")*" }},
	{0.01, 20, func(g *Gen) string { return g.pred() + "/" + g.pred() + "*/" + g.pred() }},
	{0.01, 20, func(g *Gen) string { return g.pred() + "*/" + g.pred() + "*" }},
	{0.03, 4, func(g *Gen) string { return g.pred() + "/" + g.pred() + "/" + g.pred() + "*" }},
	{0.09, 2, func(g *Gen) string { return g.pred() + "?/" + g.pred() + "*" }},
	{0.01, 4, func(g *Gen) string { return "(" + g.pred() + "|" + g.pred() + ")+" }},
	{66.41, 2, func(g *Gen) string { // a1/…/ak sequences, k ≥ 2
		k := 2 + g.r.Intn(3)
		parts := make([]string, k)
		for i := range parts {
			parts[i] = g.pred()
		}
		return strings.Join(parts, "/")
	}},
	{2.70, 8, func(g *Gen) string { return "(" + g.pred() + "|" + g.pred() + ")" }},
	{0.01, 20, func(g *Gen) string { return "(" + g.pred() + "|" + g.pred() + ")?" }},
	{0.04, 2, func(g *Gen) string { return g.pred() + "/" + g.pred() + "?/" + g.pred() + "?" }},
	{0.01, 20, func(g *Gen) string { return "^" + g.pred() }},
	{0.01, 4, func(g *Gen) string { return g.pred() + "/" + g.pred() + "/" + g.pred() + "?" }},
}

func (g *Gen) pred() string {
	if g.Source.Wikidata {
		return wikidataPreds[g.r.Intn(len(wikidataPreds))]
	}
	return dbpediaPreds[g.r.Intn(len(dbpediaPreds))]
}

func (g *Gen) constant() string {
	if g.Source.Wikidata {
		return wikidataConsts[g.r.Intn(len(wikidataConsts))]
	}
	return dbpediaConsts[g.r.Intn(len(dbpediaConsts))]
}

// samplePPType draws a Table 8 type index; a path-using query draws ONE
// type and uses it for all its paths (robotic queries are templated, and
// mixing types per query would dilute the Valid-column shares).
func (g *Gen) samplePPType() int {
	total := 0.0
	for _, w := range table8Weights {
		total += w.weight
	}
	x := g.r.Float64() * total
	for i, w := range table8Weights {
		x -= w.weight
		if x <= 0 {
			return i
		}
	}
	return 0
}

func (g *Gen) propertyPath(typeIdx int) string {
	w := table8Weights[typeIdx]
	g.freshWeight = w.rep
	return w.make(g)
}

// sampleTripleCount draws the number of triple patterns per Figure 3.
func (g *Gen) sampleTripleCount() int {
	if g.r.Float64() < g.Source.BigQueryRate {
		return 100 + g.r.Intn(131)
	}
	w := g.Source.TripleWeights
	total := 0.0
	for _, x := range w {
		total += x
	}
	x := g.r.Float64() * total
	for i, wx := range w {
		x -= wx
		if x <= 0 {
			if i == len(w)-1 {
				return 11 + g.r.Intn(8) // the 11+ bucket
			}
			return i
		}
	}
	return 1
}

// shape identifiers for multi-triple queries, weighted to reproduce the
// cumulative Table 7 (chains and stars dominate; trees rare; treewidth-2
// cycles rarer; a trace of treewidth-3 cliques).
type shape int

const (
	shapeChain shape = iota
	shapeStar
	shapeTree
	shapeCycle  // treewidth 2
	shapeClique // K4: treewidth 3
)

func (g *Gen) sampleShape(n int) shape {
	if n >= 100 {
		// the big templated queries in the logs are star-shaped
		return shapeStar
	}
	x := g.r.Float64()
	switch {
	case x < 0.62:
		return shapeChain
	case x < 0.955:
		return shapeStar
	case x < 0.985:
		return shapeTree
	case n >= 3 && x < 0.9995:
		return shapeCycle
	case n >= 6:
		return shapeClique
	default:
		return shapeTree
	}
}

// fresh builds a new valid query string.
func (g *Gen) fresh() string {
	n := g.sampleTripleCount()
	feat := g.Source.Feat
	r := g.r

	// property paths are a per-QUERY decision (Table 3 counts queries,
	// not triples); real path-using robotic queries are dominated by the
	// And,2RPQ operator set (Table 5), so a path query gets at least two
	// triple patterns most of the time
	usePP := r.Float64() < feat.PropertyPath
	if usePP && n < 2 && r.Float64() < 0.7 {
		n = 2 + r.Intn(2)
	}

	var b strings.Builder
	// query form: mostly SELECT; a few ASK/CONSTRUCT/DESCRIBE
	form := "SELECT"
	switch x := r.Float64(); {
	case x < 0.03:
		form = "ASK"
	case x < 0.05:
		form = "CONSTRUCT"
	case x < 0.055 && !g.Source.Wikidata:
		form = "DESCRIBE"
	}
	if form == "DESCRIBE" {
		fmt.Fprintf(&b, "DESCRIBE %s", g.constant())
		return b.String()
	}

	useGroupBy := r.Float64() < feat.GroupBy
	agg := ""
	if useGroupBy && r.Float64() < 0.15 {
		// most GROUP BY queries project plain variables; aggregates in the
		// SELECT clause are much rarer than grouping itself (Table 3:
		// Group By 2.83% vs Count 0.29% in DBpedia–BritM)
		agg = []string{"COUNT", "COUNT", "COUNT", "AVG", "MIN", "MAX", "SUM"}[r.Intn(7)]
	}

	switch form {
	case "SELECT":
		b.WriteString("SELECT ")
		if r.Float64() < feat.Distinct {
			b.WriteString("DISTINCT ")
		}
		if agg != "" {
			fmt.Fprintf(&b, "?v0 (%s(?v1) AS ?agg) ", agg)
		} else if useGroupBy {
			b.WriteString("?v0 ")
		} else if r.Float64() < 0.3 {
			b.WriteString("* ")
		} else {
			k := 1 + r.Intn(3)
			for i := 0; i < k; i++ {
				fmt.Fprintf(&b, "?v%d ", i)
			}
		}
	case "ASK":
		b.WriteString("ASK ")
	case "CONSTRUCT":
		b.WriteString("CONSTRUCT { ?v0 rdf:type ?v1 } ")
	}
	b.WriteString("WHERE { ")
	g.writeBody(&b, n, usePP, feat)
	b.WriteString("}")

	if useGroupBy {
		b.WriteString(" GROUP BY ?v0")
		if agg != "" && r.Float64() < feat.Having*20 {
			fmt.Fprintf(&b, " HAVING (%s(?v1) > %d)", agg, 1+r.Intn(9))
		}
	}
	if r.Float64() < feat.OrderBy {
		b.WriteString(" ORDER BY ?v0")
	}
	if r.Float64() < feat.Limit {
		fmt.Fprintf(&b, " LIMIT %d", []int{10, 100, 1000}[r.Intn(3)])
		if r.Float64() < feat.Offset/feat.Limit {
			fmt.Fprintf(&b, " OFFSET %d", 10*r.Intn(50))
		}
	}
	return b.String()
}

// probGE2 returns the probability that a query of this source has ≥ 2
// triple patterns; OPTIONAL and UNION need at least two, so their
// per-query marginals are rescaled by it.
func (g *Gen) probGE2() float64 {
	w := g.Source.TripleWeights
	total, ge2 := 0.0, 0.0
	for i, x := range w {
		total += x
		if i >= 2 {
			ge2 += x
		}
	}
	if total == 0 || ge2 == 0 {
		return 1
	}
	return ge2 / total
}

func boost(p, pGE2 float64) float64 {
	q := p / pGE2
	if q > 0.9 {
		return 0.9
	}
	return q
}

// writeBody writes the triples and inner features of the WHERE group.
func (g *Gen) writeBody(b *strings.Builder, n int, usePP bool, feat FeatureRates) {
	r := g.r
	pGE2 := g.probGE2()
	if r.Float64() < feat.Values {
		fmt.Fprintf(b, "VALUES ?v0 { %s %s } ", g.constant(), g.constant())
	}
	triples := g.buildTriples(n, usePP, feat)
	// OPTIONAL and UNION are chosen independently (the paper's marginals —
	// 33%/26% in DBpedia–BritM against only 48% of queries with ≥ 2
	// triples — force them to overlap); with both, the OPTIONAL part nests
	// inside the second UNION branch.
	useUnion := n >= 2 && r.Float64() < boost(feat.Union, pGE2)
	useOpt := n >= 2 && r.Float64() < boost(feat.Optional, pGE2)
	if useUnion {
		k := 1 + r.Intn(len(triples)-1)
		b.WriteString("{ ")
		for _, t := range triples[:k] {
			b.WriteString(t)
			b.WriteString(" . ")
		}
		b.WriteString("} UNION { ")
		branch := triples[k:]
		nOpt := 0
		if useOpt {
			nOpt = 1
		}
		for _, t := range branch[:len(branch)-nOpt] {
			b.WriteString(t)
			b.WriteString(" . ")
		}
		for _, t := range branch[len(branch)-nOpt:] {
			fmt.Fprintf(b, "OPTIONAL { %s } ", t)
		}
		b.WriteString("} ")
	} else {
		nOpt := 0
		if useOpt {
			nOpt = 1 + r.Intn(2)
			if nOpt >= len(triples) {
				nOpt = len(triples) - 1
			}
		}
		main := triples[:len(triples)-nOpt]
		opts := triples[len(triples)-nOpt:]
		if r.Float64() < feat.Graph {
			fmt.Fprintf(b, "GRAPH <http://graph.example/%d> { ", r.Intn(4))
			for _, t := range main {
				b.WriteString(t)
				b.WriteString(" . ")
			}
			b.WriteString("} ")
		} else {
			for _, t := range main {
				b.WriteString(t)
				b.WriteString(" . ")
			}
		}
		for _, t := range opts {
			fmt.Fprintf(b, "OPTIONAL { %s } ", t)
		}
	}
	if r.Float64() < feat.Filter {
		g.writeFilter(b)
	}
	if r.Float64() < feat.NotExists {
		fmt.Fprintf(b, "FILTER NOT EXISTS { ?v0 %s %s } ", g.pred(), g.constant())
	}
	if r.Float64() < feat.Exists {
		fmt.Fprintf(b, "FILTER EXISTS { ?v0 %s ?e } ", g.pred())
	}
	if r.Float64() < feat.Minus {
		fmt.Fprintf(b, "MINUS { ?v0 %s %s } ", g.pred(), g.constant())
	}
	if r.Float64() < feat.Service {
		b.WriteString(`SERVICE wikibase:label { bd:serviceParam wikibase:language "en" } `)
	}
}

func (g *Gen) writeFilter(b *strings.Builder) {
	r := g.r
	switch x := r.Float64(); {
	case x < 0.5: // unary (safe)
		fmt.Fprintf(b, "FILTER(lang(?v0) = \"en\") ")
	case x < 0.7: // unary comparison (safe)
		fmt.Fprintf(b, "FILTER(?v%d > %d) ", r.Intn(2), r.Intn(100))
	case x < 0.8: // variable equality (safe)
		b.WriteString("FILTER(?v0 = ?v1) ")
	case x < 0.93: // binary non-equality (simple, not safe)
		b.WriteString("FILTER(?v0 != ?v1) ")
	default: // ternary (not simple)
		b.WriteString("FILTER(?v0 = ?v1 && ?v1 = ?v2) ")
	}
}

// buildTriples constructs n triple-pattern strings in the drawn shape.
// Objects are constants with substantial probability — which is what makes
// the "without constants" half of Table 7 collapse to mostly edgeless
// graphs.
func (g *Gen) buildTriples(n int, usePP bool, feat FeatureRates) []string {
	r := g.r
	if n == 0 {
		return nil
	}
	ppLeft := 0
	ppType := 0
	if usePP {
		ppType = g.samplePPType()
		ppLeft = 1 + r.Intn(2)
		if ppLeft > n {
			ppLeft = n
		}
	}
	remaining := n
	predOrPath := func() string {
		defer func() { remaining-- }()
		if ppLeft > 0 && (ppLeft >= remaining || r.Float64() < 0.7) {
			ppLeft--
			return g.propertyPath(ppType)
		}
		if r.Float64() < 0.06 {
			return fmt.Sprintf("?p%d", r.Intn(3))
		}
		return g.pred()
	}
	object := func(varIdx int) string {
		if r.Float64() < 0.55 {
			if r.Float64() < 0.3 {
				return fmt.Sprintf("\"literal%d\"", r.Intn(50))
			}
			return g.constant()
		}
		return fmt.Sprintf("?v%d", varIdx)
	}
	var out []string
	switch g.sampleShape(n) {
	case shapeChain:
		for i := 0; i < n; i++ {
			o := fmt.Sprintf("?v%d", i+1)
			if i == n-1 && r.Float64() < 0.5 {
				o = object(i + 1)
			}
			out = append(out, fmt.Sprintf("?v%d %s %s", i, predOrPath(), o))
		}
	case shapeStar:
		for i := 0; i < n; i++ {
			out = append(out, fmt.Sprintf("?v0 %s %s", predOrPath(), object(i+1)))
		}
	case shapeTree:
		for i := 0; i < n; i++ {
			parent := 0
			if i > 0 {
				parent = r.Intn(i)
			}
			out = append(out, fmt.Sprintf("?v%d %s ?v%d", parent, predOrPath(), i+1))
		}
	case shapeCycle:
		for i := 0; i < n; i++ {
			out = append(out, fmt.Sprintf("?v%d %s ?v%d", i, predOrPath(), (i+1)%n))
		}
	case shapeClique:
		// K4 on variables v0..v3, then chain the rest
		idx := 0
		for i := 0; i < 4 && idx < n; i++ {
			for j := i + 1; j < 4 && idx < n; j++ {
				out = append(out, fmt.Sprintf("?v%d %s ?v%d", i, g.pred(), j))
				idx++
			}
		}
		for ; idx < n; idx++ {
			out = append(out, fmt.Sprintf("?v%d %s ?v%d", idx, g.pred(), idx+1))
		}
	}
	return out
}

// Corpus generates the full scaled corpus for all sources.
func Corpus(seed int64, scaleDiv int) map[string][]string {
	out := map[string][]string{}
	for i, s := range Sources() {
		g := NewGen(s, seed+int64(i)*7919)
		n := g.Count(scaleDiv)
		qs := make([]string, n)
		for j := range qs {
			qs[j] = g.Next()
		}
		out[s.Name] = qs
	}
	return out
}
