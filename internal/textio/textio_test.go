package textio

import (
	"errors"
	"strings"
	"testing"
)

func TestReadLinesBasic(t *testing.T) {
	lines, err := ReadLines(strings.NewReader("a\n\nbb\nccc"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "bb", "ccc"}
	if len(lines) != len(want) {
		t.Fatalf("got %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("got %v, want %v", lines, want)
		}
	}
}

func TestReadLinesEmpty(t *testing.T) {
	lines, err := ReadLines(strings.NewReader(""))
	if err != nil || len(lines) != 0 {
		t.Fatalf("got %v, %v", lines, err)
	}
}

func TestReadLinesTooLongReportsLineNumber(t *testing.T) {
	in := "short\nok\n" + strings.Repeat("x", 2000) + "\nafter\n"
	lines, err := ReadLinesLimit(strings.NewReader(in), 1000)
	var tooLong *LineTooLongError
	if !errors.As(err, &tooLong) {
		t.Fatalf("want LineTooLongError, got %v", err)
	}
	if tooLong.Line != 3 {
		t.Fatalf("line = %d, want 3", tooLong.Line)
	}
	if tooLong.Limit != 1000 {
		t.Fatalf("limit = %d, want 1000", tooLong.Limit)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error message %q lacks line number", err)
	}
	// lines before the failure are preserved
	if len(lines) != 2 || lines[0] != "short" || lines[1] != "ok" {
		t.Fatalf("prefix lines = %v", lines)
	}
}

func TestReadLinesLargeLineWithinDefault(t *testing.T) {
	// a 2 MiB line exceeds the old hard-coded 1 MiB cap but must pass now
	big := strings.Repeat("y", 2<<20)
	lines, err := ReadLines(strings.NewReader(big + "\nz\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || len(lines[0]) != 2<<20 || lines[1] != "z" {
		t.Fatalf("got %d lines, first len %d", len(lines), len(lines[0]))
	}
}
