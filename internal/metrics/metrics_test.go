package metrics

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterVecText(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("requests_total", "Requests by endpoint and code.", "endpoint", "code")
	v.With("containment", "200").Add(3)
	v.With("containment", "504").Inc()
	out := render(t, r)
	for _, want := range []string{
		"# HELP requests_total Requests by endpoint and code.",
		"# TYPE requests_total counter",
		`requests_total{endpoint="containment",code="200"} 3`,
		`requests_total{endpoint="containment",code="504"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight", "In-flight requests.")
	g.Add(2)
	g.Add(-1)
	r.GaugeFunc("cache_size", "Entries.", func() float64 { return 42 })
	out := render(t, r)
	if !strings.Contains(out, "inflight 1\n") {
		t.Fatalf("gauge missing:\n%s", out)
	}
	if !strings.Contains(out, "cache_size 42\n") {
		t.Fatalf("gauge func missing:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE inflight gauge") {
		t.Fatalf("gauge type missing:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("latency_seconds", "Latency.", []float64{0.1, 1, 10}, "endpoint")
	obs := h.With("x")
	obs.Observe(0.05)
	obs.Observe(0.5)
	obs.Observe(0.1) // boundary: belongs to le="0.1"
	obs.Observe(100) // +Inf only
	out := render(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{endpoint="x",le="0.1"} 2`,
		`latency_seconds_bucket{endpoint="x",le="1"} 3`,
		`latency_seconds_bucket{endpoint="x",le="10"} 3`,
		`latency_seconds_bucket{endpoint="x",le="+Inf"} 4`,
		`latency_seconds_count{endpoint="x"} 4`,
		`latency_seconds_sum{endpoint="x"} 100.65`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate registration")
		}
	}()
	r.Counter("dup", "y")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "x", "l")
	h := r.Histogram("h", "x", DefBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.With("a").Inc()
				v.With("b").Inc()
				h.Observe(float64(j) / 1000)
			}
		}(i)
	}
	wg.Wait()
	if got := v.With("a").Value(); got != 8000 {
		t.Fatalf("counter a = %d, want 8000", got)
	}
	out := render(t, r)
	if !strings.Contains(out, "h_count 8000") {
		t.Fatalf("histogram count wrong:\n%s", out)
	}
}
