package oracle

import (
	"repro/internal/propertypath"
	"repro/internal/regex"
	"repro/internal/tree"
)

// The shrinkers greedily replace a failing input by the first strictly
// smaller candidate that still diverges, iterating to a fixpoint. keep
// must be the divergence predicate ("the implementations still disagree
// on this input"); it is re-evaluated on every candidate, so a shrunk
// reproducer is guaranteed to fail for the same oracle.

// posCount returns the number of symbol occurrences (Glushkov
// positions) of e. Determinization is exponential in it in the worst
// case, so every oracle bounds it before handing an expression to a
// subset construction.
func posCount(e *regex.Expr) int {
	n := 0
	e.Walk(func(x *regex.Expr) {
		if x.Kind == regex.Symbol {
			n++
		}
	})
	return n
}

// shrinkExpr minimizes a regular expression under keep.
func shrinkExpr(e *regex.Expr, keep func(*regex.Expr) bool) *regex.Expr {
	for {
		improved := false
		for _, c := range exprCandidates(e) {
			if c.Size() < e.Size() && keep(c) {
				e = c
				improved = true
				break
			}
		}
		if !improved {
			return e
		}
	}
}

// exprCandidates returns strictly smaller variants of e: each subtree
// hoisted into its parent's place, n-ary nodes with one child dropped,
// and the same moves applied one level down.
func exprCandidates(e *regex.Expr) []*regex.Expr {
	var out []*regex.Expr
	switch e.Kind {
	case regex.Star, regex.Plus, regex.Opt:
		out = append(out, e.Subs[0], regex.NewEpsilon())
	case regex.Concat, regex.Union:
		for i := range e.Subs {
			out = append(out, e.Subs[i])
		}
		for i := range e.Subs {
			rest := make([]*regex.Expr, 0, len(e.Subs)-1)
			rest = append(rest, e.Subs[:i]...)
			rest = append(rest, e.Subs[i+1:]...)
			if e.Kind == regex.Concat {
				out = append(out, regex.NewConcat(rest...))
			} else {
				out = append(out, regex.NewUnion(rest...))
			}
		}
	}
	// recurse: replace one child by one of its candidates
	for i, sub := range e.Subs {
		for _, c := range exprCandidates(sub) {
			subs := make([]*regex.Expr, len(e.Subs))
			copy(subs, e.Subs)
			subs[i] = c
			switch e.Kind {
			case regex.Concat:
				out = append(out, regex.NewConcat(subs...))
			case regex.Union:
				out = append(out, regex.NewUnion(subs...))
			case regex.Star:
				out = append(out, regex.NewStar(subs[0]))
			case regex.Plus:
				out = append(out, regex.NewPlus(subs[0]))
			case regex.Opt:
				out = append(out, regex.NewOpt(subs[0]))
			}
		}
	}
	return out
}

// shrinkWord minimizes a word (symbol slice) under keep by dropping
// chunks, then single symbols.
func shrinkWord(w []string, keep func([]string) bool) []string {
	for chunk := len(w) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(w); {
			cand := make([]string, 0, len(w)-chunk)
			cand = append(cand, w[:i]...)
			cand = append(cand, w[i+chunk:]...)
			if keep(cand) {
				w = cand
			} else {
				i++
			}
		}
	}
	return w
}

// shrinkList minimizes a list of items under keep (ddmin-lite: halves,
// then single removals).
func shrinkList[T any](items []T, keep func([]T) bool) []T {
	for chunk := len(items) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(items); {
			cand := make([]T, 0, len(items)-chunk)
			cand = append(cand, items[:i]...)
			cand = append(cand, items[i+chunk:]...)
			if keep(cand) {
				items = cand
			} else {
				i++
			}
		}
	}
	return items
}

// shrinkTree minimizes a labeled tree under keep by deleting subtrees
// bottom-up, then hoisting children into their parent's place.
func shrinkTree(t *tree.Node, keep func(*tree.Node) bool) *tree.Node {
	for {
		improved := false
		for _, c := range treeCandidates(t) {
			if c.Size() < t.Size() && keep(c) {
				t = c
				improved = true
				break
			}
		}
		if !improved {
			return t
		}
	}
}

func treeCandidates(t *tree.Node) []*tree.Node {
	var out []*tree.Node
	for i := range t.Children {
		cand := &tree.Node{Label: t.Label}
		cand.Children = append(cand.Children, t.Children[:i]...)
		cand.Children = append(cand.Children, t.Children[i+1:]...)
		out = append(out, cand)
	}
	for i, ch := range t.Children {
		for _, c := range treeCandidates(ch) {
			cand := &tree.Node{Label: t.Label}
			cand.Children = append(cand.Children, t.Children...)
			cand.Children[i] = c
			out = append(out, cand)
		}
	}
	return out
}

// shrinkPath minimizes a property path under keep.
func shrinkPath(p *propertypath.Path, keep func(*propertypath.Path) bool) *propertypath.Path {
	for {
		improved := false
		for _, c := range pathCandidates(p) {
			if pathSize(c) < pathSize(p) && keep(c) {
				p = c
				improved = true
				break
			}
		}
		if !improved {
			return p
		}
	}
}

func pathSize(p *propertypath.Path) int {
	n := 0
	p.Walk(func(*propertypath.Path) { n++ })
	return n
}

func pathCandidates(p *propertypath.Path) []*propertypath.Path {
	var out []*propertypath.Path
	switch p.Kind {
	case propertypath.Star, propertypath.Plus, propertypath.Opt, propertypath.Inverse:
		out = append(out, p.Subs[0])
	case propertypath.Seq, propertypath.Alt:
		for i := range p.Subs {
			out = append(out, p.Subs[i])
		}
		if len(p.Subs) > 2 {
			for i := range p.Subs {
				rest := make([]*propertypath.Path, 0, len(p.Subs)-1)
				rest = append(rest, p.Subs[:i]...)
				rest = append(rest, p.Subs[i+1:]...)
				out = append(out, &propertypath.Path{Kind: p.Kind, Subs: rest})
			}
		}
	}
	for i, sub := range p.Subs {
		for _, c := range pathCandidates(sub) {
			subs := make([]*propertypath.Path, len(p.Subs))
			copy(subs, p.Subs)
			subs[i] = c
			out = append(out, &propertypath.Path{Kind: p.Kind, IRI: p.IRI, Subs: subs, Neg: p.Neg, NegInv: p.NegInv})
		}
	}
	return out
}
