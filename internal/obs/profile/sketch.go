// Package profile is the live workload-profile engine: it subscribes to
// the same finished-trace feed as the flight recorder and maintains
// distributional statistics over it — sliding-window and process-lifetime
// per-(op, engine, status) profiles with quantile sketches for duration
// and for every algorithmic cost counter, exemplar trace ids per quantile
// band, and an online least-squares fit of duration against the dominant
// cost counter of each op, whose residuals give every finished request a
// cheap anomaly score.
//
// This is the paper's own methodology applied to the server's own
// behavior: PR 8 turned the tracing layer into a continuously collected
// corpus (the recorder); this package computes the corpus statistics —
// and fits the theory-predicts-practice relationship between the
// complexity-theoretic cost counters (states_expanded, product_states,
// derivative_steps, …) and wall-clock time — the way Section 2 calibrates
// theory against statistics of real workloads. The fitted per-op cost
// profiles are exactly what ROADMAP item 2's statistics-driven planner
// will consume.
package profile

import "math"

// The sketch is a fixed-log-bucket histogram: bucket i covers the
// geometric interval [2^(minExp+i/gamma), 2^(minExp+(i+1)/gamma)), so a
// quantile estimate (the geometric midpoint of the bucket holding the
// nearest-rank sample) is off from the true sample at that rank by at
// most a factor of 2^(1/(2*gamma)) — the documented relative error bound
// RelError, pinned by TestSketchQuantileErrorBound. Dependency-free and
// mergeable by bucket-wise addition, which is what lets the sliding
// window merge its ring buckets and the offline replay reproduce the
// live engine exactly.
const (
	sketchGamma  = 16  // buckets per power of two
	sketchMinExp = -10 // values below 2^-10 (≈ 0.001) clamp into bucket 0
	sketchMaxExp = 30  // values above 2^30 (≈ 1.07e9) clamp into the top bucket
	sketchMaxIdx = (sketchMaxExp - sketchMinExp) * sketchGamma
)

// RelError is the sketch's relative error bound on quantile estimates:
// Quantile(q) is within a factor of 1+RelError of the exact nearest-rank
// q-quantile of the observed values, for values inside the sketch range
// [2^-10, 2^30] (milliseconds in practice: 1µs to ~12 days).
var RelError = math.Exp2(1.0/(2*sketchGamma)) - 1 // ≈ 0.0219

// Sketch is the mergeable fixed-log-bucket quantile sketch. The zero
// value is ready to use. Not safe for concurrent use; the engine guards
// every sketch with its own mutex.
type Sketch struct {
	counts []uint64 // grown on demand up to sketchMaxIdx+1
	zeros  uint64   // observations <= 0 (cost counters can be 0)
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// bucketIndex maps a positive value to its bucket.
func bucketIndex(v float64) int {
	i := int(math.Floor((math.Log2(v) - sketchMinExp) * sketchGamma))
	if i < 0 {
		return 0
	}
	if i > sketchMaxIdx {
		return sketchMaxIdx
	}
	return i
}

// bucketMid returns the geometric midpoint of bucket i — the estimate
// reported for any sample that landed there.
func bucketMid(i int) float64 {
	return math.Exp2(sketchMinExp + (float64(i)+0.5)/sketchGamma)
}

// Observe records one value. Values <= 0 are counted in a dedicated
// zero bucket so cost counters that are legitimately zero do not distort
// the positive-value buckets.
func (s *Sketch) Observe(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	if v <= 0 {
		s.zeros++
		return
	}
	i := bucketIndex(v)
	if i >= len(s.counts) {
		grown := make([]uint64, i+1)
		copy(grown, s.counts)
		s.counts = grown
	}
	s.counts[i]++
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.n }

// Sum returns the sum of observations.
func (s *Sketch) Sum() float64 { return s.sum }

// Min and Max return the exact observed extremes (0 when empty).
func (s *Sketch) Min() float64 { return s.min }
func (s *Sketch) Max() float64 { return s.max }

// Mean returns the exact mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Quantile estimates the q-quantile (0 < q <= 1) by nearest rank: the
// value of the ceil(q*n)-th smallest observation, within the RelError
// bound. The estimate is clamped to the exact observed [min, max], which
// can only tighten it. Returns 0 on an empty sketch.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	if rank <= s.zeros {
		return 0
	}
	// Ranks 1 and n are the tracked exact extremes; returning them
	// directly keeps the estimate exact even for values outside the
	// bucketed range [2^minExp, 2^maxExp].
	if rank == 1 {
		return s.min
	}
	if rank == s.n {
		return s.max
	}
	cum := s.zeros
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			v := bucketMid(i)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max // unreachable unless counts were merged inconsistently
}

// Merge folds other into s bucket-wise. Merging preserves the RelError
// bound: the union's buckets are the sums of the parts'.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other.n == 0 {
		return
	}
	if s.n == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.n == 0 || other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
	s.sum += other.sum
	s.zeros += other.zeros
	if len(other.counts) > len(s.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, s.counts)
		s.counts = grown
	}
	for i, c := range other.counts {
		s.counts[i] += c
	}
}

// Clone returns an independent copy (used by snapshots so the live
// sketch can keep mutating).
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.counts = append([]uint64(nil), s.counts...)
	return &c
}
