package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestAnalyzerBasics(t *testing.T) {
	a := NewAnalyzer("test")
	a.Ingest("SELECT ?s WHERE { ?s ?p ?o }")
	a.Ingest("SELECT ?s WHERE { ?s ?p ?o }")       // duplicate
	a.Ingest("SELECT  ?s  WHERE  {  ?s ?p ?o . }") // whitespace duplicate
	a.Ingest("SELECT ?s WHERE { ?s ?p ?o ")        // invalid
	a.Ingest("SELECT ?s ?n WHERE { ?s foaf:knows ?x . ?x foaf:name ?n }")
	r := a.Report
	if r.Total != 5 || r.Valid != 4 || r.Unique != 2 {
		t.Fatalf("counts: total=%d valid=%d unique=%d", r.Total, r.Valid, r.Unique)
	}
	// triple buckets: three 1-triple (V), one 2-triple
	if r.TripleBuckets[1].V != 3 || r.TripleBuckets[1].U != 1 {
		t.Errorf("bucket1 = %+v", r.TripleBuckets[1])
	}
	if r.TripleBuckets[2].V != 1 || r.TripleBuckets[2].U != 1 {
		t.Errorf("bucket2 = %+v", r.TripleBuckets[2])
	}
	// operator sets
	if c := r.OperatorSets["none"]; c == nil || c.V != 3 || c.U != 1 {
		t.Errorf("none = %+v", c)
	}
	if c := r.OperatorSets["And"]; c == nil || c.V != 1 {
		t.Errorf("And = %+v", c)
	}
}

func TestAnalyzerHypergraphRows(t *testing.T) {
	a := NewAnalyzer("test")
	// chain CQ: acyclic, free-connex for the full projection
	a.Ingest("SELECT * WHERE { ?x :p ?y . ?y :q ?z }")
	// projection {x,z} of the chain: acyclic but NOT free-connex
	a.Ingest("SELECT ?x ?z WHERE { ?x :p ?y . ?y :q ?z }")
	// triangle: cyclic, htw 2
	a.Ingest("SELECT * WHERE { ?x :p ?y . ?y :q ?z . ?z :r ?x }")
	r := a.Report
	if r.CQ.Total.V != 3 {
		t.Fatalf("CQ total = %+v", r.CQ.Total)
	}
	if r.CQ.FCA.V != 1 {
		// only the full-projection chain is free-connex: the {x,z}
		// projection fails free-connexness and the triangle is cyclic
		t.Errorf("FCA = %+v, want V:1", r.CQ.FCA)
	}
	if r.CQ.Htw1.V != 2 || r.CQ.Htw2.V != 3 || r.CQ.Htw3.V != 3 {
		t.Errorf("htw rows: %+v %+v %+v", r.CQ.Htw1, r.CQ.Htw2, r.CQ.Htw3)
	}
}

func TestAnalyzerShapes(t *testing.T) {
	a := NewAnalyzer("test")
	ingest := func(q string) { a.Ingest(q) }
	ingest("SELECT * WHERE { ?x :p ?y }")                       // 1 edge
	ingest("SELECT * WHERE { ?x :p ?y . ?y :q ?z . ?z :r ?w }") // chain
	ingest("SELECT * WHERE { ?x :p ?a . ?x :q ?b . ?x :r ?c }") // star
	ingest("SELECT * WHERE { ?x :p ?y . ?y :q ?z . ?z :r ?x }") // cycle: tw 2
	ingest("SELECT * WHERE { ?x :p dbr:Berlin }")               // constant: 1 edge with, 0 without
	r := a.Report
	if r.GraphCQF.V != 5 {
		t.Fatalf("graph-CQ+F = %+v", r.GraphCQF)
	}
	if r.ShapeWith[ShapeOneEdge].V != 2 {
		t.Errorf("with-constants <=1 edge = %+v", r.ShapeWith[ShapeOneEdge])
	}
	if r.ShapeWithout[ShapeNoEdge].V != 1 {
		t.Errorf("without-constants no-edge = %+v", r.ShapeWithout[ShapeNoEdge])
	}
	if r.ShapeWith[ShapeChain].V != 1 || r.ShapeWith[ShapeStar].V != 1 || r.ShapeWith[ShapeTW2].V != 1 {
		t.Errorf("shapes: chain=%+v star=%+v tw2=%+v",
			r.ShapeWith[ShapeChain], r.ShapeWith[ShapeStar], r.ShapeWith[ShapeTW2])
	}
}

func TestAnalyzerVarPredicateNotGraphPattern(t *testing.T) {
	a := NewAnalyzer("test")
	// the predicate variable ?p also appears in another triple: not a
	// graph pattern (Section 9.5)
	a.Ingest("SELECT * WHERE { ?x ?p ?y . ?p :domain ?d }")
	if a.Report.GraphCQF.V != 0 {
		t.Errorf("graph-CQ+F = %+v, want 0", a.Report.GraphCQF)
	}
	// wildcard predicate is fine
	a.Ingest("SELECT * WHERE { ?x ?q ?y }")
	if a.Report.GraphCQF.V != 1 {
		t.Errorf("graph-CQ+F = %+v, want 1", a.Report.GraphCQF)
	}
}

func TestAnalyzerPropertyPaths(t *testing.T) {
	a := NewAnalyzer("test")
	a.Ingest("SELECT ?s WHERE { ?s wdt:P31/wdt:P279* wd:Q839954 }")
	a.Ingest("SELECT ?s WHERE { ?s wdt:P279* ?o }")
	a.Ingest("SELECT ?s WHERE { ?s wdt:P31*/wdt:P279* ?o }") // a*b*: outside STE
	r := a.Report
	if r.PPTotal.V != 3 {
		t.Fatalf("PP total = %+v", r.PPTotal)
	}
	if r.NonSTE.V != 1 {
		t.Errorf("non-STE = %+v", r.NonSTE)
	}
	if r.NonCtract.V != 0 {
		t.Errorf("non-Ctract = %+v (all three shapes are tractable)", r.NonCtract)
	}
}

func TestRunLogStudySmall(t *testing.T) {
	reports := RunLogStudy(1, 2000000) // tiny corpora (~50-100 queries each)
	if len(reports) != 17 {
		t.Fatalf("sources = %d", len(reports))
	}
	for _, r := range reports {
		if r.Total == 0 {
			t.Errorf("%s: empty corpus", r.Name)
		}
		if r.Valid > r.Total || r.Unique > r.Valid {
			t.Errorf("%s: inconsistent counts %d/%d/%d", r.Name, r.Total, r.Valid, r.Unique)
		}
		if r.Valid == 0 {
			t.Errorf("%s: no valid queries — generator/parser mismatch", r.Name)
		}
	}
	var buf bytes.Buffer
	RenderAll(&buf, reports)
	out := buf.String()
	for _, want := range []string{"Table 2", "Figure 3", "Table 8", "CQ+F subtotal", "property paths (RPQs)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestGeneratorParserAgreement(t *testing.T) {
	// The generator's invalid-rate must come from corruption, not from the
	// parser rejecting "valid" productions: on sources with ~0 invalid
	// rate, nearly everything must parse.
	reports := RunLogStudy(7, 500000)
	for _, r := range reports {
		if r.Name == "BioMed13" || r.Name == "WikiRobot/OK" || r.Name == "BioP13" {
			rate := float64(r.Valid) / float64(r.Total)
			if rate < 0.97 {
				t.Errorf("%s: valid rate %.3f, generator emits unparsable queries", r.Name, rate)
			}
		}
	}
}

func TestRenderTable1(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf, 42, 0.15)
	out := buf.String()
	for _, name := range []string{"HongKong", "Paris", "Wikipedia", "Gnutella", "Royal"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s:\n%s", name, out)
		}
	}
}
