// Package kore implements k-occurrence regular expressions (k-OREs) from
// Section 4.2.3 of "Towards Theory for Real-World Data": expressions in
// which every alphabet symbol occurs at most k times. 1-OREs are the
// single-occurrence regular expressions (SOREs) that make up over 99% of the
// expressions found in real DTDs and XSDs (Bex et al.).
package kore

import (
	"context"
	"strconv"

	"repro/internal/automata"
	"repro/internal/obs"
	"repro/internal/regex"
)

// K returns the smallest k such that e is a k-ORE, i.e. the maximum number
// of occurrences of any single label. For expressions without labels the
// result is 0 (they are k-OREs for every k).
func K(e *regex.Expr) int { return e.MaxOccurrences() }

// IsKORE reports whether e is a k-ORE.
func IsKORE(e *regex.Expr, k int) bool { return e.MaxOccurrences() <= k }

// IsSORE reports whether e is a single-occurrence regular expression
// (a 1-ORE). Bex et al.'s statistic, cited in Section 4.2.3: over 99% of
// the regular expressions in DTDs and XSDs are SOREs.
func IsSORE(e *regex.Expr) bool { return e.MaxOccurrences() <= 1 }

// DFABound returns the bound |Σ|·2^k on the number of states of a DFA for a
// k-ORE over alphabet Σ (plus 2 for the initial state and sink), per the
// argument for Theorem 4.6(a). DeterminizeWithinBound verifies it.
func DFABound(sigma, k int) int {
	if k > 30 {
		k = 30 // avoid overflow; beyond this the bound is never checked
	}
	return sigma*(1<<uint(k)) + 2
}

// DeterminizeWithinBound builds the minimal DFA of e and reports its state
// count together with the theoretical bound for its occurrence number. The
// returned ok is true when the bound holds (it always should; the check
// exists for the empirical reproduction of Theorem 4.6(a)).
func DeterminizeWithinBound(e *regex.Expr) (states, bound int, ok bool) {
	d := automata.ToDFA(e)
	k := K(e)
	bound = DFABound(len(e.Alphabet()), k)
	return d.NumStates, bound, d.NumStates <= bound
}

// Containment decides L(e1) ⊆ L(e2) for k-OREs. Per Theorem 4.6(a) this is
// polynomial time for every fixed k because each side converts to a DFA of
// at most |Σ|·2^k states; the implementation determinizes both sides and
// checks inclusion on the product, so its running time is bounded by the
// same quantity.
func Containment(e1, e2 *regex.Expr) bool {
	return automata.Contains(e1, e2)
}

// ContainmentCtx is Containment with cooperative cancellation: although
// polynomial for fixed k, the |Σ|·2^k DFA bound still grows quickly with
// k, so servers run the check under a deadline.
func ContainmentCtx(ctx context.Context, e1, e2 *regex.Expr) (bool, error) {
	ctx, span := obs.StartSpan(ctx, "kore.contains")
	defer span.Finish()
	if span != nil {
		// The occurrence numbers determine the |Σ|·2^k DFA bound, so a
		// trace of a slow k-ORE check should show them.
		span.SetAttr("k_left", strconv.Itoa(K(e1)))
		span.SetAttr("k_right", strconv.Itoa(K(e2)))
	}
	return automata.ContainsCtx(ctx, e1, e2)
}

// Intersection decides intersection non-emptiness for k-OREs. The problem
// is PSPACE-complete for every fixed k ≥ 3 (Theorem 4.6(b)); the
// implementation is the general product construction, exponential in the
// number of expressions in the worst case.
func Intersection(es ...*regex.Expr) bool {
	return automata.IntersectionNonEmpty(es...)
}
