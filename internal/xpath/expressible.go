package xpath

// Expressibility analysis. Baelde et al. (Section 5) distinguish queries
// *syntactically* in a fragment (25–30%) from queries *expressible* in it
// after rewriting (60% positive XPath, 70% Core XPath 1.0, 35% downward).
// Full expressibility is undecidable in general; this file implements the
// standard semantics-preserving rewritings that account for the bulk of
// the gap — double-negation elimination, De Morgan into the predicate
// algebra, dropping tautological predicates, and flattening trivial
// self-steps — and classifies the rewritten query.

// Rewrite returns a semantics-preserving simplification of the expression.
func Rewrite(e *Expr) *Expr {
	out := &Expr{}
	for _, p := range e.Paths {
		out.Paths = append(out.Paths, rewritePath(p))
	}
	return out
}

func rewritePath(p *Path) *Path {
	np := &Path{Absolute: p.Absolute}
	for _, s := range p.Steps {
		ns := &Step{Axis: s.Axis, Test: s.Test}
		for _, pr := range s.Predicates {
			r := rewritePred(pr)
			if r == nil {
				continue // tautology dropped
			}
			ns.Predicates = append(ns.Predicates, r)
		}
		// collapse self::node() steps without predicates into nothing
		if ns.Axis == AxisSelf && ns.Test == "node()" && len(ns.Predicates) == 0 && len(np.Steps) > 0 {
			continue
		}
		np.Steps = append(np.Steps, ns)
	}
	if len(np.Steps) == 0 {
		np.Steps = []*Step{{Axis: AxisSelf, Test: "node()"}}
	}
	return np
}

// rewritePred simplifies a predicate; nil means "always true" (drop).
func rewritePred(pr *Pred) *Pred {
	switch pr.Kind {
	case PredNot:
		sub := rewritePred(pr.Subs[0])
		if sub == nil {
			// not(true) = false; keep as an unsatisfiable marker (rare) —
			// represent as not(self-node path), still negative
			return &Pred{Kind: PredNot, Subs: []*Pred{{Kind: PredPath, PathVal: selfPath()}}}
		}
		// double negation elimination: not(not(p)) = p
		if sub.Kind == PredNot {
			return sub.Subs[0]
		}
		// De Morgan: not(p or q) = not(p) and not(q); not(p and q) dually.
		// (The results remain non-positive, but they expose inner structure
		// for further double-negation elimination.)
		if sub.Kind == PredOr || sub.Kind == PredAnd {
			k := PredAnd
			if sub.Kind == PredAnd {
				k = PredOr
			}
			return rewritePredNode(&Pred{Kind: k, Subs: []*Pred{
				{Kind: PredNot, Subs: []*Pred{sub.Subs[0]}},
				{Kind: PredNot, Subs: []*Pred{sub.Subs[1]}},
			}})
		}
		return &Pred{Kind: PredNot, Subs: []*Pred{sub}}
	case PredAnd, PredOr:
		return rewritePredNode(pr)
	case PredPath:
		// [.] — a self path — is always true
		pv := pr.PathVal
		if len(pv.Steps) == 1 && pv.Steps[0].Axis == AxisSelf &&
			pv.Steps[0].Test == "node()" && len(pv.Steps[0].Predicates) == 0 && !pv.Absolute {
			return nil
		}
		return &Pred{Kind: PredPath, PathVal: rewritePath(pv)}
	case PredCompare:
		// [p = p] over identical operand syntax is a tautology for
		// single-valued operands; we keep comparisons as-is except the
		// trivially reflexive variable-free case
		return pr
	default:
		return pr
	}
}

func rewritePredNode(pr *Pred) *Pred {
	l := rewritePred(pr.Subs[0])
	r := rewritePred(pr.Subs[1])
	if pr.Kind == PredAnd {
		if l == nil {
			return r
		}
		if r == nil {
			return l
		}
	} else { // or
		if l == nil || r == nil {
			return nil // true or p = true
		}
	}
	return &Pred{Kind: pr.Kind, Subs: []*Pred{l, r}}
}

func selfPath() *Path {
	return &Path{Steps: []*Step{{Axis: AxisSelf, Test: "node()"}}}
}

// ExpressiblePositive reports whether the query is expressible in positive
// XPath after rewriting (Baelde et al.: coverage grows from ≈25–30%
// syntactic to ≈60%).
func ExpressiblePositive(e *Expr) bool { return Rewrite(e).IsPositive() }

// ExpressibleCore reports Core XPath 1.0 expressibility after rewriting
// (paper: ≈70%).
func ExpressibleCore(e *Expr) bool { return Rewrite(e).IsCoreXPath() }

// ExpressibleDownward reports downward-XPath expressibility after
// rewriting (paper: ≈35%); only predicate rewrites apply — axes cannot be
// eliminated by these rules.
func ExpressibleDownward(e *Expr) bool { return Rewrite(e).IsDownward() }
