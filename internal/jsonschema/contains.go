package jsonschema

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/obs"
)

// Containment for JSON Schema. Section 4.5 cites "early work on JSON
// schema containment" (Fruth et al.) and notes the area is young: unlike
// the principled XML machinery, no complete practical decision procedure
// exists for full JSON Schema. This file implements the pragmatic checker
// such work uses: a sound structural subsumption test (answering
// Contained) combined with randomized refutation (answering NotContained
// with a concrete witness document), and Unknown otherwise.

// Verdict is the three-valued containment answer.
type Verdict int

// Containment verdicts.
const (
	Unknown Verdict = iota
	Contained
	NotContained
)

func (v Verdict) String() string {
	switch v {
	case Contained:
		return "contained"
	case NotContained:
		return "not contained"
	}
	return "unknown"
}

// Contains checks whether every document valid for s1 is valid for s2.
// On NotContained the returned witness is a JSON document accepted by s1
// and rejected by s2.
func Contains(s1, s2 *Schema, samples int, seed int64) (Verdict, string) {
	return ContainsCtx(context.Background(), s1, s2, samples, seed)
}

// ContainsCtx is Contains under a (possibly traced) context: it records
// a "jsonschema.contains" span accounting the sampling work — documents
// generated, documents that actually validated against s1 (the
// generator is best-effort), and whether the verdict came from a
// refuting sample or the structural subsumption pass. The verdict
// itself never depends on the context; the work is bounded by the
// sample budget, so no cancellation checkpoints are needed.
func ContainsCtx(ctx context.Context, s1, s2 *Schema, samples int, seed int64) (Verdict, string) {
	_, span := obs.StartSpan(ctx, "jsonschema.contains")
	defer span.Finish()
	generated := span.Counter("samples_generated")
	checked := span.Counter("samples_checked")
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		doc, ok := s1.generate(r, s1, 6)
		if !ok {
			continue
		}
		generated.Inc()
		raw, err := json.Marshal(doc)
		if err != nil {
			continue
		}
		// the generator is best-effort: double-check against s1
		if !s1.valid(s1, doc) {
			continue
		}
		checked.Inc()
		if !s2.valid(s2, doc) {
			span.SetAttr("decided_by", "sample_refutation")
			return NotContained, string(raw)
		}
	}
	if subsumes(s1, s1, s2, s2, 16) {
		span.SetAttr("decided_by", "structural_subsumption")
		return Contained, ""
	}
	span.SetAttr("decided_by", "unknown")
	return Unknown, ""
}

// generate produces a random document satisfying the schema when it can;
// ok=false when the fragment is too entangled to construct directly.
func (root *Schema) generate(r *rand.Rand, s *Schema, depth int) (interface{}, bool) {
	if depth <= 0 {
		return nil, false
	}
	if s.BoolSchema != nil {
		if *s.BoolSchema {
			return "free", true
		}
		return nil, false
	}
	if s.Ref != "" {
		t, err := root.resolve(s.Ref)
		if err != nil {
			return nil, false
		}
		return root.generate(r, t, depth-1)
	}
	if len(s.Enum) > 0 {
		return s.Enum[r.Intn(len(s.Enum))], true
	}
	if len(s.AnyOf) > 0 {
		return root.generate(r, s.AnyOf[r.Intn(len(s.AnyOf))], depth-1)
	}
	if len(s.OneOf) > 0 {
		return root.generate(r, s.OneOf[r.Intn(len(s.OneOf))], depth-1)
	}
	if len(s.AllOf) > 0 || s.Not != nil {
		// constructive generation through conjunction/negation is where
		// completeness ends; rely on the structural check instead
		return nil, false
	}
	switch s.Type {
	case "string", "":
		if s.Type == "" && (len(s.Properties) > 0 || len(s.Required) > 0) {
			return root.generateObject(r, s, depth)
		}
		return fmt.Sprintf("s%d", r.Intn(100)), true
	case "integer":
		return json.Number(fmt.Sprintf("%d", r.Intn(1000))), true
	case "number":
		return json.Number(fmt.Sprintf("%d.%d", r.Intn(100), r.Intn(10))), true
	case "boolean":
		return r.Intn(2) == 0, true
	case "null":
		return nil, true
	case "array":
		n := r.Intn(3)
		arr := make([]interface{}, 0, n)
		for i := 0; i < n; i++ {
			if s.Items != nil {
				el, ok := root.generate(r, s.Items, depth-1)
				if !ok {
					return nil, false
				}
				arr = append(arr, el)
			} else {
				arr = append(arr, json.Number("1"))
			}
		}
		return arr, true
	case "object":
		return root.generateObject(r, s, depth)
	}
	return nil, false
}

func (root *Schema) generateObject(r *rand.Rand, s *Schema, depth int) (interface{}, bool) {
	obj := map[string]interface{}{}
	for _, req := range s.Required {
		sub, ok := s.Properties[req]
		if !ok {
			// unconstrained required property: draw a random-typed value so
			// that a tighter right-hand schema can be refuted
			obj[req] = randomScalar(r)
			continue
		}
		v, ok := root.generate(r, sub, depth-1)
		if !ok {
			return nil, false
		}
		obj[req] = v
	}
	// sprinkle optional declared properties
	for name, sub := range s.Properties {
		if _, done := obj[name]; done {
			continue
		}
		if r.Float64() < 0.5 {
			v, ok := root.generate(r, sub, depth-1)
			if !ok {
				continue
			}
			obj[name] = v
		}
	}
	// schema-mixed: occasionally add an undeclared property, unless the
	// schema is schema-full
	if (s.AdditionalProperties == nil || *s.AdditionalProperties) && r.Float64() < 0.3 {
		obj["extra_property"] = json.Number("7")
	}
	return obj, true
}

// subsumes is a SOUND structural sufficient condition for L(a) ⊆ L(b):
// every constraint of b is implied by a constraint of a. It returns false
// whenever implication cannot be established (not a refutation).
func subsumes(rootA, a *Schema, rootB, b *Schema, fuel int) bool {
	if fuel <= 0 {
		return false
	}
	if b.BoolSchema != nil {
		return *b.BoolSchema
	}
	if a.BoolSchema != nil && !*a.BoolSchema {
		return true // empty language is contained in anything
	}
	if a.Ref != "" {
		t, err := rootA.resolve(a.Ref)
		if err != nil {
			return false
		}
		return subsumes(rootA, t, rootB, b, fuel-1)
	}
	if b.Ref != "" {
		t, err := rootB.resolve(b.Ref)
		if err != nil {
			return false
		}
		return subsumes(rootA, a, rootB, t, fuel-1)
	}
	// b's allOf: every conjunct must be implied
	for _, sub := range b.AllOf {
		if !subsumes(rootA, a, rootB, sub, fuel-1) {
			return false
		}
	}
	// b's anyOf: some branch must subsume all of a (sufficient condition)
	if len(b.AnyOf) > 0 {
		ok := false
		for _, sub := range b.AnyOf {
			if subsumes(rootA, a, rootB, sub, fuel-1) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(b.OneOf) > 0 || b.Not != nil {
		return false // implication through negation: out of the fragment
	}
	// type
	if b.Type != "" {
		if a.Type == "" {
			return false
		}
		if a.Type != b.Type && !(a.Type == "integer" && b.Type == "number") {
			return false
		}
	}
	// required: b's requirements must already be required by a
	reqA := map[string]bool{}
	for _, x := range a.Required {
		reqA[x] = true
	}
	for _, x := range b.Required {
		if !reqA[x] {
			return false
		}
	}
	// properties: for every property b constrains, a must constrain it at
	// least as tightly — or a must forbid extra properties entirely
	for name, subB := range b.Properties {
		if isTrivial(subB) {
			continue
		}
		subA, ok := a.Properties[name]
		if !ok {
			return false
		}
		if !subsumes(rootA, subA, rootB, subB, fuel-1) {
			return false
		}
	}
	// additionalProperties: if b is schema-full, a must be schema-full
	// with a's declared properties ⊆ b's
	if b.AdditionalProperties != nil && !*b.AdditionalProperties {
		if a.AdditionalProperties == nil || *a.AdditionalProperties {
			return false
		}
		for name := range a.Properties {
			if _, ok := b.Properties[name]; !ok {
				return false
			}
		}
	}
	// items
	if b.Items != nil && !isTrivial(b.Items) {
		if a.Items == nil {
			return false
		}
		if !subsumes(rootA, a.Items, rootB, b.Items, fuel-1) {
			return false
		}
	}
	// enum: a's values must all be in b's enum
	if len(b.Enum) > 0 {
		if len(a.Enum) == 0 {
			return false
		}
		inB := map[string]bool{}
		for _, v := range b.Enum {
			j, _ := json.Marshal(v)
			inB[string(j)] = true
		}
		for _, v := range a.Enum {
			j, _ := json.Marshal(v)
			if !inB[string(j)] {
				return false
			}
		}
	}
	return true
}

// randomScalar draws a value of a random JSON type.
func randomScalar(r *rand.Rand) interface{} {
	switch r.Intn(4) {
	case 0:
		return json.Number(fmt.Sprintf("%d", r.Intn(100)))
	case 1:
		return fmt.Sprintf("str%d", r.Intn(100))
	case 2:
		return r.Intn(2) == 0
	default:
		return []interface{}{json.Number("1")}
	}
}

// isTrivial reports schemas with no constraints (accept everything).
func isTrivial(s *Schema) bool {
	if s == nil {
		return true
	}
	if s.BoolSchema != nil {
		return *s.BoolSchema
	}
	return s.Type == "" && len(s.Properties) == 0 && len(s.Required) == 0 &&
		s.Items == nil && len(s.Enum) == 0 && s.Not == nil &&
		len(s.AllOf) == 0 && len(s.AnyOf) == 0 && len(s.OneOf) == 0 &&
		s.Ref == "" && s.AdditionalProperties == nil
}
