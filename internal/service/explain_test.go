package service

import (
	"bytes"
	"log"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/obs"
)

// findSpan walks the exported tree for the first span with the given
// name, depth-first.
func findSpan(n *obs.Node, name string) *obs.Node {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if hit := findSpan(c, name); hit != nil {
			return hit
		}
	}
	return nil
}

type explainedContainment struct {
	containmentResponse
	Trace *obs.Node `json:"trace"`
}

// TestContainmentExplain is the acceptance check of the explain mode:
// a containment request with "explain": true returns a nested span tree
// whose engine span reports nonzero cost counters. The instance is
// antichain-hard self-containment at small k, where all three engine
// counters (states_expanded, product_states, antichain_pruned) fire.
func TestContainmentExplain(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hard := automata.AntichainHardExpr(8)
	body := `{"engine":"regex","left":"` + hard + `","right":"` + hard + `","explain":true}`
	var resp explainedContainment
	if code := post(t, ts.URL, "/v1/containment", body, &resp); code != 200 {
		t.Fatalf("code = %d", code)
	}
	if resp.Trace == nil {
		t.Fatal("explain=true returned no trace")
	}
	if resp.Trace.Name != "http.containment" || resp.Trace.TraceID == "" {
		t.Fatalf("root span = %q trace_id = %q", resp.Trace.Name, resp.Trace.TraceID)
	}
	contains := findSpan(resp.Trace, "automata.contains")
	if contains == nil {
		t.Fatalf("no automata.contains span in trace: %+v", resp.Trace)
	}
	if contains.Attrs["engine"] != "antichain" {
		t.Fatalf("engine attr = %q, want antichain: %+v", contains.Attrs["engine"], contains)
	}
	for _, c := range []string{"states_expanded", "product_states", "antichain_pruned"} {
		if contains.Counters[c] == 0 {
			t.Fatalf("%s = 0 in explain trace: %+v", c, contains.Counters)
		}
	}
}

// TestExplainSkipsCacheRead pins the cache/explain interaction: the
// second identical request would normally be a cache hit with no engine
// work, but with explain=true it must re-run the engine so the trace is
// populated.
func TestExplainSkipsCacheRead(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	plain := `{"engine":"regex","left":"a","right":"a|b"}`
	var warm containmentResponse
	post(t, ts.URL, "/v1/containment", plain, &warm)
	if warm.Cached {
		t.Fatal("first request must be a miss")
	}
	var resp explainedContainment
	post(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a","right":"a|b","explain":true}`, &resp)
	if resp.Cached {
		t.Fatal("explain request must bypass the cache read")
	}
	if resp.Trace == nil || findSpan(resp.Trace, "automata.contains") == nil {
		t.Fatalf("explain request returned no engine spans: %+v", resp.Trace)
	}
	if !resp.Contained {
		t.Fatal("verdict changed under explain")
	}
}

// TestExplainOtherEndpoints spot-checks that infer and analyze also
// return traces with their engine spans.
func TestExplainOtherEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var infer struct {
		inferResponse
		Trace *obs.Node `json:"trace"`
	}
	post(t, ts.URL, "/v1/infer",
		`{"algorithm":"sore","words":[["a","b"],["b","a"]],"explain":true}`, &infer)
	if findSpan(infer.Trace, "inference.sore") == nil {
		t.Fatalf("no inference.sore span: %+v", infer.Trace)
	}
	var analyze struct {
		analyzeResponse
		Trace *obs.Node `json:"trace"`
	}
	post(t, ts.URL, "/v1/analyze",
		`{"queries":["SELECT ?x WHERE { ?x <p> ?y }"],"workers":1,"explain":true}`, &analyze)
	if findSpan(analyze.Trace, "core.shard") == nil {
		t.Fatalf("no core.shard span: %+v", analyze.Trace)
	}
}

// TestSpanMetricsExposed checks that engine spans feed the rwd_span_*
// families even without explain mode, and that the build-info and
// process self-metrics render.
func TestSpanMetricsExposed(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post(t, ts.URL, "/v1/containment", `{"engine":"regex","left":"a","right":"a|b"}`, nil)
	var buf bytes.Buffer
	if err := s.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`rwd_span_seconds_bucket{span="automata.contains"`,
		`rwd_span_cost_total{span="automata.contains",counter="product_states"}`,
		`rwd_build_info{go_version=`,
		"go_goroutines ",
		"go_memstats_heap_alloc_bytes ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestAccessLogQuotesPathAndTrace pins the log-injection fix: the
// attacker-controlled path is %q-quoted, so a newline in the URL cannot
// forge a second log line, and the line carries the request's trace id.
// The middleware is driven directly because the router would never
// route such a path to the endpoint.
func TestAccessLogQuotesPathAndTrace(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	s := New(Config{Logger: logger})
	h := s.endpoint("containment", s.handleContainment)
	req := httptest.NewRequest("POST", "/v1/containment", strings.NewReader(`{}`))
	req.URL.Path = "/v1/containment\nlevel=error forged=1"
	h.ServeHTTP(httptest.NewRecorder(), req)
	out := buf.String()
	if strings.Contains(out, "\nlevel=error") {
		t.Fatalf("newline in path forged a log line:\n%s", out)
	}
	if !strings.Contains(out, `path="/v1/containment\nlevel=error forged=1"`) {
		t.Fatalf("path not quoted: %s", out)
	}
	if !strings.Contains(out, "trace=") {
		t.Fatalf("no trace id in access log: %s", out)
	}
}
