package schemastudy

import (
	"math/rand"
	"testing"

	"repro/internal/edtd"
	"repro/internal/jsonschema"
)

func TestDTDCorpusStudy(t *testing.T) {
	g := DefaultDTDGen()
	r := rand.New(rand.NewSource(4))
	corpus := g.Corpus(r, 400)
	rep := AnalyzeDTDs(corpus)
	if rep.ParseErrors > 0 {
		t.Fatalf("generator emitted %d unparsable DTDs", rep.ParseErrors)
	}
	if rep.Total != 400 {
		t.Fatalf("total = %d", rep.Total)
	}
	// Choi: 35/60 ≈ 58% recursive.
	recRate := float64(rep.Recursive) / float64(rep.Total)
	if recRate < 0.45 || recRate > 0.70 {
		t.Errorf("recursion rate = %.2f, want ≈ 0.58", recRate)
	}
	// Bex et al.: > 92% CHAREs, > 99% SOREs.
	if rep.CHARERate() < 0.90 {
		t.Errorf("CHARE rate = %.3f, want > 0.90", rep.CHARERate())
	}
	if rep.SORERate() < 0.97 {
		t.Errorf("SORE rate = %.3f, want ≈ 0.99", rep.SORERate())
	}
	// Choi: parse depth 1..9.
	if rep.MaxParseDepth > 9 {
		t.Errorf("max parse depth = %d, want ≤ 9", rep.MaxParseDepth)
	}
	// determinism violations exist but are a small minority
	detRate := float64(rep.Deterministic) / float64(rep.Expressions)
	if detRate < 0.85 {
		t.Errorf("deterministic rate = %.3f", detRate)
	}
	if detRate > 0.999 {
		t.Errorf("expected a few non-deterministic expressions, got rate %.4f", detRate)
	}
	// non-recursive DTDs allow nontrivial depths
	if len(rep.MaxDepths) == 0 {
		t.Fatal("no non-recursive DTDs")
	}
}

func TestXSDCorpusStudy(t *testing.T) {
	g := DefaultXSDGen()
	r := rand.New(rand.NewSource(11))
	schemas := make([]*edtd.EDTD, 30)
	for i := range schemas {
		schemas[i] = g.Schema(r)
	}
	rep := AnalyzeXSDs(schemas)
	if rep.Total != 30 {
		t.Fatalf("total = %d", rep.Total)
	}
	// Bex et al.: 25/30 DTD-expressible, the rest parent/grandparent-typed.
	if rep.DTDExpressible < 20 || rep.DTDExpressible > 29 {
		t.Errorf("DTD-expressible = %d/30, want ≈ 25", rep.DTDExpressible)
	}
	if rep.DTDExpressible+rep.DependencyDepth12 != rep.Total {
		t.Errorf("every schema should be DTD-expressible or depth-1/2 typed: %+v", rep)
	}
	if rep.SingleType != rep.Total {
		t.Errorf("all generated schemas are single-type: %+v", rep)
	}
}

func TestJSONSchemaCorpusStudy(t *testing.T) {
	g := DefaultJSONSchemaGen()
	r := rand.New(rand.NewSource(2))
	corpus := g.Corpus(r, 500)
	rep := jsonschema.RunStudy(corpus)
	if rep.Total != 500 {
		t.Fatalf("total = %d (unparsable schemas?)", rep.Total)
	}
	recRate := float64(rep.Recursive) / float64(rep.Total)
	if recRate < 0.10 || recRate > 0.24 {
		t.Errorf("recursion rate = %.3f, want ≈ 0.16", recRate)
	}
	avg := rep.AverageDepth()
	if avg < 7 || avg > 16 {
		t.Errorf("average depth = %.1f, want ≈ 11", avg)
	}
	// depths range into the tens (paper: 3–43)
	max := 0
	for _, d := range rep.Depths {
		if d > max {
			max = d
		}
	}
	if max < 20 {
		t.Errorf("max depth = %d, want a long tail", max)
	}
	if rep.NegationUse == 0 || rep.SchemaFull == 0 {
		t.Errorf("negation/schema-full not represented: %+v", rep)
	}
}
