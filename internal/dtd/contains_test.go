package dtd

import (
	"math/rand"
	"testing"

	"repro/internal/regex"
	"repro/internal/tree"
)

func TestDTDContainment(t *testing.T) {
	base := example42()
	// widening country? to country* gives a superset
	wide := New().
		AddRule("persons", regex.MustParse("person*")).
		AddRule("person", regex.MustParse("name birthplace")).
		AddRule("birthplace", regex.MustParse("city state country*")).
		AddStart("persons")
	if !Contains(base, wide) {
		t.Error("base ⊆ wide should hold")
	}
	if Contains(wide, base) {
		t.Error("wide ⊆ base should fail (two countries)")
	}
	if !Equivalent(base, base) {
		t.Error("reflexivity failed")
	}
	// different root
	other := New().AddRule("people", regex.MustParse("person*")).AddStart("people")
	if Contains(base, other) {
		t.Error("different start labels cannot contain")
	}
}

func TestDTDContainmentIgnoresUnrealizableParts(t *testing.T) {
	// d1 has a label b whose rule mentions an unrealizable c; since no
	// valid tree contains b, the mismatch with d2 must not matter.
	d1 := New().
		AddRule("r", regex.MustParse("x")).
		AddRule("x", regex.NewEpsilon()).
		AddRule("b", regex.MustParse("c")).
		AddRule("c", regex.NewEmpty()).
		AddStart("r")
	d2 := New().
		AddRule("r", regex.MustParse("x")).
		AddRule("x", regex.NewEpsilon()).
		AddStart("r")
	if !Contains(d1, d2) {
		t.Error("unrealizable rules must not break containment")
	}
}

func TestDTDContainmentAgainstSampling(t *testing.T) {
	// randomized soundness check: when Contains says yes, random valid
	// trees of d1 must validate against d2.
	r := rand.New(rand.NewSource(12))
	d1 := example42()
	d2 := New().
		AddRule("persons", regex.MustParse("person*")).
		AddRule("person", regex.MustParse("name birthplace?")).
		AddRule("birthplace", regex.MustParse("city state country?")).
		AddStart("persons")
	if !Contains(d1, d2) {
		t.Fatal("d1 ⊆ d2 should hold (birthplace? is wider)")
	}
	for i := 0; i < 100; i++ {
		tr := randomValidTree(r, d1)
		if tr == nil {
			continue
		}
		if err := d2.Validate(tr); err != nil {
			t.Fatalf("containment violated by sampled tree %v: %v", tr, err)
		}
	}
}

// randomValidTree samples a small valid tree of the Example 4.2 DTD.
func randomValidTree(r *rand.Rand, d *DTD) *tree.Node {
	root := tree.New("persons")
	for i := 0; i < r.Intn(3); i++ {
		p := tree.New("person")
		p.Add(tree.New("name"))
		bp := tree.New("birthplace")
		bp.Add(tree.New("city"), tree.New("state"))
		if r.Float64() < 0.5 {
			bp.Add(tree.New("country"))
		}
		p.Add(bp)
		root.Add(p)
	}
	if d.Validate(root) != nil {
		return nil
	}
	return root
}

func TestDTDIntersection(t *testing.T) {
	a := New().
		AddRule("r", regex.MustParse("x y?")).
		AddStart("r")
	b := New().
		AddRule("r", regex.MustParse("x? y?")).
		AddStart("r")
	if !IntersectionNonEmpty(a, b) {
		t.Error("r(x) satisfies both")
	}
	c := New().
		AddRule("r", regex.MustParse("y")).
		AddStart("r")
	if IntersectionNonEmpty(a, c) {
		t.Error("a needs x first, c forbids it")
	}
	// intersection with unrealizable requirement: d needs a z child whose
	// own rule is unsatisfiable in e
	d := New().
		AddRule("r", regex.MustParse("z")).
		AddRule("z", regex.NewEpsilon()).
		AddStart("r")
	e := New().
		AddRule("r", regex.MustParse("z")).
		AddRule("z", regex.MustParse("w")).
		AddRule("w", regex.MustParse("w")). // w needs infinite descent
		AddStart("r")
	if IntersectionNonEmpty(d, e) {
		t.Error("joint realizability must fail (z disagrees / w unbounded)")
	}
	if !IntersectionNonEmpty(a) {
		t.Error("single-DTD intersection = non-emptiness of a")
	}
}

func TestContentFragment(t *testing.T) {
	frag := example42().ContentFragment()
	if frag["general"] != 0 {
		t.Errorf("Example 4.2 is fully sequential: %v", frag)
	}
	if len(frag) == 0 {
		t.Error("no fragments observed")
	}
}
