package inference

import (
	"context"
	"sort"

	"repro/internal/obs"
	"repro/internal/regex"
)

// InferSORE learns a single-occurrence regular expression from the sample:
// 2T-INF builds the single-occurrence automaton, and RWR rewriting reduces
// it to an expression. When the automaton is exactly SORE-definable the
// result defines the same language; otherwise the rewriting generalizes
// (first by collapsing strongly connected components into (a1+…+ak)+, and
// as a last resort by falling back to the CRX chain inference), so the
// invariant sample ⊆ L(result) always holds.
func InferSORE(s Sample) *regex.Expr {
	return InferSORECtx(context.Background(), s)
}

// InferSORECtx is InferSORE under a (possibly traced) context: the
// 2T-INF automaton construction and the RWR rewriting fixpoint get
// their own child spans, with the rewrite rounds, SCC collapses, and
// CRX fallback accounted — the phase breakdown a trace of a slow
// inference request should show.
func InferSORECtx(ctx context.Context, s Sample) *regex.Expr {
	ctx, span := obs.StartSpan(ctx, "inference.sore")
	defer span.Finish()
	if len(s) == 0 {
		return regex.NewEmpty()
	}
	_, soaSpan := obs.StartSpan(ctx, "inference.2tinf")
	soa := BuildSOA(s)
	soaSpan.Finish()
	_, rwrSpan := obs.StartSpan(ctx, "inference.rwr")
	ruleRounds := rwrSpan.Counter("rule_rounds")
	sccCollapses := rwrSpan.Counter("scc_collapses")
	g := newRewriteGraph(soa)
	for {
		if g.applyRules() {
			ruleRounds.Inc()
			continue
		}
		if g.collapseSCC() {
			sccCollapses.Inc()
			continue
		}
		break
	}
	e, ok := g.result()
	rwrSpan.Finish()
	if ok {
		if nullableSample(s) && !e.Nullable() {
			return regex.NewOpt(e)
		}
		return e
	}
	// Irreducible DAG remainder: fall back to the chain inference, which is
	// also single-occurrence.
	span.SetAttr("fallback", "crx")
	return InferCHARECtx(ctx, s)
}

func nullableSample(s Sample) bool {
	for _, w := range s {
		if len(w) == 0 {
			return true
		}
	}
	return false
}

// rewriteGraph is the working structure of RWR: a DAG-with-loops whose
// internal nodes carry expressions; node 0 is the source, node 1 the sink.
type rewriteGraph struct {
	exprs map[int]*regex.Expr // nil for source/sink
	succ  map[int]map[int]bool
	pred  map[int]map[int]bool
	next  int
	// epsilonEdge records whether source→sink existed (ε in the sample).
}

const (
	srcNode  = 0
	sinkNode = 1
)

func newRewriteGraph(soa *SOA) *rewriteGraph {
	g := &rewriteGraph{
		exprs: map[int]*regex.Expr{},
		succ:  map[int]map[int]bool{srcNode: {}, sinkNode: {}},
		pred:  map[int]map[int]bool{srcNode: {}, sinkNode: {}},
		next:  2,
	}
	id := map[string]int{Source: srcNode, Sink: sinkNode}
	for _, q := range soa.States() {
		if q == Source || q == Sink {
			continue
		}
		id[q] = g.next
		g.exprs[g.next] = regex.NewSymbol(q)
		g.succ[g.next] = map[int]bool{}
		g.pred[g.next] = map[int]bool{}
		g.next++
	}
	for q, m := range soa.Succ {
		for to := range m {
			g.addEdge(id[q], id[to])
		}
	}
	return g
}

func (g *rewriteGraph) addEdge(from, to int) {
	g.succ[from][to] = true
	g.pred[to][from] = true
}

func (g *rewriteGraph) removeEdge(from, to int) {
	delete(g.succ[from], to)
	delete(g.pred[to], from)
}

func (g *rewriteGraph) removeNode(n int) {
	for to := range g.succ[n] {
		delete(g.pred[to], n)
	}
	for from := range g.pred[n] {
		delete(g.succ[from], n)
	}
	delete(g.succ, n)
	delete(g.pred, n)
	delete(g.exprs, n)
}

func (g *rewriteGraph) internalNodes() []int {
	var out []int
	for n := range g.exprs {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// applyRules applies one round of the four RWR rules; it reports whether
// anything changed.
func (g *rewriteGraph) applyRules() bool {
	changed := false
	// Rule 1 (self-loop): r→r becomes r⁺.
	for _, n := range g.internalNodes() {
		if g.succ[n][n] {
			g.removeEdge(n, n)
			g.exprs[n] = plusOf(g.exprs[n])
			changed = true
		}
	}
	// Rule 2 (disjunction): nodes with identical predecessor and successor
	// sets merge into a union.
	nodes := g.internalNodes()
	for i := 0; i < len(nodes); i++ {
		a := nodes[i]
		if g.exprs[a] == nil {
			continue
		}
		group := []int{a}
		for j := i + 1; j < len(nodes); j++ {
			b := nodes[j]
			if g.exprs[b] == nil {
				continue
			}
			if sameSet(g.pred[a], g.pred[b]) && sameSet(g.succ[a], g.succ[b]) {
				group = append(group, b)
			}
		}
		if len(group) > 1 {
			subs := make([]*regex.Expr, len(group))
			for k, n := range group {
				subs[k] = g.exprs[n]
			}
			g.exprs[a] = unionOf(subs)
			for _, n := range group[1:] {
				g.removeNode(n)
			}
			changed = true
		}
	}
	// Rule 3 (concatenation): succ(r) = {s}, pred(s) = {r} merges r·s.
	for _, r := range g.internalNodes() {
		if g.exprs[r] == nil {
			continue
		}
		if len(g.succ[r]) != 1 {
			continue
		}
		var s int
		for x := range g.succ[r] {
			s = x
		}
		if s == srcNode || s == sinkNode || s == r {
			continue
		}
		if len(g.pred[s]) != 1 || !g.pred[s][r] {
			continue
		}
		// merge s into r
		g.exprs[r] = regex.NewConcat(g.exprs[r], g.exprs[s])
		g.removeEdge(r, s)
		for to := range g.succ[s] {
			g.addEdge(r, to)
		}
		g.removeNode(s)
		changed = true
	}
	// Rule 4 (optionality): if every pred(r)×succ(r) bypass edge exists,
	// r becomes r? and the bypass edges are removed.
	for _, r := range g.internalNodes() {
		if g.exprs[r] == nil || g.exprs[r].Nullable() {
			continue
		}
		if len(g.pred[r]) == 0 || len(g.succ[r]) == 0 {
			continue
		}
		all := true
		for p := range g.pred[r] {
			for q := range g.succ[r] {
				if !g.succ[p][q] {
					all = false
				}
			}
		}
		if !all {
			continue
		}
		// Only beneficial if at least one bypass edge actually exists to be
		// absorbed; with a single pred/succ pair this is exactly one edge.
		removedAny := false
		for p := range g.pred[r] {
			for q := range g.succ[r] {
				g.removeEdge(p, q)
				removedAny = true
			}
		}
		if removedAny {
			g.exprs[r] = regex.NewOpt(g.exprs[r])
			changed = true
		}
	}
	return changed
}

// collapseSCC finds a non-trivial strongly connected component among the
// internal nodes and collapses it into a single (e1 + … + ek)⁺ node — the
// generalization step of RWR² that guarantees progress on automata that are
// not SORE-definable.
func (g *rewriteGraph) collapseSCC() bool {
	sccs := g.stronglyConnected()
	for _, comp := range sccs {
		if len(comp) < 2 {
			continue
		}
		sort.Ints(comp)
		subs := make([]*regex.Expr, len(comp))
		preds := map[int]bool{}
		succs := map[int]bool{}
		inComp := map[int]bool{}
		for _, n := range comp {
			inComp[n] = true
		}
		for k, n := range comp {
			subs[k] = g.exprs[n]
			for p := range g.pred[n] {
				if !inComp[p] {
					preds[p] = true
				}
			}
			for q := range g.succ[n] {
				if !inComp[q] {
					succs[q] = true
				}
			}
		}
		keep := comp[0]
		for _, n := range comp[1:] {
			g.removeNode(n)
		}
		// reset keep's edges
		for to := range g.succ[keep] {
			g.removeEdge(keep, to)
		}
		for from := range g.pred[keep] {
			g.removeEdge(from, keep)
		}
		g.exprs[keep] = plusOf(unionOf(subs))
		for p := range preds {
			g.addEdge(p, keep)
		}
		for q := range succs {
			g.addEdge(keep, q)
		}
		return true
	}
	return false
}

func (g *rewriteGraph) stronglyConnected() [][]int {
	// Tarjan over internal nodes only.
	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	var stack []int
	var sccs [][]int
	counter := 0
	var visit func(v int)
	visit = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for w := range g.succ[v] {
			if w == srcNode || w == sinkNode {
				continue
			}
			if _, seen := index[w]; !seen {
				visit(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, n := range g.internalNodes() {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	return sccs
}

// result extracts the final expression when the graph has been reduced to
// source → single node → sink (or source → sink only).
func (g *rewriteGraph) result() (*regex.Expr, bool) {
	nodes := g.internalNodes()
	switch len(nodes) {
	case 0:
		if g.succ[srcNode][sinkNode] {
			return regex.NewEpsilon(), true
		}
		return regex.NewEmpty(), true
	case 1:
		n := nodes[0]
		if sameSet(g.succ[srcNode], map[int]bool{n: true}) &&
			sameSet(g.succ[n], map[int]bool{sinkNode: true}) {
			return g.exprs[n], true
		}
		if g.succ[srcNode][n] && g.succ[srcNode][sinkNode] &&
			g.succ[n][sinkNode] && len(g.succ[n]) == 1 {
			return regex.NewOpt(g.exprs[n]), true
		}
	}
	return nil, false
}

func plusOf(e *regex.Expr) *regex.Expr {
	switch e.Kind {
	case regex.Plus, regex.Star:
		return e
	case regex.Opt:
		return regex.NewStar(e.Sub())
	}
	return regex.NewPlus(e)
}

func unionOf(subs []*regex.Expr) *regex.Expr {
	return regex.NewUnion(subs...)
}
