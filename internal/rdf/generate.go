package rdf

import (
	"fmt"
	"math/rand"
)

// Gen generates synthetic RDF datasets reproducing the structural regime
// of Section 7.1: power-law in/out-degrees (preferential attachment on
// objects), a small set of "classes" whose instances share the same
// predicate list (Fernandez et al.'s ~99% shared-lists finding), and
// disjoint predicate/subject/object namespaces except for a configurable
// trickle of predicates used as subjects (the 10⁻⁷–10⁻³ overlap ratios).
type Gen struct {
	// Classes are predicate-list templates; each subject instantiates one.
	Classes [][]string
	// ZipfObjects activates preferential attachment on object choice.
	ZipfObjects bool
	// PredicateAsSubjectRate is the fraction of subjects that are
	// predicate IRIs (meta-modeling), producing the tiny P∩S overlap.
	PredicateAsSubjectRate float64
}

// DefaultGen returns a generator shaped like the study's datasets.
func DefaultGen() *Gen {
	return &Gen{
		Classes: [][]string{
			{"rdf:type", "foaf:name", "foaf:knows"},
			{"rdf:type", "dc:title", "dc:creator", "dc:date"},
			{"rdf:type", "geo:lat", "geo:long"},
			{"rdf:type", "foaf:name"},
		},
		ZipfObjects:            true,
		PredicateAsSubjectRate: 0.0005,
	}
}

// Graph generates a dataset with approximately n subjects.
func (g *Gen) Graph(r *rand.Rand, n int) *Graph {
	out := NewGraph()
	// object pool with preferential attachment: popularity proportional to
	// use count (+1)
	var objects []string
	pickObject := func() string {
		if g.ZipfObjects && len(objects) > 0 && r.Float64() < 0.7 {
			// preferential: choose an existing object, strongly biased to
			// early ones (objects accumulate re-use, approximating Zipf)
			f := r.Float64()
			return objects[int(float64(len(objects))*f*f*f)]
		}
		o := fmt.Sprintf("obj%d", len(objects))
		objects = append(objects, o)
		return o
	}
	for i := 0; i < n; i++ {
		var s string
		if r.Float64() < g.PredicateAsSubjectRate {
			// meta-modeling: a predicate IRI in subject position
			class := g.Classes[r.Intn(len(g.Classes))]
			s = class[r.Intn(len(class))]
		} else {
			s = fmt.Sprintf("ent%d", i)
		}
		class := g.Classes[r.Intn(len(g.Classes))]
		for _, p := range class {
			// (s,p) is mostly related to a unique object
			out.Add(s, p, pickObject())
			if r.Float64() < 0.05 {
				out.Add(s, p, pickObject()) // occasional multi-valued property
			}
		}
	}
	return out
}
