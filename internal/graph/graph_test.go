package graph

import (
	"math/rand"
	"testing"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

func grid(w, h int) *Graph {
	g := New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

func TestShapePredicates(t *testing.T) {
	cases := []struct {
		name                      string
		g                         *Graph
		chain, star, tree, forest bool
	}{
		{"single node", New(1), true, true, true, true},
		{"edge", path(2), true, true, true, true},
		{"path5", path(5), true, true, true, true},
		{"star5", star(5), false, true, true, true},
		{"cycle4", cycle(4), false, false, false, false},
		{"two components", func() *Graph { g := New(4); g.AddEdge(0, 1); g.AddEdge(2, 3); return g }(), false, false, false, true},
		{"clique4", clique(4), false, false, false, false},
		{"empty graph", New(0), false, false, false, true},
	}
	for _, c := range cases {
		if got := c.g.IsChain(); got != c.chain {
			t.Errorf("%s: IsChain = %v, want %v", c.name, got, c.chain)
		}
		if got := c.g.IsStar(); got != c.star {
			t.Errorf("%s: IsStar = %v, want %v", c.name, got, c.star)
		}
		if got := c.g.IsTree(); got != c.tree {
			t.Errorf("%s: IsTree = %v, want %v", c.name, got, c.tree)
		}
		if got := c.g.IsForest(); got != c.forest {
			t.Errorf("%s: IsForest = %v, want %v", c.name, got, c.forest)
		}
	}
	// a "broom": path with a 3-fan at the end — star but not chain
	g := path(4)
	g2 := New(7)
	for i := 0; i+1 < 4; i++ {
		g2.AddEdge(i, i+1)
	}
	g2.AddEdge(3, 4)
	g2.AddEdge(3, 5)
	g2.AddEdge(3, 6)
	_ = g
	if g2.IsChain() || !g2.IsStar() {
		t.Error("broom should be star but not chain")
	}
	// two branching nodes: tree but not star
	g3 := New(8)
	edges := [][2]int{{0, 1}, {1, 2}, {1, 3}, {1, 4}, {4, 5}, {4, 6}, {4, 7}}
	for _, e := range edges {
		g3.AddEdge(e[0], e[1])
	}
	if g3.IsStar() || !g3.IsTree() {
		t.Error("double-branch tree should be tree but not star")
	}
}

func TestExactTreewidth(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"single", New(1), 0},
		{"edge", path(2), 1},
		{"path10", path(10), 1},
		{"cycle5", cycle(5), 2},
		{"clique4", clique(4), 3},
		{"clique6", clique(6), 5},
		{"star10", star(10), 1},
		{"grid3x3", grid(3, 3), 3},
		{"grid4x4", grid(4, 4), 4},
	}
	for _, c := range cases {
		got, ok := Treewidth(c.g)
		if !ok {
			t.Fatalf("%s: undecided", c.name)
		}
		if got != c.want {
			t.Errorf("%s: treewidth = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestTreewidthAtMost(t *testing.T) {
	if ok, _ := TreewidthAtMost(clique(4), 2); ok {
		t.Error("K4 has treewidth 3")
	}
	if ok, _ := TreewidthAtMost(cycle(6), 2); !ok {
		t.Error("cycles have treewidth 2")
	}
}

func TestBoundsSandwichExact(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 60; i++ {
		n := 4 + r.Intn(9)
		g := New(n)
		for e := 0; e < n+r.Intn(2*n); e++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		exact, ok := Treewidth(g)
		if !ok {
			t.Fatal("small graph undecided")
		}
		lb, ub := Bounds(g)
		if lb > exact || ub < exact {
			t.Fatalf("bounds [%d,%d] do not sandwich exact %d (n=%d m=%d)", lb, ub, exact, g.N(), g.M())
		}
	}
}

func TestForestsHaveTreewidthOne(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		n := 2 + r.Intn(12)
		g := New(n)
		for v := 1; v < n; v++ {
			if r.Float64() < 0.8 {
				g.AddEdge(v, r.Intn(v))
			}
		}
		tw, ok := Treewidth(g)
		if !ok {
			t.Fatal("undecided")
		}
		if g.IsForest() && g.M() > 0 && tw != 1 {
			t.Fatalf("forest treewidth = %d", tw)
		}
		if !g.IsForest() && tw < 2 {
			t.Fatalf("non-forest treewidth = %d", tw)
		}
	}
}

func TestComponentsAndInduced(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	sub := g.InducedSubgraph([]int{0, 1, 3, 4})
	if sub.M() != 2 || sub.N() != 4 {
		t.Errorf("induced: n=%d m=%d", sub.N(), sub.M())
	}
}
