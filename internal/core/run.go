package core

import (
	"io"

	"repro/internal/loggen"
)

// RunLogStudy generates the synthetic corpus for every Table 2 source at
// the given scale divisor and pushes it through the analyzer.
func RunLogStudy(seed int64, scaleDiv int) []*SourceReport {
	var reports []*SourceReport
	for i, s := range loggen.Sources() {
		g := loggen.NewGen(s, seed+int64(i)*7919)
		a := NewAnalyzer(s.Name)
		a.Report.Wikidata = s.Wikidata
		a.Report.Robotic = s.Robotic
		n := g.Count(scaleDiv)
		for j := 0; j < n; j++ {
			a.Ingest(g.Next())
		}
		reports = append(reports, a.Report)
	}
	return reports
}

// RenderAll writes every log-derived table and figure of the paper to w.
func RenderAll(w io.Writer, reports []*SourceReport) {
	dbp, wiki := GroupReports(reports)
	section := func(title string) {
		io.WriteString(w, "\n== "+title+" ==\n")
	}
	section("Table 2: queries in the logs")
	RenderTable2(w, reports)
	section("Figure 3: triple patterns per query")
	RenderFigure3(w, reports)
	section("Table 3: feature usage (DBpedia-BritM)")
	RenderTable3(w, dbp)
	section("Table 3: feature usage (Wikidata)")
	RenderTable3(w, wiki)
	section("Table 4: And/Filter operator sets (DBpedia-BritM)")
	RenderOperatorSets(w, dbp, Table4Rows)
	section("Table 5: And/Filter/2RPQ operator sets (Wikidata)")
	RenderOperatorSets(w, wiki, Table5Rows)
	section("Table 6: hypertree width and free-connex acyclicity (DBpedia-BritM)")
	RenderTable6(w, dbp)
	section("Table 7: shape analysis of graph-CQ+F queries (DBpedia-BritM)")
	RenderTable7(w, dbp)
	section("Table 8: property path types (Wikidata)")
	RenderTable8(w, wiki)
	section("Section 9.4: well-designed patterns")
	RenderSection94(w, dbp)
	RenderSection94(w, wiki)
	section("Section 9.6: property path tractability")
	RenderSection96(w, wiki)
}
