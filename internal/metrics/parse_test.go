package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseTextRoundTrip: everything the registry renders must come back
// out of ParseText with the same series keys and values.
func TestParseTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reqs := reg.CounterVec("rt_requests_total", "requests", "endpoint", "code")
	reqs.With("containment", "200").Add(7)
	reqs.With("analyze", "504").Add(2)
	reg.GaugeFunc("rt_inflight", "inflight", func() float64 { return 3 })
	reg.HistogramVec("rt_seconds", "latency", DefBuckets, "endpoint").
		With("containment").Observe(0.02)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v := got[`rt_requests_total{endpoint="containment",code="200"}`]; v != 7 {
		t.Fatalf("containment counter = %v, want 7 (parsed: %v)", v, got)
	}
	if v := got[`rt_requests_total{endpoint="analyze",code="504"}`]; v != 2 {
		t.Fatalf("analyze counter = %v, want 2", v)
	}
	if v := got["rt_inflight"]; v != 3 {
		t.Fatalf("gauge = %v, want 3", v)
	}
	foundBucket := false
	for series, v := range got {
		if strings.HasPrefix(series, "rt_seconds_bucket{") && v > 0 {
			foundBucket = true
		}
	}
	if !foundBucket {
		t.Fatal("no histogram bucket series parsed")
	}
	if got["rt_seconds_count{endpoint=\"containment\"}"] != 1 {
		t.Fatal("histogram count series missing")
	}
}

func TestParseTextSkipsCommentsAndMalformed(t *testing.T) {
	in := `# HELP x y
# TYPE x counter
x 1
ok{l="a b c"} 2.5

malformed-no-value
also_malformed abc
y{v="+Inf bucket"} 4
`
	got, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d series, want 3: %v", len(got), got)
	}
	if got["x"] != 1 || got[`ok{l="a b c"}`] != 2.5 || got[`y{v="+Inf bucket"}`] != 4 {
		t.Fatalf("values: %v", got)
	}
}

func TestSeriesLabel(t *testing.T) {
	series := `rwd_span_cost_total{span="automata.contains",counter="product_states"}`
	if v, ok := SeriesLabel(series, "span"); !ok || v != "automata.contains" {
		t.Fatalf("span = %q, %v", v, ok)
	}
	if v, ok := SeriesLabel(series, "counter"); !ok || v != "product_states" {
		t.Fatalf("counter = %q, %v", v, ok)
	}
	if _, ok := SeriesLabel(series, "absent"); ok {
		t.Fatal("absent label reported present")
	}
	if _, ok := SeriesLabel("bare_series", "span"); ok {
		t.Fatal("label found on a bare series")
	}
	// commas and escaped quotes inside values must not break the split
	tricky := `m{a="x,y",b="say \"hi\"",c="z"}`
	if v, ok := SeriesLabel(tricky, "a"); !ok || v != "x,y" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	if v, ok := SeriesLabel(tricky, "c"); !ok || v != "z" {
		t.Fatalf("c = %q, %v", v, ok)
	}
}
