package regex

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the algebraic notation used throughout the paper:
//
//	expr   := term ('+' term)* | term ('|' term)*     union
//	term   := factor factor*                          concatenation
//	factor := atom ('*' | '+' | '?')*                 postfix iteration
//	atom   := label | '(' expr ')' | '<eps>' | '<empty>'
//
// Labels are runs of letters, digits, and the characters _ : # $ ' -.
// Because the paper overloads '+' both as infix union and as postfix
// iteration, Parse disambiguates lexically: a '+' that immediately follows an
// atom, a ')' or another postfix operator *without intervening whitespace* is
// the postfix operator; any other '+' is union. The unambiguous '|' is also
// accepted for union. Examples: "a+b" is a⁺·b while "a + b" and "a|b" are
// a ∪ b; "b* a (b* a)*" is the deterministic expression of Section 4.2.1.
func Parse(s string) (*Expr, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: s}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("regex: unexpected %q at offset %d in %q", p.toks[p.pos].text, p.toks[p.pos].off, s)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(s string) *Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokLabel tokKind = iota
	tokLParen
	tokRParen
	tokUnion    // '+' (infix) or '|'
	tokStar     // '*'
	tokPlusPost // '+' (postfix)
	tokOpt      // '?'
	tokEps      // <eps>
	tokEmpty    // <empty>
)

type token struct {
	kind tokKind
	text string
	off  int
}

func isLabelRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		r == '_' || r == ':' || r == '#' || r == '$' || r == '\'' || r == '-'
}

func lex(s string) ([]token, error) {
	var toks []token
	rs := []rune(s)
	i := 0
	// prevAtomEnd is the rune index just past the previous atom/')'/postfix
	// token, used to classify '+'.
	prevAtomEnd := -1
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")", i})
			prevAtomEnd = i + 1
			i++
		case r == '|':
			toks = append(toks, token{tokUnion, "|", i})
			i++
		case r == '*':
			toks = append(toks, token{tokStar, "*", i})
			prevAtomEnd = i + 1
			i++
		case r == '?':
			toks = append(toks, token{tokOpt, "?", i})
			prevAtomEnd = i + 1
			i++
		case r == '+':
			if prevAtomEnd == i {
				toks = append(toks, token{tokPlusPost, "+", i})
				prevAtomEnd = i + 1
			} else {
				toks = append(toks, token{tokUnion, "+", i})
			}
			i++
		case r == '<':
			j := i
			for j < len(rs) && rs[j] != '>' {
				j++
			}
			if j == len(rs) {
				return nil, fmt.Errorf("regex: unterminated '<' at offset %d in %q", i, s)
			}
			word := string(rs[i : j+1])
			switch word {
			case "<eps>":
				toks = append(toks, token{tokEps, word, i})
			case "<empty>":
				toks = append(toks, token{tokEmpty, word, i})
			default:
				return nil, fmt.Errorf("regex: unknown token %q at offset %d", word, i)
			}
			prevAtomEnd = j + 1
			i = j + 1
		case isLabelRune(r):
			j := i
			for j < len(rs) && isLabelRune(rs[j]) {
				j++
			}
			toks = append(toks, token{tokLabel, string(rs[i:j]), i})
			prevAtomEnd = j
			i = j
		default:
			return nil, fmt.Errorf("regex: invalid character %q at offset %d in %q", r, i, s)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) parseUnion() (*Expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokUnion {
			break
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &Expr{Kind: Union, Subs: subs}, nil
}

func (p *parser) parseConcat() (*Expr, error) {
	first, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		if t.kind != tokLabel && t.kind != tokLParen && t.kind != tokEps && t.kind != tokEmpty {
			break
		}
		next, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &Expr{Kind: Concat, Subs: subs}, nil
}

func (p *parser) parsePostfix() (*Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		switch t.kind {
		case tokStar:
			e = NewStar(e)
		case tokPlusPost:
			e = NewPlus(e)
		case tokOpt:
			e = NewOpt(e)
		default:
			return e, nil
		}
		p.pos++
	}
	return e, nil
}

func (p *parser) parseAtom() (*Expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("regex: unexpected end of input in %q", p.src)
	}
	switch t.kind {
	case tokLabel:
		p.pos++
		return NewSymbol(t.text), nil
	case tokEps:
		p.pos++
		return NewEpsilon(), nil
	case tokEmpty:
		p.pos++
		return NewEmpty(), nil
	case tokLParen:
		p.pos++
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		t, ok := p.peek()
		if !ok || t.kind != tokRParen {
			return nil, fmt.Errorf("regex: missing ')' in %q", p.src)
		}
		p.pos++
		return e, nil
	}
	return nil, fmt.Errorf("regex: unexpected %q at offset %d in %q", t.text, t.off, p.src)
}

// ParseDTDContent parses a DTD content model in the XML 1.1 syntax used by
// <!ELEMENT …> declarations: ',' for concatenation, '|' for union, postfix
// '*', '+', '?', parentheses, and the special models EMPTY and ANY over the
// given alphabet of all declared element names. Mixed content
// "(#PCDATA | a | …)*" is reduced to its element part, matching the paper's
// abstraction of trees without text nodes (Example 3.1).
//
// ANY is translated to (a1 + … + an)* over the supplied alphabet; the paper's
// Section 4.5 discusses ANY as DTD's way to allow arbitrary content.
func ParseDTDContent(s string, anyAlphabet []string) (*Expr, error) {
	t := strings.TrimSpace(s)
	switch t {
	case "EMPTY":
		return NewEpsilon(), nil
	case "ANY":
		subs := make([]*Expr, 0, len(anyAlphabet))
		for _, a := range anyAlphabet {
			subs = append(subs, NewSymbol(a))
		}
		if len(subs) == 0 {
			return NewEpsilon(), nil
		}
		return NewStar(NewUnion(subs...)), nil
	}
	p := &dtdParser{src: t}
	e, err := p.parseChoice()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("dtd content: trailing input %q", p.src[p.pos:])
	}
	return e, nil
}

type dtdParser struct {
	src string
	pos int
}

func (p *dtdParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *dtdParser) parseChoice() (*Expr, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '|' {
			break
		}
		p.pos++
		e, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		subs = append(subs, e)
	}
	// #PCDATA members were parsed as ε; drop them from multi-way unions.
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &Expr{Kind: Union, Subs: subs}, nil
}

func (p *dtdParser) parseSeq() (*Expr, error) {
	first, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ',' {
			break
		}
		p.pos++
		e, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		subs = append(subs, e)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &Expr{Kind: Concat, Subs: subs}, nil
}

func (p *dtdParser) parseUnit() (*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("dtd content: unexpected end of %q", p.src)
	}
	var e *Expr
	if p.src[p.pos] == '(' {
		p.pos++
		inner, err := p.parseChoice()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("dtd content: missing ')' in %q", p.src)
		}
		p.pos++
		e = inner
	} else {
		start := p.pos
		for p.pos < len(p.src) && isDTDNameByte(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("dtd content: invalid character %q in %q", p.src[p.pos], p.src)
		}
		name := p.src[start:p.pos]
		if name == "#PCDATA" {
			e = NewEpsilon() // text content is abstracted away
		} else {
			e = NewSymbol(name)
		}
	}
	// Postfix operator.
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '*':
			p.pos++
			e = NewStar(e)
		case '+':
			p.pos++
			e = NewPlus(e)
		case '?':
			p.pos++
			e = NewOpt(e)
		}
	}
	return e, nil
}

func isDTDNameByte(b byte) bool {
	return b == '#' || b == '_' || b == ':' || b == '-' || b == '.' ||
		(b >= '0' && b <= '9') || (b >= 'A' && b <= 'Z') || (b >= 'a' && b <= 'z')
}
