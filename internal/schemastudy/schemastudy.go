// Package schemastudy replays the schema corpus studies of Sections 4.1,
// 4.2 and 4.4 of "Towards Theory for Real-World Data":
//
//   - Choi (60 DTDs): recursion in 35/60; non-recursive DTDs allowing
//     document depths up to 20; regular-expression parse depths 1–9; some
//     DTDs use non-deterministic expressions in violation of the XML
//     standard.
//   - Bex, Neven & Van den Bussche (103 DTDs / 30 XSDs): over 92% of
//     expressions are CHAREs; over 99% are SOREs (single-occurrence); ANY
//     appeared in one schema; 25 of 30 XSDs are structurally equivalent to
//     a DTD, the rest use types depending on ancestor labels up to the
//     grandparent.
//
// The corpus is synthetic (gated input), but every reported number is
// computed by the real classifiers in internal/chare, internal/kore,
// internal/determinism and internal/edtd.
package schemastudy

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/chare"
	"repro/internal/determinism"
	"repro/internal/dtd"
	"repro/internal/edtd"
	"repro/internal/kore"
	"repro/internal/regex"
)

// DTDGen generates synthetic DTD texts with calibrated structural rates.
type DTDGen struct {
	// RecursionRate is the fraction of DTDs with a recursive rule (Choi:
	// 35/60 ≈ 0.58).
	RecursionRate float64
	// NonCHARERate is the per-expression probability of a non-sequential
	// expression (Bex et al.: < 8%).
	NonCHARERate float64
	// NonSORERate is the per-expression probability of a repeated symbol
	// (Bex et al.: < 1%).
	NonSORERate float64
	// NonDeterministicRate is the per-expression probability of a
	// one-ambiguous expression (violating the XML standard).
	NonDeterministicRate float64
	// ANYRate is the per-DTD probability of an ANY content model (1/103).
	ANYRate float64
	// MaxElements bounds the number of element declarations.
	MaxElements int
}

// DefaultDTDGen is calibrated to the Section 4 studies. Note that every
// SORE is deterministic (each symbol labels at most one Glushkov position),
// so the non-deterministic and repeated-symbol rates jointly stay below
// the ≈1% non-SORE budget.
func DefaultDTDGen() *DTDGen {
	return &DTDGen{
		RecursionRate:        35.0 / 60.0,
		NonCHARERate:         0.035,
		NonSORERate:          0.004,
		NonDeterministicRate: 0.005,
		ANYRate:              1.0 / 103.0,
		MaxElements:          22,
	}
}

var elementNames = []string{
	"article", "section", "title", "para", "item", "list", "figure",
	"caption", "author", "date", "ref", "note", "table", "row", "cell",
}

// DTD generates one DTD document text.
func (g *DTDGen) DTD(r *rand.Rand) string {
	n := 3 + r.Intn(g.MaxElements-2)
	names := make([]string, n)
	perm := r.Perm(len(elementNames))
	for i := range names {
		names[i] = elementNames[perm[i%len(elementNames)]]
		if i >= len(elementNames) {
			// keep element names unique for large DTDs
			names[i] = fmt.Sprintf("%s%d", names[i], i/len(elementNames)+1)
		}
	}
	recursive := r.Float64() < g.RecursionRate
	var b strings.Builder
	for i, name := range names {
		// children candidates: later names (layered → non-recursive)
		var pool []string
		for j := i + 1; j < n; j++ {
			pool = append(pool, names[j])
		}
		var model string
		if recursive && i == 0 {
			// force a cycle: the head element optionally contains itself
			model = fmt.Sprintf("(%s?", names[0])
			if len(pool) > 0 {
				model += "," + pool[r.Intn(len(pool))] + "*"
			}
			model += ")"
		} else {
			model = g.contentModel(r, pool)
		}
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", name, model)
	}
	return b.String()
}

// pickDistinct draws k distinct names from the pool (fewer when the pool
// is small).
func pickDistinct(r *rand.Rand, pool []string, k int) []string {
	if k > len(pool) {
		k = len(pool)
	}
	perm := r.Perm(len(pool))
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

// contentModel builds a DTD content model string over the pool.
func (g *DTDGen) contentModel(r *rand.Rand, pool []string) string {
	if len(pool) == 0 {
		return "(#PCDATA)"
	}
	if r.Float64() < g.ANYRate {
		return "ANY"
	}
	if r.Float64() < g.NonCHARERate && len(pool) >= 3 {
		// non-sequential: nested union of concatenations (a,b)|(c) or
		// starred concatenation (a,b)* — still single-occurrence
		ds := pickDistinct(r, pool, 3)
		if r.Float64() < 0.5 {
			return fmt.Sprintf("((%s,%s)|(%s))", ds[0], ds[1], ds[2])
		}
		return fmt.Sprintf("((%s,%s)*)", ds[0], ds[1])
	}
	if r.Float64() < g.NonDeterministicRate && len(pool) >= 2 {
		// the classical violation: (a|b)*,a — repeated symbol, one-ambiguous
		ds := pickDistinct(r, pool, 2)
		return fmt.Sprintf("((%s|%s)*,%s)", ds[0], ds[1], ds[0])
	}
	// sequential (CHARE) model; symbols drawn distinct so the expression
	// is single-occurrence, with a rare deliberate repeat (non-SORE)
	k := 1 + r.Intn(4)
	picked := pickDistinct(r, pool, 2*k)
	next := 0
	take := func() (string, bool) {
		if next >= len(picked) {
			return "", false
		}
		next++
		return picked[next-1], true
	}
	var factors []string
	for i := 0; i < k; i++ {
		name, ok := take()
		if !ok {
			break
		}
		f := name
		if r.Float64() < 0.3 {
			if other, ok := take(); ok {
				f = "(" + name + "|" + other + ")"
				// occasional deeper nesting, reaching Choi's parse depths
				// (such factors are not simple, so this also contributes to
				// the ≈7% non-CHARE budget)
				if r.Float64() < 0.05 {
					if third, ok := take(); ok {
						f = "(" + name + "|(" + other + "," + third + "?))"
					}
				}
			}
		}
		switch x := r.Float64(); {
		case x < 0.25:
			f += "*"
		case x < 0.38:
			f += "+"
		case x < 0.55:
			f += "?"
		}
		factors = append(factors, f)
	}
	if len(factors) == 0 {
		factors = append(factors, pool[0])
	}
	if r.Float64() < g.NonSORERate {
		// deliberate repeat: append an unstarred copy of the first symbol,
		// keeping the expression sequential but 2-occurrence — and place a
		// separator so it stays deterministic only by accident
		factors = append(factors, strings.Trim(strings.SplitN(factors[0], "|", 2)[0], "()*+?"))
	}
	return "(" + strings.Join(factors, ",") + ")"
}

// DTDReport aggregates the Section 4.1/4.2 classification of a DTD corpus.
type DTDReport struct {
	Total       int
	ParseErrors int
	Recursive   int
	// MaxDepths holds, per non-recursive DTD, the maximal document depth.
	MaxDepths []int

	Expressions      int
	CHAREs           int
	SOREs            int
	Deterministic    int
	ANYUses          int
	MaxParseDepth    int
	ParseDepthCounts map[int]int
}

// AnalyzeDTDs classifies the corpus of DTD texts.
func AnalyzeDTDs(texts []string) *DTDReport {
	rep := &DTDReport{ParseDepthCounts: map[int]int{}}
	for _, text := range texts {
		d, err := dtd.ParseText(text, "")
		if err != nil {
			rep.ParseErrors++
			continue
		}
		rep.Total++
		if strings.Contains(text, "ANY") {
			rep.ANYUses++
		}
		if d.IsRecursive() {
			rep.Recursive++
		} else if depth, ok := d.MaxDepth(); ok {
			rep.MaxDepths = append(rep.MaxDepths, depth)
		}
		for _, e := range d.Rules {
			rep.Expressions++
			if chare.IsCHARE(e) {
				rep.CHAREs++
			}
			if kore.IsSORE(e) {
				rep.SOREs++
			}
			if determinism.IsDeterministic(e) {
				rep.Deterministic++
			}
			pd := e.ParseDepth()
			rep.ParseDepthCounts[pd]++
			if pd > rep.MaxParseDepth {
				rep.MaxParseDepth = pd
			}
		}
	}
	return rep
}

// CHARERate returns the fraction of expressions that are CHAREs (paper:
// over 92%).
func (r *DTDReport) CHARERate() float64 {
	if r.Expressions == 0 {
		return 0
	}
	return float64(r.CHAREs) / float64(r.Expressions)
}

// SORERate returns the fraction of single-occurrence expressions (paper:
// over 99%).
func (r *DTDReport) SORERate() float64 {
	if r.Expressions == 0 {
		return 0
	}
	return float64(r.SOREs) / float64(r.Expressions)
}

// XSDGen generates synthetic EDTD corpora with the Bex et al. 25/30
// structure: most schemas are structurally DTD-expressible; the rest use
// ancestor-dependent types à la Figure 2a.
type XSDGen struct {
	// ComplexTypeRate is the fraction of schemas that genuinely use
	// ancestor-dependent types (5/30).
	ComplexTypeRate float64
}

// DefaultXSDGen matches the study.
func DefaultXSDGen() *XSDGen { return &XSDGen{ComplexTypeRate: 5.0 / 30.0} }

// Schema generates one EDTD.
func (g *XSDGen) Schema(r *rand.Rand) *edtd.EDTD {
	if r.Float64() < g.ComplexTypeRate {
		// a Figure 2a-style schema: two contexts, discriminated content
		d := edtd.New().
			AddType("a", "a", regex.MustParse("b + c")).
			AddType("b", "b", regex.MustParse("e d1 f")).
			AddType("c", "c", regex.MustParse("e d2 f")).
			AddType("d1", "d", regex.MustParse("g h1 i")).
			AddType("d2", "d", regex.MustParse("g h2 i")).
			AddType("h1", "h", regex.MustParse("j")).
			AddType("h2", "h", regex.MustParse("k")).
			AddStart("a")
		return d
	}
	// DTD-like schema with trivially renamed types
	d := edtd.New().
		AddType("root", "root", regex.MustParse("sec*")).
		AddType("sec", "sec", regex.MustParse("title par*")).
		AddType("title", "title", regex.NewEpsilon()).
		AddType("par", "par", regex.NewEpsilon()).
		AddStart("root")
	return d
}

// XSDReport aggregates the Section 4.4 statistic.
type XSDReport struct {
	Total             int
	DTDExpressible    int
	SingleType        int
	DependencyDepth12 int // types determined by parent or grandparent
}

// AnalyzeXSDs classifies the corpus.
func AnalyzeXSDs(schemas []*edtd.EDTD) *XSDReport {
	rep := &XSDReport{}
	for _, d := range schemas {
		rep.Total++
		if d.IsSingleType() {
			rep.SingleType++
		}
		if d.StructurallyDTDExpressible() {
			rep.DTDExpressible++
		} else if k := d.TypeDependencyDepth(3); k >= 1 && k <= 2 {
			rep.DependencyDepth12++
		}
	}
	return rep
}
