package rdf

import (
	"math/rand"
	"testing"
)

func smallGraph() *Graph {
	g := NewGraph()
	g.Add("s1", "wdt:P31", "Q5")
	g.Add("s1", "wdt:P625", "coord1")
	g.Add("s2", "wdt:P31", "Q5")
	g.Add("s2", "wdt:P625", "coord2")
	g.Add("s3", "wdt:P279", "Q5")
	return g
}

func TestGraphBasics(t *testing.T) {
	g := smallGraph()
	if g.Len() != 5 {
		t.Errorf("Len = %d", g.Len())
	}
	if g.Add("s1", "wdt:P31", "Q5") {
		t.Error("duplicate triple added")
	}
	if !g.Has("s1", "wdt:P31", "Q5") || g.Has("s1", "wdt:P31", "Q6") {
		t.Error("Has broken")
	}
	if got := g.ObjectsOf("s1", "wdt:P31"); len(got) != 1 || got[0] != "Q5" {
		t.Errorf("ObjectsOf = %v", got)
	}
	if got := g.SubjectsOf("wdt:P31", "Q5"); len(got) != 2 {
		t.Errorf("SubjectsOf = %v", got)
	}
	if got := g.Match("", "wdt:P31", ""); len(got) != 2 {
		t.Errorf("Match(*,P31,*) = %v", got)
	}
	if got := g.Match("", "", ""); len(got) != 5 {
		t.Errorf("Match all = %d", len(got))
	}
	if got := g.Match("s1", "", ""); len(got) != 2 {
		t.Errorf("Match(s1,*,*) = %d", len(got))
	}
	if got := g.Match("", "", "Q5"); len(got) != 3 {
		t.Errorf("Match(*,*,Q5) = %d", len(got))
	}
}

func TestComputeStatsSmall(t *testing.T) {
	st := ComputeStats(smallGraph())
	if st.Triples != 5 || st.Subjects != 3 || st.Predicates != 3 || st.Objects != 3 {
		t.Errorf("counts: %+v", st)
	}
	// s1, s2 share the list {P31, P625}; s3 has {P279}.
	if st.PredicateLists != 2 {
		t.Errorf("PredicateLists = %d, want 2", st.PredicateLists)
	}
	if st.PSOverlap != 0 || st.POOverlap != 0 {
		t.Errorf("overlaps should be zero: %v %v", st.PSOverlap, st.POOverlap)
	}
	if st.MeanObjectsPerSP != 1 {
		t.Errorf("MeanObjectsPerSP = %f", st.MeanObjectsPerSP)
	}
}

func TestGeneratedDatasetMatchesStudyRegime(t *testing.T) {
	// Section 7.1: power-law degrees, shared predicate lists (~99%), tiny
	// P/S overlap, (s,p) multiplicity ≈ 1.
	g := DefaultGen().Graph(rand.New(rand.NewSource(7)), 5000)
	st := ComputeStats(g)
	if st.Subjects < 4000 {
		t.Fatalf("subjects = %d", st.Subjects)
	}
	// skewed in-degrees: max far above mean
	if float64(st.InDegree.Max) < 10*st.InDegree.Mean {
		t.Errorf("in-degree not skewed: max %d mean %.2f", st.InDegree.Max, st.InDegree.Mean)
	}
	// shared predicate lists: few lists, many subjects
	if st.RatioSubjectsPerList < 100 {
		t.Errorf("subjects per list = %.1f, want ≫ 1", st.RatioSubjectsPerList)
	}
	if st.SharedListSubjectRate < 0.95 {
		t.Errorf("shared list rate = %.3f, want ≈ 0.99", st.SharedListSubjectRate)
	}
	// (s,p) mostly unique object
	if st.MeanObjectsPerSP > 1.2 {
		t.Errorf("MeanObjectsPerSP = %.3f, want ≈ 1", st.MeanObjectsPerSP)
	}
	// skew in (p,o)→s: high standard deviation relative to the mean
	if st.StdDevSubjectsPerPO < 0.7*st.MeanSubjectsPerPO {
		t.Errorf("subjects-per-(p,o) not skewed: mean %.2f std %.2f",
			st.MeanSubjectsPerPO, st.StdDevSubjectsPerPO)
	}
	// overlap tiny but (by construction) possibly non-zero
	if st.PSOverlap > 0.001 {
		t.Errorf("PSOverlap = %g, want ≤ 10⁻³", st.PSOverlap)
	}
	// power-law exponent in a plausible range
	if a := st.InDegree.Alpha; a < 1.2 || a > 4.5 {
		t.Errorf("in-degree alpha = %.2f", a)
	}
}
