// RPQ semantics (Section 9.6): the same property path evaluated under the
// W3C regular semantics, simple-path semantics, and trail semantics — and
// the tractability classifiers that predict which of them stay polynomial.
package main

import (
	"fmt"

	"repro/internal/propertypath"
	"repro/internal/rdf"
)

func main() {
	// A ring with a chord: 1 → 2 → 3 → 4 → 1 and 2 → 5.
	g := rdf.NewGraph()
	g.Add("n1", "a", "n2")
	g.Add("n2", "a", "n3")
	g.Add("n3", "a", "n4")
	g.Add("n4", "a", "n1")
	g.Add("n2", "a", "n5")

	paths := []string{"a*", "(a/a)*", "a/a/a/a/a"}
	for _, s := range paths {
		p := propertypath.MustParse(s)
		fmt.Printf("path %-10s  type %-6s  Table8 row %-10q  STE %-5v  C_tract %-5v  T_tract %v\n",
			s, propertypath.TypeString(p), string(propertypath.Classify(p)),
			propertypath.IsSimpleTransitive(p), propertypath.InCtract(p),
			propertypath.InTtractApprox(p))
		fmt.Printf("  regular:      %v\n", propertypath.Eval(g, p, "n1"))
		fmt.Printf("  simple paths: %v\n", propertypath.EvalSimplePaths(g, p, "n1"))
		fmt.Printf("  trails:       %v\n\n", propertypath.EvalTrails(g, p, "n1"))
	}

	fmt.Println("a/a/a/a/a reaches n2 under the regular semantics by going around")
	fmt.Println("the ring (revisiting n1), but no SIMPLE path and no TRAIL of length")
	fmt.Println("five exists — the semantics genuinely differ. (a/a)* is the")
	fmt.Println("canonical language outside C_tract: finding even-length simple")
	fmt.Println("paths is NP-hard, and the classifier flags it.")

	// downward-closed ⇒ trail-tractable
	dc := propertypath.MustParse("a*/a*")
	fmt.Printf("\na*/a* downward-closed: %v (⇒ trail-tractable)\n", propertypath.IsDownwardClosed(dc))
}
