package obs

import "sync"

// Process-wide cost counters, for hot paths that do not carry a
// context (the Brzozowski derivative engine is recursive and pure; its
// callers would have to thread a context through every recursion to
// get span-scoped accounting). A Global counter is one atomic add per
// event — always on, never sampled — and the service exports the
// snapshot into the metrics registry at scrape time.

var (
	globalMu sync.Mutex
	globals  = map[string]*Counter{}
)

// Global returns the process-wide counter with the given name,
// creating it on first use. The returned pointer is stable; hot paths
// look it up once in a package-level var.
func Global(name string) *Counter {
	globalMu.Lock()
	defer globalMu.Unlock()
	c, ok := globals[name]
	if !ok {
		c = &Counter{name: name}
		globals[name] = c
	}
	return c
}

// GlobalSnapshot returns a name→value copy of every process-wide
// counter.
func GlobalSnapshot() map[string]int64 {
	globalMu.Lock()
	defer globalMu.Unlock()
	out := make(map[string]int64, len(globals))
	for name, c := range globals {
		out[name] = c.Value()
	}
	return out
}
