package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.Finish()
	s.SetAttr("k", "v")
	s.Count("n", 3)
	if c := s.Counter("n"); c != nil {
		t.Fatalf("nil span Counter = %v, want nil", c)
	}
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value != 0")
	}
	if s.Tree() != nil {
		t.Fatal("nil span Tree != nil")
	}
	if s.Name() != "" || s.TraceID() != "" || s.Duration() != 0 || s.CounterValue("n") != 0 {
		t.Fatal("nil span accessors not zero")
	}
}

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "x")
	if s != nil {
		t.Fatal("span without tracer should be nil")
	}
	if ctx2 != ctx {
		t.Fatal("context should be returned unchanged")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on bare context should be nil")
	}
}

func TestSpanNestingAndCounters(t *testing.T) {
	tr := &Tracer{}
	ctx, root := tr.StartRoot(context.Background(), "root")
	root.SetAttr("engine", "regex")

	ctx2, child := StartSpan(ctx, "determinize")
	child.Counter("states_expanded").Add(42)
	_, grand := StartSpan(ctx2, "product")
	grand.Count("product_states", 7)
	grand.Finish()
	child.Finish()
	root.Finish()

	if got := child.CounterValue("states_expanded"); got != 42 {
		t.Fatalf("states_expanded = %d, want 42", got)
	}
	tree := root.Tree()
	if tree.Name != "root" || tree.TraceID == "" {
		t.Fatalf("bad root node: %+v", tree)
	}
	if tree.Attrs["engine"] != "regex" {
		t.Fatalf("attrs = %v", tree.Attrs)
	}
	if len(tree.Children) != 1 || tree.Children[0].Name != "determinize" {
		t.Fatalf("children = %+v", tree.Children)
	}
	if tree.Children[0].Counters["states_expanded"] != 42 {
		t.Fatalf("child counters = %v", tree.Children[0].Counters)
	}
	if tree.Children[0].Children[0].Counters["product_states"] != 7 {
		t.Fatalf("grandchild counters = %v", tree.Children[0].Children[0].Counters)
	}
	if tree.Children[0].TraceID != "" {
		t.Fatal("trace id should only render on the root")
	}

	// JSON round-trip: the explain payload shape.
	raw, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Node
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Children[0].Counters["states_expanded"] != 42 {
		t.Fatalf("round-trip lost counters: %s", raw)
	}
}

func TestSpanConcurrentChildrenAndCounters(t *testing.T) {
	tr := &Tracer{}
	ctx, root := tr.StartRoot(context.Background(), "pipeline")
	c := root.Counter("queries")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, shard := StartSpan(ctx, "shard")
			for j := 0; j < 100; j++ {
				c.Inc()
				shard.Counter("ingested").Inc()
			}
			shard.Finish()
		}()
	}
	wg.Wait()
	root.Finish()
	if got := c.Value(); got != 1600 {
		t.Fatalf("queries = %d, want 1600", got)
	}
	tree := root.Tree()
	if len(tree.Children) != 16 {
		t.Fatalf("children = %d, want 16", len(tree.Children))
	}
	var sum int64
	for _, ch := range tree.Children {
		sum += ch.Counters["ingested"]
	}
	if sum != 1600 {
		t.Fatalf("shard counters sum = %d, want 1600", sum)
	}
}

func TestFinishIdempotentAndOnFinish(t *testing.T) {
	var finished []string
	tr := &Tracer{OnFinish: func(s *Span) { finished = append(finished, s.Name()) }}
	_, root := tr.StartRoot(context.Background(), "op")
	root.Finish()
	d := root.Duration()
	time.Sleep(time.Millisecond)
	root.Finish()
	if root.Duration() != d {
		t.Fatal("second Finish changed the duration")
	}
	if len(finished) != 1 || finished[0] != "op" {
		t.Fatalf("OnFinish calls = %v, want exactly one", finished)
	}
}

func TestSlowLogThresholdAndSampling(t *testing.T) {
	var buf bytes.Buffer
	sl := &SlowLog{Threshold: 0, Sample: 3, Logger: log.New(&buf, "", 0)}
	tr := &Tracer{Slow: sl}
	for i := 0; i < 9; i++ {
		_, s := tr.StartRoot(context.Background(), "slow")
		s.Counter("states_expanded").Add(int64(i))
		s.SetAttr("engine", "regex")
		s.Finish()
	}
	if sl.Seen() != 9 {
		t.Fatalf("seen = %d, want 9", sl.Seen())
	}
	if sl.Logged() != 3 {
		t.Fatalf("logged = %d, want 3 (1-in-3 sampling)", sl.Logged())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("log lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	for _, ln := range lines {
		for _, want := range []string{"msg=slow_op", `span="slow"`, "trace=", "dur_ms=", "states_expanded=", `engine="regex"`} {
			if !strings.Contains(ln, want) {
				t.Fatalf("line %q missing %q", ln, want)
			}
		}
	}
}

// TestSlowLogConcurrentInvariants finishes slow spans from many
// goroutines and checks the sampling accounting: every slow span is
// seen, and logged == ceil(seen/sample) — the 1-in-N guarantee holds
// exactly even under contention because the sample decision is driven
// by the atomic seen counter, not a racy local.
func TestSlowLogConcurrentInvariants(t *testing.T) {
	const (
		goroutines = 8
		perG       = 250
		sample     = 7
	)
	var buf bytes.Buffer
	var mu sync.Mutex
	lockedBuf := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	sl := &SlowLog{Threshold: 0, Sample: sample, Logger: log.New(lockedBuf, "", 0)}
	tr := &Tracer{Slow: sl}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, s := tr.StartRoot(context.Background(), "slow")
				s.Count("states_expanded", 1)
				s.Finish()
			}
		}()
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if sl.Seen() != total {
		t.Fatalf("seen = %d, want %d", sl.Seen(), total)
	}
	wantLogged := (total + sample - 1) / sample // ceil
	if sl.Logged() != wantLogged {
		t.Fatalf("logged = %d, want ceil(%d/%d) = %d", sl.Logged(), total, sample, wantLogged)
	}
	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if int64(len(lines)) != wantLogged {
		t.Fatalf("emitted lines = %d, want %d", len(lines), wantLogged)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestSlowLogFastSpansIgnored(t *testing.T) {
	sl := &SlowLog{Threshold: time.Hour}
	tr := &Tracer{Slow: sl}
	_, s := tr.StartRoot(context.Background(), "fast")
	s.Finish()
	if sl.Seen() != 0 {
		t.Fatalf("seen = %d, want 0", sl.Seen())
	}
}

func TestWriteTree(t *testing.T) {
	tr := &Tracer{}
	ctx, root := tr.StartRoot(context.Background(), "containment")
	_, child := StartSpan(ctx, "determinize")
	child.Count("states_expanded", 5)
	child.Finish()
	root.SetAttr("engine", "regex")
	root.Finish()
	var buf bytes.Buffer
	if err := WriteTree(&buf, root.Tree()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"containment", "trace=", "  determinize", "states_expanded=5", `engine="regex"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree dump missing %q:\n%s", want, out)
		}
	}
}

func TestGlobalCounters(t *testing.T) {
	a := Global("test_counter_a")
	if Global("test_counter_a") != a {
		t.Fatal("Global not stable")
	}
	a.Add(3)
	a.Inc()
	snap := GlobalSnapshot()
	if snap["test_counter_a"] < 4 {
		t.Fatalf("snapshot = %v, want test_counter_a >= 4", snap)
	}
}
