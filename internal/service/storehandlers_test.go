package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/store"
)

func newStoreServer(t *testing.T) (*Server, string) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s, ts := newTestServer(t, Config{})
	s.AttachStore(st)
	return s, ts.URL
}

func TestCorpusEndpointsWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, c := range []struct{ method, path, body string }{
		{"GET", "/v1/corpora", ""},
		{"POST", "/v1/corpora", `{"name":"x","queries":["q"]}`},
		{"POST", "/v1/analyze", `{"corpus":"x"}`},
	} {
		var code int
		if c.method == "GET" {
			resp, err := http.Get(ts.URL + c.path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			code = resp.StatusCode
		} else {
			code = post(t, ts.URL, c.path, c.body, nil)
		}
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s without a store: code %d, want 503", c.method, c.path, code)
		}
	}
}

func TestCorpusIngestListAnalyze(t *testing.T) {
	_, base := newStoreServer(t)

	// Ingest a log corpus.
	queries := []string{
		"SELECT ?x WHERE { ?x a ?y }",
		"not a query at all ((",
		"SELECT ?x WHERE { ?x a ?y }",
	}
	body, _ := json.Marshal(map[string]any{"name": "logs", "queries": queries})
	var ing corpusIngestResponse
	if code := post(t, base, "/v1/corpora", string(body), &ing); code != 200 {
		t.Fatalf("ingest log: code %d", code)
	}
	if ing.Added != len(queries) || ing.Kind != "log" {
		t.Fatalf("ingest log: %+v", ing)
	}

	// Ingest a triples corpus, twice — the second call must dedup.
	triples := [][3]string{
		{"s1", "knows", "s2"},
		{"s2", "knows", "s3"},
		{"s1", "knows", "s2"},
	}
	body, _ = json.Marshal(map[string]any{"name": "graph", "triples": triples})
	if code := post(t, base, "/v1/corpora", string(body), &ing); code != 200 {
		t.Fatalf("ingest triples: code %d", code)
	}
	if ing.Added != 2 || ing.Skipped != 1 || ing.Kind != "triples" {
		t.Fatalf("ingest triples: %+v", ing)
	}
	if code := post(t, base, "/v1/corpora", string(body), &ing); code != 200 || ing.Added != 0 || ing.Skipped != 3 {
		t.Fatalf("re-ingest triples: code %d resp %+v", code, ing)
	}

	// List.
	resp, err := http.Get(base + "/v1/corpora")
	if err != nil {
		t.Fatal(err)
	}
	var list corporaResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Corpora) != 2 || list.Corpora[0].Name != "graph" || list.Corpora[0].Entries != 2 ||
		list.Corpora[1].Name != "logs" || list.Corpora[1].Entries != 3 {
		t.Fatalf("corpora list: %+v", list.Corpora)
	}

	// Store-backed log analysis must match the inline path byte for byte.
	inline, _ := json.Marshal(map[string]any{"name": "logs", "queries": queries})
	var inMem, stored analyzeResponse
	if code := post(t, base, "/v1/analyze", string(inline), &inMem); code != 200 {
		t.Fatalf("inline analyze: code %d", code)
	}
	if code := post(t, base, "/v1/analyze", `{"name":"logs","corpus":"logs"}`, &stored); code != 200 {
		t.Fatalf("store-backed analyze: code %d", code)
	}
	a, _ := json.Marshal(inMem.Report)
	b, _ := json.Marshal(stored.Report)
	if !bytes.Equal(a, b) {
		t.Fatalf("reports diverge:\ninline: %s\nstored: %s", a, b)
	}
	if stored.Queries != len(queries) || stored.Corpus != "logs" {
		t.Fatalf("store-backed analyze: %+v", stored)
	}

	// Store-backed RDF analysis.
	var rdfResp analyzeResponse
	if code := post(t, base, "/v1/analyze", `{"corpus":"graph"}`, &rdfResp); code != 200 {
		t.Fatalf("rdf analyze: code %d", code)
	}
	if rdfResp.RDFStats == nil || rdfResp.RDFStats.Triples != 2 || rdfResp.Report != nil {
		t.Fatalf("rdf analyze: %+v", rdfResp)
	}

	// Unknown corpus is 404, not 500.
	if code := post(t, base, "/v1/analyze", `{"corpus":"absent"}`, nil); code != http.StatusNotFound {
		t.Fatalf("unknown corpus: code %d, want 404", code)
	}
	// corpus+queries is the client's mistake.
	if code := post(t, base, "/v1/analyze", `{"corpus":"logs","queries":["q"]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("corpus+queries: code %d, want 400", code)
	}
}

func TestCorpusIngestValidation(t *testing.T) {
	_, base := newStoreServer(t)
	cases := []string{
		`{"queries":["q"]}`, // no name
		`{"name":"x"}`,      // no kind, no data
		`{"name":"x","kind":"nope","queries":["q"]}`,             // bad kind
		`{"name":"x","triples":[["s","p","o"]],"queries":["q"]}`, // both
		`{"name":"x","kind":"log","triples":[["s","p","o"]]}`,    // kind mismatch
		`{"name":"x","kind":"triples","queries":["q"]}`,          // kind mismatch
	}
	for i, c := range cases {
		if code := post(t, base, "/v1/corpora", c, nil); code != http.StatusBadRequest {
			t.Fatalf("case %d (%s): code %d, want 400", i, c, code)
		}
	}
}

func TestStoreMetricsExported(t *testing.T) {
	_, base := newStoreServer(t)
	body, _ := json.Marshal(map[string]any{"name": "g", "triples": [][3]string{{"s", "p", "o"}}})
	if code := post(t, base, "/v1/corpora", string(body), nil); code != 200 {
		t.Fatal("ingest failed")
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"rwd_store_corpora 1",
		"rwd_store_triples 1",
		"rwd_store_segments 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}
