package dtd

import (
	"context"

	"repro/internal/automata"
	"repro/internal/chare"
	"repro/internal/obs"
)

// Contains decides L(d1) ⊆ L(d2) — DTD containment, which Section 4.2.2
// notes "reduces to the same problems on regular expressions".
//
// The reduction: trim d1 to its reachable and realizable labels; then
// L(d1) ⊆ L(d2) iff every realizable start label of d1 is a start label of
// d2 and, for every trimmed label a, the realizable-restricted content
// language L(ρ1(a)) ∩ R* is contained in L(ρ2(a)). Soundness: any valid
// d1-tree's node uses such a word; completeness: a counterexample word at
// a reachable label extends to a full counterexample tree because all its
// labels are realizable in d1 (and validity in d2 would require the word
// in L(ρ2(a))).
func Contains(d1, d2 *DTD) bool {
	ok, _ := ContainsCtx(context.Background(), d1, d2)
	return ok
}

// ContainsCtx is Contains with cooperative cancellation: the per-label
// regular-expression containment checks (each PSPACE-hard in general)
// and the realizability fixpoint honor ctx, so a server can abort an
// adversarial instance at its deadline. On cancellation the boolean is
// meaningless and the error is ctx.Err().
func ContainsCtx(ctx context.Context, d1, d2 *DTD) (bool, error) {
	ctx, span := obs.StartSpan(ctx, "dtd.contains")
	defer span.Finish()
	real, err := d1.realizableCtx(ctx)
	if err != nil {
		return false, err
	}
	labelsChecked := span.Counter("labels_checked")
	// reachable ∩ realizable labels of d1, starting from realizable starts
	reachable := map[string]bool{}
	var stack []string
	for s := range d1.Start {
		if real[s] {
			if !d2.Start[s] {
				return false, nil // a valid single-root tree exists only under d1… unless not realizable
			}
			if !reachable[s] {
				reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, b := range d1.reachableChildLabels(a, real) {
			if !reachable[b] {
				reachable[b] = true
				stack = append(stack, b)
			}
		}
	}
	for a := range reachable {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		labelsChecked.Inc()
		n := restrictNFA(automata.Glushkov(d1.Rule(a)), real)
		ok, err := automata.NFAContainsCtx(ctx, n, d2.Rule(a))
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Equivalent reports L(d1) = L(d2).
func Equivalent(d1, d2 *DTD) bool {
	return Contains(d1, d2) && Contains(d2, d1)
}

// restrictNFA removes transitions with labels outside allowed.
func restrictNFA(n *automata.NFA, allowed map[string]bool) *automata.NFA {
	out := automata.NewNFA(n.NumStates)
	out.Initial = append([]int(nil), n.Initial...)
	for q := range n.Final {
		out.Final[q] = true
	}
	for q := 0; q < n.NumStates; q++ {
		for a, ps := range n.Trans[q] {
			if !allowed[a] {
				continue
			}
			for _, p := range ps {
				out.AddTransition(q, a, p)
			}
		}
	}
	return out
}

// ContentFragment classifies every content model of the DTD into the
// chain-expression fragment lattice of Section 4.2.2 and returns the
// observed fragment names; "general" marks non-sequential expressions.
// This powers the corpus studies and lets callers predict which
// containment algorithm (Theorem 4.4) applies.
func (d *DTD) ContentFragment() map[string]int {
	out := map[string]int{}
	for _, e := range d.Rules {
		if c, ok := chare.Parse(e); ok {
			out[c.FragmentName()]++
		} else {
			out["general"]++
		}
	}
	return out
}

// IntersectionNonEmpty decides whether some tree is valid w.r.t. all the
// given DTDs (the Intersection problem lifted to DTDs). The construction
// intersects rule-wise: a tree valid for all DTDs must, at every node,
// satisfy every DTD's rule; realizability of the product is computed as a
// least fixpoint like Realizable, over the product content languages.
func IntersectionNonEmpty(ds ...*DTD) bool {
	if len(ds) == 0 {
		return true
	}
	// shared start label required
	var commonStarts []string
	for s := range ds[0].Start {
		ok := true
		for _, d := range ds[1:] {
			if !d.Start[s] {
				ok = false
				break
			}
		}
		if ok {
			commonStarts = append(commonStarts, s)
		}
	}
	if len(commonStarts) == 0 {
		return false
	}
	// alphabet union
	alphaSet := map[string]bool{}
	for _, d := range ds {
		for _, a := range d.Alphabet() {
			alphaSet[a] = true
		}
	}
	// realizable-in-all fixpoint: label a is jointly realizable iff the
	// intersection of all content languages restricted to jointly
	// realizable labels is non-empty
	real := map[string]bool{}
	for {
		changed := false
		for a := range alphaSet {
			if real[a] {
				continue
			}
			if jointContentNonEmpty(ds, a, real) {
				real[a] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, s := range commonStarts {
		if real[s] {
			return true
		}
	}
	return false
}

// jointContentNonEmpty reports whether ⋂ L(ρ_i(a)) ∩ allowed* ≠ ∅ via an
// on-the-fly subset product of the restricted Glushkov automata.
func jointContentNonEmpty(ds []*DTD, label string, allowed map[string]bool) bool {
	nfas := make([]*automata.NFA, len(ds))
	for i, d := range ds {
		nfas[i] = restrictNFA(automata.Glushkov(d.Rule(label)), allowed)
	}
	type tuple [][]int
	tkey := func(t tuple) string {
		b := make([]byte, 0, 16)
		for _, set := range t {
			for _, q := range set {
				b = append(b, byte(q), byte(q>>8), ',')
			}
			b = append(b, ';')
		}
		return string(b)
	}
	startT := make(tuple, len(nfas))
	for i, n := range nfas {
		startT[i] = append([]int(nil), n.Initial...)
	}
	allFinal := func(t tuple) bool {
		for i, set := range t {
			ok := false
			for _, q := range set {
				if nfas[i].Final[q] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if allFinal(startT) {
		return true
	}
	seen := map[string]bool{tkey(startT): true}
	queue := []tuple{startT}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		// candidate labels: outgoing labels of the first component
		labels := map[string]bool{}
		for _, q := range t[0] {
			for a := range nfas[0].Trans[q] {
				labels[a] = true
			}
		}
		for a := range labels {
			next := make(tuple, len(nfas))
			dead := false
			for i, set := range t {
				m := map[int]bool{}
				for _, q := range set {
					for _, p := range nfas[i].Trans[q][a] {
						m[p] = true
					}
				}
				if len(m) == 0 {
					dead = true
					break
				}
				succ := make([]int, 0, len(m))
				for p := range m {
					succ = append(succ, p)
				}
				sortInts(succ)
				next[i] = succ
			}
			if dead {
				continue
			}
			k := tkey(next)
			if seen[k] {
				continue
			}
			seen[k] = true
			if allFinal(next) {
				return true
			}
			queue = append(queue, next)
		}
	}
	return false
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
