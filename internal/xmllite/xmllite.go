// Package xmllite implements a small XML processor sufficient for the
// well-formedness study of Grijzenhout & Marx reported in Section 3.1 of
// "Towards Theory for Real-World Data": 85% of 180k crawled XML files were
// well-formed, 9 of 74 error categories accounted for 99% of errors, and
// the top three — opening/ending tag mismatch, premature end of data in a
// tag, improper UTF-8 encoding — accounted for 79.9%.
//
// The checker classifies documents into those categories; the companion
// corpus generator (corpus.go) injects faults at calibrated rates so the
// study can be replayed end-to-end by classification rather than by
// construction.
//
// The parser abstracts documents as node-labeled trees (element names as
// labels), exactly as in Figure 1 and Example 3.1; attributes and text are
// recorded but not part of the tree abstraction.
package xmllite

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"repro/internal/tree"
)

// ErrorCategory classifies a well-formedness violation, following the
// taxonomy of the Grijzenhout & Marx study.
type ErrorCategory int

// Well-formedness error categories. The first three are the study's
// dominant ones (79.9% of all errors).
const (
	ErrNone          ErrorCategory = iota
	ErrTagMismatch                 // opening and ending tag mismatch
	ErrPrematureEnd                // premature end of data in a tag
	ErrBadUTF8                     // improper UTF-8 encoding
	ErrBadEntity                   // unescaped & or unknown entity reference
	ErrBadAttribute                // malformed attribute (unquoted value, missing =)
	ErrDuplicateAttr               // duplicate attribute name on one element
	ErrMultipleRoots               // content after the root element
	ErrBadName                     // invalid character in a tag or attribute name
	ErrStrayLT                     // raw '<' in character content
	ErrEmptyDocument               // no root element at all
)

var categoryNames = map[ErrorCategory]string{
	ErrNone:          "well-formed",
	ErrTagMismatch:   "tag mismatch",
	ErrPrematureEnd:  "premature end",
	ErrBadUTF8:       "improper UTF-8",
	ErrBadEntity:     "bad entity reference",
	ErrBadAttribute:  "malformed attribute",
	ErrDuplicateAttr: "duplicate attribute",
	ErrMultipleRoots: "multiple root elements",
	ErrBadName:       "invalid name",
	ErrStrayLT:       "stray '<' in content",
	ErrEmptyDocument: "empty document",
}

func (c ErrorCategory) String() string { return categoryNames[c] }

// Error is a well-formedness violation with its category and position.
type Error struct {
	Category ErrorCategory
	Offset   int
	Msg      string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xml: %s at offset %d: %s", e.Category, e.Offset, e.Msg)
}

// Attr is an attribute name/value pair.
type Attr struct {
	Name, Value string
}

// Element is a parsed XML element. Tree (via AsTree) projects away
// attributes and text, yielding the paper's node-labeled tree abstraction.
type Element struct {
	Name     string
	Attrs    []Attr
	Children []*Element
	Text     strings.Builder
}

// AsTree converts the element tree to the node-labeled tree abstraction of
// Section 3.
func (e *Element) AsTree() *tree.Node {
	n := tree.New(e.Name)
	for _, c := range e.Children {
		n.Add(c.AsTree())
	}
	return n
}

// Parse checks well-formedness and parses the document. On failure it
// returns a *Error carrying the category of the FIRST violation, matching
// the study's per-document classification.
func Parse(doc string) (*Element, *Error) {
	p := &scanner{src: doc}
	return p.parseDocument()
}

// Check returns the error category of the document, or ErrNone when it is
// well-formed.
func Check(doc string) ErrorCategory {
	_, err := Parse(doc)
	if err == nil {
		return ErrNone
	}
	return err.Category
}

type scanner struct {
	src string
	pos int
}

func (s *scanner) err(cat ErrorCategory, format string, args ...interface{}) *Error {
	return &Error{Category: cat, Offset: s.pos, Msg: fmt.Sprintf(format, args...)}
}

func (s *scanner) parseDocument() (*Element, *Error) {
	if !utf8.ValidString(s.src) {
		return nil, s.err(ErrBadUTF8, "document is not valid UTF-8")
	}
	s.skipMisc()
	if s.pos >= len(s.src) {
		return nil, s.err(ErrEmptyDocument, "no root element")
	}
	if s.src[s.pos] != '<' {
		return nil, s.err(ErrStrayLT, "content before root element")
	}
	root, err := s.parseElement()
	if err != nil {
		return nil, err
	}
	s.skipMisc()
	if s.pos < len(s.src) {
		if s.src[s.pos] == '<' {
			return nil, s.err(ErrMultipleRoots, "second root element")
		}
		return nil, s.err(ErrMultipleRoots, "character content after root element")
	}
	return root, nil
}

// skipMisc skips whitespace, comments, processing instructions, XML
// declarations and doctype declarations.
func (s *scanner) skipMisc() {
	for {
		for s.pos < len(s.src) && isSpace(s.src[s.pos]) {
			s.pos++
		}
		switch {
		case strings.HasPrefix(s.src[s.pos:], "<?"):
			end := strings.Index(s.src[s.pos:], "?>")
			if end < 0 {
				s.pos = len(s.src)
				return
			}
			s.pos += end + 2
		case strings.HasPrefix(s.src[s.pos:], "<!--"):
			end := strings.Index(s.src[s.pos+4:], "-->")
			if end < 0 {
				s.pos = len(s.src)
				return
			}
			s.pos += 4 + end + 3
		case strings.HasPrefix(s.src[s.pos:], "<!DOCTYPE"):
			// skip to matching '>' (internal subsets with [] supported)
			depth := 0
			closed := false
			for i := s.pos; i < len(s.src) && !closed; i++ {
				switch s.src[i] {
				case '[':
					depth++
				case ']':
					depth--
				case '>':
					if depth <= 0 {
						s.pos = i + 1
						closed = true
					}
				}
			}
			if !closed {
				s.pos = len(s.src)
				return
			}
		default:
			return
		}
	}
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func isNameStart(b byte) bool {
	return b == '_' || b == ':' || (b >= 'A' && b <= 'Z') || (b >= 'a' && b <= 'z') || b >= 0x80
}

func isNameByte(b byte) bool {
	return isNameStart(b) || b == '-' || b == '.' || (b >= '0' && b <= '9')
}

func (s *scanner) parseName() (string, *Error) {
	start := s.pos
	if s.pos >= len(s.src) {
		return "", s.err(ErrPrematureEnd, "end of data in name")
	}
	if !isNameStart(s.src[s.pos]) {
		return "", s.err(ErrBadName, "invalid name start character %q", s.src[s.pos])
	}
	for s.pos < len(s.src) && isNameByte(s.src[s.pos]) {
		s.pos++
	}
	return s.src[start:s.pos], nil
}

// parseElement parses an element starting at '<'.
func (s *scanner) parseElement() (*Element, *Error) {
	s.pos++ // consume '<'
	name, err := s.parseName()
	if err != nil {
		return nil, err
	}
	el := &Element{Name: name}
	seen := map[string]bool{}
	// attributes
	for {
		hadSpace := false
		for s.pos < len(s.src) && isSpace(s.src[s.pos]) {
			s.pos++
			hadSpace = true
		}
		if s.pos >= len(s.src) {
			return nil, s.err(ErrPrematureEnd, "end of data in tag <%s", name)
		}
		switch s.src[s.pos] {
		case '>':
			s.pos++
			if err := s.parseContent(el); err != nil {
				return nil, err
			}
			return el, nil
		case '/':
			if s.pos+1 >= len(s.src) {
				return nil, s.err(ErrPrematureEnd, "end of data in tag <%s", name)
			}
			if s.src[s.pos+1] != '>' {
				return nil, s.err(ErrBadName, "invalid character after '/' in tag")
			}
			s.pos += 2
			return el, nil
		default:
			if !hadSpace {
				return nil, s.err(ErrBadName, "invalid character %q in tag <%s", s.src[s.pos], name)
			}
			attr, err := s.parseAttr(name)
			if err != nil {
				return nil, err
			}
			if seen[attr.Name] {
				return nil, s.err(ErrDuplicateAttr, "duplicate attribute %q on <%s>", attr.Name, name)
			}
			seen[attr.Name] = true
			el.Attrs = append(el.Attrs, attr)
		}
	}
}

func (s *scanner) parseAttr(elName string) (Attr, *Error) {
	name, err := s.parseName()
	if err != nil {
		return Attr{}, err
	}
	for s.pos < len(s.src) && isSpace(s.src[s.pos]) {
		s.pos++
	}
	if s.pos >= len(s.src) {
		return Attr{}, s.err(ErrPrematureEnd, "end of data in tag <%s", elName)
	}
	if s.src[s.pos] != '=' {
		return Attr{}, s.err(ErrBadAttribute, "missing '=' after attribute %q", name)
	}
	s.pos++
	for s.pos < len(s.src) && isSpace(s.src[s.pos]) {
		s.pos++
	}
	if s.pos >= len(s.src) {
		return Attr{}, s.err(ErrPrematureEnd, "end of data in tag <%s", elName)
	}
	quote := s.src[s.pos]
	if quote != '"' && quote != '\'' {
		return Attr{}, s.err(ErrBadAttribute, "attribute %q value is not quoted", name)
	}
	s.pos++
	start := s.pos
	for s.pos < len(s.src) && s.src[s.pos] != quote {
		if s.src[s.pos] == '<' {
			return Attr{}, s.err(ErrStrayLT, "'<' in attribute value")
		}
		if s.src[s.pos] == '&' {
			if e := s.checkEntity(); e != nil {
				return Attr{}, e
			}
			continue
		}
		s.pos++
	}
	if s.pos >= len(s.src) {
		return Attr{}, s.err(ErrPrematureEnd, "unterminated attribute value")
	}
	val := s.src[start:s.pos]
	s.pos++
	return Attr{Name: name, Value: val}, nil
}

// checkEntity validates an entity reference starting at '&'.
func (s *scanner) checkEntity() *Error {
	rest := s.src[s.pos:]
	for _, ent := range []string{"&amp;", "&lt;", "&gt;", "&quot;", "&apos;"} {
		if strings.HasPrefix(rest, ent) {
			s.pos += len(ent)
			return nil
		}
	}
	// character references &#123; and &#x1F;
	if strings.HasPrefix(rest, "&#") {
		i := 2
		if i < len(rest) && (rest[i] == 'x' || rest[i] == 'X') {
			i++
		}
		digits := 0
		for i < len(rest) && rest[i] != ';' && digits < 8 {
			i++
			digits++
		}
		if digits > 0 && i < len(rest) && rest[i] == ';' {
			s.pos += i + 1
			return nil
		}
	}
	return s.err(ErrBadEntity, "unescaped '&' or unknown entity")
}

// parseContent parses element content until the matching end tag.
func (s *scanner) parseContent(el *Element) *Error {
	for {
		if s.pos >= len(s.src) {
			return s.err(ErrPrematureEnd, "missing end tag </%s>", el.Name)
		}
		c := s.src[s.pos]
		switch {
		case c == '<':
			switch {
			case strings.HasPrefix(s.src[s.pos:], "</"):
				s.pos += 2
				name, err := s.parseName()
				if err != nil {
					return err
				}
				for s.pos < len(s.src) && isSpace(s.src[s.pos]) {
					s.pos++
				}
				if s.pos >= len(s.src) {
					return s.err(ErrPrematureEnd, "end of data in end tag </%s", name)
				}
				if s.src[s.pos] != '>' {
					return s.err(ErrBadName, "invalid character in end tag </%s", name)
				}
				s.pos++
				if name != el.Name {
					return s.err(ErrTagMismatch, "end tag </%s> does not match <%s>", name, el.Name)
				}
				return nil
			case strings.HasPrefix(s.src[s.pos:], "<!--"):
				end := strings.Index(s.src[s.pos+4:], "-->")
				if end < 0 {
					return s.err(ErrPrematureEnd, "unterminated comment")
				}
				s.pos += 4 + end + 3
			case strings.HasPrefix(s.src[s.pos:], "<![CDATA["):
				end := strings.Index(s.src[s.pos+9:], "]]>")
				if end < 0 {
					return s.err(ErrPrematureEnd, "unterminated CDATA section")
				}
				el.Text.WriteString(s.src[s.pos+9 : s.pos+9+end])
				s.pos += 9 + end + 3
			case strings.HasPrefix(s.src[s.pos:], "<?"):
				end := strings.Index(s.src[s.pos:], "?>")
				if end < 0 {
					return s.err(ErrPrematureEnd, "unterminated processing instruction")
				}
				s.pos += end + 2
			case s.pos+1 < len(s.src) && isNameStart(s.src[s.pos+1]):
				child, err := s.parseElement()
				if err != nil {
					return err
				}
				el.Children = append(el.Children, child)
			default:
				return s.err(ErrStrayLT, "unescaped '<' in content of <%s>", el.Name)
			}
		case c == '&':
			if err := s.checkEntity(); err != nil {
				return err
			}
		default:
			el.Text.WriteByte(c)
			s.pos++
		}
	}
}
